// Package tcmalloc is a behavioural model of TCMalloc, the second baseline
// of the paper's evaluation. It captures the mechanisms behind TCMalloc's
// latency signature in Figures 7 and 8 — "low latency on average... very
// high tail latency in all three cases":
//
//   - a per-thread cache of free objects per size class: the common case is
//     a near-free list pop, giving the lowest average of all four
//     allocators;
//   - batched refills from a central free list when the thread cache runs
//     dry: every ~batch-th allocation pays a multi-microsecond fetch — a
//     built-in high percentile spike;
//   - span allocation from a page heap that grows the arena in large
//     increments: rarer still, more expensive, and under memory pressure
//     the big fresh-page demand lands in the kernel's direct-reclaim path
//     in one request, producing the extreme tail;
//   - no scavenging in steady state: freed memory cycles between thread
//     and central caches and is not returned to the OS (TCMalloc's release
//     rate defaults to very lazy), keeping residency high under pressure.
package tcmalloc

import (
	"math/bits"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// Config tunes the model.
type Config struct {
	// SmallMax is the largest thread-cache size class (256 KiB in
	// TCMalloc).
	SmallMax int64
	// BatchBytes sizes central-list refill batches: a refill moves about
	// BatchBytes/classSize objects (clamped to [2, 32]).
	BatchBytes int64
	// ArenaGrowBytes is the page-heap growth increment.
	ArenaGrowBytes int64

	// HitCost is a thread-cache hit; CentralFetchCost a central-list
	// refill (lock + list surgery); SpanAllocCost the page-heap span
	// carve; FreeCost the free fast path.
	HitCost          simtime.Duration
	CentralFetchCost simtime.Duration
	SpanAllocCost    simtime.Duration
	FreeCost         simtime.Duration
}

// DefaultConfig returns the calibrated model parameters.
func DefaultConfig() Config {
	return Config{
		SmallMax:         256 << 10,
		BatchBytes:       64 << 10,
		ArenaGrowBytes:   1 << 20,
		HitCost:          60 * simtime.Nanosecond,
		CentralFetchCost: 11 * simtime.Microsecond,
		SpanAllocCost:    25 * simtime.Microsecond,
		FreeCost:         60 * simtime.Nanosecond,
	}
}

// arena is the page heap's current growth region, carved linearly.
type arena struct {
	region *kernel.Region
	carved int64 // bytes
	size   int64
}

// tcmallocMeta routes frees back to the right cache; it is carried inline
// in the Block's two meta words.
type tcmallocMeta struct {
	classSize int64 // 0 for page-heap (large) spans
	spanPages int64 // large spans: page count class
}

func (m tcmallocMeta) encode() alloc.BlockMeta {
	return alloc.BlockMeta{Tag: alloc.MetaTCMalloc, A: m.classSize, B: m.spanPages}
}

func decodeMeta(b *alloc.Block) tcmallocMeta {
	if b.Meta.Tag != alloc.MetaTCMalloc {
		panic("tcmalloc: foreign block")
	}
	return tcmallocMeta{classSize: b.Meta.A, spanPages: b.Meta.B}
}

// Allocator is the TCMalloc model for one process.
type Allocator struct {
	k    *kernel.Kernel
	proc *kernel.Process
	cfg  Config

	// threadCache and central hold recycled objects per class size; both
	// store backing regions (objects are fully-touched memory).
	threadCache map[int64][]*kernel.Region
	central     map[int64][]*kernel.Region

	// spanCache holds freed large spans per page count.
	spanCache map[int64][]*kernel.Region

	cur *arena

	mmapBytes int64
	stats     alloc.Stats

	// blocks recycles Block objects across malloc/free cycles.
	blocks alloc.BlockPool

	// Fetches/SpanAllocs are exposed for the latency-signature tests.
	Fetches    int64
	SpanAllocs int64
}

var _ alloc.Allocator = (*Allocator)(nil)

// New creates a TCMalloc-model allocator for a fresh process.
func New(k *kernel.Kernel, name string, cfg Config) *Allocator {
	if cfg.SmallMax <= 0 || cfg.BatchBytes <= 0 || cfg.ArenaGrowBytes <= 0 {
		panic("tcmalloc: invalid config")
	}
	return &Allocator{
		k:           k,
		proc:        k.CreateProcess(name),
		cfg:         cfg,
		threadCache: make(map[int64][]*kernel.Region),
		central:     make(map[int64][]*kernel.Region),
		spanCache:   make(map[int64][]*kernel.Region),
	}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "TCMalloc" }

// Process returns the backing kernel process.
func (a *Allocator) Process() *kernel.Process { return a.proc }

// classSizeFor rounds a small request to its size class (8-byte granularity
// below 1 KiB, then 4 classes per doubling — close enough to TCMalloc's
// table for cost purposes).
func classSizeFor(size int64) int64 {
	if size <= 8 {
		return 8
	}
	if size <= 1024 {
		return (size + 7) / 8 * 8
	}
	log := bits.Len64(uint64(size - 1))
	base := int64(1) << (log - 1)
	step := base / 4
	n := (size - base + step - 1) / step
	return base + n*step
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(at simtime.Time, size int64) (*alloc.Block, simtime.Duration) {
	if size <= 0 {
		panic("tcmalloc: malloc of non-positive size")
	}
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	if size <= a.cfg.SmallMax {
		return a.mallocSmall(at, size)
	}
	return a.mallocLarge(at, size)
}

func (a *Allocator) mallocSmall(at simtime.Time, size int64) (*alloc.Block, simtime.Duration) {
	class := classSizeFor(size)
	cost := a.cfg.HitCost

	// Thread-cache hit: recycled, fully-touched object.
	if list := a.threadCache[class]; len(list) != 0 {
		region := list[len(list)-1]
		a.threadCache[class] = list[:len(list)-1]
		return a.recycledBlock(size, class, region), cost
	}

	// Refill from the central list.
	cost += a.cfg.CentralFetchCost
	a.Fetches++
	batch := a.cfg.BatchBytes / class
	if batch < 2 {
		batch = 2
	}
	if batch > 32 {
		batch = 32
	}
	if list := a.central[class]; len(list) != 0 {
		take := int64(len(list))
		if take > batch {
			take = batch
		}
		moved := list[int64(len(list))-take:]
		a.central[class] = list[:int64(len(list))-take]
		region := moved[len(moved)-1]
		a.threadCache[class] = append(a.threadCache[class], moved[:len(moved)-1]...)
		return a.recycledBlock(size, class, region), cost
	}

	// Central empty: carve a fresh span for the whole batch from the page
	// heap. The requesting allocation pays for all of it — TCMalloc's
	// tail-latency spike.
	cost += a.cfg.SpanAllocCost
	a.SpanAllocs++
	spanBytes := class * batch
	region, start, c := a.carve(at.Add(cost), spanBytes)
	cost += c
	ps := a.k.PageSize()
	// Hand out the first object; the rest stock the thread cache. The
	// block's EndPage covers the whole span: the touch faults the span in,
	// matching TCMalloc handing out span-backed objects that the app
	// faults progressively (charged here as one spike for modelling
	// economy — it is the rare path).
	blk := a.blocks.Get()
	*blk = alloc.Block{
		Size:      size,
		ChunkSize: class,
		Kind:      alloc.BlockMmap,
		Region:    region,
		EndPage:   (start + spanBytes + ps - 1) / ps,
		Meta:      tcmallocMeta{classSize: class}.encode(),
	}
	for i := int64(1); i < batch; i++ {
		a.threadCache[class] = append(a.threadCache[class], region)
	}
	return blk, cost
}

func (a *Allocator) recycledBlock(size, class int64, region *kernel.Region) *alloc.Block {
	b := a.blocks.Get()
	*b = alloc.Block{
		Size:      size,
		ChunkSize: class,
		Kind:      alloc.BlockMmap,
		Region:    region,
		EndPage:   0, // below the touched watermark: no faults
		Meta:      tcmallocMeta{classSize: class}.encode(),
	}
	return b
}

// carve takes bytes from the current arena, growing the page heap by
// ArenaGrowBytes increments when it runs out.
func (a *Allocator) carve(at simtime.Time, bytes int64) (*kernel.Region, int64, simtime.Duration) {
	var cost simtime.Duration
	if a.cur == nil || a.cur.size-a.cur.carved < bytes {
		grow := a.cfg.ArenaGrowBytes
		if grow < bytes {
			grow = bytes
		}
		ps := a.k.PageSize()
		pages := (grow + ps - 1) / ps
		region, c := a.k.Mmap(at, a.proc, pages)
		cost += c
		a.cur = &arena{region: region, size: pages * ps}
		a.mmapBytes += pages * ps
	}
	start := a.cur.carved
	a.cur.carved += bytes
	return a.cur.region, start, cost
}

func (a *Allocator) mallocLarge(at simtime.Time, size int64) (*alloc.Block, simtime.Duration) {
	ps := a.k.PageSize()
	pages := (size + ps - 1) / ps
	cost := a.cfg.HitCost + a.cfg.SpanAllocCost

	if cache := a.spanCache[pages]; len(cache) != 0 {
		region := cache[len(cache)-1]
		a.spanCache[pages] = cache[:len(cache)-1]
		b := a.blocks.Get()
		*b = alloc.Block{
			Size:      size,
			ChunkSize: pages * ps,
			Kind:      alloc.BlockMmap,
			Region:    region,
			EndPage:   0,
			Meta:      tcmallocMeta{spanPages: pages}.encode(),
		}
		return b, cost
	}
	a.SpanAllocs++
	region, start, c := a.carve(at.Add(cost), pages*ps)
	cost += c
	b := a.blocks.Get()
	*b = alloc.Block{
		Size:      size,
		ChunkSize: pages * ps,
		Kind:      alloc.BlockMmap,
		Region:    region,
		EndPage:   (start + pages*ps + ps - 1) / ps,
		Meta:      tcmallocMeta{spanPages: pages}.encode(),
	}
	return b, cost
}

// Free implements alloc.Allocator: objects recycle through the caches;
// nothing returns to the OS (lazy release).
func (a *Allocator) Free(at simtime.Time, b *alloc.Block) simtime.Duration {
	b.MarkFreed()
	a.stats.Frees++
	a.stats.BytesFreed += b.Size
	meta := decodeMeta(b)
	region := b.Region
	a.blocks.Put(b)
	cost := a.cfg.FreeCost
	if meta.classSize > 0 {
		class := meta.classSize
		a.threadCache[class] = append(a.threadCache[class], region)
		// Over-capacity thread caches spill a batch back to the central
		// list (cheap, amortised).
		batch := a.cfg.BatchBytes / class
		if batch < 2 {
			batch = 2
		}
		if int64(len(a.threadCache[class])) > 2*batch {
			list := a.threadCache[class]
			spill := list[int64(len(list))-batch:]
			a.threadCache[class] = list[:int64(len(list))-batch]
			a.central[class] = append(a.central[class], spill...)
			cost += a.cfg.CentralFetchCost / 2
		}
		return cost
	}
	a.spanCache[meta.spanPages] = append(a.spanCache[meta.spanPages], region)
	return cost
}

// Touch implements alloc.Allocator.
func (a *Allocator) Touch(at simtime.Time, b *alloc.Block) simtime.Duration {
	return alloc.TouchBlock(a.k, at, b)
}

// Access implements alloc.Allocator.
func (a *Allocator) Access(at simtime.Time, b *alloc.Block, bytes int64) simtime.Duration {
	return alloc.AccessBlock(a.k, at, b, bytes)
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats {
	st := a.stats
	st.MmapBytes = a.mmapBytes
	return st
}

// Close implements alloc.Allocator (no background machinery).
func (a *Allocator) Close() {}
