package tcmalloc

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

func newTestAlloc(t *testing.T) (*Allocator, *kernel.Kernel, *simtime.Scheduler) {
	t.Helper()
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = 1 << 30
	cfg.SwapBytes = 256 << 20
	k := kernel.New(s, cfg)
	a := New(k, "tc", DefaultConfig())
	t.Cleanup(a.Close)
	return a, k, s
}

func TestClassSizeFor(t *testing.T) {
	tests := []struct {
		size, want int64
	}{
		{1, 8}, {8, 8}, {9, 16}, {100, 104}, {1024, 1024},
		{1025, 1280}, {2048, 2048}, {2049, 2560},
	}
	for _, tc := range tests {
		if got := classSizeFor(tc.size); got != tc.want {
			t.Errorf("classSizeFor(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
	for size := int64(1); size <= 1<<18; size += 97 {
		if cs := classSizeFor(size); cs < size {
			t.Fatalf("class %d below request %d", cs, size)
		}
	}
}

func TestFirstAllocPaysSpanThenHits(t *testing.T) {
	a, _, s := newTestAlloc(t)
	_, first := a.Malloc(s.Now(), 1024)
	if a.SpanAllocs != 1 || a.Fetches != 1 {
		t.Fatalf("first alloc must fetch+span: fetches=%d spans=%d", a.Fetches, a.SpanAllocs)
	}
	_, second := a.Malloc(s.Now(), 1024)
	if a.Fetches != 1 {
		t.Fatal("second alloc must hit the thread cache")
	}
	if second >= first {
		t.Fatalf("hit %v not cheaper than span path %v", second, first)
	}
	if second > simtime.Microsecond {
		t.Fatalf("thread-cache hit cost %v, want sub-µs", second)
	}
}

func TestSpikePeriodicity(t *testing.T) {
	// The span/fetch spike recurs roughly every batch-worth of requests —
	// TCMalloc's built-in p99 tail.
	a, _, s := newTestAlloc(t)
	batch := DefaultConfig().BatchBytes / classSizeFor(1024)
	if batch > 32 {
		batch = 32 // refill batches are clamped
	}
	var spikes int
	const n = 1000
	for i := 0; i < n; i++ {
		_, cost := a.Malloc(s.Now(), 1024)
		if cost > 5*simtime.Microsecond {
			spikes++
		}
	}
	wantMin, wantMax := int(n/batch)-2, int(n/batch)+2
	if spikes < wantMin || spikes > wantMax {
		t.Fatalf("spikes = %d, want ~%d (every %d allocs)", spikes, n/int(batch), batch)
	}
}

func TestRecycledObjectsDoNotFault(t *testing.T) {
	a, k, s := newTestAlloc(t)
	b1, _ := a.Malloc(s.Now(), 1024)
	a.Touch(s.Now(), b1)
	a.Free(s.Now(), b1)
	faults0 := k.Stats().MinorFaults
	b2, _ := a.Malloc(s.Now(), 1024)
	a.Touch(s.Now(), b2)
	if k.Stats().MinorFaults != faults0 {
		t.Fatal("recycled object must not fault")
	}
	k.CheckInvariants()
}

func TestThreadCacheSpillsToCentral(t *testing.T) {
	a, _, s := newTestAlloc(t)
	class := classSizeFor(1024)
	batch := DefaultConfig().BatchBytes / class
	var blocks []*alloc.Block
	// Allocate and free a lot of one class: the thread cache must spill.
	for i := int64(0); i < batch*4; i++ {
		b, _ := a.Malloc(s.Now(), 1024)
		blocks = append(blocks, b)
	}
	for _, b := range blocks {
		a.Free(s.Now(), b)
	}
	if len(a.central[class]) == 0 {
		t.Fatal("thread cache never spilled to central")
	}
	if int64(len(a.threadCache[class])) > 3*batch {
		t.Fatalf("thread cache kept %d objects, spill broken", len(a.threadCache[class]))
	}
}

func TestLargeSpanCacheReuse(t *testing.T) {
	a, k, s := newTestAlloc(t)
	b1, _ := a.Malloc(s.Now(), 512<<10) // above SmallMax
	a.Touch(s.Now(), b1)
	region1 := b1.Region
	a.Free(s.Now(), b1)
	faults0 := k.Stats().MinorFaults
	b2, _ := a.Malloc(s.Now(), 512<<10)
	if b2.Region != region1 {
		t.Fatal("span cache must reuse the freed span")
	}
	a.Touch(s.Now(), b2)
	if k.Stats().MinorFaults != faults0 {
		t.Fatal("span reuse must not fault")
	}
}

func TestArenaGrowsInLargeIncrements(t *testing.T) {
	a, k, s := newTestAlloc(t)
	a.Malloc(s.Now(), 1024)
	// One arena growth of ArenaGrowBytes, not per-allocation mmaps.
	if got := a.Process().VMACount(); got != 1 {
		t.Fatalf("VMAs = %d, want 1 arena", got)
	}
	wantPages := DefaultConfig().ArenaGrowBytes / k.PageSize()
	if a.cur.region.Pages() != wantPages {
		t.Fatalf("arena pages = %d, want %d", a.cur.region.Pages(), wantPages)
	}
	// Memory is never returned to the OS on free.
	b, _ := a.Malloc(s.Now(), 512<<10)
	vmas := a.Process().VMACount()
	a.Free(s.Now(), b)
	if a.Process().VMACount() != vmas {
		t.Fatal("TCMalloc model must not munmap on free")
	}
}

func TestLowAverageVersusSpikes(t *testing.T) {
	// Signature check: average cost is low, max cost is much higher.
	a, _, s := newTestAlloc(t)
	var total, max simtime.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		_, cost := a.Malloc(s.Now(), 1024)
		total += cost
		if cost > max {
			max = cost
		}
	}
	avg := total / n
	if max < 10*avg {
		t.Fatalf("tail/avg ratio too small: avg=%v max=%v", avg, max)
	}
}
