// Package jemalloc is a behavioural model of jemalloc 5.x, one of the two
// baseline allocators of the paper's evaluation (§5: "jemalloc is the
// default memory allocator for Redis"). The model captures the mechanisms
// that produce jemalloc's latency signature in Figures 7 and 8:
//
//   - size-class rounding with slab-based small allocation — stable
//     bookkeeping costs, internal fragmentation instead of searching;
//   - per-class extent caching for large allocations — frees do not
//     munmap, so a steady-state workload reuses mapped memory, giving
//     "longer but more stable" large-allocation latency on a dedicated
//     system (Fig 8a);
//   - time-based decay purging: cached extents are MADV_FREEd after a
//     decay interval, so under memory pressure reuse refaults pages through
//     the kernel slow path — jemalloc's long tail in Figs 7b/8b.
//
// The model is calibrated, not line-faithful: arena/tcache locking, rtree
// lookup and so on are folded into per-operation constants.
package jemalloc

import (
	"math/bits"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// Config tunes the model.
type Config struct {
	// SmallMax is the largest size served from slabs (14 KiB in jemalloc's
	// default class table).
	SmallMax int64
	// SlabBytes is the slab size used for small classes.
	SlabBytes int64
	// DecayInterval is how often the decay task runs; DecayTime is how
	// long a cached extent stays mapped before being purged.
	DecayInterval simtime.Duration
	DecayTime     simtime.Duration

	// SmallCost is the fast-path cost (tcache-style hit or slab carve);
	// LargeCost is the large-allocation bookkeeping cost on top of any
	// kernel work (extent tree, rtree updates) — the constant that makes
	// jemalloc's large path "longer but stable" next to Glibc's;
	// FreeCost prices free bookkeeping.
	SmallCost simtime.Duration
	LargeCost simtime.Duration
	FreeCost  simtime.Duration
}

// DefaultConfig returns the calibrated model parameters.
func DefaultConfig() Config {
	return Config{
		SmallMax:      14 << 10,
		SlabBytes:     64 << 10,
		DecayInterval: 10 * simtime.Millisecond,
		DecayTime:     100 * simtime.Millisecond,
		SmallCost:     180 * simtime.Nanosecond,
		LargeCost:     220 * simtime.Microsecond,
		FreeCost:      150 * simtime.Nanosecond,
	}
}

// slab is the current carving slab of one small size class.
type slab struct {
	region *kernel.Region
	carved int64 // bytes carved so far
	size   int64 // slab bytes
}

// extent is a cached large extent.
type extent struct {
	region *kernel.Region
	purged bool
	since  simtime.Time
}

// Allocator is the jemalloc model for one process.
type Allocator struct {
	k    *kernel.Kernel
	proc *kernel.Process
	cfg  Config

	// Small classes: current slab and free-object list per class index.
	slabs    map[int]*slab
	freeObjs map[int][]*kernel.Region

	// Large classes: cached extents per page count.
	extents map[int64][]extent

	decay *simtime.PeriodicTask

	mmapBytes int64
	stats     alloc.Stats

	// blocks recycles Block objects across malloc/free cycles.
	blocks alloc.BlockPool
}

var _ alloc.Allocator = (*Allocator)(nil)

// jemallocMeta tags blocks with their class for free-path routing; it is
// carried inline in the Block's two meta words.
type jemallocMeta struct {
	classIdx   int   // small class index, -1 for large
	extentPage int64 // large: extent size in pages
}

func (m jemallocMeta) encode() alloc.BlockMeta {
	return alloc.BlockMeta{Tag: alloc.MetaJemalloc, A: int64(m.classIdx), B: m.extentPage}
}

func decodeMeta(b *alloc.Block) jemallocMeta {
	if b.Meta.Tag != alloc.MetaJemalloc {
		panic("jemalloc: foreign block")
	}
	return jemallocMeta{classIdx: int(b.Meta.A), extentPage: b.Meta.B}
}

// New creates a jemalloc-model allocator for a fresh process.
func New(k *kernel.Kernel, name string, cfg Config) *Allocator {
	if cfg.SmallMax <= 0 || cfg.SlabBytes <= 0 || cfg.DecayInterval <= 0 {
		panic("jemalloc: invalid config")
	}
	a := &Allocator{
		k:        k,
		proc:     k.CreateProcess(name),
		cfg:      cfg,
		slabs:    make(map[int]*slab),
		freeObjs: make(map[int][]*kernel.Region),
		extents:  make(map[int64][]extent),
	}
	a.decay = simtime.NewPeriodicTask(k.Scheduler(), cfg.DecayInterval, a.decayTick)
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "jemalloc" }

// Process returns the backing kernel process.
func (a *Allocator) Process() *kernel.Process { return a.proc }

// classFor returns (class index, class size) for a small request, using
// jemalloc's 4-classes-per-doubling spacing.
func classFor(size int64) (int, int64) {
	if size <= 16 {
		return 0, 16
	}
	// Class sizes: 16, 32, 48, 64, 80, 96, 112, 128, 160, ... (quantum 16
	// up to 128, then 4 per power of two).
	if size <= 128 {
		idx := int((size + 15) / 16)
		return idx - 1, int64(idx) * 16
	}
	log := bits.Len64(uint64(size - 1)) // size > 128
	base := int64(1) << (log - 1)
	step := base / 4
	idx := (size - base + step - 1) / step
	classSize := base + idx*step
	classIdx := 8 + (log-8)*4 + int(idx) - 1
	return classIdx, classSize
}

// largePagesFor rounds a large request to its page-granular class (4 per
// doubling above the slab ceiling).
func (a *Allocator) largePagesFor(size int64) int64 {
	ps := a.k.PageSize()
	pages := (size + ps - 1) / ps
	if pages <= 4 {
		return pages
	}
	log := bits.Len64(uint64(pages - 1))
	base := int64(1) << (log - 1)
	step := base / 4
	if step == 0 {
		step = 1
	}
	n := (pages - base + step - 1) / step
	return base + n*step
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(at simtime.Time, size int64) (*alloc.Block, simtime.Duration) {
	if size <= 0 {
		panic("jemalloc: malloc of non-positive size")
	}
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	if size <= a.cfg.SmallMax {
		return a.mallocSmall(at, size)
	}
	return a.mallocLarge(at, size)
}

func (a *Allocator) mallocSmall(at simtime.Time, size int64) (*alloc.Block, simtime.Duration) {
	idx, classSize := classFor(size)
	cost := a.cfg.SmallCost

	// Recycled object: already-touched memory.
	if list := a.freeObjs[idx]; len(list) != 0 {
		region := list[len(list)-1]
		a.freeObjs[idx] = list[:len(list)-1]
		b := a.blocks.Get()
		*b = alloc.Block{
			Size:      size,
			ChunkSize: classSize,
			Kind:      alloc.BlockMmap,
			Region:    region,
			EndPage:   0, // fully below the region's touched watermark
			Meta:      jemallocMeta{classIdx: idx}.encode(),
		}
		return b, cost
	}

	// Carve from the class's current slab, mapping a new one when needed.
	sl := a.slabs[idx]
	if sl == nil || sl.size-sl.carved < classSize {
		slabBytes := a.cfg.SlabBytes
		if slabBytes < 4*classSize {
			slabBytes = 4 * classSize
		}
		ps := a.k.PageSize()
		pages := (slabBytes + ps - 1) / ps
		region, c := a.k.Mmap(at.Add(cost), a.proc, pages)
		cost += c
		sl = &slab{region: region, size: pages * ps}
		a.slabs[idx] = sl
		a.mmapBytes += pages * ps
	}
	start := sl.carved
	sl.carved += classSize
	ps := a.k.PageSize()
	b := a.blocks.Get()
	*b = alloc.Block{
		Size:      size,
		ChunkSize: classSize,
		Kind:      alloc.BlockMmap,
		Region:    sl.region,
		EndPage:   (start + classSize + ps - 1) / ps,
		Meta:      jemallocMeta{classIdx: idx}.encode(),
	}
	return b, cost
}

func (a *Allocator) mallocLarge(at simtime.Time, size int64) (*alloc.Block, simtime.Duration) {
	pages := a.largePagesFor(size)
	cost := a.cfg.LargeCost

	if cache := a.extents[pages]; len(cache) != 0 {
		e := cache[len(cache)-1]
		a.extents[pages] = cache[:len(cache)-1]
		endPage := pages
		if !e.purged {
			endPage = 0 // mapped extent: no faults at touch
		}
		b := a.blocks.Get()
		*b = alloc.Block{
			Size:      size,
			ChunkSize: pages * a.k.PageSize(),
			Kind:      alloc.BlockMmap,
			Region:    e.region,
			EndPage:   endPage,
			Meta:      jemallocMeta{classIdx: -1, extentPage: pages}.encode(),
		}
		return b, cost
	}

	region, c := a.k.Mmap(at.Add(cost), a.proc, pages)
	cost += c
	a.mmapBytes += pages * a.k.PageSize()
	b := a.blocks.Get()
	*b = alloc.Block{
		Size:      size,
		ChunkSize: pages * a.k.PageSize(),
		Kind:      alloc.BlockMmap,
		Region:    region,
		EndPage:   pages,
		Meta:      jemallocMeta{classIdx: -1, extentPage: pages}.encode(),
	}
	return b, cost
}

// Free implements alloc.Allocator: small objects recycle through the class
// free list; large extents park in the extent cache awaiting decay.
func (a *Allocator) Free(at simtime.Time, b *alloc.Block) simtime.Duration {
	b.MarkFreed()
	a.stats.Frees++
	a.stats.BytesFreed += b.Size
	meta := decodeMeta(b)
	if meta.classIdx >= 0 {
		a.freeObjs[meta.classIdx] = append(a.freeObjs[meta.classIdx], b.Region)
		a.blocks.Put(b)
		return a.cfg.FreeCost
	}
	a.extents[meta.extentPage] = append(a.extents[meta.extentPage], extent{
		region: b.Region,
		since:  a.k.Scheduler().Now(),
	})
	a.blocks.Put(b)
	return a.cfg.FreeCost
}

// decayTick purges cached extents older than the decay time: their pages go
// back to the kernel (madvise), the VMA stays for reuse.
func (a *Allocator) decayTick(now simtime.Time) simtime.Duration {
	var busy simtime.Duration
	for pages, cache := range a.extents {
		for i := range cache {
			e := &cache[i]
			if e.purged || now.Sub(e.since) < a.cfg.DecayTime {
				continue
			}
			if n := e.region.Mapped() - e.region.Locked(); n > 0 {
				busy += a.k.MadviseFree(now.Add(busy), e.region, n)
			}
			e.purged = true
		}
		a.extents[pages] = cache
	}
	return busy
}

// Touch implements alloc.Allocator.
func (a *Allocator) Touch(at simtime.Time, b *alloc.Block) simtime.Duration {
	return alloc.TouchBlock(a.k, at, b)
}

// Access implements alloc.Allocator.
func (a *Allocator) Access(at simtime.Time, b *alloc.Block, bytes int64) simtime.Duration {
	return alloc.AccessBlock(a.k, at, b, bytes)
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats {
	st := a.stats
	st.MmapBytes = a.mmapBytes
	return st
}

// CachedExtentPages returns the pages currently parked in the extent cache
// (diagnostics/tests), split into (mapped, purged).
func (a *Allocator) CachedExtentPages() (mapped, purged int64) {
	for _, cache := range a.extents {
		for _, e := range cache {
			if e.purged {
				purged += e.region.Pages()
			} else {
				mapped += e.region.Pages()
			}
		}
	}
	return mapped, purged
}

// Close implements alloc.Allocator.
func (a *Allocator) Close() { a.decay.Stop() }
