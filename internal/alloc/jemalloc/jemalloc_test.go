package jemalloc

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

func newTestAlloc(t *testing.T) (*Allocator, *kernel.Kernel, *simtime.Scheduler) {
	t.Helper()
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = 1 << 30
	cfg.SwapBytes = 256 << 20
	k := kernel.New(s, cfg)
	a := New(k, "je", DefaultConfig())
	t.Cleanup(a.Close)
	return a, k, s
}

func TestClassForSpacing(t *testing.T) {
	tests := []struct {
		size int64
		want int64
	}{
		{1, 16}, {16, 16}, {17, 32}, {32, 32}, {33, 48},
		{128, 128}, {129, 160}, {160, 160}, {161, 192},
		{1024, 1024}, {1025, 1280},
	}
	for _, tc := range tests {
		if _, got := classFor(tc.size); got != tc.want {
			t.Errorf("classFor(%d) class size = %d, want %d", tc.size, got, tc.want)
		}
	}
	// Class size always ≥ request and < 2× request (above quantum range).
	for size := int64(1); size <= 16384; size += 7 {
		_, cs := classFor(size)
		if cs < size {
			t.Fatalf("class %d smaller than request %d", cs, size)
		}
		if size > 128 && cs > size*3/2 {
			t.Fatalf("class %d too wasteful for %d", cs, size)
		}
	}
}

func TestLargeClassRounding(t *testing.T) {
	a, _, _ := newTestAlloc(t)
	// Page classes are ≥ the request and within 25% above.
	for _, size := range []int64{20 << 10, 100 << 10, 256 << 10, 1 << 20, 3 << 20} {
		pages := a.largePagesFor(size)
		reqPages := (size + 4095) / 4096
		if pages < reqPages {
			t.Fatalf("largePagesFor(%d) = %d < %d", size, pages, reqPages)
		}
		if pages > reqPages+reqPages/4+1 {
			t.Fatalf("largePagesFor(%d) = %d too wasteful vs %d", size, pages, reqPages)
		}
	}
}

func TestSmallRecycling(t *testing.T) {
	a, k, s := newTestAlloc(t)
	b1, _ := a.Malloc(s.Now(), 1024)
	a.Touch(s.Now(), b1)
	a.Free(s.Now(), b1)
	faults0 := k.Stats().MinorFaults
	b2, cost := a.Malloc(s.Now(), 1024)
	if !b2.PreMapped && b2.EndPage != 0 {
		t.Fatal("recycled object must be below the touched watermark")
	}
	a.Touch(s.Now().Add(cost), b2)
	if k.Stats().MinorFaults != faults0 {
		t.Fatal("recycled object must not fault")
	}
	k.CheckInvariants()
}

func TestSlabCarving(t *testing.T) {
	a, k, s := newTestAlloc(t)
	// Several small allocations share one slab VMA.
	b1, _ := a.Malloc(s.Now(), 1024)
	b2, _ := a.Malloc(s.Now(), 1024)
	if b1.Region != b2.Region {
		t.Fatal("same-class allocations must share a slab")
	}
	if b1.Region.Pages() != int64(DefaultConfig().SlabBytes)/k.PageSize() {
		t.Fatalf("slab pages = %d", b1.Region.Pages())
	}
	// Different class → different slab.
	b3, _ := a.Malloc(s.Now(), 8192)
	if b3.Region == b1.Region {
		t.Fatal("different classes must not share slabs")
	}
}

func TestExtentCacheReuse(t *testing.T) {
	a, k, s := newTestAlloc(t)
	b1, _ := a.Malloc(s.Now(), 256<<10)
	a.Touch(s.Now(), b1)
	region1 := b1.Region
	a.Free(s.Now(), b1)
	mapped, purged := a.CachedExtentPages()
	if mapped == 0 || purged != 0 {
		t.Fatalf("extent cache after free: mapped=%d purged=%d", mapped, purged)
	}
	// Immediate reuse: same region, no faults.
	faults0 := k.Stats().MinorFaults
	b2, _ := a.Malloc(s.Now(), 256<<10)
	if b2.Region != region1 {
		t.Fatal("cached extent must be reused")
	}
	a.Touch(s.Now(), b2)
	if k.Stats().MinorFaults != faults0 {
		t.Fatal("reuse of mapped extent must not fault")
	}
	k.CheckInvariants()
}

func TestDecayPurgesExtents(t *testing.T) {
	a, k, s := newTestAlloc(t)
	b1, _ := a.Malloc(s.Now(), 256<<10)
	a.Touch(s.Now(), b1)
	a.Free(s.Now(), b1)
	free0 := k.FreePages()
	// Wait past the decay time: pages must come back to the kernel.
	s.Advance(DefaultConfig().DecayTime + 2*DefaultConfig().DecayInterval)
	if k.FreePages() <= free0 {
		t.Fatal("decay must return pages to the kernel")
	}
	_, purged := a.CachedExtentPages()
	if purged == 0 {
		t.Fatal("extent not marked purged")
	}
	// Reuse after purge refaults.
	faults0 := k.Stats().MinorFaults
	b2, _ := a.Malloc(s.Now(), 256<<10)
	a.Touch(s.Now(), b2)
	if k.Stats().MinorFaults == faults0 {
		t.Fatal("purged extent must refault on reuse")
	}
	k.CheckInvariants()
}

func TestFreshLargeIsSlowerThanCachedReuse(t *testing.T) {
	a, _, s := newTestAlloc(t)
	b1, c1 := a.Malloc(s.Now(), 256<<10)
	t1 := a.Touch(s.Now().Add(c1), b1)
	a.Free(s.Now(), b1)
	b2, c2 := a.Malloc(s.Now(), 256<<10)
	t2 := a.Touch(s.Now().Add(c2), b2)
	if c2+t2 >= c1+t1 {
		t.Fatalf("cached reuse %v not faster than fresh %v", c2+t2, c1+t1)
	}
}

func TestStatsAndInterface(t *testing.T) {
	a, _, s := newTestAlloc(t)
	var _ alloc.Allocator = a
	b, _ := a.Malloc(s.Now(), 100)
	a.Free(s.Now(), b)
	st := a.Stats()
	if st.Mallocs != 1 || st.Frees != 1 || st.BytesRequested != 100 {
		t.Fatalf("stats: %+v", st)
	}
	if a.Name() != "jemalloc" {
		t.Fatal("name")
	}
}
