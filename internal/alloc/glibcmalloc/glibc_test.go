package glibcmalloc

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

func newTestAlloc(t *testing.T) (*Allocator, *kernel.Kernel, *simtime.Scheduler) {
	t.Helper()
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = 1 << 30 // 1 GiB keeps tests fast
	cfg.SwapBytes = 256 << 20
	k := kernel.New(s, cfg)
	a := New(k, "test", DefaultConfig())
	return a, k, s
}

func TestSmallMallocCarvesFromTop(t *testing.T) {
	a, k, s := newTestAlloc(t)
	b, cost := a.Malloc(s.Now(), 1024)
	if cost <= 0 {
		t.Fatal("malloc must cost time")
	}
	if b.Kind != alloc.BlockHeap {
		t.Fatal("1KB must take the heap path")
	}
	// First malloc grows the heap by request+TopPad.
	if a.BreakBytes() == 0 {
		t.Fatal("break did not move")
	}
	if got := a.TopBytes(); got <= 0 {
		t.Fatalf("top chunk = %d, want > 0 (TopPad slack)", got)
	}
	// Nothing mapped until touch.
	if a.HeapRegion().Mapped() != 0 {
		t.Fatal("pages mapped before first touch")
	}
	tc := a.Touch(s.Now(), b)
	if tc <= 0 || a.HeapRegion().Mapped() == 0 {
		t.Fatal("touch must fault pages in")
	}
	k.CheckInvariants()
}

func TestLargeMallocUsesMmap(t *testing.T) {
	a, k, s := newTestAlloc(t)
	b, _ := a.Malloc(s.Now(), 256<<10)
	if b.Kind != alloc.BlockMmap {
		t.Fatal("256KB must take the mmap path")
	}
	if b.Region == a.HeapRegion() {
		t.Fatal("mmap block must not use the heap region")
	}
	if got := b.Region.Pages(); got != (256<<10)/4096+1 { // +header page round-up
		// chunk = 256KB+16 rounded to pages = 65 pages
		t.Fatalf("region pages = %d", got)
	}
	a.Touch(s.Now(), b)
	if b.Region.Mapped() != b.Region.Pages() {
		t.Fatal("touch must map the whole mmapped block")
	}
	cost := a.Free(s.Now(), b)
	if cost <= 0 {
		t.Fatal("free must cost time")
	}
	if a.Process().VMACount() != 0 {
		t.Fatal("glibc must munmap large blocks immediately")
	}
	k.CheckInvariants()
}

func TestMmapThresholdBoundary(t *testing.T) {
	a, _, s := newTestAlloc(t)
	small, _ := a.Malloc(s.Now(), alloc.MmapThreshold-64)
	if small.Kind != alloc.BlockHeap {
		t.Fatal("just-below-threshold must use heap")
	}
	big, _ := a.Malloc(s.Now(), alloc.MmapThreshold)
	if big.Kind != alloc.BlockMmap {
		t.Fatal("at-threshold must use mmap")
	}
}

func TestExactFitBinReuse(t *testing.T) {
	a, _, s := newTestAlloc(t)
	b1, _ := a.Malloc(s.Now(), 4096)
	filler, _ := a.Malloc(s.Now(), 512) // prevents b1 from merging into top
	a.Touch(s.Now(), b1)
	a.Touch(s.Now(), filler)
	meta1 := decodeHeapMeta(b1)
	a.Free(s.Now(), b1)
	if a.BinnedBytes() == 0 {
		t.Fatal("freed chunk must land in bins")
	}
	b2, _ := a.Malloc(s.Now(), 4096)
	meta2 := decodeHeapMeta(b2)
	if meta2.start != meta1.start {
		t.Fatalf("exact-fit must reuse the freed chunk: got start %d, want %d", meta2.start, meta1.start)
	}
	// Reused memory is already mapped: touch must not fault.
	faults0 := a.Kernel().Stats().MinorFaults
	a.Touch(s.Now(), b2)
	if got := a.Kernel().Stats().MinorFaults; got != faults0 {
		t.Fatalf("touch of reused chunk faulted %d pages", got-faults0)
	}
}

func TestBestFitSplitsRemainder(t *testing.T) {
	a, _, s := newTestAlloc(t)
	b1, _ := a.Malloc(s.Now(), 8192)
	filler, _ := a.Malloc(s.Now(), 512)
	_ = filler
	m1 := decodeHeapMeta(b1) // capture before Free: the pool recycles b1's object
	a.Free(s.Now(), b1)
	binned0 := a.BinnedBytes()

	b2, _ := a.Malloc(s.Now(), 1024)
	meta := decodeHeapMeta(b2)
	if meta.start != m1.start {
		t.Fatalf("best-fit must take the freed 8KB chunk head: start=%d want %d", meta.start, m1.start)
	}
	// Remainder goes back to the bins.
	if a.BinnedBytes() >= binned0 || a.BinnedBytes() == 0 {
		t.Fatalf("remainder not re-binned: before=%d after=%d", binned0, a.BinnedBytes())
	}
}

func TestFreeMergesIntoTopAndCascades(t *testing.T) {
	a, _, s := newTestAlloc(t)
	b1, _ := a.Malloc(s.Now(), 1024)
	b2, _ := a.Malloc(s.Now(), 2048)
	b3, _ := a.Malloc(s.Now(), 4096)
	used := a.UsedEnd()
	if used == 0 {
		t.Fatal("allocations did not advance usedEnd")
	}
	// Free middle chunk first: it is binned.
	a.Free(s.Now(), b2)
	if a.BinnedBytes() == 0 {
		t.Fatal("middle free must bin")
	}
	// Free the top-adjacent chunk: merges, then cascades through b2's bin.
	a.Free(s.Now(), b3)
	m1 := decodeHeapMeta(b1)
	if a.UsedEnd() != m1.start+m1.size {
		t.Fatalf("cascade merge failed: usedEnd=%d, want %d", a.UsedEnd(), m1.start+m1.size)
	}
	if a.BinnedBytes() != 0 {
		t.Fatalf("bins should be empty after cascade, have %d bytes", a.BinnedBytes())
	}
}

func TestTrimShrinksBreak(t *testing.T) {
	a, k, s := newTestAlloc(t)
	// Allocate well past the trim threshold, then free it all.
	var blocks []*Block
	for i := 0; i < 64; i++ {
		b, _ := a.Malloc(s.Now(), 16<<10)
		a.Touch(s.Now(), b)
		blocks = append(blocks, b)
	}
	grown := a.BreakBytes()
	for i := len(blocks) - 1; i >= 0; i-- {
		a.Free(s.Now(), blocks[i])
	}
	if a.BreakBytes() >= grown {
		t.Fatalf("break %d not trimmed from %d", a.BreakBytes(), grown)
	}
	if a.TopBytes() > a.cfg.TrimThreshold+a.cfg.TopPad {
		t.Fatalf("top chunk %d still exceeds trim threshold", a.TopBytes())
	}
	k.CheckInvariants()
}

func TestTrimDisabled(t *testing.T) {
	a, _, s := newTestAlloc(t)
	a.SetTrimThreshold(0) // 0 disables trimming in the model
	var blocks []*Block
	for i := 0; i < 64; i++ {
		b, _ := a.Malloc(s.Now(), 16<<10)
		blocks = append(blocks, b)
	}
	grown := a.BreakBytes()
	for i := len(blocks) - 1; i >= 0; i-- {
		a.Free(s.Now(), blocks[i])
	}
	if a.BreakBytes() != grown {
		t.Fatal("trim ran despite being disabled")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a, _, s := newTestAlloc(t)
	b, _ := a.Malloc(s.Now(), 1024)
	a.Free(s.Now(), b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	a.Free(s.Now(), b)
}

func TestTouchAfterFreePanics(t *testing.T) {
	a, _, s := newTestAlloc(t)
	b, _ := a.Malloc(s.Now(), 1024)
	a.Free(s.Now(), b)
	defer func() {
		if recover() == nil {
			t.Fatal("touch after free must panic")
		}
	}()
	a.Touch(s.Now(), b)
}

func TestHeapGrowthIsOnDemandAndPadded(t *testing.T) {
	a, _, s := newTestAlloc(t)
	b1, _ := a.Malloc(s.Now(), 1024)
	_ = b1
	break1 := a.BreakBytes()
	// Subsequent small allocations fit in the padded top chunk: the break
	// must not move for a while.
	for i := 0; i < 32; i++ {
		a.Malloc(s.Now(), 1024)
	}
	if a.BreakBytes() != break1 {
		t.Fatal("break moved although top chunk had padded space")
	}
	// Eventually the pad runs out and sbrk happens again.
	for i := 0; i < 256; i++ {
		a.Malloc(s.Now(), 1024)
	}
	if a.BreakBytes() == break1 {
		t.Fatal("break never grew under sustained allocation")
	}
}

func TestBreakLockContentionDelaysMalloc(t *testing.T) {
	a, _, s := newTestAlloc(t)
	// Simulate a management thread holding the break lock for 1ms.
	now := s.Now()
	a.BreakLock().AcquireAt(now)
	a.BreakLock().HoldUntil(now.Add(simtime.Millisecond))
	// Exhaust the top chunk so malloc needs the lock.
	_, first := a.Malloc(now, 1024) // grows heap: waits for the lock
	if first < simtime.Millisecond {
		t.Fatalf("malloc cost %v, want ≥ 1ms lock wait", first)
	}
}

func TestStatsTracking(t *testing.T) {
	a, _, s := newTestAlloc(t)
	b1, _ := a.Malloc(s.Now(), 1024)
	b2, _ := a.Malloc(s.Now(), 300<<10)
	st := a.Stats()
	if st.Mallocs != 2 || st.BytesRequested != 1024+300<<10 {
		t.Fatalf("stats after mallocs: %+v", st)
	}
	if st.MmapBytes == 0 || st.HeapBytes == 0 {
		t.Fatalf("sizes not tracked: %+v", st)
	}
	a.Free(s.Now(), b1)
	a.Free(s.Now(), b2)
	st = a.Stats()
	if st.Frees != 2 || st.MmapBytes != 0 {
		t.Fatalf("stats after frees: %+v", st)
	}
}

func TestMallocZeroPanics(t *testing.T) {
	a, _, s := newTestAlloc(t)
	defer func() {
		if recover() == nil {
			t.Fatal("malloc(0) must panic in the model")
		}
	}()
	a.Malloc(s.Now(), 0)
}

// TestChurnKeepsKernelConsistent runs a malloc/touch/free churn and checks
// kernel invariants throughout.
func TestChurnKeepsKernelConsistent(t *testing.T) {
	a, k, s := newTestAlloc(t)
	rng := k.RNG()
	live := make([]*Block, 0, 256)
	for i := 0; i < 4000; i++ {
		switch {
		case len(live) > 0 && rng.IntN(3) == 0:
			idx := rng.IntN(len(live))
			a.Free(s.Now(), live[idx])
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
		default:
			var size int64
			if rng.IntN(10) == 0 {
				size = 128<<10 + rng.Int64N(512<<10)
			} else {
				size = 16 + rng.Int64N(32<<10)
			}
			b, _ := a.Malloc(s.Now(), size)
			a.Touch(s.Now(), b)
			live = append(live, b)
		}
		if i%256 == 0 {
			k.CheckInvariants()
			s.Advance(simtime.Millisecond)
		}
	}
	for _, b := range live {
		a.Free(s.Now(), b)
	}
	k.CheckInvariants()
}

func TestBinPosIndexStaysConsistent(t *testing.T) {
	a, _, s := newTestAlloc(t)
	// Allocate a run of same-sized chunks, free them in a scattered order
	// (populating one long bin list), then free the border chunk so the
	// top-chunk coalescing cascade removes binned chunks from the middle
	// of the list via removeFree.
	const n = 64
	blocks := make([]*Block, n)
	for i := range blocks {
		b, _ := a.Malloc(s.Now(), 1024)
		blocks[i] = b
	}
	// Free every chunk except the one bordering the top, even indexes
	// first, so the bin list's order differs from address order.
	for i := 0; i < n-1; i += 2 {
		a.Free(s.Now(), blocks[i])
	}
	for i := 1; i < n-1; i += 2 {
		a.Free(s.Now(), blocks[i])
	}
	if a.BinnedBytes() == 0 {
		t.Fatal("expected binned chunks")
	}
	// The border free cascades: every binned neighbour merges into the top
	// chunk one by one, each through removeFree's O(1) index path.
	a.Free(s.Now(), blocks[n-1])
	if got := a.BinnedBytes(); got != 0 {
		t.Fatalf("cascade left %d binned bytes, want 0", got)
	}
	if a.binPos.Len() != 0 || a.byEnd.Len() != 0 {
		t.Fatalf("stale indexes after cascade: binPos=%d byEnd=%d", a.binPos.Len(), a.byEnd.Len())
	}
}

// BenchmarkMallocFreeChurn drives the allocator through a steady
// malloc/free churn with coalescing cascades — the hot path of a cluster
// shard under a write-heavy workload.
func BenchmarkMallocFreeChurn(b *testing.B) {
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = 1 << 30
	cfg.SwapBytes = 256 << 20
	k := kernel.New(s, cfg)
	a := New(k, "bench", DefaultConfig())
	const window = 128
	blocks := make([]*Block, 0, window)
	sizes := []int64{512, 1024, 2048, 4096}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk, _ := a.Malloc(s.Now(), sizes[i%len(sizes)])
		blocks = append(blocks, blk)
		if len(blocks) == window {
			// Free in reverse so border chunks cascade through the bins.
			for j := len(blocks) - 1; j >= 0; j-- {
				a.Free(s.Now(), blocks[j])
			}
			blocks = blocks[:0]
		}
		s.Advance(100 * simtime.Nanosecond)
	}
}
