package glibcmalloc

import (
	"math/rand/v2"
	"sort"
	"testing"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// TestLiveHeapBlocksNeverOverlap churns the allocator and, after every
// step, asserts the fundamental allocator safety property: the byte ranges
// of live heap blocks are pairwise disjoint and all lie below the break.
func TestLiveHeapBlocksNeverOverlap(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		seed := seed
		t.Run("", func(t *testing.T) {
			runOverlapChurn(t, seed)
		})
	}
}

func runOverlapChurn(t *testing.T, seed uint64) {
	t.Helper()
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = 1 << 30
	cfg.Seed = seed
	k := kernel.New(s, cfg)
	a := New(k, "overlap", DefaultConfig())
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))

	live := make(map[*alloc.Block]struct{})
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && rng.IntN(5) < 2 {
			for b := range live {
				a.Free(s.Now(), b)
				delete(live, b)
				break
			}
		} else {
			size := 16 + rng.Int64N(40<<10)
			b, _ := a.Malloc(s.Now(), size)
			if b.Kind == alloc.BlockHeap {
				live[b] = struct{}{}
			} else {
				a.Free(s.Now(), b)
			}
		}
		if i%64 == 0 {
			assertDisjoint(t, a, live)
		}
	}
	assertDisjoint(t, a, live)
}

type byteRange struct{ start, end int64 }

func assertDisjoint(t *testing.T, a *Allocator, live map[*alloc.Block]struct{}) {
	t.Helper()
	ranges := make([]byteRange, 0, len(live))
	for b := range live {
		meta := decodeHeapMeta(b)
		if meta.start < 0 || meta.start+meta.size > a.BreakBytes() {
			t.Fatalf("block [%d,%d) outside heap [0,%d)", meta.start, meta.start+meta.size, a.BreakBytes())
		}
		if meta.start+meta.size > a.UsedEnd() {
			t.Fatalf("block [%d,%d) beyond allocated area end %d", meta.start, meta.start+meta.size, a.UsedEnd())
		}
		ranges = append(ranges, byteRange{meta.start, meta.start + meta.size})
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].start < ranges[j].start })
	for i := 1; i < len(ranges); i++ {
		if ranges[i].start < ranges[i-1].end {
			t.Fatalf("overlapping blocks: [%d,%d) and [%d,%d)",
				ranges[i-1].start, ranges[i-1].end, ranges[i].start, ranges[i].end)
		}
	}
}
