// Package glibcmalloc models Glibc 2.23's ptmalloc as the paper describes
// it (§2.1): one brk-managed main heap split into an allocated area and a
// top chunk, small requests (< 128 KiB) served from bins or carved from the
// top chunk (growing the break on demand), large requests mmapped and
// munmapped directly, and heap trimming when the top chunk exceeds the trim
// threshold. Virtual-physical mappings are constructed lazily at first
// touch — the kernel's on-demand behaviour the paper identifies as the
// latency problem.
//
// The model exposes the heap internals (top chunk, break lock, grow/trim
// primitives) that Hermes' management thread manipulates, so the Hermes
// implementation in internal/core is literally a delta on this package,
// mirroring how the paper patches Glibc.
package glibcmalloc

import (
	"fmt"
	"sort"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/flatmap"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// Config carries the tunables of the model; defaults are Glibc's.
type Config struct {
	// MmapThreshold routes requests of at least this many bytes to mmap
	// (M_MMAP_THRESHOLD, 128 KiB).
	MmapThreshold int64
	// TopPad is extra space requested on each sbrk growth (M_TOP_PAD).
	TopPad int64
	// TrimThreshold: when the top chunk exceeds it, the heap is trimmed
	// back (M_TRIM_THRESHOLD). Hermes disables this and trims from its
	// management thread instead.
	TrimThreshold int64
	// Align is the chunk alignment; HeaderBytes the per-chunk overhead.
	Align       int64
	HeaderBytes int64

	// MallocFastCost is the bookkeeping cost of a bin hit or top-chunk
	// carve; BinProbeCost the cost per bin size inspected during best-fit
	// search; FreeCost the bookkeeping cost of free.
	MallocFastCost simtime.Duration
	BinProbeCost   simtime.Duration
	FreeCost       simtime.Duration
}

// DefaultConfig returns Glibc 2.23 defaults.
func DefaultConfig() Config {
	return Config{
		MmapThreshold:  alloc.MmapThreshold,
		TopPad:         128 << 10,
		TrimThreshold:  128 << 10,
		Align:          16,
		HeaderBytes:    16,
		MallocFastCost: 150 * simtime.Nanosecond,
		BinProbeCost:   25 * simtime.Nanosecond,
		FreeCost:       120 * simtime.Nanosecond,
	}
}

// freeChunk is a free range inside the allocated area.
type freeChunk struct {
	start int64 // byte offset within the heap
	size  int64
}

// heapMeta is the Block.Meta payload for heap blocks, carried inline in the
// Block's two meta words.
type heapMeta struct {
	start int64
	size  int64
}

func (m heapMeta) encode() alloc.BlockMeta {
	return alloc.BlockMeta{Tag: alloc.MetaGlibcHeap, A: m.start, B: m.size}
}

func decodeHeapMeta(b *Block) heapMeta {
	if b.Meta.Tag != alloc.MetaGlibcHeap {
		panic("glibcmalloc: heap block without heap metadata")
	}
	return heapMeta{start: b.Meta.A, size: b.Meta.B}
}

// Allocator is the ptmalloc model for one process.
type Allocator struct {
	k    *kernel.Kernel
	proc *kernel.Process
	cfg  Config

	// usedEnd is the byte offset of the end of the allocated area; the
	// top chunk spans [usedEnd, BreakBytes).
	usedEnd int64

	// bins maps chunk size → free chunks of exactly that size; sizes
	// holds the distinct sizes sorted ascending for best-fit search;
	// byEnd indexes free chunks by their end offset for coalescing with
	// the top chunk; binPos maps a free chunk's start offset to its index
	// in its bin list, so coalescing removals are O(1) instead of a scan
	// over every same-sized chunk. All three indexes are flat tables: the
	// free/malloc cycle probes them on every request, so they must not
	// churn Go maps.
	bins   *flatmap.Map[[]freeChunk]
	sizes  []int64
	byEnd  *flatmap.Map[freeChunk]
	binPos *flatmap.Map[int32]

	binnedBytes int64

	// breakLock serialises program-break manipulation; Hermes' management
	// thread holds it while reserving (paper Fig. 6).
	breakLock simtime.Lock

	// embargoUntil/embargoBytes hide in-flight reservation space from the
	// process until the reserving step's lock hold expires: the discrete-
	// event step mutates state instantly, but a real malloc racing it
	// would not see the new top chunk until the expansion completes.
	embargoUntil simtime.Time
	embargoBytes int64

	mmapBytes int64
	stats     alloc.Stats

	// blocks recycles Block objects across malloc/free cycles.
	blocks alloc.BlockPool
}

var _ alloc.Allocator = (*Allocator)(nil)

// New creates the allocator for a fresh process registered with the kernel.
func New(k *kernel.Kernel, name string, cfg Config) *Allocator {
	if cfg.MmapThreshold <= 0 || cfg.Align <= 0 {
		panic(fmt.Sprintf("glibcmalloc: invalid config %+v", cfg))
	}
	return &Allocator{
		k:      k,
		proc:   k.CreateProcess(name),
		cfg:    cfg,
		bins:   flatmap.New[[]freeChunk](0),
		byEnd:  flatmap.New[freeChunk](0),
		binPos: flatmap.New[int32](0),
	}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "Glibc" }

// Process returns the backing kernel process.
func (a *Allocator) Process() *kernel.Process { return a.proc }

// Kernel returns the kernel this allocator runs against.
func (a *Allocator) Kernel() *kernel.Kernel { return a.k }

// BreakLock exposes the program-break lock for the Hermes management
// thread.
func (a *Allocator) BreakLock() *simtime.Lock { return &a.breakLock }

// BreakBytes returns the current program break as a byte offset.
func (a *Allocator) BreakBytes() int64 {
	return a.proc.Heap().Pages() * a.k.PageSize()
}

// TopBytes returns the free space in the top chunk.
func (a *Allocator) TopBytes() int64 { return a.BreakBytes() - a.usedEnd }

// SetTopEmbargo hides `bytes` of the top chunk until instant `until` — the
// window during which the management thread's expansion is still under
// construction behind the break lock.
func (a *Allocator) SetTopEmbargo(until simtime.Time, bytes int64) {
	a.embargoUntil = until
	a.embargoBytes = bytes
}

// visibleTop returns the top-chunk space a process thread can use at
// instant at.
func (a *Allocator) visibleTop(at simtime.Time) int64 {
	top := a.TopBytes()
	if at.Before(a.embargoUntil) {
		top -= a.embargoBytes
		if top < 0 {
			top = 0
		}
	}
	return top
}

// UsedEnd returns the end offset of the allocated area.
func (a *Allocator) UsedEnd() int64 { return a.usedEnd }

// HeapRegion returns the kernel region backing the main heap.
func (a *Allocator) HeapRegion() *kernel.Region { return a.proc.Heap() }

// Config returns the active configuration.
func (a *Allocator) Config() Config { return a.cfg }

// SetTrimThreshold overrides the trim threshold (Hermes passes MaxInt64 to
// take trimming over).
func (a *Allocator) SetTrimThreshold(v int64) { a.cfg.TrimThreshold = v }

// chunkSize rounds a request to the allocator's chunk granularity.
func (a *Allocator) chunkSize(size int64) int64 {
	c := size + a.cfg.HeaderBytes
	if rem := c % a.cfg.Align; rem != 0 {
		c += a.cfg.Align - rem
	}
	const minChunk = 32
	if c < minChunk {
		c = minChunk
	}
	return c
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(at simtime.Time, size int64) (*Block, simtime.Duration) {
	return a.mallocImpl(at, size)
}

// Block is an alias re-export so callers of this package read naturally.
type Block = alloc.Block

func (a *Allocator) mallocImpl(at simtime.Time, size int64) (*Block, simtime.Duration) {
	if size <= 0 {
		panic("glibcmalloc: malloc of non-positive size")
	}
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	if a.chunkSize(size) >= a.cfg.MmapThreshold {
		return a.mallocMmap(at, size)
	}
	return a.MallocSmall(at, size)
}

// MallocSmall serves a sub-threshold request from the bins or the top
// chunk, growing the heap when needed. Exported for Hermes, which shares
// this exact path (its management thread only changes what the top chunk
// already contains when the request arrives).
func (a *Allocator) MallocSmall(at simtime.Time, size int64) (*Block, simtime.Duration) {
	chunk := a.chunkSize(size)
	cost := a.cfg.MallocFastCost

	// 1. Exact-fit bin. Emptied bins keep their (empty) slice in the map so
	// the steady-state free/malloc cycle reuses its capacity instead of
	// reallocating it; the sizes index alone says which bins are live.
	if list, _ := a.bins.Get(chunk); len(list) != 0 {
		fc := list[len(list)-1]
		a.bins.Put(chunk, list[:len(list)-1])
		if len(list) == 1 {
			a.dropSize(chunk)
		}
		a.byEnd.Delete(fc.start + fc.size)
		a.binPos.Delete(fc.start)
		a.binnedBytes -= fc.size
		return a.heapBlock(size, fc.start, fc.size), cost
	}

	// 2. Best-fit: smallest binned chunk ≥ chunk, splitting the remainder.
	if idx := sort.Search(len(a.sizes), func(i int) bool { return a.sizes[i] >= chunk }); idx < len(a.sizes) {
		cost += simtime.Duration(idx+1) * a.cfg.BinProbeCost
		sz := a.sizes[idx]
		list, _ := a.bins.Get(sz)
		fc := list[len(list)-1]
		a.bins.Put(sz, list[:len(list)-1])
		if len(list) == 1 {
			a.dropSize(sz)
		}
		a.byEnd.Delete(fc.start + fc.size)
		a.binPos.Delete(fc.start)
		a.binnedBytes -= fc.size
		if rem := fc.size - chunk; rem >= 32 {
			a.insertFree(freeChunk{start: fc.start + chunk, size: rem})
			fc.size = chunk
		}
		return a.heapBlock(size, fc.start, fc.size), cost
	}
	cost += simtime.Duration(len(a.sizes)) * a.cfg.BinProbeCost

	// 3. Top chunk. Growing the break requires the break lock; if the
	// management thread (Hermes) holds it mid-expansion, the request waits
	// — and after the wait the top chunk has usually been refilled (paper
	// Fig. 5 "wait on routine").
	if a.visibleTop(at.Add(cost)) < chunk {
		lockAt := at.Add(cost)
		grant := a.breakLock.AcquireAt(lockAt)
		cost += grant.Sub(lockAt)
		if a.visibleTop(at.Add(cost)) < chunk {
			need := chunk - a.TopBytes() + a.cfg.TopPad
			cost += a.GrowHeap(at.Add(cost), need)
		}
	}
	start := a.usedEnd
	a.usedEnd += chunk
	return a.heapBlock(size, start, chunk), cost
}

// heapBlock builds the Block for a heap range (pooled, so the steady state
// allocates nothing).
func (a *Allocator) heapBlock(size, start, chunk int64) *Block {
	ps := a.k.PageSize()
	b := a.blocks.Get()
	*b = Block{
		Size:      size,
		ChunkSize: chunk,
		Kind:      alloc.BlockHeap,
		Region:    a.proc.Heap(),
		EndPage:   (start + chunk + ps - 1) / ps,
		Meta:      heapMeta{start: start, size: chunk}.encode(),
	}
	return b
}

// GrowHeap expands the break by at least `bytes` (rounded up to pages) and
// returns the sbrk cost. The caller must hold or have just acquired the
// break lock conceptually; in the simulation that means having waited on
// BreakLock if it was held.
func (a *Allocator) GrowHeap(at simtime.Time, bytes int64) simtime.Duration {
	ps := a.k.PageSize()
	pages := (bytes + ps - 1) / ps
	cost := a.k.Sbrk(at, a.proc, pages)
	a.stats.HeapBytes = a.BreakBytes()
	return cost
}

// TrimHeap shrinks the break so the top chunk keeps exactly keepTopBytes
// (rounded up to a page); no-op if the top chunk is already that small.
func (a *Allocator) TrimHeap(at simtime.Time, keepTopBytes int64) simtime.Duration {
	ps := a.k.PageSize()
	keepBreak := a.usedEnd + keepTopBytes
	if rem := keepBreak % ps; rem != 0 {
		keepBreak += ps - rem
	}
	pages := (a.BreakBytes() - keepBreak) / ps
	if pages <= 0 {
		return 0
	}
	cost := a.k.Sbrk(at, a.proc, -pages)
	a.stats.HeapBytes = a.BreakBytes()
	return cost
}

// mallocMmap serves a large request with a dedicated anonymous mapping.
func (a *Allocator) mallocMmap(at simtime.Time, size int64) (*Block, simtime.Duration) {
	ps := a.k.PageSize()
	chunk := a.chunkSize(size)
	pages := (chunk + ps - 1) / ps
	region, cost := a.k.Mmap(at, a.proc, pages)
	cost += a.cfg.MallocFastCost
	a.mmapBytes += pages * ps
	a.stats.MmapBytes = a.mmapBytes
	b := a.blocks.Get()
	*b = Block{
		Size:      size,
		ChunkSize: pages * ps,
		Kind:      alloc.BlockMmap,
		Region:    region,
		EndPage:   pages,
	}
	return b, cost
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(at simtime.Time, b *Block) simtime.Duration {
	b.MarkFreed()
	a.stats.Frees++
	a.stats.BytesFreed += b.Size
	if b.Kind == alloc.BlockMmap {
		// Glibc releases mmapped chunks straight back to the OS (§2.1).
		pages := b.Region.Pages()
		cost := a.k.Munmap(at, b.Region, pages)
		a.mmapBytes -= pages * a.k.PageSize()
		a.stats.MmapBytes = a.mmapBytes
		a.blocks.Put(b)
		return cost + a.cfg.FreeCost
	}
	return a.freeHeap(at, b)
}

func (a *Allocator) freeHeap(at simtime.Time, b *Block) simtime.Duration {
	meta := decodeHeapMeta(b)
	a.blocks.Put(b)
	cost := a.cfg.FreeCost
	if meta.start+meta.size == a.usedEnd {
		// Chunk borders the top: merge into the top chunk, then cascade
		// any binned chunks that now border it (glibc's coalescing).
		a.usedEnd = meta.start
		for {
			fc, ok := a.byEnd.Get(a.usedEnd)
			if !ok {
				break
			}
			a.removeFree(fc)
			a.usedEnd = fc.start
		}
	} else {
		a.insertFree(freeChunk{start: meta.start, size: meta.size})
	}
	// Trim when the top chunk exceeds the threshold (M_TRIM_THRESHOLD).
	if a.cfg.TrimThreshold > 0 && a.TopBytes() > a.cfg.TrimThreshold+a.cfg.TopPad {
		lockAt := at.Add(cost)
		grant := a.breakLock.AcquireAt(lockAt)
		cost += grant.Sub(lockAt)
		cost += a.TrimHeap(at.Add(cost), a.cfg.TopPad)
	}
	return cost
}

func (a *Allocator) insertFree(fc freeChunk) {
	list, _ := a.bins.Get(fc.size)
	if len(list) == 0 {
		// The size is absent from the sorted index (emptied bins keep an
		// empty slice in the table but leave the index).
		idx := sort.Search(len(a.sizes), func(i int) bool { return a.sizes[i] >= fc.size })
		a.sizes = append(a.sizes, 0)
		copy(a.sizes[idx+1:], a.sizes[idx:])
		a.sizes[idx] = fc.size
	}
	list = append(list, fc)
	a.bins.Put(fc.size, list)
	a.binPos.Put(fc.start, int32(len(list)-1))
	a.byEnd.Put(fc.start+fc.size, fc)
	a.binnedBytes += fc.size
}

// removeFree deletes a specific free chunk (found via byEnd) in O(1): the
// binPos index locates it inside its bin list, and the vacated slot is
// back-filled by the list's last chunk.
func (a *Allocator) removeFree(fc freeChunk) {
	list, _ := a.bins.Get(fc.size)
	pos, ok := a.binPos.Get(fc.start)
	i := int(pos)
	if !ok || i >= len(list) || list[i] != fc {
		panic(fmt.Sprintf("glibcmalloc: free-chunk index out of sync for chunk at %d", fc.start))
	}
	last := len(list) - 1
	if i != last {
		list[i] = list[last]
		a.binPos.Put(list[i].start, int32(i))
	}
	a.bins.Put(fc.size, list[:last])
	a.binPos.Delete(fc.start)
	if last == 0 {
		a.dropSize(fc.size)
	}
	a.byEnd.Delete(fc.start + fc.size)
	a.binnedBytes -= fc.size
}

func (a *Allocator) dropSize(sz int64) {
	idx := sort.Search(len(a.sizes), func(i int) bool { return a.sizes[i] >= sz })
	if idx < len(a.sizes) && a.sizes[idx] == sz {
		a.sizes = append(a.sizes[:idx], a.sizes[idx+1:]...)
	}
}

// BinnedBytes returns the bytes parked in free bins (tests/diagnostics).
func (a *Allocator) BinnedBytes() int64 { return a.binnedBytes }

// Touch implements alloc.Allocator.
func (a *Allocator) Touch(at simtime.Time, b *Block) simtime.Duration {
	return alloc.TouchBlock(a.k, at, b)
}

// Access implements alloc.Allocator.
func (a *Allocator) Access(at simtime.Time, b *Block, bytes int64) simtime.Duration {
	return alloc.AccessBlock(a.k, at, b, bytes)
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats {
	st := a.stats
	st.HeapBytes = a.BreakBytes()
	st.MmapBytes = a.mmapBytes
	return st
}

// Close implements alloc.Allocator (no background machinery in Glibc).
func (a *Allocator) Close() {}
