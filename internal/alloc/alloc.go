// Package alloc defines the allocator abstraction shared by the Glibc,
// jemalloc, TCMalloc models and Hermes. An Allocator owns one simulated
// process's dynamic memory and translates malloc/free/touch traffic into
// kernel operations (sbrk, mmap, faults, mlock) in virtual time.
//
// The split between Malloc and Touch mirrors the paper's measurement
// methodology (§2.1): malloc returns a virtual range quickly; the expensive
// part — constructing the virtual-physical mapping — happens when the
// application first writes the memory. The micro-benchmark and both
// services write right after allocating, so workloads call Malloc and then
// Touch and report the sum as "memory allocation latency", exactly as the
// paper measures it.
package alloc

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// MmapThreshold is Glibc's default M_MMAP_THRESHOLD: requests at or above
// 128 KiB take the mmap path (§2.1).
const MmapThreshold = 128 << 10

// BlockKind says which path produced a block.
type BlockKind int

const (
	// BlockHeap blocks live in the brk-managed main heap.
	BlockHeap BlockKind = iota + 1
	// BlockMmap blocks have their own (or a shared) mmapped region.
	BlockMmap
)

// Block is an allocated range handed to the application.
type Block struct {
	// Size is the usable size the caller asked for, in bytes.
	Size int64
	// ChunkSize is the rounded size the allocator actually reserved.
	ChunkSize int64
	// Kind records the allocation path.
	Kind BlockKind
	// Region is the kernel region backing the block.
	Region *kernel.Region
	// EndPage is the exclusive page index of the block's end within its
	// region (heap blocks: offset from heap start). First-touch fault
	// counts are derived from it against the region's touched watermark.
	EndPage int64
	// PreMapped marks blocks whose pages are resident at handout and were
	// protected from reclaim until then (Hermes' mlocked reservations):
	// such requests complete without entering the kernel at all, so the
	// ambient reclaim slowdown does not apply to them (workload.
	// JitterRequest). Allocator-cache reuse (jemalloc extents, TCMalloc
	// thread caches) avoids faults too but its memory is reclaimable, so
	// it does not get this flag.
	PreMapped bool

	touched bool
	freed   bool

	// Meta carries allocator-private bookkeeping inline (e.g. the heap
	// chunk's byte range for coalescing-with-top on free). It used to be an
	// `any`: boxing the per-allocator meta struct into an interface heap-
	// allocated on every malloc, which the zero-allocation request path
	// cannot afford (see docs/ARCHITECTURE.md, "Hot path & memory
	// discipline").
	Meta BlockMeta
}

// BlockMeta is two opaque words of allocator-private bookkeeping plus a tag
// identifying the allocator path that wrote them, so free-path routing can
// still reject foreign blocks.
type BlockMeta struct {
	Tag  MetaTag
	A, B int64
}

// MetaTag identifies the allocator path that owns a block's Meta words.
type MetaTag uint8

// The meta tags of the allocator models. Hermes shares MetaGlibcHeap for
// its heap blocks (its small path is literally the Glibc model's).
const (
	MetaNone MetaTag = iota
	MetaGlibcHeap
	MetaJemalloc
	MetaTCMalloc
)

// BlockPool recycles Block objects within one allocator, so steady-state
// malloc/free cycles stop producing garbage: a freed Block returns to the
// pool and the next Malloc reuses it. Reuse resets the object, which
// retires the double-free safety net for handles freed before the reuse —
// the price of a zero-allocation steady state (stale handles still panic
// until the object is reused).
type BlockPool struct {
	free []*Block
}

// Get returns a Block for reuse. The Block's contents are unspecified —
// the caller must fully assign it (`*b = Block{...}`) before handing it
// out; every allocator's construction site does exactly that, so Get does
// not pay for a redundant zeroing on the hot path.
func (p *BlockPool) Get() *Block {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return b
	}
	return &Block{}
}

// Put parks a freed Block for reuse. Callers must not touch the Block
// afterwards.
func (p *BlockPool) Put(b *Block) { p.free = append(p.free, b) }

// Touched reports whether the block has been written at least once.
func (b *Block) Touched() bool { return b.touched }

// MarkTouched records the first write; used by the shared touch helper.
func (b *Block) MarkTouched() { b.touched = true }

// Freed reports whether the block has been released.
func (b *Block) Freed() bool { return b.freed }

// MarkFreed records the release. Double frees are programming errors.
func (b *Block) MarkFreed() {
	if b.freed {
		panic("alloc: double free")
	}
	b.freed = true
}

// Stats aggregates an allocator's activity for the experiment reports.
type Stats struct {
	Mallocs        int64
	Frees          int64
	BytesRequested int64
	BytesFreed     int64
	HeapBytes      int64 // current heap (brk) size
	MmapBytes      int64 // current mmapped bytes
	ReservedBytes  int64 // Hermes: currently reserved, not yet handed out
	ReservePeak    int64 // Hermes: peak reservation (overhead accounting)
}

// Allocator is the malloc-library abstraction.
type Allocator interface {
	// Name identifies the allocator in experiment output ("Glibc",
	// "Hermes", ...).
	Name() string
	// Malloc reserves size bytes and returns the block plus the latency
	// the calling thread observed.
	Malloc(at simtime.Time, size int64) (*Block, simtime.Duration)
	// Free releases a block, returning the observed latency.
	Free(at simtime.Time, b *Block) simtime.Duration
	// Touch models the application's first write of the whole block
	// (faulting unmapped pages, swapping in reclaimed ones) and returns
	// the observed latency.
	Touch(at simtime.Time, b *Block) simtime.Duration
	// Access models a later read/write of n bytes of the block (possible
	// swap-ins, no first-touch faults).
	Access(at simtime.Time, b *Block, bytes int64) simtime.Duration
	// Stats returns a snapshot of the allocator's counters.
	Stats() Stats
	// Close tears down background machinery (management threads).
	Close()
}

// TouchBlock is the shared Touch implementation: application write cost
// plus first-touch faulting against the backing region's touched watermark.
func TouchBlock(k *kernel.Kernel, at simtime.Time, b *Block) simtime.Duration {
	if b.Freed() {
		panic("alloc: touch after free")
	}
	costs := k.Costs()
	cost := costs.TouchBase + simtime.Duration((b.Size*int64(costs.TouchPerKB))/1024)
	if b.Touched() {
		return cost + AccessBlock(k, at.Add(cost), b, b.Size)
	}
	b.MarkTouched()
	if b.PreMapped {
		// Reserved memory: mapping already constructed; at worst the pages
		// were unlocked and since swapped (handled by Access on re-use).
		return cost
	}
	r := b.Region
	touched := r.Mapped() + r.Swapped()
	newPages := b.EndPage - touched
	if newPages > r.Untouched() {
		panic(fmt.Sprintf("alloc: block wants %d new pages but region has %d untouched", newPages, r.Untouched()))
	}
	if newPages > 0 {
		cost += k.FaultIn(at.Add(cost), r, newPages)
	} else {
		// Fully reused memory: possible swap-ins only.
		cost += k.Access(at.Add(cost), r, pagesFor(k, b.Size))
	}
	return cost
}

// AccessBlock models re-reading/re-writing bytes of an already-touched
// block: copy cost plus possible swap-ins.
func AccessBlock(k *kernel.Kernel, at simtime.Time, b *Block, bytes int64) simtime.Duration {
	if b.Freed() {
		panic("alloc: access after free")
	}
	if bytes <= 0 {
		return 0
	}
	if bytes > b.Size {
		bytes = b.Size
	}
	costs := k.Costs()
	cost := simtime.Duration((bytes * int64(costs.TouchPerKB)) / 1024)
	cost += k.Access(at.Add(cost), b.Region, pagesFor(k, bytes))
	return cost
}

func pagesFor(k *kernel.Kernel, bytes int64) int64 {
	ps := k.PageSize()
	return (bytes + ps - 1) / ps
}

// PagesFor converts a byte count to pages for the given kernel geometry.
func PagesFor(k *kernel.Kernel, bytes int64) int64 { return pagesFor(k, bytes) }
