// Package metrics is the time-series layer of the experiment harness: a
// windowed collector that samples a cluster run on its virtual timeline —
// per-window latency quantiles, kernel reclaim/swap activity, RSS, the
// resilience counters and controller actions — and exporters that emit the
// stream as JSON-lines or Prometheus text exposition format for
// dashboarding and regression diffing.
//
// Determinism. The collector follows the same ownership discipline as the
// cluster's control plane (monitor.Tracker): all mutable state is per-node,
// windows roll lazily at each node's arrivals in arrival order, and the
// counter snapshot taken at a window close reads only that node's own
// machinery. The cluster-wide series is assembled once, single-threaded, in
// node index order at finish. A collector's output is therefore a pure
// function of the per-node execution histories — bit-identical across the
// sequential and parallel engines, and across repeated runs of one
// (config, scenario, seed) triple.
package metrics

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
)

// Config enables time-series collection on a cluster run.
type Config struct {
	// Period is the sampling-window width on the virtual timeline; every
	// Period of virtual time yields one Sample.
	Period simtime.Duration
}

// DefaultConfig samples once per virtual second.
func DefaultConfig() Config { return Config{Period: simtime.Second} }

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("metrics: sampling period must be > 0 (got %v)", c.Period)
	}
	return nil
}

// Counters is one node's cumulative counter state, snapshotted at window
// closes. All fields are running totals (RSSBytes is a gauge); the series
// assembly differences consecutive snapshots into per-window deltas.
type Counters struct {
	// Reclaims and Swapouts are the node kernel's direct-reclaim and
	// swap-out totals.
	Reclaims int64
	Swapouts int64
	// RSSBytes is the node's resident memory (total minus free), a gauge.
	RSSBytes int64
	// Resilience-layer totals (zero on runs without one).
	Shed     int64
	Retries  int64
	Errors   int64
	Timeouts int64
	Hedges   int64
}

// Sample is one cluster-wide window of the time series. Latency fields
// digest the window's served requests across all nodes; counter fields are
// per-window deltas summed across nodes; RSSBytes is the fleet gauge at the
// window close. All times are virtual.
type Sample struct {
	// Window is the window index from the run start.
	Window int64 `json:"window"`
	// Start and End bound the window on the virtual timeline (ns). The
	// final window of a run may be partial: its End is the run horizon.
	Start simtime.Time `json:"start_ns"`
	End   simtime.Time `json:"end_ns"`
	// Requests counts served requests in the window.
	Requests int64 `json:"requests"`
	// P50, P99, Max and Mean digest the window's served latencies.
	P50  simtime.Duration `json:"p50_ns"`
	P99  simtime.Duration `json:"p99_ns"`
	Max  simtime.Duration `json:"max_ns"`
	Mean simtime.Duration `json:"mean_ns"`
	// Kernel activity in the window (deltas) and resident memory at its
	// close (gauge, summed across nodes).
	Reclaims int64 `json:"reclaims"`
	Swapouts int64 `json:"swapouts"`
	RSSBytes int64 `json:"rss_bytes"`
	// Resilience counters in the window (deltas).
	Shed     int64 `json:"shed"`
	Retries  int64 `json:"retries"`
	Errors   int64 `json:"errors"`
	Timeouts int64 `json:"timeouts"`
	Hedges   int64 `json:"hedges"`
	// Actions counts controller decisions that fired in the window.
	Actions int64 `json:"actions"`
}

// windowRec is one node's closed window: the latency digest plus the
// node's cumulative counters at the close.
type windowRec struct {
	hist *stats.Histogram // nil when the window served nothing
	at   Counters
}

// nodeCollector is one node's windowed state. Only the owning node's
// goroutine touches it until Finish.
type nodeCollector struct {
	open   *stats.Histogram
	widx   int64
	closed []windowRec
	snap   func() Counters
}

func (nc *nodeCollector) close() {
	var h *stats.Histogram
	if nc.open.Count() > 0 {
		h = nc.open.Clone()
		nc.open.Reset()
	}
	nc.closed = append(nc.closed, windowRec{hist: h, at: nc.snap()})
	nc.widx++
}

// Collector samples one cluster run. Tick and Observe are called from the
// serving node's goroutine and touch only that node's slot; Finish and
// Series run single-threaded after the run.
type Collector struct {
	start   simtime.Time
	period  simtime.Duration
	nodes   []*nodeCollector
	horizon simtime.Time
}

// NewCollector builds a collector for a fleet of nodes whose first window
// opens at start. snap must return node `i`'s cumulative Counters reading
// only state owned by node i — it is invoked from node i's goroutine at
// window closes (and once per node, single-threaded, at Finish).
func NewCollector(start simtime.Time, period simtime.Duration, nodes int, snap func(node int) Counters) *Collector {
	if period <= 0 {
		panic("metrics: collector period must be > 0")
	}
	c := &Collector{start: start, period: period, nodes: make([]*nodeCollector, nodes)}
	for i := range c.nodes {
		i := i
		c.nodes[i] = &nodeCollector{open: stats.NewHistogram(), snap: func() Counters { return snap(i) }}
	}
	return c
}

// Tick closes every window boundary of the node at or before the arrival
// instant — call once per arrival, before any serve/shed/error decision, so
// rejected attempts advance windows exactly like served ones.
func (c *Collector) Tick(node int, at simtime.Time) {
	nc := c.nodes[node]
	w := int64(at.Sub(c.start) / c.period)
	for nc.widx < w {
		nc.close()
	}
}

// Observe records one served latency into the node's open window.
func (c *Collector) Observe(node int, lat simtime.Duration) {
	c.nodes[node].open.Record(lat)
}

// Finish closes every node's remaining windows so all nodes cover the same
// span [start, horizon]; the final window is partial when the horizon falls
// inside it. Single-threaded, after the run settles on its common horizon.
func (c *Collector) Finish(horizon simtime.Time) {
	if horizon.Before(c.start) {
		horizon = c.start
	}
	c.horizon = horizon
	span := horizon.Sub(c.start)
	total := int64(span / c.period)
	if span%c.period != 0 || total == 0 {
		total++ // trailing partial window (or an empty run's single window)
	}
	for _, nc := range c.nodes {
		for nc.widx < total {
			nc.close()
		}
	}
}

// Series assembles the cluster-wide time series: per window, the per-node
// digests merged in node index order and the counter deltas summed across
// nodes. actions lists the controller decisions' firing instants (the
// merged action log); each is attributed to the window containing it.
// Series must be called after Finish.
func (c *Collector) Series(actions []simtime.Time) []Sample {
	if len(c.nodes) == 0 {
		return nil
	}
	total := int(c.nodes[0].widx)
	samples := make([]Sample, 0, total)
	merged := stats.NewHistogram()
	for w := 0; w < total; w++ {
		s := Sample{
			Window: int64(w),
			Start:  c.start.Add(simtime.Duration(w) * c.period),
			End:    c.start.Add(simtime.Duration(w+1) * c.period),
		}
		if s.End.After(c.horizon) {
			s.End = c.horizon
		}
		merged.Reset()
		for _, nc := range c.nodes {
			rec := nc.closed[w]
			if rec.hist != nil {
				merged.Merge(rec.hist)
			}
			var prev Counters
			if w > 0 {
				prev = nc.closed[w-1].at
			}
			s.Reclaims += rec.at.Reclaims - prev.Reclaims
			s.Swapouts += rec.at.Swapouts - prev.Swapouts
			s.RSSBytes += rec.at.RSSBytes
			s.Shed += rec.at.Shed - prev.Shed
			s.Retries += rec.at.Retries - prev.Retries
			s.Errors += rec.at.Errors - prev.Errors
			s.Timeouts += rec.at.Timeouts - prev.Timeouts
			s.Hedges += rec.at.Hedges - prev.Hedges
		}
		if n := merged.Count(); n > 0 {
			s.Requests = n
			s.P50 = merged.Quantile(50)
			s.P99 = merged.Quantile(99)
			s.Max = merged.Max()
			s.Mean = merged.Sum() / simtime.Duration(n)
		}
		samples = append(samples, s)
	}
	for _, at := range actions {
		w := int64(at.Sub(c.start) / c.period)
		if w < 0 {
			w = 0
		}
		if w >= int64(total) {
			w = int64(total) - 1
		}
		samples[w].Actions++
	}
	return samples
}
