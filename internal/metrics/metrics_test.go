package metrics

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// fixedSnap returns a snap function backed by mutable per-node counters the
// test can advance between observations.
func fixedSnap(state []Counters) func(int) Counters {
	return func(node int) Counters { return state[node] }
}

func TestCollectorWindows(t *testing.T) {
	state := make([]Counters, 2)
	c := NewCollector(0, 10*simtime.Millisecond, 2, fixedSnap(state))

	// Node 0: two samples in window 0, one in window 2 (window 1 empty).
	c.Tick(0, 1*simtime.Time(simtime.Millisecond))
	c.Observe(0, 100*simtime.Microsecond)
	c.Tick(0, 2*simtime.Time(simtime.Millisecond))
	c.Observe(0, 300*simtime.Microsecond)
	state[0] = Counters{Reclaims: 5, RSSBytes: 1000}
	c.Tick(0, 25*simtime.Time(simtime.Millisecond)) // closes windows 0 and 1
	c.Observe(0, 50*simtime.Microsecond)
	state[0] = Counters{Reclaims: 9, RSSBytes: 800}

	// Node 1: one sample in window 1.
	c.Tick(1, 12*simtime.Time(simtime.Millisecond)) // closes window 0
	c.Observe(1, 200*simtime.Microsecond)
	state[1] = Counters{Shed: 3, RSSBytes: 500}

	c.Finish(simtime.Time(27 * simtime.Millisecond))
	samples := c.Series([]simtime.Time{
		simtime.Time(11 * simtime.Millisecond),
		simtime.Time(26 * simtime.Millisecond),
		simtime.Time(999 * simtime.Millisecond), // past the horizon: clamps to last
	})

	if len(samples) != 3 {
		t.Fatalf("want 3 windows, got %d", len(samples))
	}
	w0, w1, w2 := samples[0], samples[1], samples[2]

	if w0.Requests != 2 || w0.Mean != 200*simtime.Microsecond {
		t.Errorf("w0 = %+v, want 2 requests mean 200µs", w0)
	}
	if w0.Start != 0 || w0.End != simtime.Time(10*simtime.Millisecond) {
		t.Errorf("w0 bounds [%v, %v]", w0.Start, w0.End)
	}
	// Snapshots are lazy, like the control plane's windows: node 0's windows
	// 0 and 1 both closed at the 25ms tick, after Reclaims reached 5, so the
	// whole delta lands in window 0 and window 1's node-0 delta is zero.
	if w0.Reclaims != 5 || w1.Reclaims != 0 {
		t.Errorf("reclaim deltas = %d/%d, want 5/0", w0.Reclaims, w1.Reclaims)
	}

	if w1.Requests != 1 || w1.P50 != 200*simtime.Microsecond {
		t.Errorf("w1 = %+v, want node 1's single 200µs sample", w1)
	}
	// Deltas telescope: per-window sums reconstruct the final totals.
	if w0.Reclaims+w1.Reclaims+w2.Reclaims != 9 {
		t.Errorf("reclaim deltas don't telescope to the final total: %d/%d/%d",
			w0.Reclaims, w1.Reclaims, w2.Reclaims)
	}
	if w0.Shed+w1.Shed+w2.Shed != 3 {
		t.Errorf("shed deltas = %d/%d/%d, want total 3", w0.Shed, w1.Shed, w2.Shed)
	}

	// Final (partial) window: bounds end at the horizon, gauge reads the
	// final snapshots.
	if w2.End != simtime.Time(27*simtime.Millisecond) {
		t.Errorf("partial window end = %v, want 27ms", w2.End)
	}
	if w2.RSSBytes != 800+500 {
		t.Errorf("final RSS gauge = %d, want 1300", w2.RSSBytes)
	}
	if w2.Requests != 1 || w2.Max != 50*simtime.Microsecond {
		t.Errorf("w2 = %+v, want node 0's 50µs sample", w2)
	}

	// Action attribution: 11ms → w1, 26ms → w2, 999ms clamps to w2.
	if w0.Actions != 0 || w1.Actions != 1 || w2.Actions != 2 {
		t.Errorf("actions = %d/%d/%d, want 0/1/2", w0.Actions, w1.Actions, w2.Actions)
	}
}

func TestCollectorEmptyRun(t *testing.T) {
	c := NewCollector(0, simtime.Second, 1, func(int) Counters { return Counters{} })
	c.Finish(0)
	samples := c.Series(nil)
	if len(samples) != 1 {
		t.Fatalf("empty run: want 1 (empty) window, got %d", len(samples))
	}
	if samples[0].Requests != 0 || samples[0].End != 0 {
		t.Errorf("empty window = %+v", samples[0])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Sample{
		{Window: 0, Start: 0, End: 10, Requests: 5, P50: 100, P99: 900, Max: 1000,
			Mean: 300, Reclaims: 2, RSSBytes: 4096, Shed: 1, Actions: 3},
		{Window: 1, Start: 10, End: 20, Requests: 0},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\nin  %+v\nout %+v", in, out)
	}
	if _, err := ParseJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestPrometheusExport(t *testing.T) {
	samples := []Sample{
		{Window: 0, Start: 0, End: simtime.Time(simtime.Second), Requests: 10,
			P99: 90 * simtime.Microsecond, Reclaims: 4, RSSBytes: 1 << 20, Shed: 2},
		{Window: 1, Start: simtime.Time(simtime.Second), End: simtime.Time(2 * simtime.Second),
			Requests: 20, P99: 110 * simtime.Microsecond, Reclaims: 1, RSSBytes: 1 << 21},
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, samples); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// The format gate accepts its own output and counts every sample line.
	n, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParsePrometheus rejected own output: %v", err)
	}
	if want := len(promMetrics) * len(samples); n != want {
		t.Errorf("sample lines = %d, want %d", n, want)
	}

	// Counters are cumulative: requests_total reads 10 then 30.
	if !strings.Contains(text, "hermes_requests_total 10 1000") ||
		!strings.Contains(text, "hermes_requests_total 30 2000") {
		t.Errorf("cumulative counter lines missing:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE hermes_rss_bytes gauge") {
		t.Errorf("gauge TYPE header missing")
	}

	// The gate rejects decreasing counters and undeclared series.
	bad := "# HELP x x\n# TYPE x counter\nx 5 1\nx 3 2\n"
	if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
		t.Error("decreasing counter accepted")
	}
	if _, err := ParsePrometheus(strings.NewReader("y 1 1\n")); err == nil {
		t.Error("undeclared series accepted")
	}
}

// TestCollectorMirrorsTracker pins the window-roll rule against the control
// plane's: a boundary closes at the first arrival at-or-after it, never
// before, so metrics windows and controller windows stay aligned.
func TestCollectorWindowRollRule(t *testing.T) {
	c := NewCollector(0, 10, 1, func(int) Counters { return Counters{} })
	c.Tick(0, 9) // same window: no close
	c.Observe(0, 1)
	if got := c.nodes[0].widx; got != 0 {
		t.Fatalf("closed early: widx = %d", got)
	}
	c.Tick(0, 10) // boundary instant belongs to the next window
	if got := c.nodes[0].widx; got != 1 {
		t.Fatalf("boundary arrival did not close window: widx = %d", got)
	}
	c.Tick(0, 35) // skips two empty windows
	if got := c.nodes[0].widx; got != 3 {
		t.Fatalf("widx = %d, want 3", got)
	}
}
