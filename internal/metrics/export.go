package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file holds the wire formats of the time series: JSON-lines (one
// Sample object per line — the campaign runner's and the golden tests'
// format) and Prometheus text exposition (for scraping a finished run into
// standard dashboards). Both are pure functions of the sample slice.

// WriteJSONL writes one compact JSON object per sample, one per line.
func WriteJSONL(w io.Writer, samples []Sample) error {
	enc := json.NewEncoder(w)
	for i := range samples {
		if err := enc.Encode(&samples[i]); err != nil {
			return err
		}
	}
	return nil
}

// ParseJSONL reads a JSON-lines stream produced by WriteJSONL. Blank lines
// are ignored; any other malformed line is an error.
func ParseJSONL(r io.Reader) ([]Sample, error) {
	var samples []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var s Sample
		if err := json.Unmarshal([]byte(text), &s); err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", line, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// promMetric describes one exported Prometheus series.
type promMetric struct {
	name  string
	kind  string // "counter" or "gauge"
	help  string
	value func(s Sample, cum *Sample) float64
}

// promMetrics lists the exported series in emission order. Counter series
// are cumulative (the Prometheus convention), rebuilt from the per-window
// deltas; gauges are the window's instantaneous value.
var promMetrics = []promMetric{
	{"hermes_requests_total", "counter", "Requests served.",
		func(s Sample, cum *Sample) float64 { return float64(cum.Requests) }},
	{"hermes_latency_p50_seconds", "gauge", "Median service latency over the window.",
		func(s Sample, cum *Sample) float64 { return s.P50.Seconds() }},
	{"hermes_latency_p99_seconds", "gauge", "99th-percentile service latency over the window.",
		func(s Sample, cum *Sample) float64 { return s.P99.Seconds() }},
	{"hermes_latency_max_seconds", "gauge", "Maximum service latency over the window.",
		func(s Sample, cum *Sample) float64 { return s.Max.Seconds() }},
	{"hermes_reclaims_total", "counter", "Kernel direct reclaim passes.",
		func(s Sample, cum *Sample) float64 { return float64(cum.Reclaims) }},
	{"hermes_swapouts_total", "counter", "Pages swapped out.",
		func(s Sample, cum *Sample) float64 { return float64(cum.Swapouts) }},
	{"hermes_rss_bytes", "gauge", "Fleet resident memory.",
		func(s Sample, cum *Sample) float64 { return float64(s.RSSBytes) }},
	{"hermes_shed_total", "counter", "Requests shed by admission control.",
		func(s Sample, cum *Sample) float64 { return float64(cum.Shed) }},
	{"hermes_retries_total", "counter", "Client retries.",
		func(s Sample, cum *Sample) float64 { return float64(cum.Retries) }},
	{"hermes_errors_total", "counter", "Injected server errors.",
		func(s Sample, cum *Sample) float64 { return float64(cum.Errors) }},
	{"hermes_timeouts_total", "counter", "Client-observed timeouts.",
		func(s Sample, cum *Sample) float64 { return float64(cum.Timeouts) }},
	{"hermes_hedges_total", "counter", "Hedged requests issued.",
		func(s Sample, cum *Sample) float64 { return float64(cum.Hedges) }},
	{"hermes_controller_actions_total", "counter", "Control-plane reconfiguration actions.",
		func(s Sample, cum *Sample) float64 { return float64(cum.Actions) }},
}

// WritePrometheus writes the series in Prometheus text exposition format,
// one sample point per window per metric, timestamped with the window end
// on the virtual timeline (milliseconds, the exposition unit). Counter
// series carry cumulative values as the format requires.
func WritePrometheus(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	var cum Sample
	cums := make([]Sample, len(samples))
	for i, s := range samples {
		cum.Requests += s.Requests
		cum.Reclaims += s.Reclaims
		cum.Swapouts += s.Swapouts
		cum.Shed += s.Shed
		cum.Retries += s.Retries
		cum.Errors += s.Errors
		cum.Timeouts += s.Timeouts
		cum.Hedges += s.Hedges
		cum.Actions += s.Actions
		cums[i] = cum
	}
	for _, m := range promMetrics {
		fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		for i, s := range samples {
			ts := int64(s.End) / 1e6 // virtual ms
			fmt.Fprintf(bw, "%s %s %d\n",
				m.name, strconv.FormatFloat(m.value(s, &cums[i]), 'g', -1, 64), ts)
		}
	}
	return bw.Flush()
}

// ParsePrometheus validates a text-exposition stream: every non-comment
// line must be `name value timestamp`, every series must be declared by
// HELP/TYPE headers first, and counter series must be non-decreasing.
// Returns the number of sample lines. The CI format gate.
func ParsePrometheus(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := map[string]string{} // name -> counter|gauge
	last := map[string]float64{}
	n, line := 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return 0, fmt.Errorf("metrics: line %d: malformed comment %q", line, text)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 || (fields[3] != "counter" && fields[3] != "gauge") {
					return 0, fmt.Errorf("metrics: line %d: malformed TYPE %q", line, text)
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return 0, fmt.Errorf("metrics: line %d: want `name value timestamp`, got %q", line, text)
		}
		kind, ok := typed[fields[0]]
		if !ok {
			return 0, fmt.Errorf("metrics: line %d: series %s has no TYPE header", line, fields[0])
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0, fmt.Errorf("metrics: line %d: bad value %q: %v", line, fields[1], err)
		}
		if _, err := strconv.ParseInt(fields[2], 10, 64); err != nil {
			return 0, fmt.Errorf("metrics: line %d: bad timestamp %q: %v", line, fields[2], err)
		}
		if kind == "counter" {
			if prev, seen := last[fields[0]]; seen && v < prev {
				return 0, fmt.Errorf("metrics: line %d: counter %s decreased %v -> %v",
					line, fields[0], prev, v)
			}
			last[fields[0]] = v
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return n, nil
}
