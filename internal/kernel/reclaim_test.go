package kernel

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// fillAnon allocates and faults `pages` of anonymous memory in the process.
func fillAnon(k *Kernel, s *simtime.Scheduler, p *Process, pages int64) *Region {
	r, _ := k.Mmap(s.Now(), p, pages)
	k.FaultIn(s.Now(), r, pages)
	return r
}

func TestDirectReclaimTriggersBelowMinWatermark(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	hog := k.CreateProcess("hog")
	min, _, _ := k.Watermarks()
	// Consume everything except ~min+16 pages.
	fillAnon(k, s, hog, k.FreePages()-min-16)
	if k.Stats().DirectReclaims != 0 {
		t.Fatal("no direct reclaim expected while above min")
	}
	// The next large fault dips below min and must reclaim synchronously.
	victim := k.CreateProcess("victim")
	r, _ := k.Mmap(s.Now(), victim, 64)
	cost := k.FaultIn(s.Now(), r, 64)
	if k.Stats().DirectReclaims == 0 {
		t.Fatal("direct reclaim must fire below the min watermark")
	}
	if k.Stats().PagesSwapOut == 0 {
		t.Fatal("with no file cache, reclaim must swap anon pages")
	}
	// Swap I/O is HDD-priced: the fault must cost on the order of
	// milliseconds, not microseconds.
	if cost < simtime.Millisecond {
		t.Fatalf("pressured fault cost %v, want ≥ 1ms (HDD swap)", cost)
	}
	k.CheckInvariants()
}

func TestReclaimPrefersFileCacheOverSwap(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	batch := k.CreateProcess("batch")
	// Large file cache plus some anon.
	f := k.CreateFile("big.dat", 4096, batch.PID)
	k.ReadFile(s.Now(), f, 4096)
	fillAnon(k, s, batch, 2048)

	min, _, _ := k.Watermarks()
	// Burn the rest of free memory.
	filler := k.CreateProcess("filler")
	fillAnon(k, s, filler, k.FreePages()-min-8)

	victim := k.CreateProcess("victim")
	r, _ := k.Mmap(s.Now(), victim, 128)
	k.FaultIn(s.Now(), r, 128)

	st := k.Stats()
	if st.FileDropped == 0 {
		t.Fatal("reclaim must drop file cache first")
	}
	if st.PagesSwapOut != 0 {
		t.Fatalf("swapped %d pages while clean file cache was plentiful", st.PagesSwapOut)
	}
	k.CheckInvariants()
}

func TestFileCachePressureCheaperThanAnonPressure(t *testing.T) {
	// Reproduces the Fig 3 ordering: faults under file-cache pressure are
	// cheaper than under anonymous-page pressure.
	faultCost := func(fileBacked bool) simtime.Duration {
		k, s := newTestKernel(t, smallConfig())
		bg := k.CreateProcess("bg")
		min, _, _ := k.Watermarks()
		if fileBacked {
			f := k.CreateFile("pressure.dat", k.FreePages()-min-8, bg.PID)
			k.ReadFile(s.Now(), f, f.SizePages())
		} else {
			fillAnon(k, s, bg, k.FreePages()-min-8)
		}
		victim := k.CreateProcess("victim")
		r, _ := k.Mmap(s.Now(), victim, 256)
		return k.FaultIn(s.Now(), r, 256)
	}
	file := faultCost(true)
	anon := faultCost(false)
	if file >= anon {
		t.Fatalf("file-pressure fault %v not cheaper than anon-pressure fault %v", file, anon)
	}
	if anon < 2*file {
		t.Fatalf("anon pressure %v should be ≫ file pressure %v", anon, file)
	}
}

func TestKswapdWakesBelowLowAndStopsAboveHigh(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	bg := k.CreateProcess("bg")
	_, low, high := k.Watermarks()
	// File cache so kswapd can make fast progress.
	f := k.CreateFile("data.dat", 8192, bg.PID)
	k.ReadFile(s.Now(), f, 8192)
	// Dip below low.
	fillAnon(k, s, bg, k.FreePages()-low+32)
	if !k.KswapdActive() {
		t.Fatal("kswapd must wake below the low watermark")
	}
	// Let background reclaim run.
	s.Advance(200 * simtime.Millisecond)
	if k.KswapdActive() {
		t.Fatal("kswapd must stop above the high watermark")
	}
	if k.FreePages() < high {
		t.Fatalf("free %d below high watermark %d after kswapd", k.FreePages(), high)
	}
	k.CheckInvariants()
}

func TestSwapInOnAccess(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	r := fillAnon(k, s, p, 2048)
	min, _, _ := k.Watermarks()
	// Force swap-out of much of r by allocating more.
	hog := k.CreateProcess("hog")
	fillAnon(k, s, hog, k.FreePages()-min+512)
	if r.Swapped() == 0 {
		t.Fatal("expected part of the region to be swapped out")
	}
	// Touch the whole region: the swapped share must come back in via
	// major faults at disk cost. (Net Swapped() may not drop — reclaiming
	// room for the swap-in can push other pages of the same region out;
	// that thrashing is realistic — so assert on the fault counters.)
	cost := k.Access(s.Now(), r, 2048)
	if k.Stats().MajorFaults == 0 || k.Stats().PagesSwappedIn == 0 {
		t.Fatal("access of a swapped region must major-fault pages back in")
	}
	if cost < simtime.Millisecond {
		t.Fatalf("swap-in cost %v, want ≥ 1ms", cost)
	}
	k.CheckInvariants()
}

func TestAccessCleanRegionIsFree(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	r := fillAnon(k, s, p, 64)
	if cost := k.Access(s.Now(), r, 64); cost != 0 {
		t.Fatalf("access of resident pages cost %v, want 0", cost)
	}
}

func TestLockedPagesSurviveReclaim(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	svc := k.CreateProcess("svc")
	r, _ := k.Mmap(s.Now(), svc, 256)
	k.PopulateLocked(s.Now(), r, 256)

	min, _, _ := k.Watermarks()
	hog := k.CreateProcess("hog")
	fillAnon(k, s, hog, k.FreePages()-min+128)

	if r.Swapped() != 0 || r.Locked() != 256 {
		t.Fatalf("locked pages touched by reclaim: swapped=%d locked=%d", r.Swapped(), r.Locked())
	}
	k.CheckInvariants()
}

func TestOOMHandlerInvokedWhenNothingReclaimable(t *testing.T) {
	cfg := smallConfig()
	cfg.SwapBytes = 0 // no swap: anon is unreclaimable
	k, s := newTestKernel(t, cfg)
	var oomCalls int
	var hog *Process
	k.SetOOMHandler(func(k *Kernel, at simtime.Time, need int64) bool {
		oomCalls++
		if hog != nil && !hog.Dead() {
			k.ExitProcess(hog)
			return true
		}
		return false
	})
	hog = k.CreateProcess("hog")
	fillAnon(k, s, hog, k.FreePages()-64)
	victim := k.CreateProcess("victim")
	r, _ := k.Mmap(s.Now(), victim, 256)
	k.FaultIn(s.Now(), r, 256)
	if oomCalls == 0 {
		t.Fatal("OOM handler must be invoked")
	}
	if k.Stats().OOMKills == 0 {
		t.Fatal("OOM kill not counted")
	}
	k.CheckInvariants()
}

func TestOOMWithoutHandlerPanics(t *testing.T) {
	cfg := smallConfig()
	cfg.SwapBytes = 0
	k, s := newTestKernel(t, cfg)
	hog := k.CreateProcess("hog")
	fillAnon(k, s, hog, k.FreePages()-32)
	victim := k.CreateProcess("victim")
	r, _ := k.Mmap(s.Now(), victim, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("unhandled OOM must panic")
		}
	}()
	k.FaultIn(s.Now(), r, 256)
}

func TestSlowPathSurchargeOnlyUnderPressure(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	r, _ := k.Mmap(s.Now(), p, 64)
	k.FaultIn(s.Now(), r, 64)
	if k.Stats().SlowPathPages != 0 {
		t.Fatal("slow path charged with plenty of free memory")
	}
	min, _, _ := k.Watermarks()
	hog := k.CreateProcess("hog")
	fillAnon(k, s, hog, k.FreePages()-min-4)
	r2, _ := k.Mmap(s.Now(), p, 64)
	k.FaultIn(s.Now(), r2, 64)
	if k.Stats().SlowPathPages == 0 {
		t.Fatal("slow path not charged under pressure")
	}
}

func TestAvailableBytesCountsCleanFileCache(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("p")
	avail0 := k.AvailableBytes()
	f := k.CreateFile("x.dat", 1000, p.PID)
	k.ReadFile(s.Now(), f, 1000)
	// Clean cache is still "available".
	if got := k.AvailableBytes(); got != avail0 {
		t.Fatalf("available changed by clean cache fill: %d -> %d", avail0, got)
	}
	// Anon consumption reduces it.
	fillAnon(k, s, p, 1000)
	if got := k.AvailableBytes(); got >= avail0 {
		t.Fatal("anon fill must reduce available memory")
	}
}
