package kernel

import "github.com/hermes-sim/hermes/internal/simtime"

// This file implements the page-reclaim state machine the paper analyses in
// §2.3: scan the inactive lists from the LRU tail, age active pages into the
// inactive lists when they run dry, prefer dropping (clean) file cache, and
// fall back to swapping anonymous pages out to the HDD. Direct reclaim
// charges the full cost to the faulting caller; kswapd absorbs it in the
// background but still occupies the shared disk.

// directReclaim synchronously frees up to target pages on behalf of a
// faulting caller and returns the caller-visible cost.
func (k *Kernel) directReclaim(at simtime.Time, target int64) simtime.Duration {
	k.stats.DirectReclaims++
	cost := k.cfg.Costs.DirectReclaimBase
	_, c := k.reclaim(at.Add(cost), target, true)
	return cost + c
}

// reclaim frees up to target pages, returning (pages freed, time consumed).
// direct distinguishes caller-charged reclaim from kswapd work for the
// event counters; the algorithm is identical, as in Linux.
func (k *Kernel) reclaim(at simtime.Time, target int64, direct bool) (int64, simtime.Duration) {
	var freed int64
	var cost simtime.Duration

	for freed < target {
		remaining := target - freed
		switch {
		case k.lru.inactiveFile.pages > 0 && k.FileCachePages() > k.cfg.MinFilePages:
			n, c := k.reclaimFile(at.Add(cost), remaining, direct)
			freed += n
			cost += c
		case k.lru.activeFile.pages > 0 && k.FileCachePages() > k.cfg.MinFilePages:
			// Age: move tail spans from active_file to inactive_file.
			cost += k.age(k.lru.activeFile, k.lru.inactiveFile, remaining)
		case k.lru.inactiveAnon.pages > 0 && k.swapFree > 0:
			if !direct && k.disk.QueueDelay(at.Add(cost)) > 16*k.cfg.KswapdPeriod {
				// Background writeback throttling: kswapd must not queue
				// swap-out arbitrarily far ahead of the device.
				return freed, cost
			}
			n, c := k.reclaimAnon(at.Add(cost), remaining, direct)
			freed += n
			cost += c
		case k.lru.activeAnon.pages > 0 && k.swapFree > 0:
			cost += k.age(k.lru.activeAnon, k.lru.inactiveAnon, remaining)
		default:
			// Nothing reclaimable: everything is locked, swap is full, or
			// the file floor is reached with no anon to swap.
			return freed, cost
		}
	}
	k.stats.PagesReclaimed += freed
	return freed, cost
}

// age moves up to n pages from the tail of src to the head of dst, charging
// only scan cost (no I/O). Src and dst share the arena, so each aged span's
// node is recycled straight into dst.
func (k *Kernel) age(src, dst *lruList, n int64) simtime.Duration {
	pages := src.takeTail(n, dst.push)
	return simtime.Duration(pages) * k.cfg.Costs.ReclaimScanPerPage
}

// reclaimFile drops up to n pages from the inactive_file tail. Clean pages
// are released for only scan+drop cost; dirty pages are written back to the
// shared disk first — the paper's explanation for why file-cache pressure is
// mild next to anonymous pressure. Direct (caller-synchronous) writeback
// gets I/O priority.
func (k *Kernel) reclaimFile(at simtime.Time, n int64, direct bool) (int64, simtime.Duration) {
	var freed int64
	var cost simtime.Duration
	costs := k.cfg.Costs
	k.lru.inactiveFile.takeTail(n, func(sp span) {
		f := sp.file
		cost += simtime.Duration(sp.pages) * (costs.ReclaimScanPerPage + costs.FileDropPerPage)
		// Dirty pages are spread across the file's cached pages; reclaim
		// writes back its proportional share before dropping.
		if f.dirty > 0 && f.cached > 0 {
			dirtyHere := k.probRound(float64(sp.pages) * float64(f.dirty) / float64(f.cached))
			if dirtyHere > f.dirty {
				dirtyHere = f.dirty
			}
			if dirtyHere > 0 {
				cost += k.diskIO(at.Add(cost), dirtyHere, true, direct)
				f.dirty -= dirtyHere
			}
		}
		f.cached -= sp.pages
		k.freePagesBack(sp.pages)
		freed += sp.pages
		k.stats.FileDropped += sp.pages
	})
	return freed, cost
}

// diskIO routes a reclaim transfer: synchronous (direct) reclaim gets
// head-of-line priority, kswapd queues behind its own earlier writes.
func (k *Kernel) diskIO(at simtime.Time, pages int64, write, urgent bool) simtime.Duration {
	if urgent {
		return k.disk.IOUrgent(at, pages, write)
	}
	return k.disk.IO(at, pages, write)
}

// reclaimAnon swaps up to n pages out from the inactive_anon tail. Swap-out
// occupies the HDD in cluster-sized writes; direct reclaim's writes get
// I/O priority.
func (k *Kernel) reclaimAnon(at simtime.Time, n int64, direct bool) (int64, simtime.Duration) {
	if n > k.swapFree {
		n = k.swapFree
	}
	var freed int64
	var cost simtime.Duration
	costs := k.cfg.Costs
	k.lru.inactiveAnon.takeTail(n, func(sp span) {
		k.lastSwapOut = at
		r := sp.region
		cost += simtime.Duration(sp.pages) * costs.ReclaimScanPerPage
		cost += k.diskIO(at.Add(cost), sp.pages, true, direct)
		r.mapped -= sp.pages
		r.swapped += sp.pages
		k.swapFree -= sp.pages
		k.freePagesBack(sp.pages)
		freed += sp.pages
		k.stats.PagesSwapOut += sp.pages
	})
	return freed, cost
}

// swapIn brings n of region r's swapped pages back into RAM on behalf of a
// faulting caller (a major fault): allocate pages, read from the swap area
// with synchronous-I/O priority.
func (k *Kernel) swapIn(at simtime.Time, r *Region, n int64) simtime.Duration {
	if n <= 0 {
		return 0
	}
	if n > r.swapped {
		n = r.swapped
	}
	cost := k.allocPages(at, n)
	cost += k.disk.IOUrgent(at.Add(cost), n, false)
	cost += simtime.Duration(n) * k.cfg.Costs.SwapInPerPageCPU
	r.swapped -= n
	r.mapped += n
	k.swapFree += n
	k.lru.activeAnon.push(span{region: r, pages: n})
	k.stats.MajorFaults += n
	k.stats.PagesSwappedIn += n
	return cost
}
