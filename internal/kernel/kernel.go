// Package kernel simulates the Linux memory-management subsystem that the
// paper's analysis targets (§2.1, §2.3): on-demand virtual-physical mapping
// construction, the four-list LRU page reclaim machinery with its high/low/
// minimum watermarks, kswapd background reclaim, synchronous direct reclaim,
// swapping to an HDD, and the page cache with fadvise-driven release.
//
// The simulation is page-accurate in aggregate (counts per region and file,
// spans on the LRU lists) and runs in virtual time on a simtime.Scheduler.
// Every operation takes the caller's current instant and returns the
// latency the caller observes, so foreground stalls, background reclaim and
// disk queueing compose exactly as they do on a real node.
package kernel

import (
	"fmt"
	"math"

	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload/randgen"
)

// Config describes the simulated node. The defaults mirror the paper's
// testbed: 128 GB DRAM, HDD swap, Linux 4.4-style watermarks at roughly 1‰
// of the zone (§2.3: "low and high watermarks are 53 MB and 64 MB" on a
// 60 GB zone).
type Config struct {
	// TotalMemory is DRAM capacity in bytes.
	TotalMemory int64
	// SwapBytes is the swap-area capacity in bytes.
	SwapBytes int64
	// PageSize in bytes; 4 KiB everywhere in the paper.
	PageSize int64
	// Disk is the HDD cost model (swap and file I/O share the device).
	Disk DiskConfig
	// Costs is the virtual-time cost table.
	Costs CostModel
	// Seed drives all stochastic choices (jitter, fractional rounding).
	Seed uint64

	// KswapdPeriod is the background-reclaim scan interval.
	KswapdPeriod simtime.Duration
	// KswapdBatchPages caps pages reclaimed per kswapd tick. File-cache
	// drops hit this cap; anon reclaim is further throttled by the disk.
	KswapdBatchPages int64

	// MinFilePages protects a floor of file-cache pages from reclaim,
	// standing in for the kernel's working-set protection. Below this the
	// reclaimer turns to anonymous memory (swap).
	MinFilePages int64

	// DirectReclaimMarginPages is the extra headroom direct reclaim
	// restores beyond the minimum watermark (Linux reclaims in
	// SWAP_CLUSTER_MAX batches until the watermark is safe). Small values
	// keep individual direct-reclaim stalls in the low-millisecond range.
	DirectReclaimMarginPages int64

	// KswapdBoostPages extends kswapd's stop target beyond the high
	// watermark once it has been woken: under sustained pressure it
	// rebuilds a rolling free reserve instead of stopping at the bare
	// watermark (Linux's watermark boosting). This is the mechanism
	// behind the paper's observation that available memory "could not
	// further drop below 300 MB due to the indirect and direct reclaim
	// mechanisms" (§2.2) — the default keeps roughly that reserve.
	KswapdBoostPages int64
}

// DefaultConfig returns the paper-testbed node configuration.
func DefaultConfig() Config {
	const gib = int64(1) << 30
	return Config{
		TotalMemory:              128 * gib,
		SwapBytes:                64 * gib,
		PageSize:                 4096,
		Disk:                     DefaultDiskConfig(),
		Costs:                    DefaultCostModel(),
		Seed:                     1,
		KswapdPeriod:             500 * simtime.Microsecond,
		KswapdBatchPages:         512,
		MinFilePages:             (64 * (1 << 20)) / 4096, // 64 MiB
		DirectReclaimMarginPages: 64,
		KswapdBoostPages:         (256 * (1 << 20)) / 4096, // 256 MiB reserve
	}
}

func (c Config) validate() error {
	if c.TotalMemory <= 0 || c.PageSize <= 0 || c.TotalMemory%c.PageSize != 0 {
		return fmt.Errorf("kernel: bad memory geometry: total=%d page=%d", c.TotalMemory, c.PageSize)
	}
	if c.SwapBytes < 0 || c.SwapBytes%c.PageSize != 0 {
		return fmt.Errorf("kernel: bad swap size %d", c.SwapBytes)
	}
	if c.KswapdPeriod <= 0 || c.KswapdBatchPages <= 0 || c.DirectReclaimMarginPages < 0 {
		return fmt.Errorf("kernel: bad kswapd config")
	}
	return c.Disk.validate()
}

// Stats counts kernel events for the experiment reports.
type Stats struct {
	MinorFaults    int64
	MajorFaults    int64
	SlowPathPages  int64
	DirectReclaims int64
	KswapdRuns     int64
	PagesReclaimed int64
	PagesSwappedIn int64
	PagesSwapOut   int64
	FileDropped    int64
	FadvisedPages  int64
	OOMKills       int64
}

// OOMHandler is invoked when an allocation cannot be satisfied even after
// direct reclaim. It should release memory (e.g. kill a batch container) and
// report whether it did; returning false lets the kernel panic, which in a
// deterministic simulation is the correct "the experiment is misconfigured"
// signal.
type OOMHandler func(k *Kernel, at simtime.Time, needPages int64) bool

// Kernel is the simulated memory-management subsystem of one node.
type Kernel struct {
	cfg   Config
	sched *simtime.Scheduler
	rng   *randgen.Stream
	disk  *Disk

	totalPages int64
	freePages  int64
	swapTotal  int64
	swapFree   int64

	minWM  int64 // pages
	lowWM  int64
	highWM int64
	// wmScale multiplies the boot-time watermark heuristic (0 reads as 1);
	// SetWatermarkScale retunes it mid-run.
	wmScale float64

	lru lruSet

	procs      map[PID]*Process
	files      map[string]*File
	nextPID    PID
	nextRegion RegionID

	kswapdOn   bool
	kswapdTask *simtime.PeriodicTask
	// lastSwapOut remembers when reclaim last had to swap, distinguishing
	// swap-bound from file-bound pressure for the ambient factor.
	lastSwapOut simtime.Time

	oom OOMHandler

	stats Stats
}

// New creates a kernel on the given scheduler.
func New(sched *simtime.Scheduler, cfg Config) *Kernel {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	k := &Kernel{
		cfg:        cfg,
		sched:      sched,
		rng:        randgen.Split(cfg.Seed, streamKernel),
		disk:       NewDisk(cfg.Disk),
		totalPages: cfg.TotalMemory / cfg.PageSize,
		swapTotal:  cfg.SwapBytes / cfg.PageSize,
		lru:        newLRUSet(),
		procs:      make(map[PID]*Process),
		files:      make(map[string]*File),
	}
	k.freePages = k.totalPages
	k.swapFree = k.swapTotal
	k.setWatermarks()
	return k
}

// setWatermarks follows the Linux min_free_kbytes heuristic:
// min ≈ 4·sqrt(mem_kb) KB, low = 1.25·min, high = 1.5·min. On 128 GB this
// yields ≈45/56/68 MB, matching the paper's observation that watermarks sit
// near 1‰ of the zone and are "too small to timely trigger" reclaim.
func (k *Kernel) setWatermarks() {
	memKB := float64(k.cfg.TotalMemory) / 1024
	minKB := 4 * math.Sqrt(memKB)
	minPages := int64(minKB*1024) / k.cfg.PageSize
	if minPages < 16 {
		minPages = 16
	}
	if k.wmScale > 1 {
		minPages = int64(float64(minPages) * k.wmScale)
	}
	k.minWM = minPages
	k.lowWM = minPages * 5 / 4
	k.highWM = minPages * 3 / 2
}

// SetWatermarkScale retunes the zone watermarks to scale × the boot-time
// heuristic (clamped to >= 1) — the min_free_kbytes knob the paper's §2.2
// discussion turns: higher watermarks wake kswapd earlier and keep a
// larger free reserve, trading effective capacity for fewer direct-reclaim
// stalls. When the raised low watermark is already breached, kswapd wakes
// immediately. The adaptive control plane's watermark action drives this.
func (k *Kernel) SetWatermarkScale(scale float64) {
	if scale < 1 {
		scale = 1
	}
	k.wmScale = scale
	k.setWatermarks()
	if k.freePages < k.lowWM {
		k.wakeKswapd()
	}
}

// WatermarkScale returns the current watermark scale (1 when never tuned).
func (k *Kernel) WatermarkScale() float64 {
	if k.wmScale < 1 {
		return 1
	}
	return k.wmScale
}

// Scheduler returns the kernel's scheduler (shared by the whole node).
func (k *Kernel) Scheduler() *simtime.Scheduler { return k.sched }

// Disk returns the node's disk device.
func (k *Kernel) Disk() *Disk { return k.disk }

// Costs returns the cost table.
func (k *Kernel) Costs() CostModel { return k.cfg.Costs }

// PageSize returns the page size in bytes.
func (k *Kernel) PageSize() int64 { return k.cfg.PageSize }

// Stream IDs under a node's Config.Seed: every node-local subsystem derives
// its own independent randgen stream from (Seed, id), so subsystems never
// perturb each other's draw sequences. IDs are registered here — the one
// place per-node randomness is rooted — to keep them collision-free.
const (
	// streamKernel drives the kernel's own stochastic choices and the
	// request-latency jitter (workload.Jitter draws from Kernel.RNG).
	streamKernel uint64 = iota
	// StreamPressure drives workload.StartPressure's co-tenant behaviour.
	StreamPressure
)

// RNG exposes the kernel's deterministic random stream: request jitter and
// the kernel's own stochastic choices share it, so a single seed reproduces
// a whole experiment.
func (k *Kernel) RNG() *randgen.Stream { return k.rng }

// NewStream derives an independent stream (id, instance) from the node's
// seed (ids are registered in the Stream* table; instance distinguishes
// coexisting subsystems of one kind — e.g. a generator's PID). Subsystems
// that draw outside the kernel's own sequence — pressure generators,
// future co-tenants — take their stream here instead of sharing RNG, so
// their draws never shift the kernel's, nor each other's.
func (k *Kernel) NewStream(id, instance uint64) *randgen.Stream {
	return randgen.Split(randgen.SplitSeed(k.cfg.Seed, id), instance)
}

// Stats returns a copy of the event counters.
func (k *Kernel) Stats() Stats { return k.stats }

// TotalPages returns DRAM capacity in pages.
func (k *Kernel) TotalPages() int64 { return k.totalPages }

// FreePages returns the free-page count.
func (k *Kernel) FreePages() int64 { return k.freePages }

// FreeBytes returns free memory in bytes.
func (k *Kernel) FreeBytes() int64 { return k.freePages * k.cfg.PageSize }

// SwapFreePages returns free swap slots.
func (k *Kernel) SwapFreePages() int64 { return k.swapFree }

// SwapUsedPages returns occupied swap slots.
func (k *Kernel) SwapUsedPages() int64 { return k.swapTotal - k.swapFree }

// FileCachePages returns the page-cache size.
func (k *Kernel) FileCachePages() int64 {
	return k.lru.activeFile.pages + k.lru.inactiveFile.pages
}

// AvailableBytes estimates /proc/meminfo's MemAvailable: free pages plus
// cleanly reclaimable file cache. The paper's pressure generators push this
// to ~300 MB.
func (k *Kernel) AvailableBytes() int64 {
	var dirty int64
	for _, f := range k.files {
		dirty += f.dirty
	}
	avail := k.freePages + k.FileCachePages() - dirty
	if avail < 0 {
		avail = 0
	}
	return avail * k.cfg.PageSize
}

// UsedFraction returns 1 - free/total, the monitor daemon's trigger metric.
func (k *Kernel) UsedFraction() float64 {
	return 1 - float64(k.freePages)/float64(k.totalPages)
}

// Watermarks returns (min, low, high) in pages.
func (k *Kernel) Watermarks() (min, low, high int64) {
	return k.minWM, k.lowWM, k.highWM
}

// SetOOMHandler installs the out-of-memory policy hook.
func (k *Kernel) SetOOMHandler(h OOMHandler) { k.oom = h }

// UnderPressure reports whether free memory is below the low watermark —
// the regime in which allocations take the slow path.
func (k *Kernel) UnderPressure() bool { return k.freePages < k.lowWM }

// AmbientFactor returns the uniform foreground slowdown caused by active
// reclaim at instant now: zero when kswapd is idle, the swap factor while
// reclaim is swap-bound (it swapped within the last 50 ms), the milder file
// factor while reclaim survives on clean file drops. Workloads multiply
// their request latencies by 1+factor (see workload.Jitter).
func (k *Kernel) AmbientFactor(now simtime.Time) float64 {
	if !k.kswapdOn {
		return 0
	}
	if k.lastSwapOut > 0 && now.Sub(k.lastSwapOut) < 50*simtime.Millisecond {
		return k.cfg.Costs.AmbientSwapFactor
	}
	return k.cfg.Costs.AmbientFileFactor
}

// probRound converts a fractional page count into an integer page count with
// unbiased probabilistic rounding, keeping aggregate behaviour exact while
// staying deterministic under the seed.
func (k *Kernel) probRound(x float64) int64 {
	n := int64(x)
	if k.rng.Float64() < x-float64(n) {
		n++
	}
	return n
}

// allocPages obtains n physical pages for a faulting caller at instant at,
// returning the caller-visible cost. This is the paper's central slow path:
// below the low watermark kswapd is woken and the buddy-allocator slow path
// is charged; below the minimum watermark the caller performs synchronous
// direct reclaim, which may swap to the HDD.
func (k *Kernel) allocPages(at simtime.Time, n int64) simtime.Duration {
	if n <= 0 {
		return 0
	}
	var cost simtime.Duration
	entryFree := k.freePages

	if k.freePages-n < k.lowWM {
		k.wakeKswapd()
	}
	if k.freePages-n < k.minWM {
		// Synchronous direct reclaim: restore the minimum watermark plus a
		// small margin so the very next fault does not immediately repeat
		// the work.
		need := k.minWM + n + k.cfg.DirectReclaimMarginPages - k.freePages
		cost += k.directReclaim(at.Add(cost), need)
	}
	if k.freePages < n {
		// Reclaim could not keep up (e.g. everything locked or swap full):
		// invoke the OOM policy until the allocation fits.
		for k.freePages < n {
			if k.oom == nil || !k.oom(k, at.Add(cost), n-k.freePages) {
				panic(fmt.Sprintf("kernel: out of memory: need %d pages, free %d, no OOM handler progress", n, k.freePages))
			}
			k.stats.OOMKills++
		}
	}
	// Buddy-allocator slow-path surcharge when the zone was already
	// depleted at entry. The per-page rate depends on what reclaim has to
	// do: plentiful clean file cache keeps the path cheap (Fig 3 "file
	// cache pressure"); otherwise the anon/swap-bound rate applies
	// (Fig 3 "anonymous page pressure").
	if entryFree < k.lowWM {
		rate := k.cfg.Costs.AllocSlowPathPerPage
		if k.FileCachePages() > k.cfg.MinFilePages+4*n {
			rate = k.cfg.Costs.AllocSlowPathFilePerPage
		}
		cost += simtime.Duration(n) * rate
		k.stats.SlowPathPages += n
	}
	k.freePages -= n
	return cost
}

// freePagesBack returns n pages to the free pool.
func (k *Kernel) freePagesBack(n int64) {
	if n < 0 {
		panic("kernel: freeing negative pages")
	}
	k.freePages += n
	if k.freePages > k.totalPages {
		panic(fmt.Sprintf("kernel: free pages %d exceed total %d", k.freePages, k.totalPages))
	}
}

// wakeKswapd starts background reclaim if it is not already running.
func (k *Kernel) wakeKswapd() {
	if k.kswapdOn {
		return
	}
	k.kswapdOn = true
	k.stats.KswapdRuns++
	k.kswapdTask = simtime.NewPeriodicTask(k.sched, k.cfg.KswapdPeriod, k.kswapdTick)
}

// kswapdTick reclaims up to the batch cap, stopping once free memory clears
// the high watermark. Anon reclaim books real disk time, so a swap-bound
// kswapd also delays foreground I/O — deliberately. (The anon path of
// reclaim() additionally backs off when the disk queue is deep, mirroring
// writeback throttling, so background bookings cannot run unboundedly ahead
// of the clock.)
func (k *Kernel) kswapdTick(now simtime.Time) simtime.Duration {
	boost := k.cfg.KswapdBoostPages
	if max := k.totalPages / 16; boost > max {
		boost = max // small nodes cannot sustain a 256 MiB reserve
	}
	stopAt := k.highWM + boost
	if k.freePages >= stopAt {
		k.kswapdOn = false
		k.kswapdTask.Stop()
		return 0
	}
	target := stopAt - k.freePages
	if target > k.cfg.KswapdBatchPages {
		target = k.cfg.KswapdBatchPages
	}
	_, busy := k.reclaim(now, target, false)
	return busy
}

// KswapdActive reports whether background reclaim is currently running.
func (k *Kernel) KswapdActive() bool { return k.kswapdOn }

// CheckInvariants panics if page accounting is inconsistent. Tests call it
// after every mutation batch; experiments call it at phase boundaries.
func (k *Kernel) CheckInvariants() {
	var mapped, locked, swapped int64
	for _, p := range k.procs {
		regions := []*Region{p.heap}
		for _, r := range p.vmas {
			regions = append(regions, r)
		}
		for _, r := range regions {
			r.check()
			mapped += r.mapped
			locked += r.locked
			swapped += r.swapped
		}
	}
	var cached int64
	for _, f := range k.files {
		f.check()
		cached += f.cached
	}
	if k.freePages+mapped+cached != k.totalPages {
		panic(fmt.Sprintf("kernel: page accounting broken: free=%d mapped=%d cached=%d total=%d",
			k.freePages, mapped, cached, k.totalPages))
	}
	if k.swapTotal-k.swapFree != swapped {
		panic(fmt.Sprintf("kernel: swap accounting broken: used=%d regions=%d", k.swapTotal-k.swapFree, swapped))
	}
	anonLRU := k.lru.activeAnon.pages + k.lru.inactiveAnon.pages
	if anonLRU != mapped-locked {
		panic(fmt.Sprintf("kernel: anon LRU %d != unlocked mapped %d", anonLRU, mapped-locked))
	}
	fileLRU := k.lru.activeFile.pages + k.lru.inactiveFile.pages
	if fileLRU != cached {
		panic(fmt.Sprintf("kernel: file LRU %d != cached %d", fileLRU, cached))
	}
	for kind := listActiveAnon; kind <= listInactiveFile; kind++ {
		k.lru.byKind(kind).checkChains()
	}
}
