package kernel

import "fmt"

// PID identifies a simulated process.
type PID int

// RegionID identifies a memory region (heap or mmapped VMA) within the
// kernel. IDs are node-global so tooling can refer to any region directly.
type RegionID int64

// RegionKind distinguishes the single brk-managed heap from mmapped VMAs.
type RegionKind int

const (
	// RegionHeap is the process's main heap, grown and shrunk with Sbrk.
	RegionHeap RegionKind = iota + 1
	// RegionAnon is an anonymous mmapped VMA.
	RegionAnon
)

func (k RegionKind) String() string {
	switch k {
	case RegionHeap:
		return "heap"
	case RegionAnon:
		return "anon"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Region is a contiguous range of a process's virtual address space, tracked
// at page-count granularity. Page-count (rather than per-page) state keeps a
// 128 GB simulation cheap; the heap's linear growth and VMAs'
// touch-once-then-free lifecycle make counts exact for every workload in the
// paper (see DESIGN.md §1 for the one approximation: swap-in selection
// within a region is fractional).
type Region struct {
	ID   RegionID
	Proc *Process
	Kind RegionKind

	// pages is the region's current virtual size.
	pages int64
	// mapped counts pages resident in RAM (including locked).
	mapped int64
	// swapped counts pages currently in the swap area.
	swapped int64
	// locked counts mlocked pages; locked pages are resident but off the
	// LRU lists and immune to reclaim.
	locked int64

	// dead marks a region that has been fully unmapped or whose process
	// exited; late operations on it are programming errors.
	dead bool

	// lruChain holds the region's per-list span chains (index 0: active
	// anon, 1: inactive anon) — its resumable cursors into the kernel's LRU
	// arena. Maintained by the lruList operations.
	lruChain [2]ownerChain
}

// Pages returns the region's virtual size in pages.
func (r *Region) Pages() int64 { return r.pages }

// Mapped returns the resident page count (locked included).
func (r *Region) Mapped() int64 { return r.mapped }

// Swapped returns the count of pages in swap.
func (r *Region) Swapped() int64 { return r.swapped }

// Locked returns the mlocked page count.
func (r *Region) Locked() int64 { return r.locked }

// Untouched returns pages never faulted in (no RAM, no swap).
func (r *Region) Untouched() int64 { return r.pages - r.mapped - r.swapped }

// unlockedMapped is the page count eligible for the LRU lists.
func (r *Region) unlockedMapped() int64 { return r.mapped - r.locked }

func (r *Region) check() {
	if r.pages < 0 || r.mapped < 0 || r.swapped < 0 || r.locked < 0 ||
		r.locked > r.mapped || r.mapped+r.swapped > r.pages {
		panic(fmt.Sprintf("kernel: region %d inconsistent: pages=%d mapped=%d swapped=%d locked=%d",
			r.ID, r.pages, r.mapped, r.swapped, r.locked))
	}
}

// Process is a simulated OS process: one heap region plus any number of
// anonymous VMAs.
type Process struct {
	PID  PID
	Name string

	heap *Region
	vmas map[RegionID]*Region

	dead bool
}

// Heap returns the process's brk-managed heap region.
func (p *Process) Heap() *Region { return p.heap }

// VMA returns the anonymous region with the given ID, or nil.
func (p *Process) VMA(id RegionID) *Region { return p.vmas[id] }

// VMACount returns the number of live mmapped regions.
func (p *Process) VMACount() int { return len(p.vmas) }

// RSSPages returns resident pages across heap and VMAs.
func (p *Process) RSSPages() int64 {
	n := p.heap.mapped
	for _, r := range p.vmas {
		n += r.mapped
	}
	return n
}

// SwappedPages returns swapped-out pages across heap and VMAs.
func (p *Process) SwappedPages() int64 {
	n := p.heap.swapped
	for _, r := range p.vmas {
		n += r.swapped
	}
	return n
}

// LockedPages returns mlocked pages across heap and VMAs.
func (p *Process) LockedPages() int64 {
	n := p.heap.locked
	for _, r := range p.vmas {
		n += r.locked
	}
	return n
}

// VirtualPages returns the total virtual size across heap and VMAs.
func (p *Process) VirtualPages() int64 {
	n := p.heap.pages
	for _, r := range p.vmas {
		n += r.pages
	}
	return n
}

// Dead reports whether the process has exited.
func (p *Process) Dead() bool { return p.dead }
