package kernel

import (
	"math/rand/v2"
	"testing"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// TestRandomOperationSequenceKeepsInvariants drives the kernel with a long
// random mix of every operation and checks full accounting invariants after
// each step. This is the workhorse property test for the substrate.
func TestRandomOperationSequenceKeepsInvariants(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 42, 1234} {
		seed := seed
		t.Run("", func(t *testing.T) {
			runRandomOps(t, seed, 3000)
		})
	}
}

func runRandomOps(t *testing.T, seed uint64, steps int) {
	t.Helper()
	cfg := smallConfig()
	cfg.Seed = seed
	s := simtime.NewScheduler()
	k := New(s, cfg)
	rng := rand.New(rand.NewPCG(seed, seed))

	k.SetOOMHandler(func(k *Kernel, at simtime.Time, need int64) bool {
		// Kill the fattest process that is not the only one.
		var fattest *Process
		for _, p := range k.procs {
			if fattest == nil || p.RSSPages() > fattest.RSSPages() {
				fattest = p
			}
		}
		if fattest == nil {
			return false
		}
		k.ExitProcess(fattest)
		return true
	})

	var procs []*Process
	var regions []*Region
	var files []*File
	fileSeq := 0

	newProc := func() {
		procs = append(procs, k.CreateProcess("p"))
	}
	newProc()

	alive := func(r *Region) bool { return r != nil && !r.dead && !r.Proc.dead }

	for i := 0; i < steps; i++ {
		if len(procs) == 0 {
			newProc()
		}
		p := procs[rng.IntN(len(procs))]
		if p.Dead() {
			continue
		}
		switch rng.IntN(14) {
		case 0:
			newProc()
		case 1:
			k.Sbrk(s.Now(), p, int64(1+rng.IntN(64)))
		case 2:
			if u := p.Heap().Untouched(); u > 0 {
				k.FaultIn(s.Now(), p.Heap(), 1+rng.Int64N(u))
			}
		case 3:
			if p.Heap().Pages() > 0 {
				k.Sbrk(s.Now(), p, -(1 + rng.Int64N(p.Heap().Pages())))
			}
		case 4:
			r, _ := k.Mmap(s.Now(), p, int64(1+rng.IntN(128)))
			regions = append(regions, r)
		case 5, 6:
			if len(regions) > 0 {
				r := regions[rng.IntN(len(regions))]
				if alive(r) {
					if u := r.Untouched(); u > 0 {
						k.FaultIn(s.Now(), r, 1+rng.Int64N(u))
					}
				}
			}
		case 7:
			if len(regions) > 0 {
				r := regions[rng.IntN(len(regions))]
				if alive(r) && r.Pages() > 0 {
					k.Munmap(s.Now(), r, 1+rng.Int64N(r.Pages()))
				}
			}
		case 8:
			if len(regions) > 0 {
				r := regions[rng.IntN(len(regions))]
				if alive(r) {
					if u := r.Untouched(); u > 0 {
						k.PopulateLocked(s.Now(), r, 1+rng.Int64N(u))
					}
				}
			}
		case 9:
			if len(regions) > 0 {
				r := regions[rng.IntN(len(regions))]
				if alive(r) && r.Locked() > 0 {
					k.Munlock(s.Now(), r, 1+rng.Int64N(r.Locked()))
				}
			}
		case 10:
			fileSeq++
			f := k.CreateFile(fileName(fileSeq), int64(rng.IntN(512)), p.PID)
			files = append(files, f)
		case 11:
			if len(files) > 0 {
				f := files[rng.IntN(len(files))]
				if !f.Deleted() && f.SizePages() > 0 {
					k.ReadFile(s.Now(), f, 1+rng.Int64N(f.SizePages()))
				}
			}
		case 12:
			if len(files) > 0 {
				f := files[rng.IntN(len(files))]
				if !f.Deleted() {
					k.WriteFile(s.Now(), f, 1+rng.Int64N(64), true)
				}
			}
		case 13:
			if len(files) > 0 && rng.IntN(4) == 0 {
				f := files[rng.IntN(len(files))]
				if !f.Deleted() {
					k.FadviseDontNeed(s.Now(), f)
				}
			} else if len(regions) > 0 {
				r := regions[rng.IntN(len(regions))]
				if alive(r) {
					k.Access(s.Now(), r, 1+rng.Int64N(64))
				}
			}
		}
		s.Advance(simtime.Duration(rng.IntN(int(simtime.Millisecond))))
		k.CheckInvariants()

		// Drop dead references occasionally to exercise fresh ones.
		if i%500 == 499 {
			regions = compactRegions(regions)
			procs = compactProcs(procs)
		}
	}
	// Drain background work and re-check.
	s.Advance(simtime.Second)
	k.CheckInvariants()
}

func fileName(i int) string {
	return "f" + string(rune('a'+i%26)) + "-" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func compactRegions(in []*Region) []*Region {
	var out []*Region
	for _, r := range in {
		if r != nil && !r.dead && r.Proc != nil && !r.Proc.dead {
			out = append(out, r)
		}
	}
	return out
}

func compactProcs(in []*Process) []*Process {
	var out []*Process
	for _, p := range in {
		if !p.Dead() {
			out = append(out, p)
		}
	}
	return out
}

func TestDeterminismSameSeedSameResult(t *testing.T) {
	run := func() (int64, int64, Stats) {
		cfg := smallConfig()
		cfg.Seed = 99
		s := simtime.NewScheduler()
		k := New(s, cfg)
		p := k.CreateProcess("svc")
		min, _, _ := k.Watermarks()
		fillAnon(k, s, p, k.FreePages()-min-64)
		r, _ := k.Mmap(s.Now(), p, 512)
		k.FaultIn(s.Now(), r, 512)
		s.Advance(100 * simtime.Millisecond)
		return k.FreePages(), k.SwapUsedPages(), k.Stats()
	}
	f1, sw1, st1 := run()
	f2, sw2, st2 := run()
	if f1 != f2 || sw1 != sw2 || st1 != st2 {
		t.Fatalf("same seed diverged: (%d,%d,%+v) vs (%d,%d,%+v)", f1, sw1, st1, f2, sw2, st2)
	}
}
