package kernel

import "fmt"

// File is a simulated on-disk file whose pages may be cached in the page
// cache. Batch jobs stream input files through the cache (file-cache
// pressure); RocksDB's SSTs live here too. The monitor daemon's proactive
// reclamation targets exactly these pages.
type File struct {
	Name string
	// OwnerPID tags the process that created or loads the file; the
	// monitor daemon uses it to find batch-job files (the paper's daemon
	// shells out to lsof for the same information).
	OwnerPID PID

	// sizePages is the file length.
	sizePages int64
	// cached counts page-cache-resident pages (clean + dirty).
	cached int64
	// dirty counts cached pages that need writeback before they can be
	// dropped.
	dirty int64

	deleted bool

	// lruChain holds the file's per-list span chains (index 0: active file,
	// 1: inactive file) — its resumable cursors into the kernel's LRU
	// arena. Maintained by the lruList operations.
	lruChain [2]ownerChain
}

// SizePages returns the file length in pages.
func (f *File) SizePages() int64 { return f.sizePages }

// CachedPages returns pages resident in the page cache.
func (f *File) CachedPages() int64 { return f.cached }

// DirtyPages returns cached pages awaiting writeback.
func (f *File) DirtyPages() int64 { return f.dirty }

// Deleted reports whether the file has been removed.
func (f *File) Deleted() bool { return f.deleted }

func (f *File) check() {
	if f.sizePages < 0 || f.cached < 0 || f.dirty < 0 ||
		f.cached > f.sizePages || f.dirty > f.cached {
		panic(fmt.Sprintf("kernel: file %q inconsistent: size=%d cached=%d dirty=%d",
			f.Name, f.sizePages, f.cached, f.dirty))
	}
}
