package kernel

import (
	"reflect"
	"testing"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// TestExitProcessSeedReplay replays a scenario whose deterministic path
// runs through ExitProcess with many VMAs — the spot that used to iterate
// a Go map while releasing regions into the LRU lists and swap accounting.
// Two runs of the same seed must produce bit-identical kernel stats, clock
// and memory counters.
func TestExitProcessSeedReplay(t *testing.T) {
	type digest struct {
		Stats     Stats
		Now       simtime.Time
		Free      int64
		SwapFree  int64
		FileCache int64
	}
	run := func() digest {
		s := simtime.NewScheduler()
		cfg := DefaultConfig()
		cfg.TotalMemory = 96 << 20
		cfg.SwapBytes = 96 << 20
		k := New(s, cfg)

		// Two processes with interleaved VMAs, so the LRU lists hold
		// alternating spans from many regions of both owners.
		procs := []*Process{k.CreateProcess("a"), k.CreateProcess("b")}
		var regions [][]*Region
		for _, p := range procs {
			var rs []*Region
			for i := 0; i < 8; i++ {
				r, c := k.Mmap(s.Now(), p, 1024)
				s.Advance(c)
				rs = append(rs, r)
			}
			regions = append(regions, rs)
		}
		for round := 0; round < 4; round++ {
			for pi := range procs {
				for _, r := range regions[pi] {
					s.Advance(k.FaultIn(s.Now(), r, 256))
				}
			}
		}
		// Push the node under its watermarks so reclaim (and swap) runs,
		// then exit the first process mid-pressure and keep allocating.
		filler := k.CreateProcess("filler")
		fr, c := k.Mmap(s.Now(), filler, 2*k.TotalPages())
		s.Advance(c)
		min, _, _ := k.Watermarks()
		s.Advance(k.FaultIn(s.Now(), fr, k.FreePages()-min-64))
		s.Advance(k.FaultIn(s.Now(), fr, 512)) // dips below min: direct reclaim swaps
		k.ExitProcess(procs[0])
		s.Advance(k.FaultIn(s.Now(), fr, 1024))
		k.ExitProcess(procs[1])
		s.Advance(k.FaultIn(s.Now(), fr, 1024))
		s.Advance(50 * simtime.Millisecond) // let kswapd settle
		k.CheckInvariants()
		return digest{
			Stats:     k.Stats(),
			Now:       s.Now(),
			Free:      k.FreePages(),
			SwapFree:  k.SwapFreePages(),
			FileCache: k.FileCachePages(),
		}
	}

	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); !reflect.DeepEqual(first, again) {
			t.Fatalf("seed replay diverged on run %d:\nfirst %+v\nagain %+v", i+2, first, again)
		}
	}
	if first.Stats.PagesSwapOut == 0 {
		t.Fatal("scenario never swapped: pressure too low to exercise reclaim ordering")
	}
}
