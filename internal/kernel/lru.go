package kernel

import (
	"container/list"
	"fmt"
)

// listKind identifies one of the four page LRU lists Linux keeps
// (§2.3 of the paper): active/inactive × anonymous/file.
type listKind int

const (
	listActiveAnon listKind = iota + 1
	listInactiveAnon
	listActiveFile
	listInactiveFile
	listKindCount = 4
)

func (k listKind) String() string {
	switch k {
	case listActiveAnon:
		return "active_anon"
	case listInactiveAnon:
		return "inactive_anon"
	case listActiveFile:
		return "active_file"
	case listInactiveFile:
		return "inactive_file"
	default:
		return fmt.Sprintf("listKind(%d)", int(k))
	}
}

func (k listKind) anon() bool { return k == listActiveAnon || k == listInactiveAnon }

// span is a run of pages with a common owner sitting on one LRU list.
// Tracking runs instead of individual page structs keeps the simulation of a
// 128 GB node cheap while preserving the reclaim order and per-owner
// accounting that the paper's analysis depends on. Exactly one of region and
// file is non-nil.
type span struct {
	region *Region
	file   *File
	pages  int64
}

// lruList is a FIFO of spans: new pages enter at the front, reclaim scans
// from the back — the classic clock-ish approximation.
type lruList struct {
	kind  listKind
	spans list.List // of *span
	pages int64
}

func newLRUList(kind listKind) *lruList {
	return &lruList{kind: kind}
}

// push adds a span of pages at the MRU end, merging with the current head
// when the owner matches so long runs of faults stay one span.
func (l *lruList) push(sp span) {
	if sp.pages <= 0 {
		return
	}
	if head := l.spans.Front(); head != nil {
		h := head.Value.(*span)
		if h.region == sp.region && h.file == sp.file {
			h.pages += sp.pages
			l.pages += sp.pages
			return
		}
	}
	cp := sp
	l.spans.PushFront(&cp)
	l.pages += sp.pages
}

// takeTail removes up to max pages from the LRU end and returns the spans
// removed (oldest first). Each returned span's pages are already deducted.
func (l *lruList) takeTail(max int64) []span {
	var out []span
	for max > 0 {
		el := l.spans.Back()
		if el == nil {
			break
		}
		sp := el.Value.(*span)
		n := sp.pages
		if n > max {
			n = max
		}
		out = append(out, span{region: sp.region, file: sp.file, pages: n})
		sp.pages -= n
		l.pages -= n
		max -= n
		if sp.pages == 0 {
			l.spans.Remove(el)
		}
	}
	return out
}

// removeOwner strips up to max pages belonging to the given owner from the
// list (both region and file may be nil-checked by the caller via the
// matches closure style, but a direct comparison is enough here). It returns
// the number of pages removed. Used when pages leave a list for reasons
// other than reclaim: munmap, heap trim, mlock, fadvise, process exit.
func (l *lruList) removeOwner(region *Region, file *File, max int64) int64 {
	if max <= 0 {
		return 0
	}
	var removed int64
	for el := l.spans.Back(); el != nil && removed < max; {
		prev := el.Prev()
		sp := el.Value.(*span)
		if sp.region == region && sp.file == file {
			n := sp.pages
			if n > max-removed {
				n = max - removed
			}
			sp.pages -= n
			l.pages -= n
			removed += n
			if sp.pages == 0 {
				l.spans.Remove(el)
			}
		}
		el = prev
	}
	return removed
}

// ownerPages counts pages on the list belonging to the owner. O(spans);
// used only in tests and invariant checks.
func (l *lruList) ownerPages(region *Region, file *File) int64 {
	var n int64
	for el := l.spans.Front(); el != nil; el = el.Next() {
		sp := el.Value.(*span)
		if sp.region == region && sp.file == file {
			n += sp.pages
		}
	}
	return n
}

// lruSet bundles the four lists.
type lruSet struct {
	activeAnon   *lruList
	inactiveAnon *lruList
	activeFile   *lruList
	inactiveFile *lruList
}

func newLRUSet() lruSet {
	return lruSet{
		activeAnon:   newLRUList(listActiveAnon),
		inactiveAnon: newLRUList(listInactiveAnon),
		activeFile:   newLRUList(listActiveFile),
		inactiveFile: newLRUList(listInactiveFile),
	}
}

func (s lruSet) byKind(k listKind) *lruList {
	switch k {
	case listActiveAnon:
		return s.activeAnon
	case listInactiveAnon:
		return s.inactiveAnon
	case listActiveFile:
		return s.activeFile
	case listInactiveFile:
		return s.inactiveFile
	default:
		panic(fmt.Sprintf("kernel: bad list kind %d", int(k)))
	}
}

// totalPages returns pages across all four lists.
func (s lruSet) totalPages() int64 {
	return s.activeAnon.pages + s.inactiveAnon.pages + s.activeFile.pages + s.inactiveFile.pages
}
