package kernel

import "fmt"

// listKind identifies one of the four page LRU lists Linux keeps
// (§2.3 of the paper): active/inactive × anonymous/file.
type listKind int

const (
	listActiveAnon listKind = iota + 1
	listInactiveAnon
	listActiveFile
	listInactiveFile
	listKindCount = 4
)

func (k listKind) String() string {
	switch k {
	case listActiveAnon:
		return "active_anon"
	case listInactiveAnon:
		return "inactive_anon"
	case listActiveFile:
		return "active_file"
	case listInactiveFile:
		return "inactive_file"
	default:
		return fmt.Sprintf("listKind(%d)", int(k))
	}
}

func (k listKind) anon() bool { return k == listActiveAnon || k == listInactiveAnon }

// span is a run of pages with a common owner sitting on one LRU list.
// Tracking runs instead of individual page structs keeps the simulation of a
// 128 GB node cheap while preserving the reclaim order and per-owner
// accounting that the paper's analysis depends on. Exactly one of region and
// file is non-nil.
type span struct {
	region *Region
	file   *File
	pages  int64
}

// nilNode terminates the intrusive prev/next chains.
const nilNode = int32(-1)

// spanNode is one list element: the span payload plus embedded prev/next
// indices into the owning arena. Replacing container/list, which allocated
// one heap Element per span, with arena indices makes list surgery
// allocation-free and keeps the nodes of one kernel contiguous in memory.
// ownerPrev/ownerNext thread a second, per-owner chain through the same
// nodes (see ownerChain).
type spanNode struct {
	span
	prev, next int32 // prev is toward the MRU end, next toward the LRU end
	// ownerPrev/ownerNext link the owner's spans on the same list, in the
	// same MRU→LRU orientation as prev/next.
	ownerPrev, ownerNext int32
}

// ownerChain is one owner's resumable cursor into an LRU list: the head and
// tail of the owner's spans on that list, threaded through the shared arena
// via ownerPrev/ownerNext. Owner-targeted scans (removeOwner — file-read
// promotion, munmap, madvise, fadvise, process exit) follow this chain and
// touch only the owner's own spans, instead of re-walking every cold span
// between them from the list tail. Indices are stored +1 so the zero value
// is the empty chain (owners are plain structs with no constructor hook).
type ownerChain struct {
	head1, tail1 int32
}

// spanArena owns the nodes of all four LRU lists of one kernel and pools
// the free ones, so spans moving between lists (aging, reclaim, re-fault)
// recycle nodes instead of producing garbage.
type spanArena struct {
	nodes []spanNode
	free  []int32
}

func (a *spanArena) alloc(sp span) int32 {
	nd := spanNode{span: sp, prev: nilNode, next: nilNode, ownerPrev: nilNode, ownerNext: nilNode}
	if n := len(a.free); n > 0 {
		idx := a.free[n-1]
		a.free = a.free[:n-1]
		a.nodes[idx] = nd
		return idx
	}
	a.nodes = append(a.nodes, nd)
	return int32(len(a.nodes) - 1)
}

// release returns a node to the free pool, dropping its owner references.
func (a *spanArena) release(idx int32) {
	a.nodes[idx] = spanNode{prev: nilNode, next: nilNode, ownerPrev: nilNode, ownerNext: nilNode}
	a.free = append(a.free, idx)
}

// lruList is a FIFO of spans: new pages enter at the front, reclaim scans
// from the back — the classic clock-ish approximation. The spans live in
// the kernel's shared arena; the list holds head/tail indices.
type lruList struct {
	kind  listKind
	arena *spanArena
	head  int32 // MRU end
	tail  int32 // LRU end
	pages int64
	// slot selects the owner-chain pair entry for this list: 0 for the
	// active lists, 1 for the inactive ones (each owner kind is ever on two
	// lists — anon owners on active/inactive anon, files on active/inactive
	// file — so a two-entry chain array per owner covers all four lists).
	slot int
}

func newLRUList(kind listKind, arena *spanArena) *lruList {
	slot := 0
	if kind == listInactiveAnon || kind == listInactiveFile {
		slot = 1
	}
	return &lruList{kind: kind, arena: arena, head: nilNode, tail: nilNode, slot: slot}
}

// chainOf returns the owner chain this list's slot selects for the node's
// owner.
func (l *lruList) chainOf(nd *spanNode) *ownerChain {
	return l.ownerChain(nd.region, nd.file)
}

// chainLink inserts the node at the MRU end of its owner's chain —
// mirroring push, which only inserts at the main-list head, so chain order
// always agrees with main-list order.
func (l *lruList) chainLink(idx int32) {
	nd := &l.arena.nodes[idx]
	c := l.chainOf(nd)
	nd.ownerNext = c.head1 - 1
	if c.head1 != 0 {
		l.arena.nodes[c.head1-1].ownerPrev = idx
	}
	c.head1 = idx + 1
	if c.tail1 == 0 {
		c.tail1 = idx + 1
	}
}

// chainUnlink detaches the node from its owner's chain (the main-list
// counterpart is unlink; both precede arena release).
func (l *lruList) chainUnlink(idx int32) {
	nd := &l.arena.nodes[idx]
	c := l.chainOf(nd)
	if nd.ownerPrev != nilNode {
		l.arena.nodes[nd.ownerPrev].ownerNext = nd.ownerNext
	} else {
		c.head1 = nd.ownerNext + 1
	}
	if nd.ownerNext != nilNode {
		l.arena.nodes[nd.ownerNext].ownerPrev = nd.ownerPrev
	} else {
		c.tail1 = nd.ownerPrev + 1
	}
}

// unlink detaches the node at idx from the chain (the caller releases it).
func (l *lruList) unlink(idx int32) {
	nd := &l.arena.nodes[idx]
	if nd.prev != nilNode {
		l.arena.nodes[nd.prev].next = nd.next
	} else {
		l.head = nd.next
	}
	if nd.next != nilNode {
		l.arena.nodes[nd.next].prev = nd.prev
	} else {
		l.tail = nd.prev
	}
}

// push adds a span of pages at the MRU end, merging with the current head
// when the owner matches so long runs of faults stay one span.
func (l *lruList) push(sp span) {
	if sp.pages <= 0 {
		return
	}
	if l.head != nilNode {
		h := &l.arena.nodes[l.head]
		if h.region == sp.region && h.file == sp.file {
			h.pages += sp.pages
			l.pages += sp.pages
			return
		}
	}
	idx := l.arena.alloc(sp)
	nd := &l.arena.nodes[idx]
	nd.next = l.head
	if l.head != nilNode {
		l.arena.nodes[l.head].prev = idx
	}
	l.head = idx
	if l.tail == nilNode {
		l.tail = idx
	}
	l.chainLink(idx)
	l.pages += sp.pages
}

// takeTail removes up to max pages from the LRU end, invoking fn for each
// span removed (oldest first, pages already deducted), and returns the
// total pages taken. fn may push into other lists of the same arena: the
// node is unlinked and released before fn runs.
func (l *lruList) takeTail(max int64, fn func(span)) int64 {
	var taken int64
	for max > 0 {
		idx := l.tail
		if idx == nilNode {
			break
		}
		nd := &l.arena.nodes[idx]
		n := nd.pages
		if n > max {
			n = max
		}
		out := span{region: nd.region, file: nd.file, pages: n}
		nd.pages -= n
		l.pages -= n
		max -= n
		taken += n
		if nd.pages == 0 {
			l.unlink(idx)
			l.chainUnlink(idx)
			l.arena.release(idx)
		}
		fn(out)
	}
	return taken
}

// removeOwner strips up to max pages belonging to the given owner from the
// list, from the LRU end inward. It returns the number of pages removed.
// Used when pages leave a list for reasons other than reclaim: file-read
// promotion, munmap, heap trim, mlock, madvise, fadvise, process exit. The
// walk follows the owner's chain — the owner's persistent cursor into the
// arena — so it visits exactly the owner's spans, in the same tail→head
// order (and with the same results) as the former whole-list scan, without
// re-walking the cold spans of every other owner in between.
func (l *lruList) removeOwner(region *Region, file *File, max int64) int64 {
	if max <= 0 {
		return 0
	}
	c := l.ownerChain(region, file)
	var removed int64
	for idx := c.tail1 - 1; idx != nilNode && removed < max; {
		nd := &l.arena.nodes[idx]
		prev := nd.ownerPrev
		n := nd.pages
		if n > max-removed {
			n = max - removed
		}
		nd.pages -= n
		l.pages -= n
		removed += n
		if nd.pages == 0 {
			l.unlink(idx)
			l.chainUnlink(idx)
			l.arena.release(idx)
		}
		idx = prev
	}
	return removed
}

// ownerChain resolves the chain for an (region, file) owner pair on this
// list (exactly one of the two is non-nil, as in span).
func (l *lruList) ownerChain(region *Region, file *File) *ownerChain {
	if region != nil {
		return &region.lruChain[l.slot]
	}
	return &file.lruChain[l.slot]
}

// ownerPages counts pages on the list belonging to the owner. O(owner
// spans); used only in tests and invariant checks.
func (l *lruList) ownerPages(region *Region, file *File) int64 {
	var n int64
	c := l.ownerChain(region, file)
	for idx := c.head1 - 1; idx != nilNode; idx = l.arena.nodes[idx].ownerNext {
		n += l.arena.nodes[idx].pages
	}
	return n
}

// checkChains verifies the owner chains against the main list: walked
// MRU→LRU, every owner's nodes must appear on that owner's chain in the
// same order, with matching head/tail anchors. O(spans); invariant checks
// only.
func (l *lruList) checkChains() {
	last := map[*ownerChain]int32{}
	for idx := l.head; idx != nilNode; idx = l.arena.nodes[idx].next {
		nd := &l.arena.nodes[idx]
		c := l.chainOf(nd)
		prev, seen := last[c]
		if !seen {
			if c.head1-1 != idx {
				panic(fmt.Sprintf("kernel: %v owner chain head %d, want %d", l.kind, c.head1-1, idx))
			}
			if nd.ownerPrev != nilNode {
				panic(fmt.Sprintf("kernel: %v owner chain head %d has ownerPrev %d", l.kind, idx, nd.ownerPrev))
			}
		} else {
			if l.arena.nodes[prev].ownerNext != idx || nd.ownerPrev != prev {
				panic(fmt.Sprintf("kernel: %v owner chain broken between %d and %d", l.kind, prev, idx))
			}
		}
		last[c] = idx
	}
	for c, idx := range last {
		if c.tail1-1 != idx {
			panic(fmt.Sprintf("kernel: %v owner chain tail %d, want %d", l.kind, c.tail1-1, idx))
		}
		if l.arena.nodes[idx].ownerNext != nilNode {
			panic(fmt.Sprintf("kernel: %v owner chain tail %d has ownerNext %d", l.kind, idx, l.arena.nodes[idx].ownerNext))
		}
	}
}

// lruSet bundles the four lists over one shared span arena.
type lruSet struct {
	arena        *spanArena
	activeAnon   *lruList
	inactiveAnon *lruList
	activeFile   *lruList
	inactiveFile *lruList
}

func newLRUSet() lruSet {
	arena := &spanArena{}
	return lruSet{
		arena:        arena,
		activeAnon:   newLRUList(listActiveAnon, arena),
		inactiveAnon: newLRUList(listInactiveAnon, arena),
		activeFile:   newLRUList(listActiveFile, arena),
		inactiveFile: newLRUList(listInactiveFile, arena),
	}
}

func (s lruSet) byKind(k listKind) *lruList {
	switch k {
	case listActiveAnon:
		return s.activeAnon
	case listInactiveAnon:
		return s.inactiveAnon
	case listActiveFile:
		return s.activeFile
	case listInactiveFile:
		return s.inactiveFile
	default:
		panic(fmt.Sprintf("kernel: bad list kind %d", int(k)))
	}
}

// totalPages returns pages across all four lists.
func (s lruSet) totalPages() int64 {
	return s.activeAnon.pages + s.inactiveAnon.pages + s.activeFile.pages + s.inactiveFile.pages
}
