package kernel

import "fmt"

// listKind identifies one of the four page LRU lists Linux keeps
// (§2.3 of the paper): active/inactive × anonymous/file.
type listKind int

const (
	listActiveAnon listKind = iota + 1
	listInactiveAnon
	listActiveFile
	listInactiveFile
	listKindCount = 4
)

func (k listKind) String() string {
	switch k {
	case listActiveAnon:
		return "active_anon"
	case listInactiveAnon:
		return "inactive_anon"
	case listActiveFile:
		return "active_file"
	case listInactiveFile:
		return "inactive_file"
	default:
		return fmt.Sprintf("listKind(%d)", int(k))
	}
}

func (k listKind) anon() bool { return k == listActiveAnon || k == listInactiveAnon }

// span is a run of pages with a common owner sitting on one LRU list.
// Tracking runs instead of individual page structs keeps the simulation of a
// 128 GB node cheap while preserving the reclaim order and per-owner
// accounting that the paper's analysis depends on. Exactly one of region and
// file is non-nil.
type span struct {
	region *Region
	file   *File
	pages  int64
}

// nilNode terminates the intrusive prev/next chains.
const nilNode = int32(-1)

// spanNode is one list element: the span payload plus embedded prev/next
// indices into the owning arena. Replacing container/list, which allocated
// one heap Element per span, with arena indices makes list surgery
// allocation-free and keeps the nodes of one kernel contiguous in memory.
type spanNode struct {
	span
	prev, next int32 // prev is toward the MRU end, next toward the LRU end
}

// spanArena owns the nodes of all four LRU lists of one kernel and pools
// the free ones, so spans moving between lists (aging, reclaim, re-fault)
// recycle nodes instead of producing garbage.
type spanArena struct {
	nodes []spanNode
	free  []int32
}

func (a *spanArena) alloc(sp span) int32 {
	if n := len(a.free); n > 0 {
		idx := a.free[n-1]
		a.free = a.free[:n-1]
		a.nodes[idx] = spanNode{span: sp, prev: nilNode, next: nilNode}
		return idx
	}
	a.nodes = append(a.nodes, spanNode{span: sp, prev: nilNode, next: nilNode})
	return int32(len(a.nodes) - 1)
}

// release returns a node to the free pool, dropping its owner references.
func (a *spanArena) release(idx int32) {
	a.nodes[idx] = spanNode{prev: nilNode, next: nilNode}
	a.free = append(a.free, idx)
}

// lruList is a FIFO of spans: new pages enter at the front, reclaim scans
// from the back — the classic clock-ish approximation. The spans live in
// the kernel's shared arena; the list holds head/tail indices.
type lruList struct {
	kind  listKind
	arena *spanArena
	head  int32 // MRU end
	tail  int32 // LRU end
	pages int64
}

func newLRUList(kind listKind, arena *spanArena) *lruList {
	return &lruList{kind: kind, arena: arena, head: nilNode, tail: nilNode}
}

// unlink detaches the node at idx from the chain (the caller releases it).
func (l *lruList) unlink(idx int32) {
	nd := &l.arena.nodes[idx]
	if nd.prev != nilNode {
		l.arena.nodes[nd.prev].next = nd.next
	} else {
		l.head = nd.next
	}
	if nd.next != nilNode {
		l.arena.nodes[nd.next].prev = nd.prev
	} else {
		l.tail = nd.prev
	}
}

// push adds a span of pages at the MRU end, merging with the current head
// when the owner matches so long runs of faults stay one span.
func (l *lruList) push(sp span) {
	if sp.pages <= 0 {
		return
	}
	if l.head != nilNode {
		h := &l.arena.nodes[l.head]
		if h.region == sp.region && h.file == sp.file {
			h.pages += sp.pages
			l.pages += sp.pages
			return
		}
	}
	idx := l.arena.alloc(sp)
	nd := &l.arena.nodes[idx]
	nd.next = l.head
	if l.head != nilNode {
		l.arena.nodes[l.head].prev = idx
	}
	l.head = idx
	if l.tail == nilNode {
		l.tail = idx
	}
	l.pages += sp.pages
}

// takeTail removes up to max pages from the LRU end, invoking fn for each
// span removed (oldest first, pages already deducted), and returns the
// total pages taken. fn may push into other lists of the same arena: the
// node is unlinked and released before fn runs.
func (l *lruList) takeTail(max int64, fn func(span)) int64 {
	var taken int64
	for max > 0 {
		idx := l.tail
		if idx == nilNode {
			break
		}
		nd := &l.arena.nodes[idx]
		n := nd.pages
		if n > max {
			n = max
		}
		out := span{region: nd.region, file: nd.file, pages: n}
		nd.pages -= n
		l.pages -= n
		max -= n
		taken += n
		if nd.pages == 0 {
			l.unlink(idx)
			l.arena.release(idx)
		}
		fn(out)
	}
	return taken
}

// removeOwner strips up to max pages belonging to the given owner from the
// list, scanning from the LRU end. It returns the number of pages removed.
// Used when pages leave a list for reasons other than reclaim: munmap, heap
// trim, mlock, fadvise, process exit.
func (l *lruList) removeOwner(region *Region, file *File, max int64) int64 {
	if max <= 0 {
		return 0
	}
	var removed int64
	for idx := l.tail; idx != nilNode && removed < max; {
		nd := &l.arena.nodes[idx]
		prev := nd.prev
		if nd.region == region && nd.file == file {
			n := nd.pages
			if n > max-removed {
				n = max - removed
			}
			nd.pages -= n
			l.pages -= n
			removed += n
			if nd.pages == 0 {
				l.unlink(idx)
				l.arena.release(idx)
			}
		}
		idx = prev
	}
	return removed
}

// ownerPages counts pages on the list belonging to the owner. O(spans);
// used only in tests and invariant checks.
func (l *lruList) ownerPages(region *Region, file *File) int64 {
	var n int64
	for idx := l.head; idx != nilNode; idx = l.arena.nodes[idx].next {
		nd := &l.arena.nodes[idx]
		if nd.region == region && nd.file == file {
			n += nd.pages
		}
	}
	return n
}

// lruSet bundles the four lists over one shared span arena.
type lruSet struct {
	arena        *spanArena
	activeAnon   *lruList
	inactiveAnon *lruList
	activeFile   *lruList
	inactiveFile *lruList
}

func newLRUSet() lruSet {
	arena := &spanArena{}
	return lruSet{
		arena:        arena,
		activeAnon:   newLRUList(listActiveAnon, arena),
		inactiveAnon: newLRUList(listInactiveAnon, arena),
		activeFile:   newLRUList(listActiveFile, arena),
		inactiveFile: newLRUList(listInactiveFile, arena),
	}
}

func (s lruSet) byKind(k listKind) *lruList {
	switch k {
	case listActiveAnon:
		return s.activeAnon
	case listInactiveAnon:
		return s.inactiveAnon
	case listActiveFile:
		return s.activeFile
	case listInactiveFile:
		return s.inactiveFile
	default:
		panic(fmt.Sprintf("kernel: bad list kind %d", int(k)))
	}
}

// totalPages returns pages across all four lists.
func (s lruSet) totalPages() int64 {
	return s.activeAnon.pages + s.inactiveAnon.pages + s.activeFile.pages + s.inactiveFile.pages
}
