package kernel

import "github.com/hermes-sim/hermes/internal/simtime"

// CostModel holds every virtual-time constant of the simulated kernel.
// The values are calibrated against the paper's own measurements (the
// anchors in DESIGN.md §4); each constant notes which anchor pins it.
// Experiments never hard-code latencies — everything flows through this
// table so ablations can perturb a single knob.
type CostModel struct {
	// SyscallBase is the user/kernel mode-switch cost charged by every
	// system call (sbrk, mmap, mlock, fadvise, ...).
	SyscallBase simtime.Duration

	// SbrkExtra, MmapExtra, MunmapExtra are the per-call costs beyond the
	// mode switch: VMA bookkeeping for mmap/munmap is heavier than moving
	// the program break.
	SbrkExtra   simtime.Duration
	MmapExtra   simtime.Duration
	MunmapExtra simtime.Duration

	// HeapFaultPerPage is the first-touch cost of a heap (brk) page:
	// page allocation, zeroing, PTE install. Calibrated so Glibc's
	// dedicated-system 1 KB alloc+write lands near 4.5 µs with a fault
	// every 4th request (Fig 7a support 2–14 µs) and eliminating faults
	// buys Hermes the ~16% dedicated-system average reduction of Fig 7d.
	HeapFaultPerPage simtime.Duration

	// MmapFaultPerPage is the first-touch cost of a fresh mmapped page.
	// Calibrated (with TouchPerKB) so a 256 KB alloc+write on a dedicated
	// system lands near 1 ms (Fig 8a support 0.8–2.8 ms) and Hermes'
	// pre-mapping removes ~12% of it (Fig 8d "dedicated" bars).
	MmapFaultPerPage simtime.Duration

	// MlockBase and MlockPerPage price mlock-driven bulk mapping
	// construction. Per the paper (§4), mlock is at least 40% faster than
	// touching pages one by one, so MlockPerPage ≈ 0.6 × fault cost.
	MlockBase    simtime.Duration
	MlockPerPage simtime.Duration
	// MunlockBase/MunlockPerPage price the munlock call Hermes issues when
	// handing reserved memory to the process.
	MunlockBase    simtime.Duration
	MunlockPerPage simtime.Duration

	// SwapInPerPageCPU is the CPU-side cost of a major fault on top of the
	// disk read itself.
	SwapInPerPageCPU simtime.Duration

	// ReclaimScanPerPage is the LRU-scan cost per page examined during
	// reclaim (shrink_page_list bookkeeping).
	ReclaimScanPerPage simtime.Duration
	// FileDropPerPage is the cost of releasing one clean file-cache page.
	// Clean drops need no I/O, which is why file-cache pressure is so much
	// milder than anon pressure (Fig 3: +10.8% vs +35.6% avg).
	FileDropPerPage simtime.Duration

	// AllocSlowPathPerPage is the extra per-page cost of the page
	// allocator's slow path once free memory is below the low watermark
	// (zone rebalancing, throttling, retries). Drives the Fig 3 anon curve.
	AllocSlowPathPerPage simtime.Duration
	// AllocSlowPathFilePerPage is the milder slow-path cost under pure
	// file-cache pressure, where kswapd keeps up by dropping clean pages.
	AllocSlowPathFilePerPage simtime.Duration

	// AmbientSwapFactor and AmbientFileFactor are the uniform slowdowns a
	// foreground thread experiences while reclaim is running — kswapd
	// burning a core, cache/TLB pollution, writeback contention. The
	// paper's Figure 3 inflation is roughly uniform across the whole
	// distribution (+35.6% avg / +46.6% p99 under anon pressure; +10.8% /
	// +7.6% under file pressure), which per-fault costs alone cannot
	// produce; these factors carry the uniform share. Swap-bound reclaim
	// is far more disruptive than clean file drops.
	AmbientSwapFactor float64
	AmbientFileFactor float64

	// DirectReclaimBase is the fixed entry cost of synchronous direct
	// reclaim (cond_resched, zone iteration) before any page is scanned.
	DirectReclaimBase simtime.Duration

	// FadviseBase and FadvisePerPage price posix_fadvise(DONTNEED), the
	// monitor daemon's proactive-reclamation primitive.
	FadviseBase    simtime.Duration
	FadvisePerPage simtime.Duration

	// FileWritePerPage is the CPU cost of copying one page into the page
	// cache (buffered write fast path, no disk I/O).
	FileWritePerPage simtime.Duration

	// TouchPerKB is the application-side cost of writing freshly allocated
	// memory, charged by workloads (the paper's micro-benchmark writes the
	// buffer after malloc; services copy the record). Calibrated with
	// MmapFaultPerPage against the Fig 8 anchor.
	TouchPerKB simtime.Duration
	// TouchBase is the fixed per-request application overhead (call,
	// timing, loop bookkeeping).
	TouchBase simtime.Duration

	// JitterSigma is the σ of the multiplicative log-normal noise applied
	// per request by workloads, reproducing the spread of the measured
	// CDFs. JitterSpikeProb/JitterSpikeCost model rare scheduling or
	// interrupt hiccups that give real CDFs their long thin tails.
	JitterSigma     float64
	JitterSpikeProb float64
	JitterSpikeCost simtime.Duration
}

// DefaultCostModel returns the calibrated cost table used by every
// experiment. See DESIGN.md §4 for the anchor list.
func DefaultCostModel() CostModel {
	return CostModel{
		SyscallBase: 300 * simtime.Nanosecond,
		SbrkExtra:   150 * simtime.Nanosecond,
		MmapExtra:   600 * simtime.Nanosecond,
		MunmapExtra: 500 * simtime.Nanosecond,

		HeapFaultPerPage: 3300 * simtime.Nanosecond,
		MmapFaultPerPage: 1800 * simtime.Nanosecond,

		MlockBase:      400 * simtime.Nanosecond,
		MlockPerPage:   1100 * simtime.Nanosecond, // ≈0.6× MmapFaultPerPage+overheads
		MunlockBase:    300 * simtime.Nanosecond,
		MunlockPerPage: 50 * simtime.Nanosecond,

		SwapInPerPageCPU: 2 * simtime.Microsecond,

		ReclaimScanPerPage: 60 * simtime.Nanosecond,
		FileDropPerPage:    250 * simtime.Nanosecond,

		AllocSlowPathPerPage:     2 * simtime.Microsecond,
		AllocSlowPathFilePerPage: 800 * simtime.Nanosecond,

		AmbientSwapFactor: 0.20,
		AmbientFileFactor: 0.07,

		DirectReclaimBase: 25 * simtime.Microsecond,

		FadviseBase:    2 * simtime.Microsecond,
		FadvisePerPage: 120 * simtime.Nanosecond,

		FileWritePerPage: 700 * simtime.Nanosecond,

		TouchPerKB: 3300 * simtime.Nanosecond,
		TouchBase:  300 * simtime.Nanosecond,

		JitterSigma:     0.13,
		JitterSpikeProb: 0.0015,
		JitterSpikeCost: 6 * simtime.Microsecond,
	}
}
