package kernel

import (
	"fmt"
	"slices"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// This file is the virtual-memory syscall surface the allocators sit on:
// process lifecycle, Sbrk, Mmap/Munmap, first-touch faulting, access (with
// possible swap-in), and Mlock/Munlock for Hermes' bulk mapping
// construction. Every call takes the caller's current instant and returns
// the latency the caller observes.

// CreateProcess registers a new process with an empty heap.
func (k *Kernel) CreateProcess(name string) *Process {
	k.nextPID++
	k.nextRegion++
	p := &Process{
		PID:  k.nextPID,
		Name: name,
		vmas: make(map[RegionID]*Region),
	}
	p.heap = &Region{ID: k.nextRegion, Proc: p, Kind: RegionHeap}
	k.procs[p.PID] = p
	return p
}

// Process returns the live process with the given pid, or nil.
func (k *Kernel) Process(pid PID) *Process {
	p := k.procs[pid]
	if p == nil || p.dead {
		return nil
	}
	return p
}

// Processes returns the live process count.
func (k *Kernel) Processes() int { return len(k.procs) }

// ExitProcess tears a process down: anonymous pages are freed immediately
// and swap slots released, but file-cache pages the process populated stay
// resident — exactly the behaviour the paper calls out as the source of
// lingering file-cache pressure after batch jobs finish (§2.3).
func (k *Kernel) ExitProcess(p *Process) {
	if p.dead {
		return
	}
	k.releaseRegion(p.heap, p.heap.pages)
	// Release VMAs in ascending RegionID order: releaseRegion mutates the
	// LRU lists, the free-page pool and the swap accounting, so the release
	// order must not depend on Go map iteration for seed replay to be
	// bit-identical.
	ids := make([]RegionID, 0, len(p.vmas))
	for id := range p.vmas {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		r := p.vmas[id]
		k.releaseRegion(r, r.pages)
		r.dead = true
	}
	p.heap.dead = true
	p.vmas = make(map[RegionID]*Region)
	p.dead = true
	delete(k.procs, p.PID)
}

// Sbrk grows (deltaPages > 0) or shrinks (deltaPages < 0) the heap and
// returns the syscall cost. Growth maps nothing — pages fault in on first
// touch, the on-demand construction of §2.1. Shrink releases the trimmed
// pages back to the kernel.
func (k *Kernel) Sbrk(at simtime.Time, p *Process, deltaPages int64) simtime.Duration {
	k.mustLive(p)
	cost := k.cfg.Costs.SyscallBase + k.cfg.Costs.SbrkExtra
	h := p.heap
	if deltaPages >= 0 {
		h.pages += deltaPages
		return cost
	}
	shrink := -deltaPages
	if shrink > h.pages {
		panic(fmt.Sprintf("kernel: sbrk shrink %d exceeds heap size %d", shrink, h.pages))
	}
	k.releaseRegion(h, shrink)
	return cost
}

// Mmap creates an anonymous VMA of the given size. Nothing is mapped until
// first touch (or PopulateLocked).
func (k *Kernel) Mmap(at simtime.Time, p *Process, pages int64) (*Region, simtime.Duration) {
	k.mustLive(p)
	if pages <= 0 {
		panic("kernel: mmap of non-positive size")
	}
	k.nextRegion++
	r := &Region{ID: k.nextRegion, Proc: p, Kind: RegionAnon, pages: pages}
	p.vmas[r.ID] = r
	return r, k.cfg.Costs.SyscallBase + k.cfg.Costs.MmapExtra
}

// Munmap releases the trailing `pages` of the VMA (the whole VMA when pages
// equals its size, which removes it). Hermes' delayed shrink uses the
// partial form.
func (k *Kernel) Munmap(at simtime.Time, r *Region, pages int64) simtime.Duration {
	k.mustLiveRegion(r)
	if r.Kind != RegionAnon {
		panic("kernel: munmap on heap region")
	}
	if pages <= 0 || pages > r.pages {
		panic(fmt.Sprintf("kernel: munmap %d pages of %d-page region", pages, r.pages))
	}
	cost := k.cfg.Costs.SyscallBase + k.cfg.Costs.MunmapExtra
	k.releaseRegion(r, pages)
	if r.pages == 0 {
		r.dead = true
		delete(r.Proc.vmas, r.ID)
	}
	return cost
}

// releaseRegion gives `pages` of the region back to the kernel, consuming
// untouched, then locked, then mapped, then swapped pages — the order in
// which a trailing trim meets page states in practice (fresh reservation at
// the break, then older resident data).
func (k *Kernel) releaseRegion(r *Region, pages int64) {
	if pages <= 0 {
		return
	}
	if pages > r.pages {
		panic(fmt.Sprintf("kernel: releasing %d pages of %d-page region", pages, r.pages))
	}
	remaining := pages

	take := min64(remaining, r.Untouched())
	remaining -= take

	if remaining > 0 && r.locked > 0 {
		n := min64(remaining, r.locked)
		r.locked -= n
		r.mapped -= n
		k.freePagesBack(n)
		remaining -= n
	}
	if remaining > 0 && r.unlockedMapped() > 0 {
		n := min64(remaining, r.unlockedMapped())
		removed := k.lru.activeAnon.removeOwner(r, nil, n)
		if removed < n {
			removed += k.lru.inactiveAnon.removeOwner(r, nil, n-removed)
		}
		if removed != n {
			panic(fmt.Sprintf("kernel: region %d LRU accounting lost pages: want %d got %d", r.ID, n, removed))
		}
		r.mapped -= n
		k.freePagesBack(n)
		remaining -= n
	}
	if remaining > 0 && r.swapped > 0 {
		n := min64(remaining, r.swapped)
		r.swapped -= n
		k.swapFree += n
		remaining -= n
	}
	if remaining > 0 {
		panic(fmt.Sprintf("kernel: region %d release shortfall %d", r.ID, remaining))
	}
	r.pages -= pages
}

// FaultIn maps n never-touched pages of the region (first-touch minor
// faults): the on-demand virtual-physical mapping construction of §2.1.
// perPage selects the heap or mmap fault cost.
func (k *Kernel) FaultIn(at simtime.Time, r *Region, n int64) simtime.Duration {
	k.mustLiveRegion(r)
	if n <= 0 {
		return 0
	}
	if n > r.Untouched() {
		panic(fmt.Sprintf("kernel: fault-in %d pages but only %d untouched in region %d", n, r.Untouched(), r.ID))
	}
	cost := k.allocPages(at, n)
	perPage := k.cfg.Costs.MmapFaultPerPage
	if r.Kind == RegionHeap {
		perPage = k.cfg.Costs.HeapFaultPerPage
	}
	cost += simtime.Duration(n) * perPage
	r.mapped += n
	k.lru.activeAnon.push(span{region: r, pages: n})
	k.stats.MinorFaults += n
	return cost
}

// Access models the application touching n pages of previously-faulted
// memory. Pages that were swapped out come back in via major faults; the
// share of swapped pages hit is the region's swapped fraction (see DESIGN.md
// for this single fractional approximation).
func (k *Kernel) Access(at simtime.Time, r *Region, n int64) simtime.Duration {
	k.mustLiveRegion(r)
	if n <= 0 {
		return 0
	}
	touched := r.mapped + r.swapped
	if touched == 0 {
		return 0
	}
	if n > touched {
		n = touched
	}
	if r.swapped == 0 {
		return 0
	}
	hitSwap := k.probRound(float64(n) * float64(r.swapped) / float64(touched))
	if hitSwap > r.swapped {
		hitSwap = r.swapped
	}
	return k.swapIn(at, r, hitSwap)
}

// PopulateLocked is Hermes' mapping-construction primitive: allocate and map
// n untouched pages in one bulk mlock call (≥40% cheaper per page than
// touch-by-iteration, §4) and pin them so they cannot be swapped before the
// reservation is handed out.
func (k *Kernel) PopulateLocked(at simtime.Time, r *Region, n int64) simtime.Duration {
	k.mustLiveRegion(r)
	if n <= 0 {
		return 0
	}
	if n > r.Untouched() {
		panic(fmt.Sprintf("kernel: mlock-populate %d pages but only %d untouched in region %d", n, r.Untouched(), r.ID))
	}
	cost := k.cfg.Costs.SyscallBase + k.cfg.Costs.MlockBase
	cost += k.allocPages(at.Add(cost), n)
	cost += simtime.Duration(n) * k.cfg.Costs.MlockPerPage
	r.mapped += n
	r.locked += n
	k.stats.MinorFaults += n
	return cost
}

// MremapGrow extends an anonymous VMA in place by extraPages (mremap with
// MREMAP_MAYMOVE). The new tail is untouched and faults on first access —
// Hermes uses this to expand a pooled chunk to a larger request so only the
// delta needs mapping construction (§3.2.2).
func (k *Kernel) MremapGrow(at simtime.Time, r *Region, extraPages int64) simtime.Duration {
	k.mustLiveRegion(r)
	if r.Kind != RegionAnon {
		panic("kernel: mremap on heap region")
	}
	if extraPages <= 0 {
		panic("kernel: mremap grow by non-positive size")
	}
	r.pages += extraPages
	return k.cfg.Costs.SyscallBase + k.cfg.Costs.MmapExtra
}

// MadviseFree releases n resident, unlocked pages of the region back to the
// kernel while keeping the virtual range mapped — jemalloc's decay-purge
// primitive (madvise MADV_FREE/MADV_DONTNEED). The pages become untouched:
// the next access re-faults them.
func (k *Kernel) MadviseFree(at simtime.Time, r *Region, n int64) simtime.Duration {
	k.mustLiveRegion(r)
	if n <= 0 {
		return 0
	}
	if n > r.unlockedMapped() {
		panic(fmt.Sprintf("kernel: madvise-free %d pages but only %d unlocked mapped in region %d",
			n, r.unlockedMapped(), r.ID))
	}
	removed := k.lru.activeAnon.removeOwner(r, nil, n)
	if removed < n {
		removed += k.lru.inactiveAnon.removeOwner(r, nil, n-removed)
	}
	if removed != n {
		panic(fmt.Sprintf("kernel: region %d LRU accounting lost pages in madvise: want %d got %d", r.ID, n, removed))
	}
	r.mapped -= n
	k.freePagesBack(n)
	return k.cfg.Costs.SyscallBase + simtime.Duration(n)*k.cfg.Costs.FadvisePerPage
}

// Munlock unpins n locked pages, making them reclaimable again. Hermes calls
// this when reserved memory is handed to the process (§4).
func (k *Kernel) Munlock(at simtime.Time, r *Region, n int64) simtime.Duration {
	k.mustLiveRegion(r)
	if n <= 0 {
		return 0
	}
	if n > r.locked {
		panic(fmt.Sprintf("kernel: munlock %d pages but only %d locked in region %d", n, r.locked, r.ID))
	}
	r.locked -= n
	k.lru.activeAnon.push(span{region: r, pages: n})
	return k.cfg.Costs.SyscallBase + k.cfg.Costs.MunlockBase +
		simtime.Duration(n)*k.cfg.Costs.MunlockPerPage
}

func (k *Kernel) mustLive(p *Process) {
	if p == nil || p.dead {
		panic("kernel: operation on dead process")
	}
}

func (k *Kernel) mustLiveRegion(r *Region) {
	if r == nil || r.dead || r.Proc == nil || r.Proc.dead {
		panic("kernel: operation on dead region")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
