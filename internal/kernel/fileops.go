package kernel

import (
	"fmt"
	"sort"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// This file is the page-cache/file surface: reads populate the cache
// (inactive_file first, promotion to active_file on re-reference), writes
// dirty it, fsync writes it back, fadvise(DONTNEED) drops it — the monitor
// daemon's proactive-reclamation primitive.

// CreateFile registers a file of the given size owned by pid. The content
// is assumed to exist on disk (loading it is what ReadFile simulates).
func (k *Kernel) CreateFile(name string, sizePages int64, owner PID) *File {
	if sizePages < 0 {
		panic("kernel: negative file size")
	}
	if _, ok := k.files[name]; ok {
		panic(fmt.Sprintf("kernel: file %q already exists", name))
	}
	f := &File{Name: name, OwnerPID: owner, sizePages: sizePages}
	k.files[name] = f
	return f
}

// File returns the file with the given name, or nil.
func (k *Kernel) File(name string) *File { return k.files[name] }

// Files returns all live files; order is unspecified.
func (k *Kernel) Files() []*File {
	out := make([]*File, 0, len(k.files))
	for _, f := range k.files {
		out = append(out, f)
	}
	return out
}

// FilesOwnedBy returns the files tagged with the given owner PID, sorted by
// descending size — the order the monitor daemon's largest-file-first policy
// wants.
func (k *Kernel) FilesOwnedBy(pid PID) []*File {
	var out []*File
	for _, f := range k.files {
		if f.OwnerPID == pid {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].sizePages != out[j].sizePages {
			return out[i].sizePages > out[j].sizePages
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ReadFile reads n pages of the file at instant at. The cached share is
// served from the page cache (and promoted to active_file); misses cost a
// disk read and populate inactive_file, allocating pages — under pressure
// that allocation itself goes through the slow path.
func (k *Kernel) ReadFile(at simtime.Time, f *File, n int64) simtime.Duration {
	k.mustLiveFile(f)
	if n <= 0 {
		return 0
	}
	if n > f.sizePages {
		n = f.sizePages
	}
	hitRatio := float64(f.cached) / float64(f.sizePages)
	hits := k.probRound(float64(n) * hitRatio)
	if hits > f.cached {
		hits = f.cached
	}
	misses := n - hits

	var cost simtime.Duration
	if hits > 0 {
		// Promote the referenced share from inactive to active.
		moved := k.lru.inactiveFile.removeOwner(nil, f, hits)
		if moved > 0 {
			k.lru.activeFile.push(span{file: f, pages: moved})
		}
	}
	if misses > 0 {
		cost += k.allocPages(at, misses)
		cost += k.disk.IO(at.Add(cost), misses, false)
		f.cached += misses
		k.lru.inactiveFile.push(span{file: f, pages: misses})
	}
	return cost
}

// WriteFile appends/overwrites n pages through the page cache: pages are
// dirtied in cache and written back later (fsync, reclaim, or fadvise).
// extend grows the file when writing past the current end.
func (k *Kernel) WriteFile(at simtime.Time, f *File, n int64, extend bool) simtime.Duration {
	k.mustLiveFile(f)
	if n <= 0 {
		return 0
	}
	cost := simtime.Duration(n) * k.cfg.Costs.FileWritePerPage
	uncached := f.sizePages - f.cached
	if extend {
		f.sizePages += n
		uncached += n
	}
	newPages := min64(n, uncached)
	if newPages > 0 {
		cost += k.allocPages(at, newPages)
		f.cached += newPages
		k.lru.inactiveFile.push(span{file: f, pages: newPages})
	}
	f.dirty += newPages
	if f.dirty > f.cached {
		f.dirty = f.cached
	}
	return cost
}

// Fsync writes back all dirty pages of the file.
func (k *Kernel) Fsync(at simtime.Time, f *File) simtime.Duration {
	k.mustLiveFile(f)
	if f.dirty == 0 {
		return k.cfg.Costs.SyscallBase
	}
	cost := k.cfg.Costs.SyscallBase + k.disk.IO(at, f.dirty, true)
	f.dirty = 0
	return cost
}

// FadviseDontNeed releases the file's cached pages (writing back dirty ones
// first) and returns (pages released, cost). This is the proactive
// reclamation path: the monitor daemon pays this cost, not the
// latency-critical service.
func (k *Kernel) FadviseDontNeed(at simtime.Time, f *File) (int64, simtime.Duration) {
	k.mustLiveFile(f)
	cost := k.cfg.Costs.FadviseBase
	if f.cached == 0 {
		return 0, cost
	}
	released := f.cached
	cost += simtime.Duration(released) * k.cfg.Costs.FadvisePerPage
	if f.dirty > 0 {
		cost += k.disk.IO(at.Add(cost), f.dirty, true)
		f.dirty = 0
	}
	k.dropFileFromLRU(f, released)
	f.cached = 0
	k.freePagesBack(released)
	k.stats.FadvisedPages += released
	return released, cost
}

// DeleteFile removes the file, dropping its cache without writeback.
func (k *Kernel) DeleteFile(f *File) {
	k.mustLiveFile(f)
	if f.cached > 0 {
		k.dropFileFromLRU(f, f.cached)
		k.freePagesBack(f.cached)
		f.cached = 0
		f.dirty = 0
	}
	f.deleted = true
	delete(k.files, f.Name)
}

func (k *Kernel) dropFileFromLRU(f *File, n int64) {
	removed := k.lru.inactiveFile.removeOwner(nil, f, n)
	if removed < n {
		removed += k.lru.activeFile.removeOwner(nil, f, n-removed)
	}
	if removed != n {
		panic(fmt.Sprintf("kernel: file %q LRU accounting lost pages: want %d got %d", f.Name, n, removed))
	}
}

func (k *Kernel) mustLiveFile(f *File) {
	if f == nil || f.deleted {
		panic("kernel: operation on deleted file")
	}
}
