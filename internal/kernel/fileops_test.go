package kernel

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/simtime"
)

func TestReadFileColdThenWarm(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	f := k.CreateFile("data.sst", 1000, p.PID)

	cold := k.ReadFile(s.Now(), f, 1000)
	if cold < simtime.Millisecond {
		t.Fatalf("cold read cost %v, want HDD-scale", cold)
	}
	if f.CachedPages() != 1000 {
		t.Fatalf("cached = %d, want 1000", f.CachedPages())
	}
	warm := k.ReadFile(s.Now(), f, 1000)
	if warm != 0 {
		t.Fatalf("warm read cost %v, want 0 (fully cached)", warm)
	}
	k.CheckInvariants()
}

func TestReadPromotesToActiveFile(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	f := k.CreateFile("hot.dat", 500, p.PID)
	k.ReadFile(s.Now(), f, 500)
	if k.lru.inactiveFile.pages != 500 {
		t.Fatalf("first read must land on inactive_file, got %d there", k.lru.inactiveFile.pages)
	}
	k.ReadFile(s.Now(), f, 500)
	if k.lru.activeFile.pages != 500 {
		t.Fatalf("second read must promote to active_file, got %d there", k.lru.activeFile.pages)
	}
	k.CheckInvariants()
}

func TestWriteFileDirtiesCache(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("db")
	f := k.CreateFile("wal.log", 0, p.PID)
	cost := k.WriteFile(s.Now(), f, 100, true)
	if cost <= 0 {
		t.Fatal("write must cost page allocation")
	}
	if f.SizePages() != 100 || f.CachedPages() != 100 || f.DirtyPages() != 100 {
		t.Fatalf("after write: size=%d cached=%d dirty=%d", f.SizePages(), f.CachedPages(), f.DirtyPages())
	}
	// Fsync writes back at HDD cost and cleans.
	sc := k.Fsync(s.Now(), f)
	if sc < simtime.Millisecond {
		t.Fatalf("fsync of 100 dirty pages cost %v, want HDD-scale", sc)
	}
	if f.DirtyPages() != 0 {
		t.Fatal("fsync must clean the file")
	}
	k.CheckInvariants()
}

func TestFadviseDontNeedReleasesCache(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("batch")
	f := k.CreateFile("input.dat", 2000, p.PID)
	k.ReadFile(s.Now(), f, 2000)
	free0 := k.FreePages()
	released, cost := k.FadviseDontNeed(s.Now(), f)
	if released != 2000 {
		t.Fatalf("released = %d, want 2000", released)
	}
	if k.FreePages() != free0+2000 {
		t.Fatalf("free = %d, want %d", k.FreePages(), free0+2000)
	}
	// Clean drop needs no I/O: cost stays in the microsecond range.
	if cost > simtime.Millisecond {
		t.Fatalf("clean fadvise cost %v, want < 1ms", cost)
	}
	if k.Stats().FadvisedPages != 2000 {
		t.Fatalf("fadvised counter = %d", k.Stats().FadvisedPages)
	}
	k.CheckInvariants()
}

func TestFadviseWritesBackDirtyPages(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("batch")
	f := k.CreateFile("out.dat", 0, p.PID)
	k.WriteFile(s.Now(), f, 200, true)
	_, cost := k.FadviseDontNeed(s.Now(), f)
	if cost < simtime.Millisecond {
		t.Fatalf("dirty fadvise cost %v, want HDD writeback", cost)
	}
	if f.DirtyPages() != 0 || f.CachedPages() != 0 {
		t.Fatal("fadvise must clean and drop")
	}
	k.CheckInvariants()
}

func TestDeleteFileDropsCacheWithoutWriteback(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("db")
	f := k.CreateFile("tmp.sst", 0, p.PID)
	k.WriteFile(s.Now(), f, 300, true)
	free0 := k.FreePages()
	k.DeleteFile(f)
	if k.FreePages() != free0+300 {
		t.Fatal("delete must free cached pages")
	}
	if k.File("tmp.sst") != nil {
		t.Fatal("file still visible after delete")
	}
	k.CheckInvariants()
}

func TestFilesOwnedByLargestFirst(t *testing.T) {
	k, _ := newTestKernel(t, smallConfig())
	p := k.CreateProcess("batch")
	other := k.CreateProcess("other")
	k.CreateFile("a.dat", 100, p.PID)
	k.CreateFile("b.dat", 300, p.PID)
	k.CreateFile("c.dat", 200, p.PID)
	k.CreateFile("x.dat", 999, other.PID)
	files := k.FilesOwnedBy(p.PID)
	if len(files) != 3 {
		t.Fatalf("len = %d, want 3", len(files))
	}
	if files[0].Name != "b.dat" || files[1].Name != "c.dat" || files[2].Name != "a.dat" {
		t.Fatalf("order = %s,%s,%s; want largest-first", files[0].Name, files[1].Name, files[2].Name)
	}
}

func TestDuplicateFilePanics(t *testing.T) {
	k, _ := newTestKernel(t, smallConfig())
	p := k.CreateProcess("x")
	k.CreateFile("dup", 1, p.PID)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate file must panic")
		}
	}()
	k.CreateFile("dup", 1, p.PID)
}

func TestPartialReadCachesPartially(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	f := k.CreateFile("seg.dat", 1000, p.PID)
	k.ReadFile(s.Now(), f, 400)
	if f.CachedPages() != 400 {
		t.Fatalf("cached = %d, want 400", f.CachedPages())
	}
	k.CheckInvariants()
}

func TestReadBeyondSizeClamps(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	f := k.CreateFile("small.dat", 10, p.PID)
	k.ReadFile(s.Now(), f, 100)
	if f.CachedPages() != 10 {
		t.Fatalf("cached = %d, want 10", f.CachedPages())
	}
}
