package kernel

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// Disk models the 7200 rpm HDD the paper's testbed used for both swap and
// the RocksDB data directory. It is a single-queue device: an I/O issued
// while an earlier one is in flight waits for it. This queueing is what
// couples background swap traffic (kswapd, direct reclaim) to foreground
// service I/O — the emergent effect behind RocksDB's tens-of-milliseconds
// large-request latency under anonymous-page pressure (paper Fig. 10b).
type Disk struct {
	cfg       DiskConfig
	busyUntil simtime.Time

	// Counters for experiment reporting.
	Reads      int64
	Writes     int64
	PagesRead  int64
	PagesWrite int64
	BusyTime   simtime.Duration
}

// DiskConfig holds the HDD cost model. Defaults are calibrated so that a
// 32-page swap cluster costs ~3 ms, putting direct-reclaim-with-swap events
// in the low-millisecond range the paper reports for pressured allocations.
type DiskConfig struct {
	// SeekTime is the positioning cost charged once per I/O operation.
	SeekTime simtime.Duration
	// TransferPerPage is the sequential transfer time per 4 KiB page
	// (~30 µs/page ≈ 136 MB/s, typical for a 7200 rpm disk).
	TransferPerPage simtime.Duration
	// ClusterPages is the maximum pages moved per I/O (Linux
	// SWAP_CLUSTER_MAX is 32).
	ClusterPages int64
}

// DefaultDiskConfig returns the HDD model used by all experiments.
// Swap writeback is mostly sequential into the swap partition, so the
// effective cluster is large and the per-cluster positioning cost modest:
// sustained swap-out lands near 190 MB/s (outer-track streaming rate),
// which is what lets kswapd keep pace with an allocating benchmark on the
// paper's testbed. Small random I/O (a major fault swapping one page in)
// still pays a full seek.
func DefaultDiskConfig() DiskConfig {
	return DiskConfig{
		SeekTime:        1 * simtime.Millisecond,
		TransferPerPage: 18 * simtime.Microsecond,
		ClusterPages:    512,
	}
}

func (c DiskConfig) validate() error {
	if c.SeekTime < 0 || c.TransferPerPage <= 0 || c.ClusterPages <= 0 {
		return fmt.Errorf("kernel: invalid disk config %+v", c)
	}
	return nil
}

// NewDisk returns a disk with the given cost model.
func NewDisk(cfg DiskConfig) *Disk {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Disk{cfg: cfg}
}

// IO performs a synchronous transfer of pages at instant at and returns the
// caller-observed latency (queue wait + seek + transfer). write selects the
// direction counter only; the cost model is symmetric.
func (d *Disk) IO(at simtime.Time, pages int64, write bool) simtime.Duration {
	if pages <= 0 {
		return 0
	}
	var total simtime.Duration
	start := at
	if d.busyUntil > start {
		start = d.busyUntil
	}
	remaining := pages
	for remaining > 0 {
		chunk := remaining
		if chunk > d.cfg.ClusterPages {
			chunk = d.cfg.ClusterPages
		}
		dur := d.cfg.SeekTime + simtime.Duration(chunk)*d.cfg.TransferPerPage
		start = start.Add(dur)
		d.BusyTime += dur
		remaining -= chunk
		if write {
			d.Writes++
			d.PagesWrite += chunk
		} else {
			d.Reads++
			d.PagesRead += chunk
		}
	}
	d.busyUntil = start
	total = start.Sub(at)
	return total
}

// IOUrgent performs a synchronous transfer with head-of-line priority:
// it starts immediately (the I/O scheduler boosts synchronous requests past
// queued background writeback, as CFQ does for direct reclaim and major
// faults) while still consuming device capacity — queued background work is
// pushed back by the same amount.
func (d *Disk) IOUrgent(at simtime.Time, pages int64, write bool) simtime.Duration {
	if pages <= 0 {
		return 0
	}
	var total simtime.Duration
	remaining := pages
	for remaining > 0 {
		chunk := remaining
		if chunk > d.cfg.ClusterPages {
			chunk = d.cfg.ClusterPages
		}
		dur := d.cfg.SeekTime + simtime.Duration(chunk)*d.cfg.TransferPerPage
		total += dur
		d.BusyTime += dur
		remaining -= chunk
		if write {
			d.Writes++
			d.PagesWrite += chunk
		} else {
			d.Reads++
			d.PagesRead += chunk
		}
	}
	if d.busyUntil < at {
		d.busyUntil = at
	}
	d.busyUntil = d.busyUntil.Add(total)
	return total
}

// QueueDelay returns how long an I/O issued at instant at would wait before
// the device starts serving it. Exposed so background reclaim can throttle
// itself instead of building an unbounded queue.
func (d *Disk) QueueDelay(at simtime.Time) simtime.Duration {
	if d.busyUntil <= at {
		return 0
	}
	return d.busyUntil.Sub(at)
}

// BusyUntil returns the instant the device goes idle.
func (d *Disk) BusyUntil() simtime.Time { return d.busyUntil }
