package kernel

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// smallConfig returns a node small enough that tests can push it into
// memory pressure quickly: 64 MiB RAM, 32 MiB swap.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TotalMemory = 64 << 20
	cfg.SwapBytes = 32 << 20
	cfg.MinFilePages = 256
	return cfg
}

func newTestKernel(t *testing.T, cfg Config) (*Kernel, *simtime.Scheduler) {
	t.Helper()
	s := simtime.NewScheduler()
	k := New(s, cfg)
	return k, s
}

func TestNewKernelGeometry(t *testing.T) {
	k, _ := newTestKernel(t, DefaultConfig())
	if k.TotalPages() != (128<<30)/4096 {
		t.Fatalf("total pages = %d", k.TotalPages())
	}
	if k.FreePages() != k.TotalPages() {
		t.Fatal("fresh kernel must be all free")
	}
	min, low, high := k.Watermarks()
	if !(0 < min && min < low && low < high) {
		t.Fatalf("watermark order broken: %d %d %d", min, low, high)
	}
	// Paper §2.3: watermarks near 1‰ of the zone. On 128 GB expect tens of MB.
	lowBytes := low * k.PageSize()
	if lowBytes < 20<<20 || lowBytes > 200<<20 {
		t.Fatalf("low watermark %d bytes implausible for 128 GB", lowBytes)
	}
	k.CheckInvariants()
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.TotalMemory = 0 },
		func(c *Config) { c.TotalMemory = 4097 }, // not page multiple
		func(c *Config) { c.SwapBytes = -4096 },
		func(c *Config) { c.KswapdPeriod = 0 },
		func(c *Config) { c.KswapdBatchPages = 0 },
		func(c *Config) { c.Disk.ClusterPages = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config must panic", i)
				}
			}()
			New(simtime.NewScheduler(), cfg)
		}()
	}
}

func TestSbrkGrowAndFault(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	cost := k.Sbrk(s.Now(), p, 100)
	if cost <= 0 {
		t.Fatal("sbrk must cost time")
	}
	h := p.Heap()
	if h.Pages() != 100 || h.Mapped() != 0 {
		t.Fatalf("heap after sbrk: pages=%d mapped=%d", h.Pages(), h.Mapped())
	}
	free0 := k.FreePages()
	fcost := k.FaultIn(s.Now(), h, 40)
	if fcost <= 0 {
		t.Fatal("fault-in must cost time")
	}
	if h.Mapped() != 40 || k.FreePages() != free0-40 {
		t.Fatalf("after fault: mapped=%d free=%d", h.Mapped(), k.FreePages())
	}
	if k.Stats().MinorFaults != 40 {
		t.Fatalf("minor faults = %d", k.Stats().MinorFaults)
	}
	k.CheckInvariants()
}

func TestSbrkShrinkReleasesPages(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	k.Sbrk(s.Now(), p, 100)
	k.FaultIn(s.Now(), p.Heap(), 100)
	free0 := k.FreePages()
	k.Sbrk(s.Now(), p, -60)
	if p.Heap().Pages() != 40 {
		t.Fatalf("heap pages = %d, want 40", p.Heap().Pages())
	}
	if k.FreePages() != free0+60 {
		t.Fatalf("free = %d, want %d", k.FreePages(), free0+60)
	}
	k.CheckInvariants()
}

func TestSbrkShrinkConsumesUntouchedFirst(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	k.Sbrk(s.Now(), p, 100)
	k.FaultIn(s.Now(), p.Heap(), 30) // 70 untouched
	k.Sbrk(s.Now(), p, -50)          // releases 50 untouched
	h := p.Heap()
	if h.Mapped() != 30 {
		t.Fatalf("mapped = %d, want 30 (untouched released first)", h.Mapped())
	}
	if h.Untouched() != 20 {
		t.Fatalf("untouched = %d, want 20", h.Untouched())
	}
	k.CheckInvariants()
}

func TestMmapMunmapLifecycle(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	r, cost := k.Mmap(s.Now(), p, 64)
	if cost <= 0 || r.Pages() != 64 {
		t.Fatalf("mmap: cost=%v pages=%d", cost, r.Pages())
	}
	if p.VMACount() != 1 {
		t.Fatal("vma not registered")
	}
	k.FaultIn(s.Now(), r, 64)
	free0 := k.FreePages()
	// Partial shrink (Hermes delayed release).
	k.Munmap(s.Now(), r, 14)
	if r.Pages() != 50 || k.FreePages() != free0+14 {
		t.Fatalf("partial munmap: pages=%d free=%d", r.Pages(), k.FreePages())
	}
	// Full release removes the VMA.
	k.Munmap(s.Now(), r, 50)
	if p.VMACount() != 0 {
		t.Fatal("vma not removed after full munmap")
	}
	k.CheckInvariants()
}

func TestPopulateLockedAndMunlock(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("svc")
	r, _ := k.Mmap(s.Now(), p, 64)
	cost := k.PopulateLocked(s.Now(), r, 64)
	if cost <= 0 {
		t.Fatal("mlock populate must cost time")
	}
	if r.Locked() != 64 || r.Mapped() != 64 {
		t.Fatalf("locked=%d mapped=%d", r.Locked(), r.Mapped())
	}
	// Locked pages are off the LRU.
	if got := k.lru.activeAnon.pages + k.lru.inactiveAnon.pages; got != 0 {
		t.Fatalf("anon LRU pages = %d, want 0 while locked", got)
	}
	k.Munlock(s.Now(), r, 64)
	if r.Locked() != 0 {
		t.Fatal("munlock did not unlock")
	}
	if got := k.lru.activeAnon.pages; got != 64 {
		t.Fatalf("anon LRU pages = %d, want 64 after munlock", got)
	}
	k.CheckInvariants()
}

func TestMlockBulkCheaperThanTouch(t *testing.T) {
	// Paper §4: mlock-based construction is ≥40% faster than iterating.
	cfgA := smallConfig()
	kA, sA := newTestKernel(t, cfgA)
	pA := kA.CreateProcess("a")
	rA, _ := kA.Mmap(sA.Now(), pA, 256)
	touchCost := kA.FaultIn(sA.Now(), rA, 256)

	kB, sB := newTestKernel(t, cfgA)
	pB := kB.CreateProcess("b")
	rB, _ := kB.Mmap(sB.Now(), pB, 256)
	mlockCost := kB.PopulateLocked(sB.Now(), rB, 256)

	if float64(mlockCost) > 0.7*float64(touchCost) {
		t.Fatalf("mlock %v not ≥30%% cheaper than touch %v", mlockCost, touchCost)
	}
}

func TestExitProcessFreesAnonKeepsFileCache(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("batch")
	k.Sbrk(s.Now(), p, 200)
	k.FaultIn(s.Now(), p.Heap(), 200)
	f := k.CreateFile("input.dat", 500, p.PID)
	k.ReadFile(s.Now(), f, 500)

	freeBefore := k.FreePages()
	k.ExitProcess(p)
	// Anon pages come back...
	if k.FreePages() != freeBefore+200 {
		t.Fatalf("free = %d, want %d (anon reclaimed at exit)", k.FreePages(), freeBefore+200)
	}
	// ...but the file cache lingers — the paper's §2.3 observation.
	if f.CachedPages() != 500 {
		t.Fatalf("file cache = %d, want 500 (must survive process exit)", f.CachedPages())
	}
	if k.Process(p.PID) != nil {
		t.Fatal("process still visible after exit")
	}
	k.CheckInvariants()
}

func TestDeadProcessOperationsPanic(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("x")
	k.ExitProcess(p)
	defer func() {
		if recover() == nil {
			t.Fatal("sbrk on dead process must panic")
		}
	}()
	k.Sbrk(s.Now(), p, 10)
}

func TestFaultInBeyondUntouchedPanics(t *testing.T) {
	k, s := newTestKernel(t, smallConfig())
	p := k.CreateProcess("x")
	k.Sbrk(s.Now(), p, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("over-faulting must panic")
		}
	}()
	k.FaultIn(s.Now(), p.Heap(), 11)
}
