package workload

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

func testLoadConfig() LoadConfig {
	cfg := DefaultLoadConfig()
	cfg.Requests = 20_000
	return cfg
}

func drain(d *LoadDriver) []Request {
	var out []Request
	for {
		r, ok := d.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func TestLoadDriverDeterministic(t *testing.T) {
	a := drain(NewLoadDriver(testLoadConfig()))
	b := drain(NewLoadDriver(testLoadConfig()))
	if len(a) != len(b) || int64(len(a)) != testLoadConfig().Requests {
		t.Fatalf("stream lengths %d vs %d, want %d", len(a), len(b), testLoadConfig().Requests)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical drivers: %+v vs %+v", i, a[i], b[i])
		}
	}

	diff := testLoadConfig()
	diff.Seed = 2
	c := drain(NewLoadDriver(diff))
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced the identical stream")
	}
}

// Domain separation: a node and a load driver handed the identical seed
// (both default to 1) must not split the same stream — otherwise jitter
// noise would replay the request stream's draws bit for bit.
func TestLoadStreamDistinctFromKernelStream(t *testing.T) {
	kcfg := kernel.DefaultConfig()
	kcfg.Seed = 1
	k := kernel.New(simtime.NewScheduler(), kcfg)
	cfg := testLoadConfig()
	cfg.Seed = 1
	cfg.Generator = GenFast // d.rng is nil on the legacy path
	d := NewLoadDriver(cfg)
	same := 0
	for i := 0; i < 16; i++ {
		if k.RNG().Uint64() == d.rng.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("kernel and load driver share %d of 16 draws under the same seed", same)
	}
}

// Both generators must be deterministic per seed, seed-sensitive, and
// mutually distinct (the escape hatch is a different sampler, not an alias).
func TestLoadDriverLegacyGeneratorDeterministicAndDistinct(t *testing.T) {
	cfg := testLoadConfig()
	cfg.Generator = GenLegacy
	a := drain(NewLoadDriver(cfg))
	b := drain(NewLoadDriver(cfg))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("legacy request %d differs across identical drivers: %+v vs %+v", i, a[i], b[i])
		}
	}
	fastCfg := testLoadConfig()
	fastCfg.Generator = GenFast // explicit: the suite may run under HERMES_WORKLOAD=legacy
	fast := drain(NewLoadDriver(fastCfg))
	same := 0
	for i := range a {
		if a[i] == fast[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("legacy and fast generators produced the identical stream")
	}
	// The legacy stream obeys the same envelope: keys in range, reads
	// near the configured fraction.
	reads := 0
	for _, r := range a {
		if r.Key < 0 || r.Key >= cfg.Keys {
			t.Fatalf("legacy key %d outside [0,%d)", r.Key, cfg.Keys)
		}
		if r.Op == OpRead {
			reads++
		}
	}
	if frac := float64(reads) / float64(len(a)); frac < 0.45 || frac > 0.55 {
		t.Errorf("legacy read fraction %.3f, want ≈0.5", frac)
	}
}

func TestSetDefaultGeneratorSelectsLegacy(t *testing.T) {
	prev := SetDefaultGenerator(GenLegacy)
	defer SetDefaultGenerator(prev)
	cfg := testLoadConfig() // Generator left empty: resolves to the default
	viaDefault := drain(NewLoadDriver(cfg))
	cfg.Generator = GenLegacy
	explicit := drain(NewLoadDriver(cfg))
	for i := range viaDefault {
		if viaDefault[i] != explicit[i] {
			t.Fatalf("request %d: default-resolved legacy differs from explicit legacy", i)
		}
	}
}

func TestLoadConfigRejectsUnknownGenerator(t *testing.T) {
	cfg := testLoadConfig()
	cfg.Generator = "mersenne"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown generator must fail validation")
	}
}

func TestLoadDriverArrivalsMonotoneAtRate(t *testing.T) {
	cfg := testLoadConfig()
	reqs := drain(NewLoadDriver(cfg))
	var last simtime.Time
	for i, r := range reqs {
		if r.At.Before(last) {
			t.Fatalf("request %d arrives at %v before predecessor %v", i, r.At, last)
		}
		last = r.At
	}
	// Open loop: n arrivals at rate r span ~n/r seconds of virtual time.
	wantSpan := float64(cfg.Requests) / cfg.RatePerSec
	gotSpan := float64(last) / float64(simtime.Second)
	if gotSpan < wantSpan/2 || gotSpan > wantSpan*2 {
		t.Errorf("stream spans %.2fs of virtual time, want ≈%.2fs", gotSpan, wantSpan)
	}
}

func TestLoadDriverMixAndSkew(t *testing.T) {
	cfg := testLoadConfig()
	cfg.ReadFraction = 0.25
	reqs := drain(NewLoadDriver(cfg))
	reads, hot := 0, 0
	for _, r := range reqs {
		if r.Op == OpRead {
			if r.ValueBytes != 0 {
				t.Fatalf("read carries payload: %+v", r)
			}
			reads++
		} else if r.ValueBytes != cfg.ValueBytes {
			t.Fatalf("write payload %d, want %d", r.ValueBytes, cfg.ValueBytes)
		}
		if r.Key == 0 {
			hot++
		}
		if r.Key < 0 || r.Key >= cfg.Keys {
			t.Fatalf("key %d outside [0,%d)", r.Key, cfg.Keys)
		}
	}
	frac := float64(reads) / float64(len(reqs))
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("read fraction %.3f, want ≈0.25", frac)
	}
	// Zipf s=1.1: key 0 is the hottest, far above uniform's 1/Keys share.
	if uniformShare := float64(len(reqs)) / float64(cfg.Keys); float64(hot) < 10*uniformShare {
		t.Errorf("Zipf hot key hit %d times; uniform share would be %.1f — skew missing", hot, uniformShare)
	}

	cfg.ZipfS = 0 // uniform
	hot = 0
	for _, r := range drain(NewLoadDriver(cfg)) {
		if r.Key == 0 {
			hot++
		}
	}
	if hot > 40 { // E[hot] = 20000/100000 = 0.2
		t.Errorf("uniform keys hit key 0 %d times — still skewed", hot)
	}
}
