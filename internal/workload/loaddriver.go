package workload

import (
	"fmt"
	randv2 "math/rand/v2"
	"os"

	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload/randgen"
)

// Op is the request kind a LoadDriver emits.
type Op int

const (
	// OpWrite stores a value (allocator-visible: malloc + first touch).
	OpWrite Op = iota + 1
	// OpRead fetches a previously stored value (possible swap-ins).
	OpRead
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Request is one keyed request of an open-loop stream. Arrival times are
// fixed at generation time and never react to service latency — exactly the
// open-loop discipline a front-end fleet imposes on a storage tier, and the
// regime where queueing delay (not just service time) dominates tails.
type Request struct {
	// At is the arrival instant on the cluster-wide virtual timeline.
	At simtime.Time
	// Key selects the record (and thereby, through the ShardRouter, the
	// shard and node that serve the request).
	Key int64
	// Op is the request kind.
	Op Op
	// ValueBytes is the payload size for writes (0 for reads).
	ValueBytes int64
}

// Generator selects the sampling machinery behind a LoadDriver.
type Generator string

const (
	// GenFast is the default randgen-backed generator: splittable
	// splitmix64 streams, alias-table Zipf keys, ziggurat exponential
	// gaps — O(1) per draw with no transcendentals in the loop.
	GenFast Generator = "fast"
	// GenLegacy is the escape hatch (HERMES_WORKLOAD=legacy): stdlib
	// math/rand/v2 machinery with rejection-inversion Zipf, kept for
	// debugging and for benchmarking the generator overhaul. Its streams
	// are not bit-compatible with GenFast's (nor with the pre-overhaul
	// math/rand streams, which are retired); determinism per seed holds
	// on either generator.
	GenLegacy Generator = "legacy"
)

// defaultGenerator mirrors flatmap's backend switch: an env escape hatch
// resolved once at startup, overridable in-process for tests.
var defaultGenerator = func() Generator {
	if os.Getenv("HERMES_WORKLOAD") == "legacy" {
		return GenLegacy
	}
	return GenFast
}()

// DefaultGenerator returns the process-wide default workload generator.
func DefaultGenerator() Generator { return defaultGenerator }

// SetDefaultGenerator overrides the default generator for LoadDrivers
// created afterwards and returns the previous default (tests restore it).
func SetDefaultGenerator(g Generator) Generator {
	prev := defaultGenerator
	defaultGenerator = g
	return prev
}

// streamLoadDriver is the LoadDriver's stream id under LoadConfig.Seed —
// a domain-separation constant (ASCII "load-drv") far outside the small
// node-local id registry (kernel.Stream*). Ids must differ even across
// namespaces: a load driver and a node handed the *same* seed (both
// default to 1) would otherwise split the identical stream and correlate
// jitter noise with the request pattern.
const streamLoadDriver uint64 = 0x6c6f61642d647276

// LoadConfig tunes an open-loop request generator.
type LoadConfig struct {
	// Requests is the total number of requests to emit.
	Requests int64
	// RatePerSec is the mean arrival rate in requests per virtual second;
	// inter-arrival gaps are exponential (Poisson arrivals).
	RatePerSec float64
	// Start is the arrival instant of the stream's first request.
	Start simtime.Time
	// Keys is the key-space size; keys are in [0, Keys).
	Keys int64
	// ZipfS selects key skew: 0 draws keys uniformly, a value > 1 draws
	// them Zipf-distributed with exponent s (key 0 hottest).
	ZipfS float64
	// ReadFraction is the probability a request is a read (the rest are
	// writes). 0.5 reproduces the paper's insert+read query mix.
	ReadFraction float64
	// ValueBytes is the write payload size.
	ValueBytes int64
	// Seed drives all stochastic choices; one seed reproduces the exact
	// request stream.
	Seed uint64
	// Generator selects the sampling machinery; empty means the
	// process-wide default (GenFast unless HERMES_WORKLOAD=legacy).
	Generator Generator
}

// DefaultLoadConfig returns a YCSB-flavoured default: 1 M requests at
// 50 k req/s with a mildly skewed 100 k-key space, half reads, 1 KB values.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Requests:     1_000_000,
		RatePerSec:   50_000,
		Keys:         100_000,
		ZipfS:        1.1,
		ReadFraction: 0.5,
		ValueBytes:   1024,
		Seed:         1,
	}
}

// Validate reports whether the configuration is well-formed. Every
// violation names the offending field and the accepted range, so a CLI or
// scenario loader can surface the message verbatim.
func (c LoadConfig) Validate() error {
	if c.Requests <= 0 {
		return fmt.Errorf("workload: Requests must be > 0 (got %d)", c.Requests)
	}
	if c.RatePerSec <= 0 {
		return fmt.Errorf("workload: RatePerSec must be > 0 (got %v)", c.RatePerSec)
	}
	if c.Keys <= 0 {
		return fmt.Errorf("workload: Keys must be > 0 (got %d)", c.Keys)
	}
	if c.ValueBytes <= 0 {
		return fmt.Errorf("workload: ValueBytes must be > 0 (got %d)", c.ValueBytes)
	}
	if c.ZipfS != 0 && c.ZipfS <= 1 {
		return fmt.Errorf("workload: Zipf exponent must be > 1 (got %v); use 0 for uniform", c.ZipfS)
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return fmt.Errorf("workload: read fraction %v outside [0,1]", c.ReadFraction)
	}
	switch c.Generator {
	case "", GenFast, GenLegacy:
	default:
		return fmt.Errorf("workload: unknown generator %q", c.Generator)
	}
	return nil
}

// GeneratorKind resolves the configured generator, falling back to the
// process-wide default so the zero LoadConfig value works.
func (c LoadConfig) GeneratorKind() Generator {
	if c.Generator == "" {
		return defaultGenerator
	}
	return c.Generator
}

// LoadDriver generates an open-loop keyed request stream. It is a pull
// iterator: the cluster (or any other executor) calls Next and decides how
// to route and serve each request. Generation is deterministic — the same
// config and seed produce the identical stream, which is what makes whole
// cluster runs reproducible.
type LoadDriver struct {
	cfg LoadConfig

	// Fast path: an independent randgen stream split from the load seed,
	// with alias-table Zipf keys and ziggurat exponential gaps.
	rng  *randgen.Stream
	zipf *randgen.Zipf

	// Legacy escape hatch: stdlib machinery, nil unless selected.
	legacy *legacyGen

	// shape, when non-nil, modulates the instantaneous arrival rate: the
	// mean rate at virtual instant t is RatePerSec·shape(t). Only the
	// scenario driver sets it; a nil shape keeps the gap arithmetic
	// bit-identical to the constant-rate path.
	shape func(simtime.Time) float64

	next    simtime.Time
	emitted int64
}

// legacyGen is the GenLegacy sampling state: math/rand/v2's PCG with the
// stdlib's rejection-inversion Zipf and ziggurat helpers.
type legacyGen struct {
	rng  *randv2.Rand
	zipf *randv2.Zipf
}

// NewLoadDriver validates the config and positions the stream at its first
// arrival.
func NewLoadDriver(cfg LoadConfig) *LoadDriver {
	return newLoadDriverStream(cfg, streamLoadDriver)
}

// newLoadDriverStream builds a driver whose draws come from stream id under
// cfg.Seed. NewLoadDriver uses the canonical streamLoadDriver id; the
// scenario driver hands every traffic class its own id so coexisting
// classes never share a sequence. A class on the canonical id is
// bit-identical to a plain LoadDriver — the property Cluster.Run's
// single-phase adapter rests on.
func newLoadDriverStream(cfg LoadConfig, id uint64) *LoadDriver {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &LoadDriver{cfg: cfg, next: cfg.Start}
	if cfg.GeneratorKind() == GenLegacy {
		// The legacy generator has no stream ids: the canonical stream
		// seeds the PCG directly (the pre-scenario sequence, unchanged);
		// any other id derives a sub-seed so classes stay independent.
		seed := cfg.Seed
		if id != streamLoadDriver {
			seed = randgen.SplitSeed(cfg.Seed, id)
		}
		rng := randv2.New(randv2.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		d.legacy = &legacyGen{rng: rng}
		if cfg.ZipfS > 0 {
			d.legacy.zipf = randv2.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
		}
		return d
	}
	d.rng = randgen.Split(cfg.Seed, id)
	if cfg.ZipfS > 0 {
		d.zipf = randgen.NewZipf(d.rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	}
	return d
}

// Config returns the driver's configuration.
func (d *LoadDriver) Config() LoadConfig { return d.cfg }

// Emitted returns how many requests have been generated so far.
func (d *LoadDriver) Emitted() int64 { return d.emitted }

// Next returns the next request of the stream, or ok=false once Requests
// have been emitted. Draw order (key, op, gap) is fixed so the stream is a
// pure function of the seed.
func (d *LoadDriver) Next() (req Request, ok bool) {
	if d.emitted >= d.cfg.Requests {
		return Request{}, false
	}
	var key int64
	var opU, gap float64
	if l := d.legacy; l != nil {
		key = l.key(d.cfg)
		opU = l.rng.Float64()
		gap = l.rng.ExpFloat64()
	} else {
		key = d.key()
		opU = d.rng.Float64()
		gap = d.rng.ExpFloat64()
	}
	req = Request{At: d.next, Key: key}
	if opU < d.cfg.ReadFraction {
		req.Op = OpRead
	} else {
		req.Op = OpWrite
		req.ValueBytes = d.cfg.ValueBytes
	}
	d.emitted++
	gap /= d.cfg.RatePerSec // seconds of virtual time
	if d.shape != nil {
		// Time-varying rate: the gap out of instant t is scaled by the
		// instantaneous shape factor at t (an Euler-style non-homogeneous
		// Poisson — exact for piecewise-constant shapes, and deterministic
		// because the factor is a pure function of the arrival instant).
		gap /= d.shape(d.next)
	}
	d.next = d.next.Add(simtime.Duration(gap * float64(simtime.Second)))
	return req, true
}

func (d *LoadDriver) key() int64 {
	if d.zipf != nil {
		return int64(d.zipf.Uint64())
	}
	return d.rng.Int64N(d.cfg.Keys)
}

func (l *legacyGen) key(cfg LoadConfig) int64 {
	if l.zipf != nil {
		return int64(l.zipf.Uint64())
	}
	return l.rng.Int64N(cfg.Keys)
}
