package workload

import (
	"fmt"
	mrand "math/rand"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// Op is the request kind a LoadDriver emits.
type Op int

const (
	// OpWrite stores a value (allocator-visible: malloc + first touch).
	OpWrite Op = iota + 1
	// OpRead fetches a previously stored value (possible swap-ins).
	OpRead
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Request is one keyed request of an open-loop stream. Arrival times are
// fixed at generation time and never react to service latency — exactly the
// open-loop discipline a front-end fleet imposes on a storage tier, and the
// regime where queueing delay (not just service time) dominates tails.
type Request struct {
	// At is the arrival instant on the cluster-wide virtual timeline.
	At simtime.Time
	// Key selects the record (and thereby, through the ShardRouter, the
	// shard and node that serve the request).
	Key int64
	// Op is the request kind.
	Op Op
	// ValueBytes is the payload size for writes (0 for reads).
	ValueBytes int64
}

// LoadConfig tunes an open-loop request generator.
type LoadConfig struct {
	// Requests is the total number of requests to emit.
	Requests int64
	// RatePerSec is the mean arrival rate in requests per virtual second;
	// inter-arrival gaps are exponential (Poisson arrivals).
	RatePerSec float64
	// Start is the arrival instant of the stream's first request.
	Start simtime.Time
	// Keys is the key-space size; keys are in [0, Keys).
	Keys int64
	// ZipfS selects key skew: 0 draws keys uniformly, a value > 1 draws
	// them Zipf-distributed with exponent s (key 0 hottest).
	ZipfS float64
	// ReadFraction is the probability a request is a read (the rest are
	// writes). 0.5 reproduces the paper's insert+read query mix.
	ReadFraction float64
	// ValueBytes is the write payload size.
	ValueBytes int64
	// Seed drives all stochastic choices; one seed reproduces the exact
	// request stream.
	Seed uint64
}

// DefaultLoadConfig returns a YCSB-flavoured default: 1 M requests at
// 50 k req/s with a mildly skewed 100 k-key space, half reads, 1 KB values.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Requests:     1_000_000,
		RatePerSec:   50_000,
		Keys:         100_000,
		ZipfS:        1.1,
		ReadFraction: 0.5,
		ValueBytes:   1024,
		Seed:         1,
	}
}

// Validate reports whether the configuration is well-formed.
func (c LoadConfig) Validate() error {
	if c.Requests <= 0 || c.RatePerSec <= 0 || c.Keys <= 0 || c.ValueBytes <= 0 {
		return fmt.Errorf("workload: bad load config %+v", c)
	}
	if c.ZipfS != 0 && c.ZipfS <= 1 {
		return fmt.Errorf("workload: Zipf exponent must be > 1 (got %v); use 0 for uniform", c.ZipfS)
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return fmt.Errorf("workload: read fraction %v outside [0,1]", c.ReadFraction)
	}
	return nil
}

// LoadDriver generates an open-loop keyed request stream. It is a pull
// iterator: the cluster (or any other executor) calls Next and decides how
// to route and serve each request. Generation is deterministic — the same
// config and seed produce the identical stream, which is what makes whole
// cluster runs reproducible.
type LoadDriver struct {
	cfg     LoadConfig
	rng     *mrand.Rand
	zipf    *mrand.Zipf
	next    simtime.Time
	emitted int64
}

// NewLoadDriver validates the config and positions the stream at its first
// arrival.
func NewLoadDriver(cfg LoadConfig) *LoadDriver {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := mrand.New(mrand.NewSource(int64(cfg.Seed)))
	d := &LoadDriver{cfg: cfg, rng: rng, next: cfg.Start}
	if cfg.ZipfS > 0 {
		d.zipf = mrand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	}
	return d
}

// Config returns the driver's configuration.
func (d *LoadDriver) Config() LoadConfig { return d.cfg }

// Emitted returns how many requests have been generated so far.
func (d *LoadDriver) Emitted() int64 { return d.emitted }

// Next returns the next request of the stream, or ok=false once Requests
// have been emitted. Draw order (key, op, gap) is fixed so the stream is a
// pure function of the seed.
func (d *LoadDriver) Next() (req Request, ok bool) {
	if d.emitted >= d.cfg.Requests {
		return Request{}, false
	}
	req = Request{At: d.next, Key: d.key()}
	if d.rng.Float64() < d.cfg.ReadFraction {
		req.Op = OpRead
	} else {
		req.Op = OpWrite
		req.ValueBytes = d.cfg.ValueBytes
	}
	d.emitted++
	gap := d.rng.ExpFloat64() / d.cfg.RatePerSec // seconds of virtual time
	d.next = d.next.Add(simtime.Duration(gap * float64(simtime.Second)))
	return req, true
}

func (d *LoadDriver) key() int64 {
	if d.zipf != nil {
		return int64(d.zipf.Uint64())
	}
	return d.rng.Int63n(d.cfg.Keys)
}
