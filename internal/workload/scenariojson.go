package workload

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// JSON codec for scenario spec files (examples/scenarios/*.json). The wire
// format is a hand-editable mirror of the Scenario types: durations are Go
// duration strings ("250ms", "2s"), sizes are MB/GB fields, and every
// optional knob defaults to the Go-side default — a preset only says what
// it changes. ParseScenario validates before returning, so a loaded file is
// ready to run.

// jsonDur marshals a virtual duration as a Go duration string and accepts
// either a string or a nanosecond count when parsing.
type jsonDur simtime.Duration

func (d jsonDur) MarshalJSON() ([]byte, error) {
	return json.Marshal(simtime.Duration(d).String())
}

func (d *jsonDur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", s, err)
		}
		*d = jsonDur(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("duration must be a string like \"250ms\" or a nanosecond count: %s", b)
	}
	*d = jsonDur(ns)
	return nil
}

type scenarioJSON struct {
	Name string `json:"name"`
	// Seed is a pointer so an explicit 0 survives the round trip while an
	// absent field still defaults to 1.
	Seed     *uint64       `json:"seed,omitempty"`
	Start    jsonDur       `json:"start,omitempty"`
	Phases   []phaseJSON   `json:"phases"`
	Events   []eventJSON   `json:"events,omitempty"`
	SLO      *sloJSON      `json:"slo,omitempty"`
	Policies *policiesJSON `json:"policies,omitempty"`
}

type sloJSON struct {
	P99        jsonDur `json:"p99"`
	Window     jsonDur `json:"window"`
	MinSamples int     `json:"min_samples,omitempty"`
}

type policiesJSON struct {
	Shed      *shedJSON     `json:"shed,omitempty"`
	Batch     *batchPolJSON `json:"batch,omitempty"`
	Allocator *allocPolJSON `json:"allocator,omitempty"`
	Watermark *wmPolJSON    `json:"watermark,omitempty"`
}

type shedJSON struct {
	Step float64 `json:"step"`
	Max  float64 `json:"max"`
}

type batchPolJSON struct {
	Step float64 `json:"step"`
	Min  float64 `json:"min,omitempty"`
}

type allocPolJSON struct {
	Conservative float64 `json:"conservative"`
}

type wmPolJSON struct {
	Step float64 `json:"step"`
	Max  float64 `json:"max"`
}

type phaseJSON struct {
	Name     string      `json:"name"`
	Duration jsonDur     `json:"duration,omitempty"`
	Requests int64       `json:"requests,omitempty"`
	Shape    *shapeJSON  `json:"shape,omitempty"`
	Classes  []classJSON `json:"classes"`
}

type classJSON struct {
	Name       string          `json:"name"`
	Rate       float64         `json:"rate"`
	Keys       int64           `json:"keys"`
	Zipf       float64         `json:"zipf,omitempty"`
	Reads      float64         `json:"reads"`
	ValueBytes int64           `json:"value_bytes"`
	Generator  string          `json:"generator,omitempty"`
	Resilience *resilienceJSON `json:"resilience,omitempty"`
}

type resilienceJSON struct {
	Timeout jsonDur `json:"timeout,omitempty"`
	Retries int     `json:"retries,omitempty"`
	Backoff jsonDur `json:"backoff,omitempty"`
	Jitter  float64 `json:"jitter,omitempty"`
	Hedge   jsonDur `json:"hedge,omitempty"`
}

type shapeJSON struct {
	Kind      string  `json:"kind"`
	From      float64 `json:"from,omitempty"`
	To        float64 `json:"to,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
	At        jsonDur `json:"at,omitempty"`
	Width     jsonDur `json:"width,omitempty"`
	Period    jsonDur `json:"period,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
}

type eventJSON struct {
	At   jsonDur `json:"at"`
	Node *int    `json:"node,omitempty"` // omitted = every node
	Kind string  `json:"kind"`
	// squeeze-start footprint: MB for hand-written files, Bytes for
	// exact values (Bytes wins when both are set).
	MB    int64 `json:"mb,omitempty"`
	Bytes int64 `json:"bytes,omitempty"`
	// pressure-start knobs (all optional).
	Pressure *pressureJSON `json:"pressure,omitempty"`
	// batch-start knobs (all optional).
	Batch *batchJSON `json:"batch,omitempty"`
	// kill-node backlog policy ("drain" or "drop"; optional).
	Policy string `json:"policy,omitempty"`
	// degrade-node service-latency multiplier.
	Factor float64 `json:"factor,omitempty"`
	// fault-window knobs: per-request error probability, window length,
	// and an optional shard target (instead of a node).
	ErrorRate float64 `json:"error_rate,omitempty"`
	Duration  jsonDur `json:"duration,omitempty"`
	Shard     *int    `json:"shard,omitempty"`
}

type pressureJSON struct {
	Kind   string `json:"kind"` // "anon" or "file"
	FreeMB int64  `json:"free_mb,omitempty"`
	FileMB int64  `json:"file_mb,omitempty"`
}

type batchJSON struct {
	TargetMB   int64   `json:"target_mb,omitempty"`
	InputMB    int64   `json:"input_mb,omitempty"`
	WorkFor    jsonDur `json:"work_for,omitempty"`
	RampTicks  int     `json:"ramp_ticks,omitempty"`
	TickPeriod jsonDur `json:"tick_period,omitempty"`
}

// ParseScenario decodes and validates a scenario spec document.
func ParseScenario(data []byte) (Scenario, error) {
	var doc scenarioJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return Scenario{}, fmt.Errorf("workload: scenario JSON: %w", err)
	}
	s := Scenario{
		Name:  doc.Name,
		Seed:  1,
		Start: simtime.Time(doc.Start),
	}
	if doc.Seed != nil {
		s.Seed = *doc.Seed
	}
	for _, pj := range doc.Phases {
		p := Phase{
			Name:     pj.Name,
			Duration: simtime.Duration(pj.Duration),
			Requests: pj.Requests,
		}
		if pj.Shape != nil {
			p.Shape = RateShape{
				Kind:      ShapeKind(pj.Shape.Kind),
				From:      pj.Shape.From,
				To:        pj.Shape.To,
				Factor:    pj.Shape.Factor,
				At:        simtime.Duration(pj.Shape.At),
				Width:     simtime.Duration(pj.Shape.Width),
				Period:    simtime.Duration(pj.Shape.Period),
				Amplitude: pj.Shape.Amplitude,
			}
		}
		for _, cj := range pj.Classes {
			tc := TrafficClass{
				Name:         cj.Name,
				Rate:         cj.Rate,
				Keys:         cj.Keys,
				ZipfS:        cj.Zipf,
				ReadFraction: cj.Reads,
				ValueBytes:   cj.ValueBytes,
				Generator:    Generator(cj.Generator),
			}
			if rj := cj.Resilience; rj != nil {
				tc.Resilience = &Resilience{
					Timeout: simtime.Duration(rj.Timeout),
					Retries: rj.Retries,
					Backoff: simtime.Duration(rj.Backoff),
					Jitter:  rj.Jitter,
					Hedge:   simtime.Duration(rj.Hedge),
				}
			}
			p.Classes = append(p.Classes, tc)
		}
		s.Phases = append(s.Phases, p)
	}
	for _, ej := range doc.Events {
		e := Event{
			At:        simtime.Duration(ej.At),
			Node:      -1,
			Kind:      EventKind(ej.Kind),
			Bytes:     ej.MB << 20,
			Policy:    KillPolicy(ej.Policy),
			Factor:    ej.Factor,
			ErrorRate: ej.ErrorRate,
			Duration:  simtime.Duration(ej.Duration),
		}
		if ej.Bytes > 0 {
			e.Bytes = ej.Bytes
		}
		if ej.Node != nil {
			e.Node = *ej.Node
		}
		if ej.Shard != nil {
			shard := *ej.Shard
			e.Shard = &shard
		}
		if ej.Pressure != nil {
			kind := PressureAnon
			if ej.Pressure.Kind == "file" {
				kind = PressureFile
			} else if ej.Pressure.Kind != "" && ej.Pressure.Kind != "anon" {
				return Scenario{}, fmt.Errorf("workload: scenario JSON: pressure kind must be \"anon\" or \"file\" (got %q)", ej.Pressure.Kind)
			}
			cfg := DefaultPressureConfig(kind)
			if ej.Pressure.FreeMB > 0 {
				cfg.FreeBytes = ej.Pressure.FreeMB << 20
			}
			if ej.Pressure.FileMB > 0 {
				cfg.FileBytes = ej.Pressure.FileMB << 20
			}
			e.Pressure = &cfg
		}
		if ej.Batch != nil {
			cfg := batch.DefaultConfig()
			if ej.Batch.TargetMB > 0 {
				cfg.TargetBytes = ej.Batch.TargetMB << 20
			}
			if ej.Batch.InputMB > 0 {
				cfg.InputBytes = ej.Batch.InputMB << 20
			}
			if ej.Batch.WorkFor > 0 {
				cfg.WorkDuration = simtime.Duration(ej.Batch.WorkFor)
			}
			if ej.Batch.RampTicks > 0 {
				cfg.RampTicks = ej.Batch.RampTicks
			}
			if ej.Batch.TickPeriod > 0 {
				cfg.TickPeriod = simtime.Duration(ej.Batch.TickPeriod)
			}
			e.Batch = &cfg
		}
		if e.Kind == EventDaemonStart {
			cfg := monitor.DefaultConfig()
			e.Daemon = &cfg
		}
		s.Events = append(s.Events, e)
	}
	if doc.SLO != nil {
		s.SLO = &SLO{
			P99:        simtime.Duration(doc.SLO.P99),
			Window:     simtime.Duration(doc.SLO.Window),
			MinSamples: doc.SLO.MinSamples,
		}
	}
	if doc.Policies != nil {
		pol := Policies{}
		if doc.Policies.Shed != nil {
			pol.Shed = &ShedPolicy{Step: doc.Policies.Shed.Step, Max: doc.Policies.Shed.Max}
		}
		if doc.Policies.Batch != nil {
			pol.Batch = &BatchPolicy{Step: doc.Policies.Batch.Step, Min: doc.Policies.Batch.Min}
		}
		if doc.Policies.Allocator != nil {
			pol.Allocator = &AllocatorPolicy{Conservative: doc.Policies.Allocator.Conservative}
		}
		if doc.Policies.Watermark != nil {
			pol.Watermark = &WatermarkPolicy{Step: doc.Policies.Watermark.Step, Max: doc.Policies.Watermark.Max}
		}
		s.Policies = &pol
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// MarshalScenarioJSON encodes a scenario into the spec-file wire format.
// The format is MB-grained for pressure/batch sizes and carries no custom
// daemon config (daemon-start re-parses to the default config), so a
// scenario built through the Go API round-trips exactly only within what
// the wire format expresses; squeeze footprints keep exact byte values.
func MarshalScenarioJSON(s Scenario) ([]byte, error) {
	seed := s.Seed
	doc := scenarioJSON{
		Name:  s.Name,
		Seed:  &seed,
		Start: jsonDur(s.Start),
	}
	for _, p := range s.Phases {
		pj := phaseJSON{
			Name:     p.Name,
			Duration: jsonDur(p.Duration),
			Requests: p.Requests,
		}
		if p.Shape.ShapeKind() != ShapeConstant {
			pj.Shape = &shapeJSON{
				Kind:      string(p.Shape.Kind),
				From:      p.Shape.From,
				To:        p.Shape.To,
				Factor:    p.Shape.Factor,
				At:        jsonDur(p.Shape.At),
				Width:     jsonDur(p.Shape.Width),
				Period:    jsonDur(p.Shape.Period),
				Amplitude: p.Shape.Amplitude,
			}
		}
		for _, tc := range p.Classes {
			cj := classJSON{
				Name:       tc.Name,
				Rate:       tc.Rate,
				Keys:       tc.Keys,
				Zipf:       tc.ZipfS,
				Reads:      tc.ReadFraction,
				ValueBytes: tc.ValueBytes,
				Generator:  string(tc.Generator),
			}
			if r := tc.Resilience; r != nil {
				cj.Resilience = &resilienceJSON{
					Timeout: jsonDur(r.Timeout),
					Retries: r.Retries,
					Backoff: jsonDur(r.Backoff),
					Jitter:  r.Jitter,
					Hedge:   jsonDur(r.Hedge),
				}
			}
			pj.Classes = append(pj.Classes, cj)
		}
		doc.Phases = append(doc.Phases, pj)
	}
	for _, e := range s.Events {
		ej := eventJSON{
			At:        jsonDur(e.At),
			Kind:      string(e.Kind),
			Policy:    string(e.Policy),
			Factor:    e.Factor,
			ErrorRate: e.ErrorRate,
			Duration:  jsonDur(e.Duration),
		}
		if e.Shard != nil {
			shard := *e.Shard
			ej.Shard = &shard
		}
		if e.Bytes%(1<<20) == 0 {
			ej.MB = e.Bytes >> 20
		} else {
			ej.Bytes = e.Bytes // not MB-aligned: keep the exact value
		}
		if e.Node >= 0 {
			n := e.Node
			ej.Node = &n
		}
		if e.Pressure != nil {
			kind := "anon"
			if e.Pressure.Kind == PressureFile {
				kind = "file"
			}
			ej.Pressure = &pressureJSON{
				Kind:   kind,
				FreeMB: e.Pressure.FreeBytes >> 20,
				FileMB: e.Pressure.FileBytes >> 20,
			}
		}
		if e.Batch != nil {
			ej.Batch = &batchJSON{
				TargetMB:   e.Batch.TargetBytes >> 20,
				InputMB:    e.Batch.InputBytes >> 20,
				WorkFor:    jsonDur(e.Batch.WorkDuration),
				RampTicks:  e.Batch.RampTicks,
				TickPeriod: jsonDur(e.Batch.TickPeriod),
			}
		}
		doc.Events = append(doc.Events, ej)
	}
	if s.SLO != nil {
		doc.SLO = &sloJSON{
			P99:        jsonDur(s.SLO.P99),
			Window:     jsonDur(s.SLO.Window),
			MinSamples: s.SLO.MinSamples,
		}
	}
	if s.Policies != nil {
		pol := policiesJSON{}
		if s.Policies.Shed != nil {
			pol.Shed = &shedJSON{Step: s.Policies.Shed.Step, Max: s.Policies.Shed.Max}
		}
		if s.Policies.Batch != nil {
			pol.Batch = &batchPolJSON{Step: s.Policies.Batch.Step, Min: s.Policies.Batch.Min}
		}
		if s.Policies.Allocator != nil {
			pol.Allocator = &allocPolJSON{Conservative: s.Policies.Allocator.Conservative}
		}
		if s.Policies.Watermark != nil {
			pol.Watermark = &wmPolJSON{Step: s.Policies.Watermark.Step, Max: s.Policies.Watermark.Max}
		}
		doc.Policies = &pol
	}
	return json.MarshalIndent(doc, "", "  ")
}
