package workload

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload/randgen"
)

// PressureKind selects which Figure 3 regime a generator produces.
type PressureKind int

const (
	// PressureAnon reproduces "anonymous page pressure": a process keeps
	// allocating anonymous memory, so reclaim must swap to the HDD.
	PressureAnon PressureKind = iota + 1
	// PressureFile reproduces "file cache pressure": large files occupy
	// the cache and anonymous memory squeezes free pages, so reclaim can
	// mostly drop clean file pages.
	PressureFile
)

func (p PressureKind) String() string {
	switch p {
	case PressureAnon:
		return "anon"
	case PressureFile:
		return "file"
	default:
		return fmt.Sprintf("PressureKind(%d)", int(p))
	}
}

// PressureConfig tunes a generator.
type PressureConfig struct {
	Kind PressureKind
	// FileBytes is the file-cache footprint for PressureFile (the paper
	// loads 10 GB of files).
	FileBytes int64
	// FreeBytes is the free-memory level the initial fill leaves behind.
	// The paper's generators allocate "until the available memory in the
	// node becomes about 300 MB" and then hold their footprint: the
	// victim workload first drains this buffer, then runs against
	// kswapd's reclaim supply — a transient, not a pinned steady state.
	FreeBytes int64
	// Period is the background interval (the file generator re-reads its
	// working set at this cadence).
	Period simtime.Duration
}

// DefaultPressureConfig returns the evaluation settings for the given kind
// (a 300 MB residual buffer, per §2.2/§5.2).
func DefaultPressureConfig(kind PressureKind) PressureConfig {
	return PressureConfig{
		Kind:      kind,
		FileBytes: 10 << 30,
		FreeBytes: 300 << 20,
		Period:    2 * simtime.Millisecond,
	}
}

// Validate reports whether the configuration is well-formed, naming the
// offending field so config loaders can surface the message verbatim.
func (cfg PressureConfig) Validate() error {
	if cfg.Kind != PressureAnon && cfg.Kind != PressureFile {
		return fmt.Errorf("workload: pressure Kind must be PressureAnon or PressureFile (got %v)", cfg.Kind)
	}
	if cfg.FreeBytes <= 0 {
		return fmt.Errorf("workload: pressure FreeBytes must be > 0 (got %d)", cfg.FreeBytes)
	}
	if cfg.Period <= 0 {
		return fmt.Errorf("workload: pressure Period must be > 0 (got %v)", cfg.Period)
	}
	if cfg.Kind == PressureFile && cfg.FileBytes <= 0 {
		return fmt.Errorf("workload: file pressure FileBytes must be > 0 (got %d)", cfg.FileBytes)
	}
	return nil
}

// Pressure is a running pressure generator: a simulated co-tenant process
// (plus files for the file variant) that consumes memory down to the
// watermark region and keeps it there, re-consuming whatever reclaim frees.
type Pressure struct {
	k     *kernel.Kernel
	cfg   PressureConfig
	proc  *kernel.Process
	task  *simtime.PeriodicTask
	files []*kernel.File
	// rng is the generator's own stream — (kernel.StreamPressure, PID)
	// under the node seed: its draws never shift the kernel's jitter
	// sequence, nor a coexisting generator's, and vice versa.
	rng *randgen.Stream

	// AnonPages counts pages the generator has faulted in.
	AnonPages int64
}

// PID returns the generator process's PID (the monitor daemon registers it
// as a batch job so proactive reclamation may target its files).
func (p *Pressure) PID() kernel.PID { return p.proc.PID }

// StartPressure launches a generator on the node. It performs the initial
// fill immediately (consuming the node's free memory down to the target)
// and then maintains the level each period. Stop releases the generator's
// process.
func StartPressure(k *kernel.Kernel, cfg PressureConfig) *Pressure {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Pressure{
		k:    k,
		cfg:  cfg,
		proc: k.CreateProcess(fmt.Sprintf("pressure-%v", cfg.Kind)),
	}
	// Keyed by PID so coexisting generators on one node draw distinct
	// sequences (PID assignment is itself deterministic).
	p.rng = k.NewStream(kernel.StreamPressure, uint64(p.proc.PID))
	s := k.Scheduler()
	if cfg.Kind == PressureFile {
		// Load the working files: they fill the page cache and stay there
		// after reading (the paper's generator repeatedly reads 10 GB of
		// files).
		pages := cfg.FileBytes / k.PageSize()
		const nFiles = 10
		for i := 0; i < nFiles; i++ {
			f := k.CreateFile(fmt.Sprintf("pressure-file-%d", i), pages/nFiles, p.proc.PID)
			k.ReadFile(s.Now(), f, pages/nFiles)
			p.files = append(p.files, f)
		}
	}
	// Initial fill: consume anonymous memory until the configured residual
	// buffer remains, then hold the footprint. The buffer never goes below
	// 1.5× the low watermark: a real allocating process cannot leave the
	// node under the watermark floor — reclaim would push it back.
	target := cfg.FreeBytes / k.PageSize()
	if _, low, _ := k.Watermarks(); target < low*3/2 {
		target = low * 3 / 2
	}
	if excess := k.FreePages() - target; excess > 0 {
		r, _ := k.Mmap(s.Now(), p.proc, excess)
		k.FaultIn(s.Now(), r, excess)
		p.AnonPages += excess
	}
	p.task = simtime.NewPeriodicTask(s, cfg.Period, func(now simtime.Time) simtime.Duration {
		// The file generator keeps re-reading its working set, so dropped
		// cache (reclaim or the monitor daemon's fadvise) is reloaded over
		// time — the tug-of-war a real co-tenant produces. File choice is
		// a draw from the generator's own stream: irregular, like a real
		// co-tenant's access pattern, yet a pure function of the seed.
		if len(p.files) > 0 {
			f := p.files[p.rng.IntN(len(p.files))]
			p.k.ReadFile(now, f, f.SizePages()/8)
		}
		return 20 * simtime.Microsecond
	})
	return p
}

// Stop halts maintenance and exits the generator process, releasing its
// anonymous memory (file cache stays, as on a real node).
func (p *Pressure) Stop() {
	p.task.Stop()
	p.k.ExitProcess(p.proc)
}
