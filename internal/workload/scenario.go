package workload

import (
	"fmt"
	"math"

	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// This file is the declarative scenario layer: a Scenario describes a whole
// experiment — an ordered list of phases, each blending one or more traffic
// classes under a rate shape, plus a virtual-time event timeline — and the
// ScenarioDriver turns it into one deterministic request stream. The
// cluster engine executes scenarios (and fires their events); everything
// here is pure generation, so the same Scenario replays bit-identically on
// either cluster engine.

// ShapeKind names a rate-shape curve.
type ShapeKind string

const (
	// ShapeConstant keeps the class rates flat across the phase (the
	// default; factor 1 everywhere, bit-identical to an unshaped driver).
	ShapeConstant ShapeKind = "constant"
	// ShapeRamp scales the rate linearly from From× to To× across the
	// phase duration — warm-up ramps and ramp-to-saturation sweeps.
	ShapeRamp ShapeKind = "ramp"
	// ShapeSpike multiplies the rate by Factor inside the window
	// [At, At+Width) of phase-relative time — a flash crowd.
	ShapeSpike ShapeKind = "spike"
	// ShapeDiurnal modulates the rate sinusoidally: factor
	// 1 + Amplitude·sin(2π·t/Period) over phase-relative time t — the
	// day/night swing of a user-facing fleet.
	ShapeDiurnal ShapeKind = "diurnal"
)

// RateShape modulates the arrival rate of every traffic class in a phase.
// The zero value is a constant shape.
type RateShape struct {
	// Kind selects the curve; empty means ShapeConstant.
	Kind ShapeKind
	// From and To are the ramp's endpoint multipliers (ShapeRamp).
	From, To float64
	// Factor is the spike multiplier (ShapeSpike).
	Factor float64
	// At and Width bound the spike window in phase-relative time
	// (ShapeSpike).
	At, Width simtime.Duration
	// Period is the oscillation period (ShapeDiurnal).
	Period simtime.Duration
	// Amplitude is the oscillation depth in [0, 1) (ShapeDiurnal).
	Amplitude float64
}

// ShapeKind resolves the configured kind, defaulting to ShapeConstant so
// the zero RateShape value works.
func (r RateShape) ShapeKind() ShapeKind {
	if r.Kind == "" {
		return ShapeConstant
	}
	return r.Kind
}

// Validate reports whether the shape is well-formed. dur is the owning
// phase's duration (0 when the phase is request-bounded); a ramp needs it
// as the curve's domain.
func (r RateShape) Validate(dur simtime.Duration) error {
	switch r.ShapeKind() {
	case ShapeConstant:
	case ShapeRamp:
		if dur <= 0 {
			return fmt.Errorf("ramp shape needs a phase Duration as its domain")
		}
		if r.From <= 0 || r.To <= 0 {
			return fmt.Errorf("ramp endpoints must be > 0 (got From=%v To=%v)", r.From, r.To)
		}
	case ShapeSpike:
		if r.Factor <= 0 {
			return fmt.Errorf("spike Factor must be > 0 (got %v)", r.Factor)
		}
		if r.At < 0 || r.Width <= 0 {
			return fmt.Errorf("spike window must have At >= 0 and Width > 0 (got At=%v Width=%v)", r.At, r.Width)
		}
	case ShapeDiurnal:
		if r.Period <= 0 {
			return fmt.Errorf("diurnal Period must be > 0 (got %v)", r.Period)
		}
		if r.Amplitude < 0 || r.Amplitude >= 1 {
			return fmt.Errorf("diurnal Amplitude must be in [0, 1) (got %v)", r.Amplitude)
		}
	default:
		return fmt.Errorf("unknown shape kind %q (want constant, ramp, spike or diurnal)", r.Kind)
	}
	return nil
}

// factor returns the rate multiplier at phase-relative instant rel; dur is
// the phase duration (0 for request-bounded phases). Factors are pure
// functions of rel, which is what keeps shaped streams deterministic.
func (r RateShape) factor(rel, dur simtime.Duration) float64 {
	switch r.ShapeKind() {
	case ShapeRamp:
		frac := float64(rel) / float64(dur)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return r.From + (r.To-r.From)*frac
	case ShapeSpike:
		if rel >= r.At && rel < r.At+r.Width {
			return r.Factor
		}
		return 1
	case ShapeDiurnal:
		return 1 + r.Amplitude*math.Sin(2*math.Pi*float64(rel)/float64(r.Period))
	default:
		return 1
	}
}

// TrafficClass is one independent request population inside a phase: its
// own key space, skew, read/write mix and value sizes, sampled from its own
// domain-separated randgen stream. Classes in one phase interleave by
// arrival time into a single stream.
type TrafficClass struct {
	// Name labels the class in reports.
	Name string
	// Rate is the class's mean arrival rate in requests per virtual
	// second (before phase shaping).
	Rate float64
	// Keys is the class's key-space size; keys are in [0, Keys).
	Keys int64
	// ZipfS selects key skew: 0 uniform, > 1 Zipf with that exponent.
	ZipfS float64
	// ReadFraction is the probability a request is a read.
	ReadFraction float64
	// ValueBytes is the write payload size.
	ValueBytes int64
	// Generator selects the sampling machinery; empty means the
	// process-wide default.
	Generator Generator
	// Resilience optionally gives the class's clients a timeout / retry /
	// hedging policy (nil = fire-and-forget clients, the previous
	// behavior).
	Resilience *Resilience
}

// Resilience is a traffic class's client-side failure-handling policy. All
// of it is executed in virtual time by the cluster engine: retries and
// hedges re-enter routing as fresh arrival instants, and every stochastic
// choice (backoff jitter, fault draws) comes from its own domain-separated
// stream — so resilient scenarios replay bit-identically on both engines.
// Durations here are latency-domain (client deadlines measured against
// service latency), so Scenario.Scaled leaves them untouched.
type Resilience struct {
	// Timeout is the client's per-attempt deadline; an attempt whose
	// latency exceeds it counts as timed out (the server still finishes
	// the work — the client just stops waiting). 0 = no deadline.
	Timeout simtime.Duration
	// Retries bounds how many times the client retries a failed attempt
	// (error, timeout, or dropped connection). 0 = no retries.
	Retries int
	// Backoff is the base retry delay: retry k (1-based) waits
	// Backoff·2^(k-1)·(1+jitter) after the failure is observed. Required
	// when Retries > 0.
	Backoff simtime.Duration
	// Jitter is the multiplicative backoff jitter amplitude in [0, 1):
	// each retry's delay is stretched by a factor drawn uniformly from
	// [1, 1+Jitter).
	Jitter float64
	// Hedge, when > 0, fires a speculative duplicate of each read to the
	// next live replica of its shard after this much waiting — tail-latency
	// hedging. Writes are never hedged (a duplicated write would corrupt
	// the store-conservation contract). Requires shard replicas to bite.
	Hedge simtime.Duration
}

// Validate reports whether the policy is well-formed.
func (r Resilience) Validate() error {
	if r.Timeout < 0 {
		return fmt.Errorf("resilience Timeout must be >= 0 (got %v)", r.Timeout)
	}
	if r.Retries < 0 {
		return fmt.Errorf("resilience Retries must be >= 0 (got %d)", r.Retries)
	}
	if r.Retries > 0 && r.Backoff <= 0 {
		return fmt.Errorf("resilience Backoff must be > 0 when Retries > 0 (got %v)", r.Backoff)
	}
	if r.Backoff < 0 {
		return fmt.Errorf("resilience Backoff must be >= 0 (got %v)", r.Backoff)
	}
	if r.Jitter < 0 || r.Jitter >= 1 {
		return fmt.Errorf("resilience Jitter must be in [0, 1) (got %v)", r.Jitter)
	}
	if r.Hedge < 0 {
		return fmt.Errorf("resilience Hedge must be >= 0 (got %v)", r.Hedge)
	}
	return nil
}

// loadConfig lowers the class onto the LoadDriver's config for the given
// scenario seed and phase geometry.
func (tc TrafficClass) loadConfig(seed uint64, start simtime.Time, requests int64) LoadConfig {
	return LoadConfig{
		Requests:     requests,
		RatePerSec:   tc.Rate,
		Start:        start,
		Keys:         tc.Keys,
		ZipfS:        tc.ZipfS,
		ReadFraction: tc.ReadFraction,
		ValueBytes:   tc.ValueBytes,
		Seed:         seed,
		Generator:    tc.Generator,
	}
}

// Phase is one stage of a scenario: a set of traffic classes driven under
// one rate shape until a virtual-time duration elapses or a request budget
// is spent (whichever is set; with both, whichever comes first).
type Phase struct {
	// Name labels the phase in reports.
	Name string
	// Duration bounds the phase in virtual time (0 = unbounded; then
	// Requests must be set).
	Duration simtime.Duration
	// Requests bounds the phase's total request count across classes
	// (0 = unbounded; then Duration must be set).
	Requests int64
	// Shape modulates every class's arrival rate across the phase; the
	// zero value is constant.
	Shape RateShape
	// Classes are the phase's traffic classes (at least one).
	Classes []TrafficClass
}

// EventKind names a timeline action.
type EventKind string

const (
	// EventPressureStart launches a memory-pressure generator (the
	// event's Pressure config, or the anon default) on the target nodes;
	// a generator already running there is stopped first.
	EventPressureStart EventKind = "pressure-start"
	// EventPressureStop stops the target nodes' pressure generators
	// (no-op where none runs).
	EventPressureStop EventKind = "pressure-stop"
	// EventBatchStart launches churning batch co-tenants (the event's
	// Batch config, or the default shape) on the target nodes; a runner
	// already churning there is stopped first.
	EventBatchStart EventKind = "batch-start"
	// EventBatchStop stops the target nodes' batch runners (no-op where
	// none runs).
	EventBatchStop EventKind = "batch-stop"
	// EventDaemonStart launches the monitor daemon (the event's Daemon
	// config, or the default) on the target nodes; requires the Hermes
	// allocator. A daemon already running there is stopped first.
	EventDaemonStart EventKind = "daemon-start"
	// EventDaemonStop stops the target nodes' daemons (no-op where none
	// runs).
	EventDaemonStop EventKind = "daemon-stop"
	// EventSqueezeStart pins Bytes of anonymous memory on the target
	// nodes (an opaque co-tenant grabbing RAM); repeated squeezes grow
	// the same footprint.
	EventSqueezeStart EventKind = "squeeze-start"
	// EventSqueezeStop releases the target nodes' entire squeeze
	// footprint (no-op where none is held).
	EventSqueezeStop EventKind = "squeeze-stop"
	// EventKillNode takes the target node out of rotation: requests whose
	// shard chain has a live replica fail over to it, the rest are
	// dropped; the node's co-tenant machinery (pressure, batch, daemon,
	// squeeze) dies with it. Service state stays resident — the model is a
	// fenced process, not a wiped machine — so a later restore resumes
	// from the pre-kill dataset plus the migrated delta. Requires an
	// explicit Node index (a fleet-wide kill would leave nothing to serve).
	EventKillNode EventKind = "kill-node"
	// EventRestoreNode brings a killed node back into rotation and, when
	// the cluster runs shard replicas, replays the writes the outage
	// missed into the node's primary shards (live shard migration: an SST
	// handoff for RocksDB, a per-key re-fill through the allocator for
	// Redis). Requires an explicit Node index.
	EventRestoreNode EventKind = "restore-node"
	// EventDegradeNode multiplies the target nodes' raw service latency by
	// the event's Factor from the firing instant until a matching
	// heal-node — a brownout: the node keeps serving, just slower. A
	// second degrade on an already-degraded node replaces the factor.
	EventDegradeNode EventKind = "degrade-node"
	// EventHealNode ends a degrade window, restoring the target nodes'
	// native service latency. Requires a preceding degrade on each target.
	EventHealNode EventKind = "heal-node"
	// EventFaultWindow opens an error burst: for Duration after the firing
	// instant, each request routed to the target node (or, when Shard is
	// set, the target shard) fails fast with probability ErrorRate, drawn
	// from a dedicated domain-separated stream at generation time. Errored
	// requests consume no service time and trigger client retries where
	// the class's Resilience policy allows. Overlapping windows compound
	// probabilistically (1 − Π(1−rateᵢ)).
	EventFaultWindow EventKind = "fault-window"
)

// KillPolicy selects what a killed node does with requests that were queued
// behind its single-threaded server when the kill fired.
type KillPolicy string

const (
	// KillDrain (the default) lets the backlog drain: requests that
	// arrived before the kill instant are served even though the server
	// finishes them after it — a graceful stop.
	KillDrain KillPolicy = "drain"
	// KillDrop discards the backlog: a request that arrived before the
	// kill but had not started by it is dropped and counted, as a hard
	// crash severs queued connections. A request already executing at the
	// kill instant still completes.
	KillDrop KillPolicy = "drop"
)

// Event is one timeline entry: at virtual instant Start+At, apply Kind to
// the target nodes. Events fire deterministically inside the run loop —
// each node applies its own events in (At, declaration) order interleaved
// with its request stream, so both cluster engines observe the identical
// per-node history.
type Event struct {
	// At is the firing instant as an offset from the scenario start.
	At simtime.Duration
	// Node targets one node by index, or every node when -1.
	Node int
	// Kind is the action.
	Kind EventKind
	// Pressure optionally configures EventPressureStart (nil = the anon
	// default).
	Pressure *PressureConfig
	// Batch optionally configures EventBatchStart (nil = the default
	// shape; TargetBytes then defaults to the node's total memory).
	Batch *batch.Config
	// Daemon optionally configures EventDaemonStart (nil = the default).
	Daemon *monitor.Config
	// Bytes is the footprint EventSqueezeStart pins.
	Bytes int64
	// Policy selects the backlog fate for EventKillNode (empty =
	// KillDrain).
	Policy KillPolicy
	// Factor is EventDegradeNode's service-latency multiplier (> 1).
	Factor float64
	// ErrorRate is EventFaultWindow's per-request failure probability,
	// in (0, 1].
	ErrorRate float64
	// Duration is EventFaultWindow's length on the virtual timeline.
	Duration simtime.Duration
	// Shard optionally scopes EventFaultWindow to one shard instead of a
	// node; the event's Node must then be -1 (a window targets a node or
	// a shard, never both).
	Shard *int
}

// KillPolicyKind resolves the event's kill policy, defaulting to KillDrain
// so the zero value works.
func (e Event) KillPolicyKind() KillPolicy {
	if e.Policy == "" {
		return KillDrain
	}
	return e.Policy
}

// Validate reports whether the event is well-formed in isolation (node
// bounds and allocator requirements are checked by the cluster, which knows
// the fleet).
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("At must be >= 0 (got %v)", e.At)
	}
	if e.Node < -1 {
		return fmt.Errorf("Node must be a node index or -1 for all nodes (got %d)", e.Node)
	}
	switch e.Kind {
	case EventPressureStart:
		if e.Pressure != nil {
			if err := e.Pressure.Validate(); err != nil {
				return err
			}
		}
	case EventBatchStart:
		if e.Batch != nil {
			if err := e.Batch.Validate(); err != nil {
				return err
			}
		}
	case EventSqueezeStart:
		if e.Bytes <= 0 {
			return fmt.Errorf("squeeze-start Bytes must be > 0 (got %d)", e.Bytes)
		}
	case EventDaemonStart:
		if e.Daemon != nil {
			if err := e.Daemon.Validate(); err != nil {
				return err
			}
		}
	case EventKillNode:
		if e.Node < 0 {
			return fmt.Errorf("kill-node needs an explicit Node index (got %d; -1/all would leave nothing to serve)", e.Node)
		}
		switch e.KillPolicyKind() {
		case KillDrain, KillDrop:
		default:
			return fmt.Errorf("kill-node Policy must be %q or %q (got %q)", KillDrain, KillDrop, e.Policy)
		}
	case EventRestoreNode:
		if e.Node < 0 {
			return fmt.Errorf("restore-node needs an explicit Node index (got %d)", e.Node)
		}
	case EventDegradeNode:
		if e.Factor <= 1 {
			return fmt.Errorf("degrade-node Factor must be > 1 (got %v; 1 is native speed)", e.Factor)
		}
	case EventHealNode:
	case EventFaultWindow:
		if e.ErrorRate <= 0 || e.ErrorRate > 1 {
			return fmt.Errorf("fault-window ErrorRate must be in (0, 1] (got %v)", e.ErrorRate)
		}
		if e.Duration <= 0 {
			return fmt.Errorf("fault-window Duration must be > 0 (got %v)", e.Duration)
		}
		if e.Shard != nil {
			if *e.Shard < 0 {
				return fmt.Errorf("fault-window Shard must be a shard index (got %d)", *e.Shard)
			}
			if e.Node != -1 {
				return fmt.Errorf("fault-window targets a node or a shard, not both (got Node=%d with Shard=%d; set Node to -1)", e.Node, *e.Shard)
			}
		}
	case EventPressureStop, EventBatchStop, EventDaemonStop, EventSqueezeStop:
	default:
		return fmt.Errorf("unknown event kind %q", e.Kind)
	}
	if e.Policy != "" && e.Kind != EventKillNode {
		return fmt.Errorf("Policy applies only to kill-node events (got %q on %s)", e.Policy, e.Kind)
	}
	if e.Factor != 0 && e.Kind != EventDegradeNode {
		return fmt.Errorf("Factor applies only to degrade-node events (got %v on %s)", e.Factor, e.Kind)
	}
	if (e.ErrorRate != 0 || e.Duration != 0 || e.Shard != nil) && e.Kind != EventFaultWindow {
		return fmt.Errorf("ErrorRate/Duration/Shard apply only to fault-window events (got them on %s)", e.Kind)
	}
	return nil
}

// Scenario is a declarative description of a whole cluster experiment: an
// ordered list of phases plus an event timeline, reproduced exactly by one
// seed. Cluster.RunScenario executes it.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Seed drives every stochastic choice of every phase and class; one
	// seed reproduces the whole scenario.
	Seed uint64
	// Start is the arrival instant of the first phase (virtual time);
	// event offsets are relative to it.
	Start simtime.Time
	// Phases run back to back: each starts where the previous ended.
	Phases []Phase
	// Events is the timeline; order is irrelevant (fires sorted by At,
	// ties by declaration order).
	Events []Event
	// SLO optionally declares the scenario's latency objective; reports
	// then carry SLO-compliance columns, and Policies (if set) act on
	// breaches.
	SLO *SLO
	// Policies optionally configures the adaptive control plane that
	// reacts to SLO breaches. Requires SLO.
	Policies *Policies
}

// SLO declares a latency objective the scenario is judged (and, with
// Policies, controlled) against.
type SLO struct {
	// P99 is the target 99th-percentile service latency. Latency-domain:
	// Scenario.Scaled leaves it untouched.
	P99 simtime.Duration
	// Window is the controller's sampling window on the virtual timeline:
	// each node closes a window every Window of virtual time and compares
	// that window's p99 against the target. Timeline-domain: it scales.
	Window simtime.Duration
	// MinSamples is the minimum number of served requests a window needs
	// before its p99 can flip the controller (0 = default 16). Sparse
	// windows neither engage nor hold shedding.
	MinSamples int
}

// Validate reports whether the objective is well-formed.
func (s SLO) Validate() error {
	if s.P99 <= 0 {
		return fmt.Errorf("slo P99 must be > 0 (got %v)", s.P99)
	}
	if s.Window <= 0 {
		return fmt.Errorf("slo Window must be > 0 (got %v)", s.Window)
	}
	if s.MinSamples < 0 {
		return fmt.Errorf("slo MinSamples must be >= 0 (got %d)", s.MinSamples)
	}
	return nil
}

// SamplesFloor resolves MinSamples, defaulting to 16 so the zero value
// works.
func (s SLO) SamplesFloor() int {
	if s.MinSamples == 0 {
		return 16
	}
	return s.MinSamples
}

// Policies is the scenario's adaptive control plane: what the cluster does
// when the SLO is breached. Each enabled policy is one reconfiguration
// action the per-node controller may fire at a window boundary; any
// combination works, all are per-node and deterministic.
type Policies struct {
	// Shed enables per-node probabilistic load shedding.
	Shed *ShedPolicy
	// Batch enables adaptive batch sizing: co-tenant batch footprints are
	// stepped down under breach and restored when healthy.
	Batch *BatchPolicy
	// Allocator enables dynamic allocator-policy switching: hermes
	// allocators drop to a conservative reservation factor while breached.
	// Requires the hermes allocator.
	Allocator *AllocatorPolicy
	// Watermark enables kernel memory-watermark retuning: zone watermarks
	// scale up under breach so reclaim starts earlier.
	Watermark *WatermarkPolicy
}

// Validate reports whether the policy block is well-formed.
func (p Policies) Validate() error {
	if p.Shed == nil && p.Batch == nil && p.Allocator == nil && p.Watermark == nil {
		return fmt.Errorf("policies needs at least one policy (shed, batch, allocator or watermark)")
	}
	if p.Shed != nil {
		if err := p.Shed.Validate(); err != nil {
			return err
		}
	}
	if p.Batch != nil {
		if err := p.Batch.Validate(); err != nil {
			return err
		}
	}
	if p.Allocator != nil {
		if err := p.Allocator.Validate(); err != nil {
			return err
		}
	}
	if p.Watermark != nil {
		if err := p.Watermark.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ShedPolicy is SLO-driven admission control: when a node's windowed p99
// breaches the target, the node starts rejecting a fraction of incoming
// requests before they queue, stepping the fraction up each breached window
// and back down each healthy one — graceful degradation instead of
// collapse. Shed decisions draw from a per-node domain-separated stream in
// per-node arrival order, so both engines shed the identical requests.
type ShedPolicy struct {
	// Step is the shed-probability increment per breached window (and the
	// decrement per healthy one), in (0, 1].
	Step float64
	// Max caps the shed probability, in (0, 1].
	Max float64
}

// Validate reports whether the policy is well-formed.
func (p ShedPolicy) Validate() error {
	if p.Step <= 0 || p.Step > 1 {
		return fmt.Errorf("shed Step must be in (0, 1] (got %v)", p.Step)
	}
	if p.Max <= 0 || p.Max > 1 {
		return fmt.Errorf("shed Max must be in (0, 1] (got %v)", p.Max)
	}
	if p.Step > p.Max {
		return fmt.Errorf("shed Step must be <= Max (got Step=%v Max=%v)", p.Step, p.Max)
	}
	return nil
}

// BatchPolicy is SLO-driven co-tenant throttling: each breached window the
// controller shrinks the node's batch-runner footprint by Step of its
// configured target (shrinking containers release their trailing memory on
// the spot), and each healthy window restores it by the same step — the
// latency-critical service reclaims memory from best-effort work instead
// of stalling in the kernel. Fractions are dimensionless, so Scaled leaves
// the policy untouched.
type BatchPolicy struct {
	// Step is the fraction of the configured batch footprint removed per
	// breached window (and restored per healthy one), in (0, 1].
	Step float64
	// Min floors the throttled footprint as a fraction of the configured
	// one, in [0, 1). Zero allows a full squeeze-out.
	Min float64
}

// Validate reports whether the policy is well-formed.
func (p BatchPolicy) Validate() error {
	if p.Step <= 0 || p.Step > 1 {
		return fmt.Errorf("batch policy Step must be in (0, 1] (got %v)", p.Step)
	}
	if p.Min < 0 || p.Min >= 1 {
		return fmt.Errorf("batch policy Min must be in [0, 1) (got %v)", p.Min)
	}
	return nil
}

// AllocatorPolicy is SLO-driven allocator-policy switching: while a node
// is breached its hermes allocators run at the Conservative reservation
// factor (a smaller pinned reservation frees memory for the kernel), and a
// healthy window restores the configured factor. Requires the hermes
// allocator — the only one with a runtime-tunable policy.
type AllocatorPolicy struct {
	// Conservative is the reservation factor (RSV_FACTOR) switched to
	// while breached; must be > 0, and is typically below the configured
	// factor.
	Conservative float64
}

// Validate reports whether the policy is well-formed.
func (p AllocatorPolicy) Validate() error {
	if p.Conservative <= 0 {
		return fmt.Errorf("allocator policy Conservative must be > 0 (got %v)", p.Conservative)
	}
	return nil
}

// WatermarkPolicy is SLO-driven kernel watermark retuning: each breached
// window scales the node's zone watermarks up by Step (kswapd wakes
// earlier and keeps a larger free reserve, so fewer requests stall in
// direct reclaim), and each healthy window steps the scale back toward 1.
type WatermarkPolicy struct {
	// Step is the watermark-scale increment per breached window, > 0.
	Step float64
	// Max caps the watermark scale; must be >= 1 + Step.
	Max float64
}

// Validate reports whether the policy is well-formed.
func (p WatermarkPolicy) Validate() error {
	if p.Step <= 0 {
		return fmt.Errorf("watermark policy Step must be > 0 (got %v)", p.Step)
	}
	if p.Max < 1+p.Step {
		return fmt.Errorf("watermark policy Max must be >= 1+Step (got Max=%v Step=%v)", p.Max, p.Step)
	}
	return nil
}

// Validate reports whether the scenario is well-formed, locating every
// violation by phase/class/event so the message is actionable verbatim.
func (s Scenario) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: needs at least one phase", s.Name)
	}
	for pi, p := range s.Phases {
		where := fmt.Sprintf("scenario %q phase %d (%q)", s.Name, pi, p.Name)
		if p.Duration <= 0 && p.Requests <= 0 {
			return fmt.Errorf("%s: needs a Duration or a Requests budget", where)
		}
		if p.Duration < 0 {
			return fmt.Errorf("%s: Duration must be >= 0 (got %v)", where, p.Duration)
		}
		if p.Requests < 0 {
			return fmt.Errorf("%s: Requests must be >= 0 (got %d)", where, p.Requests)
		}
		if err := p.Shape.Validate(p.Duration); err != nil {
			return fmt.Errorf("%s: shape: %w", where, err)
		}
		if len(p.Classes) == 0 {
			return fmt.Errorf("%s: needs at least one traffic class", where)
		}
		for ci, tc := range p.Classes {
			// Lower onto a LoadConfig with placeholder bounds so the
			// class fields get the driver's own validation.
			cfg := tc.loadConfig(s.Seed, s.Start, 1)
			if err := cfg.Validate(); err != nil {
				return fmt.Errorf("%s class %d (%q): %w", where, ci, tc.Name, err)
			}
			if tc.Resilience != nil {
				if err := tc.Resilience.Validate(); err != nil {
					return fmt.Errorf("%s class %d (%q): %w", where, ci, tc.Name, err)
				}
			}
		}
	}
	for ei, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("scenario %q event %d (%s): %w", s.Name, ei, e.Kind, err)
		}
	}
	if s.SLO != nil {
		if err := s.SLO.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if s.Policies != nil {
		if s.SLO == nil {
			return fmt.Errorf("scenario %q: Policies requires an SLO to act on", s.Name)
		}
		if err := s.Policies.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// End returns the scenario's declared horizon: the later of the last
// phase's declared end (sum of durations, where known) and the last event.
// Request-bounded phases contribute no declared duration — their real end
// is only known after generation.
func (s Scenario) End() simtime.Time {
	end := s.Start
	for _, p := range s.Phases {
		end = end.Add(p.Duration)
	}
	for _, e := range s.Events {
		if at := s.Start.Add(e.At); at.After(end) {
			end = at
		}
	}
	return end
}

// Scaled returns a copy with every duration and request budget multiplied
// by f — the CLI's way of shrinking a committed preset onto a CI budget
// (or stretching it for a long soak). Durations nested in event payloads
// (a batch config's work duration and tick period, a pressure generator's
// period, a fault window's length) scale too, so the machinery a shrunken
// timeline starts still fits inside its shrunken window, as do the SLO
// controller's window and sample floor. Rates and tick counts are
// untouched; budgets keep a floor of one request so no phase vanishes.
// Latency-domain durations — Resilience timeouts/backoffs/hedges and the
// SLO's p99 target — do NOT scale: service latencies are scale-invariant,
// so scaling client deadlines would change what the scenario measures.
func (s Scenario) Scaled(f float64) Scenario {
	if f <= 0 {
		panic(fmt.Sprintf("workload: scenario scale must be > 0 (got %v)", f))
	}
	scaleDur := func(d simtime.Duration) simtime.Duration {
		scaled := simtime.Duration(float64(d) * f)
		if d > 0 && scaled <= 0 {
			return 1 // keep positive durations positive at extreme scales
		}
		return scaled
	}
	out := s
	out.Start = simtime.Time(float64(s.Start) * f)
	out.Phases = append([]Phase(nil), s.Phases...)
	for i := range out.Phases {
		p := &out.Phases[i]
		p.Duration = scaleDur(p.Duration)
		if p.Requests > 0 {
			if p.Requests = int64(float64(p.Requests) * f); p.Requests < 1 {
				p.Requests = 1
			}
		}
		p.Shape.At = scaleDur(p.Shape.At)
		p.Shape.Width = scaleDur(p.Shape.Width)
		p.Shape.Period = scaleDur(p.Shape.Period)
		p.Classes = append([]TrafficClass(nil), s.Phases[i].Classes...)
	}
	out.Events = append([]Event(nil), s.Events...)
	for i := range out.Events {
		e := &out.Events[i]
		e.At = scaleDur(e.At)
		e.Duration = scaleDur(e.Duration)
		// Deep-copy payload configs before scaling them: the input
		// scenario's events must stay untouched.
		if e.Pressure != nil {
			pcfg := *e.Pressure
			pcfg.Period = scaleDur(pcfg.Period)
			e.Pressure = &pcfg
		}
		if e.Batch != nil {
			bcfg := *e.Batch
			bcfg.WorkDuration = scaleDur(bcfg.WorkDuration)
			bcfg.TickPeriod = scaleDur(bcfg.TickPeriod)
			e.Batch = &bcfg
		}
	}
	if s.SLO != nil {
		slo := *s.SLO
		slo.Window = scaleDur(slo.Window)
		// The sample floor shrinks with the window (requests per window =
		// rate × window, and rates don't scale), floored at one so the
		// controller still bites at CI scales.
		if floor := int(float64(slo.SamplesFloor()) * f); floor >= 1 {
			slo.MinSamples = floor
		} else {
			slo.MinSamples = 1
		}
		out.SLO = &slo
	}
	if s.Policies != nil {
		// Policies are dimensionless (probabilities, fractions, factors):
		// nothing to scale, only deep-copy so the input stays untouched.
		pol := *s.Policies
		if pol.Shed != nil {
			shed := *pol.Shed
			pol.Shed = &shed
		}
		if pol.Batch != nil {
			b := *pol.Batch
			pol.Batch = &b
		}
		if pol.Allocator != nil {
			a := *pol.Allocator
			pol.Allocator = &a
		}
		if pol.Watermark != nil {
			w := *pol.Watermark
			pol.Watermark = &w
		}
		out.Policies = &pol
	}
	return out
}

// ScenarioFromLoad lifts a flat LoadConfig onto the scenario surface: one
// request-bounded phase, one class, constant shape, no events. The lowered
// class lands back on the canonical load-driver stream, so the generated
// request sequence is bit-identical to NewLoadDriver(cfg)'s — Cluster.Run
// is this adapter.
func ScenarioFromLoad(cfg LoadConfig) Scenario {
	return Scenario{
		Name:  "load",
		Seed:  cfg.Seed,
		Start: cfg.Start,
		Phases: []Phase{{
			Name:     "load",
			Requests: cfg.Requests,
			Classes: []TrafficClass{{
				Name:         "default",
				Rate:         cfg.RatePerSec,
				Keys:         cfg.Keys,
				ZipfS:        cfg.ZipfS,
				ReadFraction: cfg.ReadFraction,
				ValueBytes:   cfg.ValueBytes,
				Generator:    cfg.Generator,
			}},
		}},
	}
}

// FlatLoad returns the LoadConfig equivalent of a scenario that is a
// single request-bounded, constant-shaped, single-class phase — the shape
// ScenarioFromLoad generates — and whether the scenario has that shape.
// Because class (0, 0) rides the canonical load-driver stream, a plain
// NewLoadDriver over the returned config emits the identical request
// sequence, letting executors skip the scenario merge layer entirely on
// flat runs. The event timeline is unaffected (it never flows through the
// request stream).
func (s Scenario) FlatLoad() (LoadConfig, bool) {
	if len(s.Phases) != 1 || s.SLO != nil || s.Policies != nil {
		return LoadConfig{}, false
	}
	p := s.Phases[0]
	if len(p.Classes) != 1 || p.Duration > 0 || p.Requests <= 0 || p.Shape.ShapeKind() != ShapeConstant || p.Classes[0].Resilience != nil {
		return LoadConfig{}, false
	}
	return p.Classes[0].loadConfig(s.Seed, s.Start, p.Requests), true
}

// classStreamID derives the randgen stream id for class c of phase p. The
// ids live in the load-driver's domain-separation namespace: (0, 0) is the
// canonical streamLoadDriver id itself (the single-class adapter property),
// and every other (phase, class) perturbs distinct low bits, so no two
// classes of a scenario ever share a stream.
func classStreamID(p, c int) uint64 {
	return streamLoadDriver ^ (uint64(p)<<20 | uint64(c))
}

// ScenarioRequest is one generated request annotated with the phase and
// class that produced it, so executors can segment their digests.
type ScenarioRequest struct {
	Request
	// Phase and Class index into Scenario.Phases and Phase.Classes.
	Phase int
	Class int
}

// PhaseBound records where a phase landed on the virtual timeline once the
// driver has generated it.
type PhaseBound struct {
	// Start is the phase's first possible arrival instant.
	Start simtime.Time
	// End is the phase's boundary: the declared duration end, or — for
	// request-bounded phases — the last emitted arrival.
	End simtime.Time
	// Requests counts the requests the phase emitted.
	Requests int64
}

// classState is one traffic class mid-generation: its driver plus the
// pending (peeked) request of the k-way merge.
type classState struct {
	idx     int
	d       *LoadDriver
	pending Request
	ok      bool
}

// ScenarioDriver generates a scenario's merged request stream. Like
// LoadDriver it is a deterministic pull iterator; the cluster (or any other
// executor) routes and serves what it emits. Classes merge by arrival time
// (ties by class index), phases run back to back, and every class draws
// from its own split stream — so the whole stream is a pure function of the
// scenario.
type ScenarioDriver struct {
	scn      Scenario
	phaseIdx int
	classes  []*classState
	start    simtime.Time // current phase start
	end      simtime.Time // current phase's duration bound (or MaxTime)
	budget   int64        // remaining request budget (or MaxInt64)
	lastAt   simtime.Time // last emitted arrival
	emitted  int64        // total across phases
	phaseN   int64        // emitted within current phase
	bounds   []PhaseBound
	done     bool
	// fast marks a single-class, request-bounded phase: no merge, no
	// peeked pending request — Next pulls straight from the class driver.
	// This is the whole phase Cluster.Run's adapter generates, so the
	// flat path pays (almost) nothing for the scenario layer.
	fast bool
}

// NewScenarioDriver validates the scenario and positions the stream at the
// first phase's first arrival.
func NewScenarioDriver(scn Scenario) *ScenarioDriver {
	if err := scn.Validate(); err != nil {
		panic(err)
	}
	d := &ScenarioDriver{scn: scn, phaseIdx: -1, lastAt: scn.Start}
	d.nextPhase(scn.Start)
	return d
}

// Scenario returns the driver's scenario.
func (d *ScenarioDriver) Scenario() Scenario { return d.scn }

// Emitted returns how many requests have been generated so far.
func (d *ScenarioDriver) Emitted() int64 { return d.emitted }

// Bounds returns the phase bounds generated so far; after the stream is
// drained it covers every phase.
func (d *ScenarioDriver) Bounds() []PhaseBound { return d.bounds }

// nextPhase seals the current phase (if any) and arms the next one to
// start at the given instant. The handoff instant is also the sealed
// phase's End: the duration boundary when the clock ended it, the last
// arrival when the request budget (or class exhaustion) did — so bounds
// never overlap even when a budget closes a duration-bounded phase early.
func (d *ScenarioDriver) nextPhase(start simtime.Time) {
	if d.phaseIdx >= 0 {
		d.bounds = append(d.bounds, PhaseBound{Start: d.start, End: start, Requests: d.phaseN})
	}
	d.phaseIdx++
	d.phaseN = 0
	if d.phaseIdx >= len(d.scn.Phases) {
		d.done = true
		return
	}
	p := d.scn.Phases[d.phaseIdx]
	d.start = start
	d.end = simtime.MaxTime
	if p.Duration > 0 {
		d.end = start.Add(p.Duration)
	}
	d.budget = math.MaxInt64
	if p.Requests > 0 {
		d.budget = p.Requests
	}
	// Each class may have to cover the whole phase budget alone (the
	// merge, not the class, enforces the total).
	perClass := d.budget
	d.fast = len(p.Classes) == 1 && p.Duration <= 0
	d.classes = d.classes[:0]
	for ci, tc := range p.Classes {
		ld := newLoadDriverStream(tc.loadConfig(d.scn.Seed, start, perClass), classStreamID(d.phaseIdx, ci))
		if kind := p.Shape.ShapeKind(); kind != ShapeConstant {
			shape, phaseStart, dur := p.Shape, start, p.Duration
			ld.shape = func(at simtime.Time) float64 {
				return shape.factor(at.Sub(phaseStart), dur)
			}
		}
		cs := &classState{idx: ci, d: ld}
		if !d.fast {
			cs.pending, cs.ok = ld.Next()
		}
		d.classes = append(d.classes, cs)
	}
}

// Next returns the next request of the merged stream, or ok=false once
// every phase is spent.
func (d *ScenarioDriver) Next() (ScenarioRequest, bool) {
	for {
		if d.done {
			return ScenarioRequest{}, false
		}
		if d.fast {
			// Single class, request-bounded: the class driver's own
			// budget (== the phase budget) ends the phase.
			req, ok := d.classes[0].d.Next()
			if !ok {
				d.nextPhase(d.lastAt)
				continue
			}
			d.lastAt = req.At
			d.emitted++
			d.phaseN++
			out := ScenarioRequest{Request: req, Phase: d.phaseIdx, Class: 0}
			if d.budget--; d.budget == 0 {
				d.nextPhase(d.lastAt)
			}
			return out, true
		}
		// Pick the earliest pending arrival; ties break by class index.
		var pick *classState
		for _, cs := range d.classes {
			if cs.ok && (pick == nil || cs.pending.At.Before(pick.pending.At)) {
				pick = cs
			}
		}
		if pick == nil || (d.end != simtime.MaxTime && !pick.pending.At.Before(d.end)) {
			// Classes exhausted, or the earliest arrival crossed the
			// phase boundary: the phase is over. Arrivals past the
			// boundary are discarded — they belong to a rate regime that
			// no longer exists.
			start := d.end
			if start == simtime.MaxTime {
				start = d.lastAt
			}
			d.nextPhase(start)
			continue
		}
		out := ScenarioRequest{Request: pick.pending, Phase: d.phaseIdx, Class: pick.idx}
		pick.pending, pick.ok = pick.d.Next()
		d.lastAt = out.At
		d.emitted++
		d.phaseN++
		if d.budget--; d.budget == 0 {
			d.nextPhase(d.lastAt)
		}
		return out, true
	}
}
