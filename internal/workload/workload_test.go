package workload

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/alloc/glibcmalloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
)

func newNode(t *testing.T) (*kernel.Kernel, *simtime.Scheduler) {
	t.Helper()
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = 2 << 30
	cfg.SwapBytes = 1 << 30
	return kernel.New(s, cfg), s
}

func TestMicroBenchRecordsEveryRequest(t *testing.T) {
	k, s := newNode(t)
	a := glibcmalloc.New(k, "mb", glibcmalloc.DefaultConfig())
	rec := stats.NewRecorder("mb")
	RunMicroBench(k, a, MicroBenchConfig{RequestSize: 1024, TotalBytes: 1 << 20}, rec)
	if rec.Count() != 1024 {
		t.Fatalf("recorded %d requests, want 1024", rec.Count())
	}
	if s.Now() <= 0 {
		t.Fatal("benchmark must advance virtual time")
	}
	if rec.Mean() <= 0 {
		t.Fatal("latencies must be positive")
	}
	k.CheckInvariants()
}

func TestMicroBenchFreeMode(t *testing.T) {
	k, _ := newNode(t)
	a := glibcmalloc.New(k, "mb", glibcmalloc.DefaultConfig())
	rec := stats.NewRecorder("mb")
	RunMicroBench(k, a, MicroBenchConfig{RequestSize: 256 << 10, TotalBytes: 8 << 20, FreeBlocks: true}, rec)
	if got := a.Stats().MmapBytes; got != 0 {
		t.Fatalf("free mode left %d mmapped bytes", got)
	}
}

func TestMicroBenchInvalidConfigPanics(t *testing.T) {
	k, _ := newNode(t)
	a := glibcmalloc.New(k, "mb", glibcmalloc.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config must panic")
		}
	}()
	RunMicroBench(k, a, MicroBenchConfig{RequestSize: 0, TotalBytes: 1}, stats.NewRecorder("x"))
}

func TestJitterPreservesScale(t *testing.T) {
	k, _ := newNode(t)
	base := 10 * simtime.Microsecond
	var sum simtime.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += Jitter(k, base)
	}
	mean := sum / n
	// Log-normal with σ=0.13 keeps the mean within a few percent.
	if mean < base*9/10 || mean > base*12/10 {
		t.Fatalf("jittered mean %v strayed from base %v", mean, base)
	}
}

func TestJitterAmbientAppliesOnlyUnderReclaim(t *testing.T) {
	k, s := newNode(t)
	base := 100 * simtime.Microsecond
	if f := k.AmbientFactor(s.Now()); f != 0 {
		t.Fatalf("idle ambient factor = %v, want 0", f)
	}
	// Push below the low watermark to wake kswapd with anon-only memory.
	p := k.CreateProcess("hog")
	_, low, _ := k.Watermarks()
	r, _ := k.Mmap(s.Now(), p, k.FreePages()-low+16)
	k.FaultIn(s.Now(), r, r.Pages())
	s.Advance(10 * simtime.Millisecond)
	if !k.KswapdActive() {
		t.Skip("kswapd finished too fast on this configuration")
	}
	if f := k.AmbientFactor(s.Now()); f <= 0 {
		t.Fatal("ambient factor must be positive while reclaim runs")
	}
	// Pre-mapped requests bypass it.
	var withAmb, preMapped simtime.Duration
	for i := 0; i < 2000; i++ {
		withAmb += JitterRequest(k, base, false)
		preMapped += JitterRequest(k, base, true)
	}
	if withAmb <= preMapped {
		t.Fatal("ambient-exposed requests must average slower than pre-mapped ones")
	}
}

func TestAnonPressureLeavesConfiguredBuffer(t *testing.T) {
	k, _ := newNode(t)
	cfg := DefaultPressureConfig(PressureAnon)
	cfg.FreeBytes = 256 << 20
	p := StartPressure(k, cfg)
	defer p.Stop()
	free := k.FreeBytes()
	if free < 200<<20 || free > 320<<20 {
		t.Fatalf("free after fill = %d MB, want ~256 MB", free>>20)
	}
	if p.AnonPages == 0 {
		t.Fatal("generator allocated nothing")
	}
	k.CheckInvariants()
}

func TestAnonPressureClampsAboveWatermarks(t *testing.T) {
	k, _ := newNode(t)
	cfg := DefaultPressureConfig(PressureAnon)
	cfg.FreeBytes = 1 << 20 // below the watermark floor
	p := StartPressure(k, cfg)
	defer p.Stop()
	min, _, _ := k.Watermarks()
	if k.FreePages() <= min {
		t.Fatalf("pressure left free %d below min watermark %d", k.FreePages(), min)
	}
}

func TestFilePressurePopulatesCache(t *testing.T) {
	k, s := newNode(t)
	cfg := DefaultPressureConfig(PressureFile)
	cfg.FileBytes = 512 << 20
	cfg.FreeBytes = 128 << 20
	p := StartPressure(k, cfg)
	defer p.Stop()
	if got := k.FileCachePages() * k.PageSize(); got < 400<<20 {
		t.Fatalf("file cache %d MB, want ~512 MB", got>>20)
	}
	// The generator keeps re-reading: dropping the cache gets repaired.
	for _, f := range k.Files() {
		k.FadviseDontNeed(s.Now(), f)
	}
	s.Advance(200 * simtime.Millisecond)
	if got := k.FileCachePages(); got == 0 {
		t.Fatal("file generator must re-read its working set")
	}
	k.CheckInvariants()
}

func TestPressureStopReleasesAnon(t *testing.T) {
	k, _ := newNode(t)
	cfg := DefaultPressureConfig(PressureAnon)
	cfg.FreeBytes = 256 << 20
	p := StartPressure(k, cfg)
	p.Stop()
	if k.FreePages() != k.TotalPages() {
		t.Fatalf("free = %d pages after stop, want all %d", k.FreePages(), k.TotalPages())
	}
}

func TestBadPressureConfigPanics(t *testing.T) {
	k, _ := newNode(t)
	for i, cfg := range []PressureConfig{
		{Kind: PressureKind(99), FreeBytes: 1 << 20, Period: simtime.Millisecond},
		{Kind: PressureAnon, FreeBytes: 0, Period: simtime.Millisecond},
		{Kind: PressureAnon, FreeBytes: 1 << 20, Period: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid pressure config must panic", i)
				}
			}()
			StartPressure(k, cfg)
		}()
	}
}
