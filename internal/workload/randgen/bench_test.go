package randgen

import (
	"math"
	randv2 "math/rand/v2"
	"testing"
)

// Per-primitive benchmarks against the stdlib reference samplers the
// package replaces. The headline pair is RandgenZipfExpPath vs
// RandgenZipfExpPathLegacy — the per-request draw combination
// (Zipf key + exponential gap) ISSUE 4's ≥3× acceptance gate measures.

var (
	sinkU uint64
	sinkF float64
)

func BenchmarkRandgenUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		sinkU += s.Uint64()
	}
}

func BenchmarkRandgenZipfAlias(b *testing.B) {
	s := New(1)
	z := NewZipf(s, 1.1, 1, 99_999)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU += z.Uint64()
	}
}

func BenchmarkRandgenZipfReference(b *testing.B) {
	r := randv2.New(New(1))
	z := randv2.NewZipf(r, 1.1, 1, 99_999)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU += z.Uint64()
	}
}

func BenchmarkRandgenExpZiggurat(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		sinkF += s.ExpFloat64()
	}
}

func BenchmarkRandgenExpReference(b *testing.B) {
	r := randv2.New(New(1))
	for i := 0; i < b.N; i++ {
		sinkF += r.ExpFloat64()
	}
}

func BenchmarkRandgenNormZiggurat(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		sinkF += s.NormFloat64()
	}
}

func BenchmarkRandgenNormReference(b *testing.B) {
	r := randv2.New(New(1))
	for i := 0; i < b.N; i++ {
		sinkF += r.NormFloat64()
	}
}

func BenchmarkRandgenFastExp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF += FastExp(float64(i&255)*0.01 - 1.28)
	}
}

func BenchmarkRandgenMathExp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF += math.Exp(float64(i&255)*0.01 - 1.28)
	}
}

// The acceptance-gate pair: one workload draw = one Zipf key + one
// exponential inter-arrival gap.

func BenchmarkRandgenZipfExpPath(b *testing.B) {
	s := New(1)
	z := NewZipf(s, 1.1, 1, 99_999)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU += z.Uint64()
		sinkF += s.ExpFloat64()
	}
}

func BenchmarkRandgenZipfExpPathLegacy(b *testing.B) {
	r := randv2.New(randv2.NewPCG(1, 1^0x9e3779b97f4a7c15))
	z := randv2.NewZipf(r, 1.1, 1, 99_999)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU += z.Uint64()
		sinkF += r.ExpFloat64()
	}
}
