package randgen

import (
	"math"
	randv2 "math/rand/v2"
	"testing"
)

// Statistical equivalence gates (run in CI): the alias-table Zipf and the
// ziggurat exp/normal must match their reference distributions within
// chi-square tolerance. Seeds are fixed, so each statistic is one
// deterministic number — the thresholds sit well above the p=0.001
// critical values, with the reference samplers held to the same gate to
// show the tolerance is honest.

// chiSquareExpected is the one-sample statistic of observed bucket counts
// against expected probabilities: Σ (obs-n·p)²/(n·p) ~ χ²_{k-1}.
func chiSquareExpected(obs []int, p []float64, n int) float64 {
	var stat float64
	for i, o := range obs {
		exp := float64(n) * p[i]
		d := float64(o) - exp
		stat += d * d / exp
	}
	return stat
}

// chiSquareTwoSample compares two equal-size count vectors:
// Σ (a-b)²/(a+b) ~ χ²_{k-1}.
func chiSquareTwoSample(a, b []int) float64 {
	var stat float64
	for i := range a {
		if s := a[i] + b[i]; s > 0 {
			d := float64(a[i] - b[i])
			stat += d * d / float64(s)
		}
	}
	return stat
}

// zipfBuckets maps Zipf draws to the first 30 keys individually plus one
// tail bucket — the head carries most of the mass, the tail checks the
// aggregate remainder.
func zipfBuckets(draw func() uint64, samples int) []int {
	const head = 30
	obs := make([]int, head+1)
	for i := 0; i < samples; i++ {
		k := draw()
		if k < head {
			obs[k]++
		} else {
			obs[head]++
		}
	}
	return obs
}

func TestZipfAliasMatchesAnalyticAndReference(t *testing.T) {
	const (
		sExp    = 1.1
		v       = 1.0
		imax    = uint64(9_999)
		samples = 300_000
		// df = 30; χ²(0.001, 30) ≈ 59.7.
		limit = 80.0
	)
	// Exact head probabilities plus the aggregated tail.
	probs := make([]float64, 31)
	var total float64
	weights := make([]float64, imax+1)
	for k := range weights {
		weights[k] = math.Pow(v+float64(k), -sExp)
		total += weights[k]
	}
	var headMass float64
	for k := 0; k < 30; k++ {
		probs[k] = weights[k] / total
		headMass += probs[k]
	}
	probs[30] = 1 - headMass

	alias := NewZipf(Split(1, 1), sExp, v, imax)
	ref := randv2.NewZipf(randv2.New(Split(1, 2)), sExp, v, imax)
	aliasObs := zipfBuckets(alias.Uint64, samples)
	refObs := zipfBuckets(ref.Uint64, samples)

	if stat := chiSquareExpected(aliasObs, probs, samples); stat > limit {
		t.Errorf("alias Zipf vs analytic: χ² = %.1f, limit %.1f", stat, limit)
	}
	if stat := chiSquareExpected(refObs, probs, samples); stat > limit {
		t.Errorf("reference Zipf vs analytic: χ² = %.1f, limit %.1f (tolerance miscalibrated)", stat, limit)
	}
	if stat := chiSquareTwoSample(aliasObs, refObs); stat > limit {
		t.Errorf("alias vs reference Zipf: two-sample χ² = %.1f, limit %.1f", stat, limit)
	}
}

func TestZipfFallbackMatchesAliasDistribution(t *testing.T) {
	// Shrink the alias ceiling so the same configuration builds both
	// implementations, then hold them to the two-sample gate.
	prev := aliasMaxKeys
	aliasMaxKeys = 4
	fallback := NewZipf(Split(2, 1), 1.2, 1, 4_999)
	aliasMaxKeys = prev
	defer func() { aliasMaxKeys = prev }()
	if fallback.fallback == nil {
		t.Fatal("lowered ceiling did not select the rejection-inversion fallback")
	}
	alias := NewZipf(Split(2, 2), 1.2, 1, 4_999)
	if alias.fallback != nil {
		t.Fatal("restored ceiling still selects the fallback")
	}
	const samples = 200_000
	a := zipfBuckets(alias.Uint64, samples)
	b := zipfBuckets(fallback.Uint64, samples)
	if stat := chiSquareTwoSample(a, b); stat > 80 {
		t.Errorf("alias vs fallback: two-sample χ² = %.1f, limit 80", stat)
	}
}

// Key spaces past the alias ceiling — up to the full uint64 range — must
// construct in O(1) memory via the fallback instead of panicking: the
// driver's Validate accepts any positive key count.
func TestZipfHugeKeySpaceUsesFallback(t *testing.T) {
	for _, imax := range []uint64{1 << 33, math.MaxUint64} {
		z := NewZipf(New(9), 1.1, 1, imax)
		if z.fallback == nil {
			t.Fatalf("imax=%d built an alias table", imax)
		}
		for i := 0; i < 1000; i++ {
			if k := z.Uint64(); k > imax {
				t.Fatalf("imax=%d draw %d out of range", imax, k)
			}
		}
	}
}

func TestZipfDrawsStayInRange(t *testing.T) {
	z := NewZipf(New(5), 1.5, 1, 99)
	for i := 0; i < 50_000; i++ {
		if k := z.Uint64(); k > 99 {
			t.Fatalf("Zipf draw %d outside [0, 99]", k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf with s <= 1 must panic")
		}
	}()
	NewZipf(New(5), 1, 1, 99)
}

// expBucketProbs returns k equal-probability buckets of Exp(1); edges are
// the analytic quantiles, so every bucket expects samples/k hits.
func expBucketEdges(k int) []float64 {
	edges := make([]float64, k-1)
	for i := 1; i < k; i++ {
		edges[i-1] = -math.Log(1 - float64(i)/float64(k))
	}
	return edges
}

func bucketize(edges []float64, draw func() float64, samples int) []int {
	obs := make([]int, len(edges)+1)
	for i := 0; i < samples; i++ {
		x := draw()
		lo := 0
		for lo < len(edges) && x >= edges[lo] {
			lo++
		}
		obs[lo]++
	}
	return obs
}

func TestZigguratExpMatchesStdlib(t *testing.T) {
	const (
		samples = 300_000
		k       = 32
		// df = 31; χ²(0.001, 31) ≈ 61.1.
		limit = 80.0
	)
	edges := expBucketEdges(k)
	probs := make([]float64, k)
	for i := range probs {
		probs[i] = 1.0 / k
	}
	zig := Split(3, 1)
	ref := randv2.New(Split(3, 2))
	zigObs := bucketize(edges, zig.ExpFloat64, samples)
	refObs := bucketize(edges, ref.ExpFloat64, samples)
	if stat := chiSquareExpected(zigObs, probs, samples); stat > limit {
		t.Errorf("ziggurat exp vs analytic: χ² = %.1f, limit %.1f", stat, limit)
	}
	if stat := chiSquareExpected(refObs, probs, samples); stat > limit {
		t.Errorf("stdlib exp vs analytic: χ² = %.1f, limit %.1f (tolerance miscalibrated)", stat, limit)
	}
	if stat := chiSquareTwoSample(zigObs, refObs); stat > limit {
		t.Errorf("ziggurat vs stdlib exp: two-sample χ² = %.1f, limit %.1f", stat, limit)
	}
}

// stdNormCDF is Φ(x) via erf.
func stdNormCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

func TestZigguratNormMatchesStdlib(t *testing.T) {
	const (
		samples = 300_000
		limit   = 80.0 // df = 14; χ²(0.001, 14) ≈ 36.1 — generous headroom
	)
	edges := []float64{-3, -2.5, -2, -1.5, -1, -0.5, 0, 0.5, 1, 1.5, 2, 2.5, 3}
	probs := make([]float64, len(edges)+1)
	prev := 0.0
	for i, e := range edges {
		c := stdNormCDF(e)
		probs[i] = c - prev
		prev = c
	}
	probs[len(edges)] = 1 - prev

	zig := Split(4, 1)
	ref := randv2.New(Split(4, 2))
	zigObs := bucketize(edges, zig.NormFloat64, samples)
	refObs := bucketize(edges, ref.NormFloat64, samples)
	if stat := chiSquareExpected(zigObs, probs, samples); stat > limit {
		t.Errorf("ziggurat normal vs analytic: χ² = %.1f, limit %.1f", stat, limit)
	}
	if stat := chiSquareExpected(refObs, probs, samples); stat > limit {
		t.Errorf("stdlib normal vs analytic: χ² = %.1f, limit %.1f (tolerance miscalibrated)", stat, limit)
	}
	if stat := chiSquareTwoSample(zigObs, refObs); stat > limit {
		t.Errorf("ziggurat vs stdlib normal: two-sample χ² = %.1f, limit %.1f", stat, limit)
	}
}

func TestZigguratMomentsAndTails(t *testing.T) {
	s := Split(6, 1)
	const n = 500_000
	var expSum, normSum, normSq float64
	expBeyondR, normBeyondR := 0, 0
	for i := 0; i < n; i++ {
		e := s.ExpFloat64()
		if e < 0 {
			t.Fatalf("negative exponential variate %v", e)
		}
		if e > zigExpR {
			expBeyondR++
		}
		expSum += e
		z := s.NormFloat64()
		if math.Abs(z) > zigNormR {
			normBeyondR++
		}
		normSum += z
		normSq += z * z
	}
	if mean := expSum / n; mean < 0.99 || mean > 1.01 {
		t.Errorf("exponential mean %.4f, want ≈1", mean)
	}
	if mean := normSum / n; math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %.4f, want ≈0", mean)
	}
	if v := normSq / n; v < 0.99 || v > 1.01 {
		t.Errorf("normal variance %.4f, want ≈1", v)
	}
	// The tail paths must actually run: P(Exp > R) ≈ 4.5e-4,
	// P(|N| > R) ≈ 5.8e-4 — hundreds of hits in 500k draws.
	if expBeyondR == 0 || normBeyondR == 0 {
		t.Errorf("tail paths unexercised: exp %d, norm %d draws beyond R", expBeyondR, normBeyondR)
	}
}

func TestFastExpAccuracy(t *testing.T) {
	// Sweep the jitter-relevant range densely and the full clamped range
	// coarsely; FastExp must track math.Exp to ≤1e-9 relative error.
	check := func(x float64) {
		want := math.Exp(x)
		got := FastExp(x)
		if want == 0 || math.IsInf(want, 1) {
			if got != want {
				t.Fatalf("FastExp(%v) = %v, want %v", x, got, want)
			}
			return
		}
		if rel := math.Abs(got-want) / want; rel > 1e-9 {
			t.Fatalf("FastExp(%v) = %v, want %v (rel err %.2e)", x, got, want, rel)
		}
	}
	for x := -6.0; x <= 6.0; x += 1e-4 {
		check(x)
	}
	for x := -400.0; x <= 400.0; x += 0.37 {
		check(x)
	}
	check(0)
	if !math.IsNaN(FastExp(math.NaN())) {
		t.Error("FastExp(NaN) must be NaN")
	}
}

func TestFastExpDeterministicAcrossCalls(t *testing.T) {
	for _, x := range []float64{-2.5, -0.13, 0, 0.13, 2.5} {
		if FastExp(x) != FastExp(x) {
			t.Fatalf("FastExp(%v) not reproducible", x)
		}
	}
}
