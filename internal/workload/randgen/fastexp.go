package randgen

import "math"

// FastExp computes eˣ with a 64-entry power table and a cubic remainder
// polynomial — the per-request replacement for math.Exp in the log-normal
// jitter multiplier, where x = σ·Z stays within a few units of zero.
//
// Decompose x = n·(ln2/64) + r with |r| ≤ ln2/128, so
// eˣ = 2^(n/64)·eʳ = 2^(n>>6) · exp2Tab[n&63] · eʳ, and eʳ is a 3-term
// Taylor series whose truncation error is below 4e-11 relative. The
// combined relative error stays under 1e-9 across the clamped range —
// far inside the tolerance of any latency digest, and verified against
// math.Exp by TestFastExpAccuracy.
//
// Inputs outside ±512·ln2 (|x| ≳ 355, eˣ beyond ~1e±154) fall back to
// math.Exp so the function stays total; the jitter path never leaves
// |x| < 2.

// fastExpScale is 64/ln2 and fastExpLn2 is ln2/64, both reduced from the
// untyped (arbitrary-precision) math.Ln2 so each carries one rounding;
// |n| ≤ 2¹⁵ keeps the reduction drift below 3e-14 absolute in r.
const (
	fastExpScale = 64 / math.Ln2
	fastExpLn2   = math.Ln2 / 64
)

var exp2Tab [64]float64

func init() {
	for i := range exp2Tab {
		exp2Tab[i] = math.Exp2(float64(i) / 64)
	}
}

// FastExp returns eˣ.
func FastExp(x float64) float64 {
	if x < -354 || x > 354 || x != x {
		return math.Exp(x) // overflow/underflow/NaN territory: exactness over speed
	}
	// Each conversion pins one IEEE rounding (anti-FMA, as in the
	// polynomial below): fused `x*scale + 0.5` or `x - n*ln2_64` would
	// fork the bit-stream on fusing ISAs.
	n := int64(math.Floor(float64(x*fastExpScale) + 0.5))
	r := x - float64(float64(n)*fastExpLn2)
	// eʳ ≈ 1 + r + r²/2 + r³/6. Explicit float64 conversions pin each
	// step to one IEEE rounding so no platform may fuse them into FMAs:
	// FastExp's own arithmetic contributes no ISA dependence to the
	// bit-stream (stdlib transcendentals elsewhere keep the replay
	// guarantee per-platform).
	p := float64(r * (1.0 / 6))
	p = float64(r * (0.5 + p))
	p = float64(r * (1 + p))
	// 2^(n>>6): n>>6 floors and n&63 is non-negative, so the pair is a
	// correct Euclidean split for negative n too.
	e := uint64(1023+(n>>6)) << 52
	return math.Float64frombits(e) * exp2Tab[n&63] * (1 + p)
}
