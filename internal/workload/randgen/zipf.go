package randgen

import (
	"fmt"
	"math"
	"math/bits"
	randv2 "math/rand/v2"
)

// Zipf samples Zipf-distributed integers in [0, imax]: P(k) ∝ (v+k)^(-s),
// the same parameterisation as math/rand/v2's Zipf. Instead of
// rejection-inversion — two logs and a pow on every draw — the sampler
// precomputes a Walker/Vose alias table once per configuration, after which
// every draw is one bounded uniform, one compare and at most one table
// redirect: O(1) with no transcendentals in the loop.
//
// The table costs 16 bytes per key plus one math.Pow per key to build, so
// it is the right trade for the simulator's replayed key spaces (10⁵–10⁶
// keys redrawn millions of times). Key spaces past aliasMaxKeys would pay
// tens of megabytes for the table, so they fall back to the stdlib
// rejection-inversion sampler driven by the same stream — identical
// distribution, constant memory, slower per draw.
type Zipf struct {
	src *Stream
	n   uint64
	tab []aliasSlot

	fallback *randv2.Zipf // rejection-inversion for huge key spaces
}

// aliasSlot packs a slot's acceptance threshold and redirect target so a
// draw touches exactly one cache line: at table sizes past the L2 the slot
// lookup is the draw's dominant cost.
type aliasSlot struct {
	prob  float64
	alias uint32
}

// aliasMaxKeys bounds the alias table at 64 MB of slots (2²² × 16 B;
// construction transiently adds ~2× that in weights and worklists); it is
// a variable only so the fallback path stays testable at small sizes.
var aliasMaxKeys = uint64(1) << 22

// NewZipf builds a sampler drawing from src. It requires s > 1 and v ≥ 1,
// panicking on a bad configuration (the package's construct-time
// validation style). Any imax is accepted: key spaces past aliasMaxKeys —
// including the full uint64 range — take the constant-memory fallback.
func NewZipf(src *Stream, s, v float64, imax uint64) *Zipf {
	if s <= 1 || v < 1 {
		panic(fmt.Sprintf("randgen: bad Zipf parameters s=%v v=%v imax=%d", s, v, imax))
	}
	z := &Zipf{src: src, n: imax + 1}
	if imax >= aliasMaxKeys { // imax+1 may wrap at 2⁶⁴; compare pre-increment
		z.fallback = randv2.NewZipf(randv2.New(src), s, v, imax)
		return z
	}

	// Weights w_k = (v+k)^(-s), scaled so the mean slot weight is 1.
	w := make([]float64, z.n)
	var total float64
	for k := range w {
		w[k] = math.Pow(v+float64(k), -s)
		total += w[k]
	}
	scale := float64(z.n) / total

	// Vose's stable alias construction: pair each under-full slot with an
	// over-full one; every slot ends with a threshold and a redirect.
	z.tab = make([]aliasSlot, z.n)
	small := make([]uint32, 0, z.n)
	large := make([]uint32, 0, z.n)
	for k := range w {
		w[k] *= scale
		if w[k] < 1 {
			small = append(small, uint32(k))
		} else {
			large = append(large, uint32(k))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		z.tab[l] = aliasSlot{prob: w[l], alias: g}
		w[g] = (w[g] + w[l]) - 1
		if w[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Leftovers (either list) are exactly full up to rounding error.
	for _, k := range large {
		z.tab[k].prob = 1
	}
	for _, k := range small {
		z.tab[k].prob = 1
	}
	return z
}

// Uint64 returns the next Zipf variate: one stream draw, one 128-bit
// multiply, one slot load. The multiply's high word is the unbiased slot
// index (Lemire reduction) and its low word — the scaled draw's fractional
// part — doubles as the acceptance uniform. Given the index, that fraction
// is equidistributed with granularity n/2⁶⁴ (< 10⁻¹² here), a deviation
// orders of magnitude below the chi-square equivalence gate.
func (z *Zipf) Uint64() uint64 {
	if z.fallback != nil {
		return z.fallback.Uint64()
	}
	hi, lo := bits.Mul64(z.src.Uint64(), z.n)
	slot := z.tab[hi]
	if float64(lo>>11)*0x1p-53 < slot.prob {
		return hi
	}
	return uint64(slot.alias)
}
