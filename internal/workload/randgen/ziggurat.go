package randgen

import "math"

// Ziggurat samplers for the exponential and the standard normal — the two
// variates the workload layer draws per request (Poisson inter-arrival
// gaps, log-normal latency jitter). The ziggurat covers the density with a
// stack of equal-area horizontal strips; a draw picks a strip and a
// horizontal position, and almost always (≈98% of draws) accepts with one
// table lookup and one compare. The transcendental fallbacks (strip wedge,
// distribution tail) are exact, so the sampler produces the true
// distribution, not an approximation — the chi-square equivalence tests
// hold it to the stdlib samplers' own tolerance.
//
// Tables are built once at package init from the classic Marsaglia–Tsang
// constants: 256 strips for the exponential, 128 for the normal (matching
// the layer counts the stdlib ziggurats use).

const (
	// zigExpR is the right edge of the exponential base strip and zigExpV
	// the common strip area for e^{-x} with 256 strips.
	zigExpR = 7.69711747013104972
	zigExpV = 3.949659822581572e-3

	// zigNormR and zigNormV are the analogous constants for the one-sided
	// standard normal density e^{-x²/2} with 128 strips.
	zigNormR = 3.442619855899
	zigNormV = 9.91256303526217e-3
)

// expX[i] is strip i's right edge (expX[0] is the base strip's pseudo-width
// V/f(R), which folds the tail mass into the bottom strip); expY[i] is the
// density at expX[i]. Same layout for the normal tables.
var (
	expX  [257]float64
	expY  [257]float64
	normX [129]float64
	normY [129]float64
)

func init() {
	fe := func(x float64) float64 { return math.Exp(-x) }
	expX[0] = zigExpV / fe(zigExpR)
	expX[1] = zigExpR
	for i := 2; i < 256; i++ {
		// Each strip has area V: f(x_i) = f(x_{i-1}) + V/x_{i-1}.
		expX[i] = -math.Log(fe(expX[i-1]) + zigExpV/expX[i-1])
	}
	expX[256] = 0
	for i := range expX {
		expY[i] = fe(expX[i])
	}

	fn := func(x float64) float64 { return math.Exp(-0.5 * x * x) }
	normX[0] = zigNormV / fn(zigNormR)
	normX[1] = zigNormR
	for i := 2; i < 128; i++ {
		y := fn(normX[i-1]) + zigNormV/normX[i-1]
		normX[i] = math.Sqrt(-2 * math.Log(y))
	}
	normX[128] = 0
	for i := range normX {
		normY[i] = fn(normX[i])
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Stream) ExpFloat64() float64 {
	for {
		b := s.Uint64()
		i := b & 255                  // strip index: low 8 bits
		u := float64(b>>11) * 0x1p-53 // position: high 53 bits
		x := u * expX[i]
		if x < expX[i+1] {
			return x // interior of the strip below: accept
		}
		if i == 0 {
			// Tail beyond R: the exponential is memoryless, so the tail
			// is R plus a fresh draw.
			return zigExpR + s.ExpFloat64()
		}
		// Wedge between this strip's edge and the density curve. The
		// explicit conversion pins the product to one IEEE rounding so the
		// package's own arithmetic cannot be fused into an FMA and flip an
		// accept. (The math.Exp operand is stdlib territory: Go ships
		// per-arch implementations, so bit-identical replay is a
		// per-platform guarantee — the contract the determinism tests
		// gate — not a cross-ISA one.)
		if expY[i]+float64(s.Float64()*(expY[i+1]-expY[i])) < math.Exp(-x) {
			return x
		}
	}
}

// NormFloat64 returns a standard normal variate. The sign is applied by
// copying draw bit 7 into the float's sign bit — branchless, because a
// 50/50 unpredictable branch would cost more than the rest of the fast
// path combined.
func (s *Stream) NormFloat64() float64 {
	for {
		b := s.Uint64()
		i := b & 127                  // strip index: low 7 bits
		sign := (b & 128) << 56       // sign: bit 7, moved to the IEEE sign bit
		u := float64(b>>11) * 0x1p-53 // position: high 53 bits
		x := u * normX[i]
		if x < normX[i+1] {
			return math.Float64frombits(math.Float64bits(x) | sign)
		}
		if i == 0 {
			x = s.normTail()
			return math.Float64frombits(math.Float64bits(x) | sign)
		}
		// Wedge test; conversion pinned against FMA fusion as in the
		// exponential sampler.
		if normY[i]+float64(s.Float64()*(normY[i+1]-normY[i])) < math.Exp(-0.5*x*x) {
			return math.Float64frombits(math.Float64bits(x) | sign)
		}
	}
}

// normTail samples the normal tail beyond R by Marsaglia's method.
func (s *Stream) normTail() float64 {
	for {
		// 1-Float64 is uniform on (0, 1]; log(0) never happens.
		x := -math.Log(1-s.Float64()) / zigNormR
		y := -math.Log(1 - s.Float64())
		if y+y >= x*x {
			return zigNormR + x
		}
	}
}
