package randgen

import "testing"

func TestStreamDeterministicAndSeedSensitive(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d differs across identical seeds: %x vs %x", i, av, bv)
		}
	}
	c, d := New(7), New(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 7 and 8 collided on %d of 1000 draws", same)
	}
}

// The splittability contract: a stream's sequence is a pure function of its
// (seed, id) — draws from sibling streams, interleaved in any order, never
// perturb it. The cluster's engine equivalence rests on exactly this.
func TestSplitStreamsAreIndependent(t *testing.T) {
	const seed, draws = 42, 256
	want := make(map[uint64][]uint64)
	for id := uint64(0); id < 8; id++ {
		s := Split(seed, id)
		for i := 0; i < draws; i++ {
			want[id] = append(want[id], s.Uint64())
		}
	}
	// Re-derive the streams and interleave them in reverse id order with
	// uneven progress; each must reproduce its isolated sequence.
	streams := make(map[uint64]*Stream)
	got := make(map[uint64][]uint64)
	for id := uint64(0); id < 8; id++ {
		streams[id] = Split(seed, id)
	}
	for i := 0; i < draws; i++ {
		for id := int64(7); id >= 0; id-- {
			if int(id)%2 == 0 && i%3 == 0 {
				continue // stagger: even streams skip every third round
			}
			got[uint64(id)] = append(got[uint64(id)], streams[uint64(id)].Uint64())
		}
	}
	for id := uint64(0); id < 8; id++ {
		for i, v := range got[id] {
			if v != want[id][i] {
				t.Fatalf("stream %d draw %d = %x under interleaving, want %x", id, i, v, want[id][i])
			}
		}
	}
}

func TestSplitSeedSeparatesIDs(t *testing.T) {
	seen := make(map[uint64]uint64)
	for id := uint64(0); id < 10_000; id++ {
		s := SplitSeed(1, id)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SplitSeed(1, %d) == SplitSeed(1, %d) == %x", id, prev, s)
		}
		seen[s] = id
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("distinct seeds map id 0 to the same sub-seed")
	}
}

func TestBoundedDrawsStayInRangeAndCoverIt(t *testing.T) {
	s := New(3)
	var hit [7]int
	for i := 0; i < 10_000; i++ {
		n := s.IntN(7)
		if n < 0 || n >= 7 {
			t.Fatalf("IntN(7) = %d", n)
		}
		hit[n]++
	}
	for v, c := range hit {
		if c == 0 {
			t.Fatalf("IntN(7) never produced %d in 10k draws", v)
		}
	}
	for i := 0; i < 10_000; i++ {
		if v := s.Int64N(3); v < 0 || v >= 3 {
			t.Fatalf("Int64N(3) = %d", v)
		}
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
	}
	for _, f := range []func(){
		func() { s.IntN(0) },
		func() { s.Int64N(-1) },
		func() { s.Uint64N(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bounded draw with n <= 0 must panic")
				}
			}()
			f()
		}()
	}
}

func TestFloat64Uniformity(t *testing.T) {
	s := New(11)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; mean < 0.495 || mean > 0.505 {
		t.Fatalf("Float64 mean %.4f over %d draws, want ≈0.5", mean, n)
	}
}
