// Package randgen is the simulator's random-generation subsystem: a
// splittable counter-based PRNG plus constant-time samplers for the
// distributions the workload layer draws on every request (Zipf keys via a
// Walker/Vose alias table, exponential inter-arrival gaps and normal jitter
// via ziggurat tables, and a table-driven exp for log-normal multipliers).
//
// The package exists because profiles after the zero-allocation node work
// showed ~half of single-node wall clock going to workload *generation*:
// rejection-inversion Zipf (log/pow per draw), stdlib variate helpers behind
// interface indirection, and math.Exp on every jittered latency. Everything
// here is branch-light straight-line integer and float arithmetic with all
// tables built once up front.
//
// Streams are splittable: Split(seed, id) derives an independent
// deterministic stream for any (seed, id) pair, so every node, driver and
// background subsystem owns its own sequence instead of sharing one
// *rand.Rand. A stream's draw sequence is a pure function of its (seed, id)
// — consuming other streams, in any order, never perturbs it. That property
// is what lets the cluster's parallel engine replay bit-identically against
// the sequential one.
package randgen

import "math/bits"

// golden is 2⁶⁴/φ, the splitmix64 increment; adding it walks a
// low-discrepancy sequence through the 64-bit state space.
const golden = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 output function (Stafford variant 13): a
// bijective avalanche mix, so distinct counters give statistically
// independent outputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mixGamma derives a stream increment from z: well-mixed, odd (so the
// counter walks the full 2⁶⁴ period), and with enough bit transitions that
// consecutive counters differ in many positions — the SplittableRandom
// recipe.
func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	z = (z ^ (z >> 33)) | 1
	if bits.OnesCount64(z^(z>>1)) < 24 {
		z ^= 0xaaaaaaaaaaaaaaaa
	}
	return z
}

// SplitSeed derives the sub-seed for stream id of seed: a pure function,
// so any layer can re-derive the same stream without plumbing state. The
// cluster uses it for per-node kernel seeds; nodes use it again for
// per-subsystem streams.
func SplitSeed(seed, id uint64) uint64 {
	return mix64(seed ^ mix64((id+1)*golden))
}

// Stream is a splitmix64 counter-based PRNG: state walks by a fixed odd
// gamma and each output is one avalanche mix of the counter. Draws cost a
// multiply-xor-shift handful — no memory traffic — and the whole state is
// two words, so a Stream is cheap enough to give every subsystem its own.
//
// Stream is not safe for concurrent use; the simulator's discipline is one
// stream per node-local subsystem, each driven by exactly one goroutine.
type Stream struct {
	state uint64
	gamma uint64
}

// New returns the root stream of seed.
func New(seed uint64) *Stream {
	h := mix64(seed)
	return &Stream{state: h, gamma: mixGamma(h ^ golden)}
}

// Split returns stream id of seed: independent of the root stream and of
// every sibling — Split(seed, i) and Split(seed, j≠i) never share state.
func Split(seed, id uint64) *Stream {
	return New(SplitSeed(seed, id))
}

// Uint64 returns the next 64 uniform bits. It also satisfies
// math/rand/v2's Source interface, so a Stream can feed stdlib samplers
// (the reference implementations the equivalence tests compare against).
func (s *Stream) Uint64() uint64 {
	s.state += s.gamma
	return mix64(s.state)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1p-53
}

// Uint64N returns a uniform integer in [0, n) by Lemire's nearly
// divisionless method — one multiply in the common case, no modulo bias.
func (s *Stream) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic("randgen: Uint64N with n == 0")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Int64N returns a uniform integer in [0, n); it panics if n <= 0
// (math/rand/v2 semantics).
func (s *Stream) Int64N(n int64) int64 {
	if n <= 0 {
		panic("randgen: Int64N with n <= 0")
	}
	return int64(s.Uint64N(uint64(n)))
}

// IntN returns a uniform integer in [0, n); it panics if n <= 0.
func (s *Stream) IntN(n int) int {
	if n <= 0 {
		panic("randgen: IntN with n <= 0")
	}
	return int(s.Uint64N(uint64(n)))
}
