package workload

import (
	"strings"
	"testing"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// validScenarioDoc is the smallest well-formed spec document; the error
// table below mutates one field at a time off this baseline.
const validScenarioDoc = `{
  "name": "t",
  "phases": [
    {"name": "p", "duration": "50ms",
     "classes": [{"name": "c", "rate": 1000, "keys": 100, "reads": 0.5, "value_bytes": 512}]}
  ]
}`

// TestScenarioJSONErrors: malformed spec documents — unknown event kinds,
// malformed duration strings, out-of-range resilience and SLO knobs — come
// back as a clear field-named error, never a panic and never a half-parsed
// scenario.
func TestScenarioJSONErrors(t *testing.T) {
	phase := `{"name": "p", "duration": "50ms", "classes": [{"name": "c", "rate": 1000, "keys": 100, "reads": 0.5, "value_bytes": 512}]}`
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", `{"name": `, "scenario JSON"},
		{"unknown event kind",
			`{"name":"t","phases":[` + phase + `],"events":[{"at":"1ms","kind":"explode"}]}`,
			"unknown event kind"},
		{"malformed phase duration",
			`{"name":"t","phases":[{"name":"p","duration":"25 parsecs","classes":[{"name":"c","rate":1000,"keys":100,"reads":0.5,"value_bytes":512}]}]}`,
			`bad duration "25 parsecs"`},
		{"duration of the wrong type",
			`{"name":"t","phases":[{"name":"p","duration":true,"classes":[{"name":"c","rate":1000,"keys":100,"reads":0.5,"value_bytes":512}]}]}`,
			"duration must be a string"},
		{"malformed event duration",
			`{"name":"t","phases":[` + phase + `],"events":[{"at":"1ms","kind":"fault-window","node":0,"error_rate":0.5,"duration":"soon"}]}`,
			`bad duration "soon"`},
		{"degrade factor at native speed",
			`{"name":"t","phases":[` + phase + `],"events":[{"at":"1ms","kind":"degrade-node","node":0,"factor":1}]}`,
			"Factor must be > 1"},
		{"fault window without a rate",
			`{"name":"t","phases":[` + phase + `],"events":[{"at":"1ms","kind":"fault-window","node":0,"duration":"5ms"}]}`,
			"ErrorRate must be in (0, 1]"},
		{"factor off a degrade",
			`{"name":"t","phases":[` + phase + `],"events":[{"at":"1ms","kind":"heal-node","node":0,"factor":2}]}`,
			"Factor applies only to degrade-node"},
		{"resilience jitter out of range",
			`{"name":"t","phases":[{"name":"p","duration":"50ms","classes":[{"name":"c","rate":1000,"keys":100,"reads":0.5,"value_bytes":512,"resilience":{"timeout":"1ms","retries":1,"backoff":"100us","jitter":1.5}}]}]}`,
			"Jitter must be in [0, 1)"},
		{"retries without backoff",
			`{"name":"t","phases":[{"name":"p","duration":"50ms","classes":[{"name":"c","rate":1000,"keys":100,"reads":0.5,"value_bytes":512,"resilience":{"timeout":"1ms","retries":2}}]}]}`,
			"Backoff"},
		{"policies without an slo",
			`{"name":"t","phases":[` + phase + `],"policies":{"shed":{"step":0.2,"max":0.8}}}`,
			"Policies requires an SLO"},
		{"slo without a window",
			`{"name":"t","phases":[` + phase + `],"slo":{"p99":"200us"}}`,
			"Window must be > 0"},
		{"shed step above its cap",
			`{"name":"t","phases":[` + phase + `],"slo":{"p99":"200us","window":"5ms"},"policies":{"shed":{"step":0.9,"max":0.5}}}`,
			"Step must be <= Max"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(tc.doc))
			if err == nil {
				t.Fatal("malformed document accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	if _, err := ParseScenario([]byte(validScenarioDoc)); err != nil {
		t.Fatalf("baseline document rejected: %v", err)
	}
}

// TestScenarioJSONResilienceRoundTrip: the resilience surface — class
// policies, soft-fault events (node- and shard-targeted) and the slo /
// policies blocks — survives marshal → parse exactly.
func TestScenarioJSONResilienceRoundTrip(t *testing.T) {
	shard := 3
	s := multiClassScenario()
	s.Phases[0].Classes[0].Resilience = &Resilience{
		Timeout: 200 * simtime.Microsecond,
		Retries: 2,
		Backoff: 50 * simtime.Microsecond,
		Jitter:  0.25,
		Hedge:   150 * simtime.Microsecond,
	}
	s.Events = []Event{
		{At: 50 * simtime.Millisecond, Node: 1, Kind: EventDegradeNode, Factor: 4},
		{At: 150 * simtime.Millisecond, Node: 1, Kind: EventHealNode},
		{At: 60 * simtime.Millisecond, Node: 2, Kind: EventFaultWindow, ErrorRate: 0.2, Duration: 30 * simtime.Millisecond},
		{At: 80 * simtime.Millisecond, Node: -1, Kind: EventFaultWindow, ErrorRate: 0.05, Duration: 10 * simtime.Millisecond, Shard: &shard},
	}
	s.SLO = &SLO{P99: 300 * simtime.Microsecond, Window: 10 * simtime.Millisecond, MinSamples: 32}
	s.Policies = &Policies{Shed: &ShedPolicy{Step: 0.2, Max: 0.8}}

	data, err := MarshalScenarioJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseScenario(data)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, data)
	}
	if got.Phases[0].Classes[0].Resilience == nil || *got.Phases[0].Classes[0].Resilience != *s.Phases[0].Classes[0].Resilience {
		t.Fatalf("resilience policy diverged: %+v", got.Phases[0].Classes[0].Resilience)
	}
	if got.SLO == nil || *got.SLO != *s.SLO {
		t.Fatalf("slo diverged: %+v", got.SLO)
	}
	if got.Policies == nil || got.Policies.Shed == nil || *got.Policies.Shed != *s.Policies.Shed {
		t.Fatalf("policies diverged: %+v", got.Policies)
	}
	if got.Events[3].Shard == nil || *got.Events[3].Shard != shard {
		t.Fatalf("shard target diverged: %+v", got.Events[3])
	}
	// Shard pointers are deep-copied, so DeepEqual must hold on the whole.
	data2, err := MarshalScenarioJSON(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("second marshal diverged:\nfirst:  %s\nsecond: %s", data, data2)
	}
}

// TestScenarioScaledResilienceDomains pins the Scaled domain split: the
// timeline-domain fields (event windows, the SLO sampling window and its
// samples floor) scale, the latency-domain fields (client timeouts,
// backoffs, hedges, the p99 target) do not — service latencies are
// scale-invariant.
func TestScenarioScaledResilienceDomains(t *testing.T) {
	s := multiClassScenario()
	res := &Resilience{Timeout: 200 * simtime.Microsecond, Retries: 2, Backoff: 50 * simtime.Microsecond, Hedge: 100 * simtime.Microsecond}
	s.Phases[0].Classes[0].Resilience = res
	s.Events = []Event{
		{At: 100 * simtime.Millisecond, Node: 0, Kind: EventFaultWindow, ErrorRate: 0.5, Duration: 40 * simtime.Millisecond},
	}
	s.SLO = &SLO{P99: 300 * simtime.Microsecond, Window: 10 * simtime.Millisecond, MinSamples: 32}
	s.Policies = &Policies{Shed: &ShedPolicy{Step: 0.2, Max: 0.8}}

	half := s.Scaled(0.5)
	if half.Events[0].Duration != 20*simtime.Millisecond {
		t.Errorf("fault window %v, want 20ms", half.Events[0].Duration)
	}
	if half.SLO.Window != 5*simtime.Millisecond {
		t.Errorf("slo window %v, want 5ms", half.SLO.Window)
	}
	if half.SLO.MinSamples != 16 {
		t.Errorf("slo samples floor %d, want 16", half.SLO.MinSamples)
	}
	if half.SLO.P99 != s.SLO.P99 {
		t.Errorf("scaling changed the p99 target to %v", half.SLO.P99)
	}
	if got := half.Phases[0].Classes[0].Resilience; *got != *res {
		t.Errorf("scaling changed the client policy: %+v", got)
	}
	if s.SLO.MinSamples != 32 || s.Events[0].Duration != 40*simtime.Millisecond {
		t.Error("Scaled mutated its receiver")
	}
	// A tiny scale keeps the floor of one sample rather than zero (which
	// would mean "default 16" and silently re-enable the controller).
	if tiny := s.Scaled(0.001); tiny.SLO.MinSamples != 1 {
		t.Errorf("tiny samples floor %d, want 1", tiny.SLO.MinSamples)
	}
	// The flat-load bypass must stay off for any resilience surface.
	flatBase := Scenario{Name: "f", Seed: 1, Phases: []Phase{{Name: "p", Requests: 100,
		Classes: []TrafficClass{{Name: "c", Rate: 1000, Keys: 100, ReadFraction: 0.5, ValueBytes: 512}}}}}
	if _, ok := flatBase.FlatLoad(); !ok {
		t.Fatal("flat baseline did not lift")
	}
	withRes := flatBase
	withRes.Phases = []Phase{flatBase.Phases[0]}
	withRes.Phases[0].Classes = []TrafficClass{flatBase.Phases[0].Classes[0]}
	withRes.Phases[0].Classes[0].Resilience = res
	if _, ok := withRes.FlatLoad(); ok {
		t.Error("flat bypass engaged despite a resilience policy")
	}
	withSLO := flatBase
	withSLO.SLO = &SLO{P99: simtime.Millisecond, Window: simtime.Millisecond}
	if _, ok := withSLO.FlatLoad(); ok {
		t.Error("flat bypass engaged despite an SLO")
	}
}

// TestScenarioJSONPolicyErrors: every malformed policies block is rejected
// with an error naming the offending field.
func TestScenarioJSONPolicyErrors(t *testing.T) {
	phase := `{"name": "p", "duration": "50ms", "classes": [{"name": "c", "rate": 1000, "keys": 100, "reads": 0.5, "value_bytes": 512}]}`
	head := `{"name":"t","phases":[` + phase + `],"slo":{"p99":"200us","window":"5ms"},"policies":`
	cases := []struct {
		name string
		pol  string
		want string
	}{
		{"empty policies block", `{}`,
			"needs at least one policy"},
		{"batch step of zero", `{"batch":{"step":0}}`,
			"batch policy Step must be in (0, 1]"},
		{"batch step above one", `{"batch":{"step":1.5}}`,
			"batch policy Step must be in (0, 1]"},
		{"batch min at one", `{"batch":{"step":0.25,"min":1}}`,
			"batch policy Min must be in [0, 1)"},
		{"allocator factor of zero", `{"allocator":{"conservative":0}}`,
			"allocator policy Conservative must be > 0"},
		{"negative allocator factor", `{"allocator":{"conservative":-1}}`,
			"allocator policy Conservative must be > 0"},
		{"watermark step of zero", `{"watermark":{"step":0,"max":2}}`,
			"watermark policy Step must be > 0"},
		{"watermark cap below one step", `{"watermark":{"step":0.5,"max":1.2}}`,
			"watermark policy Max must be >= 1+Step"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(head + tc.pol + `}`))
			if err == nil {
				t.Fatal("malformed policies block accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestScenarioJSONPoliciesRoundTrip: a policies block declaring all four
// control-plane actions survives marshal → parse exactly.
func TestScenarioJSONPoliciesRoundTrip(t *testing.T) {
	s := multiClassScenario()
	s.SLO = &SLO{P99: 300 * simtime.Microsecond, Window: 10 * simtime.Millisecond, MinSamples: 32}
	s.Policies = &Policies{
		Shed:      &ShedPolicy{Step: 0.2, Max: 0.8},
		Batch:     &BatchPolicy{Step: 0.25, Min: 0.25},
		Allocator: &AllocatorPolicy{Conservative: 1.0},
		Watermark: &WatermarkPolicy{Step: 0.5, Max: 3},
	}
	data, err := MarshalScenarioJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseScenario(data)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, data)
	}
	p, q := s.Policies, got.Policies
	if q == nil || q.Shed == nil || q.Batch == nil || q.Allocator == nil || q.Watermark == nil {
		t.Fatalf("policies diverged: %+v", q)
	}
	if *q.Shed != *p.Shed || *q.Batch != *p.Batch || *q.Allocator != *p.Allocator || *q.Watermark != *p.Watermark {
		t.Fatalf("policies diverged:\ngot  %+v %+v %+v %+v\nwant %+v %+v %+v %+v",
			*q.Shed, *q.Batch, *q.Allocator, *q.Watermark,
			*p.Shed, *p.Batch, *p.Allocator, *p.Watermark)
	}
	data2, err := MarshalScenarioJSON(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("second marshal diverged:\nfirst:  %s\nsecond: %s", data, data2)
	}
}

// TestScenarioScaledPolicies pins the control-plane domain split: the SLO
// window and samples floor scale with the timeline, while the p99 target
// (latency domain) and every policy field (dimensionless probabilities,
// fractions and factors) stay untouched — and the scaled copy's policies
// are deep copies, not aliases into the receiver.
func TestScenarioScaledPolicies(t *testing.T) {
	s := multiClassScenario()
	s.SLO = &SLO{P99: 300 * simtime.Microsecond, Window: 10 * simtime.Millisecond, MinSamples: 32}
	s.Policies = &Policies{
		Shed:      &ShedPolicy{Step: 0.2, Max: 0.8},
		Batch:     &BatchPolicy{Step: 0.25, Min: 0.25},
		Allocator: &AllocatorPolicy{Conservative: 1.0},
		Watermark: &WatermarkPolicy{Step: 0.5, Max: 3},
	}
	half := s.Scaled(0.5)
	if half.SLO.Window != 5*simtime.Millisecond || half.SLO.MinSamples != 16 {
		t.Errorf("slo window/floor did not scale: %+v", half.SLO)
	}
	if half.SLO.P99 != s.SLO.P99 {
		t.Errorf("scaling changed the p99 target to %v", half.SLO.P99)
	}
	p, q := s.Policies, half.Policies
	if *q.Shed != *p.Shed || *q.Batch != *p.Batch || *q.Allocator != *p.Allocator || *q.Watermark != *p.Watermark {
		t.Errorf("scaling changed dimensionless policy fields:\ngot  %+v %+v %+v %+v",
			*q.Shed, *q.Batch, *q.Allocator, *q.Watermark)
	}
	if q.Shed == p.Shed || q.Batch == p.Batch || q.Allocator == p.Allocator || q.Watermark == p.Watermark {
		t.Error("scaled policies alias the receiver's")
	}
	q.Batch.Step = 0.9
	q.Watermark.Max = 7
	if p.Batch.Step != 0.25 || p.Watermark.Max != 3 {
		t.Error("mutating the scaled copy reached the receiver")
	}
}
