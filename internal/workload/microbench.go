// Package workload implements the paper's workload generators (§5.1): the
// micro-benchmark that streams fixed-size malloc+write requests, and the
// anonymous-page and file-cache pressure generators that reproduce the two
// memory-pressure regimes of Figure 3.
package workload

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
	"github.com/hermes-sim/hermes/internal/workload/randgen"
)

// Jitter applies the cost model's measurement noise and the ambient
// reclaim slowdown to a latency: multiplicative log-normal spread, rare
// scheduling spikes, and the uniform 1+AmbientFactor inflation while
// reclaim is active. It is what gives simulated CDFs the smooth support of
// the measured ones instead of a handful of discrete steps.
func Jitter(k *kernel.Kernel, d simtime.Duration) simtime.Duration {
	return jitter(k, d, true)
}

// JitterRequest is Jitter for one allocation request: requests served
// entirely from pre-mapped memory (Hermes reservations, allocator caches of
// resident memory) complete in user space without entering the kernel, so
// the ambient reclaim slowdown does not apply to them — the mechanism
// behind Hermes' latency staying near its dedicated-system level even under
// pressure (Figs 7b, 8b).
func JitterRequest(k *kernel.Kernel, d simtime.Duration, preMapped bool) simtime.Duration {
	return jitter(k, d, !preMapped)
}

func jitter(k *kernel.Kernel, d simtime.Duration, ambient bool) simtime.Duration {
	costs := k.Costs()
	rng := k.RNG()
	out := d
	if ambient {
		out = simtime.Duration(float64(out) * (1 + k.AmbientFactor(k.Scheduler().Now())))
	}
	if costs.JitterSigma > 0 {
		// Log-normal spread on the kernel's jitter stream: ziggurat
		// normal and table-driven exp — the per-request path carries no
		// math.Exp/NormFloat64 calls (see internal/workload/randgen).
		out = simtime.Duration(float64(out) * randgen.FastExp(rng.NormFloat64()*costs.JitterSigma))
	}
	if costs.JitterSpikeProb > 0 && rng.Float64() < costs.JitterSpikeProb {
		out += costs.JitterSpikeCost
	}
	if out < 0 {
		out = 0
	}
	return out
}

// MicroBenchConfig describes one micro-benchmark run: fixed-size requests
// until TotalBytes have been requested (§5.2 uses 1 KB and 256 KB requests
// to 1 GB).
type MicroBenchConfig struct {
	RequestSize int64
	TotalBytes  int64
	// FreeBlocks controls whether the benchmark frees what it allocates;
	// the paper's micro-benchmark only allocates.
	FreeBlocks bool
}

func (c MicroBenchConfig) validate() error {
	if c.RequestSize <= 0 || c.TotalBytes < c.RequestSize {
		return fmt.Errorf("workload: bad micro-benchmark config %+v", c)
	}
	return nil
}

// RunMicroBench drives the allocator with the configured request stream,
// recording each request's malloc+write latency (the paper's "memory
// allocation latency") into rec. The scheduler advances by each request's
// latency, so background work (management thread, kswapd, pressure
// generators) interleaves realistically.
func RunMicroBench(k *kernel.Kernel, a alloc.Allocator, cfg MicroBenchConfig, rec *stats.Recorder) {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	s := k.Scheduler()
	var requested int64
	for requested < cfg.TotalBytes {
		b, mallocCost := a.Malloc(s.Now(), cfg.RequestSize)
		touchCost := a.Touch(s.Now().Add(mallocCost), b)
		lat := JitterRequest(k, mallocCost+touchCost, b.PreMapped)
		rec.Record(lat)
		s.Advance(lat)
		if cfg.FreeBlocks {
			s.Advance(a.Free(s.Now(), b))
		}
		requested += cfg.RequestSize
	}
}
