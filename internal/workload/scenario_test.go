package workload

import (
	"reflect"
	"strings"
	"testing"

	"github.com/hermes-sim/hermes/internal/simtime"
)

func scenarioTestLoad() LoadConfig {
	cfg := DefaultLoadConfig()
	cfg.Requests = 5_000
	cfg.Keys = 10_000
	return cfg
}

// TestScenarioSinglePhaseMatchesLoadDriver pins the adapter property
// Cluster.Run rests on: a single-phase, single-class scenario lifted from a
// LoadConfig emits the bit-identical request sequence to a plain
// LoadDriver — on both generators.
func TestScenarioSinglePhaseMatchesLoadDriver(t *testing.T) {
	for _, gen := range []Generator{GenFast, GenLegacy} {
		t.Run(string(gen), func(t *testing.T) {
			cfg := scenarioTestLoad()
			cfg.Generator = gen
			ld := NewLoadDriver(cfg)
			sd := NewScenarioDriver(ScenarioFromLoad(cfg))
			for i := 0; ; i++ {
				want, wok := ld.Next()
				got, gok := sd.Next()
				if wok != gok {
					t.Fatalf("request %d: driver ok=%v scenario ok=%v", i, wok, gok)
				}
				if !wok {
					break
				}
				if got.Request != want {
					t.Fatalf("request %d diverged:\nload:     %+v\nscenario: %+v", i, want, got.Request)
				}
				if got.Phase != 0 || got.Class != 0 {
					t.Fatalf("request %d annotated (phase=%d class=%d), want (0,0)", i, got.Phase, got.Class)
				}
			}
			if sd.Emitted() != cfg.Requests {
				t.Fatalf("scenario emitted %d, want %d", sd.Emitted(), cfg.Requests)
			}
		})
	}
}

func multiClassScenario() Scenario {
	return Scenario{
		Name: "multi",
		Seed: 7,
		Phases: []Phase{
			{
				Name:     "warm",
				Duration: 200 * simtime.Millisecond,
				Classes: []TrafficClass{
					{Name: "kv", Rate: 20_000, Keys: 10_000, ZipfS: 1.1, ReadFraction: 0.5, ValueBytes: 512},
					{Name: "scan", Rate: 5_000, Keys: 2_000, ReadFraction: 0.9, ValueBytes: 4096},
				},
			},
			{
				Name:     "peak",
				Duration: 300 * simtime.Millisecond,
				Shape:    RateShape{Kind: ShapeRamp, From: 1, To: 4},
				Classes: []TrafficClass{
					{Name: "kv", Rate: 20_000, Keys: 10_000, ZipfS: 1.1, ReadFraction: 0.5, ValueBytes: 512},
					{Name: "scan", Rate: 5_000, Keys: 2_000, ReadFraction: 0.9, ValueBytes: 4096},
				},
			},
			{
				Name:     "drain",
				Requests: 2_000,
				Classes: []TrafficClass{
					{Name: "kv", Rate: 10_000, Keys: 10_000, ReadFraction: 1, ValueBytes: 512},
				},
			},
		},
	}
}

// TestScenarioPhaseSequencing checks the merged stream's invariants:
// arrivals are non-decreasing, every request lands inside its phase's
// bounds, duration-bounded phases end at their declared boundary, and
// request-bounded phases emit exactly their budget.
func TestScenarioPhaseSequencing(t *testing.T) {
	d := NewScenarioDriver(multiClassScenario())
	var last simtime.Time
	counts := map[int]int64{}
	classes := map[[2]int]int64{}
	for {
		req, ok := d.Next()
		if !ok {
			break
		}
		if req.At.Before(last) && counts[req.Phase] > 0 {
			// Arrivals within a phase are merged in time order; a new
			// phase may restart at its boundary, never earlier.
			t.Fatalf("arrival %v before predecessor %v in phase %d", req.At, last, req.Phase)
		}
		last = req.At
		counts[req.Phase]++
		classes[[2]int{req.Phase, req.Class}]++
	}
	bounds := d.Bounds()
	if len(bounds) != 3 {
		t.Fatalf("got %d phase bounds, want 3", len(bounds))
	}
	if bounds[0].Start != 0 || bounds[0].End != simtime.Time(200*simtime.Millisecond) {
		t.Errorf("phase 0 bounds [%v, %v], want [0, 200ms]", bounds[0].Start, bounds[0].End)
	}
	if bounds[1].Start != bounds[0].End {
		t.Errorf("phase 1 starts at %v, want the phase 0 boundary %v", bounds[1].Start, bounds[0].End)
	}
	if counts[2] != 2_000 {
		t.Errorf("request-bounded phase emitted %d, want 2000", counts[2])
	}
	if bounds[2].Requests != 2_000 {
		t.Errorf("phase 2 bound records %d requests, want 2000", bounds[2].Requests)
	}
	for pi := 0; pi < 2; pi++ {
		for ci := 0; ci < 2; ci++ {
			if classes[[2]int{pi, ci}] == 0 {
				t.Errorf("phase %d class %d emitted nothing", pi, ci)
			}
		}
	}
}

// TestScenarioBudgetClosesDurationPhase: when a phase has both bounds and
// the request budget wins, the sealed End is the last arrival — not the
// declared duration — so bounds never overlap the next phase.
func TestScenarioBudgetClosesDurationPhase(t *testing.T) {
	s := Scenario{
		Name: "both", Seed: 2,
		Phases: []Phase{
			{
				Name: "capped", Duration: 10 * simtime.Second, Requests: 50,
				Classes: []TrafficClass{{Name: "c", Rate: 10_000, Keys: 100, ReadFraction: 0.5, ValueBytes: 64}},
			},
			{
				Name: "next", Requests: 10,
				Classes: []TrafficClass{{Name: "c", Rate: 10_000, Keys: 100, ReadFraction: 0.5, ValueBytes: 64}},
			},
		},
	}
	d := NewScenarioDriver(s)
	var last simtime.Time
	for {
		req, ok := d.Next()
		if !ok {
			break
		}
		if req.Phase == 0 {
			last = req.At
		}
	}
	bounds := d.Bounds()
	if bounds[0].Requests != 50 {
		t.Fatalf("capped phase emitted %d, want 50", bounds[0].Requests)
	}
	if bounds[0].End != last {
		t.Errorf("capped phase End %v, want last arrival %v", bounds[0].End, last)
	}
	if bounds[0].End >= simtime.Time(10*simtime.Second) {
		t.Errorf("capped phase End %v reports the unused declared duration", bounds[0].End)
	}
	if bounds[1].Start != bounds[0].End {
		t.Errorf("next phase starts at %v, want the capped phase's End %v", bounds[1].Start, bounds[0].End)
	}
}

// TestScenarioReplay pins determinism at the driver level: two drivers over
// the identical scenario emit the identical stream.
func TestScenarioReplay(t *testing.T) {
	a := NewScenarioDriver(multiClassScenario())
	b := NewScenarioDriver(multiClassScenario())
	for i := 0; ; i++ {
		ra, oka := a.Next()
		rb, okb := b.Next()
		if oka != okb || ra != rb {
			t.Fatalf("replay diverged at request %d: %+v vs %+v", i, ra, rb)
		}
		if !oka {
			break
		}
	}
	if !reflect.DeepEqual(a.Bounds(), b.Bounds()) {
		t.Fatalf("bounds diverged:\n%+v\n%+v", a.Bounds(), b.Bounds())
	}
}

// TestScenarioClassStreamIndependence: coexisting classes draw from
// distinct streams — the key sequences of two same-shaped classes must
// differ, and a class's own sequence must not depend on its siblings.
func TestScenarioClassStreamIndependence(t *testing.T) {
	tc := TrafficClass{Name: "a", Rate: 10_000, Keys: 1 << 30, ReadFraction: 0.5, ValueBytes: 64}
	two := Scenario{
		Name: "two", Seed: 3,
		Phases: []Phase{{Name: "p", Requests: 400, Classes: []TrafficClass{tc, {Name: "b", Rate: 10_000, Keys: 1 << 30, ReadFraction: 0.5, ValueBytes: 64}}}},
	}
	keys := map[int][]int64{}
	d := NewScenarioDriver(two)
	for {
		req, ok := d.Next()
		if !ok {
			break
		}
		keys[req.Class] = append(keys[req.Class], req.Key)
	}
	if len(keys[0]) == 0 || len(keys[1]) == 0 {
		t.Fatal("a class emitted nothing")
	}
	n := len(keys[0])
	if len(keys[1]) < n {
		n = len(keys[1])
	}
	same := true
	for i := 0; i < n; i++ {
		if keys[0][i] != keys[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two classes drew the identical key sequence — shared stream")
	}

	// Class a alone must draw the same keys it drew next to class b.
	solo := two
	solo.Phases = []Phase{{Name: "p", Requests: int64(len(keys[0])), Classes: []TrafficClass{tc}}}
	ds := NewScenarioDriver(solo)
	for i := 0; ; i++ {
		req, ok := ds.Next()
		if !ok {
			break
		}
		if req.Key != keys[0][i] {
			t.Fatalf("class a key %d = %d solo but %d next to class b — streams not independent", i, req.Key, keys[0][i])
		}
	}
}

// TestRateShapes sanity-checks the curves by comparing arrival mass across
// phase halves/windows.
func TestRateShapes(t *testing.T) {
	count := func(shape RateShape, from, to simtime.Duration) int {
		s := Scenario{
			Name: "shape", Seed: 5,
			Phases: []Phase{{
				Name: "p", Duration: 1 * simtime.Second, Shape: shape,
				Classes: []TrafficClass{{Name: "c", Rate: 20_000, Keys: 1000, ReadFraction: 0.5, ValueBytes: 64}},
			}},
		}
		d := NewScenarioDriver(s)
		n := 0
		for {
			req, ok := d.Next()
			if !ok {
				break
			}
			if rel := simtime.Duration(req.At); rel >= from && rel < to {
				n++
			}
		}
		return n
	}
	sec := 1 * simtime.Second
	// Ramp 1→9: the second half must carry far more arrivals.
	lo := count(RateShape{Kind: ShapeRamp, From: 1, To: 9}, 0, sec/2)
	hi := count(RateShape{Kind: ShapeRamp, From: 1, To: 9}, sec/2, sec)
	if hi < lo*2 {
		t.Errorf("ramp 1→9: second half has %d arrivals vs first half %d, want >2x", hi, lo)
	}
	// Spike 10x in [400ms, 500ms): that window must beat its neighbour.
	spike := RateShape{Kind: ShapeSpike, Factor: 10, At: 400 * simtime.Millisecond, Width: 100 * simtime.Millisecond}
	in := count(spike, 400*simtime.Millisecond, 500*simtime.Millisecond)
	out := count(spike, 300*simtime.Millisecond, 400*simtime.Millisecond)
	if in < out*4 {
		t.Errorf("spike 10x: window has %d arrivals vs neighbour %d, want >4x", in, out)
	}
	// Diurnal: the rising half-period outweighs the falling one.
	di := RateShape{Kind: ShapeDiurnal, Period: 1 * simtime.Second, Amplitude: 0.8}
	up := count(di, 0, sec/2)
	down := count(di, sec/2, sec)
	if up <= down {
		t.Errorf("diurnal: rising half has %d arrivals vs falling %d, want more", up, down)
	}
}

// TestScenarioValidateMessages: violations locate themselves by phase,
// class and event index.
func TestScenarioValidateMessages(t *testing.T) {
	base := multiClassScenario()
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"no phases", func(s *Scenario) { s.Phases = nil }, "at least one phase"},
		{"unbounded phase", func(s *Scenario) { s.Phases[1].Duration = 0; s.Phases[1].Requests = 0 }, "phase 1"},
		{"bad class rate", func(s *Scenario) { s.Phases[1].Classes[1].Rate = -1 }, "class 1"},
		{"bad shape", func(s *Scenario) { s.Phases[0].Shape = RateShape{Kind: "sawtooth"} }, "unknown shape kind"},
		{"ramp needs duration", func(s *Scenario) {
			s.Phases[2].Shape = RateShape{Kind: ShapeRamp, From: 1, To: 2}
		}, "ramp shape needs a phase Duration"},
		{"bad event", func(s *Scenario) { s.Events = []Event{{At: -1, Kind: EventPressureStop}} }, "event 0"},
		{"bad event kind", func(s *Scenario) { s.Events = []Event{{Kind: "explode"}} }, "unknown event kind"},
		{"squeeze needs bytes", func(s *Scenario) { s.Events = []Event{{Kind: EventSqueezeStart}} }, "Bytes must be > 0"},
		{"kill needs a node", func(s *Scenario) { s.Events = []Event{{Kind: EventKillNode, Node: -1}} }, "kill-node needs an explicit Node index"},
		{"bad kill policy", func(s *Scenario) {
			s.Events = []Event{{Kind: EventKillNode, Node: 0, Policy: "panic"}}
		}, "kill-node Policy must be"},
		{"restore needs a node", func(s *Scenario) { s.Events = []Event{{Kind: EventRestoreNode, Node: -1}} }, "restore-node needs an explicit Node index"},
		{"policy off a kill", func(s *Scenario) {
			s.Events = []Event{{Kind: EventPressureStop, Node: -1, Policy: KillDrop}}
		}, "Policy applies only to kill-node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.Phases = append([]Phase(nil), base.Phases...)
			for i := range s.Phases {
				s.Phases[i].Classes = append([]TrafficClass(nil), base.Phases[i].Classes...)
			}
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted a malformed scenario")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base scenario rejected: %v", err)
	}
}

// TestScenarioJSONRoundTrip: marshal → parse reproduces the scenario.
func TestScenarioJSONRoundTrip(t *testing.T) {
	s := multiClassScenario()
	s.Events = []Event{
		{At: 100 * simtime.Millisecond, Node: -1, Kind: EventPressureStart},
		{At: 150 * simtime.Millisecond, Node: 1, Kind: EventSqueezeStart, Bytes: 64 << 20},
		// Not MB-aligned: must survive the MB-grained wire format exactly.
		{At: 200 * simtime.Millisecond, Node: 0, Kind: EventSqueezeStart, Bytes: 512 << 10},
		{At: 400 * simtime.Millisecond, Node: -1, Kind: EventPressureStop},
		// Topology events: the drop policy must ride the wire, and an
		// elided policy must come back as the zero value (KillDrain applies
		// at fire time, not in the document).
		{At: 450 * simtime.Millisecond, Node: 1, Kind: EventKillNode},
		{At: 500 * simtime.Millisecond, Node: 2, Kind: EventKillNode, Policy: KillDrop},
		{At: 600 * simtime.Millisecond, Node: 2, Kind: EventRestoreNode},
	}
	data, err := MarshalScenarioJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseScenario(data)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip diverged:\ngot:  %+v\nwant: %+v", got, s)
	}
}

// TestScenarioScaled: durations and budgets scale, rates don't.
func TestScenarioScaled(t *testing.T) {
	s := multiClassScenario()
	s.Events = []Event{{At: 400 * simtime.Millisecond, Node: -1, Kind: EventPressureStop}}
	half := s.Scaled(0.5)
	if half.Phases[0].Duration != 100*simtime.Millisecond {
		t.Errorf("phase 0 duration %v, want 100ms", half.Phases[0].Duration)
	}
	if half.Phases[2].Requests != 1_000 {
		t.Errorf("phase 2 budget %d, want 1000", half.Phases[2].Requests)
	}
	if half.Events[0].At != 200*simtime.Millisecond {
		t.Errorf("event at %v, want 200ms", half.Events[0].At)
	}
	if half.Phases[0].Classes[0].Rate != s.Phases[0].Classes[0].Rate {
		t.Error("scaling changed a class rate")
	}
	if s.Phases[0].Duration != 200*simtime.Millisecond {
		t.Error("Scaled mutated its receiver")
	}
	// A tiny budget keeps its floor of one request.
	tiny := s.Scaled(0.00001)
	if tiny.Phases[2].Requests != 1 {
		t.Errorf("tiny budget %d, want floor 1", tiny.Phases[2].Requests)
	}
}
