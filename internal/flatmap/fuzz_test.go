package flatmap

import (
	"bytes"
	"testing"
)

// FuzzMapBackends decodes the fuzz input into an operation sequence and
// drives both backends through it in lockstep, cross-checking every return
// value plus the full sorted key/value state after the sequence. This is the
// oracle check for the grouped-probe layout: whatever slot arrangement the
// control-word scan produces, the observable behavior must match the Go map.
func FuzzMapBackends(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x81, 0x42, 0x41, 0x42})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add(bytes.Repeat([]byte{0x07, 0x99}, 64)) // grow then churn one bucket
	f.Add([]byte{0x01, 0x10, 0x01, 0x11, 0x01, 0x12, 0x41, 0x11, 0x01, 0x13})
	f.Fuzz(func(t *testing.T, data []byte) {
		flat := NewBackend[int64](0, BackendFlat)
		oracle := NewBackend[int64](0, BackendMap)
		for pos := 0; pos+1 < len(data); pos += 2 {
			op := data[pos]
			// A one-byte key space forces dense collision/overwrite churn;
			// the top opcode bits fold in a second hash-spreading key range.
			k := int64(data[pos+1])
			if op&0x80 != 0 {
				k += 1 << 40
			}
			v := int64(pos)
			switch op & 0x63 {
			case 0x00, 0x20:
				flat.Prefetch(k)
				oracle.Prefetch(k)
				flat.Put(k, v)
				oracle.Put(k, v)
			case 0x01, 0x21:
				gp, gok := flat.Swap(k, v)
				wp, wok := oracle.Swap(k, v)
				if gp != wp || gok != wok {
					t.Fatalf("op %d: Swap(%d) = (%d,%v), oracle (%d,%v)", pos, k, gp, gok, wp, wok)
				}
			case 0x02, 0x22:
				gv, gok := flat.Delete(k)
				wv, wok := oracle.Delete(k)
				if gv != wv || gok != wok {
					t.Fatalf("op %d: Delete(%d) = (%d,%v), oracle (%d,%v)", pos, k, gv, gok, wv, wok)
				}
			default:
				gv, gok := flat.Get(k)
				wv, wok := oracle.Get(k)
				if gv != wv || gok != wok {
					t.Fatalf("op %d: Get(%d) = (%d,%v), oracle (%d,%v)", pos, k, gv, gok, wv, wok)
				}
				if flat.Contains(k) != wok {
					t.Fatalf("op %d: Contains(%d) != %v", pos, k, wok)
				}
			}
			if flat.Len() != oracle.Len() {
				t.Fatalf("op %d: Len %d, oracle %d", pos, flat.Len(), oracle.Len())
			}
		}
		gk, wk := flat.SortedKeys(nil), oracle.SortedKeys(nil)
		if len(gk) != len(wk) {
			t.Fatalf("final key count %d, oracle %d", len(gk), len(wk))
		}
		for i := range gk {
			if gk[i] != wk[i] {
				t.Fatalf("final key[%d] = %d, oracle %d", i, gk[i], wk[i])
			}
			gv, _ := flat.Get(gk[i])
			wv, _ := oracle.Get(gk[i])
			if gv != wv {
				t.Fatalf("final value[%d] = %d, oracle %d", gk[i], gv, wv)
			}
		}
	})
}
