package flatmap

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// TestMapMatchesReference drives both backends and a reference map[int64]V
// through randomized insert/overwrite/delete/lookup/iterate sequences —
// including growth past several doublings and heavy delete churn, the
// regime where backward-shift deletion must keep probe runs intact.
func TestMapMatchesReference(t *testing.T) {
	for _, backend := range []Backend{BackendFlat, BackendMap} {
		backend := backend
		name := "flat"
		if backend == BackendMap {
			name = "map"
		}
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				rng := rand.New(rand.NewPCG(seed, seed*977))
				m := NewBackend[int64](0, backend)
				ref := map[int64]int64{}
				// Small key space forces overwrite and delete-reinsert
				// collisions; occasional wide keys exercise the hash.
				keyOf := func() int64 {
					if rng.IntN(20) == 0 {
						return int64(rng.Uint64())
					}
					return int64(rng.IntN(512))
				}
				for op := 0; op < 20000; op++ {
					switch rng.IntN(11) {
					case 0, 1, 2, 3: // insert/overwrite
						k, v := keyOf(), int64(rng.Uint64())
						m.Prefetch(k) // behavior-neutral by contract
						m.Put(k, v)
						ref[k] = v
					case 10: // swap
						k, v := keyOf(), int64(rng.Uint64())
						gotPrev, gotOK := m.Swap(k, v)
						wantPrev, wantOK := ref[k]
						ref[k] = v
						if gotOK != wantOK || gotPrev != wantPrev {
							t.Fatalf("seed %d op %d: Swap(%d) = (%d, %v), want (%d, %v)",
								seed, op, k, gotPrev, gotOK, wantPrev, wantOK)
						}
					case 4, 5, 6: // delete
						k := keyOf()
						gotV, gotOK := m.Delete(k)
						wantV, wantOK := ref[k]
						delete(ref, k)
						if gotOK != wantOK || gotV != wantV {
							t.Fatalf("seed %d op %d: Delete(%d) = (%d, %v), want (%d, %v)",
								seed, op, k, gotV, gotOK, wantV, wantOK)
						}
					case 7, 8: // lookup
						k := keyOf()
						gotV, gotOK := m.Get(k)
						wantV, wantOK := ref[k]
						if gotOK != wantOK || gotV != wantV {
							t.Fatalf("seed %d op %d: Get(%d) = (%d, %v), want (%d, %v)",
								seed, op, k, gotV, gotOK, wantV, wantOK)
						}
						if m.Contains(k) != wantOK {
							t.Fatalf("seed %d op %d: Contains(%d) != %v", seed, op, k, wantOK)
						}
					case 9: // full iterate + sorted keys
						if m.Len() != len(ref) {
							t.Fatalf("seed %d op %d: Len %d, want %d", seed, op, m.Len(), len(ref))
						}
						got := map[int64]int64{}
						m.Range(func(k, v int64) bool {
							if _, dup := got[k]; dup {
								t.Fatalf("seed %d op %d: Range yielded key %d twice", seed, op, k)
							}
							got[k] = v
							return true
						})
						if len(got) != len(ref) {
							t.Fatalf("seed %d op %d: Range yielded %d entries, want %d", seed, op, len(got), len(ref))
						}
						for k, v := range ref {
							if got[k] != v {
								t.Fatalf("seed %d op %d: Range gave ref[%d]=%d, want %d", seed, op, k, got[k], v)
							}
						}
						keys := m.SortedKeys(nil)
						if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
							t.Fatalf("seed %d op %d: SortedKeys not sorted", seed, op)
						}
						if len(keys) != len(ref) {
							t.Fatalf("seed %d op %d: SortedKeys has %d keys, want %d", seed, op, len(keys), len(ref))
						}
					}
				}
				// Drain through Delete so the final backward shifts run too.
				for _, k := range m.SortedKeys(nil) {
					if _, ok := m.Delete(k); !ok {
						t.Fatalf("seed %d: drain lost key %d", seed, k)
					}
				}
				if m.Len() != 0 {
					t.Fatalf("seed %d: %d entries after drain", seed, m.Len())
				}
			}
		})
	}
}

// TestMapIterationDeterminism pins the seed-replay contract: two flat maps
// driven through the identical operation sequence observe the identical
// Range order, and that order survives growth, overwrite and backward-shift
// deletion (the grouped-probe layout must reproduce the slot layout of plain
// linear probing exactly).
func TestMapIterationDeterminism(t *testing.T) {
	runOps := func(seed uint64) []int64 {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		m := NewBackend[int64](0, BackendFlat)
		for op := 0; op < 5000; op++ {
			k := int64(rng.IntN(700))
			switch rng.IntN(4) {
			case 0, 1:
				m.Put(k, int64(op))
			case 2:
				m.Swap(k, int64(op))
			case 3:
				m.Delete(k)
			}
		}
		var order []int64
		m.Range(func(k, _ int64) bool { order = append(order, k); return true })
		return order
	}
	for seed := uint64(1); seed <= 4; seed++ {
		a, b := runOps(seed), runOps(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: replay order diverges at %d: %d vs %d", seed, i, a[i], b[i])
			}
		}
	}
}

// TestMapClear verifies Clear keeps the table reusable.
func TestMapClear(t *testing.T) {
	for _, backend := range []Backend{BackendFlat, BackendMap} {
		m := NewBackend[string](4, backend)
		for i := int64(0); i < 100; i++ {
			m.Put(i, "v")
		}
		m.Clear()
		if m.Len() != 0 {
			t.Fatalf("Len after Clear = %d", m.Len())
		}
		if _, ok := m.Get(42); ok {
			t.Fatal("Get found an entry after Clear")
		}
		m.Put(7, "again")
		if v, ok := m.Get(7); !ok || v != "again" {
			t.Fatalf("Get(7) after reuse = (%q, %v)", v, ok)
		}
	}
}

// TestMapSteadyStateAllocs locks the flat table's steady-state churn —
// overwrite, delete+reinsert, lookup on a fixed key set — at zero
// allocations per operation.
func TestMapSteadyStateAllocs(t *testing.T) {
	m := NewBackend[int64](0, BackendFlat)
	for i := int64(0); i < 1000; i++ {
		m.Put(i, i)
	}
	var k int64
	allocs := testing.AllocsPerRun(10000, func() {
		k = (k + 1) % 1000
		m.Put(k, k*3)
		if _, ok := m.Get(k); !ok {
			t.Fatal("lost key")
		}
		m.Delete(k)
		m.Put(k, k)
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestRingFIFO drives the ring against a reference slice queue.
func TestRingFIFO(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 11))
	var r Ring
	var ref []int64
	for op := 0; op < 50000; op++ {
		if rng.IntN(3) > 0 || len(ref) == 0 {
			v := int64(rng.Uint64())
			r.Push(v)
			ref = append(ref, v)
		} else {
			got, ok := r.Pop()
			if !ok || got != ref[0] {
				t.Fatalf("op %d: Pop = (%d, %v), want (%d, true)", op, got, ok, ref[0])
			}
			ref = ref[1:]
		}
		if r.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, r.Len(), len(ref))
		}
	}
	for len(ref) > 0 {
		got, ok := r.Pop()
		if !ok || got != ref[0] {
			t.Fatalf("drain: Pop = (%d, %v), want (%d, true)", got, ok, ref[0])
		}
		ref = ref[1:]
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop succeeded on empty ring")
	}
}

// TestRingSteadyStateAllocs locks a warmed ring's push/pop cycle at zero
// allocations.
func TestRingSteadyStateAllocs(t *testing.T) {
	var r Ring
	for i := int64(0); i < 64; i++ {
		r.Push(i)
	}
	allocs := testing.AllocsPerRun(10000, func() {
		r.Push(1)
		r.Pop()
	})
	if allocs != 0 {
		t.Fatalf("ring churn allocates %.2f allocs/op, want 0", allocs)
	}
}
