// Package flatmap provides the flat, allocation-free containers backing the
// simulator's per-request hot path: an open-addressed hash table keyed by
// int64 with inline values, and a slice-backed FIFO ring. Both exist to
// replace Go maps and growing slices in the single-node request loop, where
// per-event heap allocation and pointer-chasing dominate once the engine is
// parallel (see docs/ARCHITECTURE.md, "Hot path & memory discipline").
//
// The table uses linear probing with backward-shift deletion, so there are
// no tombstones and lookup cost stays bounded by the live load factor no
// matter how much the key set churns. Iteration order over a Map is a pure
// function of the operation history — two runs that perform the identical
// operation sequence observe the identical order — which is what the
// simulator's seed-replay determinism requires. Code on the deterministic
// path that needs an order independent of table internals (e.g. freeing
// memtable blocks at flush) uses SortedKeys.
//
// A Go-map fallback backend is kept behind a config switch
// (SetDefaultBackend, or HERMES_FLATMAP=map in the environment) so the flat
// implementation can be verified equivalent against the original map-based
// services — see TestClusterBackendEquivalence and the property tests.
package flatmap

import (
	"os"
	"slices"
)

// Backend selects the Map implementation.
type Backend int

const (
	// BackendFlat is the open-addressed table — the default.
	BackendFlat Backend = iota
	// BackendMap is the Go-map fallback used to verify equivalence and as
	// an escape hatch (HERMES_FLATMAP=map).
	BackendMap
)

var defaultBackend = func() Backend {
	if os.Getenv("HERMES_FLATMAP") == "map" {
		return BackendMap
	}
	return BackendFlat
}()

// DefaultBackend returns the process-wide default backend.
func DefaultBackend() Backend { return defaultBackend }

// SetDefaultBackend overrides the default backend for Maps created
// afterwards and returns the previous default (tests restore it).
func SetDefaultBackend(b Backend) Backend {
	prev := defaultBackend
	defaultBackend = b
	return prev
}

const minCapacity = 8

// Map is a hash table from int64 keys to inline values of type V.
// The zero value is not ready for use; call New.
type Map[V any] struct {
	// Flat backend: parallel slot arrays, power-of-two sized. used marks
	// occupied slots (keys may be any int64, so no key sentinel exists).
	keys []int64
	vals []V
	used []bool
	mask uint64
	// growAt is the occupancy that triggers a doubling (7/8 load factor —
	// linear probing with backward-shift stays fast well past 3/4).
	growAt int

	n int

	// Fallback backend.
	m map[int64]V
}

// New creates a Map with capacity for about hint entries, using the
// process-wide default backend.
func New[V any](hint int) *Map[V] { return NewBackend[V](hint, defaultBackend) }

// NewBackend creates a Map on an explicit backend.
func NewBackend[V any](hint int, b Backend) *Map[V] {
	m := &Map[V]{}
	if b == BackendMap {
		m.m = make(map[int64]V, hint)
		return m
	}
	capacity := minCapacity
	for capacity*7/8 <= hint {
		capacity *= 2
	}
	m.init(capacity)
	return m
}

func (m *Map[V]) init(capacity int) {
	m.keys = make([]int64, capacity)
	m.vals = make([]V, capacity)
	m.used = make([]bool, capacity)
	m.mask = uint64(capacity - 1)
	m.growAt = capacity * 7 / 8
}

// hash is the splitmix64 finalizer — strong enough that linear probing
// stays near its ideal probe lengths on adversarial-ish key sets (sequential
// keys, pointers, region IDs).
func hash(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// A nil *Map mirrors a nil Go map: reads (Get, Contains, Len, Range,
// AppendKeys, SortedKeys) see an empty table, Delete and Clear are no-ops,
// and Put panics — so torn-down owners (service Close sets tables to nil)
// keep the familiar loud-write / tolerant-read contract.

// Len returns the number of entries.
func (m *Map[V]) Len() int {
	if m == nil {
		return 0
	}
	if m.m != nil {
		return len(m.m)
	}
	return m.n
}

// Get returns the value stored under k.
func (m *Map[V]) Get(k int64) (V, bool) {
	if m == nil {
		var zero V
		return zero, false
	}
	if m.m != nil {
		v, ok := m.m[k]
		return v, ok
	}
	i := hash(k) & m.mask
	for m.used[i] {
		if m.keys[i] == k {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (m *Map[V]) Contains(k int64) bool {
	if m == nil {
		return false
	}
	if m.m != nil {
		_, ok := m.m[k]
		return ok
	}
	i := hash(k) & m.mask
	for m.used[i] {
		if m.keys[i] == k {
			return true
		}
		i = (i + 1) & m.mask
	}
	return false
}

// Put stores v under k, replacing any existing entry.
func (m *Map[V]) Put(k int64, v V) {
	if m.m != nil {
		m.m[k] = v
		return
	}
	i := hash(k) & m.mask
	for m.used[i] {
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
		i = (i + 1) & m.mask
	}
	// k is absent: grow first when at the load threshold (overwrites above
	// never grow), then find the insertion slot in the fresh table.
	if m.n >= m.growAt {
		m.grow()
		i = hash(k) & m.mask
		for m.used[i] {
			i = (i + 1) & m.mask
		}
	}
	m.keys[i], m.vals[i], m.used[i] = k, v, true
	m.n++
}

func (m *Map[V]) grow() {
	oldKeys, oldVals, oldUsed := m.keys, m.vals, m.used
	m.init(len(oldKeys) * 2)
	for i, u := range oldUsed {
		if !u {
			continue
		}
		j := hash(oldKeys[i]) & m.mask
		for m.used[j] {
			j = (j + 1) & m.mask
		}
		m.keys[j], m.vals[j], m.used[j] = oldKeys[i], oldVals[i], true
	}
}

// Delete removes k, returning the removed value. Deletion backward-shifts
// the following probe run instead of leaving a tombstone, so the table's
// probe lengths depend only on the live occupancy.
func (m *Map[V]) Delete(k int64) (V, bool) {
	var zero V
	if m == nil {
		return zero, false
	}
	if m.m != nil {
		v, ok := m.m[k]
		if ok {
			delete(m.m, k)
		}
		return v, ok
	}
	i := hash(k) & m.mask
	for {
		if !m.used[i] {
			return zero, false
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & m.mask
	}
	v := m.vals[i]
	// Backward shift: walk the probe run after i; any entry whose home slot
	// lies cyclically outside (i, j] can legally move back into the hole.
	j := i
	for {
		j = (j + 1) & m.mask
		if !m.used[j] {
			break
		}
		h := hash(m.keys[j]) & m.mask
		// h inside the cyclic half-open interval (i, j] means j's probe
		// path starts after the hole, so j must stay; otherwise it fills it.
		if ((j - h) & m.mask) < ((j - i) & m.mask) {
			continue
		}
		m.keys[i], m.vals[i] = m.keys[j], m.vals[j]
		i = j
	}
	m.keys[i] = 0
	m.vals[i] = zero // release pointers held by V
	m.used[i] = false
	m.n--
	return v, true
}

// Range calls fn for every entry until fn returns false. The order is the
// table's slot order — deterministic for a given operation history, but not
// sorted; deterministic-path code that frees or mutates global state per
// entry should use SortedKeys instead.
func (m *Map[V]) Range(fn func(k int64, v V) bool) {
	if m == nil {
		return
	}
	if m.m != nil {
		for k, v := range m.m {
			if !fn(k, v) {
				return
			}
		}
		return
	}
	for i, u := range m.used {
		if u && !fn(m.keys[i], m.vals[i]) {
			return
		}
	}
}

// AppendKeys appends every key to buf and returns it (unsorted).
func (m *Map[V]) AppendKeys(buf []int64) []int64 {
	if m == nil {
		return buf
	}
	if m.m != nil {
		for k := range m.m {
			buf = append(buf, k)
		}
		return buf
	}
	for i, u := range m.used {
		if u {
			buf = append(buf, m.keys[i])
		}
	}
	return buf
}

// SortedKeys appends every key to buf in ascending order and returns it —
// the iteration order for deterministic-path bulk operations (memtable
// flush, service close), identical across backends.
func (m *Map[V]) SortedKeys(buf []int64) []int64 {
	buf = m.AppendKeys(buf)
	slices.Sort(buf)
	return buf
}

// Clear removes every entry, keeping the allocated capacity.
func (m *Map[V]) Clear() {
	if m == nil {
		return
	}
	if m.m != nil {
		clear(m.m)
		return
	}
	clear(m.keys)
	clear(m.vals)
	clear(m.used)
	m.n = 0
}
