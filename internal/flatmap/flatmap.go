// Package flatmap provides the flat, allocation-free containers backing the
// simulator's per-request hot path: an open-addressed hash table keyed by
// int64 with inline values, and a slice-backed FIFO ring. Both exist to
// replace Go maps and growing slices in the single-node request loop, where
// per-event heap allocation and pointer-chasing dominate once the engine is
// parallel (see docs/ARCHITECTURE.md, "Hot path & memory discipline").
//
// The table uses linear probing with backward-shift deletion, so there are
// no tombstones and lookup cost stays bounded by the live load factor no
// matter how much the key set churns. Probing is cache-conscious: occupancy
// and a 7-bit hash fingerprint per slot live in a separate byte array (SoA,
// Swiss-table style) scanned eight slots at a time with uint64 word tricks,
// so a probe run touches one control word and then at most the key slots
// whose fingerprints match — instead of a key+flag cache line per step. The
// grouped scan preserves exact first-empty-stop linear-probe semantics, so
// the slot layout (and therefore Range order) is identical to a slot-by-slot
// probe of the same operation history. Iteration order over a Map is a pure
// function of the operation history — two runs that perform the identical
// operation sequence observe the identical order — which is what the
// simulator's seed-replay determinism requires. Code on the deterministic
// path that needs an order independent of table internals (e.g. freeing
// memtable blocks at flush) uses SortedKeys.
//
// A Go-map fallback backend is kept behind a config switch
// (SetDefaultBackend, or HERMES_FLATMAP=map in the environment) so the flat
// implementation can be verified equivalent against the original map-based
// services — see TestClusterBackendEquivalence and the property tests.
package flatmap

import (
	"encoding/binary"
	"math/bits"
	"os"
	"slices"
)

// Backend selects the Map implementation.
type Backend int

const (
	// BackendFlat is the open-addressed table — the default.
	BackendFlat Backend = iota
	// BackendMap is the Go-map fallback used to verify equivalence and as
	// an escape hatch (HERMES_FLATMAP=map).
	BackendMap
)

var defaultBackend = func() Backend {
	if os.Getenv("HERMES_FLATMAP") == "map" {
		return BackendMap
	}
	return BackendFlat
}()

// DefaultBackend returns the process-wide default backend.
func DefaultBackend() Backend { return defaultBackend }

// SetDefaultBackend overrides the default backend for Maps created
// afterwards and returns the previous default (tests restore it).
func SetDefaultBackend(b Backend) Backend {
	prev := defaultBackend
	defaultBackend = b
	return prev
}

const minCapacity = 8

// groupWidth is how many control bytes one probe step scans (one uint64).
const groupWidth = 8

const (
	loBytes uint64 = 0x0101010101010101
	hiBytes uint64 = 0x8080808080808080
)

// Map is a hash table from int64 keys to inline values of type V.
// The zero value is not ready for use; call New.
type Map[V any] struct {
	// Flat backend: parallel slot arrays, power-of-two sized. ctrl holds one
	// byte per slot — 0 for empty, else 0x80|top-7-hash-bits — plus
	// groupWidth mirror bytes of slots 0..groupWidth-1 at the end, so an
	// unaligned 8-byte load starting at any slot sees the wrapped-around
	// window without masking.
	keys []int64
	vals []V
	ctrl []byte
	mask uint64
	// growAt is the occupancy that triggers a doubling (7/8 load factor —
	// linear probing with backward-shift stays fast well past 3/4). It also
	// guarantees at least one empty slot, which terminates every group scan.
	growAt int

	n int

	// sink absorbs Prefetch loads so they cannot be optimized away. Written
	// only by the goroutine owning the Map; never read.
	sink uint64

	// Fallback backend.
	m map[int64]V
}

// New creates a Map with capacity for about hint entries, using the
// process-wide default backend.
func New[V any](hint int) *Map[V] { return NewBackend[V](hint, defaultBackend) }

// NewBackend creates a Map on an explicit backend.
func NewBackend[V any](hint int, b Backend) *Map[V] {
	m := &Map[V]{}
	if b == BackendMap {
		m.m = make(map[int64]V, hint)
		return m
	}
	capacity := minCapacity
	for capacity*7/8 <= hint {
		capacity *= 2
	}
	m.init(capacity)
	return m
}

func (m *Map[V]) init(capacity int) {
	m.keys = make([]int64, capacity)
	m.vals = make([]V, capacity)
	m.ctrl = make([]byte, capacity+groupWidth)
	m.mask = uint64(capacity - 1)
	m.growAt = capacity * 7 / 8
}

// hash is the splitmix64 finalizer — strong enough that linear probing
// stays near its ideal probe lengths on adversarial-ish key sets (sequential
// keys, pointers, region IDs).
func hash(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fingerprint derives the control byte from the top hash bits (disjoint
// from the slot-index bits for all practical table sizes). The occupied bit
// keeps it nonzero, so 0 unambiguously means empty.
func fingerprint(h uint64) byte { return byte(h>>57) | 0x80 }

// setCtrl writes a control byte, maintaining the wrap-around mirror of the
// first group.
func (m *Map[V]) setCtrl(i uint64, c byte) {
	m.ctrl[i] = c
	if i < groupWidth {
		m.ctrl[uint64(len(m.keys))+i] = c
	}
}

// groupMasks scans one control word: match gets the high bit of every byte
// equal to fp that precedes the first empty slot, empty the high bit of
// every empty byte. empty is exact (occupied bytes always have the high bit
// set); match may contain false positives past a true match — callers
// verify candidates against keys, so a false positive costs one compare.
func groupMasks(w, fp uint64) (match, empty uint64) {
	empty = ^w & hiBytes
	x := w ^ (loBytes * fp)
	match = (x - loBytes) &^ x & hiBytes
	// Keep only candidates before the first empty byte: linear probing stops
	// at the first empty slot. When empty is 0 the subtraction wraps to all
	// ones and keeps every candidate — branch-free identity.
	match &= empty - 1
	return match, empty
}

// A nil *Map mirrors a nil Go map: reads (Get, Contains, Len, Range,
// AppendKeys, SortedKeys, Prefetch) see an empty table, Delete and Clear are
// no-ops, and Put/Swap panic — so torn-down owners (service Close sets
// tables to nil) keep the familiar loud-write / tolerant-read contract.

// Len returns the number of entries.
func (m *Map[V]) Len() int {
	if m == nil {
		return 0
	}
	if m.m != nil {
		return len(m.m)
	}
	return m.n
}

// Get returns the value stored under k.
func (m *Map[V]) Get(k int64) (V, bool) {
	if m == nil {
		var zero V
		return zero, false
	}
	if m.m != nil {
		v, ok := m.m[k]
		return v, ok
	}
	h := hash(k)
	fp := uint64(fingerprint(h))
	i := h & m.mask
	// Home-slot fast path: most hits live at their home slot even near the
	// load threshold, and a probe starting on an empty home slot is a miss —
	// both resolve on one control byte before the group machinery spins up.
	if c := uint64(m.ctrl[i]); c == fp {
		if m.keys[i] == k {
			return m.vals[i], true
		}
	} else if c == 0 {
		var zero V
		return zero, false
	}
	for {
		match, empty := groupMasks(binary.LittleEndian.Uint64(m.ctrl[i:]), fp)
		for match != 0 {
			j := (i + uint64(bits.TrailingZeros64(match)>>3)) & m.mask
			if m.keys[j] == k {
				return m.vals[j], true
			}
			match &= match - 1
		}
		if empty != 0 {
			var zero V
			return zero, false
		}
		i = (i + groupWidth) & m.mask
	}
}

// Contains reports whether k is present.
func (m *Map[V]) Contains(k int64) bool {
	if m == nil {
		return false
	}
	if m.m != nil {
		_, ok := m.m[k]
		return ok
	}
	h := hash(k)
	fp := uint64(fingerprint(h))
	i := h & m.mask
	// Home-slot fast path, as in Get.
	if c := uint64(m.ctrl[i]); c == fp {
		if m.keys[i] == k {
			return true
		}
	} else if c == 0 {
		return false
	}
	for {
		match, empty := groupMasks(binary.LittleEndian.Uint64(m.ctrl[i:]), fp)
		for match != 0 {
			j := (i + uint64(bits.TrailingZeros64(match)>>3)) & m.mask
			if m.keys[j] == k {
				return true
			}
			match &= match - 1
		}
		if empty != 0 {
			return false
		}
		i = (i + groupWidth) & m.mask
	}
}

// Prefetch warms the cache lines a subsequent Get/Put/Swap of k will touch
// (the control word and the home key slot). Read-only: it never changes
// table state, so interleaving Prefetch calls with any operation sequence is
// behavior-neutral — the batched-admission path issues a Prefetch per
// request in a small look-ahead window before serving the window.
func (m *Map[V]) Prefetch(k int64) {
	if m == nil || m.m != nil {
		return
	}
	i := hash(k) & m.mask
	m.sink += uint64(m.ctrl[i]) + uint64(m.keys[i])
}

// Put stores v under k, replacing any existing entry.
func (m *Map[V]) Put(k int64, v V) {
	if m.m != nil {
		m.m[k] = v
		return
	}
	h := hash(k)
	fp := uint64(fingerprint(h))
	i := h & m.mask
	// Home-slot fast paths: overwrite-in-place on a home hit, and insert
	// straight into an empty home slot while below the load threshold (the
	// first empty slot on the probe path is the home slot itself).
	if c := uint64(m.ctrl[i]); c == fp && m.keys[i] == k {
		m.vals[i] = v
		return
	} else if c == 0 && m.n < m.growAt {
		m.setCtrl(i, byte(fp))
		m.keys[i], m.vals[i] = k, v
		m.n++
		return
	}
	for {
		match, empty := groupMasks(binary.LittleEndian.Uint64(m.ctrl[i:]), fp)
		for match != 0 {
			j := (i + uint64(bits.TrailingZeros64(match)>>3)) & m.mask
			if m.keys[j] == k {
				m.vals[j] = v
				return
			}
			match &= match - 1
		}
		if empty != 0 {
			// k is absent: grow first when at the load threshold (overwrites
			// above never grow), then find the insertion slot afresh.
			ins := (i + uint64(bits.TrailingZeros64(empty)>>3)) & m.mask
			if m.n >= m.growAt {
				m.grow()
				ins = m.findInsert(h)
			}
			m.setCtrl(ins, byte(fp))
			m.keys[ins], m.vals[ins] = k, v
			m.n++
			return
		}
		i = (i + groupWidth) & m.mask
	}
}

// Swap stores v under k and returns the previously stored value — Put and
// Get fused into a single probe for the overwrite-heavy service paths
// (Redis value replacement, RocksDB memtable upsert).
func (m *Map[V]) Swap(k int64, v V) (V, bool) {
	if m.m != nil {
		prev, ok := m.m[k]
		m.m[k] = v
		return prev, ok
	}
	h := hash(k)
	fp := uint64(fingerprint(h))
	i := h & m.mask
	// Home-slot fast paths, as in Put.
	if c := uint64(m.ctrl[i]); c == fp && m.keys[i] == k {
		prev := m.vals[i]
		m.vals[i] = v
		return prev, true
	} else if c == 0 && m.n < m.growAt {
		m.setCtrl(i, byte(fp))
		m.keys[i], m.vals[i] = k, v
		m.n++
		var zero V
		return zero, false
	}
	for {
		match, empty := groupMasks(binary.LittleEndian.Uint64(m.ctrl[i:]), fp)
		for match != 0 {
			j := (i + uint64(bits.TrailingZeros64(match)>>3)) & m.mask
			if m.keys[j] == k {
				prev := m.vals[j]
				m.vals[j] = v
				return prev, true
			}
			match &= match - 1
		}
		if empty != 0 {
			ins := (i + uint64(bits.TrailingZeros64(empty)>>3)) & m.mask
			if m.n >= m.growAt {
				m.grow()
				ins = m.findInsert(h)
			}
			m.setCtrl(ins, byte(fp))
			m.keys[ins], m.vals[ins] = k, v
			m.n++
			var zero V
			return zero, false
		}
		i = (i + groupWidth) & m.mask
	}
}

// findInsert returns the first empty slot on the probe path of h. Only
// called when h's key is known absent (fresh insert after grow, and grow's
// reinsert loop, where keys are unique by construction).
func (m *Map[V]) findInsert(h uint64) uint64 {
	i := h & m.mask
	for {
		empty := ^binary.LittleEndian.Uint64(m.ctrl[i:]) & hiBytes
		if empty != 0 {
			return (i + uint64(bits.TrailingZeros64(empty)>>3)) & m.mask
		}
		i = (i + groupWidth) & m.mask
	}
}

func (m *Map[V]) grow() {
	oldKeys, oldVals, oldCtrl := m.keys, m.vals, m.ctrl
	m.init(len(oldKeys) * 2)
	for i, c := range oldCtrl[:len(oldKeys)] {
		if c == 0 {
			continue
		}
		j := m.findInsert(hash(oldKeys[i]))
		m.setCtrl(j, c)
		m.keys[j], m.vals[j] = oldKeys[i], oldVals[i]
	}
}

// Delete removes k, returning the removed value. Deletion backward-shifts
// the following probe run instead of leaving a tombstone, so the table's
// probe lengths depend only on the live occupancy.
func (m *Map[V]) Delete(k int64) (V, bool) {
	var zero V
	if m == nil {
		return zero, false
	}
	if m.m != nil {
		v, ok := m.m[k]
		if ok {
			delete(m.m, k)
		}
		return v, ok
	}
	h := hash(k)
	fp := uint64(fingerprint(h))
	i := h & m.mask
scan:
	for {
		match, empty := groupMasks(binary.LittleEndian.Uint64(m.ctrl[i:]), fp)
		for match != 0 {
			j := (i + uint64(bits.TrailingZeros64(match)>>3)) & m.mask
			if m.keys[j] == k {
				i = j
				break scan
			}
			match &= match - 1
		}
		if empty != 0 {
			return zero, false
		}
		i = (i + groupWidth) & m.mask
	}
	v := m.vals[i]
	// Backward shift: walk the probe run after i; any entry whose home slot
	// lies cyclically outside (i, j] can legally move back into the hole.
	j := i
	for {
		j = (j + 1) & m.mask
		if m.ctrl[j] == 0 {
			break
		}
		hj := hash(m.keys[j]) & m.mask
		// hj inside the cyclic half-open interval (i, j] means j's probe
		// path starts after the hole, so j must stay; otherwise it fills it.
		if ((j - hj) & m.mask) < ((j - i) & m.mask) {
			continue
		}
		m.keys[i], m.vals[i] = m.keys[j], m.vals[j]
		m.setCtrl(i, m.ctrl[j])
		i = j
	}
	m.keys[i] = 0
	m.vals[i] = zero // release pointers held by V
	m.setCtrl(i, 0)
	m.n--
	return v, true
}

// Range calls fn for every entry until fn returns false. The order is the
// table's slot order — deterministic for a given operation history, but not
// sorted; deterministic-path code that frees or mutates global state per
// entry should use SortedKeys instead.
func (m *Map[V]) Range(fn func(k int64, v V) bool) {
	if m == nil {
		return
	}
	if m.m != nil {
		for k, v := range m.m {
			if !fn(k, v) {
				return
			}
		}
		return
	}
	for i := range m.keys {
		if m.ctrl[i] != 0 && !fn(m.keys[i], m.vals[i]) {
			return
		}
	}
}

// AppendKeys appends every key to buf and returns it (unsorted).
func (m *Map[V]) AppendKeys(buf []int64) []int64 {
	if m == nil {
		return buf
	}
	if m.m != nil {
		for k := range m.m {
			buf = append(buf, k)
		}
		return buf
	}
	for i := range m.keys {
		if m.ctrl[i] != 0 {
			buf = append(buf, m.keys[i])
		}
	}
	return buf
}

// SortedKeys appends every key to buf in ascending order and returns it —
// the iteration order for deterministic-path bulk operations (memtable
// flush, service close), identical across backends.
func (m *Map[V]) SortedKeys(buf []int64) []int64 {
	buf = m.AppendKeys(buf)
	slices.Sort(buf)
	return buf
}

// Clear removes every entry, keeping the allocated capacity.
func (m *Map[V]) Clear() {
	if m == nil {
		return
	}
	if m.m != nil {
		clear(m.m)
		return
	}
	clear(m.keys)
	clear(m.vals)
	clear(m.ctrl)
	m.n = 0
}
