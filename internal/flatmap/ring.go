package flatmap

// Ring is a slice-backed FIFO deque of int64 — the allocation-free
// replacement for the append-and-reslice eviction-order queues whose
// backing arrays leak capacity as the head advances. The zero value is
// ready for use.
type Ring struct {
	buf  []int64
	head int
	n    int
}

// Len returns the number of queued values.
func (r *Ring) Len() int { return r.n }

// Push appends v at the back.
func (r *Ring) Push(v int64) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the front value.
func (r *Ring) Pop() (int64, bool) {
	if r.n == 0 {
		return 0, false
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v, true
}

func (r *Ring) grow() {
	capacity := len(r.buf) * 2
	if capacity == 0 {
		capacity = minCapacity
	}
	buf := make([]int64, capacity)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
