package flatmap

import "testing"

// TestRingWrapAround drives the head pointer all the way around a
// fixed-capacity ring so Push writes land below Pop reads, the regime the
// modular index arithmetic exists for.
func TestRingWrapAround(t *testing.T) {
	var r Ring
	// Fill to exactly minCapacity so no grow happens during the wrap.
	for i := int64(0); i < minCapacity; i++ {
		r.Push(i)
	}
	if len(r.buf) != minCapacity {
		t.Fatalf("capacity %d after %d pushes, want %d", len(r.buf), minCapacity, minCapacity)
	}
	// Pop one, push one, many times: the window slides through every head
	// position several times while staying full.
	next := int64(minCapacity)
	for step := 0; step < 5*minCapacity; step++ {
		got, ok := r.Pop()
		if !ok || got != next-minCapacity {
			t.Fatalf("step %d: Pop = (%d, %v), want (%d, true)", step, got, ok, next-minCapacity)
		}
		r.Push(next)
		next++
		if len(r.buf) != minCapacity {
			t.Fatalf("step %d: ring grew to %d while count constant", step, len(r.buf))
		}
	}
	for want := next - minCapacity; want < next; want++ {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("drain: Pop = (%d, %v), want (%d, true)", got, ok, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after drain", r.Len())
	}
}

// TestRingGrowWhileWrapped grows the ring at the worst moment: full with the
// head in the middle, so the live window straddles the physical end of the
// old buffer and grow must re-linearize it.
func TestRingGrowWhileWrapped(t *testing.T) {
	var r Ring
	for i := int64(0); i < minCapacity; i++ {
		r.Push(i)
	}
	// Advance the head to the middle, refilling to stay full.
	for i := int64(0); i < minCapacity/2; i++ {
		r.Pop()
		r.Push(minCapacity + i)
	}
	// Next push grows: FIFO order must survive the wrap re-linearization.
	first := int64(minCapacity / 2)
	last := int64(minCapacity + minCapacity/2)
	r.Push(last)
	if len(r.buf) != 2*minCapacity {
		t.Fatalf("capacity %d after grow, want %d", len(r.buf), 2*minCapacity)
	}
	if r.head != 0 {
		t.Fatalf("head %d after grow, want 0 (re-linearized)", r.head)
	}
	for want := first; want <= last; want++ {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("post-grow Pop = (%d, %v), want (%d, true)", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop succeeded on drained ring")
	}
}

// TestRingZeroValue checks the documented zero-value readiness, including a
// Pop before any Push.
func TestRingZeroValue(t *testing.T) {
	var r Ring
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on zero-value ring succeeded")
	}
	r.Push(7)
	if got, ok := r.Pop(); !ok || got != 7 {
		t.Fatalf("Pop = (%d, %v), want (7, true)", got, ok)
	}
}
