package experiments

import (
	"fmt"
	"strings"

	"github.com/hermes-sim/hermes/internal/stats"
)

// This file assembles the per-figure service results: Figure 2 (query
// breakdown), Figures 9/11/13 (Redis) and Figures 10/12/14 (Rocksdb).

// Fig2Result holds the Rocksdb insert/read breakdown of §2.2.
type Fig2Result struct {
	// Small and Large hold, per percentile key, the insert share of the
	// whole query latency (percent).
	Small map[string]float64
	Large map[string]float64
}

// Fig2 reproduces Figure 2: the share of query latency spent in the
// insertion (allocation) path for 1 KB and 200 KB Rocksdb records on a
// dedicated system with Glibc. Paper anchors: small 74.7% of the average
// (54.5% of p99); large 93.5% (97.5%).
func Fig2(scale Scale, seed uint64) Fig2Result {
	res := Fig2Result{
		Small: make(map[string]float64),
		Large: make(map[string]float64),
	}
	for _, recordBytes := range []int64{SmallRecordBytes, LargeRecordBytes} {
		cell := runServiceCell(ServiceRocksdb, KindGlibc, 0, recordBytes, scale, seed)
		ins, rd := cell.insert.Summarize(), cell.read.Summarize()
		out := res.Small
		if recordBytes == LargeRecordBytes {
			out = res.Large
		}
		for _, key := range stats.PercentileKeys {
			total := ins.At(key) + rd.At(key)
			if total > 0 {
				out[key] = 100 * float64(ins.At(key)) / float64(total)
			}
		}
	}
	return res
}

// Render prints the Figure 2 bars.
func (r Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2: insert share of Rocksdb query latency (%)\n")
	fmt.Fprintf(&b, "%-8s", "")
	for _, key := range stats.PercentileKeys {
		fmt.Fprintf(&b, " %8s", key)
	}
	b.WriteString("\n")
	for _, row := range []struct {
		name string
		data map[string]float64
	}{{"small", r.Small}, {"large", r.Large}} {
		fmt.Fprintf(&b, "%-8s", row.name)
		for _, key := range stats.PercentileKeys {
			fmt.Fprintf(&b, " %8.1f", row.data[key])
		}
		b.WriteString("\n")
	}
	b.WriteString("paper: small 74.7 (avg) … 54.5 (p99); large 93.5 (avg) … 97.5 (p99)\n")
	return b.String()
}

// ServiceFigures bundles both record sizes for one service.
type ServiceFigures struct {
	Small ServiceSweep
	Large ServiceSweep
}

// Fig9 runs the Redis sweeps behind Figures 9, 11 and 13.
func Fig9(scale Scale, seed uint64) ServiceFigures {
	return ServiceFigures{
		Small: RunServiceSweep(ServiceRedis, SmallRecordBytes, scale, seed),
		Large: RunServiceSweep(ServiceRedis, LargeRecordBytes, scale, seed),
	}
}

// Fig10 runs the Rocksdb sweeps behind Figures 10, 12 and 14.
func Fig10(scale Scale, seed uint64) ServiceFigures {
	return ServiceFigures{
		Small: RunServiceSweep(ServiceRocksdb, SmallRecordBytes, scale, seed),
		Large: RunServiceSweep(ServiceRocksdb, LargeRecordBytes, scale, seed),
	}
}

// RenderLatency prints the Figure 9/10 view.
func (f ServiceFigures) RenderLatency(figure string) string {
	return f.Small.RenderP90(figure+"(a)") + "\n" + f.Large.RenderP90(figure+"(b)")
}

// RenderTail prints the Figure 11/12 view.
func (f ServiceFigures) RenderTail(figure string) string {
	return f.Small.RenderTailCDF(figure+"(a)") + "\n" + f.Large.RenderTailCDF(figure+"(b)")
}

// RenderViolation prints the Figure 13/14 view.
func (f ServiceFigures) RenderViolation(figure string) string {
	return f.Small.RenderViolation(figure+"(a)") + "\n" + f.Large.RenderViolation(figure+"(b)")
}
