package experiments

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/stats"
)

// The experiment tests assert the paper's qualitative claims — orderings,
// signs, crossovers — at the CI scale. Absolute calibration against the
// paper's numbers is recorded by the full-scale bench run (EXPERIMENTS.md).

func TestFig2InsertDominatesQuery(t *testing.T) {
	r := Fig2(QuickScale(), 1)
	// §2.2: memory allocation dominates the query, more so for large
	// records (paper: 74.7% small, 93.5% large on average).
	if r.Small["avg"] < 50 {
		t.Fatalf("small insert share %.1f%%, want > 50%%", r.Small["avg"])
	}
	if r.Large["avg"] < 85 {
		t.Fatalf("large insert share %.1f%%, want > 85%%", r.Large["avg"])
	}
	if r.Large["avg"] <= r.Small["avg"] {
		t.Fatal("large-record insert share must exceed small-record share")
	}
}

func TestFig3PressureOrdering(t *testing.T) {
	r := Fig3(QuickScale(), 1)
	idle, file, anon := r.Idle.Summarize(), r.File.Summarize(), r.Anon.Summarize()
	// Fig 3 ordering at every reported percentile: idle ≤ file ≤ anon.
	for _, key := range []string{"avg", "p90", "p99"} {
		if !(idle.At(key) <= file.At(key) && file.At(key) <= anon.At(key)) {
			t.Fatalf("%s ordering broken: idle=%v file=%v anon=%v",
				key, idle.At(key), file.At(key), anon.At(key))
		}
	}
	// Anonymous pressure must inflate the tail substantially more than
	// file-cache pressure (paper: +46.6% vs +7.6% p99).
	anonInfl := float64(anon.P99) / float64(idle.P99)
	fileInfl := float64(file.P99) / float64(idle.P99)
	if anonInfl < fileInfl+0.05 {
		t.Fatalf("anon p99 inflation %.2f not clearly above file %.2f", anonInfl, fileInfl)
	}
}

func TestFig7AllocatorSignatures(t *testing.T) {
	r := Fig7(QuickScale(), 1)
	for _, scenario := range AllScenarios {
		hermes := r.Series[seriesName(KindHermes, scenario)].Summarize()
		glibc := r.Series[seriesName(KindGlibc, scenario)].Summarize()
		tcm := r.Series[seriesName(KindTCMalloc, scenario)].Summarize()

		// Hermes beats Glibc at every reported percentile (Fig 7a-c).
		for _, key := range stats.PercentileKeys {
			if hermes.At(key) >= glibc.At(key) {
				t.Errorf("%s: Hermes %s %v not below Glibc %v",
					scenario, key, hermes.At(key), glibc.At(key))
			}
		}
		// TCMalloc: low typical latency, very high tail (§5.2).
		if tcm.P75 >= glibc.P75 {
			t.Errorf("%s: TCMalloc p75 %v should be below Glibc %v", scenario, tcm.P75, glibc.P75)
		}
		if tcm.P99 <= glibc.P99 {
			t.Errorf("%s: TCMalloc p99 %v should exceed Glibc %v", scenario, tcm.P99, glibc.P99)
		}
	}
	// Proactive reclamation: full Hermes under file pressure must be at
	// least as good as Hermes w/o rec at the tail.
	full := r.Series[seriesName(KindHermes, ScenarioFile)].Summarize()
	noRec := r.Series[seriesName(KindHermesNoRec, ScenarioFile)].Summarize()
	if full.P99 > noRec.P99+noRec.P99/10 {
		t.Errorf("Hermes w/ reclamation p99 %v clearly worse than w/o %v", full.P99, noRec.P99)
	}
}

func TestFig8LargeRequests(t *testing.T) {
	r := Fig8(QuickScale(), 1)
	// Dedicated system: Hermes < Glibc < jemalloc on average, jemalloc
	// "longer but more stable" (Fig 8a).
	hermes := r.Series[seriesName(KindHermes, ScenarioDedicated)].Summarize()
	glibc := r.Series[seriesName(KindGlibc, ScenarioDedicated)].Summarize()
	je := r.Series[seriesName(KindJemalloc, ScenarioDedicated)].Summarize()
	if !(hermes.Mean < glibc.Mean && glibc.Mean < je.Mean) {
		t.Fatalf("dedicated large ordering broken: hermes=%v glibc=%v jemalloc=%v",
			hermes.Mean, glibc.Mean, je.Mean)
	}
	// Hermes' dedicated reduction lands near the paper's 12.1%.
	red := r.Reduction(ScenarioDedicated, "avg")
	if red < 5 || red > 25 {
		t.Fatalf("dedicated avg reduction %.1f%%, want ~12%%", red)
	}
	// Under pressure Hermes keeps its p75 near dedicated (pre-mapped
	// requests bypass the kernel).
	hermesAnon := r.Series[seriesName(KindHermes, ScenarioAnon)].Summarize()
	if float64(hermesAnon.P75) > 1.35*float64(hermes.P75) {
		t.Fatalf("Hermes p75 under anon %v strayed from dedicated %v", hermesAnon.P75, hermes.P75)
	}
}

func TestServiceSweepRedis(t *testing.T) {
	sw := RunServiceSweep(ServiceRedis, SmallRecordBytes, QuickScale(), 1)
	full := len(sw.Levels) - 1 // 150%
	hundred := 3               // 100%
	if sw.Levels[hundred] != 1.0 {
		t.Fatalf("level layout changed: %v", sw.Levels)
	}
	// At ≥100% pressure Hermes' p90 must beat Glibc's (Fig 9a) and its
	// SLO violation must be far lower (Fig 13a).
	for _, idx := range []int{hundred, full} {
		if sw.P90(KindHermes, idx) >= sw.P90(KindGlibc, idx) {
			t.Errorf("level %v: Hermes p90 %v not below Glibc %v",
				sw.Levels[idx], sw.P90(KindHermes, idx), sw.P90(KindGlibc, idx))
		}
		if sw.Violation(KindHermes, idx) >= sw.Violation(KindGlibc, idx) {
			t.Errorf("level %v: Hermes violation %.2f not below Glibc %.2f",
				sw.Levels[idx], sw.Violation(KindHermes, idx), sw.Violation(KindGlibc, idx))
		}
	}
	// Headline: violation reduction at ≥100% in the paper's "up to
	// 83.6%" territory.
	if red := sw.ViolationReduction(); red < 40 {
		t.Errorf("violation reduction %.1f%%, want ≥ 40%%", red)
	}
	// Pressure monotonicity for Glibc: higher levels, more violations.
	if sw.Violation(KindGlibc, full) < sw.Violation(KindGlibc, 1) {
		t.Error("Glibc violations should grow with pressure")
	}
}

func TestServiceSweepRocksdbLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("co-location sweep")
	}
	sw := RunServiceSweep(ServiceRocksdb, LargeRecordBytes, QuickScale(), 1)
	hundred := 3
	if sw.P90(KindHermes, hundred) >= sw.P90(KindGlibc, hundred) {
		t.Errorf("Hermes p90 %v not below Glibc %v at 100%%",
			sw.P90(KindHermes, hundred), sw.P90(KindGlibc, hundred))
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long co-location window")
	}
	// At CI scale only the scale-invariant claims are asserted; the full
	// Default ≥ Hermes > Killing ordering emerges at the full scale's
	// paper-proportioned footprints (see EXPERIMENTS.md): a 2 GB node is
	// over-committed so hard that killing containers *helps* throughput.
	r := Table1(QuickScale(), 1)
	for _, svc := range []ServiceKind{ServiceRedis, ServiceRocksdb} {
		jobs := r.Jobs[svc]
		if jobs[Table1Dedicated] != 0 {
			t.Errorf("%s: dedicated system must run no batch jobs", svc)
		}
		if jobs[Table1Default] <= 0 || jobs[Table1Hermes] <= 0 || jobs[Table1Killing] <= 0 {
			t.Errorf("%s: co-location must complete jobs: %+v", svc, jobs)
		}
		// Hermes' proactive reclamation costs batch jobs only a few
		// percent vs Default (paper: −8.5%): within a ±20% band here.
		def, her := float64(jobs[Table1Default]), float64(jobs[Table1Hermes])
		if her < def*0.8 || her > def*1.2 {
			t.Errorf("%s: Hermes throughput %d strays from Default %d", svc, jobs[Table1Hermes], jobs[Table1Default])
		}
	}
	// Rocksdb leaves more memory to batch jobs than Redis (§5.3.2).
	if r.Jobs[ServiceRocksdb][Table1Default] <= r.Jobs[ServiceRedis][Table1Default] {
		t.Error("Rocksdb co-location should out-produce Redis co-location")
	}
	// §5.3.2: ~98.5% node memory utilization under Hermes.
	if r.Utilization[ServiceRedis] < 0.85 {
		t.Errorf("Hermes node utilization %.2f, want high", r.Utilization[ServiceRedis])
	}
}

func TestFig6AblationBoundsHold(t *testing.T) {
	r := Fig6Ablation(QuickScale(), 1)
	if r.AtOnceMaxHold < 4*r.GradualMaxHold {
		t.Fatalf("at-once hold %v not ≫ gradual hold %v", r.AtOnceMaxHold, r.GradualMaxHold)
	}
	if r.AtOnceWaited <= r.GradualWaited {
		t.Fatalf("at-once blocked time %v not above gradual %v", r.AtOnceWaited, r.GradualWaited)
	}
}

func TestMlockAblationSpeedup(t *testing.T) {
	r := MlockAblation(QuickScale(), 1)
	speedup := 1 - float64(r.MgmtBusyMlock)/float64(r.MgmtBusyTouch)
	// §4: mlock at least 40% faster than the touch loop.
	if speedup < 0.40 {
		t.Fatalf("mlock speedup %.1f%%, want ≥ 40%%", speedup*100)
	}
}

func TestOverheadBounds(t *testing.T) {
	r := Overhead(QuickScale(), 1)
	if r.MgmtCPUPaced > 0.02 {
		t.Errorf("paced mgmt CPU %.2f%%, want < 2%% (paper ~0.4%%)", r.MgmtCPUPaced*100)
	}
	if r.ReservedSmall <= 0 || r.ReservedSmall > 64<<20 {
		t.Errorf("small reserve peak %d bytes implausible (paper ~6 MB)", r.ReservedSmall)
	}
	if r.DaemonCPU > 0.024 {
		t.Errorf("daemon CPU %.2f%% above the paper's 2.4%%", r.DaemonCPU*100)
	}
}

func TestSensitivitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("factor sweep")
	}
	r := Fig15(QuickScale(), 1)
	for _, scenario := range []Scenario{ScenarioDedicated, ScenarioAnon} {
		rows := r.Reductions[scenario]
		if len(rows) != len(SensitivityFactors) {
			t.Fatalf("%s: %d rows, want %d", scenario, len(rows), len(SensitivityFactors))
		}
		// Larger factors reserve more memory.
		peaks := r.ReservePeak[scenario]
		if peaks[len(peaks)-1] < peaks[0] {
			t.Errorf("%s: peak reserve should grow with the factor: %v", scenario, peaks)
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a := Fig3(QuickScale(), 7)
	b := Fig3(QuickScale(), 7)
	if a.Anon.Summarize() != b.Anon.Summarize() {
		t.Fatal("same seed must reproduce identical results")
	}
	c := Fig3(QuickScale(), 8)
	if a.Anon.Summarize() == c.Anon.Summarize() {
		t.Fatal("different seeds should perturb the run")
	}
}
