package experiments

import (
	"fmt"
	"strings"

	"github.com/hermes-sim/hermes/internal/core"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
	"github.com/hermes-sim/hermes/internal/workload"
)

// This file reproduces the parameter-sensitivity study (§5.4, Figures 15
// and 16): Hermes' latency reduction versus Glibc as the reservation factor
// RSV_FACTOR sweeps 0.5–3.0, for small and large requests, on a dedicated
// system and under anonymous-page pressure.

// SensitivityFactors is the paper's sweep.
var SensitivityFactors = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}

// SensitivityResult holds one figure's data: reduction (%) per factor per
// percentile key, for each scenario, plus the reserve peaks for the
// memory-wastage discussion.
type SensitivityResult struct {
	Figure      string
	RequestSize int64
	// Reductions is indexed [scenario][factor index][percentile key].
	Reductions map[Scenario][]map[string]float64
	// ReservePeak is indexed [scenario][factor index] (bytes).
	ReservePeak map[Scenario][]int64
}

func runSensitivity(figure string, reqSize int64, scale Scale, seed uint64) SensitivityResult {
	res := SensitivityResult{
		Figure:      figure,
		RequestSize: reqSize,
		Reductions:  make(map[Scenario][]map[string]float64),
		ReservePeak: make(map[Scenario][]int64),
	}
	scenarios := []Scenario{ScenarioDedicated, ScenarioAnon}
	for _, scenario := range scenarios {
		glibc := runMicroCell(KindGlibc, scenario, reqSize, scale.MicroTotalBytes, seed).Summarize()
		rows := make([]map[string]float64, 0, len(SensitivityFactors))
		peaks := make([]int64, 0, len(SensitivityFactors))
		for _, factor := range SensitivityFactors {
			cfg := core.DefaultConfig()
			cfg.ReservationFactor = factor
			// min_rsv would dominate the micro-benchmark's per-interval
			// demand and mask the factor; the sensitivity study lowers it
			// so RSV_FACTOR actually governs the reserve.
			cfg.MinReserve = 256 << 10
			rec, peak := runSensitivityCell(scenario, reqSize, scale, seed, &cfg)
			hermes := rec.Summarize()
			row := make(map[string]float64, len(stats.PercentileKeys))
			for _, key := range stats.PercentileKeys {
				row[key] = stats.Reduction(glibc, hermes, key)
			}
			rows = append(rows, row)
			peaks = append(peaks, peak)
		}
		res.Reductions[scenario] = rows
		res.ReservePeak[scenario] = peaks
	}
	return res
}

// runSensitivityCell runs a Hermes micro cell and also captures the peak
// reservation for the wastage discussion.
func runSensitivityCell(scenario Scenario, reqSize int64, scale Scale, seed uint64, cfg *core.Config) (*stats.Recorder, int64) {
	k, s := microNode(seed)
	pressure := startPressure(k, scenario, scale.MicroTotalBytes)
	var batchPIDs []kernel.PID
	if pressure != nil {
		batchPIDs = []kernel.PID{pressure.PID()}
	}
	env := newAllocEnvCfg(k, KindHermes, "sensitivity", batchPIDs, cfg)
	defer env.close()
	s.Advance(20 * simtime.Millisecond)
	rec := stats.NewRecorder(seriesName(KindHermes, scenario))
	workload.RunMicroBench(k, env.a, workload.MicroBenchConfig{
		RequestSize: reqSize,
		TotalBytes:  scale.MicroTotalBytes,
	}, rec)
	peak := env.a.Stats().ReservePeak
	if pressure != nil {
		pressure.Stop()
	}
	return rec, peak
}

// Reduction returns the reduction row for (scenario, factor index, key).
func (r SensitivityResult) Reduction(scenario Scenario, factorIdx int, key string) float64 {
	return r.Reductions[scenario][factorIdx][key]
}

// Render prints the Figure 15/16 bars.
func (r SensitivityResult) Render() string {
	var b strings.Builder
	for _, scenario := range []Scenario{ScenarioDedicated, ScenarioAnon} {
		fmt.Fprintf(&b, "%s — %s system: latency reduction vs Glibc (%%) by RSV_FACTOR\n", r.Figure, scenario)
		fmt.Fprintf(&b, "%-8s", "factor")
		for _, key := range stats.PercentileKeys {
			fmt.Fprintf(&b, " %8s", key)
		}
		fmt.Fprintf(&b, " %12s\n", "peak reserve")
		for i, factor := range SensitivityFactors {
			fmt.Fprintf(&b, "%-8.1f", factor)
			for _, key := range stats.PercentileKeys {
				fmt.Fprintf(&b, " %8.1f", r.Reductions[scenario][i][key])
			}
			fmt.Fprintf(&b, " %12d\n", r.ReservePeak[scenario][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig15 reproduces Figure 15: sensitivity for small (1 KB) requests.
func Fig15(scale Scale, seed uint64) SensitivityResult {
	return runSensitivity("Figure 15 (small requests)", 1024, scale, seed)
}

// Fig16 reproduces Figure 16: sensitivity for large (256 KB) requests.
func Fig16(scale Scale, seed uint64) SensitivityResult {
	return runSensitivity("Figure 16 (large requests)", 256<<10, scale, seed)
}
