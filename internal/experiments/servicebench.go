package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/services"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
)

// This file runs the real-world-service experiments: the query-latency and
// SLO-violation sweeps of Figures 9–14 and the Figure 2 breakdown.

// ServiceKind selects the latency-critical service under test.
type ServiceKind string

// The two services of §5.3.
const (
	ServiceRedis   ServiceKind = "Redis"
	ServiceRocksdb ServiceKind = "Rocksdb"
)

// PressureLevels is the x-axis of Figures 9, 10, 13, 14: batch jobs'
// logical memory as a fraction of node capacity.
var PressureLevels = []float64{0, 0.5, 0.75, 1.0, 1.25, 1.5}

// Record sizes: the paper uses 1 KB ("small") and 200 KB ("large") records.
const (
	SmallRecordBytes = 1 << 10
	LargeRecordBytes = 200 << 10
)

// SizeLabel renders a record size the way the paper does.
func SizeLabel(recordBytes int64) string {
	if recordBytes <= SmallRecordBytes {
		return "small"
	}
	return "large"
}

// serviceCell is one (allocator, pressure level) run's recorders.
type serviceCell struct {
	total  *stats.Recorder
	insert *stats.Recorder
	read   *stats.Recorder
}

// newService builds the service under test on the given allocator.
func newService(k *kernel.Kernel, kind ServiceKind, env *allocEnv, scale Scale, tag string) services.Service {
	switch kind {
	case ServiceRedis:
		return services.NewRedis(k, env.a, services.RedisCosts())
	case ServiceRocksdb:
		cfg := services.DefaultRocksdbConfig()
		// Keep the LSM tiers proportional on the scaled node.
		cfg.MemtableBytes = scale.NodeMemory / 128
		cfg.BlockCacheBytes = scale.NodeMemory / 64
		return services.NewRocksdb(k, env.a, services.RocksdbCosts(), cfg, tag)
	default:
		panic(fmt.Sprintf("experiments: unknown service %q", kind))
	}
}

// runServiceCell co-locates the service with batch jobs at the given
// pressure level and drives insert+read queries until the dataset reaches
// the scale's insert volume.
func runServiceCell(svcKind ServiceKind, allocKind AllocKind, level float64, recordBytes int64, scale Scale, seed uint64) serviceCell {
	k, s := serviceNode(scale, seed)

	var runner *batch.Runner
	if level > 0 {
		bcfg := batch.DefaultConfig()
		bcfg.TargetBytes = int64(level * float64(scale.NodeMemory))
		bcfg.InputBytes = scale.NodeMemory / 16
		// Jobs churn a few times within one service run.
		bcfg.WorkDuration = 20 * simtime.Second
		runner = batch.NewRunner(k, bcfg)
		k.SetOOMHandler(runner.HandleOOM)
	}

	env := newAllocEnv(k, allocKind, string(svcKind), nil)
	defer env.close()
	if env.reg != nil && runner != nil {
		// The administrator registers batch containers; containers churn,
		// so the registration is refreshed periodically (§3.3).
		refresh := simtime.NewPeriodicTask(s, 500*simtime.Millisecond, func(simtime.Time) simtime.Duration {
			for _, pid := range runner.PIDs() {
				env.reg.AddBatch(pid)
			}
			for _, pid := range runner.InputFilePIDs() {
				env.reg.AddBatch(pid)
			}
			return 10 * simtime.Microsecond
		})
		defer refresh.Stop()
		for _, pid := range runner.PIDs() {
			env.reg.AddBatch(pid)
		}
	}

	name := fmt.Sprintf("%s-%s-%s", svcKind, allocKind, SizeLabel(recordBytes))
	svc := newService(k, svcKind, env, scale, name)
	defer svc.Close()

	// Let the batch ramp and the management thread warm up.
	s.Advance(2 * simtime.Second)

	cell := serviceCell{
		total:  stats.NewRecorder(fmt.Sprintf("%s@%d%%", allocKind, int(level*100))),
		insert: stats.NewRecorder("insert"),
		read:   stats.NewRecorder("read"),
	}
	var key int64
	for svc.StoredBytes() < scale.ServiceInsertBytes {
		key++
		total, ins, rd := svc.Query(key, recordBytes)
		cell.total.Record(total)
		cell.insert.Record(ins)
		cell.read.Record(rd)
	}
	if runner != nil {
		runner.Stop()
	}
	k.CheckInvariants()
	return cell
}

// ServiceSweep holds one service×record-size sweep across allocators and
// pressure levels — the data behind one panel each of Figures 9–14.
type ServiceSweep struct {
	Service     ServiceKind
	RecordBytes int64
	Levels      []float64
	// Cells is indexed [allocator][level index].
	Cells map[AllocKind][]serviceCell
	// SLO is the Glibc-dedicated p90, the paper's SLO definition.
	SLO time.Duration
}

// RunServiceSweep runs the full allocator × pressure-level grid.
func RunServiceSweep(svcKind ServiceKind, recordBytes int64, scale Scale, seed uint64) ServiceSweep {
	sweep := ServiceSweep{
		Service:     svcKind,
		RecordBytes: recordBytes,
		Levels:      PressureLevels,
		Cells:       make(map[AllocKind][]serviceCell),
	}
	for _, kind := range AllAllocKinds {
		cells := make([]serviceCell, 0, len(sweep.Levels))
		for _, level := range sweep.Levels {
			cells = append(cells, runServiceCell(svcKind, kind, level, recordBytes, scale, seed))
		}
		sweep.Cells[kind] = cells
	}
	sweep.SLO = sweep.Cells[KindGlibc][0].total.Percentile(90)
	return sweep
}

// P90 returns the p90 latency for the allocator at the level index.
func (sw ServiceSweep) P90(kind AllocKind, levelIdx int) time.Duration {
	return sw.Cells[kind][levelIdx].total.Percentile(90)
}

// Violation returns the SLO-violation ratio (Figures 13, 14).
func (sw ServiceSweep) Violation(kind AllocKind, levelIdx int) float64 {
	return sw.Cells[kind][levelIdx].total.ViolationRatio(sw.SLO)
}

// ViolationReduction returns Hermes' best-case SLO-violation reduction vs
// the worst competitor at ≥100% levels — the paper's headline "up to
// 83.6%/84.3%" metric.
func (sw ServiceSweep) ViolationReduction() float64 {
	best := 0.0
	for i, level := range sw.Levels {
		if level < 1.0 {
			continue
		}
		hermes := sw.Violation(KindHermes, i)
		for _, kind := range []AllocKind{KindGlibc, KindJemalloc, KindTCMalloc} {
			other := sw.Violation(kind, i)
			if other <= 0 {
				continue
			}
			if red := (1 - hermes/other) * 100; red > best {
				best = red
			}
		}
	}
	return best
}

// RenderP90 prints the Figure 9/10 panel: p90 latency per pressure level.
func (sw ServiceSweep) RenderP90(figure string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s %s requests — p90 query latency (SLO=%v)\n",
		figure, sw.Service, SizeLabel(sw.RecordBytes), sw.SLO)
	fmt.Fprintf(&b, "%-10s", "level")
	for _, kind := range AllAllocKinds {
		fmt.Fprintf(&b, " %-12s", kind)
	}
	b.WriteString("\n")
	for i, level := range sw.Levels {
		fmt.Fprintf(&b, "%-10s", fmt.Sprintf("%d%%", int(level*100)))
		for _, kind := range AllAllocKinds {
			fmt.Fprintf(&b, " %-12v", sw.P90(kind, i))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderViolation prints the Figure 13/14 panel: SLO-violation ratios.
func (sw ServiceSweep) RenderViolation(figure string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s %s requests — SLO violation (%%), SLO=%v\n",
		figure, sw.Service, SizeLabel(sw.RecordBytes), sw.SLO)
	fmt.Fprintf(&b, "%-10s", "level")
	for _, kind := range AllAllocKinds {
		fmt.Fprintf(&b, " %-12s", kind)
	}
	b.WriteString("\n")
	for i, level := range sw.Levels {
		if level == 0 {
			continue // the paper's violation figures start at 50%
		}
		fmt.Fprintf(&b, "%-10s", fmt.Sprintf("%d%%", int(level*100)))
		for _, kind := range AllAllocKinds {
			fmt.Fprintf(&b, " %-12.1f", sw.Violation(kind, i)*100)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "best Hermes violation reduction at ≥100%%: %.1f%% (paper: up to 83.6%%/84.3%%)\n",
		sw.ViolationReduction())
	return b.String()
}

// RenderTailCDF prints the Figure 11/12 panel: the p90–p99 tail at 100%
// pressure.
func (sw ServiceSweep) RenderTailCDF(figure string) string {
	levelIdx := -1
	for i, level := range sw.Levels {
		if level == 1.0 {
			levelIdx = i
		}
	}
	if levelIdx < 0 {
		return figure + ": no 100% level in sweep\n"
	}
	var b strings.Builder
	series := make(map[string][]stats.CDFPoint)
	var order []string
	for _, kind := range AllAllocKinds {
		name := string(kind)
		order = append(order, name)
		series[name] = sw.Cells[kind][levelIdx].total.TailCDF(0.90, 40)
	}
	b.WriteString(stats.RenderCDFTable(
		fmt.Sprintf("%s: %s %s requests @100%% pressure — tail latency CDF",
			figure, sw.Service, SizeLabel(sw.RecordBytes)),
		[]float64{0.90, 0.95, 0.99}, series, order))
	return b.String()
}
