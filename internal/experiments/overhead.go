package experiments

import (
	"fmt"
	"strings"

	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
	"github.com/hermes-sim/hermes/internal/workload"
)

// This file reproduces the overhead accounting of §5.5: the management
// thread's CPU share (~0.4%), the reserved-but-unused memory (~6–6.4 MB for
// the micro-benchmark), and the monitor daemon's footprint (~2 MB memory,
// ~2.4% CPU).

// OverheadResult reports the §5.5 metrics.
type OverheadResult struct {
	// MgmtCPUSmall/MgmtCPULarge is the management thread's virtual CPU
	// share during the saturating small/large micro-benchmark; MgmtCPUPaced
	// is the share under a service-like paced allocation rate (the regime
	// of the paper's ~0.4% figure — mapping construction is proportional
	// to the allocation rate, so a saturating benchmark costs more).
	MgmtCPUSmall float64
	MgmtCPULarge float64
	MgmtCPUPaced float64
	// ReservedSmall/ReservedLarge is the peak reserved-but-unused memory.
	ReservedSmall int64
	ReservedLarge int64
	// DaemonCPU is the monitor daemon's virtual CPU share while
	// monitoring a loaded node; DaemonMemBytes is its fixed footprint
	// (process + shared memory, a constant of the design).
	DaemonCPU      float64
	DaemonMemBytes int64
}

// Overhead measures the §5.5 numbers on the micro-benchmark.
func Overhead(scale Scale, seed uint64) OverheadResult {
	res := OverheadResult{DaemonMemBytes: 2 << 20}
	for _, reqSize := range []int64{1024, 256 << 10} {
		k, s := microNode(seed)
		env := newAllocEnvCfg(k, KindHermesNoRec, "overhead", nil, nil)
		s.Advance(10 * simtime.Millisecond)
		rec := stats.NewRecorder("overhead")
		workload.RunMicroBench(k, env.a, workload.MicroBenchConfig{
			RequestSize: reqSize,
			TotalBytes:  scale.MicroTotalBytes,
		}, rec)
		util := env.hermes.MgmtUtilization(s.Now())
		peak := env.a.Stats().ReservePeak
		if reqSize == 1024 {
			res.MgmtCPUSmall, res.ReservedSmall = util, peak
		} else {
			res.MgmtCPULarge, res.ReservedLarge = util, peak
		}
		env.close()
	}

	// Paced allocation: one 1 KB request every 100 µs (~10 MB/s, a busy
	// service rather than a saturating benchmark).
	{
		k, s := microNode(seed)
		env := newAllocEnvCfg(k, KindHermesNoRec, "overhead-paced", nil, nil)
		for i := 0; i < 20000; i++ {
			b, c := env.a.Malloc(s.Now(), 1024)
			env.a.Touch(s.Now().Add(c), b)
			s.Advance(100 * simtime.Microsecond)
		}
		res.MgmtCPUPaced = env.hermes.MgmtUtilization(s.Now())
		env.close()
	}

	// Daemon overhead on a node with batch files to track.
	k, s := microNode(seed)
	reg := monitor.NewRegistry()
	batchProc := k.CreateProcess("batch")
	reg.AddBatch(batchProc.PID)
	for i := 0; i < 8; i++ {
		f := k.CreateFile(fmt.Sprintf("ovh-%d", i), (1<<30)/k.PageSize(), batchProc.PID)
		k.ReadFile(s.Now(), f, f.SizePages())
	}
	d := monitor.NewDaemon(k, reg, monitor.DefaultConfig())
	s.Advance(10 * simtime.Second)
	res.DaemonCPU = d.Utilization(s.Now())
	d.Stop()
	_ = kernel.PID(0)
	return res
}

// Render prints the §5.5 comparison.
func (r OverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("§5.5 overhead (paper: mgmt ~0.4% CPU; reserved 6–6.4 MB; daemon ~2 MB, ~2.4% CPU)\n")
	fmt.Fprintf(&b, "  mgmt CPU: small %.2f%%, large %.2f%% (saturating); %.2f%% paced\n",
		r.MgmtCPUSmall*100, r.MgmtCPULarge*100, r.MgmtCPUPaced*100)
	fmt.Fprintf(&b, "  peak reserved-unused: small %.1f MB, large %.1f MB\n",
		float64(r.ReservedSmall)/(1<<20), float64(r.ReservedLarge)/(1<<20))
	fmt.Fprintf(&b, "  daemon: %.2f%% CPU, %.1f MB memory\n", r.DaemonCPU*100, float64(r.DaemonMemBytes)/(1<<20))
	return b.String()
}
