// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.2, §5). Each Fig*/Table* function runs the corresponding
// experiment on the simulated testbed and returns a structured result with
// a Render method producing the rows/series the paper reports. The
// experiment index lives in DESIGN.md §3.
package experiments

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/alloc/glibcmalloc"
	"github.com/hermes-sim/hermes/internal/alloc/jemalloc"
	"github.com/hermes-sim/hermes/internal/alloc/tcmalloc"
	"github.com/hermes-sim/hermes/internal/core"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// Scale selects experiment fidelity: benchmarks run the paper-sized
// workloads; tests run shrunken ones with identical structure.
type Scale struct {
	// Name tags rendered output.
	Name string
	// MicroTotalBytes is the micro-benchmark's total requested memory
	// (paper: 1 GB).
	MicroTotalBytes int64
	// ServiceInsertBytes is the per-run inserted data volume for the
	// Redis/RocksDB experiments (paper: 2 GB).
	ServiceInsertBytes int64
	// NodeMemory/NodeSwap size the simulated node for service and batch
	// experiments (micro experiments always use the paper's 128 GB node).
	NodeMemory int64
	NodeSwap   int64
	// BatchHours is the co-location window for Table 1 (paper: 24 h).
	BatchHours float64
}

// FullScale reproduces the paper's workload sizes. The service/batch node
// is scaled to 8 GB (with workloads scaled in proportion) and the Table 1
// co-location window to 6 hours (job durations scale with the window, so
// throughput ratios are preserved) to keep the discrete-event count
// tractable; all comparisons are relative, so shapes are preserved (see
// DESIGN.md §1).
func FullScale() Scale {
	return Scale{
		Name:               "full",
		MicroTotalBytes:    1 << 30,
		ServiceInsertBytes: 256 << 20,
		NodeMemory:         8 << 30,
		NodeSwap:           8 << 30,
		BatchHours:         6,
	}
}

// QuickScale is the CI-friendly variant used by `go test`.
func QuickScale() Scale {
	return Scale{
		Name:               "quick",
		MicroTotalBytes:    48 << 20,
		ServiceInsertBytes: 24 << 20,
		NodeMemory:         2 << 30,
		NodeSwap:           2 << 30,
		BatchHours:         0.5,
	}
}

// microNode builds the paper's testbed for micro-benchmarks: 128 GB DRAM,
// 64 GB HDD swap.
func microNode(seed uint64) (*kernel.Kernel, *simtime.Scheduler) {
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.Seed = seed
	return kernel.New(s, cfg), s
}

// serviceNode builds the scaled node for service/batch experiments.
func serviceNode(scale Scale, seed uint64) (*kernel.Kernel, *simtime.Scheduler) {
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = scale.NodeMemory
	cfg.SwapBytes = scale.NodeSwap
	cfg.Seed = seed
	return kernel.New(s, cfg), s
}

// AllocKind names the allocator configurations compared in the evaluation.
type AllocKind string

// The four allocators of §5 plus the proactive-reclamation ablation.
const (
	KindGlibc       AllocKind = "Glibc"
	KindHermes      AllocKind = "Hermes"
	KindHermesNoRec AllocKind = "Hermes w/o rec"
	KindJemalloc    AllocKind = "jemalloc"
	KindTCMalloc    AllocKind = "TCMalloc"
)

// AllAllocKinds is the comparison set of Figures 7–14.
var AllAllocKinds = []AllocKind{KindHermes, KindGlibc, KindJemalloc, KindTCMalloc}

// allocEnv is an allocator plus its node-side support (registry, daemon).
type allocEnv struct {
	a      alloc.Allocator
	reg    *monitor.Registry
	daemon *monitor.Daemon
	hermes *core.Hermes
}

func (e *allocEnv) close() {
	if e.daemon != nil {
		e.daemon.Stop()
	}
	e.a.Close()
}

// newAllocEnv instantiates the allocator under test. For Hermes the monitor
// daemon runs too (proactive reclamation) unless the "w/o rec" ablation is
// selected; batchPIDs are the co-tenant processes whose files the daemon
// may release.
func newAllocEnv(k *kernel.Kernel, kind AllocKind, name string, batchPIDs []kernel.PID) *allocEnv {
	return newAllocEnvCfg(k, kind, name, batchPIDs, nil)
}

// newAllocEnvCfg is newAllocEnv with an optional Hermes configuration
// override (the sensitivity and ablation experiments sweep it).
func newAllocEnvCfg(k *kernel.Kernel, kind AllocKind, name string, batchPIDs []kernel.PID, hermesCfg *core.Config) *allocEnv {
	env := &allocEnv{}
	switch kind {
	case KindGlibc:
		env.a = glibcmalloc.New(k, name, glibcmalloc.DefaultConfig())
	case KindJemalloc:
		env.a = jemalloc.New(k, name, jemalloc.DefaultConfig())
	case KindTCMalloc:
		env.a = tcmalloc.New(k, name, tcmalloc.DefaultConfig())
	case KindHermes, KindHermesNoRec:
		cfg := core.DefaultConfig()
		if hermesCfg != nil {
			cfg = *hermesCfg
		}
		env.reg = monitor.NewRegistry()
		h := core.NewWithRegistry(k, name, cfg, env.reg, true)
		env.hermes = h
		env.a = h
		if kind == KindHermes {
			for _, pid := range batchPIDs {
				env.reg.AddBatch(pid)
			}
			env.daemon = monitor.NewDaemon(k, env.reg, monitor.DefaultConfig())
		}
	default:
		panic(fmt.Sprintf("experiments: unknown allocator kind %q", kind))
	}
	return env
}

// Scenario names the three micro-benchmark memory regimes of Figure 3.
type Scenario string

// The three regimes.
const (
	ScenarioDedicated Scenario = "dedicated"
	ScenarioAnon      Scenario = "anon"
	ScenarioFile      Scenario = "file"
)

// AllScenarios is the Figure 7/8 scenario sweep.
var AllScenarios = []Scenario{ScenarioDedicated, ScenarioAnon, ScenarioFile}

// startPressure launches the scenario's pressure generator (nil for a
// dedicated system). The residual free buffer scales with the benchmark's
// total demand so shrunken test runs drain it and reach the reclaim-backed
// regime just as the paper-sized runs do (300 MB for the 1 GB benchmark).
func startPressure(k *kernel.Kernel, scenario Scenario, benchBytes int64) *workload.Pressure {
	var kind workload.PressureKind
	switch scenario {
	case ScenarioDedicated:
		return nil
	case ScenarioAnon:
		kind = workload.PressureAnon
	case ScenarioFile:
		kind = workload.PressureFile
	default:
		panic(fmt.Sprintf("experiments: unknown scenario %q", scenario))
	}
	cfg := workload.DefaultPressureConfig(kind)
	cfg.FreeBytes = int64(float64(cfg.FreeBytes) * float64(benchBytes) / float64(1<<30))
	if cfg.FreeBytes < 4<<20 {
		cfg.FreeBytes = 4 << 20
	}
	return workload.StartPressure(k, cfg)
}

// seriesName renders the paper's curve labels ("Hermes+anon", "Glibc").
func seriesName(kind AllocKind, scenario Scenario) string {
	if scenario == ScenarioDedicated {
		return string(kind)
	}
	return string(kind) + "+" + string(scenario)
}
