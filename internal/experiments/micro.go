package experiments

import (
	"fmt"
	"strings"

	"github.com/hermes-sim/hermes/internal/core"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
	"github.com/hermes-sim/hermes/internal/workload"
)

// This file regenerates the micro-benchmark artifacts: Figure 3 (Glibc
// allocation-latency CDFs under the three regimes) and Figures 7 and 8
// (four allocators × three regimes for 1 KB and 256 KB requests, plus the
// per-percentile reduction bars).

// runMicroCell runs one (allocator, scenario, request size) micro-benchmark
// cell and returns its latency recorder.
func runMicroCell(kind AllocKind, scenario Scenario, reqSize, totalBytes int64, seed uint64) *stats.Recorder {
	return runMicroCellCfg(kind, scenario, reqSize, totalBytes, seed, nil)
}

// runMicroCellCfg is runMicroCell with a Hermes configuration override.
func runMicroCellCfg(kind AllocKind, scenario Scenario, reqSize, totalBytes int64, seed uint64, hermesCfg *core.Config) *stats.Recorder {
	k, s := microNode(seed)
	pressure := startPressure(k, scenario, totalBytes)
	var batchPIDs []kernel.PID
	if pressure != nil {
		batchPIDs = []kernel.PID{pressure.PID()}
	}
	env := newAllocEnvCfg(k, kind, "microbench", batchPIDs, hermesCfg)
	defer env.close()

	// Let background machinery settle (management thread warm-up,
	// kswapd's first reaction to the pressure fill).
	s.Advance(20 * simtime.Millisecond)

	rec := stats.NewRecorder(seriesName(kind, scenario))
	workload.RunMicroBench(k, env.a, workload.MicroBenchConfig{
		RequestSize: reqSize,
		TotalBytes:  totalBytes,
	}, rec)
	if pressure != nil {
		pressure.Stop()
	}
	k.CheckInvariants()
	return rec
}

// Fig3Result holds the Figure 3 series: Glibc small-request allocation
// latency on an idle system vs file-cache vs anonymous-page pressure.
type Fig3Result struct {
	Idle *stats.Recorder
	File *stats.Recorder
	Anon *stats.Recorder
}

// Fig3 reproduces Figure 3 (and the §2.2 case-study numbers: anon pressure
// prolongs the average by ~35.6% and p99 by ~46.6%; file pressure by ~10.8%
// and ~7.6%).
func Fig3(scale Scale, seed uint64) Fig3Result {
	return Fig3Result{
		Idle: runMicroCell(KindGlibc, ScenarioDedicated, 1024, scale.MicroTotalBytes, seed),
		File: runMicroCell(KindGlibc, ScenarioFile, 1024, scale.MicroTotalBytes, seed),
		Anon: runMicroCell(KindGlibc, ScenarioAnon, 1024, scale.MicroTotalBytes, seed),
	}
}

// Render prints the CDF table plus the pressure-inflation summary.
func (r Fig3Result) Render() string {
	var b strings.Builder
	fractions := []float64{0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}
	series := map[string][]stats.CDFPoint{
		"idle": r.Idle.CDF(1000),
		"file": r.File.CDF(1000),
		"anon": r.Anon.CDF(1000),
	}
	b.WriteString(stats.RenderCDFTable(
		"Figure 3: CDF of memory allocation latency (1KB requests, Glibc)",
		fractions, series, []string{"idle", "file", "anon"}))
	idle, file, anon := r.Idle.Summarize(), r.File.Summarize(), r.Anon.Summarize()
	fmt.Fprintf(&b, "\nInflation vs idle (paper: anon +35.6%% avg/+46.6%% p99; file +10.8%%/+7.6%%):\n")
	fmt.Fprintf(&b, "  anon: avg %+.1f%%  p99 %+.1f%%\n",
		-stats.Reduction(idle, anon, "avg"), -stats.Reduction(idle, anon, "p99"))
	fmt.Fprintf(&b, "  file: avg %+.1f%%  p99 %+.1f%%\n",
		-stats.Reduction(idle, file, "avg"), -stats.Reduction(idle, file, "p99"))
	return b.String()
}

// MicroFigResult holds one of Figures 7/8: recorders per (allocator,
// scenario) plus the "Hermes w/o rec" file-pressure curve.
type MicroFigResult struct {
	Figure      string
	RequestSize int64
	// Series maps the paper's curve label to its recorder.
	Series map[string]*stats.Recorder
	// Order lists the labels per scenario for rendering.
	Scenarios []Scenario
}

// runMicroFig runs the full allocator×scenario sweep for one request size.
func runMicroFig(figure string, reqSize int64, scale Scale, seed uint64) MicroFigResult {
	res := MicroFigResult{
		Figure:      figure,
		RequestSize: reqSize,
		Series:      make(map[string]*stats.Recorder),
		Scenarios:   AllScenarios,
	}
	for _, scenario := range AllScenarios {
		for _, kind := range AllAllocKinds {
			rec := runMicroCell(kind, scenario, reqSize, scale.MicroTotalBytes, seed)
			res.Series[rec.Name()] = rec
		}
	}
	// The proactive-reclamation ablation only matters under file-cache
	// pressure (Figs 7c, 8c).
	rec := runMicroCell(KindHermesNoRec, ScenarioFile, reqSize, scale.MicroTotalBytes, seed)
	res.Series[rec.Name()] = rec
	return res
}

// Fig7 reproduces Figure 7: small (1 KB) allocation-latency CDFs and
// Hermes-vs-Glibc reductions.
func Fig7(scale Scale, seed uint64) MicroFigResult {
	return runMicroFig("Figure 7 (small 1KB requests)", 1024, scale, seed)
}

// Fig8 reproduces Figure 8: large (256 KB) requests.
func Fig8(scale Scale, seed uint64) MicroFigResult {
	return runMicroFig("Figure 8 (large 256KB requests)", 256<<10, scale, seed)
}

// Reduction returns Hermes' percentage latency reduction vs Glibc at the
// given summary key under the given scenario (the Fig 7d/8d bars).
func (r MicroFigResult) Reduction(scenario Scenario, key string) float64 {
	glibc := r.Series[seriesName(KindGlibc, scenario)]
	hermes := r.Series[seriesName(KindHermes, scenario)]
	return stats.Reduction(glibc.Summarize(), hermes.Summarize(), key)
}

// Render prints per-scenario CDF tables, the summary rows, and the
// reduction bars.
func (r MicroFigResult) Render() string {
	var b strings.Builder
	fractions := []float64{0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	for _, scenario := range r.Scenarios {
		var order []string
		series := make(map[string][]stats.CDFPoint)
		for _, kind := range AllAllocKinds {
			name := seriesName(kind, scenario)
			order = append(order, name)
			series[name] = r.Series[name].CDF(1000)
		}
		if scenario == ScenarioFile {
			name := seriesName(KindHermesNoRec, scenario)
			if rec, ok := r.Series[name]; ok {
				order = append(order, name)
				series[name] = rec.CDF(1000)
			}
		}
		b.WriteString(stats.RenderCDFTable(
			fmt.Sprintf("%s — %s system", r.Figure, scenario), fractions, series, order))
		for _, name := range order {
			fmt.Fprintf(&b, "  %s\n", r.Series[name].Summarize())
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%s — latency reduction by Hermes vs Glibc (%%):\n", r.Figure)
	fmt.Fprintf(&b, "%-12s", "")
	for _, key := range stats.PercentileKeys {
		fmt.Fprintf(&b, " %8s", key)
	}
	b.WriteString("\n")
	for _, scenario := range r.Scenarios {
		fmt.Fprintf(&b, "%-12s", scenario)
		for _, key := range stats.PercentileKeys {
			fmt.Fprintf(&b, " %8.1f", r.Reduction(scenario, key))
		}
		b.WriteString("\n")
	}
	return b.String()
}
