package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/hermes-sim/hermes/internal/core"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
	"github.com/hermes-sim/hermes/internal/workload"
)

// This file holds the ablations for the design decisions DESIGN.md §5
// calls out: gradual vs at-once reservation (the paper's Fig 6 argument),
// and mlock- vs touch-based mapping construction (§4's "at least 40%
// faster" claim).

// Fig6AblationResult compares gradual reservation against single-step
// reservation under a bursty small-request load.
type Fig6AblationResult struct {
	Gradual stats.Summary
	AtOnce  stats.Summary
	// MaxLockHold is the longest single break-lock hold in each mode —
	// the quantity Fig 6 is about; the Waited totals are the time process
	// mallocs spent blocked on the break lock.
	GradualMaxHold time.Duration
	AtOnceMaxHold  time.Duration
	GradualWaited  time.Duration
	AtOnceWaited   time.Duration
}

// Fig6Ablation reproduces the §3.2.1 argument: with gradual reservation a
// malloc racing the management thread waits at most one small chunk's
// mapping construction; reserving the whole target at once blocks it for
// the full expansion.
func Fig6Ablation(scale Scale, seed uint64) Fig6AblationResult {
	res := Fig6AblationResult{}
	res.Gradual, res.GradualMaxHold, res.GradualWaited = runFig6Cell(scale, seed, false)
	res.AtOnce, res.AtOnceMaxHold, res.AtOnceWaited = runFig6Cell(scale, seed, true)
	return res
}

func runFig6Cell(scale Scale, seed uint64, atOnce bool) (stats.Summary, time.Duration, time.Duration) {
	cfg := core.DefaultConfig()
	if atOnce {
		cfg.GradualChunkCeil = 0
	}
	// A modest target with a late RSV_THR means reservation starts when
	// the top chunk is nearly empty, so a burst can exhaust it while the
	// expansion is mid-flight — the race of Fig 6.
	cfg.MinReserve = 1 << 20
	cfg.RsvThrFraction = 0.1
	k, s := microNode(seed)
	env := newAllocEnvCfg(k, KindHermes, "ablation", nil, &cfg)
	defer env.close()
	s.Advance(10 * simtime.Millisecond)
	rec := stats.NewRecorder("ablation")
	rng := k.RNG()
	var requested int64
	burst := int64(512) // 2 MB per burst: exceeds the reserve target
	for requested < scale.MicroTotalBytes {
		for i := int64(0); i < burst; i++ {
			b, c1 := env.a.Malloc(s.Now(), 4096)
			c2 := env.a.Touch(s.Now().Add(c1), b)
			rec.Record(c1 + c2)
			s.Advance(c1 + c2)
			requested += 4096
		}
		s.Advance(simtime.Duration(float64(4*simtime.Millisecond) * rng.Float64()))
	}
	_, waited := env.hermes.Glibc().BreakLock().Contention()
	return rec.Summarize(), time.Duration(env.hermes.MgmtStats().MaxLockHold), time.Duration(waited)
}

// Render prints the comparison.
func (r Fig6AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 6 ablation: gradual vs at-once reservation (bursty 4KB requests)\n")
	fmt.Fprintf(&b, "  gradual: p99=%-12v max=%-12v longest hold=%-12v total blocked=%v\n",
		r.Gradual.P99, r.Gradual.Max, r.GradualMaxHold, r.GradualWaited)
	fmt.Fprintf(&b, "  at-once: p99=%-12v max=%-12v longest hold=%-12v total blocked=%v\n",
		r.AtOnce.P99, r.AtOnce.Max, r.AtOnceMaxHold, r.AtOnceWaited)
	return b.String()
}

// MlockAblationResult compares mlock-based mapping construction against
// the touch-by-iteration alternative (§4).
type MlockAblationResult struct {
	// MgmtBusyMlock / MgmtBusyTouch is the management thread's virtual
	// CPU consumption in each mode over the same workload.
	MgmtBusyMlock time.Duration
	MgmtBusyTouch time.Duration
}

// MlockAblation measures the §4 claim by re-pricing PopulateLocked at the
// plain fault cost (the touch-loop implementation) and comparing the
// management thread's construction time over an identical run.
func MlockAblation(scale Scale, seed uint64) MlockAblationResult {
	return MlockAblationResult{
		MgmtBusyMlock: mlockRun(scale, seed, false),
		MgmtBusyTouch: mlockRun(scale, seed, true),
	}
}

// mlockRun runs the small-request micro-benchmark on Hermes and returns the
// management thread's total busy time, with mapping construction priced
// either as mlock (the design) or as a touch loop (the ablation).
func mlockRun(scale Scale, seed uint64, touchPricing bool) time.Duration {
	s := simtime.NewScheduler()
	kcfg := kernel.DefaultConfig()
	kcfg.Seed = seed
	if touchPricing {
		kcfg.Costs.MlockPerPage = kcfg.Costs.HeapFaultPerPage
		kcfg.Costs.MlockBase = 0
	}
	k := kernel.New(s, kcfg)
	env := newAllocEnvCfg(k, KindHermes, "mlock-ablation", nil, nil)
	defer env.close()
	s.Advance(10 * simtime.Millisecond)
	rec := stats.NewRecorder("x")
	workload.RunMicroBench(k, env.a, workload.MicroBenchConfig{
		RequestSize: 1024,
		TotalBytes:  scale.MicroTotalBytes / 4,
	}, rec)
	return time.Duration(env.hermes.MgmtBusy())
}

// Render prints the comparison and the headline ratio.
func (r MlockAblationResult) Render() string {
	ratio := 0.0
	if r.MgmtBusyTouch > 0 {
		ratio = (1 - float64(r.MgmtBusyMlock)/float64(r.MgmtBusyTouch)) * 100
	}
	return fmt.Sprintf(
		"mlock ablation: construction via mlock %v vs touch-loop %v — %.1f%% faster (paper: ≥40%%)\n",
		r.MgmtBusyMlock, r.MgmtBusyTouch, ratio)
}
