package experiments

import (
	"fmt"
	"strings"

	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// This file reproduces Table 1 (§5.3.2): the throughput of batch jobs
// co-located with each latency-critical service under the Default, Hermes
// and Killing scenarios, plus the zero-throughput Dedicated column, over a
// long co-location window.

// Table1Scenario names the co-location policies compared.
type Table1Scenario string

// The four columns of Table 1.
const (
	Table1Default   Table1Scenario = "Default"
	Table1Hermes    Table1Scenario = "Hermes"
	Table1Killing   Table1Scenario = "Killing"
	Table1Dedicated Table1Scenario = "Dedicated"
)

// Table1Scenarios is the rendering order.
var Table1Scenarios = []Table1Scenario{Table1Default, Table1Hermes, Table1Killing, Table1Dedicated}

// Table1Result holds completed-job counts per service and scenario, plus
// the observed memory utilization under Hermes (§5.3.2 reports ~98.5%).
type Table1Result struct {
	Jobs        map[ServiceKind]map[Table1Scenario]int64
	Utilization map[ServiceKind]float64
}

// batchNode builds the co-location node. kswapd runs at a coarser period
// than the micro-benchmark node so a multi-hour window stays tractable;
// the per-tick batch scales to keep the same reclaim bandwidth.
func batchNode(scale Scale, seed uint64) (*kernel.Kernel, *simtime.Scheduler) {
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = scale.NodeMemory
	cfg.SwapBytes = scale.NodeSwap
	cfg.Seed = seed
	cfg.KswapdPeriod = 5 * simtime.Millisecond
	cfg.KswapdBatchPages = 5120
	return kernel.New(s, cfg), s
}

// runTable1Cell co-locates one service with the batch workload under one
// scenario and returns (jobs completed, average memory utilization).
func runTable1Cell(svcKind ServiceKind, scenario Table1Scenario, scale Scale, seed uint64) (int64, float64) {
	k, s := batchNode(scale, seed)
	window := simtime.Duration(scale.BatchHours * float64(simtime.Hour))

	var runner *batch.Runner
	if scenario != Table1Dedicated {
		bcfg := batch.DefaultConfig()
		// Three concurrent KMeans-like jobs: 3 × 8 containers requesting
		// ~40 GB each on the 128 GB node (§5.3.2) — about 94% of capacity,
		// which over-commits once the service's 20-40 GB dataset is added.
		bcfg.TargetBytes = scale.NodeMemory * 15 / 16
		bcfg.InputBytes = scale.NodeMemory / 16
		// Sized so an unobstructed window completes ~216 jobs in 24 h
		// (3 concurrent × 20 min/job), scaling with the window.
		bcfg.WorkDuration = window * 3 / 216
		bcfg.TickPeriod = window / 1000
		if bcfg.TickPeriod > 100*simtime.Millisecond {
			bcfg.TickPeriod = 100 * simtime.Millisecond
		}
		runner = batch.NewRunner(k, bcfg)
		runner.Killing = scenario == Table1Killing
		k.SetOOMHandler(runner.HandleOOM)
	}

	allocKind := KindGlibc
	if scenario == Table1Hermes {
		allocKind = KindHermes
	}
	env := newAllocEnv(k, allocKind, string(svcKind), nil)
	defer env.close()
	if env.reg != nil && runner != nil {
		refresh := simtime.NewPeriodicTask(s, simtime.Second, func(simtime.Time) simtime.Duration {
			for _, pid := range runner.PIDs() {
				env.reg.AddBatch(pid)
			}
			for _, pid := range runner.InputFilePIDs() {
				env.reg.AddBatch(pid)
			}
			return 10 * simtime.Microsecond
		})
		defer refresh.Stop()
	}

	svc := newService(k, svcKind, env, scale, fmt.Sprintf("t1-%s-%s", svcKind, scenario))
	defer svc.Close()

	// The service churns: insertions, reads and deletions keep the stored
	// data oscillating between 1/6 and 1/3 of node memory (the paper's
	// 20–40 GB band on 128 GB).
	lowWater := scale.NodeMemory / 6
	highWater := scale.NodeMemory / 3
	recordBytes := int64(16 << 10)
	queryGap := window / 50000
	var key, oldest int64
	var utilSum float64
	var utilSamples int64

	for s.Now() < simtime.Time(window) {
		key++
		_, _, _ = svc.Query(key, recordBytes)
		if svc.StoredBytes() > highWater {
			for svc.StoredBytes() > lowWater && oldest < key {
				oldest++
				s.Advance(svc.Delete(oldest))
			}
		}
		utilSum += k.UsedFraction()
		utilSamples++
		s.Advance(queryGap)
	}

	var jobs int64
	if runner != nil {
		jobs = runner.Completed
		runner.Stop()
	}
	util := 0.0
	if utilSamples > 0 {
		util = utilSum / float64(utilSamples)
	}
	return jobs, util
}

// Table1 reproduces Table 1 for both services.
func Table1(scale Scale, seed uint64) Table1Result {
	res := Table1Result{
		Jobs:        make(map[ServiceKind]map[Table1Scenario]int64),
		Utilization: make(map[ServiceKind]float64),
	}
	for _, svc := range []ServiceKind{ServiceRedis, ServiceRocksdb} {
		res.Jobs[svc] = make(map[Table1Scenario]int64)
		for _, scenario := range Table1Scenarios {
			jobs, util := runTable1Cell(svc, scenario, scale, seed)
			res.Jobs[svc][scenario] = jobs
			if scenario == Table1Hermes {
				res.Utilization[svc] = util
			}
		}
	}
	return res
}

// Render prints the table in the paper's layout.
func (r Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: throughput of batch jobs (completed jobs per window)\n")
	fmt.Fprintf(&b, "%-10s", "")
	for _, sc := range Table1Scenarios {
		fmt.Fprintf(&b, " %-10s", sc)
	}
	b.WriteString("\n")
	for _, svc := range []ServiceKind{ServiceRedis, ServiceRocksdb} {
		fmt.Fprintf(&b, "%-10s", svc)
		for _, sc := range Table1Scenarios {
			fmt.Fprintf(&b, " %-10d", r.Jobs[svc][sc])
		}
		fmt.Fprintf(&b, " (Hermes node util %.1f%%)\n", r.Utilization[svc]*100)
	}
	b.WriteString("paper: Redis 212/194/123/0; Rocksdb 380/364/267/0; ~98.5% utilization\n")
	return b.String()
}
