// Package stats provides the latency-statistics machinery used by every
// experiment: sample recording, percentile extraction, CDF export in the
// exact shapes the paper plots, and SLO-violation accounting.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Recorder accumulates latency samples. Experiments record at most a few
// million samples, so the recorder keeps the raw values: exact percentiles
// matter more here than memory, and raw samples also let tests assert CDF
// shapes directly.
type Recorder struct {
	name    string
	samples []time.Duration
	sorted  bool
	sum     time.Duration
}

// NewRecorder returns an empty recorder labelled name (used in rendered
// tables, e.g. "Hermes+anon").
func NewRecorder(name string) *Recorder {
	return &Recorder{name: name}
}

// Name returns the recorder's label.
func (r *Recorder) Name() string { return r.name }

// Record appends one latency sample. Negative samples indicate a bug in the
// cost model and panic rather than silently skewing percentiles.
func (r *Recorder) Record(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("stats: negative latency sample %v in %q", d, r.name))
	}
	r.samples = append(r.samples, d)
	r.sorted = false
	r.sum += d
}

// Count returns the number of recorded samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean returns the average sample, or 0 when empty.
func (r *Recorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / time.Duration(len(r.samples))
}

// Total returns the sum of all samples.
func (r *Recorder) Total() time.Duration { return r.sum }

func (r *Recorder) ensureSorted() {
	if r.sorted {
		return
	}
	sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
	r.sorted = true
}

// Percentile returns the q-th percentile (q in [0,100]) using linear
// interpolation between closest ranks, matching numpy's default, which is
// what the paper's plotting scripts would have used.
func (r *Recorder) Percentile(q float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 100 {
		q = 100
	}
	r.ensureSorted()
	if len(r.samples) == 1 {
		return r.samples[0]
	}
	rank := q / 100 * float64(len(r.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return r.samples[lo]
	}
	frac := rank - float64(lo)
	return r.samples[lo] + time.Duration(frac*float64(r.samples[hi]-r.samples[lo]))
}

// Max returns the largest sample, or 0 when empty.
func (r *Recorder) Max() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	return r.samples[len(r.samples)-1]
}

// Min returns the smallest sample, or 0 when empty.
func (r *Recorder) Min() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	return r.samples[0]
}

// ViolationRatio returns the fraction of samples strictly above slo — the
// paper's SLO-violation metric (Figs 13, 14).
func (r *Recorder) ViolationRatio(slo time.Duration) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	// First index with sample > slo.
	idx := sort.Search(len(r.samples), func(i int) bool { return r.samples[i] > slo })
	return float64(len(r.samples)-idx) / float64(len(r.samples))
}

// Summary is the fixed set of statistics the paper reports per series:
// average plus the p75/p90/p95/p99 percentiles (Figs 2, 7d, 8d, 15, 16).
type Summary struct {
	Name  string
	Count int
	Mean  time.Duration
	P50   time.Duration
	P75   time.Duration
	P90   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summarize extracts the paper's standard percentile set.
func (r *Recorder) Summarize() Summary {
	return Summary{
		Name:  r.name,
		Count: len(r.samples),
		Mean:  r.Mean(),
		P50:   r.Percentile(50),
		P75:   r.Percentile(75),
		P90:   r.Percentile(90),
		P95:   r.Percentile(95),
		P99:   r.Percentile(99),
		Max:   r.Max(),
	}
}

// String renders the summary as one table row.
func (s Summary) String() string {
	return fmt.Sprintf("%-24s n=%-8d avg=%-10v p50=%-10v p75=%-10v p90=%-10v p95=%-10v p99=%-10v max=%v",
		s.Name, s.Count, s.Mean, s.P50, s.P75, s.P90, s.P95, s.P99, s.Max)
}

// At returns the statistic named by key ("avg", "p75", ...). Unknown keys
// panic: they indicate a typo in an experiment definition, not runtime input.
func (s Summary) At(key string) time.Duration {
	switch key {
	case "avg", "mean":
		return s.Mean
	case "p50":
		return s.P50
	case "p75":
		return s.P75
	case "p90":
		return s.P90
	case "p95":
		return s.P95
	case "p99":
		return s.P99
	case "max":
		return s.Max
	default:
		panic(fmt.Sprintf("stats: unknown summary key %q", key))
	}
}

// PercentileKeys is the ordering the paper uses on its bar charts.
var PercentileKeys = []string{"avg", "p75", "p90", "p95", "p99"}

// Reduction returns the percentage reduction of new relative to base for the
// given summary key, the y-axis of Figs 7d, 8d, 15, 16. Positive means new
// is faster.
func Reduction(base, new Summary, key string) float64 {
	b := base.At(key)
	if b == 0 {
		return 0
	}
	return (1 - float64(new.At(key))/float64(b)) * 100
}
