// Package stats provides the latency-statistics machinery used by every
// experiment: sample recording, percentile extraction, CDF export in the
// exact shapes the paper plots, and SLO-violation accounting.
package stats

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"
)

// Recorder accumulates latency samples in one of two modes.
//
// Raw mode (NewRecorder) keeps every sample: exact percentiles, and raw
// samples let tests assert CDF shapes directly. It is the right mode for
// the paper's figure-scale experiments, which record at most a few million
// samples.
//
// Streaming mode (NewStreamingRecorder) digests samples into a log-bucketed
// Histogram: O(1) Record, memory bounded by the bucket ceiling regardless
// of sample count, percentiles within ≤1% relative error. It is the right
// mode for fleet-scale cluster runs serving millions of requests.
type Recorder struct {
	name    string
	samples []time.Duration
	sorted  bool
	sum     time.Duration
	hist    *Histogram // non-nil in streaming mode
}

// NewRecorder returns an empty raw-mode recorder labelled name (used in
// rendered tables, e.g. "Hermes+anon").
func NewRecorder(name string) *Recorder {
	return &Recorder{name: name}
}

// NewStreamingRecorder returns an empty streaming (histogram-mode) recorder:
// bounded memory, O(1) Record, ≤1% relative percentile error.
func NewStreamingRecorder(name string) *Recorder {
	return &Recorder{name: name, hist: NewHistogram()}
}

// Name returns the recorder's label.
func (r *Recorder) Name() string { return r.name }

// Streaming reports whether the recorder digests into a histogram instead
// of keeping raw samples.
func (r *Recorder) Streaming() bool { return r.hist != nil }

// Histogram returns the streaming digest, or nil in raw mode.
func (r *Recorder) Histogram() *Histogram { return r.hist }

// Record adds one latency sample. Negative samples indicate a bug in the
// cost model and panic rather than silently skewing percentiles.
func (r *Recorder) Record(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("stats: negative latency sample %v in %q", d, r.name))
	}
	if r.hist != nil {
		r.hist.Record(d)
		return
	}
	r.samples = append(r.samples, d)
	r.sorted = false
	r.sum += d
}

// Merge folds o's samples into r without re-recording them one by one: raw
// recorders append o's sample slice, streaming recorders add bucket counts
// in O(buckets). Cluster runs use it to fold run-local digests into the
// persistent per-shard recorders and to build node/cluster rollups. Both
// recorders must be in the same mode; o is left unchanged.
func (r *Recorder) Merge(o *Recorder) {
	if o == nil {
		return
	}
	if (r.hist != nil) != (o.hist != nil) {
		panic(fmt.Sprintf("stats: merge of mixed-mode recorders %q and %q", r.name, o.name))
	}
	if r.hist != nil {
		r.hist.Merge(o.hist)
		return
	}
	if len(o.samples) == 0 {
		return
	}
	r.samples = append(r.samples, o.samples...)
	r.sorted = false
	r.sum += o.sum
}

// Reserve grows the raw-mode sample buffer to hold n more samples without
// reallocation — callers that know a merge fan-in's total size (the cluster
// engine's canonical fold) avoid the append-doubling copies. No-op in
// streaming mode.
func (r *Recorder) Reserve(n int) {
	if r.hist != nil || n <= 0 {
		return
	}
	r.samples = slices.Grow(r.samples, n)
}

// Count returns the number of recorded samples.
func (r *Recorder) Count() int {
	if r.hist != nil {
		return int(r.hist.Count())
	}
	return len(r.samples)
}

// Mean returns the average sample, or 0 when empty.
func (r *Recorder) Mean() time.Duration {
	n := r.Count()
	if n == 0 {
		return 0
	}
	return r.Total() / time.Duration(n)
}

// Total returns the sum of all samples.
func (r *Recorder) Total() time.Duration {
	if r.hist != nil {
		return r.hist.Sum()
	}
	return r.sum
}

func (r *Recorder) ensureSorted() {
	if r.sorted {
		return
	}
	sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
	r.sorted = true
}

// Percentile returns the q-th percentile (q in [0,100]). Raw mode uses
// linear interpolation between closest ranks, matching numpy's default,
// which is what the paper's plotting scripts would have used; streaming
// mode returns the histogram quantile (≤1% relative error).
func (r *Recorder) Percentile(q float64) time.Duration {
	if r.hist != nil {
		return r.hist.Quantile(q)
	}
	if len(r.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 100 {
		q = 100
	}
	r.ensureSorted()
	if len(r.samples) == 1 {
		return r.samples[0]
	}
	rank := q / 100 * float64(len(r.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return r.samples[lo]
	}
	frac := rank - float64(lo)
	return r.samples[lo] + time.Duration(frac*float64(r.samples[hi]-r.samples[lo]))
}

// Max returns the largest sample, or 0 when empty. Exact in both modes.
func (r *Recorder) Max() time.Duration {
	if r.hist != nil {
		return r.hist.Max()
	}
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	return r.samples[len(r.samples)-1]
}

// Min returns the smallest sample, or 0 when empty. Exact in both modes.
func (r *Recorder) Min() time.Duration {
	if r.hist != nil {
		return r.hist.Min()
	}
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	return r.samples[0]
}

// CountAbove returns how many samples fell strictly above d. Exact in raw
// mode; streaming mode resolves the threshold to bucket granularity.
// Summing counts across recorders gives an exact aggregate ratio, which a
// float ViolationRatio average would not.
func (r *Recorder) CountAbove(d time.Duration) int64 {
	if r.hist != nil {
		return r.hist.CountAbove(d)
	}
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	idx := sort.Search(len(r.samples), func(i int) bool { return r.samples[i] > d })
	return int64(len(r.samples) - idx)
}

// ViolationRatio returns the fraction of samples strictly above slo — the
// paper's SLO-violation metric (Figs 13, 14). Exact in raw mode; streaming
// mode resolves the threshold to bucket granularity.
func (r *Recorder) ViolationRatio(slo time.Duration) float64 {
	if r.hist != nil {
		if r.hist.Count() == 0 {
			return 0
		}
		return float64(r.hist.CountAbove(slo)) / float64(r.hist.Count())
	}
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	// First index with sample > slo.
	idx := sort.Search(len(r.samples), func(i int) bool { return r.samples[i] > slo })
	return float64(len(r.samples)-idx) / float64(len(r.samples))
}

// Summary is the fixed set of statistics the paper reports per series:
// average plus the p75/p90/p95/p99 percentiles (Figs 2, 7d, 8d, 15, 16).
type Summary struct {
	Name  string
	Count int
	Mean  time.Duration
	P50   time.Duration
	P75   time.Duration
	P90   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summarize extracts the paper's standard percentile set.
func (r *Recorder) Summarize() Summary {
	return Summary{
		Name:  r.name,
		Count: r.Count(),
		Mean:  r.Mean(),
		P50:   r.Percentile(50),
		P75:   r.Percentile(75),
		P90:   r.Percentile(90),
		P95:   r.Percentile(95),
		P99:   r.Percentile(99),
		Max:   r.Max(),
	}
}

// String renders the summary as one table row.
func (s Summary) String() string {
	return fmt.Sprintf("%-24s n=%-8d avg=%-10v p50=%-10v p75=%-10v p90=%-10v p95=%-10v p99=%-10v max=%v",
		s.Name, s.Count, s.Mean, s.P50, s.P75, s.P90, s.P95, s.P99, s.Max)
}

// At returns the statistic named by key ("avg", "p75", ...). Unknown keys
// panic: they indicate a typo in an experiment definition, not runtime input.
func (s Summary) At(key string) time.Duration {
	switch key {
	case "avg", "mean":
		return s.Mean
	case "p50":
		return s.P50
	case "p75":
		return s.P75
	case "p90":
		return s.P90
	case "p95":
		return s.P95
	case "p99":
		return s.P99
	case "max":
		return s.Max
	default:
		panic(fmt.Sprintf("stats: unknown summary key %q", key))
	}
}

// PercentileKeys is the ordering the paper uses on its bar charts.
var PercentileKeys = []string{"avg", "p75", "p90", "p95", "p99"}

// Reduction returns the percentage reduction of new relative to base for the
// given summary key, the y-axis of Figs 7d, 8d, 15, 16. Positive means new
// is faster.
func Reduction(base, new Summary, key string) float64 {
	b := base.At(key)
	if b == 0 {
		return 0
	}
	return (1 - float64(new.At(key))/float64(b)) * 100
}
