package stats

import (
	"math"
	"testing"
	"time"
)

// TestQuantileClosedForm checks the interpolated quantile against values
// derivable by hand from small closed-form samples.
func TestQuantileClosedForm(t *testing.T) {
	// The uniform grid 0..100: the q-quantile is exactly 100q.
	grid := make([]float64, 101)
	for i := range grid {
		grid[i] = float64(i)
	}
	for _, q := range []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		if got, want := Quantile(grid, q), 100*q; math.Abs(got-want) > 1e-9 {
			t.Errorf("Quantile(grid, %v) = %v, want %v", q, got, want)
		}
	}
	// Even count interpolates the midpoint; odd count picks the middle.
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2 (input unsorted)", got)
	}
	// Interpolation between ranks: p75 of {10, 20, 30, 40} sits at rank
	// 2.25 → 30 + 0.25·10 = 32.5.
	if got := Quantile([]float64{10, 20, 30, 40}, 0.75); got != 32.5 {
		t.Errorf("p75 = %v, want 32.5", got)
	}
	// Degenerate inputs.
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("singleton quantile = %v, want 7", got)
	}
}

// TestQuantileMatchesRecorder pins the convention match: replica-level
// Quantile and sample-level Recorder.Percentile implement the same
// interpolation rule.
func TestQuantileMatchesRecorder(t *testing.T) {
	vals := []float64{3, 141, 59, 26, 535, 89, 79, 32, 384, 626}
	rec := NewRecorder("conv")
	for _, v := range vals {
		rec.Record(time.Duration(v))
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		want := float64(rec.Percentile(q * 100))
		got := Quantile(vals, q)
		if math.Abs(got-want) > 1 { // Percentile truncates to whole ns
			t.Errorf("q=%v: Quantile=%v Recorder.Percentile=%v", q, got, want)
		}
	}
}

func TestMedianSpread(t *testing.T) {
	med, lo, hi := MedianSpread([]float64{5, 1, 9, 3})
	if med != 4 || lo != 1 || hi != 9 {
		t.Errorf("MedianSpread = (%v, %v, %v), want (4, 1, 9)", med, lo, hi)
	}
	if med, lo, hi := MedianSpread(nil); med != 0 || lo != 0 || hi != 0 {
		t.Errorf("empty MedianSpread = (%v, %v, %v), want zeros", med, lo, hi)
	}
}

func TestMedianDuration(t *testing.T) {
	ds := []time.Duration{40 * time.Millisecond, 10 * time.Millisecond, 30 * time.Millisecond}
	if got := MedianDuration(ds); got != 30*time.Millisecond {
		t.Errorf("MedianDuration = %v, want 30ms", got)
	}
	even := []time.Duration{10, 20}
	if got := MedianDuration(even); got != 15 {
		t.Errorf("even MedianDuration = %v, want 15ns", got)
	}
}

// TestBootstrapCI checks the interval's defining properties on a known
// distribution: deterministic under a fixed seed, contains the sample
// median, and tightens as the sample grows (the 1/√n contraction every
// closed-form CI shares).
func TestBootstrapCI(t *testing.T) {
	// An exponential(1) sample via inverse transform on a fixed splitmix64
	// stream: median ln 2 ≈ 0.693.
	gen := func(n int, seed uint64) []float64 {
		state := seed
		xs := make([]float64, n)
		for i := range xs {
			u := float64(splitmix64(&state)>>11) / float64(1<<53)
			xs[i] = -math.Log(1 - u)
		}
		return xs
	}

	small := gen(30, 7)
	lo1, hi1 := BootstrapCI(small, 0.95, 2000, 42)
	lo2, hi2 := BootstrapCI(small, 0.95, 2000, 42)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("bootstrap not deterministic: (%v,%v) vs (%v,%v)", lo1, hi1, lo2, hi2)
	}
	med := Median(small)
	if !(lo1 <= med && med <= hi1) {
		t.Errorf("CI [%v, %v] does not contain the sample median %v", lo1, hi1, med)
	}
	if !(lo1 < hi1) {
		t.Errorf("CI [%v, %v] is degenerate on a 30-sample input", lo1, hi1)
	}
	// True median ln 2 should be inside a 95% CI of a well-behaved sample
	// (this specific seed is pinned, so the assertion cannot flake).
	if ln2 := math.Ln2; !(lo1 <= ln2 && ln2 <= hi1) {
		t.Errorf("CI [%v, %v] misses the true median ln2=%v for this pinned sample", lo1, hi1, ln2)
	}

	big := gen(3000, 7)
	blo, bhi := BootstrapCI(big, 0.95, 2000, 42)
	if (bhi - blo) >= (hi1 - lo1) {
		t.Errorf("CI width did not shrink with sample size: n=30 width %v vs n=3000 width %v",
			hi1-lo1, bhi-blo)
	}

	// Degenerate inputs collapse to the median.
	if lo, hi := BootstrapCI([]float64{3}, 0.95, 100, 1); lo != 3 || hi != 3 {
		t.Errorf("singleton CI = [%v, %v], want [3, 3]", lo, hi)
	}
	if lo, hi := BootstrapCI(nil, 0.95, 100, 1); lo != 0 || hi != 0 {
		t.Errorf("empty CI = [%v, %v], want [0, 0]", lo, hi)
	}
}
