package stats

import (
	"fmt"
	"math/bits"
	"time"
)

// The histogram uses HDR-style log-linear buckets: values below
// histLinearMax land in exact unit-wide buckets; above it, each power of
// two is split into histSubCount equal sub-buckets. A value's bucket is
// therefore never wider than value/histSubCount, so reporting the bucket
// midpoint bounds the relative quantile error by 1/(2*histSubCount) ≈
// 0.39% — comfortably inside the ≤1% budget the cluster engine promises.
const (
	histSubBits   = 7
	histSubCount  = 1 << histSubBits       // sub-buckets per power of two
	histLinearMax = 1 << (histSubBits + 1) // below this, buckets are exact

	// histMaxBuckets bounds the bucket array for any int64 duration:
	// the linear region plus one sub-bucket row per exponent up to 2^62.
	histMaxBuckets = histLinearMax + (62-histSubBits)*histSubCount
)

// Histogram is a streaming latency digest: O(1) Record into a bounded
// bucket array, O(buckets) quantile extraction, O(buckets) merge. It holds
// no per-sample state, which is what lets a multi-million-request cluster
// run record latencies without per-sample memory growth or terminal
// O(n log n) sorts. Count, Sum, Min and Max are tracked exactly.
type Histogram struct {
	counts []int64 // grown on demand, never beyond histMaxBuckets
	count  int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histBucket maps a non-negative duration to its bucket index.
func histBucket(d time.Duration) int {
	v := int64(d)
	if v < histLinearMax {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= histSubBits+1
	sub := int(uint64(v)>>(uint(exp-histSubBits))) & (histSubCount - 1)
	return histLinearMax + (exp-histSubBits-1)*histSubCount + sub
}

// histValue returns the representative duration of a bucket: exact in the
// linear region, the bucket midpoint above it.
func histValue(idx int) time.Duration {
	if idx < histLinearMax {
		return time.Duration(idx)
	}
	rel := idx - histLinearMax
	exp := histSubBits + 1 + rel/histSubCount
	sub := int64(rel % histSubCount)
	lo := int64(1)<<uint(exp) + sub<<uint(exp-histSubBits)
	return time.Duration(lo + int64(1)<<uint(exp-histSubBits-1))
}

// Record adds one sample. Negative samples panic, matching Recorder.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("stats: negative latency sample %v in histogram", d))
	}
	idx := histBucket(d)
	if idx >= len(h.counts) {
		h.grow(idx)
	}
	h.counts[idx]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

func (h *Histogram) grow(idx int) {
	// Grow at least geometrically so a slowly rising maximum doesn't
	// trigger a copy per new bucket; the ceiling keeps memory bounded.
	n := idx + 1
	if d := 2 * len(h.counts); d > n {
		n = d
	}
	if n > histMaxBuckets {
		n = histMaxBuckets
	}
	if n < idx+1 {
		panic(fmt.Sprintf("stats: histogram bucket %d beyond ceiling %d", idx, histMaxBuckets))
	}
	grown := make([]int64, n)
	copy(grown, h.counts)
	h.counts = grown
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Min and Max return the exact extrema (0 when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() time.Duration { return h.max }

// Buckets returns the allocated bucket count (bounded by MaxBuckets).
func (h *Histogram) Buckets() int { return len(h.counts) }

// MaxBuckets is the hard ceiling on a histogram's bucket array — its
// memory bound, independent of how many samples are recorded.
func MaxBuckets() int { return histMaxBuckets }

// Quantile returns the q-th percentile (q in [0,100]) as the representative
// value of the bucket holding that rank, clamped to the exact observed
// [min, max]. Relative error vs the exact sample is ≤ 1/(2·128) ≈ 0.4%.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 100 {
		return h.max
	}
	rank := int64(q / 100 * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for idx, c := range h.counts {
		cum += c
		if cum >= rank {
			v := histValue(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// CountAbove returns how many samples fell strictly above d, to bucket
// resolution: samples sharing d's bucket are counted as not above, so the
// result can undercount by at most one bucket's population.
func (h *Histogram) CountAbove(d time.Duration) int64 {
	if d < 0 {
		return h.count
	}
	var above int64
	for idx := histBucket(d) + 1; idx < len(h.counts); idx++ {
		above += h.counts[idx]
	}
	return above
}

// Reset empties the histogram while keeping its bucket array allocated —
// the windowed-readout primitive: a controller records a window's samples,
// reads a quantile at the window boundary, and resets for the next window
// without reallocating.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Clone returns an independent copy of the histogram — the snapshot
// primitive of windowed collectors that must keep each closed window's
// digest mergeable after the live histogram resets for the next window.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{count: h.count, sum: h.sum, min: h.min, max: h.max}
	if len(h.counts) > 0 {
		c.counts = append([]int64(nil), h.counts...)
	}
	return c
}

// Merge adds o's samples into h in O(buckets).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		h.grow(len(o.counts) - 1)
	}
	for idx, c := range o.counts {
		h.counts[idx] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}
