package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// zipfLatencies draws a heavy-tailed latency population shaped like the
// cluster workload's: a log-normal body (the jittered service times) with a
// Zipf-ranked spike tail (queueing behind reclaim stalls).
func zipfLatencies(n int, seed uint64) []time.Duration {
	rng := rand.New(rand.NewPCG(seed, seed))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	out := make([]time.Duration, n)
	for i := range out {
		body := 3000 * math.Exp(rng.NormFloat64()*0.4) // ~3µs log-normal body
		spike := float64(zipf.Uint64())                // rare large queueing spikes
		out[i] = time.Duration(body + 50*spike)
	}
	return out
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		exact := NewRecorder("exact")
		hist := NewStreamingRecorder("hist")
		for _, d := range zipfLatencies(200_000, seed) {
			exact.Record(d)
			hist.Record(d)
		}
		for _, q := range []float64{10, 25, 50, 75, 90, 95, 99, 99.9} {
			e, h := exact.Percentile(q), hist.Percentile(q)
			relErr := math.Abs(float64(h-e)) / float64(e)
			if relErr > 0.01 {
				t.Errorf("seed %d p%v: exact=%v hist=%v rel err %.3f%% > 1%%",
					seed, q, e, h, relErr*100)
			}
		}
		if hist.Min() != exact.Min() || hist.Max() != exact.Max() {
			t.Errorf("seed %d: extrema not exact: hist [%v,%v] vs raw [%v,%v]",
				seed, hist.Min(), hist.Max(), exact.Min(), exact.Max())
		}
		if hist.Total() != exact.Total() || hist.Count() != exact.Count() {
			t.Errorf("seed %d: sum/count not exact", seed)
		}
	}
}

func TestHistogramMemoryBounded(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 1_000_000; i++ {
		h.Record(time.Duration(rng.Int64N(int64(10 * time.Second))))
	}
	if h.Buckets() > MaxBuckets() {
		t.Fatalf("histogram grew to %d buckets, ceiling is %d", h.Buckets(), MaxBuckets())
	}
	if MaxBuckets() > 8192 {
		t.Fatalf("bucket ceiling %d is larger than the documented ~64 KB bound", MaxBuckets())
	}
	if h.Count() != 1_000_000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramExtremeValues(t *testing.T) {
	h := NewHistogram()
	vals := []time.Duration{0, 1, 255, 256, 257, 1 << 40, math.MaxInt64}
	for _, v := range vals {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != math.MaxInt64 {
		t.Fatalf("extrema [%v,%v]", h.Min(), h.Max())
	}
	// Small values land in exact unit buckets.
	hh := NewHistogram()
	hh.Record(137)
	if got := hh.Quantile(50); got != 137 {
		t.Fatalf("linear-region quantile = %v, want exactly 137", got)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to that bucket, and
	// bucket indices must be monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 100, 255, 256, 300, 511, 512, 1 << 13, 1 << 20, 1 << 35, 1 << 55} {
		idx := histBucket(time.Duration(v))
		if idx <= prev && v != 0 {
			t.Fatalf("bucket index not monotone at %d: %d <= %d", v, idx, prev)
		}
		prev = idx
		if back := histBucket(histValue(idx)); back != idx {
			t.Fatalf("value %d: bucket %d representative %v maps to bucket %d",
				v, idx, histValue(idx), back)
		}
	}
}

func TestHistogramMergeMatchesCombinedRecording(t *testing.T) {
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for i, d := range zipfLatencies(50_000, 9) {
		all.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged histogram header differs from combined recording")
	}
	for _, q := range []float64{1, 50, 99, 99.9} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("p%v: merged %v != combined %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestHistogramViolationRatioApproximation(t *testing.T) {
	r := NewStreamingRecorder("v")
	for i := 1; i <= 1000; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	// Threshold at 500µs: exact answer 0.5; bucket resolution admits ≤1/128
	// of slack on the boundary bucket.
	got := r.ViolationRatio(500 * time.Microsecond)
	if got < 0.48 || got > 0.52 {
		t.Fatalf("ViolationRatio = %v, want ≈0.5", got)
	}
}

func TestRecorderMergeRaw(t *testing.T) {
	a, b, all := NewRecorder("a"), NewRecorder("b"), NewRecorder("all")
	for i, d := range zipfLatencies(10_000, 5) {
		all.Record(d)
		if i%3 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Total() != all.Total() {
		t.Fatal("merged raw recorder count/total differ from combined recording")
	}
	for _, q := range []float64{0, 25, 50, 99, 100} {
		if a.Percentile(q) != all.Percentile(q) {
			t.Fatalf("p%v: merged %v != combined %v", q, a.Percentile(q), all.Percentile(q))
		}
	}
	if a.Summarize().At("p99") != all.Summarize().At("p99") {
		t.Fatal("merged summary differs")
	}
}

func TestRecorderMergeMixedModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-mode merge must panic")
		}
	}()
	NewRecorder("raw").Merge(NewStreamingRecorder("hist"))
}

func TestStreamingRecorderSummaryAndCDF(t *testing.T) {
	r := NewStreamingRecorder("s")
	for i := 1; i <= 10_000; i++ {
		r.Record(time.Duration(i))
	}
	s := r.Summarize()
	if s.Count != 10_000 || s.Name != "s" {
		t.Fatalf("summary header %+v", s)
	}
	if !(s.P50 <= s.P75 && s.P75 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
	cdf := r.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("CDF returned %d points", len(cdf))
	}
	if cdf[9].Latency != r.Max() {
		t.Fatalf("CDF tail %v != max %v", cdf[9].Latency, r.Max())
	}
	if tail := r.TailCDF(0.9, 5); len(tail) != 5 {
		t.Fatalf("TailCDF returned %d points", len(tail))
	}
	// A single-point tail must sit at `from`, not at a NaN fraction.
	for _, rec := range []*Recorder{r, NewRecorder("raw1")} {
		if rec.Count() == 0 {
			rec.Record(7)
		}
		one := rec.TailCDF(0.9, 1)
		if len(one) != 1 || one[0].Fraction != 0.9 {
			t.Fatalf("TailCDF(0.9, 1) = %+v, want one point at fraction 0.9", one)
		}
	}
}

func BenchmarkRecorderRaw(b *testing.B) {
	r := NewRecorder("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(time.Duration(i%100000) * time.Nanosecond)
	}
	if b.N > 1 {
		_ = r.Summarize()
	}
}

func BenchmarkRecorderStreaming(b *testing.B) {
	r := NewStreamingRecorder("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(time.Duration(i%100000) * time.Nanosecond)
	}
	if b.N > 1 {
		_ = r.Summarize()
	}
}

// TestHistogramResetReuseAfterMerge pins the windowed-readout contract the
// control plane's per-node trackers rely on: a histogram that absorbed
// another via Merge (growing its bucket array) and was then Reset must
// record the next window exactly like a histogram that never saw the first
// one — same quantiles, extrema, sum and count — while keeping the grown
// bucket array allocated.
func TestHistogramResetReuseAfterMerge(t *testing.T) {
	reused := NewHistogram()
	for _, d := range zipfLatencies(10_000, 5) {
		reused.Record(d)
	}
	other := NewHistogram()
	other.Record(10 * time.Second) // force bucket growth through Merge
	other.Record(time.Microsecond)
	reused.Merge(other)
	grown := reused.Buckets()
	if grown == 0 {
		t.Fatal("merge left no buckets to reuse")
	}

	reused.Reset()
	if reused.Count() != 0 || reused.Sum() != 0 || reused.Min() != 0 || reused.Max() != 0 {
		t.Fatalf("reset left residue: count=%d sum=%v min=%v max=%v",
			reused.Count(), reused.Sum(), reused.Min(), reused.Max())
	}
	if reused.Buckets() != grown {
		t.Fatalf("reset shrank the bucket array: %d buckets, had %d", reused.Buckets(), grown)
	}

	fresh := NewHistogram()
	for _, d := range zipfLatencies(20_000, 9) {
		reused.Record(d)
		fresh.Record(d)
	}
	for _, q := range []float64{0, 50, 90, 99, 100} {
		if r, f := reused.Quantile(q), fresh.Quantile(q); r != f {
			t.Errorf("p%v differs after reset reuse: reused=%v fresh=%v", q, r, f)
		}
	}
	if reused.Count() != fresh.Count() || reused.Sum() != fresh.Sum() ||
		reused.Min() != fresh.Min() || reused.Max() != fresh.Max() {
		t.Errorf("digest differs after reset reuse: reused {n=%d sum=%v min=%v max=%v}, fresh {n=%d sum=%v min=%v max=%v}",
			reused.Count(), reused.Sum(), reused.Min(), reused.Max(),
			fresh.Count(), fresh.Sum(), fresh.Min(), fresh.Max())
	}
}
