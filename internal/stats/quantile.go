package stats

import (
	"math"
	"sort"
	"time"
)

// This file is the replica-statistics toolkit the campaign harness (and the
// bench harnesses' median-of-reps discipline) build on: quantiles over small
// float samples, median-with-spread, and a deterministic bootstrap
// confidence interval for the median. Everything here is a pure function of
// its inputs — BootstrapCI draws its resamples from an explicit seed — so
// campaign reports stay bit-reproducible.

// Quantile returns the q-quantile (q in [0, 1]) of xs using linear
// interpolation between closest ranks — the same numpy-default rule
// Recorder.Percentile applies to raw latency samples, so replica-level and
// sample-level quantiles agree on convention. xs need not be sorted; it is
// left unmodified. Returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	switch len(xs) {
	case 0:
		return 0
	case 1:
		return xs[0]
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted is Quantile on an already-sorted slice.
func quantileSorted(s []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	return s[lo] + (rank-float64(lo))*(s[hi]-s[lo])
}

// Median returns the median of xs (the 0.5 Quantile): the middle element
// for odd counts, the midpoint of the two middle elements for even counts.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MedianSpread returns the median, minimum and maximum of xs — the bench
// harnesses' median-of-reps discipline: the median is the committed number,
// the spread makes a noise-dominated median visible instead of letting it
// masquerade as signal. Returns zeros for an empty slice.
func MedianSpread(xs []float64) (med, lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, 0.5), s[0], s[len(s)-1]
}

// MedianDuration returns the median of ds under the same convention as
// Median (midpoint interpolation on even counts, rounded to the nearest
// nanosecond). The wall-clock flavour of the median-of-reps discipline.
func MedianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return time.Duration(math.Round(Median(xs)))
}

// splitmix64 advances one step of the splitmix64 sequence — the same
// generator family randgen's stream splitting uses, inlined here so stats
// keeps zero intra-repo dependencies. It is more than adequate for
// bootstrap index draws.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// BootstrapCI returns a conf-level (e.g. 0.95) percentile-bootstrap
// confidence interval for the median of xs: resamples draws of len(xs)
// indices with replacement, each resample's median, and the
// ((1−conf)/2, 1−(1−conf)/2) quantiles of those medians. The draw sequence
// is a pure function of seed, so the interval is bit-reproducible — the
// property campaign reports pin. With one sample (or resamples <= 0) the
// interval degenerates to [median, median].
func BootstrapCI(xs []float64, conf float64, resamples int, seed uint64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	med := Median(xs)
	if len(xs) == 1 || resamples <= 0 {
		return med, med
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	state := seed
	meds := make([]float64, resamples)
	resample := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range resample {
			// Modulo bias over a 64-bit draw is negligible for any
			// realistic replica count.
			resample[i] = xs[splitmix64(&state)%uint64(len(xs))]
		}
		meds[r] = Median(resample)
	}
	sort.Float64s(meds)
	alpha := (1 - conf) / 2
	return quantileSorted(meds, alpha), quantileSorted(meds, 1-alpha)
}
