package stats

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder("x")
	if r.Count() != 0 || r.Mean() != 0 || r.Max() != 0 || r.Min() != 0 {
		t.Fatal("empty recorder must report zeros")
	}
	for _, d := range []time.Duration{10, 20, 30} {
		r.Record(d)
	}
	if r.Count() != 3 {
		t.Fatalf("count = %d", r.Count())
	}
	if r.Mean() != 20 {
		t.Fatalf("mean = %v, want 20", r.Mean())
	}
	if r.Min() != 10 || r.Max() != 30 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.Total() != 60 {
		t.Fatalf("total = %v", r.Total())
	}
}

func TestRecorderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative sample must panic")
		}
	}()
	NewRecorder("x").Record(-1)
}

func TestPercentileExactValues(t *testing.T) {
	r := NewRecorder("x")
	// 1..100 → p-th percentile interpolates cleanly.
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i))
	}
	tests := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1},
		{100, 100},
		{50, 50}, // rank 49.5 → 50.5 truncated by Duration math
		{99, 99},
	}
	for _, tc := range tests {
		got := r.Percentile(tc.q)
		if got < tc.want-1 || got > tc.want+1 {
			t.Errorf("p%v = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	r := NewRecorder("x")
	r.Record(42)
	for _, q := range []float64{0, 50, 99, 100} {
		if got := r.Percentile(q); got != 42 {
			t.Fatalf("p%v = %v, want 42", q, got)
		}
	}
}

func TestPercentileClampsQ(t *testing.T) {
	r := NewRecorder("x")
	r.Record(1)
	r.Record(2)
	if r.Percentile(-5) != 1 {
		t.Fatal("q<0 must clamp to min")
	}
	if r.Percentile(150) != 2 {
		t.Fatal("q>100 must clamp to max")
	}
}

func TestRecordAfterPercentileKeepsCorrectness(t *testing.T) {
	r := NewRecorder("x")
	r.Record(10)
	_ = r.Percentile(50) // forces a sort
	r.Record(5)          // must invalidate sorted state
	if r.Min() != 5 {
		t.Fatalf("min = %v, want 5", r.Min())
	}
}

func TestViolationRatio(t *testing.T) {
	r := NewRecorder("x")
	for i := 1; i <= 10; i++ {
		r.Record(time.Duration(i * 100))
	}
	tests := []struct {
		slo  time.Duration
		want float64
	}{
		{1000, 0},  // nothing above max
		{0, 1},     // everything above zero
		{500, 0.5}, // 600..1000 violate
		{550, 0.5}, // boundary between samples
		{100, 0.9}, // only the first meets it (ties do not violate)
		{99, 1.0},  // all violate
		{999, 0.1}, // only 1000 violates
	}
	for _, tc := range tests {
		if got := r.ViolationRatio(tc.slo); got != tc.want {
			t.Errorf("ViolationRatio(%v) = %v, want %v", tc.slo, got, tc.want)
		}
	}
}

func TestSummaryAtAndKeys(t *testing.T) {
	r := NewRecorder("series")
	for i := 1; i <= 1000; i++ {
		r.Record(time.Duration(i))
	}
	s := r.Summarize()
	if s.Name != "series" || s.Count != 1000 {
		t.Fatalf("summary header wrong: %+v", s)
	}
	for _, key := range PercentileKeys {
		if s.At(key) <= 0 {
			t.Errorf("At(%q) = %v, want > 0", key, s.At(key))
		}
	}
	if s.At("p50") != s.P50 || s.At("max") != s.Max {
		t.Fatal("At() disagrees with fields")
	}
	// Percentiles must be monotone.
	if !(s.P50 <= s.P75 && s.P75 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
}

func TestSummaryAtUnknownKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown key must panic")
		}
	}()
	Summary{}.At("p12")
}

func TestReduction(t *testing.T) {
	base := Summary{Mean: 100}
	improved := Summary{Mean: 60}
	if got := Reduction(base, improved, "avg"); got != 40 {
		t.Fatalf("reduction = %v, want 40", got)
	}
	worse := Summary{Mean: 150}
	if got := Reduction(base, worse, "avg"); got != -50 {
		t.Fatalf("reduction = %v, want -50", got)
	}
	if got := Reduction(Summary{}, improved, "avg"); got != 0 {
		t.Fatalf("reduction with zero base = %v, want 0", got)
	}
}

// Property: percentile is monotone in q and bounded by [min, max].
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder("p")
		for _, v := range raw {
			r.Record(time.Duration(v))
		}
		lo, hi := float64(qa%101), float64(qb%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		pa, pb := r.Percentile(lo), r.Percentile(hi)
		return pa <= pb && pa >= r.Min() && pb <= r.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ViolationRatio equals the brute-force count for random data.
func TestViolationRatioMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 50; trial++ {
		r := NewRecorder("v")
		var vals []time.Duration
		n := 1 + rng.IntN(200)
		for i := 0; i < n; i++ {
			d := time.Duration(rng.IntN(1000))
			vals = append(vals, d)
			r.Record(d)
		}
		slo := time.Duration(rng.IntN(1000))
		var above int
		for _, v := range vals {
			if v > slo {
				above++
			}
		}
		want := float64(above) / float64(n)
		if got := r.ViolationRatio(slo); got != want {
			t.Fatalf("trial %d: ViolationRatio(%v) = %v, want %v", trial, slo, got, want)
		}
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder("m")
		for _, v := range raw {
			r.Record(time.Duration(v))
		}
		return r.Mean() >= r.Min() && r.Mean() <= r.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryStringContainsName(t *testing.T) {
	r := NewRecorder("Hermes+anon")
	r.Record(time.Microsecond)
	s := r.Summarize().String()
	if !strings.Contains(s, "Hermes+anon") {
		t.Fatalf("summary string %q lacks series name", s)
	}
}
