package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// CDFPoint is one point of an empirical CDF: F(Latency) = Fraction.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF returns the empirical CDF evaluated at n evenly spaced fractions in
// (0, 1]. This matches how the paper plots Figures 3, 7, 8, 11, 12: latency
// on the x-axis, cumulative fraction on the y-axis.
func (r *Recorder) CDF(n int) []CDFPoint {
	if n <= 0 || r.Count() == 0 {
		return nil
	}
	if r.hist != nil {
		points := make([]CDFPoint, 0, n)
		for i := 1; i <= n; i++ {
			frac := float64(i) / float64(n)
			points = append(points, CDFPoint{Latency: r.hist.Quantile(frac * 100), Fraction: frac})
		}
		return points
	}
	r.ensureSorted()
	points := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		idx := int(frac*float64(len(r.samples))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(r.samples) {
			idx = len(r.samples) - 1
		}
		points = append(points, CDFPoint{Latency: r.samples[idx], Fraction: frac})
	}
	return points
}

// TailCDF returns CDF points covering only the [from, 1] fraction range,
// the zoomed tail view of Figures 11 and 12 (0.90–0.99).
func (r *Recorder) TailCDF(from float64, n int) []CDFPoint {
	if n <= 0 || r.Count() == 0 || from < 0 || from >= 1 {
		return nil
	}
	span := float64(n - 1)
	if span == 0 {
		span = 1 // a single point sits at `from`, not at NaN
	}
	if r.hist != nil {
		points := make([]CDFPoint, 0, n)
		for i := 0; i < n; i++ {
			frac := from + (1-from)*float64(i)/span
			if frac > 1 {
				frac = 1
			}
			points = append(points, CDFPoint{Latency: r.hist.Quantile(frac * 100), Fraction: frac})
		}
		return points
	}
	r.ensureSorted()
	points := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		frac := from + (1-from)*float64(i)/span
		if frac > 1 {
			frac = 1
		}
		idx := int(frac*float64(len(r.samples))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(r.samples) {
			idx = len(r.samples) - 1
		}
		points = append(points, CDFPoint{Latency: r.samples[idx], Fraction: frac})
	}
	return points
}

// RenderCDFTable renders one or more CDFs side by side as a fixed-fraction
// table, the textual equivalent of the paper's CDF figures. All series
// should come from the same experiment so the fractions line up.
func RenderCDFTable(title string, fractions []float64, series map[string][]CDFPoint, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s", "CDF")
	for _, name := range order {
		fmt.Fprintf(&b, " %-14s", name)
	}
	b.WriteString("\n")
	for _, frac := range fractions {
		fmt.Fprintf(&b, "%-8.3f", frac)
		for _, name := range order {
			points := series[name]
			fmt.Fprintf(&b, " %-14v", lookupCDF(points, frac))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// lookupCDF finds the latency at the smallest fraction >= frac.
func lookupCDF(points []CDFPoint, frac float64) time.Duration {
	idx := sort.Search(len(points), func(i int) bool { return points[i].Fraction >= frac })
	if idx >= len(points) {
		if len(points) == 0 {
			return 0
		}
		return points[len(points)-1].Latency
	}
	return points[idx].Latency
}
