package stats

import (
	"strings"
	"testing"
	"time"
)

func TestCDFShape(t *testing.T) {
	r := NewRecorder("x")
	for i := 1; i <= 1000; i++ {
		r.Record(time.Duration(i))
	}
	points := r.CDF(100)
	if len(points) != 100 {
		t.Fatalf("len = %d, want 100", len(points))
	}
	// Fractions strictly increase, latencies nondecreasing.
	for i := 1; i < len(points); i++ {
		if points[i].Fraction <= points[i-1].Fraction {
			t.Fatal("fractions must strictly increase")
		}
		if points[i].Latency < points[i-1].Latency {
			t.Fatal("latencies must be nondecreasing")
		}
	}
	last := points[len(points)-1]
	if last.Fraction != 1.0 || last.Latency != 1000 {
		t.Fatalf("last point = %+v, want (1000, 1.0)", last)
	}
}

func TestCDFEmptyAndDegenerate(t *testing.T) {
	r := NewRecorder("x")
	if pts := r.CDF(10); pts != nil {
		t.Fatal("CDF of empty recorder must be nil")
	}
	r.Record(5)
	if pts := r.CDF(0); pts != nil {
		t.Fatal("CDF with n=0 must be nil")
	}
	pts := r.CDF(4)
	for _, p := range pts {
		if p.Latency != 5 {
			t.Fatalf("single-sample CDF latency = %v, want 5", p.Latency)
		}
	}
}

func TestTailCDF(t *testing.T) {
	r := NewRecorder("x")
	for i := 1; i <= 1000; i++ {
		r.Record(time.Duration(i))
	}
	points := r.TailCDF(0.90, 10)
	if len(points) != 10 {
		t.Fatalf("len = %d, want 10", len(points))
	}
	if points[0].Fraction != 0.90 {
		t.Fatalf("first fraction = %v, want 0.90", points[0].Fraction)
	}
	if points[len(points)-1].Fraction != 1.0 {
		t.Fatalf("last fraction = %v, want 1.0", points[len(points)-1].Fraction)
	}
	if points[0].Latency < 890 || points[0].Latency > 910 {
		t.Fatalf("p90 latency = %v, want ~900", points[0].Latency)
	}
}

func TestTailCDFInvalidArgs(t *testing.T) {
	r := NewRecorder("x")
	r.Record(1)
	if r.TailCDF(-0.1, 5) != nil || r.TailCDF(1.0, 5) != nil || r.TailCDF(0.5, 0) != nil {
		t.Fatal("invalid TailCDF args must return nil")
	}
}

func TestRenderCDFTable(t *testing.T) {
	r1 := NewRecorder("Hermes")
	r2 := NewRecorder("Glibc")
	for i := 1; i <= 100; i++ {
		r1.Record(time.Duration(i))
		r2.Record(time.Duration(i * 2))
	}
	series := map[string][]CDFPoint{
		"Hermes": r1.CDF(100),
		"Glibc":  r2.CDF(100),
	}
	out := RenderCDFTable("Fig X", []float64{0.5, 0.99}, series, []string{"Hermes", "Glibc"})
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "Hermes") || !strings.Contains(out, "Glibc") {
		t.Fatalf("table missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // title, header, 2 fraction rows -> actually 4
		if len(lines) != 4 {
			t.Fatalf("table has %d lines:\n%s", len(lines), out)
		}
	}
}

func TestLookupCDF(t *testing.T) {
	points := []CDFPoint{{Latency: 10, Fraction: 0.5}, {Latency: 20, Fraction: 1.0}}
	if got := lookupCDF(points, 0.4); got != 10 {
		t.Fatalf("lookup 0.4 = %v, want 10", got)
	}
	if got := lookupCDF(points, 0.9); got != 20 {
		t.Fatalf("lookup 0.9 = %v, want 20", got)
	}
	if got := lookupCDF(points, 1.5); got != 20 {
		t.Fatalf("lookup beyond end = %v, want last latency", got)
	}
	if got := lookupCDF(nil, 0.5); got != 0 {
		t.Fatalf("lookup empty = %v, want 0", got)
	}
}
