package cluster

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// adaptivePolicies declares all four control-plane actions, the full
// playbook the chaos matrix must keep deterministic.
func adaptivePolicies() *workload.Policies {
	return &workload.Policies{
		Shed:      &workload.ShedPolicy{Step: 0.25, Max: 0.9},
		Batch:     &workload.BatchPolicy{Step: 0.25, Min: 0.25},
		Allocator: &workload.AllocatorPolicy{Conservative: 1.0},
		Watermark: &workload.WatermarkPolicy{Step: 0.5, Max: 3},
	}
}

// controlPlaneScenario is the chaos-matrix scenario: a batch co-tenant to
// retarget, a degrade that breaches the SLO, a fault window over the
// breach, and a kill/restore cycle on a second node — all while every
// policy is armed.
func controlPlaneScenario(degrade, kill int) workload.Scenario {
	classes := []workload.TrafficClass{
		{Name: "point", Rate: 120_000, Keys: 6_000, ReadFraction: 0.5, ValueBytes: 4 << 10,
			Resilience: &workload.Resilience{Timeout: 60 * simtime.Microsecond, Retries: 1,
				Backoff: 30 * simtime.Microsecond, Jitter: 0.2, Hedge: 40 * simtime.Microsecond}},
	}
	return workload.Scenario{
		Name: "control-plane-chaos",
		Seed: 13,
		Phases: []workload.Phase{
			{Name: "steady", Duration: 30 * simtime.Millisecond, Classes: classes},
			{Name: "brownout", Duration: 90 * simtime.Millisecond, Classes: classes},
			{Name: "recovered", Duration: 30 * simtime.Millisecond, Classes: classes},
		},
		Events: []workload.Event{
			{At: 10 * simtime.Millisecond, Node: -1, Kind: workload.EventBatchStart,
				Batch: &batch.Config{Jobs: 2, ContainersPerJob: 4, TargetBytes: 256 << 20,
					InputBytes: 32 << 20, WorkDuration: 80 * simtime.Millisecond,
					RampTicks: 4, TickPeriod: 5 * simtime.Millisecond}},
			{At: 30 * simtime.Millisecond, Node: degrade, Kind: workload.EventDegradeNode, Factor: 12},
			{At: 40 * simtime.Millisecond, Node: degrade, Kind: workload.EventFaultWindow,
				ErrorRate: 0.25, Duration: 40 * simtime.Millisecond},
			{At: 60 * simtime.Millisecond, Node: kill, Kind: workload.EventKillNode},
			{At: 90 * simtime.Millisecond, Node: kill, Kind: workload.EventRestoreNode},
			{At: 120 * simtime.Millisecond, Node: degrade, Kind: workload.EventHealNode},
		},
		SLO:      &workload.SLO{P99: 100 * simtime.Microsecond, Window: 5 * simtime.Millisecond},
		Policies: adaptivePolicies(),
	}
}

// TestControlPlaneEngineIdentity locks the determinism claim in the regime
// that stresses it most: every policy armed inside the degrade × fault ×
// kill/restore chaos matrix. Both engines must produce DeepEqual reports —
// including the controller action logs — and replaying the seed on the
// same engine must reproduce the run bit for bit.
func TestControlPlaneEngineIdentity(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocHermes)
	degrade := primaryHeavyNode(cfg)
	kill := (degrade + 1) % cfg.Nodes
	scn := controlPlaneScenario(degrade, kill)

	par := runScenario(t, cfg, scn)
	replay := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(par, replay) {
		t.Fatal("seed replay diverged on the parallel engine")
	}
	cfg.Sequential = true
	seq := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("control-plane chaos run diverged between engines:\npar: %+v\nseq: %+v", par, seq)
	}
	if len(par.Actions) == 0 {
		t.Fatal("chaos run logged no controller actions")
	}
}

// TestControlPlaneActionsBite verifies each declared policy actually fires
// and actually moves its machinery: the action log must contain every
// kind, the batch runner must have been retargeted, the degraded node's
// kernel watermarks must have been rescaled, and its hermes allocators
// must have switched reservation factors.
func TestControlPlaneActionsBite(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocHermes)
	degrade := primaryHeavyNode(cfg)
	kill := (degrade + 1) % cfg.Nodes
	scn := controlPlaneScenario(degrade, kill)

	c := New(cfg)
	defer c.Close()
	rep, err := c.RunScenario(scn)
	if err != nil {
		t.Fatal(err)
	}

	kinds := map[ActionKind]int{}
	for _, a := range rep.Actions {
		kinds[a.Kind]++
		if a.Old == a.New {
			t.Errorf("no-op action logged: %+v", a)
		}
	}
	for _, k := range []ActionKind{ActionShed, ActionBatch, ActionAllocator, ActionWatermark} {
		if kinds[k] == 0 {
			t.Errorf("action kind %q never fired", k)
		}
	}

	// The cluster-wide log must be the per-node logs merged in virtual-time
	// order.
	perNode := 0
	for _, nr := range rep.PerNode {
		perNode += len(nr.Actions)
	}
	if perNode != len(rep.Actions) {
		t.Errorf("per-node logs hold %d actions, cluster log %d", perNode, len(rep.Actions))
	}
	for i := 1; i < len(rep.Actions); i++ {
		if rep.Actions[i].At.Before(rep.Actions[i-1].At) {
			t.Errorf("cluster action log out of order at %d: %v after %v",
				i, rep.Actions[i].At, rep.Actions[i-1].At)
		}
	}

	// The batch runner really moved: its retarget counter is the ground
	// truth the action log must agree with.
	var retargets int64
	for _, n := range c.nodes {
		if n.runner != nil {
			retargets += n.runner.Retargets()
		}
	}
	if retargets == 0 {
		t.Error("batch runner was never retargeted despite logged batch actions")
	}

	// Watermark and allocator state on the degraded node reflect the last
	// logged action for that node.
	n := c.nodes[degrade]
	var lastWM, lastRSV float64
	for _, a := range rep.PerNode[degrade].Actions {
		switch a.Kind {
		case ActionWatermark:
			lastWM = a.New
		case ActionAllocator:
			lastRSV = a.New
		}
	}
	if lastWM != 0 && n.kernel.WatermarkScale() != lastWM {
		t.Errorf("kernel watermark scale %v, last logged action says %v", n.kernel.WatermarkScale(), lastWM)
	}
	if lastRSV != 0 && len(n.hermes) > 0 && n.hermes[0].ReservationFactor() != lastRSV {
		t.Errorf("hermes RSV_FACTOR %v, last logged action says %v", n.hermes[0].ReservationFactor(), lastRSV)
	}

	if out := rep.Render(); !strings.Contains(out, "controller:") {
		t.Error("report renders no controller summary")
	}
}

// TestAllocatorPolicyRequiresHermes pins the validation: an allocator
// policy on a cluster without hermes allocators is a configuration error,
// named as such.
func TestAllocatorPolicyRequiresHermes(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocGlibc)
	scn := controlPlaneScenario(0, 1)
	c := New(cfg)
	defer c.Close()
	_, err := c.RunScenario(scn)
	if err == nil {
		t.Fatal("allocator policy on a glibc cluster validated")
	}
	if !strings.Contains(err.Error(), "allocator policy requires the hermes allocator") {
		t.Fatalf("error does not name the allocator policy: %v", err)
	}
}

// TestAdaptiveBrownoutBeatsStatic is the committed preset's acceptance
// check: at smoke scale, the adaptive run must beat the identical run with
// its policies stripped on SLO compliance, and both engines must agree on
// the adaptive run bit for bit.
func TestAdaptiveBrownoutBeatsStatic(t *testing.T) {
	data, err := os.ReadFile("../../examples/scenarios/adaptive-brownout.json")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseScenarioSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Overrides == nil || spec.Overrides.Allocator != AllocHermes {
		t.Fatal("adaptive-brownout preset must pin the hermes allocator (the allocator policy needs it)")
	}
	pol := spec.Scenario.Policies
	if spec.Scenario.SLO == nil || pol == nil ||
		pol.Shed == nil || pol.Batch == nil || pol.Allocator == nil || pol.Watermark == nil {
		t.Fatal("adaptive-brownout preset must declare an SLO and all four policies")
	}
	cfg, err := spec.Overrides.Apply(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = spec.Scenario.Seed
	scn := spec.Scenario.Scaled(0.05)

	adaptive := runScenario(t, cfg, scn)
	cfg.Sequential = true
	seq := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(adaptive, seq) {
		t.Fatal("adaptive preset diverged between engines")
	}
	cfg.Sequential = false

	static := scn
	static.Policies = nil
	staticRep := runScenario(t, cfg, static)
	if len(staticRep.Actions) != 0 {
		t.Fatalf("static run logged %d controller actions without a policies block", len(staticRep.Actions))
	}
	if len(adaptive.Actions) == 0 {
		t.Fatal("adaptive preset logged no controller actions")
	}
	if adaptive.SLOCompliance <= staticRep.SLOCompliance {
		t.Fatalf("adaptive preset does not beat static degradation: compliance %.4f adaptive, %.4f static",
			adaptive.SLOCompliance, staticRep.SLOCompliance)
	}
}
