package cluster

import (
	"reflect"
	"strings"
	"testing"

	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// TestRunMatchesDirectEngines is the bit-compatibility shim guard:
// Cluster.Run now lifts the load onto a single-phase scenario, and its
// Report must stay byte-identical to the direct LoadDriver engines
// (RunSequential / RunParallel) — across allocators, seeds, generators and
// stats modes.
func TestRunMatchesDirectEngines(t *testing.T) {
	check := func(t *testing.T, cfg Config, load workload.LoadConfig) {
		t.Helper()
		direct := New(cfg)
		defer direct.Close()
		want := direct.RunSequential(load)

		cfg.Sequential = true
		cs := New(cfg)
		defer cs.Close()
		if got := cs.Run(load); !reflect.DeepEqual(got, want) {
			t.Errorf("sequential adapter diverged from direct engine:\nadapter: %+v\ndirect:  %+v", got.Cluster, want.Cluster)
		}
		cfg.Sequential = false
		cp := New(cfg)
		defer cp.Close()
		if got := cp.Run(load); !reflect.DeepEqual(got, want) {
			t.Errorf("parallel adapter diverged from direct engine:\nadapter: %+v\ndirect:  %+v", got.Cluster, want.Cluster)
		}
	}

	for _, kind := range []AllocatorKind{AllocGlibc, AllocHermes} {
		for _, seed := range []uint64{1, 99} {
			kind, seed := kind, seed
			t.Run(string(kind), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Nodes = 3
				cfg.Shards = 6
				cfg.Allocator = kind
				cfg.Kernel.TotalMemory = 1 << 30
				cfg.Kernel.SwapBytes = 1 << 30
				cfg.Seed = seed
				load := workload.DefaultLoadConfig()
				load.Requests = 20_000
				load.Keys = 5_000
				load.Seed = seed
				check(t, cfg, load)
			})
		}
	}

	t.Run("churn-histogram-legacy", func(t *testing.T) {
		cfg, load := churnScenario()
		cfg.Stats = StatsHistogram
		load.Generator = workload.GenLegacy
		check(t, cfg, load)
	})
}

// eventScenario is the acceptance scenario: three phases, two traffic
// classes, and a timeline that raises a mid-run pressure storm plus a
// per-node memory squeeze — enough machinery to expose any
// order-of-execution dependence between engines.
func eventScenario() (Config, workload.Scenario) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	cfg.Shards = 6
	cfg.Kernel.TotalMemory = 1 << 30
	cfg.Kernel.SwapBytes = 1 << 30
	cfg.Seed = 11

	classes := []workload.TrafficClass{
		{Name: "point", Rate: 60_000, Keys: 4_000, ZipfS: 1.1, ReadFraction: 0.5, ValueBytes: 16 << 10},
		{Name: "bulk", Rate: 15_000, Keys: 500, ReadFraction: 0.2, ValueBytes: 64 << 10},
	}
	scn := workload.Scenario{
		Name: "storm",
		Seed: 11,
		Phases: []workload.Phase{
			{Name: "warm", Duration: 120 * simtime.Millisecond, Classes: classes},
			{
				Name: "storm", Duration: 160 * simtime.Millisecond,
				Shape:   workload.RateShape{Kind: workload.ShapeSpike, Factor: 3, At: 40 * simtime.Millisecond, Width: 80 * simtime.Millisecond},
				Classes: classes,
			},
			{Name: "recover", Requests: 6_000, Classes: classes[:1]},
		},
		Events: []workload.Event{
			{At: 130 * simtime.Millisecond, Node: -1, Kind: workload.EventSqueezeStart, Bytes: 200 << 20},
			{At: 140 * simtime.Millisecond, Node: -1, Kind: workload.EventBatchStart,
				Batch: &batch.Config{Jobs: 3, ContainersPerJob: 4, TargetBytes: 900 << 20,
					InputBytes: 32 << 20, WorkDuration: 50 * simtime.Millisecond,
					RampTicks: 3, TickPeriod: 10 * simtime.Millisecond}},
			{At: 160 * simtime.Millisecond, Node: 1, Kind: workload.EventPressureStart,
				Pressure: &workload.PressureConfig{Kind: workload.PressureAnon, FreeBytes: 16 << 20, Period: 2 * simtime.Millisecond}},
			{At: 240 * simtime.Millisecond, Node: 1, Kind: workload.EventPressureStop},
			{At: 250 * simtime.Millisecond, Node: -1, Kind: workload.EventBatchStop},
			{At: 260 * simtime.Millisecond, Node: -1, Kind: workload.EventSqueezeStop},
		},
	}
	return cfg, scn
}

func runScenario(t *testing.T, cfg Config, scn workload.Scenario) ScenarioReport {
	t.Helper()
	c := New(cfg)
	defer c.Close()
	rep, err := c.RunScenario(scn)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		n.Kernel().CheckInvariants()
	}
	return rep
}

// TestScenarioEventsBite verifies the timeline actually changes the
// simulation: the squeeze plus pressure storm must force reclaim activity
// that an event-free copy of the scenario never sees, and every phase ×
// class cell of the report must account its requests.
func TestScenarioEventsBite(t *testing.T) {
	cfg, scn := eventScenario()
	stormy := runScenario(t, cfg, scn)

	calm := scn
	calm.Events = nil
	quiet := runScenario(t, cfg, calm)

	var stormReclaims, quietReclaims int64
	for i := range stormy.PerNode {
		stormReclaims += stormy.PerNode[i].Kernel.PagesReclaimed
		quietReclaims += quiet.PerNode[i].Kernel.PagesReclaimed
	}
	if stormReclaims <= quietReclaims {
		t.Errorf("events did not bite: %d pages reclaimed with the storm, %d without", stormReclaims, quietReclaims)
	}

	if len(stormy.Phases) != 3 {
		t.Fatalf("got %d phase reports, want 3", len(stormy.Phases))
	}
	var total int64
	for pi, p := range stormy.Phases {
		if p.Requests == 0 {
			t.Errorf("phase %d (%s) served no requests", pi, p.Name)
		}
		var phaseSum int64
		for _, tc := range p.Classes {
			if tc.Requests != tc.Reads+tc.Writes {
				t.Errorf("phase %d class %s: requests %d != reads %d + writes %d", pi, tc.Name, tc.Requests, tc.Reads, tc.Writes)
			}
			phaseSum += tc.Requests
		}
		if phaseSum != p.Requests {
			t.Errorf("phase %d: class sum %d != phase requests %d", pi, phaseSum, p.Requests)
		}
		total += p.Requests
	}
	if total != stormy.Requests {
		t.Errorf("phase sum %d != report requests %d", total, stormy.Requests)
	}
	if stormy.Phases[2].Requests != 6_000 {
		t.Errorf("request-bounded phase served %d, want 6000", stormy.Phases[2].Requests)
	}
}

// TestScenarioValidationUpFront: malformed scenarios and events targeting
// machinery the fleet doesn't have come back as errors before the run
// starts — not as panics deep in the loop.
func TestScenarioValidationUpFront(t *testing.T) {
	cfg, scn := eventScenario()
	c := New(cfg)
	defer c.Close()

	bad := scn
	bad.Events = []workload.Event{{At: 0, Node: 7, Kind: workload.EventSqueezeStart, Bytes: 1 << 20}}
	if _, err := c.RunScenario(bad); err == nil || !strings.Contains(err.Error(), "cluster has 3 nodes") {
		t.Errorf("out-of-range event node: got %v", err)
	}

	bad = scn
	bad.Events = []workload.Event{{At: 0, Node: -1, Kind: workload.EventDaemonStart}}
	if _, err := c.RunScenario(bad); err == nil || !strings.Contains(err.Error(), "hermes allocator") {
		t.Errorf("daemon event on glibc cluster: got %v", err)
	}

	bad = scn
	bad.Phases = nil
	if _, err := c.RunScenario(bad); err == nil || !strings.Contains(err.Error(), "at least one phase") {
		t.Errorf("empty scenario: got %v", err)
	}
}

// TestScenarioDaemonEvents: daemon enable/disable mid-run on a Hermes
// cluster — the daemon must come up (and do work) only between its events.
func TestScenarioDaemonEvents(t *testing.T) {
	cfg, scn := eventScenario()
	cfg.Allocator = AllocHermes
	scn.Events = append(scn.Events,
		workload.Event{At: 140 * simtime.Millisecond, Node: -1, Kind: workload.EventDaemonStart},
		workload.Event{At: 250 * simtime.Millisecond, Node: -1, Kind: workload.EventDaemonStop},
	)
	first := runScenario(t, cfg, scn)
	again := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(first, again) {
		t.Fatal("daemon-event scenario replay diverged")
	}
}
