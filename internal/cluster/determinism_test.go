package cluster

import (
	"reflect"
	"testing"

	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/flatmap"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// churnScenario builds a cluster run whose deterministic path exercises the
// two spots fixed for ISSUE 3: RocksDB memtable flushes / SST teardown
// (compaction-order state) and process exit (batch jobs completing and
// churning), both under enough allocation traffic to touch the LRU lists.
func churnScenario() (Config, workload.LoadConfig) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Shards = 4
	cfg.ServiceKind = ServiceRocksdb
	cfg.Kernel.TotalMemory = 1 << 30
	cfg.Kernel.SwapBytes = 1 << 30
	b := batch.DefaultConfig()
	b.TargetBytes = 800 << 20
	b.InputBytes = 64 << 20
	// Short jobs so several complete — and their containers exit — inside
	// the run horizon.
	b.WorkDuration = 100 * simtime.Millisecond
	b.RampTicks = 5
	b.TickPeriod = 20 * simtime.Millisecond
	cfg.Batch = &b

	load := workload.DefaultLoadConfig()
	load.Requests = 30_000
	load.RatePerSec = 100_000
	load.Keys = 2_000
	// 64 KB values overflow the 64 MB memtables after ~1k writes per
	// shard, forcing several flushes per shard.
	load.ValueBytes = 64 << 10
	return cfg, load
}

func runChurn(t *testing.T, cfg Config, load workload.LoadConfig) Report {
	t.Helper()
	c := New(cfg)
	defer c.Close()
	rep := c.Run(load)
	for _, n := range c.Nodes() {
		n.Kernel().CheckInvariants()
	}
	return rep
}

// TestSeedReplayExitAndCompaction replays the churn scenario: two
// independent runs of the identical (config, load) pair must produce
// bit-identical Reports — including per-node kernel stats, which expose any
// map-iteration-order dependence in process exit, memtable flush or SST
// teardown.
func TestSeedReplayExitAndCompaction(t *testing.T) {
	cfg, load := churnScenario()
	first := runChurn(t, cfg, load)
	again := runChurn(t, cfg, load)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("seed replay diverged:\nfirst: %+v\nagain: %+v", first, again)
	}
	// The scenario must actually exercise the churn paths.
	var reclaims int64
	for _, n := range first.PerNode {
		reclaims += n.Kernel.PagesReclaimed
	}
	if reclaims == 0 {
		t.Fatal("scenario never reclaimed: pressure too low to exercise ordering")
	}
}

// TestSeedReplayParallelMatchesSequential re-checks engine equivalence on
// the churn scenario specifically: partitioned per-node execution must not
// change a single bit of the Report even with batch exits and memtable
// flushes in flight.
func TestSeedReplayParallelMatchesSequential(t *testing.T) {
	cfg, load := churnScenario()
	cfg.Sequential = true
	seq := runChurn(t, cfg, load)
	cfg.Sequential = false
	par := runChurn(t, cfg, load)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel engine diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestClusterBackendEquivalence verifies the open-addressed service tables
// against the Go-map fallback: the identical cluster run on either backend
// must produce a bit-identical Report. This is the equivalence check behind
// the HERMES_FLATMAP=map escape hatch.
func TestClusterBackendEquivalence(t *testing.T) {
	for _, svc := range []ServiceKind{ServiceRedis, ServiceRocksdb} {
		for _, kind := range []AllocatorKind{AllocGlibc, AllocHermes} {
			cfg, load := churnScenario()
			cfg.ServiceKind = svc
			cfg.Allocator = kind
			flat := runChurn(t, cfg, load)

			prev := flatmap.SetDefaultBackend(flatmap.BackendMap)
			restore := func() { flatmap.SetDefaultBackend(prev) }
			defer restore()
			mapped := runChurn(t, cfg, load)
			restore()

			if !reflect.DeepEqual(flat, mapped) {
				t.Fatalf("%s/%s: flat tables diverge from map fallback:\nflat: %+v\nmap:  %+v",
					svc, kind, flat, mapped)
			}
		}
	}
}
