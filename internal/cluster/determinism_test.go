package cluster

import (
	"reflect"
	"testing"

	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/flatmap"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// churnScenario builds a cluster run whose deterministic path exercises the
// two spots fixed for ISSUE 3: RocksDB memtable flushes / SST teardown
// (compaction-order state) and process exit (batch jobs completing and
// churning), both under enough allocation traffic to touch the LRU lists.
func churnScenario() (Config, workload.LoadConfig) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Shards = 4
	cfg.ServiceKind = ServiceRocksdb
	cfg.Kernel.TotalMemory = 1 << 30
	cfg.Kernel.SwapBytes = 1 << 30
	b := batch.DefaultConfig()
	b.TargetBytes = 800 << 20
	b.InputBytes = 64 << 20
	// Short jobs so several complete — and their containers exit — inside
	// the run horizon.
	b.WorkDuration = 100 * simtime.Millisecond
	b.RampTicks = 5
	b.TickPeriod = 20 * simtime.Millisecond
	cfg.Batch = &b

	load := workload.DefaultLoadConfig()
	load.Requests = 30_000
	if testing.Short() {
		// The race-detector CI job runs -short: half the stream still
		// overflows memtables, churns batch exits AND reclaims (the
		// test's pressure floor — 10k requests stay under it), at a wall
		// clock the ~10x race overhead can afford.
		load.Requests = 15_000
	}
	load.RatePerSec = 100_000
	load.Keys = 2_000
	// 64 KB values overflow the 64 MB memtables after ~1k writes per
	// shard, forcing several flushes per shard.
	load.ValueBytes = 64 << 10
	return cfg, load
}

func runChurn(t *testing.T, cfg Config, load workload.LoadConfig) Report {
	t.Helper()
	c := New(cfg)
	defer c.Close()
	rep := c.Run(load)
	for _, n := range c.Nodes() {
		n.Kernel().CheckInvariants()
	}
	return rep
}

// TestSeedReplayExitAndCompaction replays the churn scenario: two
// independent runs of the identical (config, load) pair must produce
// bit-identical Reports — including per-node kernel stats, which expose any
// map-iteration-order dependence in process exit, memtable flush or SST
// teardown.
func TestSeedReplayExitAndCompaction(t *testing.T) {
	cfg, load := churnScenario()
	first := runChurn(t, cfg, load)
	again := runChurn(t, cfg, load)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("seed replay diverged:\nfirst: %+v\nagain: %+v", first, again)
	}
	// The scenario must actually exercise the churn paths.
	var reclaims int64
	for _, n := range first.PerNode {
		reclaims += n.Kernel.PagesReclaimed
	}
	if reclaims == 0 {
		t.Fatal("scenario never reclaimed: pressure too low to exercise ordering")
	}
}

// TestSeedReplayParallelMatchesSequential re-checks engine equivalence on
// the churn scenario specifically: partitioned per-node execution must not
// change a single bit of the Report even with batch exits and memtable
// flushes in flight.
func TestSeedReplayParallelMatchesSequential(t *testing.T) {
	cfg, load := churnScenario()
	cfg.Sequential = true
	seq := runChurn(t, cfg, load)
	cfg.Sequential = false
	par := runChurn(t, cfg, load)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel engine diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestNodeStreamIndependence pins the randgen splittability contract at
// cluster level: a node's draw sequence is a pure function of (cluster
// seed, node index). Consuming other nodes' streams first — in any order —
// must not change it. This is the property the parallel engine's
// bit-identity to the sequential engine rests on.
func TestNodeStreamIndependence(t *testing.T) {
	cfg, _ := churnScenario()
	cfg.Batch = nil // no background machinery; we only probe the streams
	const draws = 16

	drawNode := func(c *Cluster, idx int) []float64 {
		out := make([]float64, draws)
		for i := range out {
			out[i] = c.Nodes()[idx].Kernel().RNG().Float64()
		}
		return out
	}

	// Reference: each node drained on a fresh cluster before any sibling.
	want := make([][]float64, cfg.Nodes)
	for idx := 0; idx < cfg.Nodes; idx++ {
		c := New(cfg)
		want[idx] = drawNode(c, idx)
		c.Close()
	}
	// Reordered: drain nodes highest-index first on one cluster.
	c := New(cfg)
	defer c.Close()
	for idx := cfg.Nodes - 1; idx >= 0; idx-- {
		got := drawNode(c, idx)
		for i := range got {
			if got[i] != want[idx][i] {
				t.Fatalf("node %d draw %d = %v after reordering node execution, want %v",
					idx, i, got[i], want[idx][i])
			}
		}
	}
	// Distinct nodes must not share a stream.
	if want[0][0] == want[1][0] && want[0][1] == want[1][1] {
		t.Fatal("nodes 0 and 1 draw the identical sequence")
	}
}

// TestSeedReplayLegacyGenerator holds the escape-hatch generator to the
// same determinism bar as the default: bit-identical replay and engine
// equivalence on the churn scenario.
func TestSeedReplayLegacyGenerator(t *testing.T) {
	cfg, load := churnScenario()
	load.Generator = workload.GenLegacy
	first := runChurn(t, cfg, load)
	again := runChurn(t, cfg, load)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("legacy-generator seed replay diverged:\nfirst: %+v\nagain: %+v", first, again)
	}
	cfg.Sequential = true
	seq := runChurn(t, cfg, load)
	if !reflect.DeepEqual(first, seq) {
		t.Fatalf("legacy-generator parallel engine diverged from sequential:\npar: %+v\nseq: %+v", first, seq)
	}
}

// TestSeedReplayScenarioTimeline extends the seed-replay bar to the
// scenario layer: a multi-phase, multi-class scenario with timeline events
// (per-node squeeze, mid-run pressure storm) must replay bit-identically —
// phase and class digests included — and the partitioned parallel engine
// must match the sequential one bit for bit.
func TestSeedReplayScenarioTimeline(t *testing.T) {
	cfg, scn := eventScenario()
	first := runScenario(t, cfg, scn)
	again := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("scenario seed replay diverged:\nfirst: %+v\nagain: %+v", first, again)
	}

	cfg.Sequential = true
	seq := runScenario(t, cfg, scn)
	cfg.Sequential = false
	if !reflect.DeepEqual(first, seq) {
		t.Fatalf("scenario parallel engine diverged from sequential:\npar: %+v\nseq: %+v", first, seq)
	}

	// A different seed must not reproduce the run (guards against the
	// scenario layer pinning its own constants).
	other := scn
	other.Seed = scn.Seed + 1
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	if diverged := runScenario(t, cfg2, other); reflect.DeepEqual(first.Cluster, diverged.Cluster) {
		t.Fatal("different seed reproduced the identical cluster digest")
	}
}

// TestClusterBackendEquivalence verifies the open-addressed service tables
// against the Go-map fallback: the identical cluster run on either backend
// must produce a bit-identical Report. This is the equivalence check behind
// the HERMES_FLATMAP=map escape hatch.
func TestClusterBackendEquivalence(t *testing.T) {
	for _, svc := range []ServiceKind{ServiceRedis, ServiceRocksdb} {
		for _, kind := range []AllocatorKind{AllocGlibc, AllocHermes} {
			cfg, load := churnScenario()
			cfg.ServiceKind = svc
			cfg.Allocator = kind
			flat := runChurn(t, cfg, load)

			prev := flatmap.SetDefaultBackend(flatmap.BackendMap)
			restore := func() { flatmap.SetDefaultBackend(prev) }
			defer restore()
			mapped := runChurn(t, cfg, load)
			restore()

			if !reflect.DeepEqual(flat, mapped) {
				t.Fatalf("%s/%s: flat tables diverge from map fallback:\nflat: %+v\nmap:  %+v",
					svc, kind, flat, mapped)
			}
		}
	}
}
