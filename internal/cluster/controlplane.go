package cluster

import (
	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
	"github.com/hermes-sim/hermes/internal/workload/randgen"
)

// This file is the adaptive control plane: one deterministic controller
// per node that watches the node's served latencies through a
// monitor.Tracker (a windowed histogram on the virtual timeline) and, at
// every window boundary, fires the scenario's declared policy actions —
// load shedding (PR 7's shed controller, now one action among several),
// batch retargeting, kernel watermark retuning, and hermes
// reservation-factor switching.
//
// Determinism argument. A controller's entire trajectory is a pure
// function of (the node's own arrival-ordered latency stream, the virtual
// instant, a per-node domain-separated randgen stream): windows roll
// lazily at admission on the arrival instant, verdicts read only the
// node-local histogram, and the only randomness is the shed draw from the
// node's own stream. Every action mutates machinery owned by that node —
// its kernel's watermarks, its batch runner's containers, its shards'
// hermes allocators — so nothing a controller does is visible to another
// node. Both engines therefore run bit-identical controller trajectories,
// by the same argument as the resilience layer. One modeling note: a
// window boundary is detected at the next arrival that crosses it, so an
// action fires just before that arrival's service — after the node's
// timeline events up to the arrival, before background machinery catches
// up to it. That ordering is identical on both engines.

// ActionKind names one controller reconfiguration action.
type ActionKind string

const (
	// ActionShed is an admission-control step: Old/New are shed
	// probabilities.
	ActionShed ActionKind = "shed"
	// ActionBatch is a batch-footprint retarget: Old/New are target bytes.
	ActionBatch ActionKind = "batch"
	// ActionAllocator is a hermes reservation-factor switch: Old/New are
	// RSV_FACTOR values.
	ActionAllocator ActionKind = "allocator"
	// ActionWatermark is a kernel watermark rescale: Old/New are scales of
	// the boot-time heuristic.
	ActionWatermark ActionKind = "watermark"
)

// ControllerAction is one logged control-plane decision: what changed on
// which node at which virtual instant, old value → new value. Units
// depend on Kind (see the ActionKind constants).
type ControllerAction struct {
	At   simtime.Time
	Node int
	Kind ActionKind
	Old  float64
	New  float64
}

// controller is one node's adaptive control plane. It generalizes PR 7's
// shedCtl: the shed path keeps that controller's exact step rule, stream
// and draw sequence, so scenarios that declare only a shed policy replay
// the PR 7 trajectories bit-for-bit.
type controller struct {
	c  *Cluster
	n  *Node
	tr *monitor.Tracker
	// rng draws admission verdicts; consumed only while shedP > 0, so
	// non-shed policies never perturb the draw sequence.
	rng *randgen.Stream
	pol workload.Policies

	shedP float64

	// batchScale tracks the throttled fraction of the runner's configured
	// footprint; batchBase/batchOwner pin the base so a batch-start event
	// mid-run re-anchors cleanly on the replacement runner.
	batchScale float64
	batchBase  int64
	batchOwner *batch.Runner

	wmScale float64

	// conservative marks the allocator switch state; allocBase is the
	// configured factor captured from the node's allocators at first
	// switch.
	conservative bool
	allocBase    float64

	log []ControllerAction
}

// newController builds node `node`'s controller for the scenario; the
// caller guarantees scn.SLO and scn.Policies are set.
func newController(c *Cluster, scn workload.Scenario, node int) *controller {
	return &controller{
		c: c,
		n: c.nodes[node],
		tr: monitor.NewTracker(scn.Start, scn.SLO.Window, scn.SLO.P99,
			int64(scn.SLO.SamplesFloor())),
		rng:        randgen.Split(scn.Seed, streamShedCtl^uint64(node)),
		pol:        *scn.Policies,
		batchScale: 1,
		wmScale:    1,
	}
}

// admit rolls the window to the arrival, firing any due actions, and
// draws the admission verdict (always true without a shed policy).
func (ctl *controller) admit(at simtime.Time) bool {
	ctl.roll(at)
	if ctl.shedP > 0 && ctl.rng.Float64() < ctl.shedP {
		return false
	}
	return true
}

// observe records a served latency into the arrival's window.
func (ctl *controller) observe(lat simtime.Duration) { ctl.tr.Observe(lat) }

// roll closes every window boundary the arrival crossed and fires the
// enabled policy actions on each verdict.
func (ctl *controller) roll(at simtime.Time) {
	ctl.tr.Roll(at, ctl.act)
}

// act fires every enabled policy at one window boundary: a breached
// window tightens (more shedding, smaller batch footprint, higher
// watermarks, conservative reservation), a healthy or sparse one relaxes
// back toward the configured state — recovery releases every brake.
func (ctl *controller) act(at simtime.Time, breached bool) {
	if p := ctl.pol.Shed; p != nil {
		old := ctl.shedP
		if breached {
			if ctl.shedP += p.Step; ctl.shedP > p.Max {
				ctl.shedP = p.Max
			}
		} else if ctl.shedP > 0 {
			if ctl.shedP -= p.Step; ctl.shedP < 0 {
				ctl.shedP = 0
			}
		}
		if ctl.shedP != old {
			ctl.logAction(at, ActionShed, old, ctl.shedP)
		}
	}
	if p := ctl.pol.Batch; p != nil {
		if breached {
			if ctl.batchScale -= p.Step; ctl.batchScale < p.Min {
				ctl.batchScale = p.Min
			}
		} else if ctl.batchScale < 1 {
			if ctl.batchScale += p.Step; ctl.batchScale > 1 {
				ctl.batchScale = 1
			}
		}
		ctl.retargetBatch(at)
	}
	if p := ctl.pol.Watermark; p != nil {
		old := ctl.wmScale
		if breached {
			if ctl.wmScale += p.Step; ctl.wmScale > p.Max {
				ctl.wmScale = p.Max
			}
		} else if ctl.wmScale > 1 {
			if ctl.wmScale -= p.Step; ctl.wmScale < 1 {
				ctl.wmScale = 1
			}
		}
		if ctl.wmScale != old {
			ctl.n.kernel.SetWatermarkScale(ctl.wmScale)
			ctl.logAction(at, ActionWatermark, old, ctl.wmScale)
		}
	}
	if p := ctl.pol.Allocator; p != nil && breached != ctl.conservative {
		ctl.switchAllocators(at, breached, p.Conservative)
	}
}

// retargetBatch drives the node's batch runner to batchScale × its
// configured footprint. Applied (and re-checked) at every boundary rather
// than only on scale changes, so a runner replaced by a batch-start event
// picks up the current throttle at the next window.
func (ctl *controller) retargetBatch(at simtime.Time) {
	r := ctl.n.runner
	if r == nil {
		ctl.batchOwner = nil
		return
	}
	if r != ctl.batchOwner {
		// First sight of this runner: its configured footprint is the base
		// the throttle scales.
		ctl.batchOwner = r
		ctl.batchBase = r.TargetBytes()
	}
	want := int64(float64(ctl.batchBase) * ctl.batchScale)
	old := r.TargetBytes()
	if want == old {
		return
	}
	r.Retarget(ctl.n.sched.Now(), want)
	ctl.logAction(at, ActionBatch, float64(old), float64(want))
}

// switchAllocators flips every hermes allocator on the node between the
// configured reservation factor and the policy's conservative one. A
// no-op (and unlogged) on nodes without hermes allocators.
func (ctl *controller) switchAllocators(at simtime.Time, conservative bool, factor float64) {
	ctl.conservative = conservative
	if len(ctl.n.hermes) == 0 {
		return
	}
	if ctl.allocBase == 0 {
		ctl.allocBase = ctl.n.hermes[0].ReservationFactor()
	}
	to := ctl.allocBase
	if conservative {
		to = factor
	}
	old := ctl.n.hermes[0].ReservationFactor()
	if to == old {
		return
	}
	for _, h := range ctl.n.hermes {
		h.SetReservationFactor(to)
	}
	ctl.logAction(at, ActionAllocator, old, to)
}

func (ctl *controller) logAction(at simtime.Time, kind ActionKind, old, new float64) {
	ctl.log = append(ctl.log, ControllerAction{
		At: at, Node: ctl.n.Index, Kind: kind, Old: old, New: new,
	})
}
