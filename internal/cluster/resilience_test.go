package cluster

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// Resilience chaos harness: soft-fault injection (degrade/heal, fault
// windows), client retry/timeout/hedging and SLO-driven shedding must
// replay bit-identically on both engines, conserve the attempt stream
// against exact chain-accounting identities, and visibly change the run.

const (
	brownDegradeAt = 40 * simtime.Millisecond
	brownHealAt    = 120 * simtime.Millisecond
	brownFaultAt   = 50 * simtime.Millisecond
	brownFaultLen  = 40 * simtime.Millisecond
)

// brownoutScenario is the resilience drill: a resilient point-lookup class
// and a policy-less ingest class, a mid-run degrade + error burst on the
// primary-heavy node, a shard-scoped error window, and an SLO with a shed
// policy riding on top.
func brownoutScenario(target int) workload.Scenario {
	shard := 1
	classes := []workload.TrafficClass{
		{Name: "point", Rate: 60_000, Keys: 6_000, ZipfS: 1.1, ReadFraction: 0.6, ValueBytes: 4 << 10,
			Resilience: &workload.Resilience{
				Timeout: 60 * simtime.Microsecond,
				Retries: 2,
				Backoff: 30 * simtime.Microsecond,
				Jitter:  0.2,
				Hedge:   40 * simtime.Microsecond,
			}},
		{Name: "ingest", Rate: 10_000, Keys: 1_500, ReadFraction: 0.1, ValueBytes: 32 << 10},
	}
	return workload.Scenario{
		Name: "brownout-drill",
		Seed: 17,
		Phases: []workload.Phase{
			{Name: "steady", Duration: brownDegradeAt, Classes: classes},
			{Name: "brownout", Duration: brownHealAt - brownDegradeAt, Classes: classes},
			{Name: "recovered", Duration: 40 * simtime.Millisecond, Classes: classes},
		},
		Events: []workload.Event{
			{At: brownDegradeAt, Node: target, Kind: workload.EventDegradeNode, Factor: 8},
			{At: brownHealAt, Node: target, Kind: workload.EventHealNode},
			{At: brownFaultAt, Node: target, Kind: workload.EventFaultWindow, ErrorRate: 0.3, Duration: brownFaultLen},
			{At: brownFaultAt, Node: -1, Kind: workload.EventFaultWindow, ErrorRate: 0.1, Duration: 20 * simtime.Millisecond, Shard: &shard},
		},
		SLO:      &workload.SLO{P99: 80 * simtime.Microsecond, Window: 5 * simtime.Millisecond},
		Policies: &workload.Policies{Shed: &workload.ShedPolicy{Step: 0.2, Max: 0.8}},
	}
}

// TestResilienceChaosSeedReplay is the resilience regression matrix: the
// brownout drill must replay bit-identically and the partitioned parallel
// engine must match the sequential one bit for bit — across both services
// and both headline allocators, with the error, retry and hedge paths
// demonstrably exercised in every cell.
func TestResilienceChaosSeedReplay(t *testing.T) {
	for _, svc := range []ServiceKind{ServiceRedis, ServiceRocksdb} {
		for _, kind := range []AllocatorKind{AllocGlibc, AllocHermes} {
			svc, kind := svc, kind
			t.Run(string(svc)+"/"+string(kind), func(t *testing.T) {
				cfg := drillConfig(svc, kind)
				scn := brownoutScenario(primaryHeavyNode(cfg))
				if testing.Short() {
					scn = scn.Scaled(0.3)
				}
				first := runScenario(t, cfg, scn)
				again := runScenario(t, cfg, scn)
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("resilience seed replay diverged:\nfirst: %+v\nagain: %+v", first, again)
				}
				cfg.Sequential = true
				seq := runScenario(t, cfg, scn)
				if !reflect.DeepEqual(first, seq) {
					t.Fatalf("parallel engine diverged from sequential under resilience chaos:\npar: %+v\nseq: %+v", first, seq)
				}
				if first.Errors == 0 {
					t.Error("fault windows produced no errors: the burst never bit")
				}
				if first.Retries == 0 {
					t.Error("no retries fired despite errors and a retry budget")
				}
				if first.Hedges == 0 {
					t.Error("no hedges sent despite a hedging read class")
				}
			})
		}
	}
}

// TestHedgesServeOnReplica pins the hedge routing contract: a hedge is a
// speculative duplicate to a DIFFERENT live replica, pinned to that chain
// position at spawn time. On a two-node, one-shard, two-replica fleet
// every hedge must therefore be served (and counted) on the replica node,
// never re-routed back onto the primary it hedges against.
func TestHedgesServeOnReplica(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Shards = 1
	cfg.ShardReplicas = 2
	cfg.Seed = 29
	c := New(cfg)
	primary, replica := c.chains[0][0], c.chains[0][1]
	c.Close()

	classes := []workload.TrafficClass{
		{Name: "point", Rate: 40_000, Keys: 4_000, ReadFraction: 1, ValueBytes: 4 << 10,
			Resilience: &workload.Resilience{Hedge: 20 * simtime.Microsecond}},
	}
	scn := workload.Scenario{
		Name:   "hedge-pin",
		Seed:   29,
		Phases: []workload.Phase{{Name: "steady", Duration: 40 * simtime.Millisecond, Classes: classes}},
	}
	rep := runScenario(t, cfg, scn)
	if rep.Hedges == 0 {
		t.Fatal("hedging read class sent no hedges")
	}
	if got := rep.PerNode[primary].Hedges; got != 0 {
		t.Errorf("primary node %d served %d hedges — hedges must go to the replica", primary, got)
	}
	if got := rep.PerNode[replica].Hedges; got != rep.Hedges {
		t.Errorf("replica node %d served %d of %d hedges", replica, got, rep.Hedges)
	}
	cfg.Sequential = true
	seq := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(rep, seq) {
		t.Fatal("hedge-pinned run diverged between engines")
	}
}

// TestResilienceConservationOracle pins the chain-accounting identities on
// an all-write run (no hedges by construction) with fault windows, a tight
// timeout and a retry budget but no shedding and no topology events — the
// regime where nothing is discarded, so the identities are exact:
//
//	Served   == clients + Retries - Errors   (no attempt lost or served twice)
//	Served   -  Timeouts == clients - Failed (each chain succeeds at most once)
//	Retries  == Errors + Timeouts - Failed   (each retry has exactly one cause)
func TestResilienceConservationOracle(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocGlibc)
	target := primaryHeavyNode(cfg)
	classes := []workload.TrafficClass{
		{Name: "ingest", Rate: 50_000, Keys: 4_000, ReadFraction: 0, ValueBytes: 8 << 10,
			Resilience: &workload.Resilience{
				Timeout: 50 * simtime.Microsecond,
				Retries: 3,
				Backoff: 20 * simtime.Microsecond,
				Jitter:  0.3,
			}},
	}
	scn := workload.Scenario{
		Name: "conserve",
		Seed: 23,
		Phases: []workload.Phase{
			{Name: "burn", Duration: 120 * simtime.Millisecond, Classes: classes},
		},
		Events: []workload.Event{
			{At: 30 * simtime.Millisecond, Node: target, Kind: workload.EventDegradeNode, Factor: 10},
			{At: 90 * simtime.Millisecond, Node: target, Kind: workload.EventHealNode},
			{At: 40 * simtime.Millisecond, Node: target, Kind: workload.EventFaultWindow, ErrorRate: 0.25, Duration: 30 * simtime.Millisecond},
		},
	}
	rep := runScenario(t, cfg, scn)

	calm := scn
	calm.Events = nil
	calm.Phases = []workload.Phase{{Name: "burn", Duration: 120 * simtime.Millisecond,
		Classes: []workload.TrafficClass{{Name: "ingest", Rate: 50_000, Keys: 4_000, ReadFraction: 0, ValueBytes: 8 << 10}}}}
	clients := runScenario(t, cfg, calm).Requests

	if rep.Errors == 0 || rep.Timeouts == 0 || rep.Retries == 0 {
		t.Fatalf("oracle run did not exercise all paths: errors=%d timeouts=%d retries=%d",
			rep.Errors, rep.Timeouts, rep.Retries)
	}
	if rep.Hedges != 0 {
		t.Fatalf("all-write run sent %d hedges", rep.Hedges)
	}
	if got, want := rep.Requests, clients+rep.Retries-rep.Errors; got != want {
		t.Errorf("served %d attempts, want clients(%d) + retries(%d) - errors(%d) = %d — an attempt was lost or double-counted",
			got, clients, rep.Retries, rep.Errors, want)
	}
	if got, want := rep.Requests-rep.Timeouts, clients-rep.Failed; got != want {
		t.Errorf("successful serves %d, want clients(%d) - failed(%d) = %d — a chain succeeded twice or a success went missing",
			got, clients, rep.Failed, want)
	}
	if got, want := rep.Retries, rep.Errors+rep.Timeouts-rep.Failed; got != want {
		t.Errorf("retries %d, want errors(%d) + timeouts(%d) - failed(%d) = %d — a retry fired without a cause",
			rep.Retries, rep.Errors, rep.Timeouts, rep.Failed, want)
	}
	var retries, timeouts, errors, failed int64
	for _, nr := range rep.PerNode {
		retries += nr.Retries
		timeouts += nr.Timeouts
		errors += nr.Errors
		failed += nr.Failed
	}
	if retries != rep.Retries || timeouts != rep.Timeouts || errors != rep.Errors || failed != rep.Failed {
		t.Errorf("per-node resilience columns (%d/%d/%d/%d) don't sum to the cluster totals (%d/%d/%d/%d)",
			retries, timeouts, errors, failed, rep.Retries, rep.Timeouts, rep.Errors, rep.Failed)
	}
}

// TestResilienceQuiescent: a resilience policy that never triggers (huge
// timeout, no events, no hedge) must leave every counter at zero and serve
// exactly what the policy-free run serves — the layer is pay-for-what-fires.
func TestResilienceQuiescent(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocGlibc)
	classes := []workload.TrafficClass{
		{Name: "point", Rate: 40_000, Keys: 4_000, ReadFraction: 0.5, ValueBytes: 4 << 10,
			Resilience: &workload.Resilience{
				Timeout: simtime.Second,
				Retries: 2,
				Backoff: 20 * simtime.Microsecond,
			}},
	}
	scn := workload.Scenario{
		Name:   "quiet",
		Seed:   11,
		Phases: []workload.Phase{{Name: "steady", Duration: 60 * simtime.Millisecond, Classes: classes}},
	}
	rep := runScenario(t, cfg, scn)

	calm := scn
	calm.Phases = []workload.Phase{{Name: "steady", Duration: 60 * simtime.Millisecond,
		Classes: []workload.TrafficClass{{Name: "point", Rate: 40_000, Keys: 4_000, ReadFraction: 0.5, ValueBytes: 4 << 10}}}}
	calmRep := runScenario(t, cfg, calm)

	if rep.Retries != 0 || rep.Timeouts != 0 || rep.Errors != 0 || rep.Hedges != 0 || rep.Shed != 0 || rep.Failed != 0 {
		t.Fatalf("quiescent policy fired: %+v", rep.Report)
	}
	if rep.Requests != calmRep.Requests {
		t.Fatalf("quiescent resilient run served %d requests, the policy-free run %d",
			rep.Requests, calmRep.Requests)
	}
	cfg.Sequential = true
	seq := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(rep, seq) {
		t.Fatal("quiescent resilient run diverged between engines")
	}
}

// TestDegradeBites pins the degrade/heal semantics: the degraded node's
// latency rises during its window and only there, the heal releases it, and
// no traffic is lost — degrade slows, it never drops.
func TestDegradeBites(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocGlibc)
	target := primaryHeavyNode(cfg)
	classes := []workload.TrafficClass{
		{Name: "point", Rate: 40_000, Keys: 4_000, ReadFraction: 0.5, ValueBytes: 4 << 10},
	}
	scn := workload.Scenario{
		Name: "degrade",
		Seed: 7,
		Phases: []workload.Phase{
			{Name: "steady", Duration: 40 * simtime.Millisecond, Classes: classes},
			{Name: "slow", Duration: 40 * simtime.Millisecond, Classes: classes},
			{Name: "healed", Duration: 40 * simtime.Millisecond, Classes: classes},
		},
		Events: []workload.Event{
			{At: 40 * simtime.Millisecond, Node: target, Kind: workload.EventDegradeNode, Factor: 6},
			{At: 80 * simtime.Millisecond, Node: target, Kind: workload.EventHealNode},
		},
	}
	rep := runScenario(t, cfg, scn)

	calm := scn
	calm.Events = nil
	calmRep := runScenario(t, cfg, calm)

	if rep.Requests != calmRep.Requests {
		t.Fatalf("degrade lost traffic: %d served vs %d calm", rep.Requests, calmRep.Requests)
	}
	slow, calmSlow := rep.Phases[1].Latency, calmRep.Phases[1].Latency
	if slow.P99 <= calmSlow.P99 || slow.Mean <= calmSlow.Mean {
		t.Fatalf("degrade did not bite: slow phase p99 %v (calm %v), mean %v (calm %v)",
			slow.P99, calmSlow.P99, slow.Mean, calmSlow.Mean)
	}
	healed, calmHealed := rep.Phases[2].Latency, calmRep.Phases[2].Latency
	if healed.P99 > calmHealed.P99*2 {
		t.Fatalf("heal did not release the node: healed phase p99 %v vs calm %v", healed.P99, calmHealed.P99)
	}
}

// TestShedControllerBites is the brownout acceptance check at unit scale:
// under a sustained degrade that breaches the SLO, the controller must shed
// (Shed > 0 only on the degraded node), and the run with the shed policy
// must deliver a lower served-traffic p99 and no worse SLO compliance than
// the same run without it.
func TestShedControllerBites(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocGlibc)
	target := primaryHeavyNode(cfg)
	classes := []workload.TrafficClass{
		{Name: "point", Rate: 120_000, Keys: 6_000, ReadFraction: 0.5, ValueBytes: 4 << 10},
	}
	scn := workload.Scenario{
		Name: "shed",
		Seed: 13,
		Phases: []workload.Phase{
			{Name: "steady", Duration: 30 * simtime.Millisecond, Classes: classes},
			{Name: "brownout", Duration: 90 * simtime.Millisecond, Classes: classes},
		},
		Events: []workload.Event{
			{At: 30 * simtime.Millisecond, Node: target, Kind: workload.EventDegradeNode, Factor: 12},
		},
		SLO:      &workload.SLO{P99: 100 * simtime.Microsecond, Window: 5 * simtime.Millisecond},
		Policies: &workload.Policies{Shed: &workload.ShedPolicy{Step: 0.25, Max: 0.9}},
	}
	shedRep := runScenario(t, cfg, scn)

	static := scn
	static.Policies = nil
	staticRep := runScenario(t, cfg, static)

	if shedRep.Shed == 0 {
		t.Fatal("SLO controller never shed under a sustained breach")
	}
	for ni, nr := range shedRep.PerNode {
		if ni != target && nr.Shed != 0 {
			t.Errorf("healthy node %d shed %d requests", ni, nr.Shed)
		}
	}
	if staticRep.Shed != 0 {
		t.Fatalf("run without a shed policy shed %d requests", staticRep.Shed)
	}
	if shedRep.Cluster.P99 >= staticRep.Cluster.P99 {
		t.Fatalf("shedding did not lower served p99: %v with policy, %v without",
			shedRep.Cluster.P99, staticRep.Cluster.P99)
	}
	if shedRep.SLOCompliance < staticRep.SLOCompliance {
		t.Fatalf("shedding lowered SLO compliance: %.4f with policy, %.4f without",
			shedRep.SLOCompliance, staticRep.SLOCompliance)
	}
	if shedRep.SLOTarget != scn.SLO.P99 {
		t.Fatalf("report SLO target %v, want %v", shedRep.SLOTarget, scn.SLO.P99)
	}
	if out := shedRep.Render(); !strings.Contains(out, "resilience:") || !strings.Contains(out, "slo:") {
		t.Error("report renders no resilience/slo summary")
	}

	cfg.Sequential = true
	seq := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(shedRep, seq) {
		t.Fatal("shed-policy run diverged between engines")
	}
}

// TestResilienceWithTopologyChaos composes the resilience layer with
// kill/restore topology dynamics — the regime where conditional retries
// can be suppressed at spawn (their landing would be unobservable) or
// dropped at routing — and requires both engines to still agree bit for
// bit, with the retry accounting staying within its causal bound.
func TestResilienceWithTopologyChaos(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocGlibc)
	target := primaryHeavyNode(cfg)
	scn := brownoutScenario(target)
	scn.Events = append(scn.Events,
		workload.Event{At: 60 * simtime.Millisecond, Node: target, Kind: workload.EventKillNode, Policy: workload.KillDrain},
		workload.Event{At: 100 * simtime.Millisecond, Node: target, Kind: workload.EventRestoreNode},
	)
	par := runScenario(t, cfg, scn)
	cfg.Sequential = true
	seq := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("resilience+topology run diverged between engines:\npar: %+v\nseq: %+v", par, seq)
	}
	if par.Failovers == 0 {
		t.Error("kill diverted no requests under the composed drill")
	}
	if par.Errors == 0 || par.Retries == 0 {
		t.Errorf("composed drill did not exercise the fault paths: errors=%d retries=%d", par.Errors, par.Retries)
	}
	// Suppressed conditionals and route-dropped retries mean some causes
	// never produce a fired retry: the exact identity relaxes to an upper
	// bound.
	if par.Retries > par.Errors+par.Timeouts {
		t.Errorf("retries %d exceed their causes (errors %d + timeouts %d)", par.Retries, par.Errors, par.Timeouts)
	}
}

// TestBrownoutPreset runs the committed brownout preset on both engines at
// a smoke scale: the reports must be bit-identical, the fault burst and the
// retry/hedge paths must bite, the SLO controller must shed on the degraded
// node, and the SLO-adaptive run must beat the same run with the shed
// policy stripped (static degradation) on served p99 without losing
// compliance.
func TestBrownoutPreset(t *testing.T) {
	data, err := os.ReadFile("../../examples/scenarios/brownout.json")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseScenarioSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Overrides == nil || spec.Overrides.ShardReplicas < 2 {
		t.Fatal("brownout preset must pin shard replicas >= 2 (hedges need a live replica)")
	}
	if spec.Scenario.SLO == nil || spec.Scenario.Policies == nil || spec.Scenario.Policies.Shed == nil {
		t.Fatal("brownout preset must declare an SLO and a shed policy")
	}
	cfg, err := spec.Overrides.Apply(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = spec.Scenario.Seed
	scn := spec.Scenario.Scaled(0.05)

	par := runScenario(t, cfg, scn)
	cfg.Sequential = true
	seq := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("brownout preset diverged between engines:\npar: %+v\nseq: %+v", par, seq)
	}
	if par.Errors == 0 || par.Retries == 0 || par.Hedges == 0 {
		t.Fatalf("preset brownout did not bite: errors=%d retries=%d hedges=%d",
			par.Errors, par.Retries, par.Hedges)
	}
	if par.Shed == 0 {
		t.Fatal("preset SLO controller never shed during the breach")
	}

	// The degrade target must own shard primaries, or the brownout
	// demonstrates nothing — guard against ring drift re-shuffling it.
	cfg.Sequential = false
	c := New(cfg)
	defer c.Close()
	target := spec.Scenario.Events[0].Node
	owns := 0
	for _, chain := range c.chains {
		if chain[0] == target {
			owns++
		}
	}
	if owns == 0 {
		t.Fatalf("preset degrades node %d, which owns no shard primaries", target)
	}

	// Adaptive vs static: strip the shed policy and replay the identical
	// brownout. The SLO-adaptive run must deliver a lower served p99 and no
	// worse compliance.
	static := scn
	static.Policies = nil
	staticRep := runScenario(t, cfg, static)
	if staticRep.Shed != 0 {
		t.Fatalf("static run shed %d requests without a policy", staticRep.Shed)
	}
	if par.Cluster.P99 >= staticRep.Cluster.P99 {
		t.Fatalf("adaptive shedding did not lower served p99: %v adaptive, %v static",
			par.Cluster.P99, staticRep.Cluster.P99)
	}
	if par.SLOCompliance < staticRep.SLOCompliance {
		t.Fatalf("adaptive shedding lowered SLO compliance: %.4f adaptive, %.4f static",
			par.SLOCompliance, staticRep.SLOCompliance)
	}
}

// TestResilienceValidation: malformed soft-fault timelines — heals without
// a degrade, fault windows on unknown shards — come back as field-named
// errors before the run starts, never a panic.
func TestResilienceValidation(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocGlibc)
	c := New(cfg)
	defer c.Close()
	base := brownoutScenario(1)

	mut := func(events ...workload.Event) workload.Scenario {
		s := base
		s.SLO, s.Policies = nil, nil
		s.Events = events
		return s
	}
	badShard := 99
	cases := []struct {
		name string
		scn  workload.Scenario
		want string
	}{
		{"heal without degrade", mut(workload.Event{At: 0, Node: 1, Kind: workload.EventHealNode}),
			"not degraded"},
		{"fault window on unknown shard", mut(workload.Event{At: 0, Node: -1, Kind: workload.EventFaultWindow,
			ErrorRate: 0.5, Duration: simtime.Millisecond, Shard: &badShard}),
			"cluster has 8 shards"},
		{"degrade without factor", mut(workload.Event{At: 0, Node: 1, Kind: workload.EventDegradeNode}),
			"Factor"},
		{"fault window without duration", mut(workload.Event{At: 0, Node: 1, Kind: workload.EventFaultWindow,
			ErrorRate: 0.5}),
			"Duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.RunScenario(tc.scn)
			if err == nil {
				t.Fatal("malformed resilience timeline accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
