package cluster

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/hermes-sim/hermes/internal/stats"
	"github.com/hermes-sim/hermes/internal/workload"
)

// reportsEqual compares two Reports field for field, pointing at the first
// difference — DeepEqual alone gives useless failure output.
func reportsEqual(t *testing.T, seq, par Report) {
	t.Helper()
	if seq.Requests != par.Requests || seq.Reads != par.Reads || seq.Writes != par.Writes {
		t.Errorf("request accounting differs: seq %d/%d/%d, par %d/%d/%d",
			seq.Requests, seq.Reads, seq.Writes, par.Requests, par.Reads, par.Writes)
	}
	if seq.Cluster != par.Cluster {
		t.Errorf("cluster digest differs:\nseq %v\npar %v", seq.Cluster, par.Cluster)
	}
	if seq.Wait != par.Wait {
		t.Errorf("wait digest differs:\nseq %v\npar %v", seq.Wait, par.Wait)
	}
	for i := range seq.PerNode {
		if !reflect.DeepEqual(seq.PerNode[i], par.PerNode[i]) {
			t.Errorf("node %d differs:\nseq %+v\npar %+v", i, seq.PerNode[i], par.PerNode[i])
		}
	}
	for i := range seq.PerShard {
		if seq.PerShard[i] != par.PerShard[i] {
			t.Errorf("shard %d differs:\nseq %v\npar %v", i, seq.PerShard[i], par.PerShard[i])
		}
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("reports differ outside the compared fields")
	}
}

// runBoth executes the identical (config, load) pair on two fresh clusters,
// one per engine, and returns both reports.
func runBoth(t *testing.T, cfg Config, load workload.LoadConfig) (seq, par Report) {
	t.Helper()
	cs := New(cfg)
	defer cs.Close()
	seq = cs.RunSequential(load)
	cp := New(cfg)
	defer cp.Close()
	par = cp.RunParallel(load)
	return seq, par
}

func TestParallelMatchesSequentialAcrossAllocatorsAndSeeds(t *testing.T) {
	for _, kind := range AllocatorKinds {
		for _, seed := range []uint64{1, 99} {
			kind, seed := kind, seed
			t.Run(string(kind), func(t *testing.T) {
				cfg := testClusterConfig(kind)
				cfg.Seed = seed
				load := testLoad()
				load.Seed = seed
				seq, par := runBoth(t, cfg, load)
				reportsEqual(t, seq, par)
			})
		}
	}
}

func TestParallelMatchesSequentialHistogramMode(t *testing.T) {
	cfg := testClusterConfig(AllocGlibc)
	cfg.Stats = StatsHistogram
	seq, par := runBoth(t, cfg, testLoad())
	if seq.Stats != StatsHistogram || par.Stats != StatsHistogram {
		t.Fatalf("reports do not echo histogram mode: %q/%q", seq.Stats, par.Stats)
	}
	reportsEqual(t, seq, par)
}

func TestParallelMatchesSequentialUnderPressure(t *testing.T) {
	// Background machinery (pressure generator, kswapd) consumes per-node
	// RNG draws and schedules events; equivalence must survive it.
	cfg := testClusterConfig(AllocHermes)
	p := workload.DefaultPressureConfig(workload.PressureAnon)
	p.FileBytes = 0
	p.FreeBytes = 8 << 20
	cfg.Pressure = &p
	seq, par := runBoth(t, cfg, testLoad())
	reportsEqual(t, seq, par)
}

func TestRunDispatchesOnSequentialFlag(t *testing.T) {
	cfg := testClusterConfig(AllocGlibc)
	cfg.Sequential = true
	c := New(cfg)
	defer c.Close()
	seq := c.Run(testLoad())
	cfg.Sequential = false
	c2 := New(cfg)
	defer c2.Close()
	par := c2.Run(testLoad())
	reportsEqual(t, seq, par)
}

func TestParallelPersistentRecordersAccumulate(t *testing.T) {
	cfg := testClusterConfig(AllocGlibc)
	c := New(cfg)
	defer c.Close()
	load := testLoad()
	load.Requests = 5000
	first := c.RunParallel(load)
	load.Start = c.Nodes()[0].Now()
	second := c.RunParallel(load)
	if first.Requests != 5000 || second.Requests != 5000 {
		t.Fatalf("run reports cover %d/%d requests, want 5000 each", first.Requests, second.Requests)
	}
	var accumulated int
	for id := 0; id < cfg.Shards; id++ {
		accumulated += c.Shard(id).Recorder().Count()
	}
	if accumulated != 10000 {
		t.Fatalf("persistent shard recorders hold %d samples, want 10000", accumulated)
	}
	var nodeAcc int
	for _, n := range c.Nodes() {
		nodeAcc += n.rec.Count()
	}
	if nodeAcc != 10000 {
		t.Fatalf("persistent node recorders hold %d samples, want 10000", nodeAcc)
	}
}

func TestHistogramModeMemoryBounded(t *testing.T) {
	buckets := func(requests int64) int {
		cfg := testClusterConfig(AllocGlibc)
		cfg.Stats = StatsHistogram
		c := New(cfg)
		defer c.Close()
		load := testLoad()
		load.Requests = requests
		c.Run(load)
		total := 0
		for id := 0; id < cfg.Shards; id++ {
			rec := c.Shard(id).Recorder()
			if !rec.Streaming() {
				t.Fatalf("shard %d recorder is not streaming in histogram mode", id)
			}
			if got := rec.Histogram().Buckets(); got > stats.MaxBuckets() {
				t.Fatalf("shard %d grew to %d buckets, ceiling is %d", id, got, stats.MaxBuckets())
			}
			total += rec.Histogram().Buckets()
		}
		return total
	}
	// Digest memory must not scale with the request count: 4× the samples,
	// same bucket footprint (up to the one-off growth to the latency range).
	small, large := buckets(5_000), buckets(20_000)
	if large > small*2 {
		t.Fatalf("bucket footprint grew with samples: %d buckets at 5k vs %d at 20k", small, large)
	}
}

// TestParallelSingleCoreMatchesSequential pins the GOMAXPROCS-adaptive
// dispatch in the scenario engine. At GOMAXPROCS=1 the parallel engine
// skips the chunk pipeline and takes the full-partition path — and, for
// flat loads with no timeline, the bare-Request specialization under it.
// The rest of the suite runs at the host's GOMAXPROCS (≥2 in CI), which
// only exercises the pipeline, so this test is the coverage those
// single-core paths get. Both must reproduce the sequential report bit
// for bit, which is exactly what makes the dispatch result-neutral.
func TestParallelSingleCoreMatchesSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	t.Run("flat", func(t *testing.T) {
		// Flat load, no events: RunScenario → partitioned → flat-load
		// specialization.
		cfg := testClusterConfig(AllocHermes)
		cfg.Sequential = true
		cs := New(cfg)
		defer cs.Close()
		seq := cs.Run(testLoad())
		cfg.Sequential = false
		cp := New(cfg)
		defer cp.Close()
		par := cp.Run(testLoad())
		reportsEqual(t, seq, par)
	})

	t.Run("scenario", func(t *testing.T) {
		// Multi-phase scenario with a live timeline: RunScenario →
		// partitioned path proper.
		cfg, scn := eventScenario()
		cfg.Sequential = true
		seq := runScenario(t, cfg, scn)
		cfg.Sequential = false
		par := runScenario(t, cfg, scn)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("single-core parallel scenario diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
		}
	})
}
