package cluster

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/metrics"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
	"github.com/hermes-sim/hermes/internal/workload"
)

// This file executes declarative scenarios (workload.Scenario) on a
// cluster: the phased multi-class stream drives the same serve path as a
// flat load, every timeline event fires deterministically inside the run
// loop, and the resulting ScenarioReport segments latency per phase, class
// and node on top of the base Report.

// ClassReport digests one traffic class of one phase.
type ClassReport struct {
	// Name echoes the class name.
	Name string
	// Requests, Reads and Writes count the class's operations in the
	// phase.
	Requests, Reads, Writes int64
	// Latency is the class's cluster-wide digest.
	Latency stats.Summary
	// PerNode slices the class digest by serving node (index order).
	PerNode []stats.Summary
}

// PhaseReport digests one phase of a scenario run.
type PhaseReport struct {
	// Name echoes the phase name.
	Name string
	// Start and End bound the phase on the virtual timeline (End is the
	// declared duration end, or the last arrival for request-bounded
	// phases).
	Start, End simtime.Time
	// Requests counts the phase's requests across classes.
	Requests int64
	// Latency is the phase's cluster-wide digest across classes.
	Latency stats.Summary
	// Classes are the per-class digests, in declaration order.
	Classes []ClassReport
}

// ScenarioReport is the digest of one scenario run: the base Report
// (cluster-wide, per-node, per-shard — exactly what an equivalent flat run
// produces) plus the phase × class × node segmentation.
type ScenarioReport struct {
	// Name echoes the scenario name.
	Name string
	Report
	// Phases are the per-phase digests, in declaration order.
	Phases []PhaseReport
	// Metrics is the per-window time series, present only when the cluster
	// was configured with Config.Metrics.
	Metrics []metrics.Sample `json:",omitempty"`
}

// Render prints the scenario report in the repo's table style.
func (r ScenarioReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %q: allocator=%s service=%s requests=%d (reads=%d writes=%d)\n",
		r.Name, r.Allocator, r.Service, r.Requests, r.Reads, r.Writes)
	fmt.Fprintf(&b, "%s\n%s\n", r.Cluster, r.Wait)
	if r.Failovers > 0 || r.Dropped > 0 || r.MigratedBytes > 0 {
		fmt.Fprintf(&b, "topology: failovers=%d dropped=%d migrated=%s\n",
			r.Failovers, r.Dropped, fmtBytes(r.MigratedBytes))
	}
	if r.resilienceActive() {
		fmt.Fprintf(&b, "resilience: retries=%d timeouts=%d errors=%d hedges=%d shed=%d failed=%d\n",
			r.Retries, r.Timeouts, r.Errors, r.Hedges, r.Shed, r.Failed)
		if r.SLOTarget > 0 {
			fmt.Fprintf(&b, "slo: p99<=%v compliance=%.2f%%\n", r.SLOTarget, r.SLOCompliance*100)
		}
	}
	if len(r.Actions) > 0 {
		b.WriteString(renderActions("controller", r.Actions))
	}
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "phase %-12s [%v → %v] requests=%d\n  %s\n",
			p.Name, p.Start, p.End, p.Requests, p.Latency)
		for _, tc := range p.Classes {
			fmt.Fprintf(&b, "  class %-10s reads=%-8d writes=%-8d %s\n",
				tc.Name, tc.Reads, tc.Writes, tc.Latency)
		}
	}
	b.WriteString("per node:\n")
	for _, n := range r.PerNode {
		fmt.Fprintf(&b, "  %s  shards=%-3d reclaims=%-6d swapouts=%-8d %s\n",
			n.Name, n.Shards, n.Kernel.DirectReclaims, n.Kernel.PagesSwapOut, n.Latency)
		if n.Downtime > 0 || n.Failovers > 0 || n.Dropped > 0 || n.MigratedBytes > 0 {
			fmt.Fprintf(&b, "    topology: downtime=%v failovers=%d dropped=%d migrated=%s\n",
				n.Downtime, n.Failovers, n.Dropped, fmtBytes(n.MigratedBytes))
		}
		if n.Retries > 0 || n.Timeouts > 0 || n.Errors > 0 || n.Hedges > 0 || n.Shed > 0 || n.Failed > 0 || r.SLOTarget > 0 {
			fmt.Fprintf(&b, "    resilience: retries=%d timeouts=%d errors=%d hedges=%d shed=%d failed=%d compliance=%.2f%%\n",
				n.Retries, n.Timeouts, n.Errors, n.Hedges, n.Shed, n.Failed, n.SLOCompliance*100)
		}
		if len(n.Actions) > 0 {
			b.WriteString("    " + renderActions("controller", n.Actions))
		}
	}
	return b.String()
}

// nodeEvent is one timeline entry resolved onto a node: the absolute
// firing instant plus the declaration index for same-instant ordering.
type nodeEvent struct {
	at simtime.Time
	ev workload.Event
}

// pcState accumulates one (phase, class) cell of the segmentation: a
// recorder and read/write counters per node, so concurrent node goroutines
// never share state.
type pcState struct {
	node   []*stats.Recorder
	reads  []int64
	writes []int64
}

// scenarioRun is one scenario run's working state: the base runState plus
// the phase × class digests and each node's pending event queue.
type scenarioRun struct {
	st *runState
	// pc is indexed by pcOff[phase]+class. It is nil for single-cell
	// scenarios (one phase, one class — every flat Run): the lone cell's
	// digests equal the base report's, so segmenting would only re-sort
	// every raw sample a third time. finishScenario reuses the base
	// digests instead, which is what keeps the adapter's overhead on the
	// seed path near zero.
	pc    []*pcState
	pcOff []int
	// events[n] is node n's timeline in firing order; cursor[n] is the
	// next entry to fire.
	events [][]nodeEvent
	cursor []int
	// topo is the compiled outage schedule, nil when the scenario has no
	// kill/restore events (every counter below stays nil with it). The
	// counters are node-indexed: failover and routeDropped fill during
	// generation (one goroutine on both engines), qdropped and migrated
	// during serving, where a goroutine only ever touches its own node's
	// slot — so the parallel engine shares nothing.
	topo         *topology
	failover     []int64 // requests a node served for a down primary
	routeDropped []int64 // drops at routing, charged to the primary
	qdropped     []int64 // backlog drops at a drop-policy kill
	migrated     []int64 // bytes restores re-filled into a node's shards
	// res is the compiled resilience layer, nil when the scenario has no
	// soft-fault events, class policies or SLO. Its counters and state
	// follow the same ownership rule as the topology counters: a node
	// goroutine only ever touches its own slot.
	res      *resilience
	retries  []int64          // retry attempts that actually fired
	timeouts []int64          // served attempts whose latency beat the class deadline
	errors   []int64          // attempts failed fast by a fault window
	hedges   []int64          // speculative read hedges sent
	shed     []int64          // attempts rejected by admission control
	failed   []int64          // chains exhausted without a successful attempt
	fates    []map[int64]bool // per node: chain id → last attempt failed
	ctl      []*controller    // per node, nil without a policies block
	// met is the time-series collector, nil without Config.Metrics. Its
	// per-node windows roll at arrivals under the same node-local ownership
	// rule as everything above.
	met *metrics.Collector
}

// validateScenario checks the scenario against this cluster: the scenario
// must be well-formed on its own, and every event must target an existing
// node and machinery the fleet actually has.
func (c *Cluster) validateScenario(scn workload.Scenario) error {
	if err := scn.Validate(); err != nil {
		return err
	}
	for i, e := range scn.Events {
		if e.Node >= len(c.nodes) {
			return fmt.Errorf("cluster: scenario %q event %d (%s): targets node %d but the cluster has %d nodes",
				scn.Name, i, e.Kind, e.Node, len(c.nodes))
		}
		if (e.Kind == workload.EventDaemonStart || e.Kind == workload.EventDaemonStop) &&
			c.cfg.Allocator != AllocHermes {
			return fmt.Errorf("cluster: scenario %q event %d (%s): the monitor daemon requires the hermes allocator (cluster runs %q)",
				scn.Name, i, e.Kind, c.cfg.Allocator)
		}
	}
	if scn.Policies != nil && scn.Policies.Allocator != nil && c.cfg.Allocator != AllocHermes {
		return fmt.Errorf("cluster: scenario %q: the allocator policy requires the hermes allocator (cluster runs %q)",
			scn.Name, c.cfg.Allocator)
	}
	return nil
}

func (c *Cluster) newScenarioRun(scn workload.Scenario, topo *topology, res *resilience) *scenarioRun {
	sr := &scenarioRun{
		st:     c.newRunState(),
		events: make([][]nodeEvent, len(c.nodes)),
		cursor: make([]int, len(c.nodes)),
		topo:   topo,
		res:    res,
	}
	if topo != nil {
		sr.failover = make([]int64, len(c.nodes))
		sr.routeDropped = make([]int64, len(c.nodes))
		sr.qdropped = make([]int64, len(c.nodes))
		sr.migrated = make([]int64, len(c.nodes))
	}
	if res != nil {
		sr.retries = make([]int64, len(c.nodes))
		sr.timeouts = make([]int64, len(c.nodes))
		sr.errors = make([]int64, len(c.nodes))
		sr.hedges = make([]int64, len(c.nodes))
		sr.shed = make([]int64, len(c.nodes))
		sr.failed = make([]int64, len(c.nodes))
		sr.fates = make([]map[int64]bool, len(c.nodes))
		for i := range sr.fates {
			sr.fates[i] = make(map[int64]bool)
		}
		sr.st.degrade = res.degrade
		if res.pol != nil {
			sr.ctl = make([]*controller, len(c.nodes))
			for i := range sr.ctl {
				sr.ctl[i] = newController(c, scn, i)
			}
		}
	}
	if c.cfg.Metrics != nil {
		// The snapshot closure reads only machinery owned by the node whose
		// window is closing: its kernel's counters and its resilience slots.
		sr.met = metrics.NewCollector(scn.Start, c.cfg.Metrics.Period, len(c.nodes),
			func(node int) metrics.Counters {
				n := c.nodes[node]
				ks := n.kernel.Stats()
				cnt := metrics.Counters{
					Reclaims: ks.DirectReclaims,
					Swapouts: ks.PagesSwapOut,
					RSSBytes: n.kernel.TotalPages()*n.kernel.PageSize() - n.kernel.FreeBytes(),
				}
				if res != nil {
					cnt.Shed = sr.shed[node]
					cnt.Retries = sr.retries[node]
					cnt.Errors = sr.errors[node]
					cnt.Timeouts = sr.timeouts[node]
					cnt.Hedges = sr.hedges[node]
				}
				return cnt
			})
	}
	if len(scn.Phases) > 1 || len(scn.Phases[0].Classes) > 1 {
		for _, p := range scn.Phases {
			sr.pcOff = append(sr.pcOff, len(sr.pc))
			for _, tc := range p.Classes {
				pc := &pcState{
					node:   make([]*stats.Recorder, len(c.nodes)),
					reads:  make([]int64, len(c.nodes)),
					writes: make([]int64, len(c.nodes)),
				}
				for ni := range c.nodes {
					pc.node[ni] = c.newRecorder(p.Name + "/" + tc.Name)
				}
				sr.pc = append(sr.pc, pc)
			}
		}
	}
	for _, e := range scn.Events {
		at := scn.Start.Add(e.At)
		if e.Node >= 0 {
			sr.events[e.Node] = append(sr.events[e.Node], nodeEvent{at: at, ev: e})
			continue
		}
		for ni := range c.nodes {
			sr.events[ni] = append(sr.events[ni], nodeEvent{at: at, ev: e})
		}
	}
	for ni := range sr.events {
		// Stable: same-instant events keep declaration order.
		sort.SliceStable(sr.events[ni], func(i, j int) bool {
			return sr.events[ni][i].at.Before(sr.events[ni][j].at)
		})
	}
	return sr
}

// fireEventsUpTo fires the node's pending events with firing instants at or
// before upTo, advancing the node's clock to each instant first. Events are
// node-local, so each node's history — events interleaved with its request
// stream — is identical on both engines.
func (c *Cluster) fireEventsUpTo(sr *scenarioRun, n *Node, upTo simtime.Time) {
	q := sr.events[n.Index]
	for sr.cursor[n.Index] < len(q) {
		ne := q[sr.cursor[n.Index]]
		if ne.at.After(upTo) {
			return
		}
		sr.cursor[n.Index]++
		if ne.at.After(n.sched.Now()) {
			n.sched.RunUntil(ne.at)
		}
		c.applyEvent(sr, n, ne)
	}
}

// applyEvent applies one timeline action to a node at the node's current
// virtual time.
func (c *Cluster) applyEvent(sr *scenarioRun, n *Node, ne nodeEvent) {
	ev := ne.ev
	switch ev.Kind {
	case workload.EventPressureStart:
		c.stopPressure(n)
		pcfg := workload.DefaultPressureConfig(workload.PressureAnon)
		if ev.Pressure != nil {
			pcfg = *ev.Pressure
		}
		c.startPressure(n, pcfg)
	case workload.EventPressureStop:
		c.stopPressure(n)
	case workload.EventBatchStart:
		c.stopBatchRunner(n)
		bcfg := batch.DefaultConfig()
		if ev.Batch != nil {
			bcfg = *ev.Batch
		}
		if bcfg.TargetBytes == 0 {
			// Default to full-memory pressure: the co-location regime.
			bcfg.TargetBytes = n.kernel.TotalPages() * n.kernel.PageSize()
		}
		c.startBatchRunner(n, bcfg)
		c.attachBatchRefresh(n)
	case workload.EventBatchStop:
		c.stopBatchRunner(n)
	case workload.EventDaemonStart:
		c.stopDaemon(n)
		dcfg := monitor.DefaultConfig()
		if ev.Daemon != nil {
			dcfg = *ev.Daemon
		}
		c.startDaemon(n, dcfg)
	case workload.EventDaemonStop:
		c.stopDaemon(n)
	case workload.EventSqueezeStart:
		if n.squeeze == nil {
			n.squeeze = n.kernel.CreateProcess("squeeze")
		}
		now := n.sched.Now()
		// Round up so a sub-page squeeze still pins something rather than
		// silently doing nothing.
		pages := (ev.Bytes + n.kernel.PageSize() - 1) / n.kernel.PageSize()
		r, _ := n.kernel.Mmap(now, n.squeeze, pages)
		n.kernel.FaultIn(now, r, pages)
	case workload.EventSqueezeStop:
		if n.squeeze != nil {
			n.kernel.ExitProcess(n.squeeze)
			n.squeeze = nil
		}
	case workload.EventKillNode:
		// The node is fenced: its co-tenant machinery dies with it and
		// its squeeze footprint is released, but kernel and service state
		// stay resident for the restore (a crashed process, not a wiped
		// machine). Being out of rotation is enforced by the routing
		// schedule, not here — a down node simply receives no arrivals.
		c.stopPressure(n)
		c.stopBatchRunner(n)
		c.stopDaemon(n)
		if n.squeeze != nil {
			n.kernel.ExitProcess(n.squeeze)
			n.squeeze = nil
		}
	case workload.EventRestoreNode:
		// Re-fill the node's primary shards with the writes the outage
		// diverted to replicas; the manifest is complete by now (see
		// migration.go's determinism argument). Background machinery the
		// kill stopped stays stopped — a later timeline event can restart
		// it explicitly.
		if w := sr.topo.windowEndingAt(n.Index, ne.at); w != nil {
			sr.migrated[n.Index] += c.replayMigration(w.manifest)
		}
	case workload.EventDegradeNode, workload.EventHealNode, workload.EventFaultWindow:
		// Soft faults are schedule-driven (resilience.go compiles them up
		// front, like the outage schedule): nothing to do at the firing
		// instant itself.
	}
}

// pcIndex flattens a request's (phase, class) onto its segmentation cell,
// or -1 for single-cell scenarios (whose base digests cover everything).
func (sr *scenarioRun) pcIndex(req workload.ScenarioRequest) int32 {
	if sr.pc == nil {
		return -1
	}
	return int32(sr.pcOff[req.Phase] + req.Class)
}

// pcIndexAt is pcIndex on bare (phase, class) indices, for the resilience
// expander's retries and hedges.
func (sr *scenarioRun) pcIndexAt(phase, class int32) int32 {
	if sr.pc == nil {
		return -1
	}
	return int32(sr.pcOff[phase]) + class
}

// setFate records a chain attempt's outcome in the serving node's fate
// table, but only when a conditional successor will read it (attTracked);
// everything else would be dead state.
func (sr *scenarioRun) setFate(node int, meta resAttempt, failed bool) {
	if meta.is(attTracked) {
		sr.fates[node][meta.id] = failed
	}
}

// serveScenario fires the serving node's due events, runs the resilience
// layer's node-local checks (conditional-retry fate, admission control,
// fail-fast errors), serves the request through the shared serve path, and
// segments the recorded latency into the request's (phase, class, node)
// cell. inst is the replica-chain position routing picked (0 — the primary
// — whenever the scenario has no topology events). Every decision here
// depends only on the node's own arrival-ordered state, which is what
// keeps the two engines bit-identical.
func (c *Cluster) serveScenario(sr *scenarioRun, shardID int, inst, pcIdx int32, req workload.Request, meta resAttempt) {
	in := c.shards[shardID].instances[inst]
	n := in.node
	c.fireEventsUpTo(sr, n, req.At)
	if sr.met != nil {
		// Roll the node's metrics windows at the arrival, before any verdict:
		// shed and errored attempts advance windows exactly like served ones.
		sr.met.Tick(n.Index, req.At)
	}
	// A request is inside the resilience layer when it belongs to a chain
	// (id != 0) or carries a verdict flag (a fault-window error on a
	// policy-less class).
	resilient := meta.id != 0 || meta.flags != 0
	if meta.id != 0 && meta.is(attCond) {
		// Speculative timeout retry: fires only if the chain's previous
		// attempt failed here. Either way the fate entry is consumed.
		failed := sr.fates[n.Index][meta.id]
		if !meta.is(attTracked) {
			delete(sr.fates[n.Index], meta.id)
		}
		if !failed {
			return // the previous attempt succeeded: never sent
		}
	}
	if resilient {
		if meta.is(attRetry) {
			sr.retries[n.Index]++
		}
		if meta.is(attHedge) {
			sr.hedges[n.Index]++
		}
	}
	if sr.ctl != nil {
		// SLO admission control, before the request can queue. A shed
		// attempt terminates its chain: brownout clients must not pile
		// retries onto a node that just told them to back off.
		if ctl := sr.ctl[n.Index]; !ctl.admit(req.At) {
			sr.shed[n.Index]++
			if resilient && !meta.is(attHedge) {
				sr.setFate(n.Index, meta, false)
			}
			return
		}
	}
	if resilient && meta.is(attErr) {
		// Fault-window error: fail fast, no service work, no clock cost.
		sr.errors[n.Index]++
		sr.setFate(n.Index, meta, true)
		if meta.is(attLast) {
			sr.failed[n.Index]++
		}
		return
	}
	if sr.topo != nil {
		if sr.topo.dropsQueued(n.Index, req.At, n.sched.Now()) {
			// A drop-policy kill severed the backlog this request was
			// queued in: count it, serve nothing. The client sees a dead
			// connection — a timeout-speculative retry (if one exists)
			// will fire.
			sr.qdropped[n.Index]++
			if resilient && !meta.is(attHedge) {
				sr.setFate(n.Index, meta, true)
			}
			return
		}
		if inst > 0 && !meta.is(attHedge) {
			// A hedge on a replica is there by design, not because the
			// primary was down — it is not a failover serve.
			sr.failover[n.Index]++
		}
	}
	lat := c.serveOn(sr.st, shardID, int(inst), req)
	if sr.ctl != nil {
		sr.ctl[n.Index].observe(lat)
	}
	if sr.met != nil {
		sr.met.Observe(n.Index, lat)
	}
	if resilient && !meta.is(attHedge) {
		timedOut := false
		if rc := &sr.res.class[meta.cls]; rc.timeout > 0 && lat > rc.timeout {
			timedOut = true
			sr.timeouts[n.Index]++
			if meta.is(attLast) {
				sr.failed[n.Index]++
			}
		}
		sr.setFate(n.Index, meta, timedOut)
	}
	if pcIdx < 0 { // single-cell scenario: the base digests cover it
		return
	}
	pc := sr.pc[pcIdx]
	pc.node[n.Index].Record(lat)
	if req.Op == workload.OpRead {
		pc.reads[n.Index]++
	} else {
		pc.writes[n.Index]++
	}
}

// RunScenario drives the fleet through the declarative scenario and returns
// the phase- and class-segmented digests. Generation, routing, event firing
// and every random draw are deterministic, so one (config, scenario) pair
// reproduces the run exactly — on either engine (Config.Sequential selects
// the single-goroutine one; the default partitions the stream per node).
// The scenario is validated up front; nothing panics mid-run on a
// malformed spec.
func (c *Cluster) RunScenario(scn workload.Scenario) (ScenarioReport, error) {
	if err := c.validateScenario(scn); err != nil {
		return ScenarioReport{}, err
	}
	topo, err := c.newTopology(scn)
	if err != nil {
		return ScenarioReport{}, err
	}
	res, err := c.newResilience(scn)
	if err != nil {
		return ScenarioReport{}, err
	}
	if c.cfg.Sequential || len(c.nodes) == 1 {
		return c.runScenarioSequential(scn, topo, res), nil
	}
	return c.runScenarioParallel(scn, topo, res), nil
}

// generateScenario pulls the scenario's request stream, routing each
// request — shard by key, serving instance by the outage schedule — and
// handing it to emit; it returns the generated phase bounds. Flat lifted
// scenarios (every Cluster.Run) are detected and driven by the plain
// LoadDriver — the identical stream without the merge layer, so the
// adapter costs the seed path nothing; a topology schedule disables the
// bypass because routing then depends on the arrival instant. Both engines
// share this: only the emit sink differs (serve now vs. partition for
// later). Requests whose whole replica chain is down never reach emit —
// they are counted against the primary and dropped here, at routing.
func (c *Cluster) generateScenario(scn workload.Scenario, sr *scenarioRun,
	emit func(req workload.Request, shard, inst, pc int32, meta resAttempt)) []workload.PhaseBound {
	if flat, ok := scn.FlatLoad(); ok && sr.topo == nil && sr.res == nil {
		d := workload.NewLoadDriver(flat)
		bound := workload.PhaseBound{Start: flat.Start, End: flat.Start}
		for {
			req, ok := d.Next()
			if !ok {
				break
			}
			emit(req, int32(c.router.ShardForKey(req.Key)), 0, -1, resAttempt{})
			bound.End = req.At
			bound.Requests++
		}
		return []workload.PhaseBound{bound}
	}
	if sr.res != nil && sr.res.anyPolicy {
		// Classes with resilience policies expand into attempt chains
		// (retries, hedges) merged with the base stream.
		return c.generateResilient(scn, sr, emit)
	}
	d := workload.NewScenarioDriver(scn)
	for {
		req, ok := d.Next()
		if !ok {
			break
		}
		shard := c.router.ShardForKey(req.Key)
		inst := 0
		if sr.topo != nil {
			var up bool
			if inst, up = c.routeInstance(sr.topo, shard, req.At); !up {
				sr.routeDropped[c.chains[shard][0]]++
				continue
			}
			if inst > 0 && req.Op == workload.OpWrite {
				// A write diverted past a down primary lands in the
				// primary's migration manifest, replayed at its restore.
				if w := sr.topo.window(c.chains[shard][0], req.At); w != nil && w.manifest != nil {
					w.manifest.add(int32(shard), req.Key, req.ValueBytes)
				}
			}
		}
		var meta resAttempt
		if sr.res != nil {
			// No policies, but fault windows (or an SLO) may still be
			// active: draw the error verdict for this request.
			node := c.shards[shard].instances[inst].node.Index
			if rate := sr.res.faultRate(node, shard, req.At); rate > 0 && sr.res.faults.Float64() < rate {
				meta = resAttempt{flags: attErr | attLast}
			}
		}
		emit(req.Request, int32(shard), int32(inst), sr.pcIndex(req), meta)
	}
	return d.Bounds()
}

// runScenarioSequential executes the scenario on one goroutine in global
// arrival order, streaming the generation with O(1) workload memory.
func (c *Cluster) runScenarioSequential(scn workload.Scenario, topo *topology, res *resilience) ScenarioReport {
	sr := c.newScenarioRun(scn, topo, res)
	bounds := c.generateScenario(scn, sr, func(req workload.Request, shard, inst, pc int32, meta resAttempt) {
		c.serveScenario(sr, int(shard), inst, pc, req, meta)
	})
	return c.finishScenario(sr, scn, bounds)
}

// routedScenarioReq is one scenario request bound to its shard, the
// replica-chain instance serving it, its segmentation cell, and its
// resilience metadata — the unit of the per-node partition.
type routedScenarioReq struct {
	req   workload.Request
	shard int32
	inst  int32
	pc    int32
	meta  resAttempt
}

const (
	// scenarioChunkReqs is the pipeline transfer unit of the parallel
	// engine: requests per chunk. Large enough that channel operations
	// amortize to noise, small enough that a chunk is still cache-warm from
	// generation when its node serves it.
	scenarioChunkReqs = 512
	// scenarioChunkDepth is the per-node channel depth: how far generation
	// may run ahead of a node before it blocks on that node's backpressure.
	scenarioChunkDepth = 4
	// admitWindow is the batched-admission look-ahead: a node serves its
	// chunk in windows of this many requests, first prefetching every
	// window key's service-table cache lines (read-only, so the simulated
	// results are untouched), then serving the window — amortizing probe
	// misses across the batch.
	admitWindow = 8
)

// scenarioChunk is one pipeline buffer: a fixed-size block of routed
// requests. Fixed blocks replace the old whole-run per-node partition
// slices, whose append-regrowth memmoves and O(requests) footprint
// serialized the run on the generation side.
type scenarioChunk struct {
	n    int
	reqs [scenarioChunkReqs]routedScenarioReq
}

// runScenarioParallel streams the generated request stream to the serving
// nodes through bounded per-node chunk pipelines: generation (one
// goroutine, the deterministic global-order walk) overlaps with per-node
// serving instead of completing before any request is served — the
// single biggest serializer on multi-core runs. Routing partitions by the
// SERVING node: failover hands the request to the replica's goroutine,
// preserving arrival order within every node — which is all a node can
// observe — so each node consumes the identical sub-stream in the identical
// order as the old materialize-then-serve engine, and the report stays
// bit-identical to the sequential engine's. Chunk handoff over a channel
// also gives the happens-before edge that makes generation-side state
// (e.g. migration manifests filled by diverted writes) visible to the
// serving goroutine, exactly as the old full-partition barrier did.
func (c *Cluster) runScenarioParallel(scn workload.Scenario, topo *topology, res *resilience) ScenarioReport {
	if runtime.GOMAXPROCS(0) == 1 {
		// On one core the pipeline cannot overlap anything; what decides the
		// wall clock is cache locality, and the partitioned path — each
		// node's whole sub-stream served contiguously — keeps one node's
		// working set hot instead of cycling every node's through the cache
		// chunk by chunk. Both paths produce the identical report.
		return c.runScenarioPartitioned(scn, topo, res)
	}
	sr := c.newScenarioRun(scn, topo, res)
	type nodePipe struct {
		ch   chan *scenarioChunk
		free chan *scenarioChunk
		cur  *scenarioChunk
	}
	pipes := make([]nodePipe, len(c.nodes))
	var wg sync.WaitGroup
	for i := range pipes {
		pipes[i].ch = make(chan *scenarioChunk, scenarioChunkDepth)
		pipes[i].free = make(chan *scenarioChunk, scenarioChunkDepth+2)
		for j := 0; j < scenarioChunkDepth+2; j++ {
			pipes[i].free <- new(scenarioChunk)
		}
		wg.Add(1)
		go func(p *nodePipe) {
			defer wg.Done()
			for ck := range p.ch {
				c.serveChunk(sr, ck)
				ck.n = 0
				p.free <- ck
			}
		}(&pipes[i])
	}
	// primary caches shard → primary-node routing for the common inst==0
	// case, saving two pointer hops per generated request.
	primary := make([]int32, len(c.shards))
	for i, sh := range c.shards {
		primary[i] = int32(sh.node.Index)
	}
	bounds := c.generateScenario(scn, sr, func(req workload.Request, shard, inst, pc int32, meta resAttempt) {
		node := primary[shard]
		if inst != 0 {
			node = int32(c.shards[shard].instances[inst].node.Index)
		}
		p := &pipes[node]
		if p.cur == nil {
			p.cur = <-p.free
		}
		p.cur.reqs[p.cur.n] = routedScenarioReq{req: req, shard: shard, inst: inst, pc: pc, meta: meta}
		p.cur.n++
		if p.cur.n == scenarioChunkReqs {
			p.ch <- p.cur
			p.cur = nil
		}
	})
	for i := range pipes {
		if p := &pipes[i]; p.cur != nil && p.cur.n > 0 {
			p.ch <- p.cur
			p.cur = nil
		}
		// Idle nodes' goroutines exit on the close; their timelines still
		// fire during the drain in finishScenario, exactly as in the
		// sequential engine.
		close(pipes[i].ch)
	}
	wg.Wait()
	return c.finishScenario(sr, scn, bounds)
}

// serveChunk serves one chunk in admission windows: prefetch the window's
// service-table cache lines, then serve the window.
func (c *Cluster) serveChunk(sr *scenarioRun, ck *scenarioChunk) {
	for base := 0; base < ck.n; base += admitWindow {
		end := base + admitWindow
		if end > ck.n {
			end = ck.n
		}
		for j := base; j < end; j++ {
			rr := &ck.reqs[j]
			c.shards[rr.shard].instances[rr.inst].svc.PrefetchKey(rr.req.Key)
		}
		for j := base; j < end; j++ {
			rr := &ck.reqs[j]
			c.serveScenario(sr, int(rr.shard), rr.inst, rr.pc, rr.req, rr.meta)
		}
	}
}

// runScenarioPartitioned is the single-core variant of the parallel engine:
// it materializes the full per-node partition first, then serves each
// node's whole sub-stream on its own goroutine. The per-node sub-streams
// and serve orders are exactly the pipeline's, so the report is
// bit-identical; only the wall-clock shape differs.
func (c *Cluster) runScenarioPartitioned(scn workload.Scenario, topo *topology, res *resilience) ScenarioReport {
	if flat, ok := scn.FlatLoad(); ok && topo == nil && res == nil {
		return c.runFlatPartitioned(flat, scn)
	}
	perNode := make([][]routedScenarioReq, len(c.nodes))
	var budget int64
	for _, p := range scn.Phases {
		if p.Requests <= 0 {
			budget = 0 // a duration-bounded phase makes the total unknowable
			break
		}
		budget += p.Requests
	}
	if budget > 0 {
		// Pre-size assuming an even spread; skewed routings just append.
		per := int(budget)/len(c.nodes) + len(c.nodes)
		for i := range perNode {
			perNode[i] = make([]routedScenarioReq, 0, per)
		}
	}
	sr := c.newScenarioRun(scn, topo, res)
	bounds := c.generateScenario(scn, sr, func(req workload.Request, shard, inst, pc int32, meta resAttempt) {
		node := c.shards[shard].instances[inst].node.Index
		perNode[node] = append(perNode[node], routedScenarioReq{req: req, shard: shard, inst: inst, pc: pc, meta: meta})
	})

	var wg sync.WaitGroup
	for i := range c.nodes {
		reqs := perNode[i]
		if len(reqs) == 0 {
			// Idle nodes still fire their timeline — during the drain in
			// finishScenario, exactly as in the sequential engine.
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range reqs {
				rr := &reqs[k]
				c.serveScenario(sr, int(rr.shard), rr.inst, rr.pc, rr.req, rr.meta)
			}
		}()
	}
	wg.Wait()
	return c.finishScenario(sr, scn, bounds)
}

// runFlatPartitioned is runScenarioPartitioned specialized to the flat
// single-phase load with no topology or resilience schedule — every
// Cluster.Run on one core lands here. On this path the routing metadata is
// constant (primary instance, no segmentation cell, empty resilience
// verdict), so the partition stores bare workload.Requests — half the bytes
// of a routedScenarioReq — and the serving goroutine re-derives the shard
// from the key, which is exactly how the generation side routed it.
func (c *Cluster) runFlatPartitioned(flat workload.LoadConfig, scn workload.Scenario) ScenarioReport {
	sr := c.newScenarioRun(scn, nil, nil)
	perNode := make([][]workload.Request, len(c.nodes))
	if flat.Requests > 0 {
		per := int(flat.Requests)/len(c.nodes) + len(c.nodes)
		for i := range perNode {
			perNode[i] = make([]workload.Request, 0, per)
		}
	}
	primary := make([]int32, len(c.shards))
	for i, sh := range c.shards {
		primary[i] = int32(sh.node.Index)
	}
	d := workload.NewLoadDriver(flat)
	bound := workload.PhaseBound{Start: flat.Start, End: flat.Start}
	for {
		req, ok := d.Next()
		if !ok {
			break
		}
		n := primary[c.router.ShardForKey(req.Key)]
		perNode[n] = append(perNode[n], req)
		bound.End = req.At
		bound.Requests++
	}
	var wg sync.WaitGroup
	for i := range c.nodes {
		reqs := perNode[i]
		if len(reqs) == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range reqs {
				rr := &reqs[k]
				c.serveScenario(sr, c.router.ShardForKey(rr.Key), 0, -1, *rr, resAttempt{})
			}
		}()
	}
	wg.Wait()
	return c.finishScenario(sr, scn, []workload.PhaseBound{bound})
}

// finishScenario drains every node's remaining timeline, runs each node to
// the scenario's end, settles the fleet through the base finish, and
// assembles the segmented report. The drain is node-local and runs in node
// index order, so the report is a pure function of the per-node execution
// results — the same argument that makes the two engines bit-identical.
func (c *Cluster) finishScenario(sr *scenarioRun, scn workload.Scenario, bounds []workload.PhaseBound) ScenarioReport {
	end := scn.Start
	if len(bounds) > 0 {
		end = bounds[len(bounds)-1].End
	}
	for _, q := range sr.events {
		if len(q) > 0 {
			if at := q[len(q)-1].at; at.After(end) {
				end = at
			}
		}
	}
	for _, n := range c.nodes {
		c.fireEventsUpTo(sr, n, simtime.MaxTime)
		if end.After(n.sched.Now()) {
			n.sched.RunUntil(end)
		}
	}

	rep := ScenarioReport{Name: scn.Name, Report: c.finish(sr.st)}
	if sr.res != nil {
		for ni := range c.nodes {
			nr := &rep.PerNode[ni]
			nr.Retries = sr.retries[ni]
			nr.Timeouts = sr.timeouts[ni]
			nr.Errors = sr.errors[ni]
			nr.Hedges = sr.hedges[ni]
			nr.Shed = sr.shed[ni]
			nr.Failed = sr.failed[ni]
			nr.SLOCompliance = 1
			rep.Retries += nr.Retries
			rep.Timeouts += nr.Timeouts
			rep.Errors += nr.Errors
			rep.Hedges += nr.Hedges
			rep.Shed += nr.Shed
			rep.Failed += nr.Failed
		}
		rep.SLOCompliance = 1
		if slo := sr.res.slo; slo != nil {
			// Compliance counts served requests at or under the target,
			// assembled from the run-local instance digests exactly as the
			// node digests were — counts, not averaged ratios, so the
			// aggregate is exact.
			rep.SLOTarget = slo.P99
			var totalCount, totalAbove int64
			for ni, n := range c.nodes {
				var count, above int64
				for _, sh := range c.shards {
					for inst := range sh.instances {
						if sh.instances[inst].node == n {
							rec := sr.st.shard[sh.ID][inst]
							count += int64(rec.Count())
							above += rec.CountAbove(slo.P99)
						}
					}
				}
				if count > 0 {
					rep.PerNode[ni].SLOCompliance = 1 - float64(above)/float64(count)
				}
				totalCount += count
				totalAbove += above
			}
			if totalCount > 0 {
				rep.SLOCompliance = 1 - float64(totalAbove)/float64(totalCount)
			}
		}
		if sr.ctl != nil {
			// The action log: per node in firing order, merged cluster-wide
			// by instant (stable, so same-instant actions keep node order).
			// Assembled in node index order — a pure function of the
			// per-node controller trajectories, like everything else here.
			for ni := range c.nodes {
				acts := sr.ctl[ni].log
				rep.PerNode[ni].Actions = acts
				rep.Actions = append(rep.Actions, acts...)
			}
			sort.SliceStable(rep.Actions, func(i, j int) bool {
				return rep.Actions[i].At.Before(rep.Actions[j].At)
			})
		}
	}
	if sr.topo != nil {
		// Every node sits on the common settle horizon after finish, and
		// the drain above fired every event, so the horizon bounds every
		// window — downtime is engine-independent.
		horizon := c.nodes[0].sched.Now()
		for ni := range c.nodes {
			nr := &rep.PerNode[ni]
			nr.Downtime = sr.topo.downtimeUpTo(ni, horizon)
			nr.Failovers = sr.failover[ni]
			nr.Dropped = sr.routeDropped[ni] + sr.qdropped[ni]
			nr.MigratedBytes = sr.migrated[ni]
			rep.Failovers += nr.Failovers
			rep.Dropped += nr.Dropped
			rep.MigratedBytes += nr.MigratedBytes
		}
	}
	if sr.met != nil {
		// Every node settled on the common horizon in c.finish, so the
		// series' trailing window is the same span for every node. Actions
		// are attributed to windows from the merged log assembled above.
		sr.met.Finish(c.nodes[0].sched.Now())
		times := make([]simtime.Time, len(rep.Actions))
		for i, a := range rep.Actions {
			times[i] = a.At
		}
		rep.Metrics = sr.met.Series(times)
	}
	if sr.pc == nil {
		// Single-cell scenario: the lone phase × class cell is the whole
		// run, so its digests are the base report's.
		p := scn.Phases[0]
		cr := ClassReport{
			Name:     p.Classes[0].Name,
			Requests: rep.Requests,
			Reads:    rep.Reads,
			Writes:   rep.Writes,
			Latency:  rep.Cluster,
		}
		for _, nr := range rep.PerNode {
			cr.PerNode = append(cr.PerNode, nr.Latency)
		}
		pr := PhaseReport{
			Name:     p.Name,
			Requests: rep.Requests,
			Latency:  rep.Cluster,
			Classes:  []ClassReport{cr},
		}
		if len(bounds) > 0 {
			pr.Start = bounds[0].Start
			pr.End = bounds[0].End
		}
		rep.Phases = []PhaseReport{pr}
		return rep
	}
	for pi, p := range scn.Phases {
		pr := PhaseReport{Name: p.Name}
		if pi < len(bounds) {
			pr.Start = bounds[pi].Start
			pr.End = bounds[pi].End
		}
		phaseRec := c.newRecorder("phase/" + p.Name)
		for ci, tc := range p.Classes {
			pc := sr.pc[sr.pcOff[pi]+ci]
			classRec := c.newRecorder(p.Name + "/" + tc.Name)
			cr := ClassReport{Name: tc.Name}
			for ni := range c.nodes {
				classRec.Merge(pc.node[ni])
				cr.PerNode = append(cr.PerNode, pc.node[ni].Summarize())
				cr.Reads += pc.reads[ni]
				cr.Writes += pc.writes[ni]
			}
			cr.Requests = cr.Reads + cr.Writes
			cr.Latency = classRec.Summarize()
			pr.Requests += cr.Requests
			phaseRec.Merge(classRec)
			pr.Classes = append(pr.Classes, cr)
		}
		pr.Latency = phaseRec.Summarize()
		rep.Phases = append(rep.Phases, pr)
	}
	return rep
}
