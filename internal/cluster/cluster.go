package cluster

import (
	"fmt"
	"strings"
	"sync"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/alloc/glibcmalloc"
	"github.com/hermes-sim/hermes/internal/alloc/jemalloc"
	"github.com/hermes-sim/hermes/internal/alloc/tcmalloc"
	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/core"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/metrics"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/services"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
	"github.com/hermes-sim/hermes/internal/workload"
	"github.com/hermes-sim/hermes/internal/workload/randgen"
)

// AllocatorKind selects the malloc library backing every shard.
type AllocatorKind string

// The four allocators of the paper's comparison.
const (
	AllocGlibc    AllocatorKind = "glibc"
	AllocJemalloc AllocatorKind = "jemalloc"
	AllocTCMalloc AllocatorKind = "tcmalloc"
	AllocHermes   AllocatorKind = "hermes"
)

// AllocatorKinds lists every kind in the paper's comparison order.
var AllocatorKinds = []AllocatorKind{AllocGlibc, AllocJemalloc, AllocTCMalloc, AllocHermes}

// ServiceKind selects the service type the shards run.
type ServiceKind string

// StatsMode selects the Recorder backend for every latency digest of a
// cluster.
type StatsMode string

const (
	// StatsRaw keeps every sample: exact percentiles and CDF shapes, memory
	// proportional to the request count. The default, and the right mode for
	// experiments that assert exact distribution shapes.
	StatsRaw StatsMode = "raw"
	// StatsHistogram digests samples into log-bucketed histograms: O(1)
	// record, memory bounded regardless of request count, percentiles within
	// ≤1% relative error. The right mode for fleet-scale runs serving
	// millions of requests.
	StatsHistogram StatsMode = "histogram"
)

// The two latency-critical services of the evaluation.
const (
	ServiceRedis   ServiceKind = "redis"
	ServiceRocksdb ServiceKind = "rocksdb"
)

// Config describes a cluster.
type Config struct {
	// Nodes is the machine count.
	Nodes int
	// Shards is the service-shard count; shards are placed on nodes by the
	// ShardRouter and several shards may share a node.
	Shards int
	// Replicas is the virtual-node count per machine on the hash ring.
	Replicas int
	// ShardReplicas is the shard replication factor: every shard gets a
	// full service instance on the first ShardReplicas distinct nodes of
	// its ring walk, and requests fail over down the chain when a
	// kill-node event takes the primary out of rotation. 0 or 1 means
	// unreplicated (the chain is just the primary); the factor cannot
	// exceed Nodes.
	ShardReplicas int
	// Kernel configures every node's memory subsystem (per-node seeds are
	// derived from Seed, overriding Kernel.Seed).
	Kernel kernel.Config
	// Allocator backs every shard's dynamic memory.
	Allocator AllocatorKind
	// ServiceKind selects what the shards run; empty means ServiceRedis.
	ServiceKind ServiceKind
	// Hermes tunes the Hermes allocators when Allocator == AllocHermes.
	Hermes core.Config
	// Daemon, when non-nil and Allocator == AllocHermes, runs the memory
	// monitor daemon on every node (proactive reclamation).
	Daemon *monitor.Config
	// Pressure, when non-nil, co-locates a memory-pressure generator on
	// every node — the paper's §5 regimes at cluster scale.
	Pressure *workload.PressureConfig
	// Batch, when non-nil, co-locates churning batch jobs on every node
	// (the paper's co-location workload); TargetBytes sets the per-node
	// pressure level. Batch jobs are the fleet's OOM victims.
	Batch *batch.Config
	// Seed derives every node's kernel seed; one seed reproduces the whole
	// cluster.
	Seed uint64
	// Sequential forces Run onto the single-goroutine engine that executes
	// requests in global arrival order — the escape hatch for debugging and
	// for streaming the load with O(1) workload memory. The default parallel
	// engine partitions the stream per node and produces a bit-identical
	// Report (nodes are causally independent after routing).
	Sequential bool
	// Stats selects the latency-digest backend; empty means StatsRaw.
	Stats StatsMode
	// Metrics, when non-nil, collects a per-virtual-window time series
	// (latency quantiles, reclaim/swap activity, RSS, resilience counters,
	// controller actions) during scenario runs; the series lands in
	// ScenarioReport.Metrics. Collection rides the scenario path only —
	// Cluster.Run is covered via its lifted single-phase scenario, but the
	// direct RunSequential/RunParallel escape hatches do not collect.
	Metrics *metrics.Config
}

// DefaultConfig returns an 8-node, 16-shard Redis-on-Glibc cluster of 8 GB
// machines — small nodes are the realistic cluster shape, and they let the
// pressure generators bite without hour-long fills.
func DefaultConfig() Config {
	kcfg := kernel.DefaultConfig()
	kcfg.TotalMemory = 8 << 30
	kcfg.SwapBytes = 8 << 30
	return Config{
		Nodes:     8,
		Shards:    16,
		Replicas:  64,
		Kernel:    kcfg,
		Allocator: AllocGlibc,
		Hermes:    core.DefaultConfig(),
		Seed:      1,
	}
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.Shards <= 0 || c.Replicas <= 0 {
		return fmt.Errorf("cluster: bad geometry: nodes=%d shards=%d replicas=%d", c.Nodes, c.Shards, c.Replicas)
	}
	if c.ShardReplicas < 0 {
		return fmt.Errorf("cluster: ShardReplicas must be >= 0 (got %d; 0 or 1 means unreplicated)", c.ShardReplicas)
	}
	if c.ShardReplicas > c.Nodes {
		return fmt.Errorf("cluster: ShardReplicas %d exceeds the %d-node fleet (a chain needs distinct nodes)", c.ShardReplicas, c.Nodes)
	}
	switch c.Allocator {
	case AllocGlibc, AllocJemalloc, AllocTCMalloc, AllocHermes:
	default:
		return fmt.Errorf("cluster: unknown allocator kind %q", c.Allocator)
	}
	switch c.Service() {
	case ServiceRedis, ServiceRocksdb:
	default:
		return fmt.Errorf("cluster: unknown service kind %q", c.ServiceKind)
	}
	switch c.StatsBackend() {
	case StatsRaw, StatsHistogram:
	default:
		return fmt.Errorf("cluster: unknown stats mode %q", c.Stats)
	}
	if c.Metrics != nil {
		if err := c.Metrics.Validate(); err != nil {
			return fmt.Errorf("cluster: Metrics: %w", err)
		}
	}
	if c.Pressure != nil {
		if err := c.Pressure.Validate(); err != nil {
			return fmt.Errorf("cluster: Pressure: %w", err)
		}
	}
	if c.Batch != nil {
		if err := c.Batch.Validate(); err != nil {
			return fmt.Errorf("cluster: Batch: %w", err)
		}
	}
	if c.Daemon != nil {
		if err := c.Daemon.Validate(); err != nil {
			return fmt.Errorf("cluster: Daemon: %w", err)
		}
	}
	return nil
}

// StatsBackend resolves the configured stats mode, defaulting to StatsRaw
// so the zero Config value works.
func (c Config) StatsBackend() StatsMode {
	if c.Stats == "" {
		return StatsRaw
	}
	return c.Stats
}

// newRecorder builds a latency recorder in the cluster's configured mode.
func (c *Cluster) newRecorder(name string) *stats.Recorder {
	if c.cfg.StatsBackend() == StatsHistogram {
		return stats.NewStreamingRecorder(name)
	}
	return stats.NewRecorder(name)
}

// Shard is one service shard: a Service plus its allocator on each node of
// its replica chain (just the primary when the cluster is unreplicated),
// with its own latency digest.
type Shard struct {
	// ID is the shard index in [0, Config.Shards).
	ID int

	node *Node
	svc  services.Service
	rec  *stats.Recorder

	// instances holds the shard's placements down the replica chain;
	// instances[0] is the primary (node, svc above). Failover serves on
	// the first instance whose node is in rotation.
	instances []shardInstance

	requests int64
	reads    int64
	writes   int64
}

// shardInstance is one placement of a shard: a full service instance on
// one node of the shard's replica chain.
type shardInstance struct {
	node *Node
	svc  services.Service
}

// Node returns the machine hosting the shard's primary.
func (s *Shard) Node() *Node { return s.node }

// Service returns the shard's primary service instance.
func (s *Shard) Service() services.Service { return s.svc }

// Replica returns the shard's service instance at chain position i (0 is
// the primary).
func (s *Shard) Replica(i int) services.Service { return s.instances[i].svc }

// ReplicaCount returns the length of the shard's replica chain.
func (s *Shard) ReplicaCount() int { return len(s.instances) }

// Recorder returns the shard's latency digest (accumulated across runs).
func (s *Shard) Recorder() *stats.Recorder { return s.rec }

// Requests, Reads and Writes count the operations the shard has served
// across all runs.
func (s *Shard) Requests() int64 { return s.requests }

// Reads counts the read operations the shard has served.
func (s *Shard) Reads() int64 { return s.reads }

// Writes counts the write operations the shard has served.
func (s *Shard) Writes() int64 { return s.writes }

// Node is one simulated machine of the cluster: its own scheduler and
// kernel (so node clocks advance independently between requests), the
// shards placed on it, and the optional co-located pressure generator and
// monitor daemon.
type Node struct {
	// Index is the node's position in the cluster; Name is "node-<index>".
	Index int
	Name  string

	sched    *simtime.Scheduler
	kernel   *kernel.Kernel
	shards   []*Shard
	rec      *stats.Recorder
	registry *monitor.Registry
	daemon   *monitor.Daemon
	pressure *workload.Pressure
	runner   *batch.Runner
	refresh  *simtime.PeriodicTask
	squeeze  *kernel.Process
	// hermes lists the node's hermes allocators (creation order) so the
	// adaptive control plane can retune their policy mid-run; empty for
	// every other allocator kind.
	hermes  []*core.Hermes
	closers []func()
}

// Kernel returns the node's simulated memory subsystem.
func (n *Node) Kernel() *kernel.Kernel { return n.kernel }

// Scheduler returns the node's virtual clock.
func (n *Node) Scheduler() *simtime.Scheduler { return n.sched }

// Now returns the node's current virtual time.
func (n *Node) Now() simtime.Time { return n.sched.Now() }

// Shards returns the shards placed on this node.
func (n *Node) Shards() []*Shard { return n.shards }

// Cluster owns the fleet. Construction places every shard; Run drives the
// fleet with an open-loop load and returns the digests.
type Cluster struct {
	cfg    Config
	router *ShardRouter
	nodes  []*Node
	shards []*Shard
	// chains[s] is shard s's replica chain (node indices, primary first),
	// precomputed so failover routing never rebuilds it per request.
	chains [][]int
}

// New boots the fleet: N nodes (each with a derived kernel seed), the shard
// placement, one allocator + service per shard, and the optional per-node
// pressure generators and monitor daemons.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{cfg: cfg}
	names := make([]string, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		names[i] = fmt.Sprintf("node-%02d", i)
		kcfg := cfg.Kernel
		// Every node owns sub-seed i of the cluster seed; all of the
		// node's streams (kernel jitter, pressure, …) split again from it,
		// so no two nodes — and no two subsystems — ever share a sequence.
		kcfg.Seed = randgen.SplitSeed(cfg.Seed, uint64(i))
		sched := simtime.NewScheduler()
		n := &Node{
			Index:  i,
			Name:   names[i],
			sched:  sched,
			kernel: kernel.New(sched, kcfg),
			rec:    c.newRecorder(names[i]),
		}
		if cfg.Allocator == AllocHermes {
			n.registry = monitor.NewRegistry()
		}
		c.nodes = append(c.nodes, n)
	}
	c.router = NewShardRouter(names, cfg.Shards, cfg.Replicas)

	chainLen := cfg.ShardReplicas
	if chainLen < 1 {
		chainLen = 1
	}
	c.chains = make([][]int, cfg.Shards)
	for id := 0; id < cfg.Shards; id++ {
		c.chains[id] = c.router.ReplicaChain(id, chainLen)
		n := c.nodes[c.chains[id][0]]
		name := fmt.Sprintf("shard-%02d", id)
		svc := c.newShardService(n, name)
		sh := &Shard{ID: id, node: n, svc: svc, rec: c.newRecorder(name)}
		sh.instances = append(sh.instances, shardInstance{node: n, svc: svc})
		// Replica instances boot right after their primary, in chain
		// order — shard-major creation keeps every node's process/file
		// birth sequence (and thus seed replay) deterministic.
		for ci, node := range c.chains[id][1:] {
			rn := c.nodes[node]
			rsvc := c.newShardService(rn, fmt.Sprintf("%s-r%d", name, ci+1))
			sh.instances = append(sh.instances, shardInstance{node: rn, svc: rsvc})
		}
		n.shards = append(n.shards, sh)
		c.shards = append(c.shards, sh)
	}

	// Background machinery starts after the shards exist so daemon and
	// co-tenants see the final process set. The start order — batch
	// runner, pressure generator, registry refresh, daemon — fixes the
	// scheduler's same-instant tie-break sequence and must not change.
	for _, n := range c.nodes {
		if cfg.Batch != nil {
			c.startBatchRunner(n, *cfg.Batch)
		}
		if cfg.Pressure != nil {
			c.startPressure(n, *cfg.Pressure)
		}
		c.attachBatchRefresh(n)
		if cfg.Daemon != nil && n.registry != nil {
			c.startDaemon(n, *cfg.Daemon)
		}
	}
	return c
}

// startBatchRunner launches churning batch co-tenants on the node and
// routes kernel OOM to them.
func (c *Cluster) startBatchRunner(n *Node, bcfg batch.Config) {
	n.runner = batch.NewRunner(n.kernel, bcfg)
	n.kernel.SetOOMHandler(n.runner.HandleOOM)
}

// stopBatchRunner halts the node's batch co-tenants and their registry
// refresh; a no-op when none run.
func (c *Cluster) stopBatchRunner(n *Node) {
	if n.refresh != nil {
		n.refresh.Stop()
		n.refresh = nil
	}
	if n.runner != nil {
		n.runner.Stop()
		n.runner = nil
		n.kernel.SetOOMHandler(nil)
	}
}

// startPressure launches a pressure generator on the node and registers it
// with the monitor registry (batch jobs are the daemon's targets).
func (c *Cluster) startPressure(n *Node, pcfg workload.PressureConfig) {
	n.pressure = workload.StartPressure(n.kernel, pcfg)
	if n.registry != nil {
		n.registry.AddBatch(n.pressure.PID())
	}
}

// stopPressure halts the node's pressure generator; a no-op when none runs.
func (c *Cluster) stopPressure(n *Node) {
	if n.pressure == nil {
		return
	}
	pid := n.pressure.PID()
	n.pressure.Stop()
	n.pressure = nil
	if n.registry == nil {
		return
	}
	// Deregister only if the dead generator left no resident cache: file
	// pressure's working set stays cached after Stop, and the daemon can
	// only release cache owned by registered batch PIDs — the same
	// invariant the batch refresh prune keeps for churned containers.
	for _, f := range n.kernel.FilesOwnedBy(pid) {
		if !f.Deleted() && f.CachedPages() > 0 {
			return
		}
	}
	n.registry.RemoveBatch(pid)
}

// attachBatchRefresh wires the administrator's periodic batch registration
// (§3.3) for a node running both a registry and a batch runner; a no-op
// otherwise, or when already attached.
func (c *Cluster) attachBatchRefresh(node *Node) {
	if node.registry == nil || node.runner == nil || node.refresh != nil {
		return
	}
	// The administrator registers batch containers; containers churn, so
	// the registration refreshes periodically (§3.3).
	register := func() {
		for _, pid := range node.runner.PIDs() {
			node.registry.AddBatch(pid)
		}
		for _, pid := range node.runner.InputFilePIDs() {
			node.registry.AddBatch(pid)
		}
		// Prune churned containers so the registry doesn't grow
		// without bound — but keep dead PIDs that still own cached
		// files: completed jobs leave their input cache resident
		// (§2.3) and the daemon must stay able to release it.
		for _, pid := range node.registry.BatchPIDs() {
			if p := node.kernel.Process(pid); p != nil && !p.Dead() {
				continue
			}
			ownsCache := false
			for _, f := range node.kernel.FilesOwnedBy(pid) {
				if !f.Deleted() && f.CachedPages() > 0 {
					ownsCache = true
					break
				}
			}
			if !ownsCache {
				node.registry.RemoveBatch(pid)
			}
		}
	}
	register()
	node.refresh = simtime.NewPeriodicTask(node.sched, 500*simtime.Millisecond,
		func(simtime.Time) simtime.Duration {
			register()
			return 10 * simtime.Microsecond
		})
}

// startDaemon launches the monitor daemon on the node (requires a
// registry, i.e. the Hermes allocator).
func (c *Cluster) startDaemon(n *Node, dcfg monitor.Config) {
	n.daemon = monitor.NewDaemon(n.kernel, n.registry, dcfg)
}

// stopDaemon halts the node's daemon; a no-op when none runs.
func (c *Cluster) stopDaemon(n *Node) {
	if n.daemon != nil {
		n.daemon.Stop()
		n.daemon = nil
	}
}

// Service resolves the configured service kind, defaulting to Redis so the
// zero Config value works.
func (c Config) Service() ServiceKind {
	if c.ServiceKind == "" {
		return ServiceRedis
	}
	return c.ServiceKind
}

// newShardService boots one service instance (and its allocator) for a
// shard placement on node n, registering both with the node's closers.
func (c *Cluster) newShardService(n *Node, name string) services.Service {
	a := c.newAllocator(n, name)
	var svc services.Service
	switch c.cfg.Service() {
	case ServiceRedis:
		svc = services.NewRedis(n.kernel, a, services.RedisCosts())
	case ServiceRocksdb:
		svc = services.NewRocksdb(n.kernel, a, services.RocksdbCosts(),
			services.DefaultRocksdbConfig(), name)
	}
	n.closers = append(n.closers, svc.Close, a.Close)
	return svc
}

func (c *Cluster) newAllocator(n *Node, name string) alloc.Allocator {
	switch c.cfg.Allocator {
	case AllocJemalloc:
		return jemalloc.New(n.kernel, name, jemalloc.DefaultConfig())
	case AllocTCMalloc:
		return tcmalloc.New(n.kernel, name, tcmalloc.DefaultConfig())
	case AllocHermes:
		h := core.NewWithRegistry(n.kernel, name, c.cfg.Hermes, n.registry, true)
		n.hermes = append(n.hermes, h)
		return h
	default:
		return glibcmalloc.New(n.kernel, name, glibcmalloc.DefaultConfig())
	}
}

// Router returns the shard router.
func (c *Cluster) Router() *ShardRouter { return c.router }

// Nodes returns the fleet.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Shard returns shard id.
func (c *Cluster) Shard(id int) *Shard { return c.shards[id] }

// Advance moves every node's clock forward by d in lockstep, running each
// node's background machinery.
func (c *Cluster) Advance(d simtime.Duration) {
	for _, n := range c.nodes {
		n.sched.Advance(d)
	}
}

// Close stops pressure generators, batch runners, daemons, squeezes,
// services and allocators on every node.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		c.stopPressure(n)
		c.stopBatchRunner(n)
		c.stopDaemon(n)
		if n.squeeze != nil {
			n.kernel.ExitProcess(n.squeeze)
			n.squeeze = nil
		}
		for _, f := range n.closers {
			f()
		}
		n.closers = nil
	}
}

// NodeReport is one node's slice of a Report.
type NodeReport struct {
	Name    string
	Shards  int
	Latency stats.Summary
	Kernel  kernel.Stats
	// Topology dynamics (all zero on runs without kill/restore events).
	// Downtime is the node's total time out of rotation; Failovers counts
	// requests this node served in place of a down primary; Dropped
	// counts requests bound for this node that were discarded (no live
	// replica, or a kill-node drop policy severing the backlog);
	// MigratedBytes is what restores re-filled into this node's shards.
	Downtime      simtime.Duration
	Failovers     int64
	Dropped       int64
	MigratedBytes int64
	// Resilience layer (all zero on runs without one). Retries counts
	// retry attempts that actually fired on this node; Timeouts counts
	// served attempts whose latency beat their class deadline; Errors
	// counts attempts failed fast by a fault window; Hedges counts
	// speculative read hedges this node served; Shed counts attempts its
	// admission controller rejected; Failed counts request chains that
	// exhausted every attempt without a success.
	Retries  int64
	Timeouts int64
	Errors   int64
	Hedges   int64
	Shed     int64
	Failed   int64
	// SLOCompliance is the fraction of this node's served requests within
	// the scenario's SLO target (1 when no SLO is declared).
	SLOCompliance float64
	// Actions is the node's controller action log in firing order (empty
	// on runs without a policies block).
	Actions []ControllerAction
}

// Report is the digest of one cluster run.
type Report struct {
	// Allocator, Service and Stats echo the configuration the run used.
	Allocator AllocatorKind
	Service   ServiceKind
	Stats     StatsMode
	// Requests is the number of requests served (Reads + Writes).
	Requests int64
	Reads    int64
	Writes   int64
	// Cluster is the cluster-wide latency digest (queue wait + service).
	Cluster stats.Summary
	// Wait is the cluster-wide queueing-delay digest: the open-loop
	// symptom of an overloaded or pressure-stalled node.
	Wait stats.Summary
	// Failovers, Dropped and MigratedBytes are the cluster-wide topology
	// dynamics totals (the sums of the per-node columns; zero on runs
	// without kill/restore events). Dropped requests are generated but
	// never served, so they are excluded from Requests.
	Failovers     int64
	Dropped       int64
	MigratedBytes int64
	// Resilience totals (sums of the per-node columns; zero on runs
	// without a resilience layer). Errored, shed and timed-out attempts
	// are never double-counted in Requests: a request chain contributes
	// at most one successful serve plus any hedges.
	Retries  int64
	Timeouts int64
	Errors   int64
	Hedges   int64
	Shed     int64
	Failed   int64
	// SLOTarget echoes the scenario's p99 objective (0 = none declared);
	// SLOCompliance is the fraction of served requests at or under it.
	SLOTarget     simtime.Duration
	SLOCompliance float64
	// Actions is the cluster-wide controller action log, merged across
	// nodes by virtual instant (empty on runs without a policies block).
	Actions []ControllerAction
	// PerNode and PerShard are the sliced digests.
	PerNode  []NodeReport
	PerShard []stats.Summary
}

// resilienceActive reports whether the run carried a resilience layer.
func (r Report) resilienceActive() bool {
	return r.Retries > 0 || r.Timeouts > 0 || r.Errors > 0 || r.Hedges > 0 ||
		r.Shed > 0 || r.Failed > 0 || r.SLOTarget > 0
}

// Render prints the report in the repo's table style.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster run: allocator=%s service=%s requests=%d (reads=%d writes=%d)\n",
		r.Allocator, r.Service, r.Requests, r.Reads, r.Writes)
	fmt.Fprintf(&b, "%s\n", r.Cluster)
	fmt.Fprintf(&b, "%s\n", r.Wait)
	if r.Failovers > 0 || r.Dropped > 0 || r.MigratedBytes > 0 {
		fmt.Fprintf(&b, "topology: failovers=%d dropped=%d migrated=%s\n",
			r.Failovers, r.Dropped, fmtBytes(r.MigratedBytes))
	}
	if r.resilienceActive() {
		fmt.Fprintf(&b, "resilience: retries=%d timeouts=%d errors=%d hedges=%d shed=%d failed=%d\n",
			r.Retries, r.Timeouts, r.Errors, r.Hedges, r.Shed, r.Failed)
		if r.SLOTarget > 0 {
			fmt.Fprintf(&b, "slo: p99<=%v compliance=%.2f%%\n", r.SLOTarget, r.SLOCompliance*100)
		}
	}
	if len(r.Actions) > 0 {
		b.WriteString(renderActions("controller", r.Actions))
	}
	b.WriteString("per node:\n")
	for _, n := range r.PerNode {
		fmt.Fprintf(&b, "  %s  shards=%-3d reclaims=%-6d swapouts=%-8d %s\n",
			n.Name, n.Shards, n.Kernel.DirectReclaims, n.Kernel.PagesSwapOut, n.Latency)
		if n.Downtime > 0 || n.Failovers > 0 || n.Dropped > 0 || n.MigratedBytes > 0 {
			fmt.Fprintf(&b, "    topology: downtime=%v failovers=%d dropped=%d migrated=%s\n",
				n.Downtime, n.Failovers, n.Dropped, fmtBytes(n.MigratedBytes))
		}
		if n.Retries > 0 || n.Timeouts > 0 || n.Errors > 0 || n.Hedges > 0 || n.Shed > 0 || n.Failed > 0 || r.SLOTarget > 0 {
			fmt.Fprintf(&b, "    resilience: retries=%d timeouts=%d errors=%d hedges=%d shed=%d failed=%d compliance=%.2f%%\n",
				n.Retries, n.Timeouts, n.Errors, n.Hedges, n.Shed, n.Failed, n.SLOCompliance*100)
		}
		if len(n.Actions) > 0 {
			b.WriteString("    " + renderActions("controller", n.Actions))
		}
	}
	b.WriteString("per shard:\n")
	for _, s := range r.PerShard {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}

// renderActions renders one action-log summary line: total plus per-kind
// counts.
func renderActions(label string, acts []ControllerAction) string {
	var shed, batch, alc, wm int
	for _, a := range acts {
		switch a.Kind {
		case ActionShed:
			shed++
		case ActionBatch:
			batch++
		case ActionAllocator:
			alc++
		case ActionWatermark:
			wm++
		}
	}
	return fmt.Sprintf("%s: actions=%d (shed=%d batch=%d allocator=%d watermark=%d)\n",
		label, len(acts), shed, batch, alc, wm)
}

// fmtBytes renders a byte count at MiB/KiB/B granularity for report tables.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// runState holds one run's run-local digests: one latency recorder and
// read/write counter pair per shard INSTANCE, and one queue-wait recorder
// plus read/write counters per node. Everything a request records lands in
// state owned by its serving node — with failover the instances of one
// shard live on different nodes, so shard-level digests are only assembled
// at finish — which lets concurrent node goroutines fill the slices
// without sharing.
type runState struct {
	shard [][]*stats.Recorder // indexed by shard ID, chain position
	ops   [][]opCounters      // indexed by shard ID, chain position
	wait  []*stats.Recorder   // indexed by node index
	node  []nodeCounters      // indexed by node index
	// degrade is the per-node service-slowdown schedule compiled from
	// degrade-node/heal-node events; nil on every run without them. The
	// factor is looked up at service start on the node's own clock, so the
	// verdict is node-local.
	degrade [][]factorWindow
}

// opCounters tallies one shard instance's operations. Padded to a cache
// line: instances of different shards are served by different node
// goroutines every request, and unpadded 16-byte counters packed into
// adjacent lines turn those independent increments into cross-core
// line bouncing.
type opCounters struct {
	reads, writes int64
	_             [48]byte
}

// nodeCounters tallies one node's operations, padded for the same reason as
// opCounters: every node goroutine increments its own entry on every
// request.
type nodeCounters struct {
	reads, writes int64
	_             [48]byte
}

func (c *Cluster) newRunState() *runState {
	st := &runState{
		shard: make([][]*stats.Recorder, len(c.shards)),
		ops:   make([][]opCounters, len(c.shards)),
		wait:  make([]*stats.Recorder, len(c.nodes)),
		node:  make([]nodeCounters, len(c.nodes)),
	}
	for i, sh := range c.shards {
		st.shard[i] = make([]*stats.Recorder, len(sh.instances))
		for inst := range sh.instances {
			st.shard[i][inst] = c.newRecorder(sh.rec.Name())
		}
		st.ops[i] = make([]opCounters, len(sh.instances))
	}
	for i, n := range c.nodes {
		st.wait[i] = c.newRecorder(n.Name + "/wait")
	}
	return st
}

// serve executes one request on its shard's node: run background machinery
// up to the arrival, measure queueing delay, perform the operation, and
// occupy the node for the raw service time. Each node is modelled as a
// single-threaded server (the event-loop discipline of Redis itself): a
// request that arrives while its node is still busy queues, and its
// recorded latency is queueing delay plus jittered service time. The
// returned latency is what was recorded, so callers can segment it into
// additional digests.
func (c *Cluster) serve(st *runState, shardID int, req workload.Request) simtime.Duration {
	return c.serveOn(st, shardID, 0, req)
}

// serveOn is serve on a specific replica-chain instance: 0 is the primary
// (every request without topology events), >0 a failover target whose node
// stands in for a down primary. The request's full cost lands on the
// serving node's clock and digests.
func (c *Cluster) serveOn(st *runState, shardID, inst int, req workload.Request) simtime.Duration {
	sh := c.shards[shardID]
	in := sh.instances[inst]
	n := in.node
	if req.At.After(n.sched.Now()) {
		// Idle until the arrival: run background machinery up to it.
		n.sched.RunUntil(req.At)
	}
	wait := n.sched.Now().Sub(req.At) // >0 when the server was busy
	var raw simtime.Duration
	preMapped := false
	switch req.Op {
	case workload.OpWrite:
		raw = in.svc.Insert(req.Key, req.ValueBytes)
		preMapped = in.svc.LastPreMapped()
		st.ops[shardID][inst].writes++
		st.node[n.Index].writes++
	case workload.OpRead:
		raw = in.svc.Read(req.Key)
		st.ops[shardID][inst].reads++
		st.node[n.Index].reads++
	}
	if st.degrade != nil {
		// A degraded node does the same work slower: the whole raw service
		// cost stretches by the window's factor before jitter and clock
		// occupancy, as if the CPU were clocked down.
		if f := degradeFactorAt(st.degrade[n.Index], n.sched.Now()); f != 1 {
			raw = simtime.Duration(float64(raw) * f)
		}
	}
	// The server occupies the node for the raw service time; the client
	// observes queueing plus the jittered service time. The shard's
	// cumulative counters fold in at finish — with failover another node's
	// goroutine may be serving a different instance of this shard right now.
	lat := wait + workload.JitterRequest(n.kernel, raw, preMapped)
	n.sched.Advance(raw)
	st.shard[shardID][inst].Record(lat)
	st.wait[n.Index].Record(wait)
	return lat
}

// finish settles the fleet on a common horizon, merges the run-local
// digests into the persistent shard and node recorders, and assembles the
// Report. Merge order is canonical — shards in ID order within a node,
// nodes in index order across the cluster — so the Report is a pure
// function of the per-node execution results, independent of which engine
// produced them.
func (c *Cluster) finish(st *runState) Report {
	// Settle the fleet on a common horizon so background work (management
	// threads, kswapd, daemons) finishes the same window on every node.
	var horizon simtime.Time
	for _, n := range c.nodes {
		if n.sched.Now().After(horizon) {
			horizon = n.sched.Now()
		}
	}
	for _, n := range c.nodes {
		n.sched.RunUntil(horizon)
	}

	// Fold the per-instance run counters into the shards' cumulative
	// counters (single-threaded here; the hot path never touches them) and
	// assemble each shard's digest from its instances in chain order.
	shardRecs := make([]*stats.Recorder, len(c.shards))
	for id, sh := range c.shards {
		rec := c.newRecorder(sh.rec.Name())
		for inst := range sh.instances {
			rec.Merge(st.shard[id][inst])
			sh.reads += st.ops[id][inst].reads
			sh.writes += st.ops[id][inst].writes
			sh.requests += st.ops[id][inst].reads + st.ops[id][inst].writes
		}
		shardRecs[id] = rec
		sh.rec.Merge(rec)
	}

	report := Report{Allocator: c.cfg.Allocator, Service: c.cfg.Service(), Stats: c.cfg.StatsBackend()}
	clusterRec := c.newRecorder("cluster")
	waitRec := c.newRecorder("queue-wait")
	var total int
	for _, recs := range st.shard {
		for _, rec := range recs {
			total += rec.Count()
		}
	}
	clusterRec.Reserve(total)
	for i, n := range c.nodes {
		// A node's digest covers what it actually served: the shard
		// instances it hosts, primaries and failover replicas alike, in
		// (shard, chain-position) order.
		runNode := c.newRecorder(n.Name)
		nodeTotal := 0
		for _, sh := range c.shards {
			for inst := range sh.instances {
				if sh.instances[inst].node == n {
					nodeTotal += st.shard[sh.ID][inst].Count()
				}
			}
		}
		runNode.Reserve(nodeTotal)
		for _, sh := range c.shards {
			for inst := range sh.instances {
				if sh.instances[inst].node == n {
					runNode.Merge(st.shard[sh.ID][inst])
				}
			}
		}
		n.rec.Merge(runNode)
		clusterRec.Merge(runNode)
		waitRec.Merge(st.wait[i])
		report.Reads += st.node[i].reads
		report.Writes += st.node[i].writes
		report.PerNode = append(report.PerNode, NodeReport{
			Name:    n.Name,
			Shards:  len(n.shards),
			Latency: runNode.Summarize(),
			Kernel:  n.kernel.Stats(),
		})
	}
	report.Requests = report.Reads + report.Writes
	report.Cluster = clusterRec.Summarize()
	report.Wait = waitRec.Summarize()
	for i := range c.shards {
		report.PerShard = append(report.PerShard, shardRecs[i].Summarize())
	}
	return report
}

// Run drives the fleet with the open-loop stream described by load and
// returns the digests. Requests are generated deterministically, each
// node's clock advances monotonically, and every random draw comes from a
// seeded per-node stream — so one (config, load) pair reproduces the run
// exactly, on either engine.
//
// By default Run uses the parallel engine: the request stream is
// partitioned per node up front (routing is deterministic) and every node
// executes its sub-stream on its own goroutine. Nodes are causally
// independent after routing — a request only ever touches its own node's
// scheduler, kernel, RNG and shards — so the per-node results are
// identical to the sequential engine's and the merged Report is
// bit-identical. Config.Sequential selects the single-goroutine engine
// that interleaves all nodes in global arrival order.
//
// Run may be called repeatedly with successive streams. Every digest in
// the returned Report covers exactly that run (PerNode and PerShard sum to
// Cluster); the shard and node Recorders keep accumulating across runs for
// callers inspecting the whole history.
//
// Run is a thin adapter over the scenario layer: the load is lifted onto a
// single-phase, single-class Scenario (ScenarioFromLoad) and executed by
// RunScenario. The lifted class reuses the canonical load-driver stream,
// so the Report is bit-identical to driving the LoadDriver directly — the
// property TestRunMatchesDirectEngines pins against the RunSequential /
// RunParallel escape hatches.
func (c *Cluster) Run(load workload.LoadConfig) Report {
	rep, err := c.RunScenario(workload.ScenarioFromLoad(load))
	if err != nil {
		panic(err)
	}
	return rep.Report
}

// RunSequential executes the run on one goroutine in global arrival order,
// streaming the load with O(1) workload memory — the escape hatch the
// parallel engine is verified against.
func (c *Cluster) RunSequential(load workload.LoadConfig) Report {
	d := workload.NewLoadDriver(load)
	st := c.newRunState()
	for {
		req, ok := d.Next()
		if !ok {
			break
		}
		c.serve(st, c.router.ShardForKey(req.Key), req)
	}
	return c.finish(st)
}

// routedReq is one request bound to its shard, the unit of the per-node
// partition.
type routedReq struct {
	req   workload.Request
	shard int32
}

// RunParallel partitions the stream per node and executes each node's
// sub-stream on its own goroutine. The partition preserves arrival order
// within every node, which is all a node can observe; the merge in finish
// is order-canonical, so the Report is bit-identical to RunSequential's.
func (c *Cluster) RunParallel(load workload.LoadConfig) Report {
	d := workload.NewLoadDriver(load)
	perNode := make([][]routedReq, len(c.nodes))
	if load.Requests > 0 {
		// Pre-size assuming an even spread; skewed routings just append.
		per := int(load.Requests)/len(c.nodes) + len(c.nodes)
		for i := range perNode {
			perNode[i] = make([]routedReq, 0, per)
		}
	}
	for {
		req, ok := d.Next()
		if !ok {
			break
		}
		shard := c.router.ShardForKey(req.Key)
		node := c.shards[shard].node.Index
		perNode[node] = append(perNode[node], routedReq{req: req, shard: int32(shard)})
	}

	st := c.newRunState()
	var wg sync.WaitGroup
	for i := range c.nodes {
		reqs := perNode[i]
		if len(reqs) == 0 {
			// An idle node's background machinery catches up during the
			// horizon settle in finish, exactly as in the sequential engine.
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, rr := range reqs {
				c.serve(st, int(rr.shard), rr.req)
			}
		}()
	}
	wg.Wait()
	return c.finish(st)
}
