package cluster

import (
	"fmt"
	"strings"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/alloc/glibcmalloc"
	"github.com/hermes-sim/hermes/internal/alloc/jemalloc"
	"github.com/hermes-sim/hermes/internal/alloc/tcmalloc"
	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/core"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/services"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
	"github.com/hermes-sim/hermes/internal/workload"
)

// AllocatorKind selects the malloc library backing every shard.
type AllocatorKind string

// The four allocators of the paper's comparison.
const (
	AllocGlibc    AllocatorKind = "glibc"
	AllocJemalloc AllocatorKind = "jemalloc"
	AllocTCMalloc AllocatorKind = "tcmalloc"
	AllocHermes   AllocatorKind = "hermes"
)

// AllocatorKinds lists every kind in the paper's comparison order.
var AllocatorKinds = []AllocatorKind{AllocGlibc, AllocJemalloc, AllocTCMalloc, AllocHermes}

// ServiceKind selects the service type the shards run.
type ServiceKind string

// The two latency-critical services of the evaluation.
const (
	ServiceRedis   ServiceKind = "redis"
	ServiceRocksdb ServiceKind = "rocksdb"
)

// Config describes a cluster.
type Config struct {
	// Nodes is the machine count.
	Nodes int
	// Shards is the service-shard count; shards are placed on nodes by the
	// ShardRouter and several shards may share a node.
	Shards int
	// Replicas is the virtual-node count per machine on the hash ring.
	Replicas int
	// Kernel configures every node's memory subsystem (per-node seeds are
	// derived from Seed, overriding Kernel.Seed).
	Kernel kernel.Config
	// Allocator backs every shard's dynamic memory.
	Allocator AllocatorKind
	// ServiceKind selects what the shards run; empty means ServiceRedis.
	ServiceKind ServiceKind
	// Hermes tunes the Hermes allocators when Allocator == AllocHermes.
	Hermes core.Config
	// Daemon, when non-nil and Allocator == AllocHermes, runs the memory
	// monitor daemon on every node (proactive reclamation).
	Daemon *monitor.Config
	// Pressure, when non-nil, co-locates a memory-pressure generator on
	// every node — the paper's §5 regimes at cluster scale.
	Pressure *workload.PressureConfig
	// Batch, when non-nil, co-locates churning batch jobs on every node
	// (the paper's co-location workload); TargetBytes sets the per-node
	// pressure level. Batch jobs are the fleet's OOM victims.
	Batch *batch.Config
	// Seed derives every node's kernel seed; one seed reproduces the whole
	// cluster.
	Seed uint64
}

// DefaultConfig returns an 8-node, 16-shard Redis-on-Glibc cluster of 8 GB
// machines — small nodes are the realistic cluster shape, and they let the
// pressure generators bite without hour-long fills.
func DefaultConfig() Config {
	kcfg := kernel.DefaultConfig()
	kcfg.TotalMemory = 8 << 30
	kcfg.SwapBytes = 8 << 30
	return Config{
		Nodes:     8,
		Shards:    16,
		Replicas:  64,
		Kernel:    kcfg,
		Allocator: AllocGlibc,
		Hermes:    core.DefaultConfig(),
		Seed:      1,
	}
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.Shards <= 0 || c.Replicas <= 0 {
		return fmt.Errorf("cluster: bad geometry: nodes=%d shards=%d replicas=%d", c.Nodes, c.Shards, c.Replicas)
	}
	switch c.Allocator {
	case AllocGlibc, AllocJemalloc, AllocTCMalloc, AllocHermes:
	default:
		return fmt.Errorf("cluster: unknown allocator kind %q", c.Allocator)
	}
	switch c.Service() {
	case ServiceRedis, ServiceRocksdb:
	default:
		return fmt.Errorf("cluster: unknown service kind %q", c.ServiceKind)
	}
	return nil
}

// Shard is one service shard: a Service plus its allocator, pinned to a
// node, with its own latency digest.
type Shard struct {
	// ID is the shard index in [0, Config.Shards).
	ID int

	node *Node
	svc  services.Service
	rec  *stats.Recorder

	requests int64
	reads    int64
	writes   int64
}

// Node returns the machine hosting the shard.
func (s *Shard) Node() *Node { return s.node }

// Service returns the shard's service instance.
func (s *Shard) Service() services.Service { return s.svc }

// Recorder returns the shard's latency digest (accumulated across runs).
func (s *Shard) Recorder() *stats.Recorder { return s.rec }

// Requests, Reads and Writes count the operations the shard has served
// across all runs.
func (s *Shard) Requests() int64 { return s.requests }

// Reads counts the read operations the shard has served.
func (s *Shard) Reads() int64 { return s.reads }

// Writes counts the write operations the shard has served.
func (s *Shard) Writes() int64 { return s.writes }

// Node is one simulated machine of the cluster: its own scheduler and
// kernel (so node clocks advance independently between requests), the
// shards placed on it, and the optional co-located pressure generator and
// monitor daemon.
type Node struct {
	// Index is the node's position in the cluster; Name is "node-<index>".
	Index int
	Name  string

	sched    *simtime.Scheduler
	kernel   *kernel.Kernel
	shards   []*Shard
	rec      *stats.Recorder
	registry *monitor.Registry
	daemon   *monitor.Daemon
	pressure *workload.Pressure
	runner   *batch.Runner
	refresh  *simtime.PeriodicTask
	closers  []func()
}

// Kernel returns the node's simulated memory subsystem.
func (n *Node) Kernel() *kernel.Kernel { return n.kernel }

// Scheduler returns the node's virtual clock.
func (n *Node) Scheduler() *simtime.Scheduler { return n.sched }

// Now returns the node's current virtual time.
func (n *Node) Now() simtime.Time { return n.sched.Now() }

// Shards returns the shards placed on this node.
func (n *Node) Shards() []*Shard { return n.shards }

// Cluster owns the fleet. Construction places every shard; Run drives the
// fleet with an open-loop load and returns the digests.
type Cluster struct {
	cfg    Config
	router *ShardRouter
	nodes  []*Node
	shards []*Shard
}

// New boots the fleet: N nodes (each with a derived kernel seed), the shard
// placement, one allocator + service per shard, and the optional per-node
// pressure generators and monitor daemons.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{cfg: cfg}
	names := make([]string, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		names[i] = fmt.Sprintf("node-%02d", i)
		kcfg := cfg.Kernel
		// splitmix64's increment keeps per-node streams well separated.
		kcfg.Seed = cfg.Seed + uint64(i+1)*0x9e3779b97f4a7c15
		sched := simtime.NewScheduler()
		n := &Node{
			Index:  i,
			Name:   names[i],
			sched:  sched,
			kernel: kernel.New(sched, kcfg),
			rec:    stats.NewRecorder(names[i]),
		}
		if cfg.Allocator == AllocHermes {
			n.registry = monitor.NewRegistry()
		}
		c.nodes = append(c.nodes, n)
	}
	c.router = NewShardRouter(names, cfg.Shards, cfg.Replicas)

	for id := 0; id < cfg.Shards; id++ {
		n := c.nodes[c.router.NodeForShard(id)]
		name := fmt.Sprintf("shard-%02d", id)
		a := c.newAllocator(n, name)
		var svc services.Service
		switch cfg.Service() {
		case ServiceRedis:
			svc = services.NewRedis(n.kernel, a, services.RedisCosts())
		case ServiceRocksdb:
			svc = services.NewRocksdb(n.kernel, a, services.RocksdbCosts(),
				services.DefaultRocksdbConfig(), name)
		}
		sh := &Shard{ID: id, node: n, svc: svc, rec: stats.NewRecorder(name)}
		n.shards = append(n.shards, sh)
		n.closers = append(n.closers, svc.Close, a.Close)
		c.shards = append(c.shards, sh)
	}

	// Background machinery starts after the shards exist so daemon and
	// co-tenants see the final process set.
	for _, n := range c.nodes {
		node := n
		if cfg.Batch != nil {
			node.runner = batch.NewRunner(node.kernel, *cfg.Batch)
			node.kernel.SetOOMHandler(node.runner.HandleOOM)
		}
		if cfg.Pressure != nil {
			node.pressure = workload.StartPressure(node.kernel, *cfg.Pressure)
			if node.registry != nil {
				node.registry.AddBatch(node.pressure.PID())
			}
		}
		if node.registry != nil && node.runner != nil {
			// The administrator registers batch containers; containers
			// churn, so the registration refreshes periodically (§3.3).
			register := func() {
				for _, pid := range node.runner.PIDs() {
					node.registry.AddBatch(pid)
				}
				for _, pid := range node.runner.InputFilePIDs() {
					node.registry.AddBatch(pid)
				}
				// Prune churned containers so the registry doesn't grow
				// without bound — but keep dead PIDs that still own cached
				// files: completed jobs leave their input cache resident
				// (§2.3) and the daemon must stay able to release it.
				for _, pid := range node.registry.BatchPIDs() {
					if p := node.kernel.Process(pid); p != nil && !p.Dead() {
						continue
					}
					ownsCache := false
					for _, f := range node.kernel.FilesOwnedBy(pid) {
						if !f.Deleted() && f.CachedPages() > 0 {
							ownsCache = true
							break
						}
					}
					if !ownsCache {
						node.registry.RemoveBatch(pid)
					}
				}
			}
			register()
			node.refresh = simtime.NewPeriodicTask(node.sched, 500*simtime.Millisecond,
				func(simtime.Time) simtime.Duration {
					register()
					return 10 * simtime.Microsecond
				})
		}
		if cfg.Daemon != nil && node.registry != nil {
			node.daemon = monitor.NewDaemon(node.kernel, node.registry, *cfg.Daemon)
		}
	}
	return c
}

// Service resolves the configured service kind, defaulting to Redis so the
// zero Config value works.
func (c Config) Service() ServiceKind {
	if c.ServiceKind == "" {
		return ServiceRedis
	}
	return c.ServiceKind
}

func (c *Cluster) newAllocator(n *Node, name string) alloc.Allocator {
	switch c.cfg.Allocator {
	case AllocJemalloc:
		return jemalloc.New(n.kernel, name, jemalloc.DefaultConfig())
	case AllocTCMalloc:
		return tcmalloc.New(n.kernel, name, tcmalloc.DefaultConfig())
	case AllocHermes:
		return core.NewWithRegistry(n.kernel, name, c.cfg.Hermes, n.registry, true)
	default:
		return glibcmalloc.New(n.kernel, name, glibcmalloc.DefaultConfig())
	}
}

// Router returns the shard router.
func (c *Cluster) Router() *ShardRouter { return c.router }

// Nodes returns the fleet.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Shard returns shard id.
func (c *Cluster) Shard(id int) *Shard { return c.shards[id] }

// Advance moves every node's clock forward by d in lockstep, running each
// node's background machinery.
func (c *Cluster) Advance(d simtime.Duration) {
	for _, n := range c.nodes {
		n.sched.Advance(d)
	}
}

// Close stops pressure generators, daemons, services and allocators on
// every node.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		if n.refresh != nil {
			n.refresh.Stop()
			n.refresh = nil
		}
		if n.pressure != nil {
			n.pressure.Stop()
			n.pressure = nil
		}
		if n.runner != nil {
			n.runner.Stop()
			n.runner = nil
		}
		if n.daemon != nil {
			n.daemon.Stop()
			n.daemon = nil
		}
		for _, f := range n.closers {
			f()
		}
		n.closers = nil
	}
}

// NodeReport is one node's slice of a Report.
type NodeReport struct {
	Name    string
	Shards  int
	Latency stats.Summary
	Kernel  kernel.Stats
}

// Report is the digest of one cluster run.
type Report struct {
	// Allocator and Service echo the configuration the run used.
	Allocator AllocatorKind
	Service   ServiceKind
	// Requests is the number of requests served (Reads + Writes).
	Requests int64
	Reads    int64
	Writes   int64
	// Cluster is the cluster-wide latency digest (queue wait + service).
	Cluster stats.Summary
	// Wait is the cluster-wide queueing-delay digest: the open-loop
	// symptom of an overloaded or pressure-stalled node.
	Wait stats.Summary
	// PerNode and PerShard are the sliced digests.
	PerNode  []NodeReport
	PerShard []stats.Summary
}

// Render prints the report in the repo's table style.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster run: allocator=%s service=%s requests=%d (reads=%d writes=%d)\n",
		r.Allocator, r.Service, r.Requests, r.Reads, r.Writes)
	fmt.Fprintf(&b, "%s\n", r.Cluster)
	fmt.Fprintf(&b, "%s\n", r.Wait)
	b.WriteString("per node:\n")
	for _, n := range r.PerNode {
		fmt.Fprintf(&b, "  %s  shards=%-3d reclaims=%-6d swapouts=%-8d %s\n",
			n.Name, n.Shards, n.Kernel.DirectReclaims, n.Kernel.PagesSwapOut, n.Latency)
	}
	b.WriteString("per shard:\n")
	for _, s := range r.PerShard {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}

// Run drives the fleet with the open-loop stream described by load and
// returns the digests. Each node is modelled as a single-threaded server
// (the event-loop discipline of Redis itself): a request that arrives while
// its node is still busy queues, and its recorded latency is queueing delay
// plus jittered service time. Requests are generated and executed in global
// arrival order, each node's clock advances monotonically, and every random
// draw comes from a seeded stream — so one (config, load) pair reproduces
// the run exactly.
//
// Run may be called repeatedly with successive streams. Every digest in
// the returned Report covers exactly that run (PerNode and PerShard sum to
// Cluster); the shard and node Recorders keep accumulating across runs for
// callers inspecting the whole history.
func (c *Cluster) Run(load workload.LoadConfig) Report {
	d := workload.NewLoadDriver(load)
	clusterRec := stats.NewRecorder("cluster")
	waitRec := stats.NewRecorder("queue-wait")
	runNode := make([]*stats.Recorder, len(c.nodes))
	for i, n := range c.nodes {
		runNode[i] = stats.NewRecorder(n.Name)
	}
	runShard := make([]*stats.Recorder, len(c.shards))
	for i, sh := range c.shards {
		runShard[i] = stats.NewRecorder(sh.rec.Name())
	}
	report := Report{Allocator: c.cfg.Allocator, Service: c.cfg.Service()}

	for {
		req, ok := d.Next()
		if !ok {
			break
		}
		sh := c.shards[c.router.ShardForKey(req.Key)]
		n := sh.node
		if req.At.After(n.sched.Now()) {
			// Idle until the arrival: run background machinery up to it.
			n.sched.RunUntil(req.At)
		}
		wait := n.sched.Now().Sub(req.At) // >0 when the server was busy
		var raw simtime.Duration
		preMapped := false
		switch req.Op {
		case workload.OpWrite:
			raw = sh.svc.Insert(req.Key, req.ValueBytes)
			preMapped = sh.svc.LastPreMapped()
			sh.writes++
			report.Writes++
		case workload.OpRead:
			raw = sh.svc.Read(req.Key)
			sh.reads++
			report.Reads++
		}
		// The server occupies the node for the raw service time; the
		// client observes queueing plus the jittered service time.
		lat := wait + workload.JitterRequest(n.kernel, raw, preMapped)
		n.sched.Advance(raw)
		sh.requests++
		report.Requests++
		sh.rec.Record(lat)
		n.rec.Record(lat)
		runShard[sh.ID].Record(lat)
		runNode[n.Index].Record(lat)
		clusterRec.Record(lat)
		waitRec.Record(wait)
	}

	// Settle the fleet on a common horizon so background work (management
	// threads, kswapd, daemons) finishes the same window on every node.
	var horizon simtime.Time
	for _, n := range c.nodes {
		if n.sched.Now().After(horizon) {
			horizon = n.sched.Now()
		}
	}
	for _, n := range c.nodes {
		n.sched.RunUntil(horizon)
	}

	report.Cluster = clusterRec.Summarize()
	report.Wait = waitRec.Summarize()
	for i, n := range c.nodes {
		report.PerNode = append(report.PerNode, NodeReport{
			Name:    n.Name,
			Shards:  len(n.shards),
			Latency: runNode[i].Summarize(),
			Kernel:  n.kernel.Stats(),
		})
	}
	for i := range c.shards {
		report.PerShard = append(report.PerShard, runShard[i].Summarize())
	}
	return report
}
