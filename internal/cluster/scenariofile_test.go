package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hermes-sim/hermes/internal/workload"
)

// TestParseScenarioSpec covers the two accepted document shapes and the
// override layering.
func TestParseScenarioSpec(t *testing.T) {
	wrapped := []byte(`{
		"cluster": { "nodes": 2, "shards": 4, "service": "rocksdb", "mem_gb": 2 },
		"scenario": {
			"name": "spec",
			"phases": [
				{ "name": "p", "requests": 100,
				  "classes": [ { "name": "c", "rate": 1000, "keys": 100, "reads": 0.5, "value_bytes": 64 } ] }
			]
		}
	}`)
	spec, err := ParseScenarioSpec(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Scenario.Name != "spec" || spec.Overrides == nil || spec.Overrides.Nodes != 2 {
		t.Fatalf("wrapped spec parsed wrong: %+v", spec)
	}
	cfg, err := spec.Overrides.Apply(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 2 || cfg.Shards != 4 || cfg.Service() != ServiceRocksdb || cfg.Kernel.TotalMemory != 2<<30 {
		t.Fatalf("overrides did not apply: %+v", cfg)
	}
	if cfg.Allocator != DefaultConfig().Allocator {
		t.Fatal("unset override changed the allocator")
	}

	bare := []byte(`{
		"name": "bare", "seed": 3,
		"phases": [
			{ "name": "p", "duration": "100ms",
			  "classes": [ { "name": "c", "rate": 1000, "keys": 100, "reads": 1, "value_bytes": 64 } ] }
		]
	}`)
	spec, err = ParseScenarioSpec(bare)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Scenario.Name != "bare" || spec.Scenario.Seed != 3 || spec.Overrides != nil {
		t.Fatalf("bare spec parsed wrong: %+v", spec)
	}

	if _, err := ParseScenarioSpec([]byte(`{"scenario": {"name": "x", "phases": []}}`)); err == nil ||
		!strings.Contains(err.Error(), "at least one phase") {
		t.Errorf("invalid scenario accepted: %v", err)
	}
	if _, err := ParseScenarioSpec([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestCommittedPresetsParse keeps every committed preset loadable and
// well-formed: parse, validate, apply overrides, and generate a scaled-down
// slice of each stream.
func TestCommittedPresetsParse(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected >= 3 committed presets, found %d", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := ParseScenarioSpec(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := spec.Overrides.Apply(DefaultConfig()); err != nil {
				t.Fatal(err)
			}
			tiny := spec.Scenario.Scaled(0.001)
			d := workload.NewScenarioDriver(tiny)
			n := 0
			for {
				if _, ok := d.Next(); !ok {
					break
				}
				n++
			}
			if n == 0 {
				t.Error("scaled preset generated no requests")
			}
		})
	}
}
