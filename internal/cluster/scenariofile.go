package cluster

import (
	"encoding/json"
	"fmt"

	"github.com/hermes-sim/hermes/internal/workload"
)

// ScenarioSpec is a loaded scenario file: the workload scenario plus
// optional cluster-shape hints so a committed preset is self-contained.
// The file format is
//
//	{
//	  "cluster":  { "nodes": 4, "shards": 8, "service": "rocksdb",
//	                "allocator": "glibc", "mem_gb": 4, "stats": "histogram" },
//	  "scenario": { ...workload scenario document... }
//	}
//
// where the cluster section (and each of its fields) is optional; a
// document without a "scenario" key is parsed as a bare scenario.
type ScenarioSpec struct {
	// Scenario is the workload description.
	Scenario workload.Scenario
	// Overrides carries the file's cluster hints; nil when absent.
	Overrides *SpecOverrides
}

// SpecOverrides are a preset's cluster-shape hints; zero-valued fields
// leave the base config untouched.
type SpecOverrides struct {
	Nodes    int `json:"nodes,omitempty"`
	Shards   int `json:"shards,omitempty"`
	Replicas int `json:"replicas,omitempty"`
	// ShardReplicas is the shard replication factor (Config.ShardReplicas):
	// failover-drill presets set it so kills have somewhere to fail over.
	ShardReplicas int           `json:"shard_replicas,omitempty"`
	Service       ServiceKind   `json:"service,omitempty"`
	Allocator     AllocatorKind `json:"allocator,omitempty"`
	MemGB         int64         `json:"mem_gb,omitempty"`
	Stats         StatsMode     `json:"stats,omitempty"`
}

// Apply layers the overrides onto a base config and re-validates the
// result.
func (o *SpecOverrides) Apply(cfg Config) (Config, error) {
	if o == nil {
		return cfg, nil
	}
	if o.Nodes > 0 {
		cfg.Nodes = o.Nodes
	}
	if o.Shards > 0 {
		cfg.Shards = o.Shards
	}
	if o.Replicas > 0 {
		cfg.Replicas = o.Replicas
	}
	if o.ShardReplicas > 0 {
		cfg.ShardReplicas = o.ShardReplicas
	}
	if o.Service != "" {
		cfg.ServiceKind = o.Service
	}
	if o.Allocator != "" {
		cfg.Allocator = o.Allocator
	}
	if o.MemGB > 0 {
		cfg.Kernel.TotalMemory = o.MemGB << 30
		cfg.Kernel.SwapBytes = o.MemGB << 30
	}
	if o.Stats != "" {
		cfg.Stats = o.Stats
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("scenario cluster overrides: %w", err)
	}
	return cfg, nil
}

// ParseScenarioSpec decodes a scenario spec document (wrapped or bare) and
// validates the scenario.
func ParseScenarioSpec(data []byte) (ScenarioSpec, error) {
	var doc struct {
		Cluster  *SpecOverrides  `json:"cluster"`
		Scenario json.RawMessage `json:"scenario"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return ScenarioSpec{}, fmt.Errorf("cluster: scenario spec JSON: %w", err)
	}
	raw := doc.Scenario
	if raw == nil {
		raw = data // bare scenario document
	}
	scn, err := workload.ParseScenario(raw)
	if err != nil {
		return ScenarioSpec{}, err
	}
	return ScenarioSpec{Scenario: scn, Overrides: doc.Cluster}, nil
}
