package cluster

import (
	"fmt"
	"sort"

	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
	"github.com/hermes-sim/hermes/internal/workload/randgen"
)

// This file is the resilience layer: deterministic soft-fault injection
// (degrade-node/heal-node service slowdowns and fault-window error bursts),
// client-side resilience policies (timeouts, retries with backoff + jitter,
// read hedging), and the SLO-driven shedding controller. Like the topology
// layer it compiles the scenario's events into static schedules up front,
// so everything a node does remains a pure function of its own arrival
// stream.
//
// Determinism argument. Soft faults follow the topology playbook: degrade
// windows and fault windows are compiled from declared events, so a node's
// slowdown factor and a request's error probability are pure functions of
// (node/shard, instant). Error verdicts and backoff jitter are drawn at
// GENERATION time — one goroutine in both engines, in emission order —
// from their own domain-separated streams, so the expanded attempt stream
// (primaries, retries, hedges) is byte-identical before either engine
// partitions it. The one genuinely runtime-dependent trigger is the client
// timeout: whether attempt k timed out is only known when its serving node
// finishes it. Timeout retries are therefore emitted SPECULATIVELY at
// generation (at send + timeout + backoff) and carry a condition — "fires
// only if the previous attempt failed" — that the serving node evaluates
// locally against a per-node fate table filled in per-node arrival order.
// A conditional successor whose routing would land it away from its
// chain's anchor (only possible under topology events) is never spawned:
// routing is a pure function of the static outage schedule, so generation
// checks the successor's landing at spawn time and marks the predecessor
// as the chain's final attempt instead — the failure stays countable and
// no fate entry is left orphaned. Hedges are pinned at spawn time to a
// live replica-chain position different from the serving instance, so
// they go to a different node by construction and are unconditional
// ("always hedge after the delay"); the SLO controller is per-node state
// advanced in per-node arrival order with its own per-node stream.
// Nothing a node observes depends on another node's runtime state — the
// invariant both engines rest on.

// Domain-separation stream ids for the resilience layer (same namespace
// discipline as workload's streamLoadDriver).
const (
	streamFaultDraws = 0x666c742d64726177 // "flt-draw": fault-window error verdicts
	streamRetryJit   = 0x727472792d6a6974 // "rtry-jit": backoff jitter
	streamShedCtl    = 0x736865642d637472 // "shed-ctr": per-node shed draws (xor node)
)

// factorWindow is one service-latency degradation of one node: raw service
// cost multiplies by factor during [from, to).
type factorWindow struct {
	from, to simtime.Time
	factor   float64
}

// degradeFactorAt returns the slowdown factor covering the instant (1 when
// none does). Windows are sorted and non-overlapping per node.
func degradeFactorAt(ws []factorWindow, at simtime.Time) float64 {
	for i := range ws {
		if at.Before(ws[i].from) {
			return 1
		}
		if at.Before(ws[i].to) {
			return ws[i].factor
		}
	}
	return 1
}

// faultWindow is one error burst on one target: requests during [from, to)
// fail with probability rate.
type faultWindow struct {
	from, to simtime.Time
	rate     float64
}

// resClass is one traffic class's lowered resilience policy; active is
// false for classes without one.
type resClass struct {
	active  bool
	timeout simtime.Duration
	retries int
	backoff simtime.Duration
	jitter  float64
	hedge   simtime.Duration
}

// resilience is a scenario's compiled resilience state: static fault
// schedules, per-class policies, the SLO block, and the generation-time
// streams. nil when the scenario has none of it — the marker for every
// fast path.
type resilience struct {
	degrade    [][]factorWindow // per node, sorted, non-overlapping
	nodeFault  [][]faultWindow  // per node
	shardFault [][]faultWindow  // per shard
	class      []resClass       // indexed classOff[phase]+class
	classOff   []int
	anyPolicy  bool // at least one class has an active policy
	slo        *workload.SLO
	pol        *workload.Policies // control-plane policies (controlplane.go)
	faults     *randgen.Stream    // error verdicts (generation time)
	jit        *randgen.Stream    // backoff jitter (generation time)
}

// classFor returns the lowered policy for a (phase, class) cell.
func (r *resilience) classFor(phase, class int32) *resClass {
	return &r.class[r.classOff[phase]+int(class)]
}

// faultRate returns the error probability for a request to (node, shard) at
// the instant. Overlapping windows compound probabilistically: the request
// survives only if it survives every covering window.
func (r *resilience) faultRate(node, shard int, at simtime.Time) float64 {
	keep := 1.0
	for i := range r.nodeFault[node] {
		w := &r.nodeFault[node][i]
		if !at.Before(w.from) && at.Before(w.to) {
			keep *= 1 - w.rate
		}
	}
	for i := range r.shardFault[shard] {
		w := &r.shardFault[shard][i]
		if !at.Before(w.from) && at.Before(w.to) {
			keep *= 1 - w.rate
		}
	}
	return 1 - keep
}

// newResilience compiles the scenario's soft-fault events and class
// policies, validating transitions (a heal needs an active degrade, a
// fault-window shard must exist). Returns nil when the scenario has no
// resilience surface at all.
func (c *Cluster) newResilience(scn workload.Scenario) (*resilience, error) {
	hasEvents := false
	for _, e := range scn.Events {
		switch e.Kind {
		case workload.EventDegradeNode, workload.EventHealNode, workload.EventFaultWindow:
			hasEvents = true
		}
	}
	anyPolicy := false
	for _, p := range scn.Phases {
		for _, tc := range p.Classes {
			if tc.Resilience != nil {
				anyPolicy = true
			}
		}
	}
	if !hasEvents && !anyPolicy && scn.SLO == nil {
		return nil, nil
	}
	r := &resilience{
		degrade:    make([][]factorWindow, len(c.nodes)),
		nodeFault:  make([][]faultWindow, len(c.nodes)),
		shardFault: make([][]faultWindow, len(c.shards)),
		anyPolicy:  anyPolicy,
		slo:        scn.SLO,
		faults:     randgen.Split(scn.Seed, streamFaultDraws),
		jit:        randgen.Split(scn.Seed, streamRetryJit),
	}
	r.pol = scn.Policies
	for _, p := range scn.Phases {
		r.classOff = append(r.classOff, len(r.class))
		for _, tc := range p.Classes {
			rc := resClass{}
			if pol := tc.Resilience; pol != nil {
				rc = resClass{
					active:  true,
					timeout: pol.Timeout,
					retries: pol.Retries,
					backoff: pol.Backoff,
					jitter:  pol.Jitter,
					hedge:   pol.Hedge,
				}
			}
			r.class = append(r.class, rc)
		}
	}
	// Walk events in firing order — (At, declaration) — so degrade/heal
	// pairing matches what the node cursors will observe.
	order := make([]int, len(scn.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return scn.Events[order[a]].At < scn.Events[order[b]].At
	})
	open := make([]int, len(c.nodes)) // open degrade window index + 1, or 0
	for _, i := range order {
		e := scn.Events[i]
		at := scn.Start.Add(e.At)
		targets := func() []int {
			if e.Node >= 0 {
				return []int{e.Node}
			}
			all := make([]int, len(c.nodes))
			for n := range all {
				all[n] = n
			}
			return all
		}
		switch e.Kind {
		case workload.EventDegradeNode:
			for _, n := range targets() {
				if o := open[n]; o > 0 {
					// Re-degrade replaces the factor: close the open
					// window here and open a new one.
					r.degrade[n][o-1].to = at
				}
				r.degrade[n] = append(r.degrade[n], factorWindow{
					from: at, to: simtime.MaxTime, factor: e.Factor,
				})
				open[n] = len(r.degrade[n])
			}
		case workload.EventHealNode:
			for _, n := range targets() {
				if open[n] == 0 {
					return nil, fmt.Errorf("cluster: scenario %q event %d (%s): node %d is not degraded at %v (degrade it first)",
						scn.Name, i, e.Kind, n, at)
				}
				r.degrade[n][open[n]-1].to = at
				open[n] = 0
			}
		case workload.EventFaultWindow:
			w := faultWindow{from: at, to: at.Add(e.Duration), rate: e.ErrorRate}
			if e.Shard != nil {
				if *e.Shard >= len(c.shards) {
					return nil, fmt.Errorf("cluster: scenario %q event %d (%s): targets shard %d but the cluster has %d shards",
						scn.Name, i, e.Kind, *e.Shard, len(c.shards))
				}
				r.shardFault[*e.Shard] = append(r.shardFault[*e.Shard], w)
				continue
			}
			for _, n := range targets() {
				r.nodeFault[n] = append(r.nodeFault[n], w)
			}
		}
	}
	return r, nil
}

// The per-node SLO controller that used to live here (shedCtl) grew into
// the adaptive control plane: see controlplane.go. The shed action keeps
// this file's original step rule, stream id and draw sequence.

// resAttempt is the resilience metadata riding with one emitted attempt.
// The zero value marks a request outside the resilience layer.
type resAttempt struct {
	id        int64 // chain id (0 = not a resilient-class request)
	cls       int32 // flattened class index (resilience.class)
	attemptNo uint8
	flags     uint8
}

const (
	attErr     = 1 << iota // generation drew an error verdict: fail fast
	attRetry               // this attempt is a retry
	attHedge               // this attempt is a speculative read hedge
	attCond                // fires only if the chain's previous attempt failed
	attTracked             // a conditional successor exists: record the fate
	attLast                // no successor was generated: failure is final
)

func (m resAttempt) is(f uint8) bool { return m.flags&f != 0 }

// pendingAttempt is one not-yet-emitted retry or hedge in the expander's
// heap.
type pendingAttempt struct {
	at        simtime.Time
	seq       int64 // tie-break: insertion order
	req       workload.Request
	phase     int32
	class     int32
	id        int64
	attemptNo int
	cond      bool
	hedge     bool
	anchor    int32 // node index a conditional chain is pinned to
	hinst     int32 // replica-chain position a hedge is pinned to
}

// retryHeap is a min-heap on (at, seq); seq makes same-instant ordering
// deterministic.
type retryHeap []pendingAttempt

func (h retryHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h *retryHeap) push(p pendingAttempt) {
	*h = append(*h, p)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *retryHeap) pop() pendingAttempt {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h).less(l, small) {
			small = l
		}
		if r < n && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// resExpander turns the scenario's client-request stream into the attempt
// stream: primaries, error/timeout retries, and hedges, merged by arrival
// instant. It runs at generation time on one goroutine in both engines.
type resExpander struct {
	c      *Cluster
	sr     *scenarioRun
	heap   retryHeap
	seq    int64
	nextID int64
	emit   func(req workload.Request, shard, inst, pc int32, meta resAttempt)
}

// backoffDelay computes retry k's delay (k = the retry's attempt number,
// 1-based): Backoff·2^(k-1) stretched by the jitter draw. The draw happens
// here — at generation, in emission order — whenever the policy has jitter.
func (x *resExpander) backoffDelay(rc *resClass, k int) simtime.Duration {
	d := rc.backoff << uint(k-1)
	if rc.jitter > 0 {
		d = simtime.Duration(float64(d) * (1 + rc.jitter*x.sr.res.jit.Float64()))
	}
	return d
}

// condObservable reports whether a conditional successor arriving at the
// instant can observe its chain's fate: its routing — a pure function of
// the static outage schedule, so generation can evaluate it at spawn time
// — must land it on the anchor node, and a conditional write must not be
// diverted to a replica (its migration-manifest entry could not be
// trusted). A successor whose whole chain is down at the instant stays
// observable: the route-drop path respawns it, still anchored.
func (x *resExpander) condObservable(shard int, anchor int32, op workload.Op, at simtime.Time) bool {
	sr := x.sr
	if sr.topo == nil {
		return true
	}
	inst, up := x.c.routeInstance(sr.topo, shard, at)
	if !up {
		return true
	}
	if int32(x.c.chains[shard][inst]) != anchor {
		return false
	}
	return inst == 0 || op != workload.OpWrite
}

// spawnRetry queues the chain's next attempt.
func (x *resExpander) spawnRetry(p pendingAttempt, rc *resClass, delay simtime.Duration, cond bool, anchor int32) {
	x.seq++
	at := p.at.Add(delay)
	req := p.req
	req.At = at
	x.heap.push(pendingAttempt{
		at: at, seq: x.seq, req: req,
		phase: p.phase, class: p.class, id: p.id,
		attemptNo: p.attemptNo + 1, cond: cond, anchor: anchor,
	})
}

// emitAttempt routes and emits one attempt, drawing its error verdict and
// queueing its successors (retry, hedge). Returns without emitting when
// the attempt was dropped at routing or its pinned hedge replica is down.
func (x *resExpander) emitAttempt(p pendingAttempt) {
	c, sr := x.c, x.sr
	res := sr.res
	rc := res.classFor(p.phase, p.class)
	shard := c.router.ShardForKey(p.req.Key)
	if p.hedge {
		// A hedge serves on the replica-chain position pinned at spawn
		// time — never re-routed, or it would land back on the very
		// instance it is hedging against. upAt is a pure function of the
		// static schedule at the hedge's own instant, so this re-check
		// matches the spawn-time one; a hedge whose replica is down is
		// discarded, not re-homed. Hedges are immune to fault draws and
		// spawn nothing: a pure speculative duplicate.
		if sr.topo != nil && !sr.topo.upAt(c.chains[shard][p.hinst], p.at) {
			return
		}
		meta := resAttempt{
			id:        p.id,
			cls:       int32(res.classOff[p.phase]) + p.class,
			attemptNo: uint8(p.attemptNo),
			flags:     attHedge,
		}
		x.emit(p.req, int32(shard), p.hinst, sr.pcIndexAt(p.phase, p.class), meta)
		return
	}
	inst := 0
	if sr.topo != nil {
		var up bool
		if inst, up = c.routeInstance(sr.topo, shard, p.at); !up {
			// The whole chain is down: the client's connection is refused
			// on the spot, and a remaining retry fires under the SAME
			// condition this attempt carried — a speculative attempt stays
			// speculative (its chain may already have succeeded before
			// this attempt was dropped), an unconditional one respawns
			// unconditionally.
			sr.routeDropped[c.chains[shard][0]]++
			if rc.active && p.attemptNo < rc.retries {
				delay := x.backoffDelay(rc, p.attemptNo+1)
				// A conditional respawn keeps the chain's fate entry
				// consumable only if its landing stays observable; the
				// rare unobservable tail ends the chain here, uncounted
				// (the attempt never reaches a node that could count it).
				if !p.cond || x.condObservable(shard, p.anchor, p.req.Op, p.at.Add(delay)) {
					x.spawnRetry(p, rc, delay, p.cond, p.anchor)
				}
			}
			return
		}
	}
	node := c.shards[shard].instances[inst].node.Index
	if p.cond {
		// A conditional (timeout-speculative) attempt is only evaluable on
		// the node holding its chain's fate. Spawn-time condObservable
		// checks made exactly this routing decision, so a re-routed
		// conditional or a conditional write diverted to a replica cannot
		// reach here — the check stands as a guard on that invariant.
		if int32(node) != p.anchor || (inst > 0 && p.req.Op == workload.OpWrite) {
			return
		}
	}
	meta := resAttempt{
		id:        p.id,
		cls:       int32(res.classOff[p.phase]) + p.class,
		attemptNo: uint8(p.attemptNo),
	}
	if p.attemptNo > 0 {
		meta.flags |= attRetry
	}
	if p.cond {
		meta.flags |= attCond
	}
	err := false
	if rate := res.faultRate(node, shard, p.at); rate > 0 && res.faults.Float64() < rate {
		err = true
		meta.flags |= attErr
	}
	if sr.topo != nil && inst > 0 && p.req.Op == workload.OpWrite && !err {
		// Same manifest rule as the plain path: a write diverted past a
		// down primary replays at its restore. Errored attempts never
		// reach the service, so they leave no manifest entry; conditional
		// writes never get here (discarded above when inst > 0).
		if w := sr.topo.window(c.chains[shard][0], p.at); w != nil && w.manifest != nil {
			w.manifest.add(int32(shard), p.req.Key, p.req.ValueBytes)
		}
	}
	// Queue the successor. An error is generation-time knowledge, so the
	// retry fires under the same condition this attempt did; a timeout is
	// serve-time knowledge, so the retry is speculative — conditional on
	// this attempt's fate, pinned to this node. Either way a conditional
	// successor is only spawned when its landing can observe that fate
	// (condObservable); otherwise this attempt becomes the chain's last,
	// so a final failure is still counted and no fate entry is orphaned.
	spawned := false
	if rc.active && p.attemptNo < rc.retries {
		if err {
			delay := x.backoffDelay(rc, p.attemptNo+1)
			if !p.cond || x.condObservable(shard, p.anchor, p.req.Op, p.at.Add(delay)) {
				x.spawnRetry(p, rc, delay, p.cond, p.anchor)
				spawned = true
			}
		} else if rc.timeout > 0 {
			delay := rc.timeout + x.backoffDelay(rc, p.attemptNo+1)
			if x.condObservable(shard, int32(node), p.req.Op, p.at.Add(delay)) {
				x.spawnRetry(p, rc, delay, true, int32(node))
				spawned = true
				meta.flags |= attTracked
			}
		}
	}
	if !spawned {
		meta.flags |= attLast
	}
	if p.cond && spawned && !meta.is(attTracked) {
		// An errored conditional's successor re-reads the same fate entry;
		// keep it alive.
		meta.flags |= attTracked
	}
	// Hedge the read: a speculative duplicate to the next live replica
	// after the hedge delay, pinned to that chain position so emission
	// serves it there rather than re-routing it back onto the instance it
	// hedges against. Always-on hedging — whether the primary already
	// answered is another node's runtime state, which generation must not
	// consult.
	if rc.active && rc.hedge > 0 && p.attemptNo == 0 && !p.cond &&
		p.req.Op == workload.OpRead && !err {
		th := p.at.Add(rc.hedge)
		for hi := range c.chains[shard] {
			if hi == inst {
				continue
			}
			if sr.topo != nil && !sr.topo.upAt(c.chains[shard][hi], th) {
				continue
			}
			x.seq++
			hreq := p.req
			hreq.At = th
			x.heap.push(pendingAttempt{
				at: th, seq: x.seq, req: hreq,
				phase: p.phase, class: p.class, id: p.id,
				attemptNo: p.attemptNo, hedge: true, hinst: int32(hi),
			})
			break
		}
	}
	x.emit(p.req, int32(shard), int32(inst), sr.pcIndexAt(p.phase, p.class), meta)
}

// generateResilient is generateScenario's expander path: it merges the
// scenario driver's client requests with the pending retry/hedge heap in
// arrival order, emitting the full attempt stream.
func (c *Cluster) generateResilient(scn workload.Scenario, sr *scenarioRun,
	emit func(req workload.Request, shard, inst, pc int32, meta resAttempt)) []workload.PhaseBound {
	x := &resExpander{c: c, sr: sr, emit: emit}
	d := workload.NewScenarioDriver(scn)
	pending, ok := d.Next()
	for ok || len(x.heap) > 0 {
		// Earliest instant wins; a retry beats a client request at the
		// same instant (it entered the system first).
		if len(x.heap) > 0 && (!ok || !x.heap[0].at.After(pending.At)) {
			x.emitAttempt(x.heap.pop())
			continue
		}
		rc := sr.res.classFor(int32(pending.Phase), int32(pending.Class))
		p := pendingAttempt{
			at: pending.At, req: pending.Request,
			phase: int32(pending.Phase), class: int32(pending.Class),
		}
		if rc.active {
			x.nextID++
			p.id = x.nextID
		}
		x.emitAttempt(p)
		pending, ok = d.Next()
	}
	return d.Bounds()
}
