package cluster

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/hermes-sim/hermes/internal/metrics"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// metricsScenario is the event scenario with the time-series collector on:
// the configuration under which the engine-identity and golden tests pin
// the metrics stream.
func metricsScenario() (Config, workload.Scenario) {
	cfg, scn := eventScenario()
	cfg.Metrics = &metrics.Config{Period: 20 * simtime.Millisecond}
	return cfg, scn
}

// TestScenarioMetricsEngineIdentity extends the parallel-vs-sequential
// bit-identity bar to the metrics stream: the per-window series is part of
// the scenario report, so the chunk-pipelined engine must reproduce the
// sequential engine's windows sample for sample.
func TestScenarioMetricsEngineIdentity(t *testing.T) {
	cfg, scn := metricsScenario()
	par := runScenario(t, cfg, scn)
	cfg.Sequential = true
	seq := runScenario(t, cfg, scn)
	if len(par.Metrics) == 0 {
		t.Fatal("metrics-enabled scenario produced no samples")
	}
	if !reflect.DeepEqual(par.Metrics, seq.Metrics) {
		t.Fatalf("parallel engine's metrics series diverged from sequential:\npar: %+v\nseq: %+v",
			par.Metrics, seq.Metrics)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Fatal("parallel scenario report diverged from sequential with metrics enabled")
	}
}

// TestScenarioMetricsAccounting ties the stream to the report: every
// served request lands in exactly one window, windows tile the run, and
// the final RSS gauge is live.
func TestScenarioMetricsAccounting(t *testing.T) {
	cfg, scn := metricsScenario()
	rep := runScenario(t, cfg, scn)
	var served int64
	for i, s := range rep.Metrics {
		served += s.Requests
		if i > 0 && s.Start != rep.Metrics[i-1].End {
			t.Errorf("window %d starts at %v, previous ended at %v", i, s.Start, rep.Metrics[i-1].End)
		}
		if s.Window != int64(i) {
			t.Errorf("window %d indexed as %d", i, s.Window)
		}
	}
	if served != rep.Requests {
		t.Errorf("windows account %d requests, report served %d", served, rep.Requests)
	}
	last := rep.Metrics[len(rep.Metrics)-1]
	if last.RSSBytes <= 0 {
		t.Errorf("final window's RSS gauge = %d, want > 0", last.RSSBytes)
	}
	var actions int64
	for _, s := range rep.Metrics {
		actions += s.Actions
	}
	if actions != int64(len(rep.Actions)) {
		t.Errorf("windows account %d controller actions, report has %d", actions, len(rep.Actions))
	}
}

// TestScenarioMetricsSeedReplayGolden pins the metrics stream's exact
// bytes: the committed JSONL is what this scenario and seed must always
// produce. Regenerate with HERMES_UPDATE_GOLDEN=1 go test -run
// TestScenarioMetricsSeedReplayGolden ./internal/cluster/ after an
// intentional engine or cost-model change.
func TestScenarioMetricsSeedReplayGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the event scenario")
	}
	cfg, scn := metricsScenario()
	rep := runScenario(t, cfg, scn)
	var buf bytes.Buffer
	if err := metrics.WriteJSONL(&buf, rep.Metrics); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics-golden.jsonl")
	if os.Getenv("HERMES_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d windows)", golden, len(rep.Metrics))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with HERMES_UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("metrics stream diverged from %s: got %d bytes, want %d (regenerate with HERMES_UPDATE_GOLDEN=1 if the change is intentional)",
			golden, buf.Len(), len(want))
	}
}
