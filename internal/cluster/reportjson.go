package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file is the single report-serialization path every CLI shares: the
// timed JSON wrappers, the indented-JSON writer, and the controller-action
// timeline renderer. Before it existed each command carried its own copy of
// all three, and the copies had started to drift.

// TimedReport wraps a flat-load ClusterReport with its wall-clock cost.
// WallMS is Go-cased to match the embedded report's untagged fields, so the
// JSON document carries one naming convention.
type TimedReport struct {
	Report
	WallMS float64 `json:"WallMS"`
}

// TimedScenarioReport wraps a ScenarioReport with its wall-clock cost.
type TimedScenarioReport struct {
	ScenarioReport
	WallMS float64 `json:"WallMS"`
}

// WriteReportJSON writes v as two-space-indented JSON — the one encoder
// every machine-readable artifact (reports, bench files, campaign output)
// goes through.
func WriteReportJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Describe renders the action's change in the units of its kind — the one
// human-readable form of a ControllerAction, shared by every timeline.
func (a ControllerAction) Describe() string {
	switch a.Kind {
	case ActionShed:
		return fmt.Sprintf("shed probability %.2f -> %.2f", a.Old, a.New)
	case ActionBatch:
		return fmt.Sprintf("batch target %.0fMB -> %.0fMB", a.Old/(1<<20), a.New/(1<<20))
	case ActionAllocator:
		return fmt.Sprintf("RSV_FACTOR %.2f -> %.2f", a.Old, a.New)
	case ActionWatermark:
		return fmt.Sprintf("watermark scale %.2f -> %.2f", a.Old, a.New)
	default:
		return fmt.Sprintf("%v -> %v", a.Old, a.New)
	}
}

// RenderActionTimeline renders the merged controller decision log as a
// virtual-time-ordered table.
func RenderActionTimeline(acts []ControllerAction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-6s %-10s %s\n", "t", "node", "action", "change")
	for _, a := range acts {
		fmt.Fprintf(&b, "%-14v %-6d %-10s %s\n", a.At, a.Node, a.Kind, a.Describe())
	}
	return b.String()
}
