package cluster

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/batch"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

func testClusterConfig(kind AllocatorKind) Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Shards = 8
	cfg.Allocator = kind
	cfg.Kernel.TotalMemory = 2 << 30
	cfg.Kernel.SwapBytes = 2 << 30
	return cfg
}

func testLoad() workload.LoadConfig {
	load := workload.DefaultLoadConfig()
	load.Requests = 20_000
	load.Keys = 10_000
	return load
}

func runOnce(t *testing.T, kind AllocatorKind) Report {
	t.Helper()
	c := New(testClusterConfig(kind))
	defer c.Close()
	return c.Run(testLoad())
}

func TestClusterRunDeterministic(t *testing.T) {
	a := runOnce(t, AllocGlibc)
	b := runOnce(t, AllocGlibc)
	if a.Cluster != b.Cluster {
		t.Errorf("cluster digests differ across identical runs:\n%v\n%v", a.Cluster, b.Cluster)
	}
	if a.Wait != b.Wait {
		t.Errorf("wait digests differ across identical runs:\n%v\n%v", a.Wait, b.Wait)
	}
	for i := range a.PerShard {
		if a.PerShard[i] != b.PerShard[i] {
			t.Errorf("shard %d digests differ:\n%v\n%v", i, a.PerShard[i], b.PerShard[i])
		}
	}
}

func TestClusterSeedChangesDigest(t *testing.T) {
	a := runOnce(t, AllocGlibc)
	cfg := testClusterConfig(AllocGlibc)
	cfg.Seed = 99
	c := New(cfg)
	defer c.Close()
	b := c.Run(testLoad())
	if a.Cluster == b.Cluster {
		t.Error("different cluster seeds produced the identical digest")
	}
}

func TestClusterAccounting(t *testing.T) {
	rep := runOnce(t, AllocHermes)
	load := testLoad()
	if rep.Requests != load.Requests {
		t.Fatalf("served %d requests, want %d", rep.Requests, load.Requests)
	}
	if rep.Reads+rep.Writes != rep.Requests {
		t.Fatalf("reads %d + writes %d != requests %d", rep.Reads, rep.Writes, rep.Requests)
	}
	var perShard, perNode int
	for _, s := range rep.PerShard {
		perShard += s.Count
	}
	for _, n := range rep.PerNode {
		perNode += n.Latency.Count
	}
	if int64(perShard) != rep.Requests || int64(perNode) != rep.Requests {
		t.Fatalf("per-shard sum %d / per-node sum %d, want %d", perShard, perNode, rep.Requests)
	}
	if rep.Cluster.Count != perShard {
		t.Fatalf("cluster digest holds %d samples, shards hold %d", rep.Cluster.Count, perShard)
	}
}

func TestClusterRepeatedRunsReportPerRun(t *testing.T) {
	c := New(testClusterConfig(AllocGlibc))
	defer c.Close()
	load := testLoad()
	load.Requests = 5000
	first := c.Run(load)
	load.Start = c.Nodes()[0].Now() // second stream starts after the first
	second := c.Run(load)
	for _, rep := range []Report{first, second} {
		if rep.Requests != load.Requests || rep.Cluster.Count != int(load.Requests) {
			t.Fatalf("report covers %d requests / %d samples, want %d",
				rep.Requests, rep.Cluster.Count, load.Requests)
		}
		var perNode, perShard int
		for _, n := range rep.PerNode {
			perNode += n.Latency.Count
		}
		for _, s := range rep.PerShard {
			perShard += s.Count
		}
		if perNode != rep.Cluster.Count || perShard != rep.Cluster.Count {
			t.Fatalf("per-node sum %d / per-shard sum %d don't decompose the run's %d samples",
				perNode, perShard, rep.Cluster.Count)
		}
	}
	// The persistent shard recorders do accumulate across runs.
	var accumulated int
	for id := 0; id < testClusterConfig(AllocGlibc).Shards; id++ {
		accumulated += c.Shard(id).Recorder().Count()
	}
	if want := int(load.Requests) * 2; accumulated != want {
		t.Fatalf("accumulated shard recorders hold %d samples, want %d", accumulated, want)
	}
}

func TestClusterPlacementMatchesRouter(t *testing.T) {
	cfg := testClusterConfig(AllocGlibc)
	c := New(cfg)
	defer c.Close()
	for id := 0; id < cfg.Shards; id++ {
		want := c.Router().NodeForShard(id)
		if got := c.Shard(id).Node().Index; got != want {
			t.Errorf("shard %d lives on node %d, router says %d", id, got, want)
		}
	}
}

func TestClusterWithBatchCoTenantsDeterministic(t *testing.T) {
	run := func() Report {
		cfg := testClusterConfig(AllocHermes)
		b := batch.DefaultConfig()
		b.TargetBytes = cfg.Kernel.TotalMemory
		b.InputBytes = cfg.Kernel.TotalMemory / 16
		b.WorkDuration = 20 * simtime.Second
		b.RampTicks = 10
		cfg.Batch = &b
		d := monitor.DefaultConfig()
		cfg.Daemon = &d
		c := New(cfg)
		defer c.Close()
		// Let the batch ramp overrun the 2 GB nodes before measuring.
		c.Advance(5 * simtime.Second)
		load := testLoad()
		load.Start = simtime.Time(5 * simtime.Second)
		return c.Run(load)
	}
	a, b := run(), run()
	if a.Cluster != b.Cluster {
		t.Errorf("batch-pressured cluster digests differ:\n%v\n%v", a.Cluster, b.Cluster)
	}
	reclaimed := false
	for _, n := range a.PerNode {
		if n.Kernel.PagesReclaimed > 0 {
			reclaimed = true
		}
	}
	if !reclaimed {
		t.Error("no node reclaimed under 100% batch pressure")
	}
}

func TestClusterUnderPressureStillDeterministic(t *testing.T) {
	run := func() Report {
		cfg := testClusterConfig(AllocHermes)
		p := workload.DefaultPressureConfig(workload.PressureAnon)
		p.FileBytes = 0
		// Leave only a sliver free so the shards' own growth breaches the
		// watermarks and wakes reclaim on the 2 GB test nodes.
		p.FreeBytes = 8 << 20
		cfg.Pressure = &p
		c := New(cfg)
		defer c.Close()
		return c.Run(testLoad())
	}
	a, b := run(), run()
	if a.Cluster != b.Cluster {
		t.Errorf("pressured cluster digests differ:\n%v\n%v", a.Cluster, b.Cluster)
	}
	// Pressure must actually have bitten: some node reclaimed or swapped.
	active := false
	for _, n := range a.PerNode {
		if n.Kernel.PagesReclaimed > 0 || n.Kernel.PagesSwapOut > 0 {
			active = true
		}
	}
	if !active {
		t.Error("no node shows reclaim activity under anon pressure")
	}
}
