package cluster

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"github.com/hermes-sim/hermes/internal/services"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// Topology-dynamics chaos harness: kill/restore events, replica failover
// and live shard migration must replay bit-identically, conserve the
// dataset against a sequential oracle, and visibly change the run.

const (
	drillKillAt    = 80 * simtime.Millisecond
	drillRestoreAt = 180 * simtime.Millisecond
)

// drillConfig is the chaos fleet: 4 nodes, 8 shards, 2-way shard replicas.
func drillConfig(svc ServiceKind, kind AllocatorKind) Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Shards = 8
	cfg.ShardReplicas = 2
	cfg.ServiceKind = svc
	cfg.Allocator = kind
	cfg.Kernel.TotalMemory = 1 << 30
	cfg.Kernel.SwapBytes = 1 << 30
	cfg.Seed = 17
	return cfg
}

// primaryHeavyNode picks the node owning the most shard primaries — the
// kill target that diverts the most traffic.
func primaryHeavyNode(cfg Config) int {
	c := New(cfg)
	defer c.Close()
	counts := make([]int, cfg.Nodes)
	for _, chain := range c.chains {
		counts[chain[0]]++
	}
	best := 0
	for i, n := range counts {
		if n > counts[best] {
			best = i
		}
	}
	return best
}

// drillScenario is a three-phase mixed workload whose timeline kills the
// given node mid-run and restores it before the recovery phase ends.
func drillScenario(killNode int, policy workload.KillPolicy) workload.Scenario {
	classes := []workload.TrafficClass{
		{Name: "point", Rate: 60_000, Keys: 6_000, ZipfS: 1.1, ReadFraction: 0.6, ValueBytes: 4 << 10},
		{Name: "ingest", Rate: 10_000, Keys: 1_500, ReadFraction: 0.1, ValueBytes: 32 << 10},
	}
	return workload.Scenario{
		Name: "drill",
		Seed: 17,
		Phases: []workload.Phase{
			{Name: "steady", Duration: drillKillAt, Classes: classes},
			{Name: "outage", Duration: drillRestoreAt - drillKillAt, Classes: classes},
			{Name: "recovered", Duration: 80 * simtime.Millisecond, Classes: classes},
		},
		Events: []workload.Event{
			{At: drillKillAt, Node: killNode, Kind: workload.EventKillNode, Policy: policy},
			{At: drillRestoreAt, Node: killNode, Kind: workload.EventRestoreNode},
		},
	}
}

// TestTopologyChaosSeedReplay is the chaos regression matrix: the drill
// scenario must replay bit-identically and the partitioned parallel engine
// must match the sequential one bit for bit — across both services and
// both headline allocators, with the failover and migration paths
// demonstrably exercised in every cell.
func TestTopologyChaosSeedReplay(t *testing.T) {
	for _, svc := range []ServiceKind{ServiceRedis, ServiceRocksdb} {
		for _, kind := range []AllocatorKind{AllocGlibc, AllocHermes} {
			svc, kind := svc, kind
			t.Run(string(svc)+"/"+string(kind), func(t *testing.T) {
				cfg := drillConfig(svc, kind)
				scn := drillScenario(primaryHeavyNode(cfg), workload.KillDrain)
				if testing.Short() {
					scn = scn.Scaled(0.3)
				}
				first := runScenario(t, cfg, scn)
				again := runScenario(t, cfg, scn)
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("chaos seed replay diverged:\nfirst: %+v\nagain: %+v", first, again)
				}
				cfg.Sequential = true
				seq := runScenario(t, cfg, scn)
				if !reflect.DeepEqual(first, seq) {
					t.Fatalf("parallel engine diverged from sequential under chaos:\npar: %+v\nseq: %+v", first, seq)
				}
				if first.Failovers == 0 {
					t.Error("kill diverted no requests: the chaos never bit")
				}
				if first.MigratedBytes == 0 {
					t.Error("restore migrated nothing: the manifest never filled")
				}
			})
		}
	}
}

// TestTopologyConservationOracle replays the generated stream through an
// independent sequential oracle — plain maps plus the declared outage
// interval — and requires every shard instance's exported records to match
// it exactly after kill → failover → migrate → restore: same keys, same
// sizes, keys owned by the right shard. Drain policy, so the oracle needs
// no node clocks (queue-drop verdicts depend on them).
func TestTopologyConservationOracle(t *testing.T) {
	for _, svc := range []ServiceKind{ServiceRedis, ServiceRocksdb} {
		svc := svc
		t.Run(string(svc), func(t *testing.T) {
			cfg := drillConfig(svc, AllocGlibc)
			kill := primaryHeavyNode(cfg)
			scn := drillScenario(kill, workload.KillDrain)

			c := New(cfg)
			defer c.Close()
			rep, err := c.RunScenario(scn)
			if err != nil {
				t.Fatal(err)
			}
			if rep.MigratedBytes == 0 {
				t.Fatal("no migration: the oracle would prove nothing")
			}

			// The oracle: writes land on the first up chain node at their
			// arrival; writes diverted past the down primary join its
			// manifest, applied to the primary at the restore instant.
			killAt := scn.Start.Add(drillKillAt)
			restoreAt := scn.Start.Add(drillRestoreAt)
			type entry struct{ shard, key, size int64 }
			stores := make([]map[int64]int64, 0, len(c.shards)*2)
			oracle := func(shard, inst int) map[int64]int64 {
				i := shard*2 + inst
				for len(stores) <= i {
					stores = append(stores, map[int64]int64{})
				}
				return stores[i]
			}
			var manifest []entry
			applyManifest := func() {
				for _, e := range manifest {
					oracle(int(e.shard), 0)[e.key] = e.size
				}
				manifest = nil
			}
			d := workload.NewScenarioDriver(scn)
			applied := false
			for {
				req, ok := d.Next()
				if !ok {
					break
				}
				if !applied && !req.At.Before(restoreAt) {
					applyManifest()
					applied = true
				}
				if req.Op != workload.OpWrite {
					continue
				}
				shard := c.router.ShardForKey(req.Key)
				down := c.chains[shard][0] == kill &&
					!req.At.Before(killAt) && req.At.Before(restoreAt)
				if down {
					oracle(shard, 1)[req.Key] = req.ValueBytes
					manifest = append(manifest, entry{int64(shard), req.Key, req.ValueBytes})
				} else {
					oracle(shard, 0)[req.Key] = req.ValueBytes
				}
			}
			if !applied {
				applyManifest()
			}

			for id, sh := range c.shards {
				for inst := range sh.instances {
					want := oracle(id, inst)
					got := sh.instances[inst].svc.ExportRecords(nil)
					if len(got) != len(want) {
						t.Fatalf("%s shard %d instance %d: %d surviving keys, oracle has %d",
							svc, id, inst, len(got), len(want))
					}
					for _, rec := range got {
						if c.router.ShardForKey(rec.Key) != id {
							t.Fatalf("shard %d instance %d holds key %d owned by shard %d",
								id, inst, rec.Key, c.router.ShardForKey(rec.Key))
						}
						size, ok := want[rec.Key]
						if !ok {
							t.Fatalf("shard %d instance %d holds key %d the oracle never wrote", id, inst, rec.Key)
						}
						if size != rec.Size {
							t.Fatalf("shard %d instance %d key %d: %d bytes, oracle says %d",
								id, inst, rec.Key, rec.Size, size)
						}
					}
				}
			}
		})
	}
}

// TestTopologyFailoverAndMigrationBite pins the report surface: failover
// reroutes land on surviving nodes, the restore re-fills a positive byte
// count, the killed node's downtime equals its scheduled outage, and with
// replicas nothing is dropped — the run serves exactly what an event-free
// copy serves.
func TestTopologyFailoverAndMigrationBite(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocGlibc)
	kill := primaryHeavyNode(cfg)
	scn := drillScenario(kill, workload.KillDrain)
	rep := runScenario(t, cfg, scn)

	calm := scn
	calm.Events = nil
	calmRep := runScenario(t, cfg, calm)

	if rep.Failovers == 0 {
		t.Fatal("no failovers recorded")
	}
	if rep.Dropped != 0 {
		t.Fatalf("dropped %d requests despite a full replica chain", rep.Dropped)
	}
	if rep.Requests != calmRep.Requests {
		t.Fatalf("served %d requests, the event-free run served %d — failover lost traffic",
			rep.Requests, calmRep.Requests)
	}
	if rep.MigratedBytes == 0 {
		t.Fatal("restore migrated nothing")
	}
	var failovers, migrated int64
	for ni, nr := range rep.PerNode {
		failovers += nr.Failovers
		migrated += nr.MigratedBytes
		switch ni {
		case kill:
			if nr.Downtime != drillRestoreAt-drillKillAt {
				t.Errorf("killed node downtime %v, want %v", nr.Downtime, drillRestoreAt-drillKillAt)
			}
			if nr.Failovers != 0 {
				t.Errorf("killed node served %d failovers for itself", nr.Failovers)
			}
			if nr.MigratedBytes == 0 {
				t.Error("killed node shows no migrated bytes")
			}
		default:
			if nr.Downtime != 0 {
				t.Errorf("node %d downtime %v without a kill", ni, nr.Downtime)
			}
			if nr.MigratedBytes != 0 {
				t.Errorf("node %d shows %d migrated bytes without a restore", ni, nr.MigratedBytes)
			}
		}
	}
	if failovers != rep.Failovers || migrated != rep.MigratedBytes {
		t.Errorf("per-node topology columns (%d failovers, %d bytes) don't sum to the cluster totals (%d, %d)",
			failovers, migrated, rep.Failovers, rep.MigratedBytes)
	}
	if rep.Render() == "" || !strings.Contains(rep.Render(), "topology:") {
		t.Error("report renders no topology summary")
	}
}

// TestTopologyKillWithoutReplicasDrops: on an unreplicated fleet a kill
// leaves the node's shards unreachable — every request bound for them is
// dropped at routing, charged to the primary, and excluded from Requests;
// nothing migrates back at the restore because nothing was diverted.
func TestTopologyKillWithoutReplicasDrops(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocGlibc)
	cfg.ShardReplicas = 0
	kill := primaryHeavyNode(cfg)
	scn := drillScenario(kill, workload.KillDrain)
	rep := runScenario(t, cfg, scn)

	calm := scn
	calm.Events = nil
	calmRep := runScenario(t, cfg, calm)

	if rep.Dropped == 0 {
		t.Fatal("kill on an unreplicated fleet dropped nothing")
	}
	if rep.Failovers != 0 {
		t.Fatalf("%d failovers without replicas", rep.Failovers)
	}
	if rep.MigratedBytes != 0 {
		t.Fatalf("%d bytes migrated without replicas to divert to", rep.MigratedBytes)
	}
	if rep.Requests+rep.Dropped != calmRep.Requests {
		t.Fatalf("served %d + dropped %d != %d generated", rep.Requests, rep.Dropped, calmRep.Requests)
	}
	for ni, nr := range rep.PerNode {
		if ni == kill {
			if nr.Dropped != rep.Dropped {
				t.Errorf("killed node charged %d drops, cluster counted %d", nr.Dropped, rep.Dropped)
			}
		} else if nr.Dropped != 0 {
			t.Errorf("node %d charged %d drops for another node's outage", ni, nr.Dropped)
		}
	}
}

// TestTopologyDropPolicySeversBacklog overloads a two-node fleet so the
// kill instant finds a deep queue, then compares policies: drop must
// discard backlogged requests that drain serves, and both runs must still
// replay deterministically on both engines.
func TestTopologyDropPolicySeversBacklog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Shards = 4
	cfg.ShardReplicas = 2
	cfg.Kernel.TotalMemory = 1 << 30
	cfg.Kernel.SwapBytes = 1 << 30
	cfg.Seed = 5
	classes := []workload.TrafficClass{
		// ~10µs arrival spacing per node against ~30µs per 64KB write:
		// the backlog at the kill instant is hundreds deep.
		{Name: "flood", Rate: 200_000, Keys: 2_000, ReadFraction: 0, ValueBytes: 64 << 10},
	}
	scn := workload.Scenario{
		Name: "sever",
		Seed: 5,
		Phases: []workload.Phase{
			{Name: "flood", Duration: 40 * simtime.Millisecond, Classes: classes},
		},
		Events: []workload.Event{
			{At: 30 * simtime.Millisecond, Node: 0, Kind: workload.EventKillNode, Policy: workload.KillDrop},
		},
	}

	drop := runScenario(t, cfg, scn)
	scn.Events[0].Policy = workload.KillDrain
	drain := runScenario(t, cfg, scn)
	scn.Events[0].Policy = workload.KillDrop
	cfg.Sequential = true
	dropSeq := runScenario(t, cfg, scn)

	if !reflect.DeepEqual(drop, dropSeq) {
		t.Fatal("drop-policy run diverged between engines")
	}
	if drop.Dropped == 0 {
		t.Fatal("drop policy severed nothing: no backlog at the kill")
	}
	if drain.Dropped != 0 {
		t.Fatalf("drain policy dropped %d queued requests", drain.Dropped)
	}
	if drop.Requests >= drain.Requests {
		t.Fatalf("drop served %d requests, drain served %d — the severed backlog never left the digests",
			drop.Requests, drain.Requests)
	}
	if drop.Requests+drop.Dropped != drain.Requests+drain.Dropped {
		t.Fatalf("policies disagree on the generated stream: %d+%d vs %d+%d",
			drop.Requests, drop.Dropped, drain.Requests, drain.Dropped)
	}
}

// TestTopologyValidation: malformed topology — unknown nodes, restores of
// live nodes, double kills, oversized replica factors — comes back as a
// field-named error before the run starts, never a panic.
func TestTopologyValidation(t *testing.T) {
	cfg := drillConfig(ServiceRedis, AllocGlibc)
	c := New(cfg)
	defer c.Close()
	base := drillScenario(1, workload.KillDrain)

	mut := func(events ...workload.Event) workload.Scenario {
		s := base
		s.Events = events
		return s
	}
	cases := []struct {
		name string
		scn  workload.Scenario
		want string
	}{
		{"kill unknown node", mut(workload.Event{At: 0, Node: 9, Kind: workload.EventKillNode}),
			"cluster has 4 nodes"},
		{"kill all nodes", mut(workload.Event{At: 0, Node: -1, Kind: workload.EventKillNode}),
			"explicit Node index"},
		{"restore live node", mut(workload.Event{At: 0, Node: 1, Kind: workload.EventRestoreNode}),
			"not down"},
		{"double kill", mut(
			workload.Event{At: 0, Node: 1, Kind: workload.EventKillNode},
			workload.Event{At: 10 * simtime.Millisecond, Node: 1, Kind: workload.EventKillNode}),
			"already down"},
		{"bad policy", mut(workload.Event{At: 0, Node: 1, Kind: workload.EventKillNode, Policy: "explode"}),
			"Policy must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.RunScenario(tc.scn)
			if err == nil {
				t.Fatal("malformed topology accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}

	bad := cfg
	bad.ShardReplicas = bad.Nodes + 1
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "ShardReplicas") {
		t.Errorf("oversized ShardReplicas: got %v", err)
	}
	bad.ShardReplicas = -1
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "ShardReplicas") {
		t.Errorf("negative ShardReplicas: got %v", err)
	}
}

// TestFailoverDrillPreset runs the committed failover-drill preset on both
// engines at a smoke scale: the reports must be bit-identical and the
// drill must actually fail over and migrate.
func TestFailoverDrillPreset(t *testing.T) {
	data, err := os.ReadFile("../../examples/scenarios/failover-drill.json")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseScenarioSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Overrides == nil || spec.Overrides.ShardReplicas < 2 {
		t.Fatal("failover-drill preset must pin shard replicas >= 2")
	}
	if got := spec.Scenario.Events[0].KillPolicyKind(); got != workload.KillDrain {
		t.Fatalf("preset kill policy %q did not parse as drain", got)
	}
	cfg, err := spec.Overrides.Apply(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = spec.Scenario.Seed
	scn := spec.Scenario.Scaled(0.02)

	par := runScenario(t, cfg, scn)
	cfg.Sequential = true
	seq := runScenario(t, cfg, scn)
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("failover-drill preset diverged between engines:\npar: %+v\nseq: %+v", par, seq)
	}
	if par.Failovers == 0 || par.MigratedBytes == 0 {
		t.Fatalf("preset drill did not bite: failovers=%d migrated=%d", par.Failovers, par.MigratedBytes)
	}
	if par.Dropped != 0 {
		t.Fatalf("preset drill dropped %d requests despite replicas", par.Dropped)
	}
	// The preset's kill target must own shard primaries, or the drill
	// demonstrates nothing — guard against ring drift re-shuffling it.
	c := New(cfg)
	defer c.Close()
	kill := spec.Scenario.Events[0].Node
	owns := 0
	for _, chain := range c.chains {
		if chain[0] == kill {
			owns++
		}
	}
	if owns == 0 {
		t.Fatalf("preset kills node %d, which owns no shard primaries", kill)
	}
}

// TestReplicaChainDistinct pins the router contract the failover path
// rests on: every chain starts at the shard's primary, holds n distinct
// in-range nodes, and is stable across router rebuilds.
func TestReplicaChainDistinct(t *testing.T) {
	names := []string{"node-00", "node-01", "node-02", "node-03", "node-04"}
	r := NewShardRouter(names, 16, 64)
	r2 := NewShardRouter(names, 16, 64)
	for s := 0; s < 16; s++ {
		chain := r.ReplicaChain(s, len(names))
		if len(chain) != len(names) {
			t.Fatalf("shard %d chain %v: want %d distinct nodes", s, chain, len(names))
		}
		if chain[0] != r.NodeForShard(s) {
			t.Fatalf("shard %d chain %v does not start at its primary %d", s, chain, r.NodeForShard(s))
		}
		seen := map[int]bool{}
		for _, n := range chain {
			if n < 0 || n >= len(names) || seen[n] {
				t.Fatalf("shard %d chain %v has an out-of-range or repeated node", s, chain)
			}
			seen[n] = true
		}
		if !reflect.DeepEqual(chain, r2.ReplicaChain(s, len(names))) {
			t.Fatalf("shard %d chain differs across identical routers", s)
		}
	}
}

// TestImportExportRoundTrip pins the migration transport at service level:
// exported records re-imported into a fresh store must export back
// identically (ascending keys, exact sizes), with overwrites collapsed.
func TestImportExportRoundTrip(t *testing.T) {
	for _, svc := range []ServiceKind{ServiceRedis, ServiceRocksdb} {
		svc := svc
		t.Run(string(svc), func(t *testing.T) {
			cfg := drillConfig(svc, AllocGlibc)
			cfg.Nodes = 2
			cfg.Shards = 2
			cfg.ShardReplicas = 0
			c := New(cfg)
			defer c.Close()

			src := c.shards[0].svc
			for i := int64(0); i < 500; i++ {
				src.Insert(i*7%250, 4096+i) // overwrites: 250 survivors
			}
			exported := src.ExportRecords(nil)
			if len(exported) != 250 {
				t.Fatalf("exported %d records, want 250 after overwrites", len(exported))
			}
			for i := 1; i < len(exported); i++ {
				if exported[i-1].Key >= exported[i].Key {
					t.Fatal("export is not in ascending key order")
				}
			}

			dst := c.shards[1].svc
			if cost := dst.ImportRecords(append([]services.ImportEntry(nil), exported...)); cost <= 0 {
				t.Fatal("import cost no virtual time")
			}
			back := dst.ExportRecords(nil)
			if !reflect.DeepEqual(exported, back) {
				t.Fatalf("round trip diverged: %d records out, %d back", len(exported), len(back))
			}
		})
	}
}
