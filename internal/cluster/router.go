// Package cluster is the multi-node layer of the simulation: a Cluster owns
// N simulated machines on one virtual timeline, a consistent-hashing
// ShardRouter places service shards across them, and Run drives the fleet
// with an open-loop workload.LoadDriver, recording per-shard, per-node and
// cluster-wide latency digests. Everything is deterministic: one seed
// reproduces an entire cluster run, request for request.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ShardRouter maps keys to shards and shards to nodes. The shard→node step
// uses a consistent-hashing ring with virtual nodes, so changing the node
// count moves only ~1/N of the shards — the property every future
// rebalancing and failure-handling PR builds on. The key→shard step is a
// plain integer hash modulo the (fixed) shard count, so a record's shard
// never changes.
type ShardRouter struct {
	shards int
	nodes  int
	ring   []ringEntry
	assign []int // shard index → node index, precomputed from the ring
	slot   []int // shard index → ring index of its successor entry
}

type ringEntry struct {
	hash uint64
	node int
}

// NewShardRouter builds the ring from the node names (each contributing
// replicas virtual nodes) and precomputes the placement of every shard.
// Placement depends only on (names, shards, replicas) — it is deterministic
// and stable across runs and processes.
func NewShardRouter(nodeNames []string, shards, replicas int) *ShardRouter {
	if len(nodeNames) == 0 || shards <= 0 || replicas <= 0 {
		panic(fmt.Sprintf("cluster: bad router geometry: nodes=%d shards=%d replicas=%d",
			len(nodeNames), shards, replicas))
	}
	r := &ShardRouter{shards: shards, nodes: len(nodeNames)}
	for i, name := range nodeNames {
		for v := 0; v < replicas; v++ {
			r.ring = append(r.ring, ringEntry{hashString(fmt.Sprintf("%s#%d", name, v)), i})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool {
		if r.ring[i].hash != r.ring[j].hash {
			return r.ring[i].hash < r.ring[j].hash
		}
		return r.ring[i].node < r.ring[j].node
	})
	r.assign = make([]int, shards)
	r.slot = make([]int, shards)
	for s := 0; s < shards; s++ {
		r.slot[s] = r.successor(hashString(fmt.Sprintf("shard-%d", s)))
		r.assign[s] = r.ring[r.slot[s]].node
	}
	return r
}

// successor returns the index of the first ring entry at or after h,
// wrapping around the ring.
func (r *ShardRouter) successor(h uint64) int {
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return i
}

// ReplicaChain returns the shard's n-node replica chain: the primary (the
// shard's ring successor) followed by the next n-1 distinct nodes walking
// the ring clockwise — consistent hashing's standard replica set. The chain
// depends only on the ring, so it is deterministic, and a node leaving the
// rotation fails each of its shards over to the chain's next live entry
// without moving any other shard.
func (r *ShardRouter) ReplicaChain(shard, n int) []int {
	if shard < 0 || shard >= r.shards {
		panic(fmt.Sprintf("cluster: shard %d outside [0,%d)", shard, r.shards))
	}
	if n < 1 || n > r.nodes {
		panic(fmt.Sprintf("cluster: replica chain length %d outside [1,%d]", n, r.nodes))
	}
	chain := make([]int, 0, n)
	seen := make([]bool, r.nodes)
	for i := r.slot[shard]; len(chain) < n; i = (i + 1) % len(r.ring) {
		if node := r.ring[i].node; !seen[node] {
			seen[node] = true
			chain = append(chain, node)
		}
	}
	return chain
}

// Shards returns the shard count.
func (r *ShardRouter) Shards() int { return r.shards }

// ShardForKey maps a record key to its shard. It mixes the key first so
// contiguous keys spread across shards.
func (r *ShardRouter) ShardForKey(key int64) int {
	return int(mix64(uint64(key)) % uint64(r.shards))
}

// NodeForShard returns the node index that owns the shard.
func (r *ShardRouter) NodeForShard(shard int) int {
	if shard < 0 || shard >= r.shards {
		panic(fmt.Sprintf("cluster: shard %d outside [0,%d)", shard, r.shards))
	}
	return r.assign[shard]
}

// NodeForKey composes the two steps.
func (r *ShardRouter) NodeForKey(key int64) int {
	return r.NodeForShard(r.ShardForKey(key))
}

// Assignments returns a copy of the shard→node table (diagnostics, tests).
func (r *ShardRouter) Assignments() []int {
	out := make([]int, len(r.assign))
	copy(out, r.assign)
	return out
}

// Moved counts shards placed differently by the two routers — the
// rebalancing cost of going from r's node set to o's. Both routers must
// have the same shard count.
func (r *ShardRouter) Moved(o *ShardRouter) int {
	if r.shards != o.shards {
		panic(fmt.Sprintf("cluster: Moved across shard counts %d vs %d", r.shards, o.shards))
	}
	moved := 0
	for s := 0; s < r.shards; s++ {
		if r.assign[s] != o.assign[s] {
			moved++
		}
	}
	return moved
}

// hashString is FNV-1a finalised by mix64: raw FNV of short sequential
// labels ("shard-0", "shard-1", …) clusters in a narrow band of the 64-bit
// space, which starves ring arcs; the finalizer spreads them.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is splitmix64's finalizer: a cheap, well-distributed integer hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
