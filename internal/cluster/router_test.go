package cluster

import (
	"fmt"
	"testing"
)

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node-%02d", i)
	}
	return names
}

func TestRouterDeterministicPlacement(t *testing.T) {
	a := NewShardRouter(nodeNames(8), 64, 64)
	b := NewShardRouter(nodeNames(8), 64, 64)
	for s := 0; s < 64; s++ {
		if a.NodeForShard(s) != b.NodeForShard(s) {
			t.Fatalf("shard %d placed on %d vs %d across identical routers",
				s, a.NodeForShard(s), b.NodeForShard(s))
		}
	}
	for key := int64(0); key < 10_000; key++ {
		if a.ShardForKey(key) != b.ShardForKey(key) {
			t.Fatalf("key %d routed to different shards", key)
		}
	}
}

func TestRouterCoversAllNodes(t *testing.T) {
	const nodes, shards = 8, 256
	r := NewShardRouter(nodeNames(nodes), shards, 64)
	counts := make([]int, nodes)
	for s := 0; s < shards; s++ {
		n := r.NodeForShard(s)
		if n < 0 || n >= nodes {
			t.Fatalf("shard %d on out-of-range node %d", s, n)
		}
		counts[n]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("node %d owns no shards: %v", i, counts)
		}
	}
}

func TestRouterKeysSpreadAcrossShards(t *testing.T) {
	r := NewShardRouter(nodeNames(8), 16, 64)
	counts := make([]int, 16)
	for key := int64(0); key < 16_000; key++ {
		counts[r.ShardForKey(key)]++
	}
	for s, c := range counts {
		// Uniform would be 1000 per shard; a well-mixed hash stays within 3x.
		if c < 300 || c > 3000 {
			t.Errorf("shard %d got %d of 16000 keys (badly mixed): %v", s, c, counts)
		}
	}
}

func TestRouterRebalanceMovesFewShards(t *testing.T) {
	const shards = 256
	before := NewShardRouter(nodeNames(8), shards, 64)
	after := NewShardRouter(nodeNames(9), shards, 64)

	moved := before.Moved(after)
	if moved == 0 {
		t.Fatal("adding a node moved no shards — the new node is unused")
	}
	// Consistent hashing moves ~shards/9 ≈ 28; allow generous slack but
	// reject modulo-style reshuffles (which would move ~8/9 of the shards).
	if moved > shards/3 {
		t.Errorf("adding one node to 8 moved %d/%d shards; want ≤ %d", moved, shards, shards/3)
	}
	// Shards that stayed must still be on the same node (names are stable).
	assignBefore, assignAfter := before.Assignments(), after.Assignments()
	for s := 0; s < shards; s++ {
		if assignAfter[s] != assignBefore[s] && assignAfter[s] != 8 {
			t.Errorf("shard %d moved from node %d to old node %d — only moves to the new node are consistent",
				s, assignBefore[s], assignAfter[s])
		}
	}
}
