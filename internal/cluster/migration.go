package cluster

import (
	"fmt"
	"sort"

	"github.com/hermes-sim/hermes/internal/services"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// This file is the topology-dynamics machinery: the static outage schedule
// compiled from a scenario's kill-node/restore-node events, the failover
// routing that consults it at generation time, and the shard-migration
// replay a restore performs.
//
// Determinism argument. Kill and restore instants are declared in the
// scenario, so every node's up/down state at every instant is a pure
// function of the schedule — no runtime feedback. Routing therefore stays
// a pure function of (key, arrival instant): the serving node is the first
// chain entry in rotation at the arrival. Both engines route during
// generation (one goroutine, global arrival order), so the per-node
// sub-streams — and the migration manifests accumulated from rerouted
// writes — are byte-identical. A restore replays its manifest as
// node-local virtual-time work through the node's own event cursor, and
// every entry it needs was emitted before the restore can fire: manifest
// arrivals precede the restore instant, and a node's cursor only reaches
// the restore on a request at or after it (or at the end-of-run drain).
// Nothing a node does depends on another node's runtime state — the same
// invariant the parallel engine has always rested on.

// downWindow is one scheduled outage of one node: out of rotation during
// the half-open interval [kill, restore). restore is simtime.MaxTime when
// the node never comes back. manifest accumulates the delta writes the
// outage diverts to replicas; it is nil when nothing can be re-filled (no
// restore, or no replica chain to divert to).
type downWindow struct {
	kill    simtime.Time
	restore simtime.Time
	drop    bool
	// manifest follows the routed write stream, not per-request fates: in
	// the rare cascade where a failover target is itself later killed
	// with a drop policy, a severed write still replays — the replica
	// accepted it into its log before dying. That keeps the manifest a
	// pure function of the schedule.
	manifest *migrationManifest
}

// topology is a scenario's compiled outage schedule: each node's down
// windows, sorted by kill instant.
type topology struct {
	windows [][]downWindow
}

// newTopology compiles the scenario's kill/restore events into the static
// per-node outage schedule, validating the transitions: a kill must target
// a node in rotation, a restore a down one. Returns nil when the scenario
// has no topology events — the marker for every no-failover fast path.
func (c *Cluster) newTopology(scn workload.Scenario) (*topology, error) {
	hasTopo := false
	for _, e := range scn.Events {
		if e.Kind == workload.EventKillNode || e.Kind == workload.EventRestoreNode {
			hasTopo = true
			break
		}
	}
	if !hasTopo {
		return nil, nil
	}
	// Walk the events in firing order — (At, declaration), the order the
	// node cursors use — so the kill/restore pairing matches the run.
	order := make([]int, len(scn.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return scn.Events[order[a]].At < scn.Events[order[b]].At
	})
	t := &topology{windows: make([][]downWindow, len(c.nodes))}
	open := make([]bool, len(c.nodes))
	for _, i := range order {
		e := scn.Events[i]
		at := scn.Start.Add(e.At)
		switch e.Kind {
		case workload.EventKillNode:
			if open[e.Node] {
				return nil, fmt.Errorf("cluster: scenario %q event %d (%s): node %d is already down at %v",
					scn.Name, i, e.Kind, e.Node, at)
			}
			t.windows[e.Node] = append(t.windows[e.Node], downWindow{
				kill:    at,
				restore: simtime.MaxTime,
				drop:    e.KillPolicyKind() == workload.KillDrop,
			})
			open[e.Node] = true
		case workload.EventRestoreNode:
			if !open[e.Node] {
				return nil, fmt.Errorf("cluster: scenario %q event %d (%s): node %d is not down at %v (kill it first)",
					scn.Name, i, e.Kind, e.Node, at)
			}
			w := &t.windows[e.Node][len(t.windows[e.Node])-1]
			w.restore = at
			if c.cfg.ShardReplicas > 1 {
				// Replicas absorb the outage's writes and the restore
				// replays them; without a chain nothing is diverted, so
				// there is nothing to migrate back.
				w.manifest = &migrationManifest{}
			}
			open[e.Node] = false
		}
	}
	return t, nil
}

// upAt reports whether the node is in rotation at the instant (windows are
// half-open: down at the kill, back at the restore).
func (t *topology) upAt(node int, at simtime.Time) bool {
	for i := range t.windows[node] {
		w := &t.windows[node][i]
		if at.Before(w.kill) {
			return true // sorted windows: at precedes every later outage
		}
		if at.Before(w.restore) {
			return false
		}
	}
	return true
}

// window returns the outage containing the instant, or nil when the node
// is up then.
func (t *topology) window(node int, at simtime.Time) *downWindow {
	for i := range t.windows[node] {
		w := &t.windows[node][i]
		if at.Before(w.kill) {
			return nil
		}
		if at.Before(w.restore) {
			return w
		}
	}
	return nil
}

// windowEndingAt returns the node's outage whose restore fires at the
// instant, or nil.
func (t *topology) windowEndingAt(node int, at simtime.Time) *downWindow {
	for i := range t.windows[node] {
		if w := &t.windows[node][i]; w.restore == at {
			return w
		}
	}
	return nil
}

// dropsQueued reports whether a request that arrived at arrival and is
// starting service at now on the node was severed by a drop-policy kill:
// some drop window's kill falls in (arrival, now]. Both inputs are
// node-local (the arrival and the node's own clock), so the verdict is
// identical on both engines.
func (t *topology) dropsQueued(node int, arrival, now simtime.Time) bool {
	for i := range t.windows[node] {
		w := &t.windows[node][i]
		if w.drop && arrival.Before(w.kill) && !now.Before(w.kill) {
			return true
		}
	}
	return false
}

// downtimeUpTo sums the node's time out of rotation, truncating every
// window at the run horizon (a never-restored node counts down until it).
func (t *topology) downtimeUpTo(node int, horizon simtime.Time) simtime.Duration {
	var total simtime.Duration
	for _, w := range t.windows[node] {
		kill, restore := w.kill, w.restore
		if restore.After(horizon) {
			restore = horizon
		}
		if restore.After(kill) {
			total += restore.Sub(kill)
		}
	}
	return total
}

// migrationManifest is the oplog a down primary missed: every write the
// outage diverted to a replica, in arrival order. It is appended during
// generation — single-goroutine in both engines — and replayed at the
// restore, so the parallel engine's node goroutines only ever read it.
type migrationManifest struct {
	entries []manifestEntry
	bytes   int64
}

// manifestEntry is one diverted write.
type manifestEntry struct {
	shard int32
	key   int64
	size  int64
}

func (m *migrationManifest) add(shard int32, key, size int64) {
	m.entries = append(m.entries, manifestEntry{shard: shard, key: key, size: size})
	m.bytes += size
}

// routeInstance picks the serving chain position for a request to the
// shard at the given arrival instant: the first chain node in rotation.
// ok=false means every replica is down and the request drops at routing.
func (c *Cluster) routeInstance(t *topology, shard int, at simtime.Time) (int, bool) {
	for i, node := range c.chains[shard] {
		if t.upAt(node, at) {
			return i, true
		}
	}
	return 0, false
}

// replayMigration re-fills a restored node's primary shards from the
// outage's manifest: entries group per shard (ascending shard id) and
// replay in arrival order within each — oplog semantics, so overwrites
// land exactly as the live path would have. The import is node-local
// virtual-time work on the restored node's own clock (the manifest only
// ever holds shards whose primary lives there): Redis re-inserts every
// record through its allocator under whatever pressure the node is under,
// RocksDB ingests one SST handoff per shard. Returns the migrated bytes.
func (c *Cluster) replayMigration(m *migrationManifest) int64 {
	if m == nil || len(m.entries) == 0 {
		return 0
	}
	perShard := make([][]services.ImportEntry, len(c.shards))
	for _, e := range m.entries {
		perShard[e.shard] = append(perShard[e.shard], services.ImportEntry{Key: e.key, Size: e.size})
	}
	for id, entries := range perShard {
		if len(entries) > 0 {
			c.shards[id].svc.ImportRecords(entries)
		}
	}
	return m.bytes
}
