package batch

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

func newNode(t *testing.T) (*kernel.Kernel, *simtime.Scheduler) {
	t.Helper()
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = 2 << 30
	cfg.SwapBytes = 2 << 30
	return kernel.New(s, cfg), s
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.TargetBytes = 512 << 20
	cfg.InputBytes = 64 << 20
	cfg.WorkDuration = 2 * simtime.Second
	cfg.TickPeriod = 50 * simtime.Millisecond
	cfg.RampTicks = 10
	return cfg
}

func TestRunnerStartsConfiguredJobs(t *testing.T) {
	k, _ := newNode(t)
	r := NewRunner(k, testConfig())
	defer r.Stop()
	if got := len(r.PIDs()); got != 3*8 {
		t.Fatalf("containers = %d, want 24", got)
	}
	if got := len(r.InputFilePIDs()); got != 3 {
		t.Fatalf("input files = %d, want 3", got)
	}
}

func TestContainersRampMemoryAndCache(t *testing.T) {
	k, s := newNode(t)
	r := NewRunner(k, testConfig())
	defer r.Stop()
	s.Advance(simtime.Second)
	usedPages := k.TotalPages() - k.FreePages()
	if usedPages*k.PageSize() < 256<<20 {
		t.Fatalf("batch used only %d MB after ramp", usedPages*k.PageSize()>>20)
	}
	if k.FileCachePages() == 0 {
		t.Fatal("input streaming must populate the file cache")
	}
	k.CheckInvariants()
}

func TestJobsCompleteAndChurn(t *testing.T) {
	k, s := newNode(t)
	r := NewRunner(k, testConfig())
	defer r.Stop()
	s.Advance(7 * simtime.Second)
	if r.Completed < 3 {
		t.Fatalf("completed %d jobs in 7s, want ≥ 3 (2s jobs × 3 slots)", r.Completed)
	}
	// Fresh jobs replaced the finished ones.
	if got := len(r.PIDs()); got != 24 {
		t.Fatalf("live containers = %d, want 24", got)
	}
	k.CheckInvariants()
}

func TestFinishedJobLeavesFileCache(t *testing.T) {
	k, s := newNode(t)
	r := NewRunner(k, testConfig())
	defer r.Stop()
	s.Advance(5 * simtime.Second)
	if r.Completed == 0 {
		t.Skip("no job finished yet")
	}
	// Retired input files remain with cache resident — §2.3's pathology.
	if len(r.retired) == 0 {
		t.Fatal("no retired inputs tracked")
	}
	var lingering int64
	for _, f := range r.retired {
		if !f.Deleted() {
			lingering += f.CachedPages()
		}
	}
	if lingering == 0 {
		t.Fatal("finished jobs' file cache must linger")
	}
	k.CheckInvariants()
}

func TestKillingPolicyTriggersUnderPressure(t *testing.T) {
	k, s := newNode(t)
	cfg := testConfig()
	cfg.TargetBytes = 4 << 30 // 2× node memory: guaranteed crunch
	r := NewRunner(k, cfg)
	defer r.Stop()
	r.Killing = true
	k.SetOOMHandler(r.HandleOOM)
	s.Advance(5 * simtime.Second)
	if r.Kills == 0 && r.OOMKills == 0 {
		t.Fatal("killing policy never fired under 200% pressure")
	}
	k.CheckInvariants()
}

func TestOOMHandlerKillsNewestContainer(t *testing.T) {
	k, s := newNode(t)
	r := NewRunner(k, testConfig())
	defer r.Stop()
	s.Advance(200 * simtime.Millisecond)
	before := len(r.PIDs())
	if !r.HandleOOM(k, s.Now(), 10) {
		t.Fatal("OOM handler must make progress with live containers")
	}
	if got := len(r.PIDs()); got != before-1 {
		t.Fatalf("live containers %d, want %d", got, before-1)
	}
	if r.OOMKills != 1 {
		t.Fatalf("OOM kills = %d, want 1", r.OOMKills)
	}
	k.CheckInvariants()
}

func TestStopTearsEverythingDown(t *testing.T) {
	k, s := newNode(t)
	r := NewRunner(k, testConfig())
	s.Advance(3 * simtime.Second)
	r.Stop()
	r.Stop() // idempotent
	if k.Processes() != 0 {
		t.Fatalf("%d processes alive after stop", k.Processes())
	}
	if len(k.Files()) != 0 {
		t.Fatalf("%d files left after stop", len(k.Files()))
	}
	k.CheckInvariants()
}

func TestInvalidConfigPanics(t *testing.T) {
	k, _ := newNode(t)
	cfg := testConfig()
	cfg.Jobs = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config must panic")
		}
	}()
	NewRunner(k, cfg)
}

// TestRetargetShrinkAndGrow drives the control plane's batch action
// through a full throttle cycle: shrink releases the trailing excess
// immediately (free pages come back, kernel invariants hold), grow re-
// enters the ramp back to the configured footprint, and the retarget
// counter records both moves.
func TestRetargetShrinkAndGrow(t *testing.T) {
	k, s := newNode(t)
	r := NewRunner(k, testConfig())
	defer r.Stop()
	s.Advance(simtime.Second) // ramp to the configured footprint
	full := k.FreePages()

	r.Retarget(s.Now(), 128<<20)
	if got := r.TargetBytes(); got != 128<<20 {
		t.Fatalf("target = %d after shrink, want %d", got, int64(128<<20))
	}
	k.CheckInvariants()
	// Stall-extended ticks mean the ramp may not be complete at the shrink
	// instant; the excess that *was* faulted must come back immediately.
	if freed := k.FreePages() - full; freed*k.PageSize() < 128<<20 {
		t.Fatalf("shrink released only %d MB immediately", freed*k.PageSize()>>20)
	}

	r.Retarget(s.Now(), 512<<20)
	s.Advance(simtime.Second) // re-ramp
	k.CheckInvariants()
	if regained := full - k.FreePages(); regained*k.PageSize() < -(64 << 20) {
		t.Fatalf("grow did not re-ramp (free %d pages above the full-ramp level)", regained)
	}
	used := (k.TotalPages() - k.FreePages()) * k.PageSize()
	if used < 256<<20 {
		t.Fatalf("batch used only %d MB after re-growing", used>>20)
	}
	if got := r.Retargets(); got != 2 {
		t.Fatalf("retargets = %d, want 2", got)
	}

	// A no-op retarget (same bytes) must not count.
	r.Retarget(s.Now(), 512<<20)
	if got := r.Retargets(); got != 2 {
		t.Fatalf("no-op retarget counted: %d", got)
	}

	// Retarget after Stop is inert.
	r.Stop()
	r.Retarget(s.Now(), 64<<20)
	if got := r.Retargets(); got != 2 {
		t.Fatalf("retarget after stop counted: %d", got)
	}
}
