// Package batch models the best-effort batch jobs of the paper's
// co-location experiments (§5.3): Spark KMeans/PageRank-style jobs from
// HiBench, each running in several YARN containers that ramp up anonymous
// memory, stream input files through the page cache, and churn —
// completed jobs exit (freeing anon memory but leaving their file cache
// resident, the §2.3 pathology) and new jobs take their place.
//
// The memory-pressure level of Figures 9–14 configures the jobs' combined
// logical footprint as a percentage of node capacity (150% oversubscribes
// by half); the "Killing" policy of Table 1 is implemented here as well.
package batch

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// Config describes one batch workload set.
type Config struct {
	// Jobs is the number of concurrently running jobs (the paper keeps 3).
	Jobs int
	// ContainersPerJob mirrors the paper's 8 YARN containers per job.
	ContainersPerJob int
	// TargetBytes is the combined anonymous footprint of all containers;
	// the pressure level maps to it (level × node capacity, §5.1).
	TargetBytes int64
	// InputBytes is the per-job input dataset streamed through the file
	// cache.
	InputBytes int64
	// WorkDuration is each container's required busy time; a job
	// completes when all its containers have accumulated it.
	WorkDuration simtime.Duration
	// RampTicks spreads each container's memory ramp over this many ticks.
	RampTicks int
	// TickPeriod is the simulation granularity of batch activity.
	TickPeriod simtime.Duration
}

// DefaultConfig returns the co-location workload shape, scaled to the
// node's capacity by the caller via TargetBytes.
func DefaultConfig() Config {
	return Config{
		Jobs:             3,
		ContainersPerJob: 8,
		InputBytes:       512 << 20,
		WorkDuration:     20 * simtime.Minute,
		RampTicks:        50,
		TickPeriod:       100 * simtime.Millisecond,
	}
}

// Validate reports whether the configuration is well-formed, naming the
// offending field so config loaders can surface the message verbatim.
func (c Config) Validate() error {
	if c.Jobs <= 0 {
		return fmt.Errorf("batch: Jobs must be > 0 (got %d)", c.Jobs)
	}
	if c.ContainersPerJob <= 0 {
		return fmt.Errorf("batch: ContainersPerJob must be > 0 (got %d)", c.ContainersPerJob)
	}
	if c.TargetBytes < 0 {
		return fmt.Errorf("batch: TargetBytes must be >= 0 (got %d)", c.TargetBytes)
	}
	if c.WorkDuration <= 0 {
		return fmt.Errorf("batch: WorkDuration must be > 0 (got %v)", c.WorkDuration)
	}
	if c.RampTicks <= 0 {
		return fmt.Errorf("batch: RampTicks must be > 0 (got %d)", c.RampTicks)
	}
	if c.TickPeriod <= 0 {
		return fmt.Errorf("batch: TickPeriod must be > 0 (got %v)", c.TickPeriod)
	}
	return nil
}

// container is one YARN-container-like process.
type container struct {
	proc    *kernel.Process
	region  *kernel.Region
	target  int64 // pages
	ramped  int64 // pages faulted so far
	uptime  simtime.Duration
	started simtime.Time
}

// job is one batch job instance.
type job struct {
	id         int
	containers []*container
	input      *kernel.File
}

// Runner drives a fixed-concurrency stream of batch jobs.
type Runner struct {
	k    *kernel.Kernel
	cfg  Config
	task *simtime.PeriodicTask

	jobs   []*job
	nextID int
	// retired holds input files of completed jobs: their pages linger in
	// the page cache until reclaimed (§2.3's pathology) — the files are
	// only deleted at Stop.
	retired []*kernel.File

	// Killing enables Table 1's proactive policy: when free memory dips
	// below the threshold, the most recently started container is killed
	// (least progress lost) and must redo its work.
	Killing       bool
	KillThreshold int64 // pages

	// Completed counts finished jobs — Table 1's throughput metric.
	Completed int64
	// Kills counts policy kills; OOMKills counts kernel OOM invocations
	// routed to this runner.
	Kills    int64
	OOMKills int64

	retargets int64
	stopped   bool
}

// NewRunner starts the batch workload. Stop halts it.
func NewRunner(k *kernel.Kernel, cfg Config) *Runner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := &Runner{k: k, cfg: cfg}
	// The Killing policy's administrator threshold: "node memory is
	// insufficient" once free memory falls below ~4% of capacity.
	r.KillThreshold = k.TotalPages() / 24
	for i := 0; i < cfg.Jobs; i++ {
		r.jobs = append(r.jobs, r.startJob())
	}
	r.task = simtime.NewPeriodicTask(k.Scheduler(), cfg.TickPeriod, r.tick)
	return r
}

// TargetBytes returns the runner's current combined anonymous footprint
// target.
func (r *Runner) TargetBytes() int64 { return r.cfg.TargetBytes }

// Retargets counts mid-run footprint changes applied through Retarget.
func (r *Runner) Retargets() int64 { return r.retargets }

// Retarget moves the runner's combined anonymous footprint to bytes
// mid-run — the adaptive control plane's batch-sizing action. Every
// container's per-container target moves to the new split: a shrinking
// container munmaps its trailing excess immediately (anonymous pages and
// swap slots free on the spot), a growing one extends its VMA and
// re-enters the ramp, and dead containers restart at the new size on
// their next tick. Node-local and deterministic.
func (r *Runner) Retarget(now simtime.Time, bytes int64) {
	if r.stopped || bytes < 0 || bytes == r.cfg.TargetBytes {
		return
	}
	r.cfg.TargetBytes = bytes
	r.retargets++
	pages := bytes / int64(r.cfg.Jobs) / int64(r.cfg.ContainersPerJob) / r.k.PageSize()
	for _, j := range r.jobs {
		for _, c := range j.containers {
			c.target = pages
			if c.proc.Dead() {
				continue // restarts at the new target next tick
			}
			switch {
			case c.region == nil:
				if pages > 0 {
					c.region, _ = r.k.Mmap(now, c.proc, pages)
				}
			case c.region.Pages() > pages:
				r.k.Munmap(now, c.region, c.region.Pages()-pages)
				if pages == 0 {
					c.region = nil // fully released: the VMA is gone
				}
				if c.ramped > pages {
					c.ramped = pages
				}
			case c.region.Pages() < pages:
				r.k.MremapGrow(now, c.region, pages-c.region.Pages())
			}
		}
	}
}

// PIDs returns the PIDs of all live batch containers — the set the
// administrator hands to the monitor daemon.
func (r *Runner) PIDs() []kernel.PID {
	var out []kernel.PID
	for _, j := range r.jobs {
		for _, c := range j.containers {
			if !c.proc.Dead() {
				out = append(out, c.proc.PID)
			}
		}
	}
	return out
}

// InputFilePIDs returns the PIDs that own batch input files (the job
// datasets); file ownership is per job input file.
func (r *Runner) InputFilePIDs() []kernel.PID {
	var out []kernel.PID
	for _, j := range r.jobs {
		if j.input != nil && !j.input.Deleted() {
			out = append(out, j.input.OwnerPID)
		}
	}
	return out
}

func (r *Runner) startJob() *job {
	r.nextID++
	j := &job{id: r.nextID}
	perContainer := r.cfg.TargetBytes / int64(r.cfg.Jobs) / int64(r.cfg.ContainersPerJob)
	now := r.k.Scheduler().Now()
	for i := 0; i < r.cfg.ContainersPerJob; i++ {
		j.containers = append(j.containers, r.startContainer(perContainer, now))
	}
	// The job's input dataset: owned by the first container so the
	// monitor daemon can attribute (and release) its cache.
	owner := j.containers[0].proc.PID
	name := fmt.Sprintf("batch-input-%06d", j.id)
	j.input = r.k.CreateFile(name, r.cfg.InputBytes/r.k.PageSize(), owner)
	return j
}

func (r *Runner) startContainer(bytes int64, now simtime.Time) *container {
	proc := r.k.CreateProcess(fmt.Sprintf("container-%d", r.nextID))
	pages := bytes / r.k.PageSize()
	var region *kernel.Region
	if pages > 0 {
		region, _ = r.k.Mmap(now, proc, pages)
	}
	return &container{proc: proc, region: region, target: pages, started: now}
}

// tick advances every container: ramp memory, stream input, accumulate
// work; complete jobs and start replacements; apply the Killing policy.
func (r *Runner) tick(now simtime.Time) simtime.Duration {
	if r.stopped {
		return 0
	}
	var busy simtime.Duration

	if r.Killing {
		if free := r.k.FreePages(); free < r.KillThreshold {
			r.killNewest(now)
		}
	}

	for ji, j := range r.jobs {
		done := true
		for ci, c := range j.containers {
			if c.proc.Dead() {
				// Restart a killed container from scratch.
				perContainer := c.target * r.k.PageSize()
				j.containers[ci] = r.startContainer(perContainer, now)
				done = false
				continue
			}
			var stall simtime.Duration
			// Memory ramp.
			if c.ramped < c.target {
				step := c.target / int64(r.cfg.RampTicks)
				if step <= 0 {
					step = c.target - c.ramped
				}
				if step > c.target-c.ramped {
					step = c.target - c.ramped
				}
				if step > 0 && c.region != nil {
					stall += r.k.FaultIn(now.Add(busy+stall), c.region, step)
					c.ramped += step
				}
			}
			// Input streaming: a slice of the dataset per tick (re-reads
			// promote to active_file; dropped cache is re-fetched from
			// disk — how proactive reclamation taxes batch jobs).
			if j.input != nil && !j.input.Deleted() {
				slice := j.input.SizePages() / int64(r.cfg.RampTicks*4)
				if slice > 0 {
					stall += r.k.ReadFile(now.Add(busy+stall), j.input, slice)
				}
			}
			// Iterating over its resident data is the job's compute;
			// swapped-out pages stall it further.
			if c.region != nil && c.ramped > 0 {
				stall += r.k.Access(now.Add(busy+stall), c.region, c.ramped/8)
			}
			busy += stall
			// Progress is wall time minus stalls: memory pressure and
			// re-fetched input cost real job throughput (Table 1). Compute
			// overlaps I/O to a degree, so progress never collapses below
			// a quarter speed.
			progress := r.cfg.TickPeriod - stall
			if min := r.cfg.TickPeriod / 4; progress < min {
				progress = min
			}
			c.uptime += progress
			if c.uptime < r.cfg.WorkDuration {
				done = false
			}
		}
		if done {
			r.finishJob(ji)
		}
	}
	return busy
}

// finishJob completes a job: containers exit — anonymous memory is freed
// immediately but the input file's cache pages stay resident (§2.3: "the
// file cache pages loaded by the process are not reclaimed by Linux OS but
// remain in memory") — and a fresh job starts.
func (r *Runner) finishJob(idx int) {
	j := r.jobs[idx]
	for _, c := range j.containers {
		if !c.proc.Dead() {
			r.k.ExitProcess(c.proc)
		}
	}
	r.Completed++
	if j.input != nil && !j.input.Deleted() {
		r.retired = append(r.retired, j.input)
	}
	r.jobs[idx] = r.startJob()
}

// killNewest implements the Killing policy: terminate the most recently
// started live container.
func (r *Runner) killNewest(now simtime.Time) {
	var victim *container
	for _, j := range r.jobs {
		for _, c := range j.containers {
			if c.proc.Dead() {
				continue
			}
			if victim == nil || c.started > victim.started {
				victim = c
			}
		}
	}
	if victim != nil {
		r.k.ExitProcess(victim.proc)
		r.Kills++
	}
}

// HandleOOM is an OOMHandler killing the newest container; colocation
// experiments install it so kernel OOM maps to batch-job progress loss.
func (r *Runner) HandleOOM(k *kernel.Kernel, at simtime.Time, need int64) bool {
	before := r.Kills
	r.killNewest(at)
	if r.Kills == before {
		return false
	}
	r.Kills = before // killNewest counted it; reattribute as OOM
	r.OOMKills++
	return true
}

// Stop halts the runner and tears down all containers and datasets.
func (r *Runner) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.task.Stop()
	for _, j := range r.jobs {
		for _, c := range j.containers {
			if !c.proc.Dead() {
				r.k.ExitProcess(c.proc)
			}
		}
		if j.input != nil && !j.input.Deleted() {
			r.k.DeleteFile(j.input)
		}
	}
	for _, f := range r.retired {
		if !f.Deleted() {
			r.k.DeleteFile(f)
		}
	}
}
