package services

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/alloc/glibcmalloc"
	"github.com/hermes-sim/hermes/internal/core"
	"github.com/hermes-sim/hermes/internal/flatmap"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

func newNode(t *testing.T) (*kernel.Kernel, *simtime.Scheduler) {
	t.Helper()
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = 2 << 30
	cfg.SwapBytes = 1 << 30
	return kernel.New(s, cfg), s
}

func TestRedisInsertReadDelete(t *testing.T) {
	k, s := newNode(t)
	a := glibcmalloc.New(k, "redis", glibcmalloc.DefaultConfig())
	r := NewRedis(k, a, RedisCosts())
	defer r.Close()

	if c := r.Insert(1, 1024); c <= 0 {
		t.Fatal("insert must cost time")
	}
	s.Advance(simtime.Microsecond)
	if r.StoredBytes() != 1024 {
		t.Fatalf("stored = %d", r.StoredBytes())
	}
	if c := r.Read(1); c <= 0 {
		t.Fatal("read must cost time")
	}
	if c := r.Read(999); c <= 0 {
		t.Fatal("missing-key read still probes the index")
	}
	r.Delete(1)
	if r.StoredBytes() != 0 {
		t.Fatalf("stored after delete = %d", r.StoredBytes())
	}
	st := a.Stats()
	if st.Mallocs != 1 || st.Frees != 1 {
		t.Fatalf("allocator stats %+v", st)
	}
	k.CheckInvariants()
}

func TestRedisOverwriteFreesOldValue(t *testing.T) {
	k, _ := newNode(t)
	a := glibcmalloc.New(k, "redis", glibcmalloc.DefaultConfig())
	r := NewRedis(k, a, RedisCosts())
	defer r.Close()
	r.Insert(1, 1024)
	r.Insert(1, 2048)
	if r.StoredBytes() != 2048 {
		t.Fatalf("stored = %d, want 2048 after overwrite", r.StoredBytes())
	}
	if a.Stats().Frees != 1 {
		t.Fatal("overwrite must free the old value")
	}
}

func TestRedisQuerySplitsInsertAndRead(t *testing.T) {
	k, _ := newNode(t)
	a := glibcmalloc.New(k, "redis", glibcmalloc.DefaultConfig())
	r := NewRedis(k, a, RedisCosts())
	defer r.Close()
	total, ins, rd := r.Query(1, 1024)
	if ins <= 0 || rd <= 0 {
		t.Fatal("query must report both phases")
	}
	if total < ins+rd {
		t.Fatalf("total %v below ins+read %v (overhead missing)", total, ins+rd)
	}
}

func TestRedisWorksOnHermes(t *testing.T) {
	k, s := newNode(t)
	h := core.New(k, "redis", core.DefaultConfig())
	defer h.Close()
	r := NewRedis(k, h, RedisCosts())
	defer r.Close()
	s.Advance(10 * simtime.Millisecond)
	for i := int64(0); i < 200; i++ {
		r.Query(i, 1024)
	}
	if r.StoredBytes() != 200*1024 {
		t.Fatalf("stored = %d", r.StoredBytes())
	}
	k.CheckInvariants()
}

func newRocks(t *testing.T) (*Rocksdb, *kernel.Kernel, *simtime.Scheduler) {
	t.Helper()
	k, s := newNode(t)
	a := glibcmalloc.New(k, "rocks", glibcmalloc.DefaultConfig())
	cfg := DefaultRocksdbConfig()
	cfg.MemtableBytes = 1 << 20
	cfg.BlockCacheBytes = 2 << 20
	r := NewRocksdb(k, a, RocksdbCosts(), cfg, "test")
	t.Cleanup(r.Close)
	return r, k, s
}

func TestRocksdbInsertWritesWALAndMemtable(t *testing.T) {
	r, k, _ := newRocks(t)
	if c := r.Insert(1, 4096); c <= 0 {
		t.Fatal("insert must cost time")
	}
	if r.wal.CachedPages() == 0 || r.wal.DirtyPages() == 0 {
		t.Fatal("insert must dirty the WAL")
	}
	if r.memtable.Len() != 1 {
		t.Fatal("record missing from memtable")
	}
	k.CheckInvariants()
}

func TestRocksdbFlushOnFullMemtable(t *testing.T) {
	r, k, _ := newRocks(t)
	// 1 MB memtable, 64 KB records → flush every ~16 inserts.
	for i := int64(0); i < 40; i++ {
		r.Insert(i, 64<<10)
	}
	if r.Flushes() == 0 {
		t.Fatal("memtable never flushed")
	}
	if r.sstSeq == 0 {
		t.Fatal("no SST created")
	}
	// Flushed records remain readable (from SST via block cache).
	if c := r.Read(0); c <= 0 {
		t.Fatal("flushed record unreadable")
	}
	if r.cache.Len() == 0 {
		t.Fatal("SST read must populate the block cache")
	}
	k.CheckInvariants()
}

func TestRocksdbBlockCacheBounded(t *testing.T) {
	r, k, _ := newRocks(t)
	for i := int64(0); i < 64; i++ {
		r.Insert(i, 64<<10)
	}
	// Read everything twice: cache churns but stays bounded.
	for round := 0; round < 2; round++ {
		for i := int64(0); i < 64; i++ {
			r.Read(i)
		}
	}
	if r.cacheBytes > r.cfg.BlockCacheBytes+64<<10 {
		t.Fatalf("block cache %d exceeds bound %d", r.cacheBytes, r.cfg.BlockCacheBytes)
	}
	k.CheckInvariants()
}

func TestRocksdbSSTReadsShareTheDisk(t *testing.T) {
	r, k, s := newRocks(t)
	for i := int64(0); i < 20; i++ {
		r.Insert(i, 64<<10)
	}
	// Drop the SST cache so the next read hits the disk.
	for _, f := range k.Files() {
		if f != r.wal {
			k.FadviseDontNeed(s.Now(), f)
		}
	}
	reads0 := k.Disk().Reads
	r.cache = flatmap.New[*alloc.Block](0) // empty the block cache
	r.cacheBytes = 0
	r.cacheOrder = flatmap.Ring{}
	if c := r.Read(0); c < simtime.Millisecond {
		t.Fatalf("cold SST read cost %v, want disk-scale", c)
	}
	if k.Disk().Reads == reads0 {
		t.Fatal("cold read must hit the disk")
	}
}

func TestRocksdbDelete(t *testing.T) {
	r, k, _ := newRocks(t)
	r.Insert(1, 4096)
	r.Delete(1)
	if r.StoredBytes() != 0 {
		t.Fatalf("stored = %d after delete", r.StoredBytes())
	}
	if c := r.Read(1); c <= 0 {
		t.Fatal("read of deleted key still probes")
	}
	k.CheckInvariants()
}

func TestRocksdbCloseDropsFiles(t *testing.T) {
	k, _ := newNode(t)
	a := glibcmalloc.New(k, "rocks", glibcmalloc.DefaultConfig())
	cfg := DefaultRocksdbConfig()
	cfg.MemtableBytes = 1 << 20
	r := NewRocksdb(k, a, RocksdbCosts(), cfg, "closer")
	for i := int64(0); i < 40; i++ {
		r.Insert(i, 64<<10)
	}
	r.Close()
	if len(k.Files()) != 0 {
		t.Fatalf("%d files left after close", len(k.Files()))
	}
	k.CheckInvariants()
}
