package services

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/flatmap"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// RocksdbConfig sizes the LSM machinery.
type RocksdbConfig struct {
	// MemtableBytes is the write-buffer size; filling it triggers a flush
	// to a new SST file (a write stall charged to the triggering insert,
	// as RocksDB stalls writers when the buffer is full).
	MemtableBytes int64
	// BlockCacheBytes bounds the allocator-backed read cache.
	BlockCacheBytes int64
}

// DefaultRocksdbConfig mirrors a modest RocksDB instance.
func DefaultRocksdbConfig() RocksdbConfig {
	return RocksdbConfig{
		MemtableBytes:   64 << 20,
		BlockCacheBytes: 128 << 20,
	}
}

// Rocksdb models the disk-based LSM store of §5.3: inserts append to a WAL
// in the page cache and copy into an allocator-backed memtable; full
// memtables flush to SST files (which then live in the file cache); reads
// hit the memtable, then the allocator-backed block cache, then the SST
// files on disk. Its resident set is bounded by memtable+cache, so it
// leaves more memory for batch jobs than Redis (Table 1 discussion), while
// its reads share the disk with swap traffic — the source of the
// tens-of-milliseconds tail under pressure (Fig 10b).
type Rocksdb struct {
	k     *kernel.Kernel
	a     alloc.Allocator
	costs CostConfig
	cfg   RocksdbConfig

	memtable *flatmap.Map[*alloc.Block]
	memBytes int64
	wal      *kernel.File
	walSeq   int

	sstSeq int
	// records maps a key to its latest record state: the SST file holding
	// the flushed value (nil while the record only exists in the memtable)
	// and the record size — the former sstOf/valSize pair collapsed into
	// one flat-table probe.
	records *flatmap.Map[sstRecord]

	cache      *flatmap.Map[*alloc.Block]
	cacheBytes int64
	cacheOrder flatmap.Ring // FIFO eviction order (approximates LRU)

	// keyScratch is the reusable buffer for sorted-key iteration at flush
	// and close — the deterministic bulk paths.
	keyScratch []int64

	stored        int64
	flushes       int64
	lastPreMapped bool

	name string
}

// sstRecord is the per-key index entry of the SST tier.
type sstRecord struct {
	sst  *kernel.File
	size int64
}

var _ Service = (*Rocksdb)(nil)

// NewRocksdb creates the store on the given allocator. Files are namespaced
// by name so several instances can share a kernel.
func NewRocksdb(k *kernel.Kernel, a alloc.Allocator, costs CostConfig, cfg RocksdbConfig, name string) *Rocksdb {
	if cfg.MemtableBytes <= 0 || cfg.BlockCacheBytes <= 0 {
		panic("services: invalid rocksdb config")
	}
	r := &Rocksdb{
		k:        k,
		a:        a,
		costs:    costs,
		cfg:      cfg,
		memtable: flatmap.New[*alloc.Block](0),
		records:  flatmap.New[sstRecord](0),
		cache:    flatmap.New[*alloc.Block](0),
		name:     name,
	}
	r.wal = k.CreateFile(r.fileName("wal", r.walSeq), 0, r.ownerPID())
	return r
}

func (r *Rocksdb) ownerPID() kernel.PID {
	// The files belong to the service process backing the allocator; the
	// monitor daemon never touches them because the service is not
	// registered as a batch job.
	type procOwner interface{ Process() *kernel.Process }
	if p, ok := r.a.(procOwner); ok {
		return p.Process().PID
	}
	return 0
}

func (r *Rocksdb) fileName(kind string, seq int) string {
	return fmt.Sprintf("%s-%s-%06d", r.name, kind, seq)
}

// Name implements Service.
func (r *Rocksdb) Name() string { return "Rocksdb" }

// Allocator implements Service.
func (r *Rocksdb) Allocator() alloc.Allocator { return r.a }

// StoredBytes implements Service.
func (r *Rocksdb) StoredBytes() int64 { return r.stored }

// LastPreMapped implements Service.
func (r *Rocksdb) LastPreMapped() bool { return r.lastPreMapped }

// Flushes reports completed memtable flushes (diagnostics).
func (r *Rocksdb) Flushes() int64 { return r.flushes }

// Insert implements Service: WAL append through the page cache, then an
// allocator-backed memtable entry. A full memtable flushes synchronously
// (RocksDB's write stall), writing an SST and freeing the memtable.
func (r *Rocksdb) Insert(key, valueBytes int64) simtime.Duration {
	cost, _ := r.insert(key, valueBytes)
	return cost
}

// insert is Insert returning the memtable block too (nil when a triggered
// flush released it), so Query can read the fresh record without re-probing
// the memtable. The memtable update is a single Swap probe; the records
// upsert is one Swap plus a fix-up store only for keys that also have a
// flushed SST version to keep pointing at.
func (r *Rocksdb) insert(key, valueBytes int64) (simtime.Duration, *alloc.Block) {
	if valueBytes <= 0 {
		panic(fmt.Sprintf("services: insert of %d bytes", valueBytes))
	}
	now := r.k.Scheduler().Now()
	cost := r.costs.IndexCost
	cost += r.k.WriteFile(now.Add(cost), r.wal, alloc.PagesFor(r.k, valueBytes), true)

	b, c := r.a.Malloc(now.Add(cost), valueBytes)
	cost += c
	cost += r.a.Touch(now.Add(cost), b)
	cost += copyCost(r.costs, valueBytes)
	r.lastPreMapped = b.PreMapped
	if old, ok := r.memtable.Swap(key, b); ok {
		size := old.Size // Free recycles the Block; read nothing after it
		cost += r.a.Free(now.Add(cost), old)
		r.memBytes -= size
	}
	r.memBytes += valueBytes
	// stored is the live dataset: the latest size of every live key. An
	// overwrite replaces the key's previous size (whether that version sat
	// in the memtable or an SST) with the new one — and keeps the SST
	// pointer, which stays the fallback copy until the next flush.
	old, known := r.records.Swap(key, sstRecord{size: valueBytes})
	if known {
		r.stored -= old.size
		if old.sst != nil {
			r.records.Put(key, sstRecord{sst: old.sst, size: valueBytes})
		}
	}
	r.stored += valueBytes

	if r.memBytes >= r.cfg.MemtableBytes {
		cost += r.flush(now.Add(cost))
		b = nil // flush freed the memtable blocks
	}
	return cost, b
}

// flush writes the memtable out as one SST file, truncates the WAL and
// releases the memtable blocks. Blocks are released in ascending key order:
// the free sequence mutates allocator and kernel state, so it must not
// depend on table internals for seed replay to be bit-identical.
func (r *Rocksdb) flush(at simtime.Time) simtime.Duration {
	r.flushes++
	r.sstSeq++
	sst := r.k.CreateFile(r.fileName("sst", r.sstSeq), 0, r.ownerPID())
	pages := alloc.PagesFor(r.k, r.memBytes)
	cost := r.k.WriteFile(at, sst, pages, true)
	cost += r.k.Fsync(at.Add(cost), sst)
	r.keyScratch = r.memtable.SortedKeys(r.keyScratch[:0])
	for _, key := range r.keyScratch {
		b, _ := r.memtable.Get(key)
		cost += r.a.Free(at.Add(cost), b)
		rec, _ := r.records.Get(key)
		rec.sst = sst
		r.records.Put(key, rec)
	}
	r.memtable.Clear()
	r.memBytes = 0
	// WAL truncation: drop and recreate.
	r.k.DeleteFile(r.wal)
	r.walSeq++
	r.wal = r.k.CreateFile(r.fileName("wal", r.walSeq), 0, r.ownerPID())
	return cost
}

// Read implements Service: memtable, then block cache, then the SST via the
// page cache/disk, inserting the result into the block cache.
func (r *Rocksdb) Read(key int64) simtime.Duration {
	now := r.k.Scheduler().Now()
	cost := r.costs.IndexCost
	if b, ok := r.memtable.Get(key); ok {
		return r.readBlock(b)
	}
	if b, ok := r.cache.Get(key); ok {
		cost += readCost(r.costs, b.Size)
		cost += r.k.Access(now.Add(cost), b.Region, alloc.PagesFor(r.k, b.Size))
		return cost
	}
	rec, ok := r.records.Get(key)
	if !ok || rec.sst == nil {
		return cost
	}
	size := rec.size
	cost += r.costs.IndexCost // SST index block probe
	cost += r.k.ReadFile(now.Add(cost), rec.sst, alloc.PagesFor(r.k, size))
	// Populate the block cache through the allocator.
	b, c := r.a.Malloc(now.Add(cost), size)
	cost += c
	cost += r.a.Touch(now.Add(cost), b)
	r.cache.Put(key, b)
	r.cacheBytes += size
	r.cacheOrder.Push(key)
	cost += readCost(r.costs, size)
	for r.cacheBytes > r.cfg.BlockCacheBytes && r.cacheOrder.Len() > 0 {
		victim, _ := r.cacheOrder.Pop()
		if vb, ok := r.cache.Delete(victim); ok {
			size := vb.Size // Free recycles the Block; read nothing after it
			cost += r.a.Free(now.Add(cost), vb)
			r.cacheBytes -= size
		}
	}
	return cost
}

// readBlock prices a read hit on an already-resolved memtable block: the
// index probe is still charged (the probe happened, or Query knows the
// slot), then payload streaming and possible swap-in.
func (r *Rocksdb) readBlock(b *alloc.Block) simtime.Duration {
	now := r.k.Scheduler().Now()
	cost := r.costs.IndexCost
	cost += readCost(r.costs, b.Size)
	cost += r.k.Access(now.Add(cost), b.Region, alloc.PagesFor(r.k, b.Size))
	return cost
}

// PrefetchKey implements Service: warms the home cache lines of every tier
// a request for key may probe (memtable, block cache, record index).
func (r *Rocksdb) PrefetchKey(key int64) {
	r.memtable.Prefetch(key)
	r.cache.Prefetch(key)
	r.records.Prefetch(key)
}

// ImportRecords implements Service: a migration batch lands as one
// external-SST handoff, RocksDB's bulk-ingest side door. The whole batch is
// written and fsynced as a single SST (sized to the unpacked oplog, dups
// included), then each record's index entry flips to it; a resident stale
// version — memtable or block-cache — is freed, since the ingested SST
// supersedes it. One batched disk write instead of per-record allocator
// traffic is exactly why the LSM store restores faster than Redis.
func (r *Rocksdb) ImportRecords(entries []ImportEntry) simtime.Duration {
	if len(entries) == 0 {
		return 0
	}
	s := r.k.Scheduler()
	now := s.Now()
	var batchBytes int64
	for _, e := range entries {
		batchBytes += e.Size
	}
	r.sstSeq++
	sst := r.k.CreateFile(r.fileName("sst", r.sstSeq), 0, r.ownerPID())
	cost := r.k.WriteFile(now, sst, alloc.PagesFor(r.k, batchBytes), true)
	cost += r.k.Fsync(now.Add(cost), sst)
	for _, e := range entries {
		cost += r.costs.IndexCost
		if b, ok := r.memtable.Delete(e.Key); ok {
			size := b.Size // Free recycles the Block; read nothing after it
			cost += r.a.Free(now.Add(cost), b)
			r.memBytes -= size
		}
		if b, ok := r.cache.Delete(e.Key); ok {
			size := b.Size
			cost += r.a.Free(now.Add(cost), b)
			r.cacheBytes -= size
		}
		rec, known := r.records.Get(e.Key)
		if known {
			r.stored -= rec.size
		}
		r.stored += e.Size
		rec.size = e.Size
		rec.sst = sst
		r.records.Put(e.Key, rec)
	}
	s.Advance(cost)
	return cost
}

// ExportRecords implements Service: the live record set across all tiers
// (records indexes memtable and SST versions alike).
func (r *Rocksdb) ExportRecords(buf []ImportEntry) []ImportEntry {
	for _, key := range r.records.SortedKeys(nil) {
		rec, _ := r.records.Get(key)
		buf = append(buf, ImportEntry{Key: key, Size: rec.size})
	}
	return buf
}

// Delete implements Service: removes the record from every tier (SST data
// becomes dead and is ignored; compaction is out of scope).
func (r *Rocksdb) Delete(key int64) simtime.Duration {
	now := r.k.Scheduler().Now()
	cost := r.costs.IndexCost
	if b, ok := r.memtable.Delete(key); ok {
		size := b.Size // Free recycles the Block; read nothing after it
		cost += r.a.Free(now.Add(cost), b)
		r.memBytes -= size
	}
	if b, ok := r.cache.Delete(key); ok {
		size := b.Size
		cost += r.a.Free(now.Add(cost), b)
		r.cacheBytes -= size
	}
	if rec, ok := r.records.Delete(key); ok {
		r.stored -= rec.size
	}
	return cost
}

// Query implements Service: insert then read plus fixed overhead, jittered
// as one client-observed latency.
func (r *Rocksdb) Query(key, valueBytes int64) (total, ins, rd simtime.Duration) {
	s := r.k.Scheduler()
	// The read half targets the record the insert half just stored: while it
	// still sits in the memtable (no flush intervened), serve it from the
	// known block — same memtable-hit arithmetic, one probe less. A flush
	// falls back to the full tier walk, exactly as a fresh Read would.
	var b *alloc.Block
	ins, b = r.insert(key, valueBytes)
	s.Advance(ins)
	if b != nil {
		rd = r.readBlock(b)
	} else {
		rd = r.Read(key)
	}
	s.Advance(rd)
	overhead := queryOverhead(r.costs, valueBytes)
	total = workload.JitterRequest(r.k, ins+rd+overhead, r.lastPreMapped)
	s.Advance(overhead)
	return total, ins, rd
}

// Close implements Service: SST and WAL files are deleted (their cache
// returns to the kernel); allocator-backed blocks are dropped with the
// instance. Files are visited in ascending key order — DeleteFile mutates
// the kernel's LRU lists, so the visit order must not depend on table
// internals (the former map iteration was the one nondeterministic step on
// this path). DeleteFile marks the file deleted, which also dedupes SSTs
// shared by many keys.
func (r *Rocksdb) Close() {
	if r.wal != nil && !r.wal.Deleted() {
		r.k.DeleteFile(r.wal)
	}
	r.keyScratch = r.records.SortedKeys(r.keyScratch[:0])
	for _, key := range r.keyScratch {
		rec, _ := r.records.Get(key)
		if rec.sst != nil && !rec.sst.Deleted() {
			r.k.DeleteFile(rec.sst)
		}
	}
	// Drop the tiers (nil flatmaps keep the Go-map contract: reads after
	// Close are harmless misses, writes panic).
	r.memtable = nil
	r.cache = nil
	r.records = nil
}
