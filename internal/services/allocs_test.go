package services

import (
	"fmt"
	"testing"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/alloc/glibcmalloc"
	"github.com/hermes-sim/hermes/internal/core"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// TestRequestPathSteadyStateAllocs locks the zero-allocation property of
// the single-node request hot path: once the key space is warm, a full
// Query (malloc + touch + index insert + overwrite free + read) must cost
// at most 1 Go allocation per operation — in practice ~0, with the budget
// of 1 absorbing rare amortized growth (bin capacity, scheduler pool).
func TestRequestPathSteadyStateAllocs(t *testing.T) {
	const keys = 4096
	cases := []struct {
		name string
		make func(k *kernel.Kernel) alloc.Allocator
	}{
		{"glibc", func(k *kernel.Kernel) alloc.Allocator {
			return glibcmalloc.New(k, "redis", glibcmalloc.DefaultConfig())
		}},
		{"hermes", func(k *kernel.Kernel) alloc.Allocator {
			return core.New(k, "redis", core.DefaultConfig())
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := simtime.NewScheduler()
			k := kernel.New(s, kernel.DefaultConfig())
			a := tc.make(k)
			defer a.Close()
			r := NewRedis(k, a, RedisCosts())
			defer r.Close()

			// Warm up: populate every key (table at final size, block pool
			// primed, heap grown) and let background machinery start.
			for i := int64(0); i < keys; i++ {
				r.Query(i, 1024)
			}
			s.Advance(10 * simtime.Millisecond)

			var key int64
			allocs := testing.AllocsPerRun(20000, func() {
				key = (key + 1) % keys
				r.Query(key, 1024)
			})
			if allocs > 1 {
				t.Fatalf("steady-state Query costs %.2f allocs/op, want <= 1", allocs)
			}
			t.Log(fmt.Sprintf("steady-state Query: %.3f allocs/op", allocs))
		})
	}
}
