// Package services models the two real-world latency-critical services of
// the paper's evaluation (§5.3): an in-memory key-value store in the image
// of Redis 5.0.5 and an LSM-tree disk store in the image of RocksDB 6.4.0.
// Both allocate all dynamic memory through a pluggable alloc.Allocator, so
// swapping Glibc/jemalloc/TCMalloc/Hermes underneath them reproduces the
// paper's comparisons. A query is one insertion followed by one read of the
// same record, exactly the paper's request shape.
package services

import (
	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// CostConfig prices the service-side work around the allocator. Services
// copy record payloads with memcpy-class streaming (unlike the
// micro-benchmark's byte-loop, which is priced by CostModel.TouchPerKB);
// reads stream even faster. Calibrated against Figure 2's insert/read
// breakdown (insert is 74.7% of the average small query and 93.5% of the
// average large query) and the SLO magnitudes of Figures 9 and 10.
type CostConfig struct {
	// IndexCost prices one index operation (hash table or memtable probe).
	IndexCost simtime.Duration
	// CopyPerKB prices copying the record payload on insertion.
	CopyPerKB simtime.Duration
	// ReadBase and ReadPerKB price serving a read hit.
	ReadBase  simtime.Duration
	ReadPerKB simtime.Duration
	// QueryBase is the fixed per-query service overhead: for the
	// networked store (Redis) it covers protocol parsing, the event loop
	// and the response path; for the embedded store it is small.
	QueryBase simtime.Duration
	// QueryPerKB is the per-KB protocol/transfer overhead of a query.
	QueryPerKB simtime.Duration
}

// RedisCosts returns the networked in-memory store's cost table.
func RedisCosts() CostConfig {
	return CostConfig{
		IndexCost:  500 * simtime.Nanosecond,
		CopyPerKB:  300 * simtime.Nanosecond,
		ReadBase:   2 * simtime.Microsecond,
		ReadPerKB:  100 * simtime.Nanosecond,
		QueryBase:  220 * simtime.Microsecond,
		QueryPerKB: 9 * simtime.Microsecond,
	}
}

// RocksdbCosts returns the embedded store's cost table.
func RocksdbCosts() CostConfig {
	return CostConfig{
		IndexCost:  600 * simtime.Nanosecond,
		CopyPerKB:  300 * simtime.Nanosecond,
		ReadBase:   2 * simtime.Microsecond,
		ReadPerKB:  100 * simtime.Nanosecond,
		QueryBase:  4 * simtime.Microsecond,
		QueryPerKB: 150 * simtime.Nanosecond,
	}
}

// ImportEntry is one record of a shard-migration batch: the key and the
// payload size of its latest version. A batch is an oplog slice — entries
// replay in their original write order, so a later overwrite of the same
// key supersedes the earlier one exactly as the live path would.
type ImportEntry struct {
	Key  int64
	Size int64
}

// Service is the common surface the experiments drive.
type Service interface {
	// Name identifies the service in experiment output.
	Name() string
	// Insert stores a record, returning the observed latency.
	Insert(key int64, valueBytes int64) simtime.Duration
	// Read fetches a record, returning the observed latency.
	Read(key int64) simtime.Duration
	// Delete removes a record, returning the observed latency.
	Delete(key int64) simtime.Duration
	// Query is the paper's composite request: insert followed by read of
	// the same key. It returns (total latency, insert latency, read
	// latency) — the split regenerates Figure 2.
	Query(key int64, valueBytes int64) (total, insert, read simtime.Duration)
	// StoredBytes reports the live dataset size.
	StoredBytes() int64
	// LastPreMapped reports whether the most recent insertion was served
	// entirely from pre-mapped memory (Hermes reservations): such requests
	// never enter the kernel, so drivers exempt them from the ambient
	// reclaim slowdown (workload.JitterRequest).
	LastPreMapped() bool
	// Allocator exposes the backing allocator.
	Allocator() alloc.Allocator
	// ImportRecords bulk-loads an oplog batch — the shard-migration ingest
	// path a restored node replays. The work is real virtual-time work on
	// the service's node (Redis re-inserts every record through its
	// allocator; RocksDB takes one SST handoff per batch): the method
	// advances the service's scheduler itself and returns the total cost.
	ImportRecords(entries []ImportEntry) simtime.Duration
	// ExportRecords appends the live record set — every key with its
	// current size — to buf in ascending key order and returns the
	// extended slice. This is the migration export hook and the oracle
	// surface for conservation tests; it reads no clocks and costs no
	// virtual time.
	ExportRecords(buf []ImportEntry) []ImportEntry
	// PrefetchKey warms the index cache lines a near-future request for key
	// will probe. It is read-only and costs no virtual time, so drivers may
	// interleave it freely with requests — the cluster engine calls it over
	// a small admission batch before serving the batch, amortizing probe
	// misses across the window without changing any simulated result.
	PrefetchKey(key int64)
	// Close releases service resources (not the allocator).
	Close()
}

// copyCost prices the payload copy for an insert.
func copyCost(c CostConfig, bytes int64) simtime.Duration {
	return simtime.Duration(bytes * int64(c.CopyPerKB) / 1024)
}

// readCost prices a read hit of the given size.
func readCost(c CostConfig, bytes int64) simtime.Duration {
	return c.ReadBase + simtime.Duration(bytes*int64(c.ReadPerKB)/1024)
}

// queryOverhead prices the fixed protocol/transfer share of one query.
func queryOverhead(c CostConfig, bytes int64) simtime.Duration {
	return c.QueryBase + simtime.Duration(bytes*int64(c.QueryPerKB)/1024)
}
