package services

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/flatmap"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// Redis models the in-memory key-value store of §5.3: every value lives in
// allocator-backed memory for the record's whole lifetime, so the store's
// resident set equals the dataset and old values are prime swap victims
// under node pressure — the paper's reason Redis leaves less room for batch
// jobs than RocksDB (Table 1 discussion). The key index is an open-addressed
// flat table (flatmap), so steady-state requests probe inline arrays instead
// of churning a Go map.
type Redis struct {
	k     *kernel.Kernel
	a     alloc.Allocator
	costs CostConfig

	table  *flatmap.Map[*alloc.Block]
	stored int64

	lastPreMapped bool
}

var _ Service = (*Redis)(nil)

// NewRedis creates the store on the given allocator.
func NewRedis(k *kernel.Kernel, a alloc.Allocator, costs CostConfig) *Redis {
	return &Redis{k: k, a: a, costs: costs, table: flatmap.New[*alloc.Block](0)}
}

// Name implements Service.
func (r *Redis) Name() string { return "Redis" }

// Allocator implements Service.
func (r *Redis) Allocator() alloc.Allocator { return r.a }

// StoredBytes implements Service.
func (r *Redis) StoredBytes() int64 { return r.stored }

// LastPreMapped implements Service.
func (r *Redis) LastPreMapped() bool { return r.lastPreMapped }

// Insert implements Service: allocate, copy the payload, update the index;
// an overwrite frees the old value afterwards, as Redis does.
func (r *Redis) Insert(key, valueBytes int64) simtime.Duration {
	cost, _ := r.insert(key, valueBytes)
	return cost
}

// insert is Insert returning the stored block too, so Query can read the
// fresh record without a second index probe. The index update is a single
// Swap probe (insert-or-overwrite plus old-value retrieval in one scan); the
// overwritten value is freed afterwards, at the same virtual instant the
// former lookup-then-store sequence freed it.
func (r *Redis) insert(key, valueBytes int64) (simtime.Duration, *alloc.Block) {
	if valueBytes <= 0 {
		panic(fmt.Sprintf("services: insert of %d bytes", valueBytes))
	}
	now := r.k.Scheduler().Now()
	cost := r.costs.IndexCost
	b, c := r.a.Malloc(now.Add(cost), valueBytes)
	cost += c
	cost += r.a.Touch(now.Add(cost), b)
	cost += copyCost(r.costs, valueBytes)
	r.lastPreMapped = b.PreMapped
	if old, ok := r.table.Swap(key, b); ok {
		size := old.Size // Free recycles the Block; read nothing after it
		cost += r.a.Free(now.Add(cost), old)
		r.stored -= size
	}
	r.stored += valueBytes
	return cost, b
}

// Read implements Service: index probe plus payload streaming; values that
// were swapped out come back in at major-fault cost.
func (r *Redis) Read(key int64) simtime.Duration {
	b, ok := r.table.Get(key)
	if !ok {
		return r.costs.IndexCost
	}
	return r.readBlock(b)
}

// readBlock prices a read hit on an already-resolved block: the index probe
// is still charged (the probe happened, or Query knows the slot), then
// payload streaming and possible swap-in.
func (r *Redis) readBlock(b *alloc.Block) simtime.Duration {
	now := r.k.Scheduler().Now()
	cost := r.costs.IndexCost
	cost += readCost(r.costs, b.Size)
	cost += r.k.Access(now.Add(cost), b.Region, alloc.PagesFor(r.k, b.Size))
	return cost
}

// PrefetchKey implements Service.
func (r *Redis) PrefetchKey(key int64) { r.table.Prefetch(key) }

// Delete implements Service.
func (r *Redis) Delete(key int64) simtime.Duration {
	now := r.k.Scheduler().Now()
	cost := r.costs.IndexCost
	if b, ok := r.table.Delete(key); ok {
		size := b.Size // Free recycles the Block; read nothing after it
		cost += r.a.Free(now.Add(cost), b)
		r.stored -= size
	}
	return cost
}

// Query implements Service: insert then read, plus the fixed protocol
// overhead, jittered as one client-observed latency. The scheduler advances
// by the query's duration so background machinery interleaves.
func (r *Redis) Query(key, valueBytes int64) (total, ins, rd simtime.Duration) {
	s := r.k.Scheduler()
	// The read half targets the record the insert half just stored, so the
	// block flows through directly — same read-hit arithmetic, one index
	// probe per query instead of three.
	var b *alloc.Block
	ins, b = r.insert(key, valueBytes)
	s.Advance(ins)
	rd = r.readBlock(b)
	s.Advance(rd)
	overhead := queryOverhead(r.costs, valueBytes)
	total = workload.JitterRequest(r.k, ins+rd+overhead, r.lastPreMapped)
	s.Advance(overhead)
	return total, ins, rd
}

// ImportRecords implements Service: a migration batch re-fills the store
// one record at a time through the allocator — Redis has no bulk-load side
// door, so the re-fill contends with whatever pressure the node is under,
// exactly like live inserts. The scheduler advances per record so kswapd
// and co-tenants interleave with the re-fill.
func (r *Redis) ImportRecords(entries []ImportEntry) simtime.Duration {
	s := r.k.Scheduler()
	var total simtime.Duration
	for _, e := range entries {
		c := r.Insert(e.Key, e.Size)
		s.Advance(c)
		total += c
	}
	return total
}

// ExportRecords implements Service.
func (r *Redis) ExportRecords(buf []ImportEntry) []ImportEntry {
	for _, key := range r.table.SortedKeys(nil) {
		b, _ := r.table.Get(key)
		buf = append(buf, ImportEntry{Key: key, Size: b.Size})
	}
	return buf
}

// Close implements Service. The allocator is owned by the caller; the
// table is simply dropped (a nil flatmap keeps the Go-map contract: reads
// after Close are harmless misses, writes panic).
func (r *Redis) Close() { r.table = nil }
