// Package core implements Hermes, the paper's contribution (§3, §4): a
// library-level mechanism that reserves memory for latency-critical
// services and constructs virtual-physical mappings in advance. It consists
// of a per-process management thread — gradual heap reservation
// (Algorithm 1) and segregated-pool mmap reservation (Algorithm 2) — layered
// on the Glibc model in internal/alloc/glibcmalloc, plus the lazy
// initialisation handshake with the monitor daemon's registry.
package core

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// Config holds Hermes' tunables; defaults are the paper's (§4).
type Config struct {
	// Interval is the management-thread wake period f; the paper sets 2 ms.
	Interval simtime.Duration

	// ReservationFactor is RSV_FACTOR: the reservation target is the last
	// interval's requested bytes multiplied by this factor. The paper
	// sweeps 0.5–3.0 (Figs 15, 16) and settles on 2.
	ReservationFactor float64

	// MinReserve is min_rsv: memory kept reserved even with no incoming
	// requests, so a burst after an idle period is served quickly. The
	// paper sets 5 MB.
	MinReserve int64

	// RsvThrFraction positions RSV_THR relative to the reservation target:
	// reservation starts once the top chunk (or pool) falls below this
	// fraction of the target. Lower values start reserving later, making
	// the Fig 6 race more likely — the ablation uses that.
	RsvThrFraction float64

	// GradualChunkFloor is the smallest gradual-reservation chunk. The
	// chunk size tracks the average request size of the last interval
	// (§3.2.1), but tiny requests would mean thousands of sbrk+mlock
	// calls per tick; the floor bounds both that overhead (§5.5: ~0.4%
	// CPU) and the maximum time the break lock is held per step.
	GradualChunkFloor int64

	// GradualChunkCeil caps a single reservation step; it bounds the
	// worst-case wait of a malloc that arrives while the break lock is
	// held (the whole point of gradual reservation, Fig 6). Zero means
	// "reserve the full target in one step" — the naive strawman used by
	// the Fig 6 ablation.
	GradualChunkCeil int64

	// TableSize is the number of buckets in the segregated free list for
	// mmapped chunks; the paper sets 8 (= 1 MB / 128 KB).
	TableSize int

	// MinMmapSize is the smallest mmap-path request (Glibc's
	// M_MMAP_THRESHOLD); the bucket function divides by it (Equation 1).
	MinMmapSize int64

	// PoolLookupCost prices the segregated-list bucket computation and
	// pop; MgmtTickCost the fixed metric-update work per tick.
	PoolLookupCost simtime.Duration
	MgmtTickCost   simtime.Duration

	// DisableHeapMgmt / DisableMmapMgmt turn off the respective
	// management routines (ablations).
	DisableHeapMgmt bool
	DisableMmapMgmt bool
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Interval:          2 * simtime.Millisecond,
		ReservationFactor: 2.0,
		MinReserve:        5 << 20,
		RsvThrFraction:    0.75,
		GradualChunkFloor: 64 << 10,
		GradualChunkCeil:  1 << 20,
		TableSize:         8,
		MinMmapSize:       128 << 10,
		PoolLookupCost:    400 * simtime.Nanosecond,
		MgmtTickCost:      2 * simtime.Microsecond,
	}
}

func (c Config) validate() error {
	if c.Interval <= 0 {
		return fmt.Errorf("core: non-positive interval %v", c.Interval)
	}
	if c.ReservationFactor <= 0 {
		return fmt.Errorf("core: non-positive reservation factor %v", c.ReservationFactor)
	}
	if c.MinReserve < 0 || c.GradualChunkFloor <= 0 {
		return fmt.Errorf("core: bad reserve sizes min=%d floor=%d", c.MinReserve, c.GradualChunkFloor)
	}
	if c.RsvThrFraction <= 0 || c.RsvThrFraction >= 1 {
		return fmt.Errorf("core: RsvThrFraction %v out of (0,1)", c.RsvThrFraction)
	}
	if c.TableSize <= 0 || c.MinMmapSize <= 0 {
		return fmt.Errorf("core: bad pool geometry table=%d minMmap=%d", c.TableSize, c.MinMmapSize)
	}
	return nil
}
