package core

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/simtime"
)

func newTestHermes(t *testing.T, cfg Config) (*Hermes, *kernel.Kernel, *simtime.Scheduler) {
	t.Helper()
	s := simtime.NewScheduler()
	kcfg := kernel.DefaultConfig()
	kcfg.TotalMemory = 2 << 30
	kcfg.SwapBytes = 512 << 20
	k := kernel.New(s, kcfg)
	h := New(k, "lc-service", cfg)
	t.Cleanup(h.Close)
	return h, k, s
}

func TestHeapReservationPreMapsTopChunk(t *testing.T) {
	h, k, s := newTestHermes(t, DefaultConfig())
	// Let the management thread run a few intervals.
	s.Advance(10 * simtime.Millisecond)
	heap := h.Glibc().HeapRegion()
	if heap.Locked() == 0 {
		t.Fatal("management thread must reserve mlocked heap memory")
	}
	// The reserve honours min_rsv (5 MB) even with no traffic.
	if got := h.Stats().ReservedBytes; got < h.cfg.MinReserve {
		t.Fatalf("reserved %d bytes, want ≥ min_rsv %d", got, h.cfg.MinReserve)
	}
	// A small malloc is now served from the pre-mapped top chunk: no
	// faults at touch.
	faults0 := k.Stats().MinorFaults
	b, _ := h.Malloc(s.Now(), 1024)
	h.Touch(s.Now(), b)
	if !b.PreMapped {
		t.Fatal("block from reserved top chunk must be pre-mapped")
	}
	if k.Stats().MinorFaults != faults0 {
		t.Fatal("touch of reserved memory must not fault")
	}
	k.CheckInvariants()
}

func TestSmallMallocFasterThanGlibcSteadyState(t *testing.T) {
	// After warm-up, Hermes' 1KB allocations must be cheaper on average
	// than Glibc's, because faulting happens in the management thread.
	run := func(useHermes bool) simtime.Duration {
		s := simtime.NewScheduler()
		kcfg := kernel.DefaultConfig()
		kcfg.TotalMemory = 2 << 30
		k := kernel.New(s, kcfg)
		var a alloc.Allocator
		if useHermes {
			a = New(k, "svc", DefaultConfig())
		} else {
			a = glibcNew(k)
		}
		defer a.Close()
		var total simtime.Duration
		const n = 2000
		for i := 0; i < n; i++ {
			b, c1 := a.Malloc(s.Now(), 1024)
			c2 := a.Touch(s.Now().Add(c1), b)
			total += c1 + c2
			s.Advance(c1 + c2 + 2*simtime.Microsecond)
		}
		return total / n
	}
	hermes := run(true)
	glibc := run(false)
	if hermes >= glibc {
		t.Fatalf("Hermes avg %v not faster than Glibc %v", hermes, glibc)
	}
}

func glibcNew(k *kernel.Kernel) alloc.Allocator {
	return newHermesDisabled(k)
}

// newHermesDisabled builds a Hermes with no management thread: it behaves
// exactly like the Glibc model (the paper's non-registered process).
func newHermesDisabled(k *kernel.Kernel) alloc.Allocator {
	return newHermes(k, "glibc", DefaultConfig())
}

func TestLargeMallocServedFromPool(t *testing.T) {
	h, k, s := newTestHermes(t, DefaultConfig())
	// Warm up: tell the thresholds large requests are coming.
	for i := 0; i < 8; i++ {
		b, _ := h.Malloc(s.Now(), 256<<10)
		h.Touch(s.Now(), b)
		h.Free(s.Now(), b)
		s.Advance(2 * simtime.Millisecond)
	}
	st0 := h.MgmtStats()
	if st0.MmapReservations == 0 {
		t.Fatal("management thread must pre-reserve mmapped chunks")
	}
	faults0 := k.Stats().MinorFaults
	b, cost := h.Malloc(s.Now(), 256<<10)
	if !b.PreMapped {
		t.Fatal("pooled chunk must be pre-mapped")
	}
	h.Touch(s.Now().Add(cost), b)
	if k.Stats().MinorFaults != faults0 {
		t.Fatal("touch of a pooled chunk must not fault")
	}
	if got := h.MgmtStats().PoolHits; got != st0.PoolHits+1 {
		t.Fatalf("pool hits = %d, want %d", got, st0.PoolHits+1)
	}
	k.CheckInvariants()
}

func TestFreedLargeChunksReturnToPool(t *testing.T) {
	h, _, s := newTestHermes(t, DefaultConfig())
	b, _ := h.Malloc(s.Now(), 256<<10)
	h.Touch(s.Now(), b)
	pool0 := h.PoolPages()
	h.Free(s.Now(), b)
	if h.PoolPages() <= pool0 {
		t.Fatal("freed mmapped chunk must return to the pool")
	}
	// And the VMA must still exist (not munmapped like Glibc).
	if h.Process().VMACount() == 0 {
		t.Fatal("pooled chunk's VMA must stay alive")
	}
}

func TestDelayReleaseShrinksOversizedHandout(t *testing.T) {
	cfg := DefaultConfig()
	h, k, s := newTestHermes(t, cfg)
	// Prime the pool with large chunks by requesting 1MB repeatedly.
	for i := 0; i < 6; i++ {
		b, _ := h.Malloc(s.Now(), 1<<20)
		h.Free(s.Now(), b)
		s.Advance(2 * simtime.Millisecond)
	}
	// Now request 300KB: served by an oversized (≥1MB) pooled chunk.
	b, _ := h.Malloc(s.Now(), 300<<10)
	if h.MgmtStats().PoolHits == 0 {
		t.Skip("pool did not serve the request in this configuration")
	}
	before := b.Region.Pages()
	need := (int64(300<<10) + 32 + k.PageSize() - 1) / k.PageSize()
	if before <= need {
		t.Skipf("chunk %d pages not oversized vs need %d", before, need)
	}
	// Next management round shrinks it to size.
	s.Advance(3 * simtime.Millisecond)
	if got := b.Region.Pages(); got != need {
		t.Fatalf("handout not shrunk: %d pages, want %d", got, need)
	}
	if h.MgmtStats().Shrinks == 0 {
		t.Fatal("shrink not counted")
	}
	k.CheckInvariants()
}

func TestPoolExpandOnlyFaultsDelta(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableHeapMgmt = true
	h, k, s := newTestHermes(t, cfg)
	// Prime with 256KB requests so pooled chunks are 65 pages, touching
	// each so every pooled chunk is fully mapped.
	for i := 0; i < 6; i++ {
		b, _ := h.Malloc(s.Now(), 256<<10)
		h.Touch(s.Now(), b)
		h.Free(s.Now(), b)
		s.Advance(2 * simtime.Millisecond)
	}
	if h.PoolPages() == 0 {
		t.Fatal("pool empty after priming")
	}
	// Request 1MB: bigger than any pooled chunk → expand path.
	st0 := h.MgmtStats()
	faults0 := k.Stats().MinorFaults
	b, _ := h.Malloc(s.Now(), 1<<20)
	if h.MgmtStats().PoolExpands != st0.PoolExpands+1 {
		t.Fatalf("expected expand path, stats %+v", h.MgmtStats())
	}
	h.Touch(s.Now(), b)
	faulted := k.Stats().MinorFaults - faults0
	total := (int64(1<<20) + 32 + k.PageSize() - 1) / k.PageSize()
	if faulted >= total {
		t.Fatalf("expand faulted %d pages, want < %d (delta only)", faulted, total)
	}
	if faulted == 0 {
		t.Fatal("expand must fault the delta")
	}
	k.CheckInvariants()
}

func TestPoolMissFallsBackToDefaultRoute(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableMmapMgmt = true // pool never refilled
	h, k, s := newTestHermes(t, cfg)
	faults0 := k.Stats().MinorFaults
	b, _ := h.Malloc(s.Now(), 256<<10)
	if h.MgmtStats().PoolMisses != 1 {
		t.Fatalf("want a pool miss, stats %+v", h.MgmtStats())
	}
	h.Touch(s.Now(), b)
	if k.Stats().MinorFaults == faults0 {
		t.Fatal("default route must fault at touch")
	}
	k.CheckInvariants()
}

func TestHeapTrimWhenTopExceedsThreshold(t *testing.T) {
	h, k, s := newTestHermes(t, DefaultConfig())
	// Build a big heap footprint, then free everything: the top chunk
	// balloons past TRIM_THR and the management thread trims it.
	var blocks []*alloc.Block
	for i := 0; i < 2000; i++ {
		b, _ := h.Malloc(s.Now(), 16<<10)
		h.Touch(s.Now(), b)
		blocks = append(blocks, b)
		s.Advance(10 * simtime.Microsecond)
	}
	for i := len(blocks) - 1; i >= 0; i-- {
		h.Free(s.Now(), blocks[i])
	}
	topBefore := h.Glibc().TopBytes()
	s.Advance(20 * simtime.Millisecond)
	topAfter := h.Glibc().TopBytes()
	if topAfter >= topBefore {
		t.Fatalf("management thread did not trim: top %d -> %d", topBefore, topAfter)
	}
	if h.MgmtStats().HeapTrims == 0 {
		t.Fatal("trim not counted")
	}
	k.CheckInvariants()
}

func TestLazyInitViaRegistry(t *testing.T) {
	s := simtime.NewScheduler()
	kcfg := kernel.DefaultConfig()
	kcfg.TotalMemory = 1 << 30
	k := kernel.New(s, kcfg)
	reg := monitor.NewRegistry()

	// Not registered: behaves as default Glibc, no management thread.
	plain := NewWithRegistry(k, "batch-ish", DefaultConfig(), reg, false)
	defer plain.Close()
	if plain.Enabled() {
		t.Fatal("unregistered process must not start the management thread")
	}
	s.Advance(10 * simtime.Millisecond)
	if plain.Stats().ReservedBytes != 0 {
		t.Fatal("unregistered process must reserve nothing")
	}

	// Registered: management thread runs.
	lc := NewWithRegistry(k, "lc", DefaultConfig(), reg, true)
	defer lc.Close()
	if !lc.Enabled() {
		t.Fatal("registered process must start the management thread")
	}
	if !reg.IsLatencyCritical(lc.Process().PID) {
		t.Fatal("registration not recorded")
	}
	s.Advance(10 * simtime.Millisecond)
	if lc.Stats().ReservedBytes == 0 {
		t.Fatal("registered process must reserve memory")
	}
}

func TestGradualReservationBoundsLockHold(t *testing.T) {
	// The gradual strategy must bound single break-lock holds (Fig 6):
	// compare the longest hold between gradual (bounded chunks) and
	// at-once mode.
	maxHold := func(atOnce bool) simtime.Duration {
		s := simtime.NewScheduler()
		kcfg := kernel.DefaultConfig()
		kcfg.TotalMemory = 2 << 30
		k := kernel.New(s, kcfg)
		cfg := DefaultConfig()
		cfg.DisableMmapMgmt = true
		if atOnce {
			cfg.GradualChunkCeil = 0 // single-step reservation
		}
		h := New(k, "svc", cfg)
		defer h.Close()
		for i := 0; i < 40; i++ {
			s.Advance(2 * simtime.Millisecond)
			// Keep demand up so the thread keeps reserving.
			b, _ := h.Malloc(s.Now(), 32<<10)
			h.Touch(s.Now(), b)
		}
		return h.MgmtStats().MaxLockHold
	}
	gradual := maxHold(false)
	atOnce := maxHold(true)
	if gradual == 0 || atOnce == 0 {
		t.Fatalf("no lock holds observed: gradual=%v atOnce=%v", gradual, atOnce)
	}
	if gradual*2 >= atOnce {
		t.Fatalf("gradual hold %v not well below at-once hold %v", gradual, atOnce)
	}
}

func TestMgmtOverheadIsSmall(t *testing.T) {
	// §5.5: the management thread costs ~0.4% CPU under the
	// micro-benchmark. Measured over a steady-state window (the one-off
	// min_rsv build-up amortises away); allow generous headroom but fail
	// on runaway cost.
	h, _, s := newTestHermes(t, DefaultConfig())
	for i := 0; i < 20000; i++ {
		b, c := h.Malloc(s.Now(), 1024)
		h.Touch(s.Now().Add(c), b)
		s.Advance(100 * simtime.Microsecond)
	}
	util := h.MgmtUtilization(s.Now())
	if util > 0.02 {
		t.Fatalf("management thread utilisation %.2f%%, want < 2%%", util*100)
	}
	if util == 0 {
		t.Fatal("management thread did no work")
	}
}

func TestReservedMemoryIsModest(t *testing.T) {
	// §5.5: reserved-but-unused memory ≈ 6–6.4 MB for the micro-benchmark.
	h, _, s := newTestHermes(t, DefaultConfig())
	for i := 0; i < 2000; i++ {
		b, c := h.Malloc(s.Now(), 1024)
		h.Touch(s.Now().Add(c), b)
		s.Advance(4 * simtime.Microsecond)
	}
	got := h.Stats().ReservePeak
	if got > 64<<20 {
		t.Fatalf("peak reservation %d bytes, want tens of MB at most", got)
	}
	if got < 1<<20 {
		t.Fatalf("peak reservation %d bytes implausibly small", got)
	}
}

func TestDoubleFreeLargePanics(t *testing.T) {
	h, _, s := newTestHermes(t, DefaultConfig())
	b, _ := h.Malloc(s.Now(), 256<<10)
	h.Free(s.Now(), b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	h.Free(s.Now(), b)
}

func TestHermesStatsCounters(t *testing.T) {
	h, _, s := newTestHermes(t, DefaultConfig())
	b1, _ := h.Malloc(s.Now(), 1024)
	b2, _ := h.Malloc(s.Now(), 256<<10)
	h.Free(s.Now(), b1)
	h.Free(s.Now(), b2)
	st := h.Stats()
	if st.Mallocs != 2 || st.Frees != 2 {
		t.Fatalf("counters: %+v", st)
	}
	if st.BytesRequested != 1024+256<<10 {
		t.Fatalf("bytes requested: %d", st.BytesRequested)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	s := simtime.NewScheduler()
	k := kernel.New(s, kernel.DefaultConfig())
	cases := []func(*Config){
		func(c *Config) { c.Interval = 0 },
		func(c *Config) { c.ReservationFactor = 0 },
		func(c *Config) { c.GradualChunkFloor = 0 },
		func(c *Config) { c.TableSize = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config must panic", i)
				}
			}()
			New(k, "x", cfg)
		}()
	}
}
