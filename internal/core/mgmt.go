package core

import (
	"cmp"
	"slices"

	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// This file is the management thread: each tick runs the heap routine
// (Algorithm 1) and the mmap routine (Algorithm 2). Gradual heap
// reservation is executed as a chain of scheduled steps — one sbrk+mlock
// per step, the break lock held only within a step — so process mallocs
// interleave with the reservation exactly as in the paper's Fig 6(b). A
// single atomic loop would hold the lock for the whole expansion, which is
// the naive strawman of Fig 6(a); the ablation reproduces it by setting
// GradualChunkCeil to zero, collapsing the chain to one big step.

func (h *Hermes) mgmtTick(now simtime.Time) simtime.Duration {
	busy := h.cfg.MgmtTickCost
	h.mgmtStats.Ticks++
	h.updateThresholds()
	if !h.cfg.DisableHeapMgmt {
		busy += h.heapRoutine(now.Add(busy))
	}
	if !h.cfg.DisableMmapMgmt {
		busy += h.mmapRoutine(now.Add(busy))
	}
	if r := h.reservedBytes(); r > h.reservePeak {
		h.reservePeak = r
	}
	h.mgmtBusy += busy
	return busy
}

// updateThresholds recomputes the reservation targets from the last
// interval's allocation metrics (UpdateThreshold in Algorithms 1 and 2):
// the target is requested-bytes × RSV_FACTOR with the min_rsv floor, the
// reservation threshold is half the target, the trim threshold twice it,
// and the gradual chunk tracks the average request size.
func (h *Hermes) updateThresholds() {
	ps := h.k.PageSize()

	heapTarget := int64(float64(h.smallBytes) * h.cfg.ReservationFactor)
	if heapTarget < h.cfg.MinReserve {
		heapTarget = h.cfg.MinReserve
	}
	h.heapTarget = heapTarget
	h.heapRsvThr = int64(h.cfg.RsvThrFraction * float64(heapTarget))
	h.heapTrimThr = heapTarget * 2
	if h.smallCount > 0 {
		avg := h.smallBytes / h.smallCount
		h.heapChunk = clamp(avg, h.cfg.GradualChunkFloor, gradualCeil(h.cfg, heapTarget))
	}

	mmapTargetPages := int64(float64(h.largePages) * h.cfg.ReservationFactor)
	if h.everLarge {
		// min_rsv applies once the service is known to use the mmap path;
		// a heap-only service keeps no idle pool.
		if floor := h.cfg.MinReserve / ps; mmapTargetPages < floor {
			mmapTargetPages = floor
		}
	}
	h.mmapTarget = mmapTargetPages
	h.mmapRsvThr = int64(h.cfg.RsvThrFraction * float64(mmapTargetPages))
	h.mmapTrimThr = mmapTargetPages * 2
	if h.largeCount > 0 {
		avg := h.largePages / h.largeCount
		minPages := h.cfg.MinMmapSize / ps
		maxPages := int64(h.cfg.TableSize) * minPages
		h.mmapChunk = clamp(avg, minPages, maxPages)
	}

	h.smallBytes, h.smallCount = 0, 0
	h.largePages, h.largeCount = 0, 0
}

// scarce reports whether free memory is close enough to the minimum
// watermark that a reservation would trigger synchronous direct reclaim.
func (h *Hermes) scarce() bool {
	min, _, _ := h.k.Watermarks()
	ps := h.k.PageSize()
	headroom := 2 * (h.heapChunk + h.mmapChunk*ps) / ps
	return h.k.FreePages() < min+headroom
}

func gradualCeil(cfg Config, target int64) int64 {
	if cfg.GradualChunkCeil <= 0 {
		// Ablation mode: reserve everything in one step (the naive
		// approach of §3.2.1 / Fig 6a).
		return target
	}
	return cfg.GradualChunkCeil
}

func clamp(v, lo, hi int64) int64 {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// heapRoutine is Algorithm 1's dispatcher: start a gradual reservation
// chain when the top chunk is below RSV_THR, trim it above TRIM_THR.
func (h *Hermes) heapRoutine(at simtime.Time) simtime.Duration {
	if h.heapReserving {
		return 0 // a reservation chain is already in flight
	}
	topFree := h.g.TopBytes()
	switch {
	case topFree < h.heapRsvThr:
		h.heapReserving = true
		h.reserveGoal = h.heapTarget - topFree
		h.k.Scheduler().Schedule(at, func(*simtime.Scheduler) { h.heapReserveStep(at) })
		return 0
	case topFree > h.heapTrimThr:
		var busy simtime.Duration
		lock := h.g.BreakLock()
		grant := lock.AcquireAt(at)
		busy += grant.Sub(at)
		busy += h.g.TrimHeap(at.Add(busy), h.heapTrimThr)
		lock.HoldUntil(at.Add(busy))
		h.mgmtStats.HeapTrims++
		h.mgmtBusy += busy
		return 0 // already accounted into mgmtBusy
	}
	return 0
}

// heapReserveStep performs one gradual-reservation step — acquire the break
// lock, sbrk one chunk, construct its mapping with mlock, release — then
// schedules the next step at the instant this one completes. Process
// mallocs arriving between steps run unobstructed; one arriving mid-step
// waits at most the step's duration (Fig 6b).
func (h *Hermes) heapReserveStep(at simtime.Time) {
	if h.closed || h.reserveGoal <= 0 {
		h.heapReserving = false
		return
	}
	// Under critical scarcity, reserving would drag synchronous direct
	// reclaim inside the break-lock hold, blocking the service for
	// milliseconds — worse than letting requests take the default routine.
	// The chain abandons and retries next interval (§3.3: reservation "can
	// still be delayed if it triggers the direct reclaim routine";
	// proactive reclamation exists to reduce exactly this).
	if h.scarce() {
		h.heapReserving = false
		return
	}
	chunk := h.heapChunk
	if h.cfg.GradualChunkCeil <= 0 {
		// Fig 6(a) ablation: the whole remaining reservation in one step.
		chunk = h.reserveGoal
	} else if chunk > h.cfg.GradualChunkCeil {
		chunk = h.cfg.GradualChunkCeil
	}
	if chunk > h.reserveGoal {
		chunk = h.reserveGoal
	}

	lock := h.g.BreakLock()
	start := lock.AcquireAt(at)
	var step simtime.Duration
	step += h.g.GrowHeap(start, chunk)
	ps := h.k.PageSize()
	pages := (chunk + ps - 1) / ps
	region := h.g.HeapRegion()
	if u := region.Untouched(); pages > u {
		pages = u
	}
	if pages > 0 {
		step += h.k.PopulateLocked(start.Add(step), region, pages)
	}
	end := start.Add(step)
	lock.HoldUntil(end)
	// The new space is visible to the process only once this step's
	// construction completes.
	h.g.SetTopEmbargo(end, chunk)
	if step > h.mgmtStats.MaxLockHold {
		h.mgmtStats.MaxLockHold = step
	}
	h.mgmtBusy += step
	h.mgmtStats.HeapReservations++
	h.reserveGoal -= chunk

	if h.reserveGoal > 0 {
		h.k.Scheduler().Schedule(end, func(*simtime.Scheduler) { h.heapReserveStep(end) })
	} else {
		h.heapReserving = false
	}
}

// mmapRoutine is Algorithm 2: shrink oversized handouts (DelayRelease),
// refill the segregated pool with pre-mapped chunks, trim the pool above
// the threshold. All of it is asynchronous with the process thread — large
// requests never wait on this routine (they fall back to the default route
// instead).
func (h *Hermes) mmapRoutine(at simtime.Time) simtime.Duration {
	var busy simtime.Duration

	// DelayRelease: shrink chunks handed out larger than their request —
	// in ascending RegionID order, so the Munmap timestamps never depend
	// on Go map iteration (the seed-replay invariant).
	if len(h.handouts) > 0 {
		regions := h.shrinkScratch[:0]
		for region := range h.handouts {
			regions = append(regions, region)
		}
		slices.SortFunc(regions, func(a, b *kernel.Region) int {
			return cmp.Compare(a.ID, b.ID)
		})
		for i, region := range regions {
			if excess := region.Pages() - h.handouts[region]; excess > 0 {
				busy += h.k.Munmap(at.Add(busy), region, excess)
				h.mgmtStats.Shrinks++
			}
			delete(h.handouts, region)
			regions[i] = nil // drop the region reference from the scratch
		}
		h.shrinkScratch = regions[:0]
	}

	// Reserve until the pool reaches the target — but bound the work per
	// tick: under heavy pressure each PopulateLocked drags direct reclaim
	// and disk writeback with it, and an unbounded refill loop would queue
	// device work far ahead of the clock, stalling every foreground fault
	// behind it. Refill resumes next tick (the paper: reservation "can
	// still be delayed if it triggers the direct reclaim routine").
	if h.pool.totalPages < h.mmapRsvThr {
		budget := h.cfg.Interval
		for h.pool.totalPages < h.mmapTarget && busy < budget && !h.scarce() {
			chunk := h.mmapChunk
			region, c := h.k.Mmap(at.Add(busy), h.g.Process(), chunk)
			busy += c
			busy += h.k.PopulateLocked(at.Add(busy), region, chunk)
			h.pool.add(poolChunk{region: region, locked: true})
			h.mgmtStats.MmapReservations++
		}
	}

	// Trim: release the smallest chunks while the pool exceeds the
	// threshold.
	for h.pool.totalPages > h.mmapTrimThr {
		c, ok := h.pool.takeSmallest()
		if !ok {
			break
		}
		busy += h.k.Munmap(at.Add(busy), c.region, c.region.Pages())
	}
	return busy
}

// mallocLarge serves an mmap-path request from the pool (§3.2.2): compute
// the best-fit bucket, take its first chunk (guaranteed to fit), or expand
// the largest pooled chunk, or fall back to the default mmap routine. The
// reserved pages are munlocked as they leave the reserve.
func (h *Hermes) mallocLarge(at simtime.Time, size int64) (*alloc.Block, simtime.Duration) {
	ps := h.k.PageSize()
	chunkBytes := size + 32 // header+alignment, mirroring the glibc model
	reqPages := (chunkBytes + ps - 1) / ps
	h.largePages += reqPages
	h.largeCount++
	h.everLarge = true
	cost := h.cfg.PoolLookupCost

	if c, ok := h.pool.takeFit(reqPages); ok {
		h.mgmtStats.PoolHits++
		if c.locked {
			cost += h.k.Munlock(at.Add(cost), c.region, c.region.Locked())
		}
		if c.pages() > reqPages {
			h.handouts[c.region] = reqPages
		}
		return h.poolBlock(size, reqPages, c.region), cost
	}

	if c, ok := h.pool.takeLargest(); ok {
		// Expand the largest chunk to the request: mapping construction is
		// only needed for the delta (§3.2.2).
		h.mgmtStats.PoolExpands++
		if c.locked {
			cost += h.k.Munlock(at.Add(cost), c.region, c.region.Locked())
		}
		if extra := reqPages - c.pages(); extra > 0 {
			cost += h.k.MremapGrow(at.Add(cost), c.region, extra)
		}
		return h.poolBlock(size, reqPages, c.region), cost
	}

	// Empty pool: default allocation route (Glibc's mmap path, pages fault
	// at first touch).
	h.mgmtStats.PoolMisses++
	region, c := h.k.Mmap(at.Add(cost), h.g.Process(), reqPages)
	cost += c + h.g.Config().MallocFastCost
	b := h.blocks.Get()
	*b = alloc.Block{
		Size:      size,
		ChunkSize: reqPages * ps,
		Kind:      alloc.BlockMmap,
		Region:    region,
		EndPage:   reqPages,
	}
	return b, cost
}

func (h *Hermes) poolBlock(size, reqPages int64, region *kernel.Region) *alloc.Block {
	b := h.blocks.Get()
	*b = alloc.Block{
		Size:      size,
		ChunkSize: reqPages * h.k.PageSize(),
		Kind:      alloc.BlockMmap,
		Region:    region,
		// Resident (not merely touched-then-swapped) pages qualify as
		// pre-mapped.
		EndPage:   reqPages,
		PreMapped: region.Mapped() >= reqPages,
	}
	return b
}
