package core

import (
	"fmt"

	"github.com/hermes-sim/hermes/internal/kernel"
)

// poolChunk is one pre-mapped mmapped chunk waiting in the segregated free
// list.
type poolChunk struct {
	region *kernel.Region
	// locked reports whether the chunk's pages are still mlocked (fresh
	// reservations are; chunks returned by Free are not).
	locked bool
}

func (c poolChunk) pages() int64 { return c.region.Pages() }

// segregatedPool is the memory pool of Algorithm 2: table_size buckets of
// mmapped chunks, bucket(chunk_size) = MIN(chunk_size/min_mmap_size,
// table_size) (Equation 1, 1-indexed with the last bucket holding
// everything ≥ table_size × min_mmap_size).
type segregatedPool struct {
	minMmapPages int64
	tableSize    int
	buckets      [][]poolChunk
	totalPages   int64
}

func newSegregatedPool(minMmapSize, pageSize int64, tableSize int) *segregatedPool {
	minPages := minMmapSize / pageSize
	if minPages <= 0 {
		panic(fmt.Sprintf("core: min mmap size %d below page size %d", minMmapSize, pageSize))
	}
	return &segregatedPool{
		minMmapPages: minPages,
		tableSize:    tableSize,
		buckets:      make([][]poolChunk, tableSize+1), // 1-indexed
	}
}

// bucketFor implements Equation 1 on page counts.
func (p *segregatedPool) bucketFor(pages int64) int {
	b := int(pages / p.minMmapPages)
	if b < 1 {
		b = 1
	}
	if b > p.tableSize {
		b = p.tableSize
	}
	return b
}

// add parks a chunk in its bucket.
func (p *segregatedPool) add(c poolChunk) {
	b := p.bucketFor(c.pages())
	p.buckets[b] = append(p.buckets[b], c)
	p.totalPages += c.pages()
}

// takeFit pops a chunk at least reqPages large. The fast path takes the
// first chunk of the first non-empty bucket from bucket(req)+1 upward
// (§3.2.2: those are at least a full min_mmap_size stride above the
// request, so no scan is needed). When the higher buckets are empty it
// falls back to a bounded scan of the request's own bucket — the common
// case for latency-critical services, whose requests are near-constant
// sized (§3.2.1), so reserved chunks sit in exactly that bucket (the
// paper's worked example takes the 524 KB chunk from the request's own
// best-fit bucket).
func (p *segregatedPool) takeFit(reqPages int64) (poolChunk, bool) {
	start := p.bucketFor(reqPages) + 1
	if start > p.tableSize {
		start = p.tableSize
	}
	for b := start; b <= p.tableSize; b++ {
		list := p.buckets[b]
		if len(list) == 0 {
			continue
		}
		c := list[len(list)-1]
		if c.pages() < reqPages {
			// Only possible in the overflow bucket (table_size), which
			// mixes sizes; fall through to the own-bucket scan /
			// largest-chunk path.
			continue
		}
		p.buckets[b] = list[:len(list)-1]
		p.totalPages -= c.pages()
		return c, true
	}
	own := p.bucketFor(reqPages)
	for i := len(p.buckets[own]) - 1; i >= 0; i-- {
		c := p.buckets[own][i]
		if c.pages() < reqPages {
			continue
		}
		list := p.buckets[own]
		list[i] = list[len(list)-1]
		p.buckets[own] = list[:len(list)-1]
		p.totalPages -= c.pages()
		return c, true
	}
	return poolChunk{}, false
}

// takeLargest pops the largest chunk in the pool (the expand-to-fit path
// when no bucket holds a big-enough chunk).
func (p *segregatedPool) takeLargest() (poolChunk, bool) {
	bestBucket, bestIdx := -1, -1
	var bestPages int64
	for b := p.tableSize; b >= 1; b-- {
		for i, c := range p.buckets[b] {
			if c.pages() > bestPages {
				bestBucket, bestIdx, bestPages = b, i, c.pages()
			}
		}
		if bestBucket >= 0 {
			break // higher buckets only hold smaller chunks
		}
	}
	if bestBucket < 0 {
		return poolChunk{}, false
	}
	list := p.buckets[bestBucket]
	c := list[bestIdx]
	list[bestIdx] = list[len(list)-1]
	p.buckets[bestBucket] = list[:len(list)-1]
	p.totalPages -= c.pages()
	return c, true
}

// takeSmallest pops the smallest chunk (the trim path of Algorithm 2
// releases smallest_space first).
func (p *segregatedPool) takeSmallest() (poolChunk, bool) {
	bestBucket, bestIdx := -1, -1
	var bestPages int64 = 1<<63 - 1
	for b := 1; b <= p.tableSize; b++ {
		for i, c := range p.buckets[b] {
			if c.pages() < bestPages {
				bestBucket, bestIdx, bestPages = b, i, c.pages()
			}
		}
		if bestBucket >= 0 && bestBucket < p.tableSize {
			break // later buckets only hold larger chunks
		}
	}
	if bestBucket < 0 {
		return poolChunk{}, false
	}
	list := p.buckets[bestBucket]
	c := list[bestIdx]
	list[bestIdx] = list[len(list)-1]
	p.buckets[bestBucket] = list[:len(list)-1]
	p.totalPages -= c.pages()
	return c, true
}

// chunks returns the number of pooled chunks.
func (p *segregatedPool) chunks() int {
	n := 0
	for _, b := range p.buckets {
		n += len(b)
	}
	return n
}
