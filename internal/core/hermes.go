package core

import (
	"github.com/hermes-sim/hermes/internal/alloc"
	"github.com/hermes-sim/hermes/internal/alloc/glibcmalloc"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/monitor"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// Hermes is the paper's modified Glibc (§3.2): the default ptmalloc
// routines plus a per-process management thread that keeps the top chunk
// and a segregated pool of mmapped chunks pre-reserved with their
// virtual-physical mappings constructed, so incoming requests are served
// without faulting.
type Hermes struct {
	cfg Config
	g   *glibcmalloc.Allocator
	k   *kernel.Kernel

	enabled bool
	closed  bool
	task    *simtime.PeriodicTask
	// mgmtBusy accumulates all management-thread virtual CPU time (ticks
	// plus reservation-chain steps).
	mgmtBusy simtime.Duration
	// heapReserving marks an in-flight gradual reservation chain;
	// reserveGoal is its remaining bytes. everLarge records that the
	// process has used the mmap path at least once.
	heapReserving bool
	reserveGoal   int64
	everLarge     bool

	pool *segregatedPool
	// handouts tracks mmapped chunks given to the process that are larger
	// than the request; the next management round shrinks them to size
	// (Algorithm 2's DelayRelease). shrinkScratch is the reusable sort
	// buffer for that round's deterministic region order.
	handouts      map[*kernel.Region]int64 // region → pages actually needed
	shrinkScratch []*kernel.Region

	// Interval metrics (reset each tick) drive the thresholds.
	smallBytes, smallCount int64
	largePages, largeCount int64

	// Heap thresholds, in bytes (Algorithm 1).
	heapTarget, heapRsvThr, heapTrimThr int64
	heapChunk                           int64
	// Mmap thresholds, in pages (Algorithm 2).
	mmapTarget, mmapRsvThr, mmapTrimThr int64
	mmapChunk                           int64

	reservePeak int64
	mgmtStats   MgmtStats

	// Own malloc/free counters: the pool and MallocSmall paths bypass the
	// glibc model's accounting.
	mallocs, frees, bytesReq, bytesFreed int64

	// blocks recycles the mmap-path Block objects (heap blocks recycle
	// through the underlying glibc model's pool).
	blocks alloc.BlockPool
}

// MgmtStats counts management-thread activity for the overhead experiment.
type MgmtStats struct {
	Ticks            int64
	HeapReservations int64
	HeapTrims        int64
	MmapReservations int64
	PoolHits         int64
	PoolExpands      int64
	PoolMisses       int64
	Shrinks          int64
	// MaxLockHold is the longest single break-lock hold by a reservation
	// step — the bound gradual reservation exists to keep small (Fig 6).
	MaxLockHold simtime.Duration
}

var _ alloc.Allocator = (*Hermes)(nil)

// New creates a Hermes allocator with the management thread enabled — the
// configuration of a registered latency-critical service.
func New(k *kernel.Kernel, name string, cfg Config) *Hermes {
	h := newHermes(k, name, cfg)
	h.enable()
	return h
}

// NewWithRegistry performs the paper's lazy initialisation (§3.3): the
// management thread starts only if the process's PID is registered as
// latency-critical in the monitor daemon's shared-memory registry;
// otherwise the process behaves exactly like default Glibc.
func NewWithRegistry(k *kernel.Kernel, name string, cfg Config, reg *monitor.Registry, register bool) *Hermes {
	h := newHermes(k, name, cfg)
	if register {
		reg.AddLatencyCritical(h.g.Process().PID)
	}
	if reg.IsLatencyCritical(h.g.Process().PID) {
		h.enable()
	}
	return h
}

func newHermes(k *kernel.Kernel, name string, cfg Config) *Hermes {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	gcfg := glibcmalloc.DefaultConfig()
	gcfg.TrimThreshold = 0 // Hermes trims from the management thread.
	h := &Hermes{
		cfg:      cfg,
		g:        glibcmalloc.New(k, name, gcfg),
		k:        k,
		pool:     newSegregatedPool(cfg.MinMmapSize, k.PageSize(), cfg.TableSize),
		handouts: make(map[*kernel.Region]int64),
	}
	h.heapChunk = cfg.GradualChunkFloor
	h.mmapChunk = cfg.MinMmapSize / k.PageSize()
	return h
}

func (h *Hermes) enable() {
	if h.enabled {
		return
	}
	h.enabled = true
	h.task = simtime.NewPeriodicTask(h.k.Scheduler(), h.cfg.Interval, h.mgmtTick)
}

// Enabled reports whether the management thread is running.
func (h *Hermes) Enabled() bool { return h.enabled }

// Name implements alloc.Allocator.
func (h *Hermes) Name() string { return "Hermes" }

// Process returns the backing kernel process.
func (h *Hermes) Process() *kernel.Process { return h.g.Process() }

// Glibc exposes the underlying ptmalloc model (tests, diagnostics).
func (h *Hermes) Glibc() *glibcmalloc.Allocator { return h.g }

// PoolPages returns the pages currently parked in the segregated pool.
func (h *Hermes) PoolPages() int64 { return h.pool.totalPages }

// ReservationFactor returns the current RSV_FACTOR.
func (h *Hermes) ReservationFactor() float64 { return h.cfg.ReservationFactor }

// SetReservationFactor retunes RSV_FACTOR mid-run; the management thread
// reads it on its next tick, so the switch takes effect within one mgmt
// period. Non-positive factors are ignored (the config contract). The
// adaptive control plane's allocator-policy action drives this.
func (h *Hermes) SetReservationFactor(f float64) {
	if f > 0 {
		h.cfg.ReservationFactor = f
	}
}

// MgmtStats returns management-thread counters.
func (h *Hermes) MgmtStats() MgmtStats { return h.mgmtStats }

// MgmtBusy returns the management thread's total virtual CPU time.
func (h *Hermes) MgmtBusy() simtime.Duration { return h.mgmtBusy }

// MgmtUtilization returns the management thread's virtual-CPU share
// (§5.5 reports ~0.4%), counting both periodic ticks and reservation steps.
func (h *Hermes) MgmtUtilization(now simtime.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(h.mgmtBusy) / float64(now)
}

// Malloc implements alloc.Allocator. Small requests go through the shared
// Glibc heap path — which now finds a pre-mapped top chunk — plus the
// munlock handshake; large requests are served from the segregated pool.
func (h *Hermes) Malloc(at simtime.Time, size int64) (*alloc.Block, simtime.Duration) {
	if !h.enabled {
		return h.g.Malloc(at, size)
	}
	if size <= 0 {
		panic("core: malloc of non-positive size")
	}
	h.mallocs++
	h.bytesReq += size
	if size+32 >= h.cfg.MinMmapSize { // mirror glibc's chunk rounding
		return h.mallocLarge(at, size)
	}
	return h.mallocSmall(at, size)
}

func (h *Hermes) mallocSmall(at simtime.Time, size int64) (*alloc.Block, simtime.Duration) {
	h.smallBytes += size
	h.smallCount++
	b, cost := h.g.MallocSmall(at, size)
	// Hand-out handshake: reserved pages were mlocked at reservation time;
	// pages leaving the reserve are munlocked so the kernel may reclaim
	// them again (§4).
	heap := h.g.HeapRegion()
	if locked := heap.Locked(); locked > 0 {
		ps := h.k.PageSize()
		n := (b.ChunkSize + ps - 1) / ps
		if n > locked {
			n = locked
		}
		cost += h.k.Munlock(at.Add(cost), heap, n)
	}
	b.PreMapped = b.EndPage <= heap.Mapped()
	return b, cost
}

// Free implements alloc.Allocator. Freed mmapped chunks return to the pool
// (most requests from latency-critical services are same-sized, so pooled
// chunks fit future requests exactly — §6 "Fragmentation"); heap frees take
// the default path.
func (h *Hermes) Free(at simtime.Time, b *alloc.Block) simtime.Duration {
	if !h.enabled {
		return h.g.Free(at, b)
	}
	h.frees++
	h.bytesFreed += b.Size
	if b.Kind != alloc.BlockMmap {
		return h.g.Free(at, b)
	}
	b.MarkFreed()
	delete(h.handouts, b.Region)
	h.pool.add(poolChunk{region: b.Region, locked: false})
	h.blocks.Put(b)
	return h.g.Config().FreeCost
}

// Touch implements alloc.Allocator.
func (h *Hermes) Touch(at simtime.Time, b *alloc.Block) simtime.Duration {
	return alloc.TouchBlock(h.k, at, b)
}

// Access implements alloc.Allocator.
func (h *Hermes) Access(at simtime.Time, b *alloc.Block, bytes int64) simtime.Duration {
	return alloc.AccessBlock(h.k, at, b, bytes)
}

// Stats implements alloc.Allocator.
func (h *Hermes) Stats() alloc.Stats {
	st := h.g.Stats()
	if h.enabled {
		st.Mallocs = h.mallocs
		st.Frees = h.frees
		st.BytesRequested = h.bytesReq
		st.BytesFreed = h.bytesFreed
	}
	st.ReservedBytes = h.reservedBytes()
	st.ReservePeak = h.reservePeak
	return st
}

// reservedBytes is memory reserved but not yet handed out: locked heap
// pages plus the pooled chunks (§5.5 reports ~6–6.4 MB at runtime).
func (h *Hermes) reservedBytes() int64 {
	return (h.g.HeapRegion().Locked() + h.pool.totalPages) * h.k.PageSize()
}

// Close implements alloc.Allocator.
func (h *Hermes) Close() {
	h.closed = true
	if h.task != nil {
		h.task.Stop()
	}
}
