package core

import (
	"testing"
	"testing/quick"

	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

func newPoolKernel() (*kernel.Kernel, *kernel.Process, *simtime.Scheduler) {
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = 1 << 30
	cfg.SwapBytes = 0
	k := kernel.New(s, cfg)
	return k, k.CreateProcess("pool"), s
}

func mkChunk(k *kernel.Kernel, p *kernel.Process, s *simtime.Scheduler, pages int64) poolChunk {
	r, _ := k.Mmap(s.Now(), p, pages)
	return poolChunk{region: r}
}

func TestBucketForEquation1(t *testing.T) {
	k, _, _ := newPoolKernel()
	pool := newSegregatedPool(128<<10, k.PageSize(), 8)
	minPages := int64((128 << 10) / 4096) // 32
	tests := []struct {
		pages int64
		want  int
	}{
		{1, 1},              // below min_mmap_size clamps to 1
		{minPages, 1},       // exactly 128KB
		{minPages*2 - 1, 1}, // 255KB floors to 1
		{minPages * 2, 2},   // 256KB
		{minPages * 7, 7},   // 896KB
		{minPages * 8, 8},   // 1MB hits table_size
		{minPages * 100, 8}, // clamped at table_size
	}
	for _, tc := range tests {
		if got := pool.bucketFor(tc.pages); got != tc.want {
			t.Errorf("bucketFor(%d) = %d, want %d", tc.pages, got, tc.want)
		}
	}
}

func TestTakeFitUsesNextBucketUp(t *testing.T) {
	k, p, s := newPoolKernel()
	pool := newSegregatedPool(128<<10, k.PageSize(), 8)
	minPages := int64(32)
	// The paper's worked example: chunks of 524KB (bucket 4 /1MB... here:
	// put two chunks in bucket 1 and one in bucket 2; request 90 pages
	// (≈360KB, bucket 2): takeFit must search from bucket 3 — but bucket 2
	// chunk may be smaller than the request, so it is skipped by design.
	pool.add(mkChunk(k, p, s, minPages))     // bucket 1
	pool.add(mkChunk(k, p, s, minPages+10))  // bucket 1
	pool.add(mkChunk(k, p, s, minPages*2+4)) // bucket 2 (68 pages < 90)
	if _, ok := pool.takeFit(90); ok {
		t.Fatal("takeFit must not return a chunk smaller than the request")
	}
	// Add a bucket-3 chunk: now the request fits via the fast path.
	big := mkChunk(k, p, s, minPages*3)
	pool.add(big)
	c, ok := pool.takeFit(90)
	if !ok || c.region != big.region {
		t.Fatal("takeFit must take the first chunk of the next bucket up")
	}
}

func TestTakeFitOwnBucketScanForSameSizeWorkload(t *testing.T) {
	// Latency-critical services issue near-constant-size requests, so the
	// reserved chunks live in the request's own bucket: takeFit must find
	// them when higher buckets are empty.
	k, p, s := newPoolKernel()
	pool := newSegregatedPool(128<<10, k.PageSize(), 8)
	c65 := mkChunk(k, p, s, 65) // a 256KB+header chunk, bucket 2
	pool.add(c65)
	got, ok := pool.takeFit(65)
	if !ok || got.region != c65.region {
		t.Fatal("takeFit must serve an equal-size chunk from the request's own bucket")
	}
	// But a smaller chunk in the same bucket must not satisfy it.
	pool.add(mkChunk(k, p, s, 64)) // also bucket 2, one page short
	if _, ok := pool.takeFit(65); ok {
		t.Fatal("own-bucket scan must respect the size requirement")
	}
}

func TestTakeFitGuaranteesSize(t *testing.T) {
	// Property: any chunk takeFit returns is at least the request size.
	k, p, s := newPoolKernel()
	f := func(sizes []uint16, req uint16) bool {
		pool := newSegregatedPool(128<<10, k.PageSize(), 8)
		for _, sz := range sizes {
			pool.add(mkChunk(k, p, s, int64(sz%2000)+1))
		}
		reqPages := int64(req%2000) + 1
		c, ok := pool.takeFit(reqPages)
		if !ok {
			return true
		}
		return c.pages() >= reqPages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTakeLargestAndSmallest(t *testing.T) {
	k, p, s := newPoolKernel()
	pool := newSegregatedPool(128<<10, k.PageSize(), 8)
	a := mkChunk(k, p, s, 40)
	b := mkChunk(k, p, s, 400)
	c := mkChunk(k, p, s, 100)
	pool.add(a)
	pool.add(b)
	pool.add(c)
	if got, ok := pool.takeLargest(); !ok || got.region != b.region {
		t.Fatal("takeLargest must return the 400-page chunk")
	}
	if got, ok := pool.takeSmallest(); !ok || got.region != a.region {
		t.Fatal("takeSmallest must return the 40-page chunk")
	}
	if got, ok := pool.takeSmallest(); !ok || got.region != c.region {
		t.Fatal("last chunk must be the 100-page one")
	}
	if _, ok := pool.takeSmallest(); ok {
		t.Fatal("empty pool must report no chunk")
	}
	if pool.totalPages != 0 || pool.chunks() != 0 {
		t.Fatalf("pool accounting broken: total=%d chunks=%d", pool.totalPages, pool.chunks())
	}
}

func TestPoolTotalPagesAccounting(t *testing.T) {
	k, p, s := newPoolKernel()
	f := func(sizes []uint8) bool {
		pool := newSegregatedPool(128<<10, k.PageSize(), 8)
		var want int64
		for _, sz := range sizes {
			pages := int64(sz) + 1
			pool.add(mkChunk(k, p, s, pages))
			want += pages
		}
		if pool.totalPages != want {
			return false
		}
		for pool.chunks() > 0 {
			c, ok := pool.takeSmallest()
			if !ok {
				return false
			}
			want -= c.pages()
			if pool.totalPages != want {
				return false
			}
		}
		return pool.totalPages == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
