package simtime

// Lock models a mutex in virtual time. It is *not* a concurrency primitive —
// the simulation is single-threaded — it is an accounting device: it records
// until what instant a simulated thread holds a resource so another simulated
// thread arriving earlier must wait.
//
// This is how the paper's central contention effect is reproduced: the heap
// management thread holds the program-break lock while it expands the heap
// and constructs virtual-physical mappings; a malloc arriving in that window
// is delayed until the hold expires (paper Fig. 6).
type Lock struct {
	heldUntil Time
	holds     int64
	waits     int64
	waited    Duration
}

// AcquireAt returns the instant the lock becomes available to a requester
// arriving at instant at, recording wait statistics. The caller is expected
// to then call HoldUntil with its release time.
func (l *Lock) AcquireAt(at Time) Time {
	l.holds++
	if l.heldUntil > at {
		l.waits++
		l.waited += l.heldUntil.Sub(at)
		return l.heldUntil
	}
	return at
}

// HoldUntil marks the lock as held until instant t. Calls with an earlier
// t than the current hold are ignored: a nested, shorter hold cannot shorten
// the outer critical section.
func (l *Lock) HoldUntil(t Time) {
	if t > l.heldUntil {
		l.heldUntil = t
	}
}

// HeldAt reports whether the lock is held at instant at.
func (l *Lock) HeldAt(at Time) bool { return l.heldUntil > at }

// HeldUntil returns the instant the current hold expires.
func (l *Lock) HeldUntil() Time { return l.heldUntil }

// Contention returns (number of acquisitions that had to wait, total time
// waited). Used in tests to verify the gradual-reservation claim: small
// reservation chunks bound the wait a competing malloc experiences.
func (l *Lock) Contention() (waits int64, waited Duration) {
	return l.waits, l.waited
}
