package simtime

// PeriodicTask repeatedly invokes a callback at a fixed virtual-time period.
// It models daemon threads: the Hermes management thread (woken every f
// milliseconds), the memory-monitor daemon, and kswapd's background scans.
//
// The callback returns the amount of virtual CPU time the tick consumed;
// the next tick is scheduled one full period after the *start* of the
// current tick, matching a thread that sleeps on a periodic timer. If a tick
// runs longer than the period, the next tick fires immediately after it
// completes rather than stacking up.
type PeriodicTask struct {
	sched   *Scheduler
	period  Duration
	tick    func(now Time) Duration
	event   *Event
	stopped bool

	// Ticks counts completed invocations; exposed for overhead accounting.
	Ticks int64
	// Busy accumulates virtual CPU time consumed by the callback, used to
	// report the management thread's CPU overhead (paper §5.5: ~0.4%).
	Busy Duration
}

// NewPeriodicTask creates and starts a periodic task. The first tick fires
// one full period from now, matching a thread that sleeps before its first
// scan. Stop must be called to release it.
func NewPeriodicTask(s *Scheduler, period Duration, tick func(now Time) Duration) *PeriodicTask {
	if period <= 0 {
		panic("simtime: periodic task period must be positive")
	}
	if tick == nil {
		panic("simtime: nil periodic task callback")
	}
	p := &PeriodicTask{sched: s, period: period, tick: tick}
	p.event = s.ScheduleAfter(period, p.run)
	return p
}

func (p *PeriodicTask) run(s *Scheduler) {
	if p.stopped {
		return
	}
	// The event that fired us is being recycled by the scheduler; drop the
	// stale pointer so a Stop from inside the tick cannot cancel whatever
	// event the scheduler hands out next.
	p.event = nil
	start := s.Now()
	busy := p.tick(start)
	if busy < 0 {
		busy = 0
	}
	p.Ticks++
	p.Busy += busy
	if p.stopped { // the tick stopped its own task
		return
	}
	next := start.Add(p.period)
	if end := start.Add(busy); next < end {
		next = end
	}
	p.event = s.Schedule(next, p.run)
}

// Stop cancels the task. Safe to call multiple times.
func (p *PeriodicTask) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.sched.Cancel(p.event)
	p.event = nil
}

// Stopped reports whether Stop has been called.
func (p *PeriodicTask) Stopped() bool { return p.stopped }

// Utilization returns the fraction of virtual time the task's callback was
// busy over the window [0, now]. Used by the overhead experiment (E14).
func (p *PeriodicTask) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(p.Busy) / float64(now)
}
