package simtime

import (
	"testing"
	"testing/quick"
)

func TestSchedulerRunsEventsInOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.Schedule(30, func(*Scheduler) { got = append(got, 3) })
	s.Schedule(10, func(*Scheduler) { got = append(got, 1) })
	s.Schedule(20, func(*Scheduler) { got = append(got, 2) })
	if fired := s.RunUntil(100); fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 100 {
		t.Fatalf("now = %v, want 100", s.Now())
	}
}

func TestSchedulerTieBreakIsFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func(*Scheduler) { got = append(got, i) })
	}
	s.RunUntil(5)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulerEventsCanScheduleWithinHorizon(t *testing.T) {
	s := NewScheduler()
	var hits int
	s.Schedule(10, func(s *Scheduler) {
		hits++
		s.Schedule(20, func(*Scheduler) { hits++ })
		s.Schedule(200, func(*Scheduler) { hits++ }) // beyond horizon
	})
	s.RunUntil(100)
	if hits != 2 {
		t.Fatalf("hits = %d, want 2 (nested event within horizon must fire)", hits)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(50)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	s.Schedule(10, func(*Scheduler) {})
}

func TestCancelPreventsFiring(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.Schedule(10, func(*Scheduler) { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double-cancel is a no-op
	s.RunUntil(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestAdvanceMovesClockAndFires(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.ScheduleAfter(7, func(s *Scheduler) { at = s.Now() })
	s.Advance(10)
	if at != 7 {
		t.Fatalf("event fired at %v, want 7", at)
	}
	if s.Now() != 10 {
		t.Fatalf("now = %v, want 10", s.Now())
	}
}

func TestDrainLimit(t *testing.T) {
	s := NewScheduler()
	count := 0
	var reschedule func(*Scheduler)
	reschedule = func(s *Scheduler) {
		count++
		s.ScheduleAfter(1, reschedule)
	}
	s.ScheduleAfter(1, reschedule)
	if fired := s.Drain(25); fired != 25 {
		t.Fatalf("drain fired %d, want 25", fired)
	}
	if count != 25 {
		t.Fatalf("count = %d, want 25", count)
	}
}

func TestPeekNext(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.PeekNext(); ok {
		t.Fatal("PeekNext on empty queue must report false")
	}
	s.Schedule(42, func(*Scheduler) {})
	at, ok := s.PeekNext()
	if !ok || at != 42 {
		t.Fatalf("PeekNext = (%v,%v), want (42,true)", at, ok)
	}
}

// Property: for any set of event times, events fire in nondecreasing time
// order and the count matches.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		var fireTimes []Time
		for _, d := range delays {
			at := Time(d)
			s.Schedule(at, func(s *Scheduler) { fireTimes = append(fireTimes, s.Now()) })
		}
		s.RunUntil(MaxTime - 1)
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	a := Time(100)
	if a.Add(50) != 150 {
		t.Fatal("Add broken")
	}
	if a.Sub(40) != 60 {
		t.Fatal("Sub broken")
	}
	if !a.Before(101) || a.Before(99) {
		t.Fatal("Before broken")
	}
	if !a.After(99) || a.After(101) {
		t.Fatal("After broken")
	}
}

func TestEventPoolReusesFiredEvents(t *testing.T) {
	s := NewScheduler()
	first := s.Schedule(10, func(*Scheduler) {})
	s.RunUntil(10)
	second := s.Schedule(20, func(*Scheduler) {})
	if first != second {
		t.Error("fired event was not recycled by the next Schedule")
	}
	s.RunUntil(20)
}

func TestEventPoolReusesCancelledEvents(t *testing.T) {
	s := NewScheduler()
	e := s.Schedule(10, func(*Scheduler) { t.Error("cancelled event fired") })
	s.Cancel(e)
	reused := s.Schedule(15, func(*Scheduler) {})
	if e != reused {
		t.Error("cancelled event was not recycled by the next Schedule")
	}
	if got := s.RunUntil(20); got != 1 {
		t.Fatalf("fired %d events, want 1", got)
	}
}

func TestScheduleAllocatesOncePerPoolSlot(t *testing.T) {
	s := NewScheduler()
	// Steady-state self-rescheduling must not allocate: the fired event is
	// recycled for the next tick.
	ticks := 0
	var tick func(*Scheduler)
	tick = func(sc *Scheduler) {
		ticks++
		if ticks < 100 {
			sc.ScheduleAfter(10, tick)
		}
	}
	s.ScheduleAfter(10, tick)
	allocs := testing.AllocsPerRun(1, func() {
		for ticks < 100 {
			s.Advance(10)
		}
	})
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
	if allocs > 0 {
		t.Errorf("steady-state scheduling allocated %v objects per run, want 0", allocs)
	}
}

func TestRunUntilReentrancyPanics(t *testing.T) {
	s := NewScheduler()
	s.Schedule(10, func(sc *Scheduler) {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant RunUntil from a callback must panic")
			}
		}()
		sc.RunUntil(20)
	})
	s.RunUntil(15)
	// The guard must reset: a later top-level run loop still works.
	s.Schedule(30, func(*Scheduler) {})
	if got := s.RunUntil(40); got != 1 {
		t.Fatalf("post-panic RunUntil fired %d events, want 1", got)
	}
}

func TestDrainReentrancyPanics(t *testing.T) {
	s := NewScheduler()
	s.Schedule(10, func(sc *Scheduler) {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Drain from a callback must panic")
			}
		}()
		sc.Drain(0)
	})
	if got := s.Drain(0); got != 1 {
		t.Fatalf("Drain fired %d events, want 1", got)
	}
}

func TestDrainMatchesRunUntilOrdering(t *testing.T) {
	run := func(drain bool) []int {
		s := NewScheduler()
		var order []int
		for i, at := range []Time{30, 10, 20, 10} {
			i := i
			s.Schedule(at, func(*Scheduler) { order = append(order, i) })
		}
		if drain {
			s.Drain(0)
		} else {
			s.RunUntil(30)
		}
		return order
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("fired %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RunUntil order %v != Drain order %v", a, b)
		}
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	s := NewScheduler()
	fn := func(*Scheduler) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ScheduleAfter(10, fn)
		s.Advance(10)
	}
}
