package simtime

import (
	"testing"
	"testing/quick"
)

func TestSchedulerRunsEventsInOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.Schedule(30, func(*Scheduler) { got = append(got, 3) })
	s.Schedule(10, func(*Scheduler) { got = append(got, 1) })
	s.Schedule(20, func(*Scheduler) { got = append(got, 2) })
	if fired := s.RunUntil(100); fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 100 {
		t.Fatalf("now = %v, want 100", s.Now())
	}
}

func TestSchedulerTieBreakIsFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func(*Scheduler) { got = append(got, i) })
	}
	s.RunUntil(5)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulerEventsCanScheduleWithinHorizon(t *testing.T) {
	s := NewScheduler()
	var hits int
	s.Schedule(10, func(s *Scheduler) {
		hits++
		s.Schedule(20, func(*Scheduler) { hits++ })
		s.Schedule(200, func(*Scheduler) { hits++ }) // beyond horizon
	})
	s.RunUntil(100)
	if hits != 2 {
		t.Fatalf("hits = %d, want 2 (nested event within horizon must fire)", hits)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(50)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	s.Schedule(10, func(*Scheduler) {})
}

func TestCancelPreventsFiring(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.Schedule(10, func(*Scheduler) { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double-cancel is a no-op
	s.RunUntil(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestAdvanceMovesClockAndFires(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.ScheduleAfter(7, func(s *Scheduler) { at = s.Now() })
	s.Advance(10)
	if at != 7 {
		t.Fatalf("event fired at %v, want 7", at)
	}
	if s.Now() != 10 {
		t.Fatalf("now = %v, want 10", s.Now())
	}
}

func TestDrainLimit(t *testing.T) {
	s := NewScheduler()
	count := 0
	var reschedule func(*Scheduler)
	reschedule = func(s *Scheduler) {
		count++
		s.ScheduleAfter(1, reschedule)
	}
	s.ScheduleAfter(1, reschedule)
	if fired := s.Drain(25); fired != 25 {
		t.Fatalf("drain fired %d, want 25", fired)
	}
	if count != 25 {
		t.Fatalf("count = %d, want 25", count)
	}
}

func TestPeekNext(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.PeekNext(); ok {
		t.Fatal("PeekNext on empty queue must report false")
	}
	s.Schedule(42, func(*Scheduler) {})
	at, ok := s.PeekNext()
	if !ok || at != 42 {
		t.Fatalf("PeekNext = (%v,%v), want (42,true)", at, ok)
	}
}

// Property: for any set of event times, events fire in nondecreasing time
// order and the count matches.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		var fireTimes []Time
		for _, d := range delays {
			at := Time(d)
			s.Schedule(at, func(s *Scheduler) { fireTimes = append(fireTimes, s.Now()) })
		}
		s.RunUntil(MaxTime - 1)
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	a := Time(100)
	if a.Add(50) != 150 {
		t.Fatal("Add broken")
	}
	if a.Sub(40) != 60 {
		t.Fatal("Sub broken")
	}
	if !a.Before(101) || a.Before(99) {
		t.Fatal("Before broken")
	}
	if !a.After(99) || a.After(101) {
		t.Fatal("After broken")
	}
}
