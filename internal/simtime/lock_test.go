package simtime

import "testing"

func TestLockUncontendedAcquire(t *testing.T) {
	var l Lock
	if got := l.AcquireAt(100); got != 100 {
		t.Fatalf("acquire = %v, want 100", got)
	}
	waits, waited := l.Contention()
	if waits != 0 || waited != 0 {
		t.Fatalf("contention = (%d,%v), want (0,0)", waits, waited)
	}
}

func TestLockContendedAcquireWaits(t *testing.T) {
	var l Lock
	l.AcquireAt(0)
	l.HoldUntil(50)
	if got := l.AcquireAt(30); got != 50 {
		t.Fatalf("acquire during hold = %v, want 50", got)
	}
	waits, waited := l.Contention()
	if waits != 1 || waited != 20 {
		t.Fatalf("contention = (%d,%v), want (1,20)", waits, waited)
	}
}

func TestLockHoldUntilNeverShrinks(t *testing.T) {
	var l Lock
	l.HoldUntil(100)
	l.HoldUntil(60)
	if got := l.HeldUntil(); got != 100 {
		t.Fatalf("heldUntil = %v, want 100", got)
	}
}

func TestLockHeldAt(t *testing.T) {
	var l Lock
	l.HoldUntil(10)
	if !l.HeldAt(5) {
		t.Fatal("lock should be held at 5")
	}
	if l.HeldAt(10) {
		t.Fatal("lock should be free at its expiry instant")
	}
}
