package simtime

import "testing"

func TestPeriodicTaskFiresAtPeriod(t *testing.T) {
	s := NewScheduler()
	var fires []Time
	p := NewPeriodicTask(s, 10, func(now Time) Duration {
		fires = append(fires, now)
		return 0
	})
	s.RunUntil(35)
	p.Stop()
	want := []Time{10, 20, 30}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestPeriodicTaskLongTickDelaysNext(t *testing.T) {
	s := NewScheduler()
	var fires []Time
	p := NewPeriodicTask(s, 10, func(now Time) Duration {
		fires = append(fires, now)
		return 25 // tick takes 2.5 periods
	})
	s.RunUntil(80)
	p.Stop()
	// First tick at 10 runs until 35; next fires at 35, runs until 60; next
	// at 60 runs until 85 (beyond horizon).
	want := []Time{10, 35, 60}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestPeriodicTaskStopIsIdempotent(t *testing.T) {
	s := NewScheduler()
	p := NewPeriodicTask(s, 10, func(Time) Duration { return 0 })
	p.Stop()
	p.Stop()
	if fired := s.RunUntil(100); fired != 0 {
		t.Fatalf("stopped task fired %d times", fired)
	}
	if !p.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestPeriodicTaskAccounting(t *testing.T) {
	s := NewScheduler()
	p := NewPeriodicTask(s, 100, func(Time) Duration { return 7 })
	s.RunUntil(1000)
	if p.Ticks != 10 {
		t.Fatalf("ticks = %d, want 10", p.Ticks)
	}
	if p.Busy != 70 {
		t.Fatalf("busy = %v, want 70", p.Busy)
	}
	util := p.Utilization(s.Now())
	if util < 0.069 || util > 0.071 {
		t.Fatalf("utilization = %v, want ~0.07", util)
	}
}
