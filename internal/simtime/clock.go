// Package simtime provides the virtual clock and discrete-event scheduler
// that every other simulated subsystem is built on.
//
// All simulated latencies in this repository are expressed in virtual
// nanoseconds on a Clock owned by a Scheduler. Determinism is a hard
// requirement: two runs with the same seed and configuration must produce
// identical results, so events that fire at the same instant are ordered by
// a monotonically increasing sequence number assigned at scheduling time.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Duration is a span of virtual time in nanoseconds. It deliberately mirrors
// time.Duration so call sites can use the familiar constants
// (simtime.Millisecond, ...) without importing two time packages.
type Duration = time.Duration

// Convenience re-exports so simulation code reads naturally.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
	Hour        = time.Hour
)

// Time is an instant of virtual time, nanoseconds since simulation start.
type Time int64

// MaxTime is the largest representable instant; used as the horizon for
// RunUntil when draining a simulation.
const MaxTime = Time(math.MaxInt64)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String renders the instant as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. The callback receives the Scheduler so it
// can reschedule itself or schedule follow-up work.
type Event struct {
	at  Time
	seq uint64
	fn  func(*Scheduler)

	// index is maintained by the heap; -1 once popped or cancelled.
	index int
}

// At returns the instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler owns the virtual clock and the pending-event queue. It is not
// safe for concurrent use: the simulation is single-threaded by design so
// that results are deterministic. (A cluster runs one Scheduler per node;
// parallelism happens across schedulers, never within one.)
type Scheduler struct {
	now    Time
	seq    uint64
	queue  eventQueue
	firing bool

	// pool recycles fired and cancelled Events so steady-state scheduling
	// (periodic daemon ticks, kswapd scans) does not allocate.
	pool []*Event
}

// NewScheduler returns a scheduler with the clock at zero and no events.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Schedule registers fn to run at instant at. Scheduling in the past is a
// programming error and panics: allowing it silently would corrupt the
// causal order of the simulation.
func (s *Scheduler) Schedule(at Time, fn func(*Scheduler)) *Event {
	if at < s.now {
		panic(fmt.Sprintf("simtime: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("simtime: nil event callback")
	}
	s.seq++
	var e *Event
	if n := len(s.pool); n > 0 {
		e = s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		e.at, e.seq, e.fn = at, s.seq, fn
	} else {
		e = &Event{at: at, seq: s.seq, fn: fn}
	}
	heap.Push(&s.queue, e)
	return e
}

// release returns a no-longer-pending event to the pool for reuse by a
// future Schedule call.
func (s *Scheduler) release(e *Event) {
	e.fn = nil
	e.index = -1
	s.pool = append(s.pool, e)
}

// ScheduleAfter registers fn to run d after the current instant. Negative
// delays are clamped to zero.
func (s *Scheduler) ScheduleAfter(d Duration, fn func(*Scheduler)) *Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling a nil, already-fired or
// already-cancelled event is a no-op, which keeps caller bookkeeping simple.
// Fired events are recycled by later Schedule calls, so a caller must not
// retain an event past its firing and Cancel it afterwards — drop the
// pointer (or nil it out) once the callback has run, as PeriodicTask does.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	s.release(e)
}

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.queue) }

// PeekNext returns the time of the earliest pending event and true, or zero
// and false when the queue is empty.
func (s *Scheduler) PeekNext() (Time, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// fireNext pops the earliest pending event, advances the clock to its
// instant, recycles the Event, and runs its callback. The Event is released
// before the callback so a self-rescheduling task (the common periodic-tick
// pattern) reuses the same hot object. Callers must have checked the queue
// is non-empty and set s.firing.
func (s *Scheduler) fireNext() {
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	fn := e.fn
	s.release(e)
	fn(s)
}

// enterRun guards the two run loops against re-entrancy: an event callback
// calling RunUntil/Advance/Drain would nest firing loops and corrupt the
// causal order (the inner loop would advance the clock under the outer
// one). Callbacks must schedule follow-up work instead.
func (s *Scheduler) enterRun(op string) {
	if s.firing {
		panic(fmt.Sprintf("simtime: re-entrant %s from inside an event callback", op))
	}
	s.firing = true
}

// RunUntil fires every event scheduled at or before horizon, in causal
// order, then advances the clock to horizon. It returns the number of events
// fired. Events may schedule further events; those are honoured if they fall
// within the horizon. Calling RunUntil from inside an event callback panics.
func (s *Scheduler) RunUntil(horizon Time) int {
	if horizon < s.now {
		panic(fmt.Sprintf("simtime: RunUntil horizon %v before now %v", horizon, s.now))
	}
	s.enterRun("RunUntil")
	defer func() { s.firing = false }()
	fired := 0
	for len(s.queue) > 0 && s.queue[0].at <= horizon {
		s.fireNext()
		fired++
	}
	s.now = horizon
	return fired
}

// Advance moves the clock forward by d, firing any events that fall inside
// the window. It is the primary way a synchronous actor (such as a simulated
// process thread computing a request latency) yields to background work.
func (s *Scheduler) Advance(d Duration) int {
	return s.RunUntil(s.now.Add(d))
}

// Drain runs events until the queue is empty or limit events have fired.
// It returns the number fired. A limit of 0 means no limit; the cap exists
// so a misbehaving self-rescheduling task cannot hang a test forever.
// Like RunUntil, calling Drain from inside an event callback panics.
func (s *Scheduler) Drain(limit int) int {
	s.enterRun("Drain")
	defer func() { s.firing = false }()
	fired := 0
	for len(s.queue) > 0 {
		if limit > 0 && fired >= limit {
			break
		}
		s.fireNext()
		fired++
	}
	return fired
}
