package campaign

import (
	"fmt"
	"strings"
)

// Diff compares two campaign reports group by group and flags regressions
// in the new one. The noise gate is two-sided: a p99 increase counts only
// when it exceeds gatePct percent of the old median AND lands above the
// old median's bootstrap CI upper bound; a compliance drop counts only
// when it exceeds gatePct percentage points AND lands below the old CI
// lower bound. Crossing both bars separates a real shift from seed noise.
//
// Returns the human-readable diff and whether any regression was flagged.
func Diff(old, new *Report, gatePct float64) (string, bool) {
	var b strings.Builder
	regressed := false
	fmt.Fprintf(&b, "campaign diff: %q → %q (gate %.1f%%)\n", old.Name, new.Name, gatePct)

	seen := make(map[string]bool)
	for _, id := range old.sortedGroupIDs() {
		seen[id] = true
		og, ng := old.group(id), new.group(id)
		if ng == nil {
			fmt.Fprintf(&b, "  %-40s  MISSING in new report\n", id)
			regressed = true
			continue
		}
		var flags []string
		if worse, detail := p99Regressed(og.P99, ng.P99, gatePct); worse {
			flags = append(flags, "p99 REGRESSED "+detail)
		} else {
			flags = append(flags, "p99 "+detail)
		}
		if worse, detail := complianceRegressed(og.Compliance, ng.Compliance, gatePct); worse {
			flags = append(flags, "compliance REGRESSED "+detail)
		} else if detail != "" {
			flags = append(flags, "compliance "+detail)
		}
		status := "ok"
		if strings.Contains(strings.Join(flags, " "), "REGRESSED") {
			status = "REGRESSION"
			regressed = true
		}
		fmt.Fprintf(&b, "  %-40s  %-10s  %s\n", id, status, strings.Join(flags, ", "))
	}
	for _, id := range new.sortedGroupIDs() {
		if !seen[id] {
			fmt.Fprintf(&b, "  %-40s  new group (no baseline)\n", id)
		}
	}
	return b.String(), regressed
}

// p99Regressed applies the two-sided gate to a latency estimate (higher is
// worse).
func p99Regressed(old, new Estimate, gatePct float64) (bool, string) {
	detail := fmt.Sprintf("%s → %s", fmtDurNS(old.Median), fmtDurNS(new.Median))
	if old.Median <= 0 {
		return false, detail
	}
	deltaPct := (new.Median - old.Median) / old.Median * 100
	if deltaPct > gatePct && new.Median > old.Hi {
		return true, fmt.Sprintf("%s (+%.1f%%, above old CI hi %s)",
			detail, deltaPct, fmtDurNS(old.Hi))
	}
	return false, fmt.Sprintf("%s (%+.1f%%)", detail, deltaPct)
}

// complianceRegressed applies the gate to an SLO-compliance estimate
// (lower is worse, measured in percentage points).
func complianceRegressed(old, new Estimate, gatePct float64) (bool, string) {
	if old.Median == 0 && new.Median == 0 {
		return false, "" // no SLO in either run
	}
	detail := fmt.Sprintf("%.2f%% → %.2f%%", old.Median*100, new.Median*100)
	dropPts := (old.Median - new.Median) * 100
	if dropPts > gatePct && new.Median < old.Lo {
		return true, fmt.Sprintf("%s (-%.2f pts, below old CI lo %.2f%%)",
			detail, dropPts, old.Lo*100)
	}
	return false, detail
}
