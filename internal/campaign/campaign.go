// Package campaign is the experiment harness's sweep runner: a declarative
// campaign spec — one base scenario plus a grid of axes (allocator, key
// skew, rate scaling, node count, adaptive-vs-static policies, seed
// replicas) — expanded into cells, executed in parallel across cores, and
// aggregated into per-group medians with bootstrap confidence intervals.
//
// The determinism contract: a cell's report is bit-identical to a
// standalone Cluster.RunScenario of the exact (Config, Scenario) pair that
// Build returns for the cell, regardless of worker count or completion
// order. Each cell runs on its own Cluster (its own virtual timeline and
// randgen streams), workers write only their own cell's result slot, and
// aggregation runs single-threaded in grid order after the pool drains —
// so parallel and sequential campaign runs produce the identical report.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/hermes-sim/hermes/internal/cluster"
	"github.com/hermes-sim/hermes/internal/metrics"
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/workload"
)

// Axes is the sweep grid: every non-empty axis multiplies the cell count;
// an empty axis keeps the base scenario's value. Seeds are replicas —
// cells differing only in seed aggregate into one group.
type Axes struct {
	// Allocators sweeps ClusterConfig.Allocator.
	Allocators []cluster.AllocatorKind `json:"allocators,omitempty"`
	// Zipf overrides every traffic class's key-skew exponent (0 = uniform).
	Zipf []float64 `json:"zipf,omitempty"`
	// RateScale multiplies every traffic class's arrival rate.
	RateScale []float64 `json:"rate_scale,omitempty"`
	// Nodes sweeps the fleet size.
	Nodes []int `json:"nodes,omitempty"`
	// Policies toggles the control plane: "adaptive" keeps the scenario's
	// policies block, "static" strips it (the brownout baseline).
	Policies []string `json:"policies,omitempty"`
	// Seeds are the per-group replicas; empty means the scenario's own seed.
	Seeds []uint64 `json:"seeds,omitempty"`
}

// Spec is a campaign file:
//
//	{
//	  "name": "adaptive-sweep",
//	  "scenario_file": "../scenarios/adaptive-brownout.json",
//	  "scale": 0.2,
//	  "metrics_period": "100ms",
//	  "axes": { "zipf": [1.05, 1.3], "rate_scale": [1, 1.25],
//	            "policies": ["adaptive", "static"], "seeds": [1, 2, 3] }
//	}
//
// scenario_file is resolved relative to the campaign file; an inline
// "scenario" object (a full scenario spec document) may replace it.
type Spec struct {
	Name         string          `json:"name"`
	ScenarioFile string          `json:"scenario_file,omitempty"`
	Scenario     json.RawMessage `json:"scenario,omitempty"`
	// Scale multiplies the base scenario's durations and request budgets
	// (Scenario.Scaled); 0 means 1.
	Scale float64 `json:"scale,omitempty"`
	// MetricsPeriod, when set (a Go duration string), collects the
	// per-window time series for every cell at that window width.
	MetricsPeriod string `json:"metrics_period,omitempty"`
	Axes          Axes   `json:"axes"`
}

// Campaign is a loaded, validated campaign ready to expand and run.
type Campaign struct {
	Spec Spec
	// Scale is the effective scenario scale: the spec's, times any CLI
	// multiplier layered on with ScaleBy.
	Scale float64

	base   cluster.ScenarioSpec
	period simtime.Duration // 0 = no metrics
}

// Params identifies a grid group: the applied value of every active axis
// (inactive axes stay at their zero value and are omitted from JSON).
type Params struct {
	Allocator string   `json:"allocator,omitempty"`
	Zipf      *float64 `json:"zipf,omitempty"`
	RateScale *float64 `json:"rate_scale,omitempty"`
	Nodes     int      `json:"nodes,omitempty"`
	Policy    string   `json:"policy,omitempty"`
}

// Cell is one grid point: a group's parameters plus one seed replica.
type Cell struct {
	// Index is the cell's position in grid order — stable across runs.
	Index int
	// Group identifies the cell's aggregation group (all active axes,
	// no seed); ID appends the seed.
	Group  string
	ID     string
	Params Params
	Seed   uint64
}

// Load reads and validates a campaign file, resolving scenario_file
// relative to the campaign file's directory.
func Load(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parse(data, filepath.Dir(path))
}

func parse(data []byte, baseDir string) (*Campaign, error) {
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("campaign: spec JSON: %w", err)
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("campaign: spec needs a name")
	}
	if (spec.ScenarioFile == "") == (spec.Scenario == nil) {
		return nil, fmt.Errorf("campaign %q: exactly one of scenario_file or scenario is required", spec.Name)
	}
	sdata := []byte(spec.Scenario)
	if spec.ScenarioFile != "" {
		p := spec.ScenarioFile
		if !filepath.IsAbs(p) {
			p = filepath.Join(baseDir, p)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("campaign %q: %w", spec.Name, err)
		}
		sdata = b
	}
	return build(spec, sdata)
}

func build(spec Spec, sdata []byte) (*Campaign, error) {
	base, err := cluster.ParseScenarioSpec(sdata)
	if err != nil {
		return nil, fmt.Errorf("campaign %q: %w", spec.Name, err)
	}
	c := &Campaign{Spec: spec, Scale: spec.Scale, base: base}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if !(c.Scale > 0) {
		return nil, fmt.Errorf("campaign %q: scale must be positive (got %v)", spec.Name, c.Scale)
	}
	if spec.MetricsPeriod != "" {
		d, err := time.ParseDuration(spec.MetricsPeriod)
		if err != nil {
			return nil, fmt.Errorf("campaign %q: metrics_period: %w", spec.Name, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("campaign %q: metrics_period must be > 0 (got %v)", spec.Name, d)
		}
		c.period = d
	}
	for _, p := range spec.Axes.Policies {
		if p != PolicyAdaptive && p != PolicyStatic {
			return nil, fmt.Errorf("campaign %q: unknown policy axis value %q (want %q or %q)",
				spec.Name, p, PolicyAdaptive, PolicyStatic)
		}
		if p == PolicyAdaptive && base.Scenario.Policies == nil {
			return nil, fmt.Errorf("campaign %q: policy axis asks for %q but the scenario declares no policies block",
				spec.Name, PolicyAdaptive)
		}
	}
	for _, k := range spec.Axes.Allocators {
		probe := cluster.DefaultConfig()
		probe.Allocator = k
		if err := probe.Validate(); err != nil {
			return nil, fmt.Errorf("campaign %q: allocator axis: %w", spec.Name, err)
		}
	}
	// Expand once so a malformed grid (or an unbuildable cell) fails at
	// load time, not mid-run on worker 7.
	for _, cell := range c.Cells() {
		if _, _, err := c.BuildCell(cell); err != nil {
			return nil, fmt.Errorf("campaign %q: cell %s: %w", spec.Name, cell.ID, err)
		}
	}
	return c, nil
}

// Policy axis values.
const (
	PolicyAdaptive = "adaptive"
	PolicyStatic   = "static"
)

// ScaleBy layers a CLI scale multiplier onto the spec's scale — the way a
// committed campaign shrinks onto a CI budget.
func (c *Campaign) ScaleBy(f float64) error {
	if !(f > 0) {
		return fmt.Errorf("campaign: scale multiplier must be positive (got %v)", f)
	}
	c.Scale = c.Scale * f
	return nil
}

// Cells expands the grid in fixed axis order (allocator, zipf, rate,
// nodes, policy, seed) — the cell order, IDs and indices are a pure
// function of the spec.
func (c *Campaign) Cells() []Cell {
	allocs := c.Spec.Axes.Allocators
	zipfs := floatAxis(c.Spec.Axes.Zipf)
	rates := floatAxis(c.Spec.Axes.RateScale)
	nodes := c.Spec.Axes.Nodes
	pols := c.Spec.Axes.Policies
	seeds := c.Spec.Axes.Seeds
	if len(allocs) == 0 {
		allocs = []cluster.AllocatorKind{""}
	}
	if len(nodes) == 0 {
		nodes = []int{0}
	}
	if len(pols) == 0 {
		pols = []string{""}
	}
	if len(seeds) == 0 {
		seeds = []uint64{c.base.Scenario.Seed}
	}
	var cells []Cell
	for _, a := range allocs {
		for _, z := range zipfs {
			for _, r := range rates {
				for _, n := range nodes {
					for _, p := range pols {
						params := Params{Allocator: string(a), Zipf: z, RateScale: r, Nodes: n, Policy: p}
						gid := groupID(params)
						for _, s := range seeds {
							cells = append(cells, Cell{
								Index:  len(cells),
								Group:  gid,
								ID:     fmt.Sprintf("%s/seed=%d", gid, s),
								Params: params,
								Seed:   s,
							})
						}
					}
				}
			}
		}
	}
	return cells
}

// floatAxis wraps an optional float axis: empty becomes the single
// inactive (nil) option.
func floatAxis(vals []float64) []*float64 {
	if len(vals) == 0 {
		return []*float64{nil}
	}
	out := make([]*float64, len(vals))
	for i := range vals {
		v := vals[i]
		out[i] = &v
	}
	return out
}

// groupID renders the active axes as a stable slash-joined key; "base"
// when no axis is active.
func groupID(p Params) string {
	var parts []string
	if p.Allocator != "" {
		parts = append(parts, "alloc="+p.Allocator)
	}
	if p.Zipf != nil {
		parts = append(parts, fmt.Sprintf("zipf=%g", *p.Zipf))
	}
	if p.RateScale != nil {
		parts = append(parts, fmt.Sprintf("rate=%g", *p.RateScale))
	}
	if p.Nodes > 0 {
		parts = append(parts, fmt.Sprintf("nodes=%d", p.Nodes))
	}
	if p.Policy != "" {
		parts = append(parts, "policy="+p.Policy)
	}
	if len(parts) == 0 {
		return "base"
	}
	out := parts[0]
	for _, s := range parts[1:] {
		out += "/" + s
	}
	return out
}

// BuildCell constructs the cell's exact (cluster config, scenario) pair —
// the pair the determinism contract is stated over: running it standalone
// through Cluster.RunScenario reproduces the cell's report bit for bit.
func (c *Campaign) BuildCell(cell Cell) (cluster.Config, workload.Scenario, error) {
	cfg, err := c.base.Overrides.Apply(cluster.DefaultConfig())
	if err != nil {
		return cluster.Config{}, workload.Scenario{}, err
	}
	if cell.Params.Allocator != "" {
		cfg.Allocator = cluster.AllocatorKind(cell.Params.Allocator)
	}
	if cell.Params.Nodes > 0 {
		cfg.Nodes = cell.Params.Nodes
	}
	scn := cloneScenario(c.base.Scenario)
	if c.Scale != 1 {
		scn = scn.Scaled(c.Scale)
	}
	for pi := range scn.Phases {
		for ci := range scn.Phases[pi].Classes {
			tc := &scn.Phases[pi].Classes[ci]
			if cell.Params.Zipf != nil {
				tc.ZipfS = *cell.Params.Zipf
			}
			if cell.Params.RateScale != nil {
				tc.Rate *= *cell.Params.RateScale
			}
		}
	}
	if cell.Params.Policy == PolicyStatic {
		scn.Policies = nil
	}
	scn.Seed = cell.Seed
	cfg.Seed = cell.Seed
	if c.period > 0 {
		cfg.Metrics = &metrics.Config{Period: c.period}
	}
	if err := cfg.Validate(); err != nil {
		return cluster.Config{}, workload.Scenario{}, err
	}
	if err := scn.Validate(); err != nil {
		return cluster.Config{}, workload.Scenario{}, err
	}
	return cfg, scn, nil
}

// cloneScenario deep-copies the slices a cell override mutates (phases and
// their class lists), so parallel cells never share mutable state with the
// base scenario or each other.
func cloneScenario(s workload.Scenario) workload.Scenario {
	out := s
	out.Phases = append([]workload.Phase(nil), s.Phases...)
	for i := range out.Phases {
		out.Phases[i].Classes = append([]workload.TrafficClass(nil), s.Phases[i].Classes...)
	}
	return out
}
