package campaign

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hermes-sim/hermes/internal/cluster"
	"github.com/hermes-sim/hermes/internal/stats"
)

// Options controls campaign execution.
type Options struct {
	// Workers is the worker-pool width (0 = GOMAXPROCS). Worker count
	// affects wall clock only: the report is identical at any width.
	Workers int
	// Progress, when set, receives one call per finished cell (completion
	// order, not grid order).
	Progress func(done, total int, cell Cell)
}

// CellResult is one executed grid point.
type CellResult struct {
	ID     string `json:"id"`
	Group  string `json:"group"`
	Params Params `json:"params"`
	Seed   uint64 `json:"seed"`
	// WallMS is host wall clock — diagnostic only, excluded from the
	// determinism contract (every other field is covered by it).
	WallMS float64                `json:"wall_ms"`
	Report cluster.ScenarioReport `json:"report"`
	Error  string                 `json:"error,omitempty"`
}

// Estimate is a median with its bootstrap 95% confidence interval across
// a group's seed replicas.
type Estimate struct {
	Median float64 `json:"median"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
}

// GroupResult aggregates one parameter combination across its seeds.
type GroupResult struct {
	ID     string   `json:"id"`
	Params Params   `json:"params"`
	Seeds  []uint64 `json:"seeds"`
	// Latency estimates are in nanoseconds of virtual time.
	P50  Estimate `json:"p50_ns"`
	P99  Estimate `json:"p99_ns"`
	Mean Estimate `json:"mean_ns"`
	// Compliance is the SLO-compliance fraction (0 when no SLO declared).
	Compliance Estimate `json:"compliance"`
	// Shed is the shed-request count.
	Shed Estimate `json:"shed"`
}

// Report is the campaign's machine-readable output: every cell's full
// scenario report plus the per-group aggregates. It contains no
// wall-clock-derived decision and no worker count: two runs of the same
// campaign differ only in the diagnostic WallMS fields.
type Report struct {
	Name   string        `json:"name"`
	Scale  float64       `json:"scale"`
	Axes   Axes          `json:"axes"`
	Cells  []CellResult  `json:"cells"`
	Groups []GroupResult `json:"groups"`
}

// bootstrapResamples and the CI level are fixed so reports are comparable
// across runs and machines.
const (
	bootstrapResamples = 1000
	ciLevel            = 0.95
)

// Run expands the grid and executes every cell on a worker pool. The
// results slice is indexed by cell, so completion order never leaks into
// the report. The first cell error is returned alongside the (complete)
// report; healthy cells still aggregate.
func (c *Campaign) Run(opts Options) (*Report, error) {
	cells := c.Cells()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]CellResult, len(cells))
	jobs := make(chan int)
	var done sync.WaitGroup
	var mu sync.Mutex // guards progress counting only
	finished := 0
	for w := 0; w < workers; w++ {
		done.Add(1)
		go func() {
			defer done.Done()
			for i := range jobs {
				results[i] = c.runCell(cells[i])
				if opts.Progress != nil {
					mu.Lock()
					finished++
					opts.Progress(finished, len(cells), cells[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	done.Wait()

	rep := &Report{Name: c.Spec.Name, Scale: c.Scale, Axes: c.Spec.Axes, Cells: results}
	rep.Groups = aggregate(results)
	var firstErr error
	for i := range results {
		if results[i].Error != "" {
			firstErr = fmt.Errorf("cell %s: %s", results[i].ID, results[i].Error)
			break
		}
	}
	return rep, firstErr
}

// runCell builds and executes one cell on a fresh cluster.
func (c *Campaign) runCell(cell Cell) CellResult {
	res := CellResult{ID: cell.ID, Group: cell.Group, Params: cell.Params, Seed: cell.Seed}
	cfg, scn, err := c.BuildCell(cell)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	cl := cluster.New(cfg)
	defer cl.Close()
	start := time.Now()
	rep, err := cl.RunScenario(scn)
	res.WallMS = float64(time.Since(start).Nanoseconds()) / 1e6
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Report = rep
	return res
}

// aggregate folds cells into groups in first-seen (grid) order and
// computes the median + bootstrap CI of each headline metric across the
// group's seed replicas. The bootstrap seed derives from the group index,
// so aggregation is deterministic.
func aggregate(cells []CellResult) []GroupResult {
	type acc struct {
		params                           Params
		seeds                            []uint64
		p50, p99, mean, compliance, shed []float64
	}
	var order []string
	byID := make(map[string]*acc)
	for i := range cells {
		cr := &cells[i]
		if cr.Error != "" {
			continue
		}
		a := byID[cr.Group]
		if a == nil {
			a = &acc{params: cr.Params}
			byID[cr.Group] = a
			order = append(order, cr.Group)
		}
		a.seeds = append(a.seeds, cr.Seed)
		a.p50 = append(a.p50, float64(cr.Report.Cluster.P50))
		a.p99 = append(a.p99, float64(cr.Report.Cluster.P99))
		a.mean = append(a.mean, float64(cr.Report.Cluster.Mean))
		a.compliance = append(a.compliance, cr.Report.SLOCompliance)
		a.shed = append(a.shed, float64(cr.Report.Shed))
	}
	groups := make([]GroupResult, 0, len(order))
	for gi, id := range order {
		a := byID[id]
		seed := uint64(gi)*0x9e3779b97f4a7c15 + 1
		est := func(xs []float64) Estimate {
			lo, hi := stats.BootstrapCI(xs, ciLevel, bootstrapResamples, seed)
			return Estimate{Median: stats.Median(xs), Lo: lo, Hi: hi}
		}
		groups = append(groups, GroupResult{
			ID: id, Params: a.params, Seeds: a.seeds,
			P50: est(a.p50), P99: est(a.p99), Mean: est(a.mean),
			Compliance: est(a.compliance), Shed: est(a.shed),
		})
	}
	return groups
}

// Render prints the per-group comparison table: one row per parameter
// combination, medians with bootstrap CIs across seeds.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q: %d cells, %d groups (scale %g)\n",
		r.Name, len(r.Cells), len(r.Groups), r.Scale)
	wid := len("group")
	for _, g := range r.Groups {
		if len(g.ID) > wid {
			wid = len(g.ID)
		}
	}
	fmt.Fprintf(&b, "%-*s  %5s  %22s  %22s  %14s  %10s\n",
		wid, "group", "seeds", "p50", "p99", "compliance", "shed")
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "%-*s  %5d  %22s  %22s  %14s  %10s\n",
			wid, g.ID, len(g.Seeds),
			fmtDurEst(g.P50), fmtDurEst(g.P99), fmtPctEst(g.Compliance), fmtCountEst(g.Shed))
	}
	failed := 0
	for i := range r.Cells {
		if r.Cells[i].Error != "" {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(&b, "%d cell(s) failed:\n", failed)
		for i := range r.Cells {
			if r.Cells[i].Error != "" {
				fmt.Fprintf(&b, "  %s: %s\n", r.Cells[i].ID, r.Cells[i].Error)
			}
		}
	}
	return b.String()
}

func fmtDurEst(e Estimate) string {
	return fmt.Sprintf("%s [%s–%s]", fmtDurNS(e.Median), fmtDurNS(e.Lo), fmtDurNS(e.Hi))
}

func fmtDurNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func fmtPctEst(e Estimate) string {
	return fmt.Sprintf("%.2f%% [%.2f–%.2f]", e.Median*100, e.Lo*100, e.Hi*100)
}

func fmtCountEst(e Estimate) string {
	if e.Lo == e.Hi && e.Lo == e.Median {
		return fmt.Sprintf("%.0f", e.Median)
	}
	return fmt.Sprintf("%.0f [%.0f–%.0f]", e.Median, e.Lo, e.Hi)
}

// sortedGroupIDs returns the report's group IDs in lexical order — used by
// Diff so the diff output is stable regardless of grid order differences.
func (r *Report) sortedGroupIDs() []string {
	ids := make([]string, len(r.Groups))
	for i, g := range r.Groups {
		ids[i] = g.ID
	}
	sort.Strings(ids)
	return ids
}

// group returns the group with the given ID, or nil.
func (r *Report) group(id string) *GroupResult {
	for i := range r.Groups {
		if r.Groups[i].ID == id {
			return &r.Groups[i]
		}
	}
	return nil
}
