package campaign

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/hermes-sim/hermes/internal/cluster"
	"github.com/hermes-sim/hermes/internal/simtime"
)

func simDur(ns int64) simtime.Duration { return simtime.Duration(ns) }

// miniSpec is a deliberately small but fully featured campaign: an inline
// scenario with an SLO and a policies block, swept over skew × policy with
// two seed replicas — 8 cells, 4 groups, metrics on.
const miniSpec = `{
  "name": "mini-sweep",
  "metrics_period": "20ms",
  "scenario": {
    "cluster": {"nodes": 2, "shards": 4, "service": "redis", "allocator": "hermes", "mem_gb": 2},
    "scenario": {
      "name": "mini",
      "seed": 7,
      "phases": [{"name": "p", "duration": "80ms", "classes": [
        {"name": "pt", "rate": 30000, "keys": 2000, "zipf": 1.1, "reads": 0.7, "value_bytes": 1024}
      ]}],
      "slo": {"p99": "100us", "window": "20ms"},
      "policies": {"shed": {"step": 0.25, "max": 0.9}}
    }
  },
  "axes": {
    "zipf": [1.05, 1.3],
    "policies": ["adaptive", "static"],
    "seeds": [1, 2]
  }
}`

func loadMini(t *testing.T) *Campaign {
	t.Helper()
	c, err := parse([]byte(miniSpec), ".")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGridExpansion(t *testing.T) {
	c := loadMini(t)
	cells := c.Cells()
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	// Fixed axis order: zipf outer, policy inner, seed innermost.
	wantFirst := "zipf=1.05/policy=adaptive/seed=1"
	if cells[0].ID != wantFirst {
		t.Errorf("cells[0].ID = %q, want %q", cells[0].ID, wantFirst)
	}
	wantLast := "zipf=1.3/policy=static/seed=2"
	if cells[7].ID != wantLast {
		t.Errorf("cells[7].ID = %q, want %q", cells[7].ID, wantLast)
	}
	groups := map[string]int{}
	for i, cell := range cells {
		if cell.Index != i {
			t.Errorf("cells[%d].Index = %d", i, cell.Index)
		}
		groups[cell.Group]++
	}
	if len(groups) != 4 {
		t.Errorf("got %d groups, want 4: %v", len(groups), groups)
	}
	for g, n := range groups {
		if n != 2 {
			t.Errorf("group %s has %d seed replicas, want 2", g, n)
		}
	}
}

func TestGridNoAxes(t *testing.T) {
	spec := strings.Replace(miniSpec,
		`"zipf": [1.05, 1.3],
    "policies": ["adaptive", "static"],
    "seeds": [1, 2]`, "", 1)
	c, err := parse([]byte(spec), ".")
	if err != nil {
		t.Fatal(err)
	}
	cells := c.Cells()
	if len(cells) != 1 {
		t.Fatalf("axis-free campaign expanded to %d cells, want 1", len(cells))
	}
	if cells[0].Group != "base" {
		t.Errorf("group = %q, want base", cells[0].Group)
	}
	if cells[0].Seed != 7 {
		t.Errorf("seed = %d, want the scenario's own 7", cells[0].Seed)
	}
}

// stripWall zeroes the only field allowed to differ between two runs of
// the same campaign: host wall clock.
func stripWall(r *Report) {
	for i := range r.Cells {
		r.Cells[i].WallMS = 0
	}
}

// TestParallelMatchesSequential is the campaign half of the determinism
// contract: the full report (every cell's scenario report, every metrics
// window, every aggregate) is bit-identical whether cells run on one
// worker or race across four.
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := loadMini(t).Run(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := loadMini(t).Run(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	stripWall(seq)
	stripWall(par)
	if !reflect.DeepEqual(seq, par) {
		for i := range seq.Cells {
			if !reflect.DeepEqual(seq.Cells[i], par.Cells[i]) {
				t.Fatalf("cell %s differs between 1-worker and 4-worker runs", seq.Cells[i].ID)
			}
		}
		t.Fatal("aggregates differ between 1-worker and 4-worker runs")
	}
}

// TestCellMatchesStandalone is the other half: a cell's report is exactly
// what a standalone cluster produces from the (config, scenario) pair
// BuildCell returns — the harness adds orchestration, never perturbation.
func TestCellMatchesStandalone(t *testing.T) {
	c := loadMini(t)
	rep, err := c.Run(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cells := c.Cells()
	// Spot-check the first and last cells: one adaptive, one static.
	for _, idx := range []int{0, len(cells) - 1} {
		cfg, scn, err := c.BuildCell(cells[idx])
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.New(cfg)
		want, err := cl.RunScenario(scn)
		cl.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Cells[idx].Report, want) {
			t.Errorf("cell %s: campaign report differs from standalone RunScenario", cells[idx].ID)
		}
	}
}

// TestCellIsolation: cells mutate their scenario copy (zipf, rate), so the
// campaign's base scenario must stay pristine across builds.
func TestCellIsolation(t *testing.T) {
	c := loadMini(t)
	cells := c.Cells()
	_, scn1, err := c.BuildCell(cells[0]) // zipf=1.05
	if err != nil {
		t.Fatal(err)
	}
	_, scn2, err := c.BuildCell(cells[len(cells)-1]) // zipf=1.3
	if err != nil {
		t.Fatal(err)
	}
	if got := scn1.Phases[0].Classes[0].ZipfS; got != 1.05 {
		t.Errorf("first cell's zipf mutated to %v after a later build, want 1.05", got)
	}
	if got := scn2.Phases[0].Classes[0].ZipfS; got != 1.3 {
		t.Errorf("last cell's zipf = %v, want 1.3", got)
	}
	if got := c.base.Scenario.Phases[0].Classes[0].ZipfS; got != 1.1 {
		t.Errorf("base scenario's zipf mutated to %v, want the original 1.1", got)
	}
	if scn2.Policies != nil {
		t.Error("static cell kept its policies block")
	}
	if scn1.Policies == nil {
		t.Error("adaptive cell lost its policies block")
	}
}

func TestLoadRejects(t *testing.T) {
	cases := []struct {
		name string
		edit func(string) string
		want string
	}{
		{"no name", func(s string) string { return strings.Replace(s, `"name": "mini-sweep",`, "", 1) }, "needs a name"},
		{"bad policy", func(s string) string { return strings.Replace(s, `"static"`, `"frozen"`, 1) }, "unknown policy"},
		{"bad period", func(s string) string { return strings.Replace(s, `"20ms"`, `"-20ms"`, 1) }, "metrics_period"},
		{"bad scale", func(s string) string {
			return strings.Replace(s, `"metrics_period": "20ms",`, `"scale": -1, "metrics_period": "20ms",`, 1)
		}, "scale must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parse([]byte(tc.edit(miniSpec)), ".")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestCommittedCampaignsLoad pins the committed campaign specs: they must
// load (scenario_file resolution included) and expand to their documented
// grids — adaptive-sweep to its 24 cells / 8 groups, ci-smoke to 4 cells.
func TestCommittedCampaignsLoad(t *testing.T) {
	cases := []struct {
		file         string
		cells, seeds int
	}{
		{"adaptive-sweep.json", 24, 3},
		{"ci-smoke.json", 4, 1},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			c, err := Load(filepath.Join("..", "..", "examples", "campaigns", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			cells := c.Cells()
			if len(cells) != tc.cells {
				t.Fatalf("expanded to %d cells, want %d", len(cells), tc.cells)
			}
			perGroup := map[string]int{}
			for _, cell := range cells {
				perGroup[cell.Group]++
			}
			for g, n := range perGroup {
				if n != tc.seeds {
					t.Errorf("group %s has %d seed replicas, want %d", g, n, tc.seeds)
				}
			}
		})
	}
}

func TestDiff(t *testing.T) {
	base := func() *Report {
		return &Report{Name: "base", Groups: []GroupResult{{
			ID:         "zipf=1.1",
			P99:        Estimate{Median: 100e3, Lo: 95e3, Hi: 105e3},
			Compliance: Estimate{Median: 0.99, Lo: 0.985, Hi: 0.995},
		}}}
	}

	t.Run("identical reports pass", func(t *testing.T) {
		out, bad := Diff(base(), base(), 5)
		if bad {
			t.Fatalf("identical reports flagged as regression:\n%s", out)
		}
	})

	t.Run("p99 regression flagged", func(t *testing.T) {
		nr := base()
		nr.Groups[0].P99 = Estimate{Median: 130e3, Lo: 125e3, Hi: 135e3}
		out, bad := Diff(base(), nr, 5)
		if !bad {
			t.Fatalf("+30%% p99 above the old CI not flagged:\n%s", out)
		}
		if !strings.Contains(out, "p99 REGRESSED") {
			t.Errorf("diff text missing p99 flag:\n%s", out)
		}
	})

	t.Run("noise inside gate passes", func(t *testing.T) {
		nr := base()
		// +2% and inside the old CI: both bars must be crossed to flag.
		nr.Groups[0].P99 = Estimate{Median: 102e3, Lo: 98e3, Hi: 106e3}
		out, bad := Diff(base(), nr, 5)
		if bad {
			t.Fatalf("+2%% p99 inside the gate flagged:\n%s", out)
		}
	})

	t.Run("compliance regression flagged", func(t *testing.T) {
		nr := base()
		nr.Groups[0].Compliance = Estimate{Median: 0.90, Lo: 0.89, Hi: 0.91}
		out, bad := Diff(base(), nr, 5)
		if !bad {
			t.Fatalf("9-point compliance drop not flagged:\n%s", out)
		}
		if !strings.Contains(out, "compliance REGRESSED") {
			t.Errorf("diff text missing compliance flag:\n%s", out)
		}
	})

	t.Run("missing group flagged", func(t *testing.T) {
		nr := base()
		nr.Groups[0].ID = "zipf=2.0"
		out, bad := Diff(base(), nr, 5)
		if !bad {
			t.Fatal("vanished baseline group not flagged")
		}
		if !strings.Contains(out, "MISSING") || !strings.Contains(out, "new group") {
			t.Errorf("diff text missing group-set lines:\n%s", out)
		}
	})
}

func TestAggregateDeterministic(t *testing.T) {
	cells := []CellResult{
		{Group: "g", Seed: 1, Report: cluster.ScenarioReport{}},
		{Group: "g", Seed: 2, Report: cluster.ScenarioReport{}},
		{Group: "g", Seed: 3, Report: cluster.ScenarioReport{}},
	}
	for i, lat := range []int64{100, 120, 110} {
		cells[i].Report.Cluster.P99 = simDur(lat)
		cells[i].Report.SLOCompliance = 0.9 + float64(i)*0.01
	}
	a := aggregate(cells)
	b := aggregate(cells)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("aggregate is not deterministic across calls")
	}
	if len(a) != 1 || len(a[0].Seeds) != 3 {
		t.Fatalf("got %+v, want one group of three seeds", a)
	}
	if a[0].P99.Median != 110 {
		t.Errorf("P99 median = %v, want 110", a[0].P99.Median)
	}
	if a[0].P99.Lo > a[0].P99.Median || a[0].P99.Hi < a[0].P99.Median {
		t.Errorf("CI [%v, %v] does not bracket the median %v", a[0].P99.Lo, a[0].P99.Hi, a[0].P99.Median)
	}
}
