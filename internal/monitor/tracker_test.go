package monitor

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/simtime"
)

// TestTrackerRollsWindows drives the windowed-SLO tracker through three
// windows: a healthy one, a breached one, and a sparse one (below the
// sample floor) — the boundary callback must see exactly one verdict per
// closed window, at the window's closing instant.
func TestTrackerRollsWindows(t *testing.T) {
	var start simtime.Time
	window := 10 * simtime.Millisecond
	target := 100 * simtime.Microsecond
	tr := NewTracker(start, window, target, 4)

	type verdict struct {
		at       simtime.Time
		breached bool
	}
	var got []verdict
	record := func(at simtime.Time, breached bool) {
		got = append(got, verdict{at, breached})
	}

	// Window 0: plenty of samples, all under target.
	for i := 0; i < 16; i++ {
		tr.Observe(50 * simtime.Microsecond)
	}
	// Window 1 opens at 10ms.
	tr.Roll(start.Add(11*simtime.Millisecond), record)
	// Window 1: enough samples, p99 far over target.
	for i := 0; i < 16; i++ {
		tr.Observe(5 * simtime.Millisecond)
	}
	// Window 2: only 2 samples (below the floor of 4), all over target.
	tr.Roll(start.Add(21*simtime.Millisecond), record)
	tr.Observe(5 * simtime.Millisecond)
	tr.Observe(5 * simtime.Millisecond)
	// An arrival three windows later closes windows 2 and 3 in one roll.
	tr.Roll(start.Add(41*simtime.Millisecond), record)

	want := []verdict{
		{start.Add(10 * simtime.Millisecond), false}, // healthy
		{start.Add(20 * simtime.Millisecond), true},  // breached
		{start.Add(30 * simtime.Millisecond), false}, // sparse: below floor
		{start.Add(40 * simtime.Millisecond), false}, // empty
	}
	if len(got) != len(want) {
		t.Fatalf("verdicts = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("verdict %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// A roll inside the open window closes nothing.
	n := len(got)
	tr.Roll(start.Add(45*simtime.Millisecond), record)
	if len(got) != n {
		t.Error("mid-window roll closed a window")
	}
}

func TestTrackerRejectsBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracker accepted a non-positive window")
		}
	}()
	NewTracker(simtime.Time(0), 0, simtime.Millisecond, 1)
}
