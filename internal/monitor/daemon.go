package monitor

import (
	"fmt"
	"sort"

	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

// Config tunes the daemon.
type Config struct {
	// Period is the monitoring interval.
	Period simtime.Duration
	// AdvThreshold is the node memory-usage fraction above which the
	// daemon starts advising file-cache release (adv_thr in §3.3).
	AdvThreshold float64
	// FileCacheTarget is the fraction of total memory the batch file
	// cache is driven below once advising starts.
	FileCacheTarget float64
}

// DefaultConfig returns the settings used in the evaluation.
func DefaultConfig() Config {
	return Config{
		Period:          100 * simtime.Millisecond,
		AdvThreshold:    0.90,
		FileCacheTarget: 0.05,
	}
}

// Validate reports whether the configuration is well-formed, naming the
// offending field so config loaders can surface the message verbatim.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("monitor: Period must be > 0 (got %v)", c.Period)
	}
	if c.AdvThreshold <= 0 || c.AdvThreshold > 1 {
		return fmt.Errorf("monitor: AdvThreshold must be in (0, 1] (got %v)", c.AdvThreshold)
	}
	return nil
}

// Stats counts daemon activity for the overhead experiment (§5.5).
type Stats struct {
	Scans         int64
	AdviseCalls   int64
	PagesReleased int64
}

// Daemon is the memory monitor daemon. One runs per node.
type Daemon struct {
	k        *kernel.Kernel
	cfg      Config
	registry *Registry
	task     *simtime.PeriodicTask
	stats    Stats
}

// NewDaemon starts the daemon on the node's scheduler. Stop releases it.
func NewDaemon(k *kernel.Kernel, registry *Registry, cfg Config) *Daemon {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Daemon{k: k, cfg: cfg, registry: registry}
	d.task = simtime.NewPeriodicTask(k.Scheduler(), cfg.Period, d.tick)
	return d
}

// Registry returns the daemon's shared registry.
func (d *Daemon) Registry() *Registry { return d.registry }

// Stats returns a snapshot of the daemon's counters.
func (d *Daemon) Stats() Stats { return d.stats }

// Utilization returns the daemon's virtual-CPU share (overhead reporting).
func (d *Daemon) Utilization(now simtime.Time) float64 { return d.task.Utilization(now) }

// Stop halts the daemon.
func (d *Daemon) Stop() { d.task.Stop() }

// tick is one monitoring pass: when used memory exceeds adv_thr, advise the
// kernel to drop batch jobs' file cache in largest-file-first order until
// the batch file cache is below target or exhausted (§3.3).
func (d *Daemon) tick(now simtime.Time) simtime.Duration {
	d.stats.Scans++
	// The bookkeeping scan itself is cheap but not free; the paper reports
	// ~2.4% CPU for the daemon.
	busy := 50 * simtime.Microsecond
	if d.k.UsedFraction() < d.cfg.AdvThreshold {
		return busy
	}
	files := d.batchFilesLargestFirst()
	targetPages := int64(d.cfg.FileCacheTarget * float64(d.k.TotalPages()))
	at := now.Add(busy)
	for _, f := range files {
		if d.batchCachedPages() <= targetPages {
			break
		}
		if f.CachedPages() == 0 {
			continue
		}
		released, cost := d.k.FadviseDontNeed(at, f)
		busy += cost
		at = at.Add(cost)
		d.stats.AdviseCalls++
		d.stats.PagesReleased += released
	}
	return busy
}

// batchFilesLargestFirst collects the registered batch jobs' files sorted
// by cached size descending: releasing the largest file first makes a large
// chunk of memory available at once and minimises advise calls (§3.3).
func (d *Daemon) batchFilesLargestFirst() []*kernel.File {
	var files []*kernel.File
	for _, pid := range d.registry.BatchPIDs() {
		files = append(files, d.k.FilesOwnedBy(pid)...)
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].CachedPages() != files[j].CachedPages() {
			return files[i].CachedPages() > files[j].CachedPages()
		}
		return files[i].Name < files[j].Name
	})
	return files
}

func (d *Daemon) batchCachedPages() int64 {
	var n int64
	for _, pid := range d.registry.BatchPIDs() {
		for _, f := range d.k.FilesOwnedBy(pid) {
			n += f.CachedPages()
		}
	}
	return n
}
