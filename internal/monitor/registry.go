// Package monitor implements the paper's memory monitor daemon (§3.3, §4):
// a per-node process that keeps the administrator-supplied sets of
// latency-critical services and batch jobs in a shared-memory registry, and
// proactively advises the kernel to release batch jobs' file-cache pages
// under memory pressure, largest file first.
package monitor

import "github.com/hermes-sim/hermes/internal/kernel"

// Registry is the shared-memory area through which the administrator, the
// daemon and the modified Glibc communicate (§4: "it uses the shared memory
// to store all the process IDs of latency-critical services").
type Registry struct {
	latencyCritical map[kernel.PID]bool
	batch           map[kernel.PID]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		latencyCritical: make(map[kernel.PID]bool),
		batch:           make(map[kernel.PID]bool),
	}
}

// AddLatencyCritical registers a latency-critical service. The modified
// Glibc's lazy initialisation consults this set: a process that finds its
// PID here starts the management thread.
func (r *Registry) AddLatencyCritical(pid kernel.PID) { r.latencyCritical[pid] = true }

// RemoveLatencyCritical demotes a process back to default Glibc behaviour.
func (r *Registry) RemoveLatencyCritical(pid kernel.PID) { delete(r.latencyCritical, pid) }

// IsLatencyCritical reports whether pid is registered as latency-critical.
func (r *Registry) IsLatencyCritical(pid kernel.PID) bool { return r.latencyCritical[pid] }

// AddBatch registers a batch job whose file cache may be proactively
// released.
func (r *Registry) AddBatch(pid kernel.PID) { r.batch[pid] = true }

// RemoveBatch unregisters a batch job.
func (r *Registry) RemoveBatch(pid kernel.PID) { delete(r.batch, pid) }

// IsBatch reports whether pid is registered as a batch job.
func (r *Registry) IsBatch(pid kernel.PID) bool { return r.batch[pid] }

// BatchPIDs returns the registered batch jobs (order unspecified).
func (r *Registry) BatchPIDs() []kernel.PID {
	out := make([]kernel.PID, 0, len(r.batch))
	for pid := range r.batch {
		out = append(out, pid)
	}
	return out
}

// LatencyCriticalCount returns the number of registered services.
func (r *Registry) LatencyCriticalCount() int { return len(r.latencyCritical) }
