package monitor

import (
	"github.com/hermes-sim/hermes/internal/simtime"
	"github.com/hermes-sim/hermes/internal/stats"
)

// Tracker is the control plane's observation primitive: a windowed latency
// histogram on the virtual timeline. Served latencies stream in through
// Observe; Roll closes every fixed-width sampling window an arrival
// crossed and reports, per window, whether its p99 (given enough samples)
// breached the target. The histogram is Reset between windows — the
// stats.Histogram Reset/Merge contract keeps each window's digest exact.
//
// All state advances in the order Roll/Observe are called, so a caller
// that feeds a tracker from a single node's arrival-ordered stream gets a
// trajectory that is a pure function of that stream — the property the
// cluster's adaptive controllers rest their engine bit-identity on.
type Tracker struct {
	hist   *stats.Histogram
	widx   int64 // windows closed since start
	start  simtime.Time
	window simtime.Duration
	target simtime.Duration
	floor  int64
}

// NewTracker creates a tracker sampling p99 against target over fixed
// windows of the given width, starting the first window at start. A window
// with fewer than floor samples never reports a breach.
func NewTracker(start simtime.Time, window, target simtime.Duration, floor int64) *Tracker {
	if window <= 0 {
		panic("monitor: tracker window must be > 0")
	}
	return &Tracker{
		hist:   stats.NewHistogram(),
		start:  start,
		window: window,
		target: target,
		floor:  floor,
	}
}

// Observe records one served latency into the current window.
func (t *Tracker) Observe(lat simtime.Duration) { t.hist.Record(lat) }

// Roll closes every window boundary at or before the instant, calling
// boundary with each window's closing instant and breach verdict (p99 over
// target with at least floor samples), then resetting the histogram for
// the next window.
func (t *Tracker) Roll(at simtime.Time, boundary func(at simtime.Time, breached bool)) {
	w := int64(at.Sub(t.start) / t.window)
	for t.widx < w {
		breached := t.hist.Count() >= t.floor && t.hist.Quantile(99) > t.target
		boundary(t.start.Add(simtime.Duration(t.widx+1)*t.window), breached)
		t.hist.Reset()
		t.widx++
	}
}

// Window returns the tracker's sampling-window width.
func (t *Tracker) Window() simtime.Duration { return t.window }

// Samples returns the number of latencies observed in the open window.
func (t *Tracker) Samples() int64 { return t.hist.Count() }
