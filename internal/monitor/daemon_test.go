package monitor

import (
	"testing"

	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/simtime"
)

func newTestNode(t *testing.T) (*kernel.Kernel, *simtime.Scheduler) {
	t.Helper()
	s := simtime.NewScheduler()
	cfg := kernel.DefaultConfig()
	cfg.TotalMemory = 256 << 20
	cfg.SwapBytes = 128 << 20
	k := kernel.New(s, cfg)
	return k, s
}

func TestRegistrySets(t *testing.T) {
	r := NewRegistry()
	r.AddLatencyCritical(1)
	r.AddBatch(2)
	r.AddBatch(3)
	if !r.IsLatencyCritical(1) || r.IsLatencyCritical(2) {
		t.Fatal("latency-critical set wrong")
	}
	if !r.IsBatch(2) || !r.IsBatch(3) || r.IsBatch(1) {
		t.Fatal("batch set wrong")
	}
	if got := len(r.BatchPIDs()); got != 2 {
		t.Fatalf("batch pids = %d, want 2", got)
	}
	r.RemoveBatch(2)
	if r.IsBatch(2) {
		t.Fatal("remove batch failed")
	}
	r.RemoveLatencyCritical(1)
	if r.IsLatencyCritical(1) || r.LatencyCriticalCount() != 0 {
		t.Fatal("remove latency-critical failed")
	}
}

func TestDaemonIdleBelowThreshold(t *testing.T) {
	k, s := newTestNode(t)
	reg := NewRegistry()
	d := NewDaemon(k, reg, DefaultConfig())
	defer d.Stop()

	batch := k.CreateProcess("batch")
	reg.AddBatch(batch.PID)
	f := k.CreateFile("input.dat", 2048, batch.PID)
	k.ReadFile(s.Now(), f, 2048)

	s.Advance(simtime.Second)
	if d.Stats().AdviseCalls != 0 {
		t.Fatal("daemon must not advise below adv_thr")
	}
	if f.CachedPages() != 2048 {
		t.Fatal("file cache must be untouched below adv_thr")
	}
	if d.Stats().Scans == 0 {
		t.Fatal("daemon must scan periodically")
	}
}

func TestDaemonReleasesBatchFileCacheUnderPressure(t *testing.T) {
	k, s := newTestNode(t)
	reg := NewRegistry()
	d := NewDaemon(k, reg, DefaultConfig())
	defer d.Stop()

	batch := k.CreateProcess("batch")
	reg.AddBatch(batch.PID)
	small := k.CreateFile("small.dat", 1024, batch.PID)
	big := k.CreateFile("big.dat", 8192, batch.PID)
	k.ReadFile(s.Now(), small, 1024)
	k.ReadFile(s.Now(), big, 8192)

	// Push node usage over adv_thr with anon memory.
	hog := k.CreateProcess("hog")
	target := int64(float64(k.TotalPages())*0.95) - (k.TotalPages() - k.FreePages())
	r, _ := k.Mmap(s.Now(), hog, target)
	k.FaultIn(s.Now(), r, target)

	s.Advance(simtime.Second)
	st := d.Stats()
	if st.AdviseCalls == 0 || st.PagesReleased == 0 {
		t.Fatalf("daemon must advise under pressure: %+v", st)
	}
	// Largest file first: big.dat must be dropped before small.dat is
	// considered; with the target met after big.dat, small.dat survives.
	if big.CachedPages() != 0 {
		t.Fatal("largest file must be released first")
	}
	if small.CachedPages() == 0 {
		t.Fatal("small file released although target was already met")
	}
	k.CheckInvariants()
}

func TestDaemonIgnoresNonBatchFiles(t *testing.T) {
	k, s := newTestNode(t)
	reg := NewRegistry()
	d := NewDaemon(k, reg, DefaultConfig())
	defer d.Stop()

	svc := k.CreateProcess("redis") // not registered as batch
	f := k.CreateFile("service.rdb", 4096, svc.PID)
	k.ReadFile(s.Now(), f, 4096)

	hog := k.CreateProcess("hog")
	target := int64(float64(k.TotalPages())*0.95) - (k.TotalPages() - k.FreePages())
	r, _ := k.Mmap(s.Now(), hog, target)
	k.FaultIn(s.Now(), r, target)

	s.Advance(simtime.Second)
	if f.CachedPages() != 4096 {
		t.Fatal("daemon must never touch non-batch files")
	}
	if d.Stats().PagesReleased != 0 {
		t.Fatal("nothing batch-owned to release")
	}
}

func TestDaemonUtilizationSmall(t *testing.T) {
	k, s := newTestNode(t)
	reg := NewRegistry()
	d := NewDaemon(k, reg, DefaultConfig())
	defer d.Stop()
	s.Advance(10 * simtime.Second)
	util := d.Utilization(s.Now())
	// §5.5 reports ~2.4% CPU for the daemon; idle scanning must be well
	// under that.
	if util > 0.024 {
		t.Fatalf("daemon utilisation %.3f%% too high", util*100)
	}
}

func TestDaemonInvalidConfigPanics(t *testing.T) {
	k, _ := newTestNode(t)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid daemon config must panic")
		}
	}()
	NewDaemon(k, NewRegistry(), Config{Period: 0})
}
