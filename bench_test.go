// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each iteration regenerates the artifact end-to-end on the
// simulated testbed and reports the headline comparison as benchmark
// metrics, so `go test -bench=. -benchmem` reproduces the whole evaluation.
//
// Scale: benchmarks default to the CI-sized quick scale; set
// HERMES_BENCH_SCALE=full for the paper-sized workloads (1 GB
// micro-benchmark runs, multi-hour co-location windows).
package hermes_test

import (
	"os"
	"testing"

	hermes "github.com/hermes-sim/hermes"
)

func benchScale() hermes.Scale {
	if os.Getenv("HERMES_BENCH_SCALE") == "full" {
		return hermes.FullScale()
	}
	return hermes.QuickScale()
}

// BenchmarkFig2QueryBreakdown regenerates Figure 2: the insert share of
// Rocksdb query latency (paper: 74.7% avg small, 93.5% avg large).
func BenchmarkFig2QueryBreakdown(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := hermes.Fig2(scale, 1)
		b.ReportMetric(r.Small["avg"], "small-insert-%")
		b.ReportMetric(r.Large["avg"], "large-insert-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig3PressureCDF regenerates Figure 3: Glibc allocation latency
// under idle/file/anon regimes (paper: anon +35.6% avg, file +10.8%).
func BenchmarkFig3PressureCDF(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := hermes.Fig3(scale, 1)
		idle, anon, file := r.Idle.Summarize(), r.Anon.Summarize(), r.File.Summarize()
		b.ReportMetric(pct(idle.Mean, anon.Mean), "anon-avg-inflation-%")
		b.ReportMetric(pct(idle.Mean, file.Mean), "file-avg-inflation-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig6GradualReservation regenerates the §3.2.1 ablation: gradual
// vs at-once reservation lock holds.
func BenchmarkFig6GradualReservation(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := hermes.Fig6Ablation(scale, 1)
		b.ReportMetric(float64(r.GradualMaxHold.Microseconds()), "gradual-hold-µs")
		b.ReportMetric(float64(r.AtOnceMaxHold.Microseconds()), "atonce-hold-µs")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig7Small regenerates Figure 7: small-request CDFs across the
// four allocators and three regimes (paper: Hermes cuts Glibc's average by
// 16.0/29.3/9.4% on dedicated/anon/file).
func BenchmarkFig7Small(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := hermes.Fig7(scale, 1)
		b.ReportMetric(r.Reduction("dedicated", "avg"), "dedicated-avg-red-%")
		b.ReportMetric(r.Reduction("anon", "avg"), "anon-avg-red-%")
		b.ReportMetric(r.Reduction("file", "avg"), "file-avg-red-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig8Large regenerates Figure 8: large-request CDFs (paper
// reductions: 12.1/54.4/21.7% avg).
func BenchmarkFig8Large(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := hermes.Fig8(scale, 1)
		b.ReportMetric(r.Reduction("dedicated", "avg"), "dedicated-avg-red-%")
		b.ReportMetric(r.Reduction("anon", "avg"), "anon-avg-red-%")
		b.ReportMetric(r.Reduction("file", "avg"), "file-avg-red-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig9RedisLatency regenerates Figures 9, 11 and 13: Redis p90
// latency, tail CDF and SLO violation across pressure levels.
func BenchmarkFig9RedisLatency(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		f := hermes.Fig9(scale, 1)
		b.ReportMetric(f.Small.ViolationReduction(), "small-violation-red-%")
		b.ReportMetric(f.Large.ViolationReduction(), "large-violation-red-%")
		if i == 0 {
			b.Log("\n" + f.RenderLatency("Figure 9") + "\n" +
				f.RenderTail("Figure 11") + "\n" + f.RenderViolation("Figure 13"))
		}
	}
}

// BenchmarkFig10RocksdbLatency regenerates Figures 10, 12 and 14 (paper:
// Hermes cuts Rocksdb SLO violation by up to 84.3%).
func BenchmarkFig10RocksdbLatency(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		f := hermes.Fig10(scale, 1)
		b.ReportMetric(f.Small.ViolationReduction(), "small-violation-red-%")
		b.ReportMetric(f.Large.ViolationReduction(), "large-violation-red-%")
		if i == 0 {
			b.Log("\n" + f.RenderLatency("Figure 10") + "\n" +
				f.RenderTail("Figure 12") + "\n" + f.RenderViolation("Figure 14"))
		}
	}
}

// BenchmarkFig15SensitivitySmall regenerates Figure 15: RSV_FACTOR 0.5–3.0
// for small requests.
func BenchmarkFig15SensitivitySmall(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := hermes.Fig15(scale, 1)
		b.ReportMetric(r.Reduction("anon", 3, "avg"), "factor2-anon-avg-red-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig16SensitivityLarge regenerates Figure 16: RSV_FACTOR 0.5–3.0
// for large requests.
func BenchmarkFig16SensitivityLarge(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := hermes.Fig16(scale, 1)
		b.ReportMetric(r.Reduction("anon", 3, "avg"), "factor2-anon-avg-red-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkTable1Throughput regenerates Table 1: batch-job throughput under
// Default/Hermes/Killing/Dedicated (paper: Redis 212/194/123/0).
func BenchmarkTable1Throughput(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := hermes.Table1(scale, 1)
		b.ReportMetric(float64(r.Jobs["Redis"]["Default"]), "redis-default-jobs")
		b.ReportMetric(float64(r.Jobs["Redis"]["Hermes"]), "redis-hermes-jobs")
		b.ReportMetric(float64(r.Jobs["Redis"]["Killing"]), "redis-killing-jobs")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkOverhead regenerates the §5.5 overhead accounting (paper: mgmt
// ~0.4% CPU paced, 6–6.4 MB reserved).
func BenchmarkOverhead(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := hermes.Overhead(scale, 1)
		b.ReportMetric(r.MgmtCPUPaced*100, "mgmt-cpu-paced-%")
		b.ReportMetric(float64(r.ReservedSmall)/(1<<20), "reserved-small-MB")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkMlockAblation regenerates the §4 mlock-vs-touch comparison
// (paper: mlock ≥40% faster).
func BenchmarkMlockAblation(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := hermes.MlockAblation(scale, 1)
		speedup := 0.0
		if r.MgmtBusyTouch > 0 {
			speedup = (1 - float64(r.MgmtBusyMlock)/float64(r.MgmtBusyTouch)) * 100
		}
		b.ReportMetric(speedup, "mlock-speedup-%")
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// pct returns the percentage inflation of v over base.
func pct(base, v interface{ Nanoseconds() int64 }) float64 {
	bn := base.Nanoseconds()
	if bn == 0 {
		return 0
	}
	return (float64(v.Nanoseconds())/float64(bn) - 1) * 100
}
