// hermes-monitor demonstrates the memory monitor daemon: batch jobs fill
// the page cache, anonymous memory squeezes the node, and the daemon's
// proactive reclamation (largest-file-first fadvise) releases the batch
// cache before the latency-critical service hits the kernel's slow reclaim
// path. Prints a timeline of free memory, file cache, and daemon activity.
//
// With -scenario it instead runs an adaptive scenario on a cluster and
// prints the control plane's decision timeline: every controller action
// (shed, batch, allocator, watermark) in virtual-time order, then the SLO
// compliance the run achieved.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	hermes "github.com/hermes-sim/hermes"
	"github.com/hermes-sim/hermes/internal/batch"
)

func main() {
	seconds := flag.Int("seconds", 30, "simulated seconds to run")
	scenario := flag.String("scenario", "", "run this scenario file and print the controller decision timeline")
	scale := flag.Float64("scale", 1, "multiply the scenario's durations and request budgets by this factor")
	flag.Parse()

	if *scenario != "" {
		if err := runAdaptive(*scenario, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "hermes-monitor:", err)
			os.Exit(1)
		}
		return
	}

	cfg := hermes.DefaultNodeConfig()
	cfg.Kernel.TotalMemory = 8 << 30
	cfg.Kernel.SwapBytes = 8 << 30
	node := hermes.NewNode(cfg)
	k := node.Kernel()

	bcfg := batch.DefaultConfig()
	bcfg.TargetBytes = 7 << 30
	bcfg.InputBytes = 1 << 30
	bcfg.WorkDuration = 15 * time.Second
	runner := batch.NewRunner(k, bcfg)
	defer runner.Stop()
	k.SetOOMHandler(runner.HandleOOM)

	reg := node.NewRegistry()
	h := node.NewHermesAllocatorWith("svc", hermes.DefaultHermesConfig(), reg, true)
	defer h.Close()
	for _, pid := range runner.PIDs() {
		reg.AddBatch(pid)
	}
	daemon := node.StartDaemon(reg, hermes.DefaultDaemonConfig())
	defer daemon.Stop()

	fmt.Printf("%-8s %-12s %-12s %-10s %-12s %-10s\n",
		"t", "free", "file-cache", "used%", "fadvised", "kswapd")
	for i := 0; i < *seconds; i++ {
		// Keep the service allocating so pressure matters.
		for j := 0; j < 200; j++ {
			b, c := h.Malloc(node.Now(), 4096)
			node.Advance(c + h.Touch(node.Now().Add(c), b))
		}
		for _, pid := range runner.PIDs() {
			reg.AddBatch(pid)
		}
		node.Advance(time.Second)
		st := daemon.Stats()
		fmt.Printf("%-8s %-12s %-12s %-10.1f %-12d %-10v\n",
			fmt.Sprintf("%ds", i+1),
			fmt.Sprintf("%.0fMB", float64(k.FreeBytes())/(1<<20)),
			fmt.Sprintf("%.0fMB", float64(k.FileCachePages()*k.PageSize())/(1<<20)),
			k.UsedFraction()*100, st.PagesReleased, k.KswapdActive())
	}
	fmt.Printf("\ndaemon: %d scans, %d advise calls, %d pages released, CPU %.2f%%\n",
		daemon.Stats().Scans, daemon.Stats().AdviseCalls, daemon.Stats().PagesReleased,
		daemon.Utilization(node.Now())*100)
	fmt.Printf("batch: %d jobs completed, %d kills\n", runner.Completed, runner.Kills)
}

// runAdaptive runs the scenario and prints the adaptive control plane's
// decision timeline.
func runAdaptive(path string, scale float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := hermes.ParseScenarioSpec(data)
	if err != nil {
		return err
	}
	cfg, err := spec.Overrides.Apply(hermes.DefaultClusterConfig())
	if err != nil {
		return err
	}
	cfg.Seed = spec.Scenario.Seed
	scn := spec.Scenario
	if scale != 1 {
		scn = scn.Scaled(scale)
	}
	if scn.Policies == nil {
		return fmt.Errorf("scenario %q declares no policies: nothing for the control plane to decide", scn.Name)
	}

	c := hermes.NewCluster(cfg)
	defer c.Close()
	rep, err := c.RunScenario(scn)
	if err != nil {
		return err
	}

	fmt.Printf("scenario %q: %d controller decisions\n\n", scn.Name, len(rep.Actions))
	fmt.Print(hermes.RenderActionTimeline(rep.Actions))
	fmt.Printf("\nslo: compliance=%.2f%%\n", rep.SLOCompliance*100)
	return nil
}
