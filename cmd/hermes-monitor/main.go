// hermes-monitor demonstrates the memory monitor daemon: batch jobs fill
// the page cache, anonymous memory squeezes the node, and the daemon's
// proactive reclamation (largest-file-first fadvise) releases the batch
// cache before the latency-critical service hits the kernel's slow reclaim
// path. Prints a timeline of free memory, file cache, and daemon activity.
package main

import (
	"flag"
	"fmt"
	"time"

	hermes "github.com/hermes-sim/hermes"
	"github.com/hermes-sim/hermes/internal/batch"
)

func main() {
	seconds := flag.Int("seconds", 30, "simulated seconds to run")
	flag.Parse()

	cfg := hermes.DefaultNodeConfig()
	cfg.Kernel.TotalMemory = 8 << 30
	cfg.Kernel.SwapBytes = 8 << 30
	node := hermes.NewNode(cfg)
	k := node.Kernel()

	bcfg := batch.DefaultConfig()
	bcfg.TargetBytes = 7 << 30
	bcfg.InputBytes = 1 << 30
	bcfg.WorkDuration = 15 * time.Second
	runner := batch.NewRunner(k, bcfg)
	defer runner.Stop()
	k.SetOOMHandler(runner.HandleOOM)

	reg := node.NewRegistry()
	h := node.NewHermesAllocatorWith("svc", hermes.DefaultHermesConfig(), reg, true)
	defer h.Close()
	for _, pid := range runner.PIDs() {
		reg.AddBatch(pid)
	}
	daemon := node.StartDaemon(reg, hermes.DefaultDaemonConfig())
	defer daemon.Stop()

	fmt.Printf("%-8s %-12s %-12s %-10s %-12s %-10s\n",
		"t", "free", "file-cache", "used%", "fadvised", "kswapd")
	for i := 0; i < *seconds; i++ {
		// Keep the service allocating so pressure matters.
		for j := 0; j < 200; j++ {
			b, c := h.Malloc(node.Now(), 4096)
			node.Advance(c + h.Touch(node.Now().Add(c), b))
		}
		for _, pid := range runner.PIDs() {
			reg.AddBatch(pid)
		}
		node.Advance(time.Second)
		st := daemon.Stats()
		fmt.Printf("%-8s %-12s %-12s %-10.1f %-12d %-10v\n",
			fmt.Sprintf("%ds", i+1),
			fmt.Sprintf("%.0fMB", float64(k.FreeBytes())/(1<<20)),
			fmt.Sprintf("%.0fMB", float64(k.FileCachePages()*k.PageSize())/(1<<20)),
			k.UsedFraction()*100, st.PagesReleased, k.KswapdActive())
	}
	fmt.Printf("\ndaemon: %d scans, %d advise calls, %d pages released, CPU %.2f%%\n",
		daemon.Stats().Scans, daemon.Stats().AdviseCalls, daemon.Stats().PagesReleased,
		daemon.Utilization(node.Now())*100)
	fmt.Printf("batch: %d jobs completed, %d kills\n", runner.Completed, runner.Kills)
}
