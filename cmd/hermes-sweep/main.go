// hermes-sweep runs experiment campaigns: a declarative JSON spec names a
// base scenario and a grid of axes (allocator, skew, rate scale, fleet
// size, adaptive-vs-static policies, seed replicas); the runner expands
// the grid, executes the cells in parallel across cores, and aggregates
// seed replicas into per-group medians with bootstrap confidence
// intervals. Worker count changes wall clock only — the report is
// bit-identical at any width, and each cell matches a standalone
// hermes-cluster run of the same spec and seed.
//
//	hermes-sweep -campaign examples/campaigns/adaptive-sweep.json -out report.json
//	hermes-sweep -diff baseline.json report.json -gate-pct 5
//	hermes-sweep -validate-metrics run.prom
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	hermes "github.com/hermes-sim/hermes"
	"github.com/hermes-sim/hermes/internal/campaign"
)

func main() {
	campaignPath := flag.String("campaign", "", "campaign spec file to run")
	workers := flag.Int("workers", 0, "parallel cell workers (0 = GOMAXPROCS); affects wall clock only, never results")
	out := flag.String("out", "", "write the campaign report JSON here")
	scale := flag.Float64("scale", 1, "multiply the campaign's scenario scale by this factor (CI shrink knob)")
	jsonOut := flag.Bool("json", false, "print the report JSON to stdout instead of the comparison table")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress lines")
	diff := flag.Bool("diff", false, "compare two report files (old new); exit 1 when a regression crosses the gate")
	gatePct := flag.Float64("gate-pct", 5, "noise gate for -diff: percent p99 growth / compliance points that count as a regression")
	validate := flag.String("validate-metrics", "", "parse a metrics file (.prom/.txt Prometheus, else JSON-lines) and report the sample count")
	flag.Parse()

	if err := run(*campaignPath, *workers, *out, *scale, *jsonOut, *quiet, *diff, *gatePct, *validate); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-sweep:", err)
		os.Exit(1)
	}
}

func run(campaignPath string, workers int, out string, scale float64, jsonOut, quiet, diff bool, gatePct float64, validate string) error {
	switch {
	case diff:
		if flag.NArg() != 2 {
			return fmt.Errorf("-diff wants exactly two report files (old new), got %d args", flag.NArg())
		}
		return runDiff(flag.Arg(0), flag.Arg(1), gatePct)
	case validate != "":
		return runValidate(validate)
	case campaignPath != "":
		return runCampaign(campaignPath, workers, out, scale, jsonOut, quiet)
	default:
		return fmt.Errorf("nothing to do: pass -campaign, -diff or -validate-metrics")
	}
}

func runCampaign(path string, workers int, out string, scale float64, jsonOut, quiet bool) error {
	c, err := campaign.Load(path)
	if err != nil {
		return err
	}
	if scale != 1 {
		if err := c.ScaleBy(scale); err != nil {
			return err
		}
	}
	opts := campaign.Options{Workers: workers}
	if !quiet {
		opts.Progress = func(done, total int, cell campaign.Cell) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, cell.ID)
		}
	}
	rep, runErr := c.Run(opts)
	if jsonOut {
		if err := hermes.WriteReportJSON(os.Stdout, rep); err != nil {
			return err
		}
	} else {
		fmt.Print(rep.Render())
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := hermes.WriteReportJSON(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d cells, %d groups)\n", out, len(rep.Cells), len(rep.Groups))
	}
	return runErr
}

func runDiff(oldPath, newPath string, gatePct float64) error {
	oldRep, err := readReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return err
	}
	text, regressed := campaign.Diff(oldRep, newRep, gatePct)
	fmt.Print(text)
	if regressed {
		return fmt.Errorf("regression beyond the %.1f%% gate", gatePct)
	}
	return nil
}

func readReport(path string) (*campaign.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep campaign.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runValidate parses a metrics export — the CI format gate for both the
// Prometheus text exposition and the JSON-lines stream.
func runValidate(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if isProm(path) {
		n, err := hermes.ParseMetricsPrometheus(f)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: valid Prometheus exposition, %d samples\n", path, n)
		return nil
	}
	samples, err := hermes.ParseMetricsJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid metrics JSONL, %d windows\n", path, len(samples))
	return nil
}

func isProm(path string) bool {
	for _, ext := range []string{".prom", ".txt"} {
		if len(path) > len(ext) && path[len(path)-len(ext):] == ext {
			return true
		}
	}
	return false
}
