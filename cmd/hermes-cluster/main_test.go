package main

import (
	"bytes"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	hermes "github.com/hermes-sim/hermes"
)

// writeSpec drops a scenario document into a temp dir and returns its path.
func writeSpec(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validSpecDoc = `{
  "name": "smoke",
  "seed": 3,
  "phases": [
    {"name": "p", "duration": "5ms",
     "classes": [{"name": "c", "rate": 20000, "keys": 500, "reads": 0.5, "value_bytes": 512}]}
  ]
}`

// TestRunScenarioFileErrors: every way a -scenario invocation can be
// malformed — a missing file, broken JSON, an unknown event kind, a bad
// duration, an invalid -scale — surfaces as an error that names the
// offending field, never a panic and never a silent fallback run.
func TestRunScenarioFileErrors(t *testing.T) {
	cfg := hermes.DefaultClusterConfig()
	cfg.Nodes = 2
	cfg.Shards = 4
	cfg.Kernel.TotalMemory = 1 << 30
	cfg.Kernel.SwapBytes = 1 << 30
	kinds := []hermes.AllocatorKind{hermes.AllocGlibc}
	opts := func(path string, scale float64) scenarioOpts {
		return scenarioOpts{path: path, scale: scale, seed: 1, json: true}
	}
	cases := []struct {
		name string
		opts scenarioOpts
		want string
	}{
		{"missing file", opts(filepath.Join(t.TempDir(), "nope.json"), 1), "no such file"},
		{"broken json", opts(writeSpec(t, `{"name": "x",`), 1), "scenario spec JSON"},
		{"unknown event kind", opts(writeSpec(t,
			`{"name":"t","phases":[{"name":"p","duration":"5ms","classes":[{"name":"c","rate":1000,"keys":100,"reads":0.5,"value_bytes":512}]}],"events":[{"at":"1ms","kind":"explode"}]}`), 1),
			"unknown event kind"},
		{"malformed duration", opts(writeSpec(t,
			`{"name":"t","phases":[{"name":"p","duration":"later","classes":[{"name":"c","rate":1000,"keys":100,"reads":0.5,"value_bytes":512}]}]}`), 1),
			`bad duration "later"`},
		{"policies without slo", opts(writeSpec(t,
			`{"name":"t","phases":[{"name":"p","duration":"5ms","classes":[{"name":"c","rate":1000,"keys":100,"reads":0.5,"value_bytes":512}]}],"policies":{"shed":{"step":0.2,"max":0.8}}}`), 1),
			"Policies requires an SLO"},
		{"zero scale", opts(writeSpec(t, validSpecDoc), 0), "-scale must be a positive"},
		{"NaN scale", opts(writeSpec(t, validSpecDoc), math.NaN()), "-scale must be a positive"},
		{"infinite scale", opts(writeSpec(t, validSpecDoc), math.Inf(1)), "-scale must be a positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runScenarioFile(cfg, kinds, tc.opts)
			if err == nil {
				t.Fatal("malformed -scenario invocation accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestRunScenarioFileSmoke: a well-formed spec runs end to end through the
// same entry point the CLI uses.
func TestRunScenarioFileSmoke(t *testing.T) {
	cfg := hermes.DefaultClusterConfig()
	cfg.Nodes = 2
	cfg.Shards = 4
	cfg.Kernel.TotalMemory = 1 << 30
	cfg.Kernel.SwapBytes = 1 << 30
	// json: true keeps the table renderer off the test's stdout.
	err := runScenarioFile(cfg, []hermes.AllocatorKind{hermes.AllocGlibc},
		scenarioOpts{path: writeSpec(t, validSpecDoc), scale: 1, seed: 1, json: true})
	if err != nil {
		t.Fatalf("valid scenario failed: %v", err)
	}
}

// TestCLIExitsNonZeroOnInvalidScenario builds the real binary and feeds it
// a malformed -scenario file: the process must exit non-zero with a
// field-named message on stderr — the contract CI smoke steps rely on.
func TestCLIExitsNonZeroOnInvalidScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary build")
	}
	bin := filepath.Join(t.TempDir(), "hermes-cluster")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build failed: %v\n%s", err, out)
	}
	spec := writeSpec(t,
		`{"name":"t","phases":[{"name":"p","duration":"5ms","classes":[{"name":"c","rate":1000,"keys":100,"reads":0.5,"value_bytes":512}]}],"events":[{"at":"1ms","kind":"degrade-node","node":0,"factor":0.5}]}`)
	var stderr bytes.Buffer
	cmd := exec.Command(bin, "-scenario", spec)
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatal("CLI exited zero on a malformed scenario")
	}
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("CLI did not run: %v", err)
	}
	if exit.ExitCode() != 1 {
		t.Fatalf("exit code %d, want 1", exit.ExitCode())
	}
	msg := stderr.String()
	if !strings.Contains(msg, "hermes-cluster:") || !strings.Contains(msg, "Factor must be > 1") {
		t.Fatalf("stderr %q lacks the field-named diagnostic", msg)
	}
}
