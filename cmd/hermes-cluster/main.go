// hermes-cluster drives a sharded multi-node cluster simulation with an
// open-loop keyed workload and prints per-shard, per-node and cluster-wide
// latency digests. With several -allocators it repeats the identical
// scenario per allocator, the paper's comparison at cluster scale.
//
// Usage:
//
//	hermes-cluster [-nodes 8] [-shards 16] [-allocators glibc,hermes]
//	               [-service redis|rocksdb] [-requests 1000000] [-rate 50000]
//	               [-keys 100000] [-zipf 1.1] [-reads 0.5] [-value 1024]
//	               [-pressure none|anon|file] [-free-mb 300] [-mem-gb 8]
//	               [-daemon] [-seed 1] [-per-shard]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	nodes := flag.Int("nodes", 8, "node count")
	shards := flag.Int("shards", 16, "service-shard count")
	replicas := flag.Int("replicas", 64, "virtual nodes per machine on the hash ring")
	allocators := flag.String("allocators", "glibc,hermes", "comma-separated allocator kinds: glibc,jemalloc,tcmalloc,hermes")
	service := flag.String("service", "redis", "service kind: redis or rocksdb")
	requests := flag.Int64("requests", 1_000_000, "total requests")
	rate := flag.Float64("rate", 50_000, "mean arrival rate, requests per virtual second")
	keys := flag.Int64("keys", 100_000, "key-space size")
	zipf := flag.Float64("zipf", 1.1, "Zipf key-skew exponent (>1), or 0 for uniform keys")
	reads := flag.Float64("reads", 0.5, "read fraction of the request mix")
	value := flag.Int64("value", 1024, "write payload bytes")
	pressure := flag.String("pressure", "none", "per-node co-tenant pressure: none, anon or file")
	freeMB := flag.Int64("free-mb", 300, "residual free memory the pressure fill leaves per node, MB")
	memGB := flag.Int64("mem-gb", 8, "memory per node, GB")
	daemon := flag.Bool("daemon", false, "run the monitor daemon per node (hermes only)")
	seed := flag.Uint64("seed", 1, "determinism seed")
	perShard := flag.Bool("per-shard", false, "print per-shard digests")
	flag.Parse()

	cfg := hermes.DefaultClusterConfig()
	cfg.Nodes = *nodes
	cfg.Shards = *shards
	cfg.Replicas = *replicas
	cfg.ServiceKind = hermes.ServiceKind(*service)
	cfg.Kernel.TotalMemory = *memGB << 30
	cfg.Kernel.SwapBytes = *memGB << 30
	cfg.Seed = *seed
	switch *pressure {
	case "none":
	case "anon", "file":
		kind := hermes.PressureAnon
		if *pressure == "file" {
			kind = hermes.PressureFile
		}
		p := hermes.DefaultPressureConfig(kind)
		p.FreeBytes = *freeMB << 20
		cfg.Pressure = &p
	default:
		return fmt.Errorf("unknown pressure kind %q", *pressure)
	}
	if *daemon {
		d := hermes.DefaultDaemonConfig()
		cfg.Daemon = &d
	}

	load := hermes.DefaultLoadConfig()
	load.Requests = *requests
	load.RatePerSec = *rate
	load.Keys = *keys
	load.ZipfS = *zipf
	load.ReadFraction = *reads
	load.ValueBytes = *value
	load.Seed = *seed
	if err := load.Validate(); err != nil {
		return err
	}

	fmt.Printf("hermes-cluster nodes=%d shards=%d service=%s pressure=%s seed=%d\n",
		*nodes, *shards, *service, *pressure, *seed)
	fmt.Printf("load: %d requests at %.0f req/s, %d keys (zipf=%.2f), %.0f%% reads, %dB values\n\n",
		*requests, *rate, *keys, *zipf, *reads*100, *value)

	for _, name := range strings.Split(*allocators, ",") {
		cfg.Allocator = hermes.AllocatorKind(strings.TrimSpace(name))
		if err := cfg.Validate(); err != nil {
			return err
		}
		start := time.Now()
		c := hermes.NewCluster(cfg)
		rep := c.Run(load)
		c.Close()
		fmt.Printf("=== %s (wall %v) ===\n", cfg.Allocator, time.Since(start).Round(time.Millisecond))
		if *perShard {
			fmt.Println(rep.Render())
			continue
		}
		fmt.Printf("%v\n%v\nper node:\n", rep.Cluster, rep.Wait)
		for _, n := range rep.PerNode {
			fmt.Printf("  %s  shards=%-3d reclaims=%-6d swapouts=%-8d %v\n",
				n.Name, n.Shards, n.Kernel.DirectReclaims, n.Kernel.PagesSwapOut, n.Latency)
		}
		fmt.Println()
	}
	return nil
}
