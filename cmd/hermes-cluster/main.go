// hermes-cluster drives a sharded multi-node cluster simulation with an
// open-loop keyed workload and prints per-shard, per-node and cluster-wide
// latency digests. With several -allocators it repeats the identical
// scenario per allocator, the paper's comparison at cluster scale.
//
// Usage:
//
//	hermes-cluster [-nodes 8] [-shards 16] [-allocators glibc,hermes]
//	               [-service redis|rocksdb] [-requests 1000000] [-rate 50000]
//	               [-keys 100000] [-zipf 1.1] [-reads 0.5] [-value 1024]
//	               [-pressure none|anon|file] [-free-mb 300] [-mem-gb 8]
//	               [-daemon] [-seed 1] [-per-shard] [-parallel=true]
//	               [-stats raw|histogram] [-json] [-bench BENCH_cluster.json]
//
// -parallel toggles the partitioned per-node engine (on by default; the
// sequential escape hatch executes in global arrival order and produces a
// bit-identical report). -stats selects exact raw-sample digests or
// bounded-memory streaming histograms. -json emits the machine-readable
// reports instead of tables. -bench times the seed engine
// (sequential+raw) against the overhauled engine (parallel+histogram) on
// the identical scenario, verifies engine equivalence, and writes the
// trajectory to the given JSON file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	nodes := flag.Int("nodes", 8, "node count")
	shards := flag.Int("shards", 16, "service-shard count")
	replicas := flag.Int("replicas", 64, "virtual nodes per machine on the hash ring")
	allocators := flag.String("allocators", "glibc,hermes", "comma-separated allocator kinds: glibc,jemalloc,tcmalloc,hermes")
	service := flag.String("service", "redis", "service kind: redis or rocksdb")
	requests := flag.Int64("requests", 1_000_000, "total requests")
	rate := flag.Float64("rate", 50_000, "mean arrival rate, requests per virtual second")
	keys := flag.Int64("keys", 100_000, "key-space size")
	zipf := flag.Float64("zipf", 1.1, "Zipf key-skew exponent (>1), or 0 for uniform keys")
	reads := flag.Float64("reads", 0.5, "read fraction of the request mix")
	value := flag.Int64("value", 1024, "write payload bytes")
	pressure := flag.String("pressure", "none", "per-node co-tenant pressure: none, anon or file")
	freeMB := flag.Int64("free-mb", 300, "residual free memory the pressure fill leaves per node, MB")
	memGB := flag.Int64("mem-gb", 8, "memory per node, GB")
	daemon := flag.Bool("daemon", false, "run the monitor daemon per node (hermes only)")
	seed := flag.Uint64("seed", 1, "determinism seed")
	perShard := flag.Bool("per-shard", false, "print per-shard digests")
	parallel := flag.Bool("parallel", true, "run nodes on parallel goroutines (off = sequential escape hatch)")
	statsMode := flag.String("stats", "raw", "latency digest backend: raw (exact) or histogram (streaming, bounded memory)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON reports instead of tables")
	benchPath := flag.String("bench", "", "benchmark seed engine vs overhauled engine and write the JSON trajectory to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := hermes.DefaultClusterConfig()
	cfg.Nodes = *nodes
	cfg.Shards = *shards
	cfg.Replicas = *replicas
	cfg.ServiceKind = hermes.ServiceKind(*service)
	cfg.Kernel.TotalMemory = *memGB << 30
	cfg.Kernel.SwapBytes = *memGB << 30
	cfg.Seed = *seed
	cfg.Sequential = !*parallel
	cfg.Stats = hermes.StatsMode(*statsMode)
	switch *pressure {
	case "none":
	case "anon", "file":
		kind := hermes.PressureAnon
		if *pressure == "file" {
			kind = hermes.PressureFile
		}
		p := hermes.DefaultPressureConfig(kind)
		p.FreeBytes = *freeMB << 20
		cfg.Pressure = &p
	default:
		return fmt.Errorf("unknown pressure kind %q", *pressure)
	}
	if *daemon {
		d := hermes.DefaultDaemonConfig()
		cfg.Daemon = &d
	}

	load := hermes.DefaultLoadConfig()
	load.Requests = *requests
	load.RatePerSec = *rate
	load.Keys = *keys
	load.ZipfS = *zipf
	load.ReadFraction = *reads
	load.ValueBytes = *value
	load.Seed = *seed
	if err := load.Validate(); err != nil {
		return err
	}

	kinds, err := parseAllocators(*allocators)
	if err != nil {
		return err
	}

	if *benchPath != "" {
		return runBench(cfg, load, kinds, *benchPath)
	}

	if !*jsonOut {
		fmt.Printf("hermes-cluster nodes=%d shards=%d service=%s pressure=%s stats=%s parallel=%v seed=%d\n",
			*nodes, *shards, *service, *pressure, cfg.Stats, *parallel, *seed)
		fmt.Printf("load: %d requests at %.0f req/s, %d keys (zipf=%.2f), %.0f%% reads, %dB values\n\n",
			*requests, *rate, *keys, *zipf, *reads*100, *value)
	}

	var jsonReports []jsonReport
	for _, kind := range kinds {
		cfg.Allocator = kind
		if err := cfg.Validate(); err != nil {
			return err
		}
		start := time.Now()
		c := hermes.NewCluster(cfg)
		rep := c.Run(load)
		c.Close()
		wall := time.Since(start)
		if *jsonOut {
			jsonReports = append(jsonReports, jsonReport{ClusterReport: rep, WallMS: ms(wall)})
			continue
		}
		fmt.Printf("=== %s (wall %v) ===\n", cfg.Allocator, wall.Round(time.Millisecond))
		if *perShard {
			fmt.Println(rep.Render())
			continue
		}
		fmt.Printf("%v\n%v\nper node:\n", rep.Cluster, rep.Wait)
		for _, n := range rep.PerNode {
			fmt.Printf("  %s  shards=%-3d reclaims=%-6d swapouts=%-8d %v\n",
				n.Name, n.Shards, n.Kernel.DirectReclaims, n.Kernel.PagesSwapOut, n.Latency)
		}
		fmt.Println()
	}
	if *jsonOut {
		return writeJSON(os.Stdout, struct {
			Load    hermes.LoadConfig `json:"load"`
			Reports []jsonReport      `json:"reports"`
		}{load, jsonReports})
	}
	return nil
}

func parseAllocators(s string) ([]hermes.AllocatorKind, error) {
	var kinds []hermes.AllocatorKind
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			kinds = append(kinds, hermes.AllocatorKind(name))
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no allocators given")
	}
	return kinds, nil
}

// jsonReport wraps a ClusterReport with its wall-clock cost. The wall
// field is Go-cased to match the embedded report's untagged fields, so the
// -json document carries one naming convention.
type jsonReport struct {
	hermes.ClusterReport
	WallMS float64 `json:"WallMS"`
}

// benchRun is one timed engine execution inside a bench entry.
type benchRun struct {
	Engine   string  `json:"engine"` // "sequential" or "parallel"
	Stats    string  `json:"stats"`  // "raw" or "histogram"
	WallMS   float64 `json:"wall_ms"`
	MeanNS   int64   `json:"mean_ns"`
	P50NS    int64   `json:"p50_ns"`
	P99NS    int64   `json:"p99_ns"`
	MaxNS    int64   `json:"max_ns"`
	Requests int64   `json:"requests"`
}

// benchEntry compares the seed engine against the overhauled engine for
// one allocator on the identical (config, load) pair.
type benchEntry struct {
	Allocator  string   `json:"allocator"`
	Baseline   benchRun `json:"baseline"` // sequential engine, raw samples (the seed hot path)
	Parity     benchRun `json:"parity"`   // parallel engine, raw samples (bit-identity check vs baseline)
	New        benchRun `json:"new"`      // parallel engine, streaming histograms (the overhauled default)
	Equivalent bool     `json:"equivalent"`
	Speedup    float64  `json:"speedup"` // baseline wall / new wall
}

func runBench(cfg hermes.ClusterConfig, load hermes.LoadConfig, kinds []hermes.AllocatorKind, path string) error {
	out := struct {
		Generated  string       `json:"generated"`
		GoMaxProcs int          `json:"gomaxprocs"`
		GOOS       string       `json:"goos"`
		GOARCH     string       `json:"goarch"`
		Nodes      int          `json:"nodes"`
		Shards     int          `json:"shards"`
		Requests   int64        `json:"requests"`
		RatePerSec float64      `json:"rate_per_sec"`
		Seed       uint64       `json:"seed"`
		Entries    []benchEntry `json:"entries"`
	}{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Nodes:      cfg.Nodes,
		Shards:     cfg.Shards,
		Requests:   load.Requests,
		RatePerSec: load.RatePerSec,
		Seed:       cfg.Seed,
	}

	timed := func(sequential bool, mode hermes.StatsMode) (hermes.ClusterReport, benchRun) {
		c := cfg
		c.Sequential = sequential
		c.Stats = mode
		start := time.Now()
		cl := hermes.NewCluster(c)
		rep := cl.Run(load)
		cl.Close()
		wall := time.Since(start)
		engine := "parallel"
		if sequential {
			engine = "sequential"
		}
		return rep, benchRun{
			Engine:   engine,
			Stats:    string(mode),
			WallMS:   ms(wall),
			MeanNS:   rep.Cluster.Mean.Nanoseconds(),
			P50NS:    rep.Cluster.P50.Nanoseconds(),
			P99NS:    rep.Cluster.P99.Nanoseconds(),
			MaxNS:    rep.Cluster.Max.Nanoseconds(),
			Requests: rep.Requests,
		}
	}

	for _, kind := range kinds {
		cfg.Allocator = kind
		if err := cfg.Validate(); err != nil {
			return err
		}
		fmt.Printf("bench %s: %d requests on %d nodes...\n", kind, load.Requests, cfg.Nodes)
		baseRep, base := timed(true, hermes.StatsRaw)
		parRep, parity := timed(false, hermes.StatsRaw)
		_, novel := timed(false, hermes.StatsHistogram)
		entry := benchEntry{
			Allocator:  string(kind),
			Baseline:   base,
			Parity:     parity,
			New:        novel,
			Equivalent: reflect.DeepEqual(baseRep, parRep),
			Speedup:    base.WallMS / novel.WallMS,
		}
		if !entry.Equivalent {
			return fmt.Errorf("engine equivalence violated for %s:\nseq %v\npar %v",
				kind, baseRep.Cluster, parRep.Cluster)
		}
		fmt.Printf("  baseline (sequential+raw)  %8.1f ms\n", base.WallMS)
		fmt.Printf("  parity   (parallel+raw)    %8.1f ms  bit-identical report\n", parity.WallMS)
		fmt.Printf("  new      (parallel+hist)   %8.1f ms  speedup %.2fx\n", novel.WallMS, entry.Speedup)
		out.Entries = append(out.Entries, entry)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := writeJSON(f, out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func writeJSON(f *os.File, v any) error {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
