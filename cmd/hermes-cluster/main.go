// hermes-cluster drives a sharded multi-node cluster simulation with an
// open-loop keyed workload — or a declarative multi-phase scenario — and
// prints per-shard, per-node and cluster-wide latency digests. With
// several -allocators it repeats the identical scenario per allocator,
// the paper's comparison at cluster scale.
//
// Usage:
//
//	hermes-cluster [-nodes 8] [-shards 16] [-shard-replicas 2]
//	               [-allocators glibc,hermes]
//	               [-service redis|rocksdb] [-requests 1000000] [-rate 50000]
//	               [-keys 100000] [-zipf 1.1] [-reads 0.5] [-value 1024]
//	               [-pressure none|anon|file] [-free-mb 300] [-mem-gb 8]
//	               [-daemon] [-seed 1] [-per-shard] [-parallel=true]
//	               [-stats raw|histogram] [-json] [-bench BENCH_cluster.json]
//	               [-bench-reps 3] [-bench-against committed.json]
//	               [-bench-gate-pct 15] [-gomaxprocs N]
//	               [-scenario file.json] [-scale 1.0]
//
// -scenario loads a declarative scenario spec (phases × traffic classes ×
// timeline events; see examples/scenarios/) and runs it instead of the
// flat flag-built load; the file's optional "cluster" section layers onto
// the flag-built cluster config. -scale multiplies every duration and
// request budget in the loaded scenario — the way to shrink a committed
// preset onto a CI budget. -seed overrides the file's seed when given
// explicitly.
//
// -parallel toggles the partitioned per-node engine (on by default; the
// sequential escape hatch executes in global arrival order and produces a
// bit-identical report). -stats selects exact raw-sample digests or
// bounded-memory streaming histograms. -json emits the machine-readable
// reports instead of tables. -bench times the seed engine
// (sequential+raw) against the overhauled engine (parallel+histogram) on
// the identical scenario, verifies engine equivalence, measures the
// scenario adapter's overhead on the single-phase path, and writes the
// trajectory to the given JSON file; every wall is the median of
// -bench-reps repetitions with the min/max spread recorded. Bench mode
// pins GOMAXPROCS to 1 (override with -gomaxprocs) so the committed
// numbers are single-core apples-to-apples — the multi-core story is
// hermes-bench -bench-scaling's job. -bench-against gates the run
// against a committed bench file, failing when the new engine's
// within-run speedup over the sequential baseline drops more than
// -bench-gate-pct below the committed speedup (a host-speed-invariant
// statistic; absolute walls are printed as an advisory only).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	hermes "github.com/hermes-sim/hermes"
	"github.com/hermes-sim/hermes/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	nodes := flag.Int("nodes", 8, "node count")
	shards := flag.Int("shards", 16, "service-shard count")
	replicas := flag.Int("replicas", 64, "virtual nodes per machine on the hash ring")
	shardReplicas := flag.Int("shard-replicas", 0, "replicas per shard for kill-node failover (0 or 1 = unreplicated)")
	allocators := flag.String("allocators", "glibc,hermes", "comma-separated allocator kinds: glibc,jemalloc,tcmalloc,hermes")
	service := flag.String("service", "redis", "service kind: redis or rocksdb")
	requests := flag.Int64("requests", 1_000_000, "total requests")
	rate := flag.Float64("rate", 50_000, "mean arrival rate, requests per virtual second")
	keys := flag.Int64("keys", 100_000, "key-space size")
	zipf := flag.Float64("zipf", 1.1, "Zipf key-skew exponent (>1), or 0 for uniform keys")
	reads := flag.Float64("reads", 0.5, "read fraction of the request mix")
	value := flag.Int64("value", 1024, "write payload bytes")
	pressure := flag.String("pressure", "none", "per-node co-tenant pressure: none, anon or file")
	freeMB := flag.Int64("free-mb", 300, "residual free memory the pressure fill leaves per node, MB")
	memGB := flag.Int64("mem-gb", 8, "memory per node, GB")
	daemon := flag.Bool("daemon", false, "run the monitor daemon per node (hermes only)")
	seed := flag.Uint64("seed", 1, "determinism seed")
	perShard := flag.Bool("per-shard", false, "print per-shard digests")
	parallel := flag.Bool("parallel", true, "run nodes on parallel goroutines (off = sequential escape hatch)")
	statsMode := flag.String("stats", "raw", "latency digest backend: raw (exact) or histogram (streaming, bounded memory)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON reports instead of tables")
	benchPath := flag.String("bench", "", "benchmark seed engine vs overhauled engine and write the JSON trajectory to this file")
	benchReps := flag.Int("bench-reps", 3, "repetitions per -bench measurement (median wall reported, min/max recorded)")
	benchAgainst := flag.String("bench-against", "", "committed -bench JSON to gate against: fail when the new engine's within-run speedup regresses beyond -bench-gate-pct")
	benchGatePct := flag.Float64("bench-gate-pct", 15, "allowed new-engine speedup regression vs -bench-against, percent")
	gomaxprocs := flag.Int("gomaxprocs", 0, "pin GOMAXPROCS (0 = pin 1 in bench mode, runtime default otherwise)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	scenarioPath := flag.String("scenario", "", "run the scenario spec in this JSON file instead of the flat flag-built load")
	scale := flag.Float64("scale", 1, "multiply the loaded scenario's durations and request budgets by this factor")
	static := flag.Bool("static", false, "strip the scenario's policies block: the static baseline for adaptive comparisons")
	metricsOut := flag.String("metrics-out", "", "write the scenario run's per-window time series to this file (.prom/.txt = Prometheus text exposition, else JSON-lines)")
	metricsPeriod := flag.Duration("metrics-period", time.Second, "virtual-time window width for -metrics-out samples")
	flag.Parse()

	// Benchmarks default to a single-core pin so committed BENCH numbers are
	// comparable across hosts (the multi-core story is -bench-scaling's job);
	// ordinary runs keep the runtime default unless pinned explicitly.
	if *gomaxprocs > 0 {
		runtime.GOMAXPROCS(*gomaxprocs)
	} else if *benchPath != "" {
		runtime.GOMAXPROCS(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := hermes.DefaultClusterConfig()
	cfg.Nodes = *nodes
	cfg.Shards = *shards
	cfg.Replicas = *replicas
	cfg.ShardReplicas = *shardReplicas
	cfg.ServiceKind = hermes.ServiceKind(*service)
	cfg.Kernel.TotalMemory = *memGB << 30
	cfg.Kernel.SwapBytes = *memGB << 30
	cfg.Seed = *seed
	cfg.Sequential = !*parallel
	cfg.Stats = hermes.StatsMode(*statsMode)
	switch *pressure {
	case "none":
	case "anon", "file":
		kind := hermes.PressureAnon
		if *pressure == "file" {
			kind = hermes.PressureFile
		}
		p := hermes.DefaultPressureConfig(kind)
		p.FreeBytes = *freeMB << 20
		cfg.Pressure = &p
	default:
		return fmt.Errorf("unknown pressure kind %q", *pressure)
	}
	if *daemon {
		d := hermes.DefaultDaemonConfig()
		cfg.Daemon = &d
	}

	load := hermes.DefaultLoadConfig()
	load.Requests = *requests
	load.RatePerSec = *rate
	load.Keys = *keys
	load.ZipfS = *zipf
	load.ReadFraction = *reads
	load.ValueBytes = *value
	load.Seed = *seed
	if err := load.Validate(); err != nil {
		return err
	}

	kinds, err := parseAllocators(*allocators)
	if err != nil {
		return err
	}

	if *scenarioPath != "" {
		if *benchPath != "" {
			return fmt.Errorf("-scenario and -bench are mutually exclusive (the bench drives its own flat load)")
		}
		seedSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		if *metricsOut != "" {
			cfg.Metrics = &hermes.MetricsConfig{Period: *metricsPeriod}
		}
		return runScenarioFile(cfg, kinds, scenarioOpts{
			path:       *scenarioPath,
			scale:      *scale,
			seed:       *seed,
			seedSet:    seedSet,
			json:       *jsonOut,
			static:     *static,
			metricsOut: *metricsOut,
		})
	}
	if *metricsOut != "" {
		return fmt.Errorf("-metrics-out requires -scenario (the time series rides the scenario path)")
	}

	if *benchPath != "" {
		return runBench(cfg, load, kinds, benchOpts{
			path:    *benchPath,
			reps:    *benchReps,
			against: *benchAgainst,
			gatePct: *benchGatePct,
		})
	}

	if !*jsonOut {
		fmt.Printf("hermes-cluster nodes=%d shards=%d service=%s pressure=%s stats=%s parallel=%v seed=%d\n",
			*nodes, *shards, *service, *pressure, cfg.Stats, *parallel, *seed)
		fmt.Printf("load: %d requests at %.0f req/s, %d keys (zipf=%.2f), %.0f%% reads, %dB values\n\n",
			*requests, *rate, *keys, *zipf, *reads*100, *value)
	}

	var jsonReports []hermes.TimedReport
	for _, kind := range kinds {
		cfg.Allocator = kind
		if err := cfg.Validate(); err != nil {
			return err
		}
		start := time.Now()
		c := hermes.NewCluster(cfg)
		rep := c.Run(load)
		c.Close()
		wall := time.Since(start)
		if *jsonOut {
			jsonReports = append(jsonReports, hermes.TimedReport{Report: rep, WallMS: ms(wall)})
			continue
		}
		fmt.Printf("=== %s (wall %v) ===\n", cfg.Allocator, wall.Round(time.Millisecond))
		if *perShard {
			fmt.Println(rep.Render())
			continue
		}
		fmt.Printf("%v\n%v\nper node:\n", rep.Cluster, rep.Wait)
		for _, n := range rep.PerNode {
			fmt.Printf("  %s  shards=%-3d reclaims=%-6d swapouts=%-8d %v\n",
				n.Name, n.Shards, n.Kernel.DirectReclaims, n.Kernel.PagesSwapOut, n.Latency)
		}
		fmt.Println()
	}
	if *jsonOut {
		return hermes.WriteReportJSON(os.Stdout, struct {
			Load    hermes.LoadConfig    `json:"load"`
			Reports []hermes.TimedReport `json:"reports"`
		}{load, jsonReports})
	}
	return nil
}

type scenarioOpts struct {
	path       string
	scale      float64
	seed       uint64
	seedSet    bool
	json       bool
	static     bool
	metricsOut string
}

// runScenarioFile loads, validates and runs a scenario spec for each
// allocator kind, printing the phase × class segmented reports.
func runScenarioFile(cfg hermes.ClusterConfig, kinds []hermes.AllocatorKind, opts scenarioOpts) error {
	data, err := os.ReadFile(opts.path)
	if err != nil {
		return err
	}
	spec, err := hermes.ParseScenarioSpec(data)
	if err != nil {
		return err
	}
	cfg, err = spec.Overrides.Apply(cfg)
	if err != nil {
		return err
	}
	scn := spec.Scenario
	// NaN fails every comparison, so the guard must demand the positive
	// range explicitly rather than reject <= 0.
	if !(opts.scale > 0) || math.IsInf(opts.scale, 1) {
		return fmt.Errorf("-scale must be a positive, finite number (got %v)", opts.scale)
	}
	if opts.scale != 1 {
		scn = scn.Scaled(opts.scale)
	}
	if opts.static {
		// Same chaos, same SLO accounting, no controller: the baseline an
		// adaptive preset is measured against.
		scn.Policies = nil
	}
	if opts.seedSet {
		scn.Seed = opts.seed
		cfg.Seed = opts.seed
	} else {
		// The file's seed governs the whole run — workload and per-node
		// kernel streams — so the printed seed really reproduces it.
		cfg.Seed = scn.Seed
	}
	if spec.Overrides != nil && spec.Overrides.Allocator != "" {
		// The preset pins its allocator; -allocators is ignored.
		kinds = []hermes.AllocatorKind{spec.Overrides.Allocator}
	}

	if !opts.json {
		fmt.Printf("hermes-cluster scenario %q (%s, scale %g): nodes=%d shards=%d shard-replicas=%d service=%s stats=%s seed=%d\n",
			scn.Name, opts.path, opts.scale, cfg.Nodes, cfg.Shards, cfg.ShardReplicas, cfg.Service(), cfg.StatsBackend(), scn.Seed)
		fmt.Printf("phases=%d events=%d horizon=%v\n\n", len(scn.Phases), len(scn.Events), scn.End())
	}

	var jsonReports []hermes.TimedScenarioReport
	for _, kind := range kinds {
		cfg.Allocator = kind
		if err := cfg.Validate(); err != nil {
			return err
		}
		start := time.Now()
		c := hermes.NewCluster(cfg)
		rep, err := c.RunScenario(scn)
		c.Close()
		if err != nil {
			return err
		}
		wall := time.Since(start)
		if opts.metricsOut != "" {
			if err := writeMetrics(opts.metricsOut, kind, len(kinds) > 1, rep.Metrics); err != nil {
				return err
			}
		}
		if opts.json {
			jsonReports = append(jsonReports, hermes.TimedScenarioReport{ScenarioReport: rep, WallMS: ms(wall)})
			continue
		}
		fmt.Printf("=== %s (wall %v) ===\n%s\n", kind, wall.Round(time.Millisecond), rep.Render())
	}
	if opts.json {
		return hermes.WriteReportJSON(os.Stdout, struct {
			Scenario string                       `json:"scenario"`
			Scale    float64                      `json:"scale"`
			Reports  []hermes.TimedScenarioReport `json:"reports"`
		}{scn.Name, opts.scale, jsonReports})
	}
	return nil
}

// writeMetrics writes one run's time series to the -metrics-out path: the
// .prom/.txt extensions select Prometheus text exposition, everything else
// JSON-lines. Multi-allocator runs suffix the allocator kind before the
// extension so each run keeps its own stream.
func writeMetrics(path string, kind hermes.AllocatorKind, multi bool, samples []hermes.MetricsSample) error {
	if multi {
		ext := filepath.Ext(path)
		path = strings.TrimSuffix(path, ext) + "-" + string(kind) + ext
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".prom", ".txt":
		err = hermes.WriteMetricsPrometheus(f, samples)
	default:
		err = hermes.WriteMetricsJSONL(f, samples)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d windows)\n", path, len(samples))
	return nil
}

func parseAllocators(s string) ([]hermes.AllocatorKind, error) {
	var kinds []hermes.AllocatorKind
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			kinds = append(kinds, hermes.AllocatorKind(name))
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no allocators given")
	}
	return kinds, nil
}

// benchRun is one timed engine measurement inside a bench entry: the
// median wall of -bench-reps repetitions, with the min/max spread recorded
// so a noise-dominated median is visible in the committed file instead of
// masquerading as signal.
type benchRun struct {
	Engine    string  `json:"engine"`  // "sequential" or "parallel"
	Stats     string  `json:"stats"`   // "raw" or "histogram"
	WallMS    float64 `json:"wall_ms"` // median of reps
	WallMinMS float64 `json:"wall_min_ms"`
	WallMaxMS float64 `json:"wall_max_ms"`
	Reps      int     `json:"reps"`
	MeanNS    int64   `json:"mean_ns"`
	P50NS     int64   `json:"p50_ns"`
	P99NS     int64   `json:"p99_ns"`
	MaxNS     int64   `json:"max_ns"`
	Requests  int64   `json:"requests"`
}

// benchEntry compares the seed engine against the overhauled engine for
// one allocator on the identical (config, load) pair.
type benchEntry struct {
	Allocator  string   `json:"allocator"`
	Baseline   benchRun `json:"baseline"` // direct sequential engine, raw samples (the seed hot path)
	Parity     benchRun `json:"parity"`   // direct parallel engine, raw samples (bit-identity check vs baseline)
	Adapter    benchRun `json:"adapter"`  // Run: the scenario layer's single-phase path, sequential+raw
	New        benchRun `json:"new"`      // parallel engine, streaming histograms (the overhauled default)
	Equivalent bool     `json:"equivalent"`
	Speedup    float64  `json:"speedup"` // baseline wall / new wall
	// AdapterOverheadPct is the scenario layer's cost on the single-phase
	// path: (adapter − baseline) / baseline wall clock, in percent.
	AdapterOverheadPct float64 `json:"adapter_overhead_pct"`
}

// benchFile is the -bench JSON document.
type benchFile struct {
	Generated  string       `json:"generated"`
	GoMaxProcs int          `json:"gomaxprocs"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	Nodes      int          `json:"nodes"`
	Shards     int          `json:"shards"`
	Requests   int64        `json:"requests"`
	RatePerSec float64      `json:"rate_per_sec"`
	Seed       uint64       `json:"seed"`
	Entries    []benchEntry `json:"entries"`
}

// benchOpts carries the -bench invocation.
type benchOpts struct {
	path    string
	reps    int
	against string
	gatePct float64
}

func runBench(cfg hermes.ClusterConfig, load hermes.LoadConfig, kinds []hermes.AllocatorKind, opts benchOpts) error {
	if opts.reps < 1 {
		opts.reps = 1
	}
	out := benchFile{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Nodes:      cfg.Nodes,
		Shards:     cfg.Shards,
		Requests:   load.Requests,
		RatePerSec: load.RatePerSec,
		Seed:       cfg.Seed,
	}

	timed := func(engine string, sequential bool, mode hermes.StatsMode, drive func(*hermes.Cluster) hermes.ClusterReport) (hermes.ClusterReport, benchRun) {
		c := cfg
		c.Sequential = sequential // governs Run's dispatch; the direct drives ignore it
		c.Stats = mode
		var rep hermes.ClusterReport
		walls := make([]float64, opts.reps)
		for i := range walls {
			start := time.Now()
			cl := hermes.NewCluster(c)
			rep = drive(cl) // deterministic: every rep yields the identical report
			cl.Close()
			walls[i] = ms(time.Since(start))
		}
		med, lo, hi := stats.MedianSpread(walls)
		return rep, benchRun{
			Engine:    engine,
			Stats:     string(mode),
			WallMS:    med,
			WallMinMS: lo,
			WallMaxMS: hi,
			Reps:      opts.reps,
			MeanNS:    rep.Cluster.Mean.Nanoseconds(),
			P50NS:     rep.Cluster.P50.Nanoseconds(),
			P99NS:     rep.Cluster.P99.Nanoseconds(),
			MaxNS:     rep.Cluster.Max.Nanoseconds(),
			Requests:  rep.Requests,
		}
	}
	seq := func(cl *hermes.Cluster) hermes.ClusterReport { return cl.RunSequential(load) }
	par := func(cl *hermes.Cluster) hermes.ClusterReport { return cl.RunParallel(load) }
	adapter := func(cl *hermes.Cluster) hermes.ClusterReport { return cl.Run(load) }

	for _, kind := range kinds {
		cfg.Allocator = kind
		if err := cfg.Validate(); err != nil {
			return err
		}
		fmt.Printf("bench %s: %d requests on %d nodes...\n", kind, load.Requests, cfg.Nodes)
		baseRep, base := timed("sequential", true, hermes.StatsRaw, seq)
		parRep, parity := timed("parallel", false, hermes.StatsRaw, par)
		adRep, adapted := timed("scenario-adapter", true, hermes.StatsRaw, adapter)
		_, novel := timed("parallel", false, hermes.StatsHistogram, adapter)
		entry := benchEntry{
			Allocator:          string(kind),
			Baseline:           base,
			Parity:             parity,
			Adapter:            adapted,
			New:                novel,
			Equivalent:         reflect.DeepEqual(baseRep, parRep) && reflect.DeepEqual(baseRep, adRep),
			Speedup:            base.WallMS / novel.WallMS,
			AdapterOverheadPct: (adapted.WallMS - base.WallMS) / base.WallMS * 100,
		}
		if !entry.Equivalent {
			return fmt.Errorf("engine equivalence violated for %s:\nseq     %v\npar     %v\nadapter %v",
				kind, baseRep.Cluster, parRep.Cluster, adRep.Cluster)
		}
		// The adapter's budget is ≤5%; the hard gate sits at 15% — on medians
		// of -bench-reps runs — so single rep wall-clock noise (observed at
		// ±10% and worse on shared hosts) can't flap the benchmark, while a
		// real regression still fails loudly.
		if entry.AdapterOverheadPct > 15 {
			return fmt.Errorf("scenario adapter overhead %.1f%% for %s exceeds the hard 15%% gate (budget 5%%): baseline %.1f ms, adapter %.1f ms (medians of %d)",
				entry.AdapterOverheadPct, kind, base.WallMS, adapted.WallMS, opts.reps)
		}
		fmt.Printf("  baseline (sequential+raw)  %8.1f ms  [%.1f–%.1f, %d reps]\n", base.WallMS, base.WallMinMS, base.WallMaxMS, base.Reps)
		fmt.Printf("  parity   (parallel+raw)    %8.1f ms  [%.1f–%.1f]  bit-identical report\n", parity.WallMS, parity.WallMinMS, parity.WallMaxMS)
		fmt.Printf("  adapter  (scenario+raw)    %8.1f ms  [%.1f–%.1f]  bit-identical report, overhead %+.1f%%\n",
			adapted.WallMS, adapted.WallMinMS, adapted.WallMaxMS, entry.AdapterOverheadPct)
		fmt.Printf("  new      (parallel+hist)   %8.1f ms  [%.1f–%.1f]  speedup %.2fx\n", novel.WallMS, novel.WallMinMS, novel.WallMaxMS, entry.Speedup)
		out.Entries = append(out.Entries, entry)
	}

	if opts.against != "" {
		if err := gateAgainst(out, opts.against, opts.gatePct); err != nil {
			return err
		}
	}

	f, err := os.Create(opts.path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := hermes.WriteReportJSON(f, out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", opts.path)
	return nil
}

// gateAgainst fails the bench when the parallel engine regressed beyond
// gatePct relative to a committed bench file — the CI tripwire that keeps a
// perf PR from quietly giving back what an earlier one earned.
//
// The gated statistic is the within-run speedup (sequential baseline wall /
// new-engine wall, both measured in the same process seconds apart), not
// the absolute wall: wall clocks are only comparable on the same host in
// the same load phase, and back-to-back identical-binary runs on
// CPU-quota-throttled containers swing ±30% — an absolute gate at any
// useful threshold would flake constantly and never survive a CI runner
// hardware change. The speedup ratio cancels host speed while still
// catching the failure the gate exists for: the parallel engine losing
// ground against the sequential one. Absolute min walls are printed as an
// advisory so drift stays visible in logs. (A regression in code shared by
// both engines cancels out here; that is what the committed BENCH
// trajectories and the tier-1 equivalence tests are for.)
//
// It compares like configurations only and is deliberately one-sided:
// being faster than the committed file is always fine.
func gateAgainst(cur benchFile, path string, gatePct float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading -bench-against file: %w", err)
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing -bench-against file %s: %w", path, err)
	}
	if base.Nodes != cur.Nodes || base.Shards != cur.Shards || base.Requests != cur.Requests ||
		base.Seed != cur.Seed || base.GoMaxProcs != cur.GoMaxProcs {
		return fmt.Errorf("-bench-against config mismatch: committed (nodes=%d shards=%d requests=%d seed=%d gomaxprocs=%d) vs current (nodes=%d shards=%d requests=%d seed=%d gomaxprocs=%d)",
			base.Nodes, base.Shards, base.Requests, base.Seed, base.GoMaxProcs,
			cur.Nodes, cur.Shards, cur.Requests, cur.Seed, cur.GoMaxProcs)
	}
	for _, b := range base.Entries {
		for _, c := range cur.Entries {
			if b.Allocator != c.Allocator {
				continue
			}
			if b.Speedup <= 0 || c.Speedup <= 0 {
				continue
			}
			pct := (b.Speedup - c.Speedup) / b.Speedup * 100
			if pct > gatePct {
				return fmt.Errorf("bench regression: %s new-engine speedup %.2fx vs committed %.2fx (-%.1f%% > %.0f%% gate)",
					c.Allocator, c.Speedup, b.Speedup, pct, gatePct)
			}
			fmt.Printf("  gate %s speedup %.2fx vs committed %.2fx (%+.1f%%, gate %.0f%%); advisory min walls: baseline %.1f vs %.1f ms, new %.1f vs %.1f ms\n",
				c.Allocator, c.Speedup, b.Speedup, -pct, gatePct,
				c.Baseline.WallMinMS, b.Baseline.WallMinMS, c.New.WallMinMS, b.New.WallMinMS)
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
