// hermes-bench regenerates the paper's tables and figures. Each experiment
// prints the rows/series the paper reports (see DESIGN.md §3 for the
// index and EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	hermes-bench [-scale quick|full] [-seed N] [-run fig3,fig7,...]
//
// With no -run flag every experiment runs in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	scaleFlag := flag.String("scale", "quick", "workload scale: quick or full (paper-sized)")
	seed := flag.Uint64("seed", 1, "determinism seed")
	runFlag := flag.String("run", "", "comma-separated experiments (default: all): fig2,fig3,fig6,fig7,fig8,fig9,fig10,fig15,fig16,table1,overhead,mlock")
	flag.Parse()

	var scale hermes.Scale
	switch *scaleFlag {
	case "quick":
		scale = hermes.QuickScale()
	case "full":
		scale = hermes.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}

	type experiment struct {
		name string
		run  func() string
	}
	all := []experiment{
		{"fig2", func() string { return hermes.Fig2(scale, *seed).Render() }},
		{"fig3", func() string { return hermes.Fig3(scale, *seed).Render() }},
		{"fig6", func() string { return hermes.Fig6Ablation(scale, *seed).Render() }},
		{"fig7", func() string { return hermes.Fig7(scale, *seed).Render() }},
		{"fig8", func() string { return hermes.Fig8(scale, *seed).Render() }},
		{"fig9", func() string {
			f := hermes.Fig9(scale, *seed)
			return f.RenderLatency("Figure 9") + "\n" + f.RenderTail("Figure 11") + "\n" + f.RenderViolation("Figure 13")
		}},
		{"fig10", func() string {
			f := hermes.Fig10(scale, *seed)
			return f.RenderLatency("Figure 10") + "\n" + f.RenderTail("Figure 12") + "\n" + f.RenderViolation("Figure 14")
		}},
		{"fig15", func() string { return hermes.Fig15(scale, *seed).Render() }},
		{"fig16", func() string { return hermes.Fig16(scale, *seed).Render() }},
		{"table1", func() string { return hermes.Table1(scale, *seed).Render() }},
		{"overhead", func() string { return hermes.Overhead(scale, *seed).Render() }},
		{"mlock", func() string { return hermes.MlockAblation(scale, *seed).Render() }},
	}

	selected := map[string]bool{}
	if *runFlag != "" {
		for _, name := range strings.Split(*runFlag, ",") {
			selected[strings.TrimSpace(name)] = true
		}
		for name := range selected {
			found := false
			for _, e := range all {
				if e.name == name {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q", name)
			}
		}
	}

	fmt.Printf("hermes-bench scale=%s seed=%d\n\n", scale.Name, *seed)
	for _, e := range all {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		start := time.Now()
		out := e.run()
		fmt.Printf("=== %s (wall %v) ===\n%s\n", e.name, time.Since(start).Round(time.Millisecond), out)
	}
	return nil
}
