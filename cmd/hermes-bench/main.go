// hermes-bench regenerates the paper's tables and figures, and benchmarks
// the single-node request hot path. Each experiment prints the rows/series
// the paper reports (see DESIGN.md §3 for the index and EXPERIMENTS.md for
// paper-vs-measured).
//
// Usage:
//
//	hermes-bench [-scale quick|full] [-seed N] [-run fig3,fig7,...]
//	             [-json] [-cpuprofile f] [-memprofile f]
//	hermes-bench -bench-node BENCH_node.json [-node-requests 1000000]
//	             [-node-allocators glibc,jemalloc,tcmalloc,hermes]
//	             [-node-baseline baseline.json]
//	hermes-bench -bench-workload BENCH_workload.json [-workload-draws N]
//	             [-workload-reps 3]
//	hermes-bench -bench-scaling BENCH_scaling.json [-scaling-cores 1,2,4,8]
//	             [-scaling-fleets 8,64] [-scaling-requests 1000000]
//	             [-scaling-reps 3] [-scaling-min-speedup 0]
//
// With no -run flag every experiment runs in paper order. -json emits
// machine-readable experiment reports instead of tables; -cpuprofile and
// -memprofile write pprof profiles (parity with hermes-cluster), so
// node-level profiles are one command away.
//
// -bench-node drives the single-node hot path end to end (one node, one
// service shard, the default open-loop load) for every requested allocator
// and writes wall clock, throughput and allocator-churn metrics
// (allocs/op via runtime.MemStats) to the given JSON file. -node-baseline
// embeds a previous -bench-node output as the baseline and computes
// speedups — the committed BENCH_node.json tracks the hot-path trajectory
// this way (see EXPERIMENTS.md).
//
// -bench-workload benchmarks workload generation alone — the LoadDriver
// loop, the Zipf+exponential draw pair and the log-normal jitter
// multiplier — on both the legacy (stdlib-algorithm) and randgen
// generators, reporting median-of-reps walls and speedups; the committed
// BENCH_workload.json is its output (see EXPERIMENTS.md).
//
// -bench-scaling measures the parallel cluster engine's multi-core
// scaling curve (see scalingbench.go); the committed BENCH_scaling.json
// is its output. Bench modes pin GOMAXPROCS to 1 by default (override
// with -gomaxprocs) so committed numbers are single-core
// apples-to-apples; -bench-scaling sets the pin per measured point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	scaleFlag := flag.String("scale", "quick", "workload scale: quick or full (paper-sized)")
	seed := flag.Uint64("seed", 1, "determinism seed")
	runFlag := flag.String("run", "", "comma-separated experiments (default: all): fig2,fig3,fig6,fig7,fig8,fig9,fig10,fig15,fig16,table1,overhead,mlock")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON reports instead of tables")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchNode := flag.String("bench-node", "", "benchmark the single-node hot path per allocator and write the JSON trajectory to this file")
	nodeRequests := flag.Int64("node-requests", 1_000_000, "requests per allocator for -bench-node")
	nodeAllocators := flag.String("node-allocators", "glibc,jemalloc,tcmalloc,hermes", "comma-separated allocator kinds for -bench-node")
	nodeService := flag.String("node-service", "redis", "service kind for -bench-node: redis or rocksdb")
	nodeBaseline := flag.String("node-baseline", "", "embed a previous -bench-node output as the baseline and compute speedups")
	benchWorkload := flag.String("bench-workload", "", "benchmark the workload generators (legacy vs randgen) and write the JSON trajectory to this file")
	workloadDraws := flag.Int64("workload-draws", 20_000_000, "draws per generator measurement for -bench-workload")
	workloadReps := flag.Int("workload-reps", 3, "repetitions per measurement for -bench-workload (median reported)")
	benchScaling := flag.String("bench-scaling", "", "measure the parallel engine's multi-core scaling curve and write the JSON trajectory to this file")
	scalingCores := flag.String("scaling-cores", "1,2,4,8", "comma-separated GOMAXPROCS points for -bench-scaling")
	scalingFleets := flag.String("scaling-fleets", "8,64", "comma-separated node counts for -bench-scaling")
	scalingRequests := flag.Int64("scaling-requests", 1_000_000, "requests per measurement for -bench-scaling")
	scalingReps := flag.Int("scaling-reps", 3, "repetitions per point for -bench-scaling (median reported)")
	scalingMinSpeedup := flag.Float64("scaling-min-speedup", 0, "fail unless every fleet's best multi-core speedup reaches this factor (0 = report only)")
	gomaxprocs := flag.Int("gomaxprocs", 0, "pin GOMAXPROCS (0 = pin 1 in bench modes, runtime default otherwise; -bench-scaling sets it per point)")
	flag.Parse()

	// Bench modes default to a single-core pin so committed BENCH numbers
	// are comparable across hosts; -bench-scaling overrides the pin per
	// measured point. Ordinary experiment runs keep the runtime default.
	if *gomaxprocs > 0 {
		runtime.GOMAXPROCS(*gomaxprocs)
	} else if *benchNode != "" || *benchWorkload != "" {
		runtime.GOMAXPROCS(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hermes-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hermes-bench:", err)
			}
		}()
	}

	if *benchScaling != "" {
		return runScalingBench(scalingBenchConfig{
			path:       *benchScaling,
			cores:      *scalingCores,
			fleets:     *scalingFleets,
			requests:   *scalingRequests,
			reps:       *scalingReps,
			minSpeedup: *scalingMinSpeedup,
			seed:       *seed,
		})
	}

	if *benchWorkload != "" {
		return runWorkloadBench(workloadBenchConfig{
			path:  *benchWorkload,
			draws: *workloadDraws,
			reps:  *workloadReps,
			seed:  *seed,
		})
	}

	if *benchNode != "" {
		return runNodeBench(nodeBenchConfig{
			path:       *benchNode,
			requests:   *nodeRequests,
			allocators: *nodeAllocators,
			service:    *nodeService,
			seed:       *seed,
			baseline:   *nodeBaseline,
		})
	}

	var scale hermes.Scale
	switch *scaleFlag {
	case "quick":
		scale = hermes.QuickScale()
	case "full":
		scale = hermes.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}

	type experiment struct {
		name string
		run  func() string
	}
	all := []experiment{
		{"fig2", func() string { return hermes.Fig2(scale, *seed).Render() }},
		{"fig3", func() string { return hermes.Fig3(scale, *seed).Render() }},
		{"fig6", func() string { return hermes.Fig6Ablation(scale, *seed).Render() }},
		{"fig7", func() string { return hermes.Fig7(scale, *seed).Render() }},
		{"fig8", func() string { return hermes.Fig8(scale, *seed).Render() }},
		{"fig9", func() string {
			f := hermes.Fig9(scale, *seed)
			return f.RenderLatency("Figure 9") + "\n" + f.RenderTail("Figure 11") + "\n" + f.RenderViolation("Figure 13")
		}},
		{"fig10", func() string {
			f := hermes.Fig10(scale, *seed)
			return f.RenderLatency("Figure 10") + "\n" + f.RenderTail("Figure 12") + "\n" + f.RenderViolation("Figure 14")
		}},
		{"fig15", func() string { return hermes.Fig15(scale, *seed).Render() }},
		{"fig16", func() string { return hermes.Fig16(scale, *seed).Render() }},
		{"table1", func() string { return hermes.Table1(scale, *seed).Render() }},
		{"overhead", func() string { return hermes.Overhead(scale, *seed).Render() }},
		{"mlock", func() string { return hermes.MlockAblation(scale, *seed).Render() }},
	}

	selected := map[string]bool{}
	if *runFlag != "" {
		for _, name := range strings.Split(*runFlag, ",") {
			selected[strings.TrimSpace(name)] = true
		}
		for name := range selected {
			found := false
			for _, e := range all {
				if e.name == name {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q", name)
			}
		}
	}

	// jsonExperiment is one experiment's machine-readable record.
	type jsonExperiment struct {
		Name   string  `json:"name"`
		WallMS float64 `json:"wall_ms"`
		Output string  `json:"output"`
	}
	var jsonReports []jsonExperiment

	if !*jsonOut {
		fmt.Printf("hermes-bench scale=%s seed=%d\n\n", scale.Name, *seed)
	}
	for _, e := range all {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		start := time.Now()
		out := e.run()
		wall := time.Since(start)
		if *jsonOut {
			jsonReports = append(jsonReports, jsonExperiment{Name: e.name, WallMS: ms(wall), Output: out})
			continue
		}
		fmt.Printf("=== %s (wall %v) ===\n%s\n", e.name, wall.Round(time.Millisecond), out)
	}
	if *jsonOut {
		return writeJSON(os.Stdout, struct {
			Scale       string           `json:"scale"`
			Seed        uint64           `json:"seed"`
			Experiments []jsonExperiment `json:"experiments"`
		}{scale.Name, *seed, jsonReports})
	}
	return nil
}

// nodeBenchConfig carries the -bench-node invocation.
type nodeBenchConfig struct {
	path       string
	requests   int64
	allocators string
	service    string
	seed       uint64
	baseline   string
}

// nodeEntry is one allocator's measured single-node hot path.
type nodeEntry struct {
	Allocator   string  `json:"allocator"`
	WallMS      float64 `json:"wall_ms"`
	ReqsPerSec  float64 `json:"reqs_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	NumGC       uint32  `json:"num_gc"`
	MeanNS      int64   `json:"mean_ns"`
	P99NS       int64   `json:"p99_ns"`
	Requests    int64   `json:"requests"`
}

// nodeComparison relates one allocator's entry to the baseline run.
type nodeComparison struct {
	Allocator       string  `json:"allocator"`
	Speedup         float64 `json:"speedup"`          // baseline wall / new wall
	AllocsReduction float64 `json:"allocs_reduction"` // baseline allocs/op / new allocs/op
}

// nodeBenchFile is the -bench-node JSON document. Baseline embeds a
// previous run of the same harness (e.g. captured on the pre-optimisation
// tree) so the committed file carries its own before/after evidence.
type nodeBenchFile struct {
	Generated  string           `json:"generated"`
	GoMaxProcs int              `json:"gomaxprocs"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Service    string           `json:"service"`
	Requests   int64            `json:"requests"`
	Seed       uint64           `json:"seed"`
	Entries    []nodeEntry      `json:"entries"`
	Baseline   *nodeBenchFile   `json:"baseline,omitempty"`
	Comparison []nodeComparison `json:"comparison,omitempty"`
}

// runNodeBench drives the single-node hot path — one node, one service
// shard, the default open-loop load — once per allocator, and measures the
// wall clock and the Go allocator churn of the whole run.
func runNodeBench(cfg nodeBenchConfig) error {
	kinds := strings.Split(cfg.allocators, ",")
	out := nodeBenchFile{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Service:    cfg.service,
		Requests:   cfg.requests,
		Seed:       cfg.seed,
	}

	for _, name := range kinds {
		kind := hermes.AllocatorKind(strings.TrimSpace(name))
		ccfg := hermes.DefaultClusterConfig()
		ccfg.Nodes = 1
		ccfg.Shards = 1
		ccfg.Allocator = kind
		ccfg.ServiceKind = hermes.ServiceKind(cfg.service)
		ccfg.Seed = cfg.seed
		// Histogram digests keep recorder memory out of the measurement:
		// what remains is the per-request node path itself.
		ccfg.Stats = hermes.StatsHistogram
		if err := ccfg.Validate(); err != nil {
			return err
		}
		load := hermes.DefaultLoadConfig()
		load.Requests = cfg.requests
		load.Seed = cfg.seed

		fmt.Printf("bench-node %s: %d requests on 1 node...\n", kind, cfg.requests)
		c := hermes.NewCluster(ccfg)
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		rep := c.Run(load)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		c.Close()
		if rep.Requests != cfg.requests {
			return fmt.Errorf("bench-node %s served %d requests, want %d", kind, rep.Requests, cfg.requests)
		}
		entry := nodeEntry{
			Allocator:   string(kind),
			WallMS:      ms(wall),
			ReqsPerSec:  float64(cfg.requests) / wall.Seconds(),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(cfg.requests),
			BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.requests),
			NumGC:       after.NumGC - before.NumGC,
			MeanNS:      rep.Cluster.Mean.Nanoseconds(),
			P99NS:       rep.Cluster.P99.Nanoseconds(),
			Requests:    rep.Requests,
		}
		fmt.Printf("  %8.1f ms  %10.0f req/s  %6.2f allocs/op  %7.1f B/op  %d GCs\n",
			entry.WallMS, entry.ReqsPerSec, entry.AllocsPerOp, entry.BytesPerOp, entry.NumGC)
		out.Entries = append(out.Entries, entry)
	}

	if cfg.baseline != "" {
		data, err := os.ReadFile(cfg.baseline)
		if err != nil {
			return err
		}
		base := &nodeBenchFile{}
		if err := json.Unmarshal(data, base); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", cfg.baseline, err)
		}
		base.Baseline, base.Comparison = nil, nil // no nesting
		out.Baseline = base
		for _, e := range out.Entries {
			for _, b := range base.Entries {
				if b.Allocator != e.Allocator {
					continue
				}
				cmp := nodeComparison{Allocator: e.Allocator}
				if e.WallMS > 0 {
					cmp.Speedup = b.WallMS / e.WallMS
				}
				if e.AllocsPerOp > 0 {
					cmp.AllocsReduction = b.AllocsPerOp / e.AllocsPerOp
				}
				fmt.Printf("  %s vs baseline: %.2fx faster, %.1fx fewer allocs/op\n",
					e.Allocator, cmp.Speedup, cmp.AllocsReduction)
				out.Comparison = append(out.Comparison, cmp)
			}
		}
	}

	f, err := os.Create(cfg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := writeJSON(f, out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.path)
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// writeJSON delegates to the report-serialization path every CLI shares.
func writeJSON(f *os.File, v any) error { return hermes.WriteReportJSON(f, v) }
