package main

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	hermes "github.com/hermes-sim/hermes"
	"github.com/hermes-sim/hermes/internal/stats"
)

// -bench-scaling measures the parallel cluster engine's multi-core scaling
// curve: for each fleet size, the identical workload runs once per
// GOMAXPROCS point and the file records wall clock, aggregate throughput
// and speedup versus the 1-core point. Before timing anything, each fleet
// verifies that the parallel engine's report is bit-identical to the
// sequential engine's — the scaling curve is only worth committing if the
// virtual-time results it belongs to are the contractual ones.
//
// The file also records host_cpus and marks every point whose GOMAXPROCS
// exceeds the host's CPU count as saturated: on a 2-CPU container the 4-
// and 8-core points physically cannot scale past ~2×, and the committed
// file must say so rather than let a flat tail read as an engine defect.

// scalingBenchConfig carries the -bench-scaling invocation.
type scalingBenchConfig struct {
	path       string
	cores      string
	fleets     string
	requests   int64
	reps       int
	minSpeedup float64
	seed       uint64
}

// scalingPoint is one (fleet, cores) measurement.
type scalingPoint struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	WallMS     float64 `json:"wall_ms"` // median of reps
	WallMinMS  float64 `json:"wall_min_ms"`
	WallMaxMS  float64 `json:"wall_max_ms"`
	ReqsPerSec float64 `json:"reqs_per_sec"`
	Speedup    float64 `json:"speedup_vs_1core"`
	Saturated  bool    `json:"saturated"` // gomaxprocs exceeds host_cpus
}

// scalingFleet is one node-count row of the curve.
type scalingFleet struct {
	Nodes  int `json:"nodes"`
	Shards int `json:"shards"`
	// BitIdentical records the parallel-vs-sequential report equivalence
	// check that preceded the timed points.
	BitIdentical bool           `json:"bit_identical_vs_sequential"`
	Points       []scalingPoint `json:"points"`
}

// scalingFile is the -bench-scaling JSON document.
type scalingFile struct {
	Generated  string         `json:"generated"`
	HostCPUs   int            `json:"host_cpus"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Requests   int64          `json:"requests"`
	RatePerSec float64        `json:"rate_per_sec"`
	Seed       uint64         `json:"seed"`
	Reps       int            `json:"reps"`
	Note       string         `json:"note,omitempty"`
	Fleets     []scalingFleet `json:"fleets"`
}

func parseIntList(s, name string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad %s element %q: want positive integers", name, f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty %s list", name)
	}
	return out, nil
}

func runScalingBench(cfg scalingBenchConfig) error {
	cores, err := parseIntList(cfg.cores, "-scaling-cores")
	if err != nil {
		return err
	}
	fleets, err := parseIntList(cfg.fleets, "-scaling-fleets")
	if err != nil {
		return err
	}
	if cfg.reps < 1 {
		cfg.reps = 1
	}
	hostCPUs := runtime.NumCPU()
	out := scalingFile{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		HostCPUs:   hostCPUs,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Requests:   cfg.requests,
		RatePerSec: hermes.DefaultLoadConfig().RatePerSec,
		Seed:       cfg.seed,
		Reps:       cfg.reps,
	}
	if max := maxInt(cores); max > hostCPUs {
		out.Note = fmt.Sprintf("host has %d CPUs: points above %d cores are saturated and cannot scale further; rerun on a wider host for the full curve", hostCPUs, hostCPUs)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, nodes := range fleets {
		ccfg := hermes.DefaultClusterConfig()
		ccfg.Nodes = nodes
		ccfg.Shards = 2 * nodes
		ccfg.Seed = cfg.seed
		load := hermes.DefaultLoadConfig()
		load.Requests = cfg.requests
		load.Seed = cfg.seed
		if err := ccfg.Validate(); err != nil {
			return err
		}

		// Equivalence first, with raw (exact) digests: the timed points
		// below only count if the parallel engine still reproduces the
		// sequential engine's report bit for bit.
		fl := scalingFleet{Nodes: nodes, Shards: ccfg.Shards}
		{
			c := ccfg
			c.Stats = hermes.StatsRaw
			cl := hermes.NewCluster(c)
			seqRep := cl.RunSequential(load)
			cl.Close()
			cl = hermes.NewCluster(c)
			parRep := cl.RunParallel(load)
			cl.Close()
			fl.BitIdentical = reflect.DeepEqual(seqRep, parRep)
			if !fl.BitIdentical {
				return fmt.Errorf("bench-scaling %d nodes: parallel report differs from sequential:\nseq %v\npar %v",
					nodes, seqRep.Cluster, parRep.Cluster)
			}
		}

		fmt.Printf("bench-scaling %d nodes × %d shards, %d requests (bit-identical vs sequential):\n",
			nodes, ccfg.Shards, cfg.requests)
		var oneCore float64
		for _, n := range cores {
			runtime.GOMAXPROCS(n)
			c := ccfg
			c.Stats = hermes.StatsHistogram
			walls := make([]float64, cfg.reps)
			for i := range walls {
				cl := hermes.NewCluster(c)
				start := time.Now()
				rep := cl.RunParallel(load)
				walls[i] = ms(time.Since(start))
				cl.Close()
				if rep.Requests != cfg.requests {
					return fmt.Errorf("bench-scaling served %d requests, want %d", rep.Requests, cfg.requests)
				}
			}
			med := stats.Median(walls)
			pt := scalingPoint{
				GoMaxProcs: n,
				WallMS:     med,
				WallMinMS:  walls[0],
				WallMaxMS:  walls[len(walls)-1],
				ReqsPerSec: float64(cfg.requests) / (med / 1000),
				Saturated:  n > hostCPUs,
			}
			if n == 1 {
				oneCore = med
			}
			if oneCore > 0 {
				pt.Speedup = oneCore / med
			}
			note := ""
			if pt.Saturated {
				note = "  (saturated: exceeds host CPUs)"
			}
			fmt.Printf("  %2d cores  %8.1f ms  [%.1f–%.1f]  %10.0f req/s  speedup %.2fx%s\n",
				n, pt.WallMS, pt.WallMinMS, pt.WallMaxMS, pt.ReqsPerSec, pt.Speedup, note)
			fl.Points = append(fl.Points, pt)
		}
		out.Fleets = append(out.Fleets, fl)
	}

	if cfg.minSpeedup > 0 {
		for _, fl := range out.Fleets {
			best := 0.0
			for _, pt := range fl.Points {
				if pt.GoMaxProcs > 1 && pt.Speedup > best {
					best = pt.Speedup
				}
			}
			if best < cfg.minSpeedup {
				return fmt.Errorf("bench-scaling %d nodes: best multi-core speedup %.2fx below the -scaling-min-speedup %.2fx gate", fl.Nodes, best, cfg.minSpeedup)
			}
		}
	}

	f, err := os.Create(cfg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := writeJSON(f, out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.path)
	return nil
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
