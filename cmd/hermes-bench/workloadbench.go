package main

import (
	"fmt"
	"math"
	randv2 "math/rand/v2"
	"os"
	"runtime"
	"time"

	hermes "github.com/hermes-sim/hermes"
	"github.com/hermes-sim/hermes/internal/kernel"
	"github.com/hermes-sim/hermes/internal/stats"
	"github.com/hermes-sim/hermes/internal/workload/randgen"
)

// -bench-workload measures workload *generation* alone — no simulation —
// on both generator backends, at three altitudes:
//
//   - driver:   the full LoadDriver.Next loop (key + op + gap per request),
//     the exact cost Cluster.Run pays to stream its load;
//   - zipf+exp: the per-request draw pair (Zipf key, exponential gap) —
//     ISSUE 4's ≥3× acceptance gate;
//   - jitter:   the log-normal latency multiplier exp(σ·Z), drawn once per
//     served request by workload.Jitter.
//
// Each measurement runs `-workload-reps` times (median reported), so one
// invocation of the harness produces the committed median-of-N trajectory
// without external scripting.

// workloadBenchConfig carries the -bench-workload invocation.
type workloadBenchConfig struct {
	path  string
	draws int64
	reps  int
	seed  uint64
}

// workloadEntry is one measured generator path.
type workloadEntry struct {
	Name    string  `json:"name"`
	Draws   int64   `json:"draws"`
	WallMS  float64 `json:"wall_ms"`
	NsPerOp float64 `json:"ns_per_op"`
}

// workloadComparison relates a legacy/fast entry pair.
type workloadComparison struct {
	Name    string  `json:"name"`
	Speedup float64 `json:"speedup"` // legacy wall / fast wall
}

// sinkGuard defeats dead-code elimination of the measured loops.
var sinkGuard float64

// medianWall runs f reps times and returns the median wall clock — the
// repo's bench discipline on its noisy single-core host, delegated to the
// stats package's shared median.
func medianWall(f func() time.Duration, reps int) time.Duration {
	walls := make([]time.Duration, reps)
	for i := range walls {
		walls[i] = f()
	}
	return stats.MedianDuration(walls)
}

func runWorkloadBench(cfg workloadBenchConfig) error {
	// Measure the distributions the simulator actually draws: the default
	// load's skew and the default cost model's jitter spread.
	zipfS := hermes.DefaultLoadConfig().ZipfS
	jitterSigma := kernel.DefaultConfig().Costs.JitterSigma

	driver := func(gen hermes.Generator) func() time.Duration {
		return func() time.Duration {
			load := hermes.DefaultLoadConfig()
			load.Requests = cfg.draws
			load.Seed = cfg.seed
			load.Generator = gen
			d := hermes.NewLoadDriver(load) // table build outside the timer
			var sink int64
			start := time.Now()
			for {
				r, ok := d.Next()
				if !ok {
					break
				}
				sink += r.Key
			}
			wall := time.Since(start)
			sinkGuard += float64(sink)
			return wall
		}
	}

	keys := hermes.DefaultLoadConfig().Keys
	zipfExpLegacy := func() time.Duration {
		rng := randv2.New(randv2.NewPCG(cfg.seed, cfg.seed^0x9e3779b97f4a7c15))
		zipf := randv2.NewZipf(rng, zipfS, 1, uint64(keys-1))
		var sinkU uint64
		var sinkF float64
		start := time.Now()
		for i := int64(0); i < cfg.draws; i++ {
			sinkU += zipf.Uint64()
			sinkF += rng.ExpFloat64()
		}
		wall := time.Since(start)
		sinkGuard += float64(sinkU) + sinkF
		return wall
	}
	zipfExpFast := func() time.Duration {
		s := randgen.Split(cfg.seed, 0)
		zipf := randgen.NewZipf(s, zipfS, 1, uint64(keys-1))
		var sinkU uint64
		var sinkF float64
		start := time.Now()
		for i := int64(0); i < cfg.draws; i++ {
			sinkU += zipf.Uint64()
			sinkF += s.ExpFloat64()
		}
		wall := time.Since(start)
		sinkGuard += float64(sinkU) + sinkF
		return wall
	}

	jitterLegacy := func() time.Duration {
		rng := randv2.New(randv2.NewPCG(cfg.seed, cfg.seed^0x9e3779b97f4a7c15))
		var sink float64
		start := time.Now()
		for i := int64(0); i < cfg.draws; i++ {
			sink += math.Exp(rng.NormFloat64() * jitterSigma)
		}
		wall := time.Since(start)
		sinkGuard += sink
		return wall
	}
	jitterFast := func() time.Duration {
		s := randgen.Split(cfg.seed, 0)
		var sink float64
		start := time.Now()
		for i := int64(0); i < cfg.draws; i++ {
			sink += randgen.FastExp(s.NormFloat64() * jitterSigma)
		}
		wall := time.Since(start)
		sinkGuard += sink
		return wall
	}

	pairs := []struct {
		name         string
		legacy, fast func() time.Duration
	}{
		{"driver", driver(hermes.GenLegacy), driver(hermes.GenFast)},
		{"zipf+exp", zipfExpLegacy, zipfExpFast},
		{"jitter", jitterLegacy, jitterFast},
	}

	out := struct {
		Generated   string               `json:"generated"`
		GoMaxProcs  int                  `json:"gomaxprocs"`
		GOOS        string               `json:"goos"`
		GOARCH      string               `json:"goarch"`
		Draws       int64                `json:"draws"`
		Reps        int                  `json:"reps"`
		Seed        uint64               `json:"seed"`
		Entries     []workloadEntry      `json:"entries"`
		Comparisons []workloadComparison `json:"comparisons"`
	}{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Draws:      cfg.draws,
		Reps:       cfg.reps,
		Seed:       cfg.seed,
	}

	fmt.Printf("bench-workload: %d draws per measurement, median of %d\n", cfg.draws, cfg.reps)
	for _, p := range pairs {
		measure := func(variant string, f func() time.Duration) workloadEntry {
			wall := medianWall(f, cfg.reps)
			e := workloadEntry{
				Name:    p.name + "/" + variant,
				Draws:   cfg.draws,
				WallMS:  ms(wall),
				NsPerOp: float64(wall.Nanoseconds()) / float64(cfg.draws),
			}
			fmt.Printf("  %-16s %9.1f ms  %6.2f ns/op\n", e.Name, e.WallMS, e.NsPerOp)
			return e
		}
		legacy := measure("legacy", p.legacy)
		fast := measure("fast", p.fast)
		cmp := workloadComparison{Name: p.name, Speedup: legacy.WallMS / fast.WallMS}
		fmt.Printf("  %-16s %.2fx\n", p.name+" speedup", cmp.Speedup)
		out.Entries = append(out.Entries, legacy, fast)
		out.Comparisons = append(out.Comparisons, cmp)
	}

	f, err := os.Create(cfg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := writeJSON(f, out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.path)
	return nil
}
