// hermes-sim runs one ad-hoc micro-benchmark cell: pick a node size, an
// allocator, a pressure regime and a request size, get the latency digest.
//
// Usage:
//
//	hermes-sim -alloc hermes -pressure anon -request 1024 -total 64MB
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	allocFlag := flag.String("alloc", "hermes", "allocator: hermes, glibc, jemalloc, tcmalloc")
	pressureFlag := flag.String("pressure", "none", "pressure regime: none, anon, file")
	request := flag.Int64("request", 1024, "request size in bytes")
	totalFlag := flag.String("total", "64MB", "total bytes to allocate (e.g. 64MB, 1GB)")
	memFlag := flag.String("mem", "128GB", "node DRAM size")
	seed := flag.Uint64("seed", 1, "determinism seed")
	flag.Parse()

	total, err := parseSize(*totalFlag)
	if err != nil {
		return err
	}
	mem, err := parseSize(*memFlag)
	if err != nil {
		return err
	}

	cfg := hermes.DefaultNodeConfig()
	cfg.Kernel.TotalMemory = mem
	cfg.Kernel.Seed = *seed
	node := hermes.NewNode(cfg)

	var pressure *hermes.Pressure
	switch *pressureFlag {
	case "none":
	case "anon":
		pressure = node.StartPressure(hermes.DefaultPressureConfig(hermes.PressureAnon))
	case "file":
		pressure = node.StartPressure(hermes.DefaultPressureConfig(hermes.PressureFile))
	default:
		return fmt.Errorf("unknown pressure %q", *pressureFlag)
	}

	var a hermes.Allocator
	switch strings.ToLower(*allocFlag) {
	case "hermes":
		a = node.NewHermesAllocator("sim")
	case "glibc":
		a = node.NewGlibcAllocator("sim")
	case "jemalloc":
		a = node.NewJemallocAllocator("sim")
	case "tcmalloc":
		a = node.NewTCMallocAllocator("sim")
	default:
		return fmt.Errorf("unknown allocator %q", *allocFlag)
	}
	defer a.Close()

	node.Advance(20 * time.Millisecond)
	rec := hermes.NewRecorder(*allocFlag)
	node.RunMicroBench(a, *request, total, rec)
	if pressure != nil {
		pressure.Stop()
	}

	fmt.Println(rec.Summarize())
	st := a.Stats()
	fmt.Printf("allocator: %d mallocs, %.1f MB requested, heap %.1f MB, mmapped %.1f MB, reserved %.1f MB\n",
		st.Mallocs, mb(st.BytesRequested), mb(st.HeapBytes), mb(st.MmapBytes), mb(st.ReservedBytes))
	ks := node.Kernel().Stats()
	fmt.Printf("kernel: %d minor faults, %d major, %d direct reclaims, %d pages swapped out\n",
		ks.MinorFaults, ks.MajorFaults, ks.DirectReclaims, ks.PagesSwapOut)
	return nil
}

func mb(v int64) float64 { return float64(v) / (1 << 20) }

// parseSize parses "64MB", "1GB", "4096".
func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}
