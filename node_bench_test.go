// Single-node hot-path benchmarks: one node, one shard, the default
// open-loop load — the per-request path ISSUE 3 rebuilt to be
// (near-)zero-allocation: flat service tables, pooled Blocks with inline
// meta, intrusive LRU spans. Tracked alongside BenchmarkCluster* from
// PR 3 on.
//
// CI runs these with -benchtime=1x as a smoke test; locally,
// `go test -bench=BenchmarkNode -benchmem` gives the comparison, and
// `hermes-bench -bench-node BENCH_node.json` captures the committed
// trajectory at the full 1M-request scale (see EXPERIMENTS.md).
package hermes_test

import (
	"testing"

	hermes "github.com/hermes-sim/hermes"
)

const benchNodeRequests = 100_000

func runNodeBench(b *testing.B, kind hermes.AllocatorKind) {
	cfg := hermes.DefaultClusterConfig()
	cfg.Nodes = 1
	cfg.Shards = 1
	cfg.Allocator = kind
	cfg.Stats = hermes.StatsHistogram
	load := hermes.DefaultLoadConfig()
	load.Requests = benchNodeRequests
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := hermes.NewCluster(cfg)
		rep := c.Run(load)
		c.Close()
		if rep.Requests != load.Requests {
			b.Fatalf("served %d requests, want %d", rep.Requests, load.Requests)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Cluster.P99.Nanoseconds()), "p99-ns")
		}
	}
}

// BenchmarkNodeGlibc drives the Glibc-backed single-node path.
func BenchmarkNodeGlibc(b *testing.B) { runNodeBench(b, hermes.AllocGlibc) }

// BenchmarkNodeJemalloc drives the jemalloc-backed single-node path.
func BenchmarkNodeJemalloc(b *testing.B) { runNodeBench(b, hermes.AllocJemalloc) }

// BenchmarkNodeTCMalloc drives the TCMalloc-backed single-node path.
func BenchmarkNodeTCMalloc(b *testing.B) { runNodeBench(b, hermes.AllocTCMalloc) }

// BenchmarkNodeHermes drives the Hermes-backed single-node path.
func BenchmarkNodeHermes(b *testing.B) { runNodeBench(b, hermes.AllocHermes) }
