// Colocation: the paper's headline scenario — a Redis-like latency-critical
// service sharing a node with memory-hungry batch jobs. Compares Glibc and
// Hermes (with the monitor daemon's proactive reclamation) on p90 latency
// and SLO violation under ~100% memory pressure.
package main

import (
	"fmt"
	"time"

	hermes "github.com/hermes-sim/hermes"
	"github.com/hermes-sim/hermes/internal/batch"
)

func main() {
	fmt.Println("co-locating Redis with batch jobs at 100% memory pressure…")
	glibcP90, glibcRec := run(false)
	hermesP90, hermesRec := run(true)

	slo := glibcP90 // the paper's SLO: Glibc's dedicated p90 — here we use
	// the Glibc co-located p90 as a reference line instead, since both
	// runs are co-located.
	fmt.Printf("\n%-8s p90=%-12v SLO-violations(vs %v)=%.1f%%\n",
		"Glibc", glibcP90, slo, glibcRec.ViolationRatio(slo)*100)
	fmt.Printf("%-8s p90=%-12v SLO-violations(vs %v)=%.1f%%\n",
		"Hermes", hermesP90, slo, hermesRec.ViolationRatio(slo)*100)
}

// run co-locates the service with batch jobs on an 8 GB node and returns
// the p90 query latency plus the full recorder.
func run(useHermes bool) (time.Duration, *hermes.Recorder) {
	cfg := hermes.DefaultNodeConfig()
	cfg.Kernel.TotalMemory = 8 << 30
	cfg.Kernel.SwapBytes = 8 << 30
	node := hermes.NewNode(cfg)

	// Batch jobs targeting 100% of node memory.
	bcfg := batch.DefaultConfig()
	bcfg.TargetBytes = 8 << 30
	bcfg.InputBytes = 512 << 20
	bcfg.WorkDuration = 20 * time.Second
	runner := batch.NewRunner(node.Kernel(), bcfg)
	defer runner.Stop()
	node.Kernel().SetOOMHandler(runner.HandleOOM)

	var a hermes.Allocator
	if useHermes {
		reg := node.NewRegistry()
		h := node.NewHermesAllocatorWith("redis", hermes.DefaultHermesConfig(), reg, true)
		for _, pid := range runner.PIDs() {
			reg.AddBatch(pid)
		}
		daemon := node.StartDaemon(reg, hermes.DefaultDaemonConfig())
		defer daemon.Stop()
		a = h
	} else {
		a = node.NewGlibcAllocator("redis")
	}
	defer a.Close()

	svc := node.NewRedis(a)
	defer svc.Close()

	node.Advance(2 * time.Second) // batch ramp + warm-up

	rec := hermes.NewRecorder("queries")
	var key int64
	for svc.StoredBytes() < 64<<20 {
		key++
		total, _, _ := svc.Query(key, 1024)
		rec.Record(total)
	}
	return rec.Percentile(90), rec
}
