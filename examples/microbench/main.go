// Microbench: the §5.2 shoot-out — all four allocators under anonymous-page
// pressure, printing the latency CDF table (the Figure 7(b) comparison).
package main

import (
	"fmt"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

func main() {
	const reqSize, totalBytes = 1024, 64 << 20
	names := []string{"Hermes", "Glibc", "jemalloc", "TCMalloc"}
	results := make(map[string]*hermes.Recorder)

	for _, name := range names {
		node := hermes.NewNode(hermes.DefaultNodeConfig())

		// Anonymous-page pressure: a co-tenant burns memory down to a thin
		// free buffer and holds it.
		pcfg := hermes.DefaultPressureConfig(hermes.PressureAnon)
		pcfg.FreeBytes = 64 << 20
		pressure := node.StartPressure(pcfg)

		var a hermes.Allocator
		switch name {
		case "Hermes":
			a = node.NewHermesAllocator("bench")
		case "Glibc":
			a = node.NewGlibcAllocator("bench")
		case "jemalloc":
			a = node.NewJemallocAllocator("bench")
		case "TCMalloc":
			a = node.NewTCMallocAllocator("bench")
		}
		node.Advance(20 * time.Millisecond)

		rec := hermes.NewRecorder(name)
		node.RunMicroBench(a, reqSize, totalBytes, rec)
		results[name] = rec
		pressure.Stop()
		a.Close()
	}

	fmt.Println("1KB allocation latency under anonymous-page pressure:")
	fmt.Printf("%-10s %-10s %-10s %-10s %-10s %-10s\n", "", "avg", "p50", "p90", "p99", "max")
	for _, name := range names {
		s := results[name].Summarize()
		fmt.Printf("%-10s %-10v %-10v %-10v %-10v %-10v\n",
			name, s.Mean, s.P50, s.P90, s.P99, s.Max)
	}
}
