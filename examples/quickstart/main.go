// Quickstart: boot a simulated node, create a Hermes-backed service
// process, allocate memory through it, and inspect what the management
// thread reserved on your behalf.
package main

import (
	"fmt"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

func main() {
	// A node with the paper's testbed shape: 128 GB DRAM, HDD swap.
	node := hermes.NewNode(hermes.DefaultNodeConfig())

	// A latency-critical process using Hermes: the management thread
	// starts reserving and pre-mapping memory immediately.
	a := node.NewHermesAllocator("quickstart")
	defer a.Close()

	// Let the management thread run a few 2 ms intervals.
	node.Advance(10 * time.Millisecond)
	fmt.Printf("reserved (pre-mapped) memory after warm-up: %.1f MB\n",
		float64(a.Stats().ReservedBytes)/(1<<20))

	// Allocate and write — the paper's "memory allocation latency" is the
	// malloc plus the first write of the block.
	var total time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		b, mallocCost := a.Malloc(node.Now(), 1024)
		touchCost := a.Touch(node.Now().Add(mallocCost), b)
		total += mallocCost + touchCost
		node.Advance(mallocCost + touchCost)
	}
	fmt.Printf("avg 1KB allocation latency over %d requests: %v\n", n, total/n)

	// The same on plain Glibc, for contrast.
	g := node.NewGlibcAllocator("quickstart-glibc")
	defer g.Close()
	var gtotal time.Duration
	for i := 0; i < n; i++ {
		b, mallocCost := g.Malloc(node.Now(), 1024)
		touchCost := g.Touch(node.Now().Add(mallocCost), b)
		gtotal += mallocCost + touchCost
		node.Advance(mallocCost + touchCost)
	}
	fmt.Printf("Glibc for comparison:                        %v\n", gtotal/n)

	st := a.MgmtStats()
	fmt.Printf("management thread: %d ticks, %d heap reservation steps, CPU %.2f%%\n",
		st.Ticks, st.HeapReservations, a.MgmtUtilization(node.Now())*100)
}
