// Tuning: the §5.4 exercise — how the reservation factor RSV_FACTOR trades
// allocation latency against reserved-memory waste. Sweeps 0.5–3.0 on the
// micro-benchmark and prints the latency reduction vs Glibc plus the peak
// reservation, the data behind Figures 15/16 and the paper's choice of 2.
package main

import (
	"fmt"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

func main() {
	const reqSize, totalBytes = 1024, 64 << 20

	// Baseline: Glibc.
	node := hermes.NewNode(hermes.DefaultNodeConfig())
	g := node.NewGlibcAllocator("baseline")
	base := hermes.NewRecorder("glibc")
	node.RunMicroBench(g, reqSize, totalBytes, base)
	g.Close()
	baseline := base.Summarize()
	fmt.Printf("Glibc baseline: avg=%v p99=%v\n\n", baseline.Mean, baseline.P99)

	fmt.Printf("%-8s %-10s %-10s %-14s\n", "factor", "avg red%", "p99 red%", "peak reserve")
	for _, factor := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0} {
		cfg := hermes.DefaultHermesConfig()
		cfg.ReservationFactor = factor

		n := hermes.NewNode(hermes.DefaultNodeConfig())
		reg := n.NewRegistry()
		h := n.NewHermesAllocatorWith("tuned", cfg, reg, true)
		n.Advance(10 * time.Millisecond)

		rec := hermes.NewRecorder("hermes")
		n.RunMicroBench(h, reqSize, totalBytes, rec)
		s := rec.Summarize()
		avgRed := (1 - float64(s.Mean)/float64(baseline.Mean)) * 100
		p99Red := (1 - float64(s.P99)/float64(baseline.P99)) * 100
		fmt.Printf("%-8.1f %-10.1f %-10.1f %-14s\n", factor, avgRed, p99Red,
			fmt.Sprintf("%.1f MB", float64(h.Stats().ReservePeak)/(1<<20)))
		h.Close()
	}
	fmt.Println("\nthe paper settles on RSV_FACTOR=2: more buys little, less hurts tails")
}
