// Cluster: the paper's allocator comparison at fleet scale. An 8-node
// cluster serves 32 Redis shards (placed by consistent hashing) under an
// open-loop Zipf-skewed keyed workload while every node co-hosts churning
// batch jobs targeting 100% of its memory — §5.3's co-location scenario on
// every machine at once. The same scenario runs on all four allocators;
// Hermes (with the monitor daemon's proactive reclamation) keeps the
// cluster-wide tail flat where the baselines stall in reclaim.
//
// The run finishes with a determinism check: the whole cluster simulation
// is replayed from the same seed and must reproduce the identical
// cluster-wide digest, sample for sample.
package main

import (
	"fmt"
	"os"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

const (
	nodes    = 8
	shards   = 32
	seed     = 42
	nodeMem  = int64(4) << 30
	warmup   = 6 * time.Second // virtual: batch ramp + Hermes reservation
	requests = 400_000
)

func config(kind hermes.AllocatorKind) hermes.ClusterConfig {
	cfg := hermes.DefaultClusterConfig()
	cfg.Nodes = nodes
	cfg.Shards = shards
	cfg.Allocator = kind
	cfg.Kernel.TotalMemory = nodeMem
	cfg.Kernel.SwapBytes = nodeMem
	cfg.Seed = seed
	// Batch jobs churn on every node, targeting 100% of its memory — the
	// paper's co-location pressure at cluster scale.
	b := hermes.DefaultBatchConfig()
	b.TargetBytes = nodeMem
	b.InputBytes = nodeMem / 16
	b.WorkDuration = 20 * time.Second
	b.RampTicks = 10
	cfg.Batch = &b
	if kind == hermes.AllocHermes {
		d := hermes.DefaultDaemonConfig()
		cfg.Daemon = &d
	}
	return cfg
}

func load() hermes.LoadConfig {
	l := hermes.DefaultLoadConfig()
	l.Requests = requests
	l.Keys = 200_000
	l.ValueBytes = 4096
	l.Start = hermes.Time(warmup)
	l.Seed = seed
	return l
}

func run(kind hermes.AllocatorKind) hermes.ClusterReport {
	c := hermes.NewCluster(config(kind))
	defer c.Close()
	c.Advance(warmup)
	return c.Run(load())
}

func main() {
	fmt.Printf("%d nodes × %d shards, %d open-loop requests; batch jobs at 100%% memory on every node\n\n",
		nodes, shards, requests)

	var reports []hermes.ClusterReport
	for _, kind := range []hermes.AllocatorKind{
		hermes.AllocGlibc, hermes.AllocJemalloc, hermes.AllocTCMalloc, hermes.AllocHermes,
	} {
		start := time.Now()
		rep := run(kind)
		reports = append(reports, rep)
		var reclaims, swapouts int64
		for _, n := range rep.PerNode {
			reclaims += n.Kernel.DirectReclaims
			swapouts += n.Kernel.PagesSwapOut
		}
		fmt.Printf("%-10s p50=%-10v p95=%-10v p99=%-10v max=%-12v direct-reclaims=%-6d swapouts=%-9d (wall %v)\n",
			rep.Allocator, rep.Cluster.P50, rep.Cluster.P95, rep.Cluster.P99,
			rep.Cluster.Max, reclaims, swapouts, time.Since(start).Round(time.Millisecond))
	}

	base, last := reports[0], reports[len(reports)-1]
	fmt.Printf("\nHermes vs %s at cluster scale: p99 %v → %v, max %v → %v\n",
		base.Allocator, base.Cluster.P99, last.Cluster.P99, base.Cluster.Max, last.Cluster.Max)

	// Determinism: replaying the Hermes run from the same seed must
	// reproduce the identical cluster-wide digest.
	replay := run(hermes.AllocHermes)
	if replay.Cluster != last.Cluster {
		fmt.Printf("DETERMINISM VIOLATION:\n  first  %v\n  replay %v\n", last.Cluster, replay.Cluster)
		os.Exit(1)
	}
	fmt.Printf("determinism: replay of seed %d reproduced the identical cluster digest (p99=%v over %d samples)\n",
		seed, replay.Cluster.P99, replay.Cluster.Count)
}
