// Cluster engine benchmarks: the perf trajectory of the simulation hot
// path, tracked from PR 2 on. Each iteration boots a fresh fleet and
// drives the default open-loop workload end-to-end, so ns/op measures the
// whole engine (generation, routing, service models, stats digestion).
//
// CI runs these with -benchtime=1x as a smoke test; locally,
// `go test -bench=BenchmarkCluster -benchmem` gives the comparison, and
// `hermes-cluster -bench BENCH_cluster.json` captures the committed
// trajectory at the full 1M-request scale.
package hermes_test

import (
	"testing"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

const benchClusterRequests = 100_000

func benchClusterConfig(sequential bool, mode hermes.StatsMode) hermes.ClusterConfig {
	cfg := hermes.DefaultClusterConfig()
	cfg.Sequential = sequential
	cfg.Stats = mode
	return cfg
}

func runClusterBench(b *testing.B, sequential bool, mode hermes.StatsMode) {
	load := hermes.DefaultLoadConfig()
	load.Requests = benchClusterRequests
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := hermes.NewCluster(benchClusterConfig(sequential, mode))
		rep := c.Run(load)
		c.Close()
		if rep.Requests != load.Requests {
			b.Fatalf("served %d requests, want %d", rep.Requests, load.Requests)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Cluster.P99.Nanoseconds()), "p99-ns")
		}
	}
}

// BenchmarkClusterSequentialRaw is the seed engine shape: one goroutine in
// global arrival order, every sample kept raw. Since the scenario API
// redesign this path runs through Cluster.Run's single-phase adapter, so
// the number also guards the scenario layer's overhead on flat loads.
func BenchmarkClusterSequentialRaw(b *testing.B) {
	runClusterBench(b, true, hermes.StatsRaw)
}

// BenchmarkClusterParallelRaw isolates the parallel engine's contribution:
// partitioned per-node execution, still exact raw digests.
func BenchmarkClusterParallelRaw(b *testing.B) {
	runClusterBench(b, false, hermes.StatsRaw)
}

// BenchmarkClusterParallelHistogram is the overhauled default: partitioned
// per-node execution with bounded-memory streaming histograms.
func BenchmarkClusterParallelHistogram(b *testing.B) {
	runClusterBench(b, false, hermes.StatsHistogram)
}

// BenchmarkClusterScenarioPhased drives the full scenario machinery — three
// phases, two traffic classes, rate shaping and a squeeze/release timeline —
// through the parallel engine with streaming histograms: the fleet-scale
// scenario path end to end.
func BenchmarkClusterScenarioPhased(b *testing.B) {
	classes := []hermes.TrafficClass{
		{Name: "point", Rate: 40_000, Keys: 100_000, ZipfS: 1.1, ReadFraction: 0.5, ValueBytes: 1024},
		{Name: "bulk", Rate: 10_000, Keys: 10_000, ReadFraction: 0.2, ValueBytes: 8192},
	}
	scn := hermes.Scenario{
		Name: "bench",
		Seed: 1,
		Phases: []hermes.ScenarioPhase{
			{Name: "warm", Duration: 600 * hermes.Duration(time.Millisecond), Classes: classes},
			{
				Name: "ramp", Duration: 600 * hermes.Duration(time.Millisecond),
				Shape:   hermes.RateShape{Kind: hermes.ShapeRamp, From: 1, To: 3},
				Classes: classes,
			},
			{Name: "drain", Requests: benchClusterRequests / 4, Classes: classes[:1]},
		},
		Events: []hermes.ScenarioEvent{
			{At: 500 * hermes.Duration(time.Millisecond), Node: -1, Kind: hermes.EventSqueezeStart, Bytes: 256 << 20},
			{At: 1100 * hermes.Duration(time.Millisecond), Node: -1, Kind: hermes.EventSqueezeStop},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := hermes.NewCluster(benchClusterConfig(false, hermes.StatsHistogram))
		rep, err := c.RunScenario(scn)
		c.Close()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Requests == 0 || len(rep.Phases) != 3 {
			b.Fatalf("scenario bench served %d requests over %d phases", rep.Requests, len(rep.Phases))
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Cluster.P99.Nanoseconds()), "p99-ns")
		}
	}
}
