// Cluster engine benchmarks: the perf trajectory of the simulation hot
// path, tracked from PR 2 on. Each iteration boots a fresh fleet and
// drives the default open-loop workload end-to-end, so ns/op measures the
// whole engine (generation, routing, service models, stats digestion).
//
// CI runs these with -benchtime=1x as a smoke test; locally,
// `go test -bench=BenchmarkCluster -benchmem` gives the comparison, and
// `hermes-cluster -bench BENCH_cluster.json` captures the committed
// trajectory at the full 1M-request scale.
package hermes_test

import (
	"testing"

	hermes "github.com/hermes-sim/hermes"
)

const benchClusterRequests = 100_000

func benchClusterConfig(sequential bool, mode hermes.StatsMode) hermes.ClusterConfig {
	cfg := hermes.DefaultClusterConfig()
	cfg.Sequential = sequential
	cfg.Stats = mode
	return cfg
}

func runClusterBench(b *testing.B, sequential bool, mode hermes.StatsMode) {
	load := hermes.DefaultLoadConfig()
	load.Requests = benchClusterRequests
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := hermes.NewCluster(benchClusterConfig(sequential, mode))
		rep := c.Run(load)
		c.Close()
		if rep.Requests != load.Requests {
			b.Fatalf("served %d requests, want %d", rep.Requests, load.Requests)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Cluster.P99.Nanoseconds()), "p99-ns")
		}
	}
}

// BenchmarkClusterSequentialRaw is the seed engine: one goroutine in
// global arrival order, every sample kept raw.
func BenchmarkClusterSequentialRaw(b *testing.B) {
	runClusterBench(b, true, hermes.StatsRaw)
}

// BenchmarkClusterParallelRaw isolates the parallel engine's contribution:
// partitioned per-node execution, still exact raw digests.
func BenchmarkClusterParallelRaw(b *testing.B) {
	runClusterBench(b, false, hermes.StatsRaw)
}

// BenchmarkClusterParallelHistogram is the overhauled default: partitioned
// per-node execution with bounded-memory streaming histograms.
func BenchmarkClusterParallelHistogram(b *testing.B) {
	runClusterBench(b, false, hermes.StatsHistogram)
}
