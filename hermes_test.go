package hermes_test

import (
	"testing"
	"time"

	hermes "github.com/hermes-sim/hermes"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	node := hermes.NewNode(hermes.DefaultNodeConfig())
	a := node.NewHermesAllocator("svc")
	defer a.Close()
	node.Advance(10 * time.Millisecond)

	if a.Stats().ReservedBytes == 0 {
		t.Fatal("management thread reserved nothing")
	}
	b, cost := a.Malloc(node.Now(), 1024)
	if b == nil || cost <= 0 {
		t.Fatal("malloc failed")
	}
	cost += a.Touch(node.Now().Add(cost), b)
	node.Advance(cost)
	if cost <= 0 {
		t.Fatal("no latency observed")
	}
}

func TestPublicAPIAllAllocators(t *testing.T) {
	node := hermes.NewNode(hermes.DefaultNodeConfig())
	for _, a := range []hermes.Allocator{
		node.NewGlibcAllocator("g"),
		node.NewJemallocAllocator("j"),
		node.NewTCMallocAllocator("t"),
	} {
		rec := hermes.NewRecorder(a.Name())
		node.RunMicroBench(a, 1024, 1<<20, rec)
		if rec.Count() != 1024 {
			t.Errorf("%s: recorded %d requests", a.Name(), rec.Count())
		}
		a.Close()
	}
}

func TestPublicAPIServicesAndDaemon(t *testing.T) {
	cfg := hermes.DefaultNodeConfig()
	cfg.Kernel.TotalMemory = 2 << 30
	node := hermes.NewNode(cfg)

	reg := node.NewRegistry()
	h := node.NewHermesAllocatorWith("svc", hermes.DefaultHermesConfig(), reg, true)
	defer h.Close()
	daemon := node.StartDaemon(reg, hermes.DefaultDaemonConfig())
	defer daemon.Stop()

	redis := node.NewRedis(h)
	defer redis.Close()
	for i := int64(0); i < 100; i++ {
		total, _, _ := redis.Query(i, 1024)
		if total <= 0 {
			t.Fatal("query without latency")
		}
	}

	g := node.NewGlibcAllocator("rocks")
	defer g.Close()
	rocks := node.NewRocksdb(g, "api-test")
	defer rocks.Close()
	if total, _, _ := rocks.Query(1, 4096); total <= 0 {
		t.Fatal("rocksdb query without latency")
	}
	node.Kernel().CheckInvariants()
}

func TestPublicAPIPressure(t *testing.T) {
	node := hermes.NewNode(hermes.DefaultNodeConfig())
	pcfg := hermes.DefaultPressureConfig(hermes.PressureAnon)
	p := node.StartPressure(pcfg)
	if node.Kernel().FreeBytes() > 400<<20 {
		t.Fatal("pressure generator did not consume memory")
	}
	p.Stop()
}
